package saccs

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"reflect"
	"sync"
	"testing"
)

// countdownCtx reports no error for the first `after` Err() polls, then the
// configured error forever. The whole context-aware pipeline cancels by
// cooperative Err() polling, so the countdown deterministically places an
// expiry at the Nth poll point — no real clocks, no flaky sleeps.
type countdownCtx struct {
	context.Context
	mu    sync.Mutex
	after int
	err   error
}

func (c *countdownCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.after > 0 {
		c.after--
		return nil
	}
	return c.err
}

// TestQueryCtxCancelledTypedError: a pre-cancelled context makes every
// context-aware entry point fail with a *StageError that unwraps to
// context.Canceled — and never with partial results or partial state.
func TestQueryCtxCancelledTypedError(t *testing.T) {
	c := goldenIndexedClient(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	resp, err := c.QueryCtx(ctx, "a place with delicious food")
	var se *StageError
	if !errors.As(err, &se) || !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryCtx error: %v", err)
	}
	if se.Stage != "parse" {
		t.Fatalf("pre-cancelled query failed at stage %q, want parse", se.Stage)
	}
	if !reflect.DeepEqual(resp, Response{}) {
		t.Fatalf("partial response on cancellation: %+v", resp)
	}

	results, err := c.QueryTagsCtx(ctx, []string{"delicious food"})
	if !errors.As(err, &se) || !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryTagsCtx error: %v", err)
	}
	if results != nil {
		t.Fatalf("partial results on cancellation: %v", results)
	}

	tagsBefore := len(c.IndexedTags())
	if err := c.IndexEntitiesCtx(ctx, demoEntities(), c.CanonicalTags()); !errors.As(err, &se) || !errors.Is(err, context.Canceled) {
		t.Fatalf("IndexEntitiesCtx error: %v", err)
	}
	if got := len(c.IndexedTags()); got != tagsBefore {
		t.Fatalf("cancelled IndexEntitiesCtx changed the index: %d -> %d tags", tagsBefore, got)
	}

	added, err := c.ReindexCtx(ctx)
	if !errors.As(err, &se) || !errors.Is(err, context.Canceled) {
		t.Fatalf("ReindexCtx error: %v", err)
	}
	if se.Stage != "reindex" || added != nil {
		t.Fatalf("cancelled ReindexCtx: stage %q, added %v", se.Stage, added)
	}
}

// TestQueryCtxDeadlineSweep slides an expiry across every poll point of a
// full query (n = 0, 1, 2, …). Every failing position must produce a
// *StageError unwrapping to context.DeadlineExceeded and a zero Response;
// among the observed failure stages must be "rank" (the deadline is caught
// mid-rank, not only at stage boundaries); and the first fully successful
// run must equal the uncancelled baseline exactly.
func TestQueryCtxDeadlineSweep(t *testing.T) {
	c := goldenIndexedClient(t)
	const utterance = "fair prices, fresh ingredients and generous portions"
	want := c.Query(utterance)
	if len(want.Tags) < 2 {
		t.Skipf("tagger extracted too few tags for a multi-stage sweep: %v", want.Tags)
	}

	const maxPolls = 2000
	stages := map[string]bool{}
	completed := false
	for n := 0; n < maxPolls; n++ {
		ctx := &countdownCtx{Context: context.Background(), after: n, err: context.DeadlineExceeded}
		resp, err := c.QueryCtx(ctx, utterance)
		if err == nil {
			if !reflect.DeepEqual(resp, want) {
				t.Fatalf("n=%d: response diverged from baseline:\ngot:  %+v\nwant: %+v", n, resp, want)
			}
			completed = true
			break
		}
		var se *StageError
		if !errors.As(err, &se) {
			t.Fatalf("n=%d: not a *StageError: %v", n, err)
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("n=%d: does not unwrap to DeadlineExceeded: %v", n, err)
		}
		if !reflect.DeepEqual(resp, Response{}) {
			t.Fatalf("n=%d: partial response alongside error: %+v", n, resp)
		}
		stages[se.Stage] = true
	}
	if !completed {
		t.Fatalf("query still interrupted after %d polls", maxPolls)
	}
	if !stages["rank"] {
		t.Fatalf("deadline never observed mid-rank; stages hit: %v", stages)
	}
	if !stages["parse"] {
		t.Fatalf("deadline never observed up front; stages hit: %v", stages)
	}
}

// TestGoldenQueriesViaCtx pins the wrapper contract: QueryCtx with a
// background context must reproduce the same golden snapshots as Query, for
// all five canonical utterances.
func TestGoldenQueriesViaCtx(t *testing.T) {
	c := goldenIndexedClient(t)
	for _, tc := range goldenUtterances {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := c.QueryCtx(context.Background(), tc.utterance)
			if err != nil {
				t.Fatal(err)
			}
			want := readGolden(t, goldenPath(tc.name))
			compareGolden(t, want, snapshotResponse(tc.utterance, resp))
		})
	}
}

// TestQueryOptionsOverrides: per-request options override TopK and
// ThetaFilter without touching the shared Config.
func TestQueryOptionsOverrides(t *testing.T) {
	c := goldenIndexedClient(t)
	const utterance = "a place that serves tasty meals"
	base, err := c.QueryCtx(context.Background(), utterance)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Results) <= 3 {
		t.Fatalf("baseline too small to truncate: %d results", len(base.Results))
	}

	got, err := c.QueryCtx(context.Background(), utterance, QueryOptions{TopK: Int(3)})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != 3 {
		t.Fatalf("TopK override ignored: %d results", len(got.Results))
	}
	if !reflect.DeepEqual(got.Results, base.Results[:3]) {
		t.Fatalf("TopK override changed the ranking: %v vs %v", got.Results, base.Results[:3])
	}
	// TopK 0 lifts the truncation entirely.
	all, err := c.QueryCtx(context.Background(), utterance, QueryOptions{TopK: Int(0)})
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Results) < len(base.Results) {
		t.Fatalf("TopK 0 returned fewer results than the default: %d < %d", len(all.Results), len(base.Results))
	}

	// An explicit ThetaFilter equal to the config must be a no-op, and the
	// shared Config must never be mutated by per-request options.
	baseTags := c.QueryTags([]string{"tasty meals"})
	same, err := c.QueryTagsCtx(context.Background(), []string{"tasty meals"},
		QueryOptions{ThetaFilter: Float(c.cfg.ThetaFilter)})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(same, baseTags) {
		t.Fatalf("explicit default ThetaFilter changed the answer: %v vs %v", same, baseTags)
	}
	if c.cfg.TopK != DefaultConfig().TopK || c.cfg.ThetaFilter != DefaultConfig().ThetaFilter {
		t.Fatalf("per-request options mutated the shared Config: %+v", c.cfg)
	}
}

func readGolden(t *testing.T, path string) goldenResponse {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden snapshot (run TestGoldenQueries with -update first): %v", err)
	}
	var want goldenResponse
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("corrupt golden snapshot %s: %v", path, err)
	}
	return want
}

// TestServeMetricsLifecycle pins the documented server lifecycle: serve,
// scrape, reject a second bind on the same port, shut down, rebind the same
// address, and reject a malformed address.
func TestServeMetricsLifecycle(t *testing.T) {
	c := newClient(t)
	srv, err := c.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	scrape := func() string {
		resp, err := http.Get("http://" + srv.Addr + "/metrics")
		if err != nil {
			t.Fatalf("scrape: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("scrape status: %d", resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if body := scrape(); body == "" {
		t.Fatal("empty metrics payload")
	}

	// The port is held: a second server on the same address must fail
	// immediately instead of leaking a half-started server.
	if _, err := c.ServeMetrics(srv.Addr); err == nil {
		t.Fatal("double serve on a held port must error")
	}

	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// After shutdown the address is free again; a fresh server on the same
	// port serves the same live registry.
	srv2, err := c.ServeMetrics(srv.Addr)
	if err != nil {
		t.Fatalf("re-serve after shutdown: %v", err)
	}
	defer srv2.Close()
	resp, err := http.Get("http://" + srv2.Addr + "/metrics")
	if err != nil {
		t.Fatalf("scrape after re-serve: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape after re-serve status: %d", resp.StatusCode)
	}

	if _, err := c.ServeMetrics("this is not an address"); err == nil {
		t.Fatal("malformed address must error")
	}
}
