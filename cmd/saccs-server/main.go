// Command saccs-server serves the SACCS pipeline over HTTP: a JSON API
// (/v1/query, /v1/extract, /v1/append, /v1/register, /v1/reindex) plus the
// operational surface (/metrics, /healthz, /readyz, /debug/slow,
// /debug/pprof) on one listener.
//
// At startup it trains the extraction pipeline, optionally seeds the demo
// Yelp world, and with -shards > 1 partitions the subjective tag index
// across that many scatter-gather shards — answers stay byte-identical to a
// single index, queries fan out in parallel. With -wal-dir every streamed
// review and entity registration is fsynced before acknowledgment, and a
// restart recovers the streamed world (per shard under wal-dir/shard-<i>).
//
// SIGINT/SIGTERM drains gracefully: /readyz flips to 503, in-flight requests
// get -drain to finish, then the WAL is sealed.
//
// Usage:
//
//	saccs-server [-addr :8080] [-shards 4] [-wal-dir /var/lib/saccs]
//	             [-seed-demo] [-domain restaurants] [-drain 5s]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"saccs"
	"saccs/internal/server"
	"saccs/internal/yelp"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	shards := flag.Int("shards", 1, "number of index shards (entities partition by consistent hashing; 1 = single index)")
	walDir := flag.String("wal-dir", "", "durable WAL directory (empty: streamed writes are memory-only)")
	domain := flag.String("domain", "restaurants", "lexicon domain: restaurants, electronics, or hotels")
	scale := flag.String("training-scale", "fast", "training scale: fast or paper")
	seedDemo := flag.Bool("seed-demo", false, "index the seeded demo Yelp world at startup")
	drain := flag.Duration("drain", 5*time.Second, "graceful-drain window for in-flight requests at shutdown")
	maxBody := flag.Int64("max-body", 1<<20, "maximum request body bytes")
	topK := flag.Int("top-k", 10, "default answer truncation (0 = all)")
	slow := flag.Duration("slow-threshold", 0, "mark queries at or above this duration slow (0 disables)")
	precision := flag.String("precision", "mixed", "utterance decode arithmetic: float64, mixed, or int8 (indexing always runs float64)")
	flag.Parse()

	cfg := saccs.DefaultConfig()
	cfg.Domain = *domain
	cfg.TrainingScale = *scale
	cfg.Precision = *precision
	cfg.Shards = *shards
	cfg.WALDir = *walDir
	cfg.TopK = *topK
	cfg.SlowThreshold = *slow

	fmt.Fprintf(os.Stderr, "training %s pipeline (%s scale)...\n", cfg.Domain, cfg.TrainingScale)
	t0 := time.Now()
	client, err := saccs.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "saccs-server: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "trained in %s\n", time.Since(t0).Round(time.Millisecond))

	if *seedDemo {
		w := yelp.Generate(yelp.FastConfig())
		ents := make([]saccs.Entity, len(w.Entities))
		for i, e := range w.Entities {
			reviews := make([]string, len(e.Reviews))
			for j, r := range e.Reviews {
				reviews[j] = r.Text
			}
			ents[i] = saccs.Entity{ID: e.ID, Name: e.Name, City: e.City, Cuisine: e.Cuisine, Reviews: reviews}
		}
		if err := client.IndexEntities(ents, client.CanonicalTags()); err != nil {
			fmt.Fprintf(os.Stderr, "saccs-server: seeding demo world: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "indexed %d demo entities across %d shard(s)\n", len(ents), max(1, *shards))
	}

	srv := server.New(client, server.Config{Addr: *addr, MaxBodyBytes: *maxBody, DrainTimeout: *drain})
	if err := srv.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "saccs-server: listen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "serving on %s\n", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "draining...")
	if err := srv.Shutdown(context.Background()); err != nil {
		fmt.Fprintf(os.Stderr, "saccs-server: drain: %v\n", err)
	}
	fmt.Fprintln(os.Stderr, "bye")
}
