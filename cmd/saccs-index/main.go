// Command saccs-index builds a subjective tag inverted index over the
// synthetic review world and dumps it (Table 1 at full size): every tag, its
// entities, and their degrees of truth. Useful for inspecting what the
// extractor + similarity checker + indexer pipeline (Fig. 1) produces.
//
// With -stream the world's reviews are fed one by one through the streaming
// ingest tier (WAL + delta builds + compaction) instead of one batch build —
// the two paths produce identical indexes, which this command makes easy to
// eyeball. Add -wal-dir to make the stream durable and replayable: run once,
// kill it, run again and watch recovery continue from the log.
//
// Usage:
//
//	saccs-index [-tags "good food,nice staff"] [-gold] [-top 5] [-metrics-addr :9090]
//	saccs-index -stream [-wal-dir /tmp/saccs-wal] [-publish-every 64]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"saccs/internal/core"
	"saccs/internal/corpus"
	"saccs/internal/datasets"
	"saccs/internal/experiments"
	"saccs/internal/extcache"
	"saccs/internal/index"
	"saccs/internal/ingest"
	"saccs/internal/nn"
	"saccs/internal/obs"
	"saccs/internal/pairing"
	"saccs/internal/parse"
	"saccs/internal/sim"
	"saccs/internal/tagger"
	"saccs/internal/yelp"
)

func main() {
	tagsFlag := flag.String("tags", "", "comma-separated tags to index (default: the 18 canonical feature tags)")
	gold := flag.Bool("gold", false, "use gold review annotations instead of the neural extractor")
	top := flag.Int("top", 5, "entities shown per tag")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /healthz, /readyz and /debug/pprof on this address (e.g. :9090)")
	batchWindow := flag.Duration("batch-window", 250*time.Microsecond, "gather window for cross-request extraction batching during the build (0 disables)")
	batchMax := flag.Int("batch-max", 16, "max sentences per batched decode forward (<2 disables batching)")
	stream := flag.Bool("stream", false, "feed reviews through the WAL-backed streaming ingester instead of one batch build")
	walDir := flag.String("wal-dir", "", "durable WAL directory for -stream (empty: in-process only, no durability)")
	publishEvery := flag.Int("publish-every", 64, "publish a fresh snapshot every N streamed reviews (-stream only)")
	precisionFlag := flag.String("precision", "float64", "review decode arithmetic for the build: float64 (the library's indexing default), mixed, or int8")
	flag.Parse()
	precision, err := nn.ParsePrecision(*precisionFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "saccs-index: %v\n", err)
		os.Exit(1)
	}

	o := obs.NewObserver()
	o.SetTelemetry(obs.NewTelemetry(obs.TelemetryConfig{Metrics: o.Metrics}))
	if *metricsAddr != "" {
		srv, err := obs.ServeObserver(*metricsAddr, o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrics server: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("metrics: http://%s/metrics  pprof: http://%s/debug/pprof\n", srv.Addr, srv.Addr)
	}

	world := yelp.Generate(yelp.FastConfig())
	var ex *core.Extractor
	var src core.ReviewTagSource
	if *gold {
		src = core.GoldSource{}
		tg := core.NewGoldTagger(nil)
		if *stream {
			// The streaming path extracts from review text, so the gold
			// tagger needs the world's annotated sentences to look up.
			var sentences []corpus.Sentence
			for _, e := range world.Entities {
				for _, r := range e.Reviews {
					sentences = append(sentences, r.Sentences...)
				}
			}
			tg = core.NewGoldTagger(sentences)
		}
		ex = &core.Extractor{Tagger: tg, Pairer: pairing.WordDistance{}}
	} else {
		fmt.Println("training the neural extractor...")
		data := datasets.S1(datasets.Fast)
		encOpts := experiments.DefaultEncoderOpts(datasets.Fast)
		encOpts.Obs = o
		enc := experiments.BuildEncoder(encOpts, world.Domain, nil)
		cfg := tagger.DefaultConfig()
		cfg.Adversarial = true
		cfg.Epsilon = 0.2
		cfg.Precision = precision
		tg := tagger.New(enc, cfg)
		tg.Obs = o
		tg.Train(data.Train)
		ex = &core.Extractor{
			Tagger: tg,
			Pairer: pairing.Tree{Lex: parse.DomainLexicon(world.Domain), FromOpinions: true},
			// Reviews quote the same sentences; the cache decodes each once
			// per build.
			Cache:        extcache.New(4096),
			BatchWindow:  *batchWindow,
			BatchMaxSize: *batchMax,
		}
		src = core.NeuralSource{E: ex}
	}

	svc := core.NewService(world, ex, nil, core.DefaultConfig())
	svc.SetObserver(o)

	tags := svc.CanonicalTags()
	if *tagsFlag != "" {
		tags = nil
		for _, t := range strings.Split(*tagsFlag, ",") {
			tags = append(tags, strings.TrimSpace(t))
		}
	}

	if *stream {
		ix := streamWorld(o, world, ex, tags, *walDir, *publishEvery)
		dumpIndex(ix, world, *top)
		return
	}

	fmt.Println("extracting review tags...")
	svc.BuildEntityTags(src)
	svc.IndexTags(tags)
	dumpIndex(svc.Index, world, *top)
}

// streamWorld feeds every review through the WAL-backed ingester, review by
// review, the way a live service would — durable append, delta builds every
// publish-every reviews, background compaction — and returns the quiescent
// index. If walDir already holds a previous run's log, the world is recovered
// from it instead of re-streamed (appends would double-count the reviews).
func streamWorld(o *obs.Observer, world *yelp.World, ex *core.Extractor, tags []string, walDir string, publishEvery int) *index.Index {
	ix := index.New(sim.NewConceptual(), core.DefaultConfig().ThetaIndex)
	ix.SetObserver(o)
	extract := func(texts []string) [][]string {
		out := make([][]string, len(texts))
		for i, t := range texts {
			out[i] = ex.ExtractTags(t)
		}
		return out
	}

	start := time.Now()
	ing, err := ingest.Open(ingest.Config{
		Dir:             walDir,
		PublishEvery:    publishEvery,
		PublishInterval: -1,
		Obs:             o,
	}, ix, tags, nil, extract)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ingest open: %v\n", err)
		os.Exit(1)
	}
	defer func() {
		if err := ing.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "ingest close: %v\n", err)
		}
	}()

	recovered := 0
	for _, e := range ing.State() {
		recovered += e.ReviewCount
	}
	if recovered > 0 {
		fmt.Printf("recovered %d reviews from %s in %v — skipping re-append\n",
			recovered, walDir, time.Since(start).Round(time.Millisecond))
		return ix
	}

	fmt.Println("streaming review appends...")
	ctx := context.Background()
	appended := 0
	appendStart := time.Now()
	for _, e := range world.Entities {
		for _, r := range e.Reviews {
			if _, err := ing.Append(ctx, e.ID, r.Text); err != nil {
				fmt.Fprintf(os.Stderr, "append %s: %v\n", e.ID, err)
				os.Exit(1)
			}
			appended++
		}
	}
	if err := ing.Flush(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "ingest flush: %v\n", err)
		os.Exit(1)
	}
	elapsed := time.Since(appendStart)
	fmt.Printf("streamed %d reviews in %v (%.0f appends/s), published seq %d, pending %d\n",
		appended, elapsed.Round(time.Millisecond),
		float64(appended)/elapsed.Seconds(), ing.Published(), ing.Pending())
	return ix
}

func dumpIndex(ix *index.Index, world *yelp.World, top int) {
	fmt.Printf("\nsubjective tag index (%d tags, %d entities, %d reviews)\n\n",
		ix.Len(), len(world.Entities), world.ReviewCount())
	for _, tag := range ix.Tags() {
		entries := ix.Lookup(tag)
		fmt.Printf("%-22s %3d entities:", tag, len(entries))
		for i, e := range entries {
			if i >= top {
				fmt.Printf(" …")
				break
			}
			fmt.Printf("  %s (%.2f)", world.Entity(e.EntityID).Name, e.Degree)
		}
		fmt.Println()
	}
}
