// Command saccs-index builds a subjective tag inverted index over the
// synthetic review world and dumps it (Table 1 at full size): every tag, its
// entities, and their degrees of truth. Useful for inspecting what the
// extractor + similarity checker + indexer pipeline (Fig. 1) produces.
//
// Usage:
//
//	saccs-index [-tags "good food,nice staff"] [-gold] [-top 5] [-metrics-addr :9090]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"saccs/internal/core"
	"saccs/internal/datasets"
	"saccs/internal/experiments"
	"saccs/internal/extcache"
	"saccs/internal/obs"
	"saccs/internal/pairing"
	"saccs/internal/parse"
	"saccs/internal/tagger"
	"saccs/internal/yelp"
)

func main() {
	tagsFlag := flag.String("tags", "", "comma-separated tags to index (default: the 18 canonical feature tags)")
	gold := flag.Bool("gold", false, "use gold review annotations instead of the neural extractor")
	top := flag.Int("top", 5, "entities shown per tag")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /healthz, /readyz and /debug/pprof on this address (e.g. :9090)")
	batchWindow := flag.Duration("batch-window", 250*time.Microsecond, "gather window for cross-request extraction batching during the build (0 disables)")
	batchMax := flag.Int("batch-max", 16, "max sentences per batched decode forward (<2 disables batching)")
	flag.Parse()

	o := obs.NewObserver()
	o.SetTelemetry(obs.NewTelemetry(obs.TelemetryConfig{Metrics: o.Metrics}))
	if *metricsAddr != "" {
		srv, err := obs.ServeObserver(*metricsAddr, o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrics server: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("metrics: http://%s/metrics  pprof: http://%s/debug/pprof\n", srv.Addr, srv.Addr)
	}

	world := yelp.Generate(yelp.FastConfig())
	var ex *core.Extractor
	var src core.ReviewTagSource
	if *gold {
		src = core.GoldSource{}
		ex = &core.Extractor{Tagger: core.NewGoldTagger(nil), Pairer: pairing.WordDistance{}}
	} else {
		fmt.Println("training the neural extractor...")
		data := datasets.S1(datasets.Fast)
		encOpts := experiments.DefaultEncoderOpts(datasets.Fast)
		encOpts.Obs = o
		enc := experiments.BuildEncoder(encOpts, world.Domain, nil)
		cfg := tagger.DefaultConfig()
		cfg.Adversarial = true
		cfg.Epsilon = 0.2
		tg := tagger.New(enc, cfg)
		tg.Obs = o
		tg.Train(data.Train)
		ex = &core.Extractor{
			Tagger: tg,
			Pairer: pairing.Tree{Lex: parse.DomainLexicon(world.Domain), FromOpinions: true},
			// Reviews quote the same sentences; the cache decodes each once
			// per build.
			Cache:        extcache.New(4096),
			BatchWindow:  *batchWindow,
			BatchMaxSize: *batchMax,
		}
		src = core.NeuralSource{E: ex}
	}

	svc := core.NewService(world, ex, nil, core.DefaultConfig())
	svc.SetObserver(o)
	fmt.Println("extracting review tags...")
	svc.BuildEntityTags(src)

	tags := svc.CanonicalTags()
	if *tagsFlag != "" {
		tags = nil
		for _, t := range strings.Split(*tagsFlag, ",") {
			tags = append(tags, strings.TrimSpace(t))
		}
	}
	svc.IndexTags(tags)

	fmt.Printf("\nsubjective tag index (%d tags, %d entities, %d reviews)\n\n",
		svc.Index.Len(), len(world.Entities), world.ReviewCount())
	for _, tag := range svc.Index.Tags() {
		entries := svc.Index.Lookup(tag)
		fmt.Printf("%-22s %3d entities:", tag, len(entries))
		for i, e := range entries {
			if i >= *top {
				fmt.Printf(" …")
				break
			}
			fmt.Printf("  %s (%.2f)", world.Entity(e.EntityID).Name, e.Degree)
		}
		fmt.Println()
	}
}
