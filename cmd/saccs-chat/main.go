// Command saccs-chat is an interactive subjectivity-aware conversational
// search REPL over the synthetic Yelp world: type utterances like
//
//	I want an Italian restaurant in Montreal with delicious food
//
// and SACCS extracts the subjective tags, filters the objective search
// results, and ranks them by degrees of truth. Special commands:
//
//	:tags        show the indexed subjective tags
//	:history     show the user tag history (unknown tags seen so far)
//	:reindex     run an indexing round over the history (Fig. 1's loop)
//	:quit        exit
package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"

	"saccs/internal/core"
	"saccs/internal/datasets"
	"saccs/internal/experiments"
	"saccs/internal/pairing"
	"saccs/internal/parse"
	"saccs/internal/tagger"
	"saccs/internal/yelp"
)

func main() {
	fmt.Println("setting up: world + extractor (this takes a few seconds)...")
	world := yelp.Generate(yelp.FastConfig())
	data := datasets.S1(datasets.Fast)
	enc := experiments.BuildEncoder(experiments.DefaultEncoderOpts(datasets.Fast), world.Domain, nil)
	cfg := tagger.DefaultConfig()
	cfg.Adversarial = true
	cfg.Epsilon = 0.2
	tg := tagger.New(enc, cfg)
	tg.Train(data.Train)
	ex := &core.Extractor{
		Tagger: tg,
		Pairer: pairing.Tree{Lex: parse.DomainLexicon(world.Domain), FromOpinions: true},
	}
	svc := core.NewService(world, ex, nil, core.DefaultConfig())
	svc.BuildEntityTags(core.NeuralSource{E: ex})
	svc.IndexTags(svc.CanonicalTags()[:8])
	fmt.Printf("ready: %d restaurants, %d reviews, %d tags indexed\n\n",
		len(world.Entities), world.ReviewCount(), svc.Index.Len())

	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("you> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == ":quit", line == ":q":
			return
		case line == ":tags":
			fmt.Println(strings.Join(svc.Index.Tags(), ", "))
		case line == ":history":
			fmt.Println(svc.History.Pending())
		case line == ":reindex":
			added := svc.IndexPending()
			fmt.Printf("indexed %v; index now has %d tags\n", added, svc.Index.Len())
		default:
			resp := svc.Query(line)
			fmt.Printf("intent=%s slots=%v tags=%v", resp.Intent.Name, resp.Intent.Slots, resp.Tags)
			if len(resp.UnknownTags) > 0 {
				fmt.Printf(" (new tags queued: %v — :reindex to learn them)", resp.UnknownTags)
			}
			fmt.Println()
			for i, s := range resp.Results {
				if i >= 5 {
					break
				}
				e := world.Entity(s.EntityID)
				fmt.Printf("  %d. %-16s %.1f★  degree %.2f\n", i+1, e.Name, e.Stars, s.Score)
			}
		}
		fmt.Print("you> ")
	}
}
