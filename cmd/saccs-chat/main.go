// Command saccs-chat is an interactive subjectivity-aware conversational
// search REPL over the synthetic Yelp world: type utterances like
//
//	I want an Italian restaurant in Montreal with delicious food
//
// and SACCS extracts the subjective tags, filters the objective search
// results, and ranks them by degrees of truth. Special commands:
//
//	:tags        show the indexed subjective tags
//	:history     show the user tag history (unknown tags seen so far)
//	:reindex     run an indexing round over the history (Fig. 1's loop)
//	:stats       dump the runtime metrics snapshot (counters, gauges, stage latencies)
//	:trace       print the span tree of the most recent query
//	:slow        print the worst-K slow-query log (trace IDs, stage timings)
//	:quit        exit
//
// With -metrics-addr the process also serves /metrics (Prometheus text),
// /healthz + /readyz, /debug/slow (the slow-query log as JSON), and the
// pprof handlers under /debug/pprof on the given address.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"saccs/internal/core"
	"saccs/internal/datasets"
	"saccs/internal/experiments"
	"saccs/internal/extcache"
	"saccs/internal/nn"
	"saccs/internal/obs"
	"saccs/internal/pairing"
	"saccs/internal/parse"
	"saccs/internal/tagger"
	"saccs/internal/yelp"
)

func main() {
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /healthz, /readyz, /debug/slow and /debug/pprof on this address (e.g. :9090)")
	slowThreshold := flag.Duration("slow-threshold", 100*time.Millisecond, "queries at or above this duration enter the slow-query log (:slow)")
	batchWindow := flag.Duration("batch-window", 250*time.Microsecond, "gather window for cross-request extraction batching (0 disables)")
	batchMax := flag.Int("batch-max", 16, "max sentences per batched decode forward (<2 disables batching)")
	precisionFlag := flag.String("precision", "mixed", "utterance decode arithmetic: float64, mixed, or int8 (indexing always runs float64)")
	flag.Parse()
	precision, err := nn.ParsePrecision(*precisionFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "saccs-chat: %v\n", err)
		os.Exit(1)
	}

	o := obs.NewObserver()
	ring := obs.NewRingSink(512)
	o.SetTracer(obs.NewTracer(ring))
	// HeadSampleN 1 keeps :trace working for every query; the threshold only
	// gates the slow-query log.
	o.SetTelemetry(obs.NewTelemetry(obs.TelemetryConfig{
		Metrics:       o.Metrics,
		HeadSampleN:   1,
		SlowThreshold: *slowThreshold,
		RuntimeEvery:  10 * time.Second,
	}))
	if *metricsAddr != "" {
		srv, err := obs.ServeObserver(*metricsAddr, o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrics server: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("metrics: http://%s/metrics  slow: http://%s/debug/slow  pprof: http://%s/debug/pprof\n",
			srv.Addr, srv.Addr, srv.Addr)
	}

	fmt.Println("setting up: world + extractor (this takes a few seconds)...")
	world := yelp.Generate(yelp.FastConfig())
	data := datasets.S1(datasets.Fast)
	encOpts := experiments.DefaultEncoderOpts(datasets.Fast)
	encOpts.Obs = o
	enc := experiments.BuildEncoder(encOpts, world.Domain, nil)
	cfg := tagger.DefaultConfig()
	cfg.Adversarial = true
	cfg.Epsilon = 0.2
	cfg.Precision = precision
	tg := tagger.New(enc, cfg)
	tg.Obs = o
	tg.Train(data.Train)
	pairer := pairing.Tree{Lex: parse.DomainLexicon(world.Domain), FromOpinions: true}
	ex := &core.Extractor{
		Tagger: tg,
		Pairer: pairer,
		// Interactive sessions repeat themselves; the generation-keyed cache
		// serves repeated sentences without a decode (see :stats).
		Cache:        extcache.New(4096),
		BatchWindow:  *batchWindow,
		BatchMaxSize: *batchMax,
	}
	svc := core.NewService(world, ex, nil, core.DefaultConfig())
	svc.SetObserver(o)
	// Review indexing always extracts on the float64 reference path, whatever
	// -precision serves the REPL's utterance decodes — same split as the
	// library facade, so the indexed world is precision-independent.
	refEx := &core.Extractor{
		Tagger:       tagger.ReferenceView{M: tg},
		Pairer:       pairer,
		Cache:        extcache.New(4096),
		BatchWindow:  *batchWindow,
		BatchMaxSize: *batchMax,
	}
	svc.BuildEntityTags(core.NeuralSource{E: refEx})
	svc.IndexTags(svc.CanonicalTags()[:8])
	fmt.Printf("ready: %d restaurants, %d reviews, %d tags indexed\n\n",
		len(world.Entities), world.ReviewCount(), svc.Index.Len())

	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("you> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == ":quit", line == ":q":
			return
		case line == ":tags":
			fmt.Println(strings.Join(svc.Index.Tags(), ", "))
		case line == ":history":
			fmt.Println(svc.History.Pending())
		case line == ":reindex":
			added := svc.IndexPending()
			fmt.Printf("indexed %v; index now has %d tags\n", added, svc.Index.Len())
		case line == ":stats":
			o.Metrics.Snapshot().WriteText(os.Stdout)
		case line == ":trace":
			spans := ring.Spans()
			if root, ok := obs.LastRoot(spans); ok {
				obs.WriteTree(os.Stdout, obs.Subtree(spans, root.ID))
			} else {
				fmt.Println("no spans recorded yet — run a query first")
			}
		case line == ":slow":
			slow := o.Telemetry().SlowQueries()
			if len(slow) == 0 {
				fmt.Printf("no slow queries recorded (threshold %s)\n", *slowThreshold)
				break
			}
			for _, ev := range slow {
				fmt.Printf("%s  %-8s %10s  status=%s gen=%d tags=%d results=%d\n",
					ev.Trace, ev.Kind, ev.Duration.Round(time.Microsecond), ev.Status,
					ev.Generation, ev.Tags, ev.Results)
				for _, name := range obs.StageNames {
					if d, ok := ev.Stage[name]; ok {
						fmt.Printf("    %-16s %10s\n", name, d.Round(time.Microsecond))
					}
				}
			}
		default:
			resp := svc.Query(line)
			fmt.Printf("intent=%s slots=%v tags=%v", resp.Intent.Name, resp.Intent.Slots, resp.Tags)
			if len(resp.UnknownTags) > 0 {
				fmt.Printf(" (new tags queued: %v — :reindex to learn them)", resp.UnknownTags)
			}
			fmt.Println()
			for i, s := range resp.Results {
				if i >= 5 {
					break
				}
				e := world.Entity(s.EntityID)
				fmt.Printf("  %d. %-16s %.1f★  degree %.2f\n", i+1, e.Name, e.Stars, s.Score)
			}
		}
		fmt.Print("you> ")
	}
}
