// Command saccs-chat is an interactive subjectivity-aware conversational
// search REPL over the synthetic Yelp world: type utterances like
//
//	I want an Italian restaurant in Montreal with delicious food
//
// and SACCS extracts the subjective tags, filters the objective search
// results, and ranks them by degrees of truth. Special commands:
//
//	:tags        show the indexed subjective tags
//	:history     show the user tag history (unknown tags seen so far)
//	:reindex     run an indexing round over the history (Fig. 1's loop)
//	:stats       dump the runtime metrics snapshot (counters, gauges, stage latencies)
//	:trace       print the span tree of the most recent query
//	:quit        exit
//
// With -metrics-addr the process also serves the metrics registry in
// Prometheus text format at /metrics and the pprof handlers under
// /debug/pprof on the given address.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"saccs/internal/core"
	"saccs/internal/datasets"
	"saccs/internal/experiments"
	"saccs/internal/extcache"
	"saccs/internal/obs"
	"saccs/internal/pairing"
	"saccs/internal/parse"
	"saccs/internal/tagger"
	"saccs/internal/yelp"
)

func main() {
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /debug/pprof on this address (e.g. :9090)")
	flag.Parse()

	o := obs.NewObserver()
	ring := obs.NewRingSink(512)
	o.SetTracer(obs.NewTracer(ring))
	if *metricsAddr != "" {
		srv, err := obs.Serve(*metricsAddr, o.Metrics)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrics server: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("metrics: http://%s/metrics  pprof: http://%s/debug/pprof\n", srv.Addr, srv.Addr)
	}

	fmt.Println("setting up: world + extractor (this takes a few seconds)...")
	world := yelp.Generate(yelp.FastConfig())
	data := datasets.S1(datasets.Fast)
	encOpts := experiments.DefaultEncoderOpts(datasets.Fast)
	encOpts.Obs = o
	enc := experiments.BuildEncoder(encOpts, world.Domain, nil)
	cfg := tagger.DefaultConfig()
	cfg.Adversarial = true
	cfg.Epsilon = 0.2
	tg := tagger.New(enc, cfg)
	tg.Obs = o
	tg.Train(data.Train)
	ex := &core.Extractor{
		Tagger: tg,
		Pairer: pairing.Tree{Lex: parse.DomainLexicon(world.Domain), FromOpinions: true},
		// Interactive sessions repeat themselves; the generation-keyed cache
		// serves repeated sentences without a decode (see :stats).
		Cache: extcache.New(4096),
	}
	svc := core.NewService(world, ex, nil, core.DefaultConfig())
	svc.SetObserver(o)
	svc.BuildEntityTags(core.NeuralSource{E: ex})
	svc.IndexTags(svc.CanonicalTags()[:8])
	fmt.Printf("ready: %d restaurants, %d reviews, %d tags indexed\n\n",
		len(world.Entities), world.ReviewCount(), svc.Index.Len())

	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("you> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == ":quit", line == ":q":
			return
		case line == ":tags":
			fmt.Println(strings.Join(svc.Index.Tags(), ", "))
		case line == ":history":
			fmt.Println(svc.History.Pending())
		case line == ":reindex":
			added := svc.IndexPending()
			fmt.Printf("indexed %v; index now has %d tags\n", added, svc.Index.Len())
		case line == ":stats":
			o.Metrics.Snapshot().WriteText(os.Stdout)
		case line == ":trace":
			spans := ring.Spans()
			if root, ok := obs.LastRoot(spans); ok {
				obs.WriteTree(os.Stdout, obs.Subtree(spans, root.ID))
			} else {
				fmt.Println("no spans recorded yet — run a query first")
			}
		default:
			resp := svc.Query(line)
			fmt.Printf("intent=%s slots=%v tags=%v", resp.Intent.Name, resp.Intent.Slots, resp.Tags)
			if len(resp.UnknownTags) > 0 {
				fmt.Printf(" (new tags queued: %v — :reindex to learn them)", resp.UnknownTags)
			}
			fmt.Println()
			for i, s := range resp.Results {
				if i >= 5 {
					break
				}
				e := world.Entity(s.EntityID)
				fmt.Printf("  %d. %-16s %.1f★  degree %.2f\n", i+1, e.Name, e.Stars, s.Score)
			}
		}
		fmt.Print("you> ")
	}
}
