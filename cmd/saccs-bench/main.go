// Command saccs-bench regenerates every table and figure of the paper's
// evaluation (§6). By default it runs at fast (CI) scale; -scale paper uses
// the paper's corpus sizes (280 entities / ~7000 reviews, Table 3 dataset
// sizes, 100 queries per difficulty, 15 training epochs).
//
// The "stages" section benchmarks every query-path stage in isolation
// (parse, tagger Viterbi decode, pairing, full extraction, index build,
// exact and similarity-fallback resolution, ranking, and the end-to-end
// query) and writes the results both as a human-readable table and as
// machine-readable JSON (-bench-out, default BENCH.json).
//
// Usage:
//
//	saccs-bench [-scale fast|paper]
//	            [-only table2,table3,table4,table5,figures,stages]
//	            [-bench-out BENCH.json] [-metrics-addr :9090]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"saccs/internal/core"
	"saccs/internal/datasets"
	"saccs/internal/experiments"
	"saccs/internal/index"
	"saccs/internal/obs"
	"saccs/internal/pairing"
	"saccs/internal/parse"
	"saccs/internal/search"
	"saccs/internal/sim"
	"saccs/internal/tagger"
	"saccs/internal/tokenize"
	"saccs/internal/yelp"
)

func main() {
	scaleFlag := flag.String("scale", "fast", "experiment scale: fast or paper")
	only := flag.String("only", "", "comma-separated subset: table2,table3,table4,table5,figures,stages")
	benchOut := flag.String("bench-out", "BENCH.json", "file for the machine-readable stage benchmark results (empty disables)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /debug/pprof on this address (e.g. :9090)")
	flag.Parse()

	var scale experiments.Scale
	switch *scaleFlag {
	case "fast":
		scale = experiments.Fast
	case "paper":
		scale = experiments.Paper
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want fast or paper)\n", *scaleFlag)
		os.Exit(2)
	}

	o := obs.NewObserver()
	if *metricsAddr != "" {
		srv, err := obs.Serve(*metricsAddr, o.Metrics)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrics server: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("metrics: http://%s/metrics  pprof: http://%s/debug/pprof\n", srv.Addr, srv.Addr)
	}

	want := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
	}
	run := func(name string, f func()) {
		if len(want) > 0 && !want[name] {
			return
		}
		start := time.Now()
		fmt.Printf("=== %s ===\n", name)
		f()
		fmt.Printf("(%s took %s)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("table3", func() { experiments.Table3(scale, os.Stdout) })
	run("figures", func() {
		experiments.Figure1(os.Stdout)
		experiments.Figure2(scale, os.Stdout)
		experiments.Figure5(scale, os.Stdout)
	})
	run("table5", func() { experiments.Table5(scale, os.Stdout) })
	run("table4", func() { experiments.Table4(scale, os.Stdout) })
	run("table2", func() { experiments.Table2(scale, os.Stdout) })
	run("stages", func() { stageBenchmarks(o, *benchOut) })
}

// stageResult is one row of BENCH.json.
type stageResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// benchFile is the BENCH.json document.
type benchFile struct {
	Command string        `json:"command"`
	Stages  []stageResult `json:"stages"`
}

// stageBenchmarks measures every query-path stage in isolation with
// testing.Benchmark and reports ns/op plus allocation counts, writing both a
// human table and (when outPath is non-empty) machine-readable JSON.
func stageBenchmarks(o *obs.Observer, outPath string) {
	fmt.Println("building the fast pipeline for the stage benchmarks...")
	world := yelp.Generate(yelp.FastConfig())
	data := datasets.S1(datasets.Fast)
	encOpts := experiments.DefaultEncoderOpts(datasets.Fast)
	encOpts.Obs = o
	enc := experiments.BuildEncoder(encOpts, world.Domain, nil)
	cfg := tagger.DefaultConfig()
	cfg.Adversarial = true
	cfg.Epsilon = 0.2
	tg := tagger.New(enc, cfg)
	tg.Obs = o
	tg.Train(data.Train)
	ex := &core.Extractor{
		Tagger: tg,
		Pairer: pairing.Tree{Lex: parse.DomainLexicon(world.Domain), FromOpinions: true},
	}
	svc := core.NewService(world, ex, nil, core.DefaultConfig())
	svc.SetObserver(o)
	svc.BuildEntityTags(core.NeuralSource{E: ex})
	canon := svc.CanonicalTags()
	svc.IndexTags(canon[:8])

	utterance := "I want an Italian restaurant in Montreal with delicious food and nice staff"
	tokens := tokenize.Words(utterance)
	intent := search.ParseUtterance(utterance)
	apiResults := svc.API.Search(intent.Slots)
	queryTags := ex.ExtractTags(utterance)
	entityTags := svc.EntityTags()

	// Pre-split spans so the pairing stage is measured alone.
	labels := tg.Predict(tokens)
	var aspects, opinions []tokenize.Span
	for _, sp := range tokenize.Spans(labels) {
		if sp.Kind == tokenize.AspectSpan {
			aspects = append(aspects, sp)
		} else {
			opinions = append(opinions, sp)
		}
	}
	buildTags := make([]string, 0, 8)
	for _, t := range canon[:8] {
		buildTags = append(buildTags, strings.ToLower(t))
	}
	var exactTag string
	svc.Index.EachTag(func(t string) bool { exactTag = t; return false })
	// The last canonical tags are not indexed, so resolving one exercises
	// the similarity fallback of Algorithm 1.
	similarTag := strings.ToLower(canon[len(canon)-1])

	stages := []struct {
		name string
		fn   func()
	}{
		{"parse", func() { search.ParseUtterance(utterance) }},
		{"tagger.decode", func() { tg.Predict(tokens) }},
		{"pairing.pairs", func() { ex.Pairer.Pairs(tokens, aspects, opinions) }},
		{"extract", func() { ex.ExtractFromTokens(tokens) }},
		{"index.build", func() {
			ix := index.New(sim.NewConceptual(), svc.Cfg.ThetaIndex)
			ix.Build(buildTags, entityTags)
		}},
		{"index.resolve.exact", func() { svc.Index.Resolve(exactTag, svc.Cfg.ThetaFilter) }},
		{"index.resolve.similar", func() { svc.Index.Resolve(similarTag, svc.Cfg.ThetaFilter) }},
		{"rank", func() { svc.Ranker.Rank(apiResults, queryTags) }},
		{"query", func() { svc.Query(utterance) }},
	}

	results := make([]stageResult, 0, len(stages))
	fmt.Printf("%-22s %14s %12s %12s\n", "stage", "ns/op", "allocs/op", "B/op")
	for _, st := range stages {
		fn := st.fn
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fn()
			}
		})
		row := stageResult{
			Name:        st.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}
		results = append(results, row)
		fmt.Printf("%-22s %14.0f %12d %12d\n", row.Name, row.NsPerOp, row.AllocsPerOp, row.BytesPerOp)
	}

	if outPath == "" {
		return
	}
	doc := benchFile{Command: "saccs-bench -only stages", Stages: results}
	data2, err := json.MarshalIndent(doc, "", "  ")
	if err == nil {
		err = os.WriteFile(outPath, append(data2, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "writing %s: %v\n", outPath, err)
		return
	}
	fmt.Printf("wrote %s (%d stages)\n", outPath, len(results))
}
