// Command saccs-bench regenerates every table and figure of the paper's
// evaluation (§6). By default it runs at fast (CI) scale; -scale paper uses
// the paper's corpus sizes (280 entities / ~7000 reviews, Table 3 dataset
// sizes, 100 queries per difficulty, 15 training epochs).
//
// Usage:
//
//	saccs-bench [-scale fast|paper] [-only table2,table3,table4,table5,figures]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"saccs/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "fast", "experiment scale: fast or paper")
	only := flag.String("only", "", "comma-separated subset: table2,table3,table4,table5,figures")
	flag.Parse()

	var scale experiments.Scale
	switch *scaleFlag {
	case "fast":
		scale = experiments.Fast
	case "paper":
		scale = experiments.Paper
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want fast or paper)\n", *scaleFlag)
		os.Exit(2)
	}

	want := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
	}
	run := func(name string, f func()) {
		if len(want) > 0 && !want[name] {
			return
		}
		start := time.Now()
		fmt.Printf("=== %s ===\n", name)
		f()
		fmt.Printf("(%s took %s)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("table3", func() { experiments.Table3(scale, os.Stdout) })
	run("figures", func() {
		experiments.Figure1(os.Stdout)
		experiments.Figure2(scale, os.Stdout)
		experiments.Figure5(scale, os.Stdout)
	})
	run("table5", func() { experiments.Table5(scale, os.Stdout) })
	run("table4", func() { experiments.Table4(scale, os.Stdout) })
	run("table2", func() { experiments.Table2(scale, os.Stdout) })
}
