// Command saccs-bench regenerates every table and figure of the paper's
// evaluation (§6). By default it runs at fast (CI) scale; -scale paper uses
// the paper's corpus sizes (280 entities / ~7000 reviews, Table 3 dataset
// sizes, 100 queries per difficulty, 15 training epochs).
//
// The "stages" section benchmarks every query-path stage in isolation
// (parse, tagger Viterbi decode, pairing, full extraction, index build,
// exact and similarity-fallback resolution, ranking, and the end-to-end
// query) and writes the results both as a human-readable table and as
// machine-readable JSON (-bench-out, default BENCH.json).
//
// The "parallel" section measures cold-path end-to-end query throughput at
// one goroutine and at -parallel goroutines over the same pipeline, with the
// facade's default cross-request extraction batching configured: every query
// is a distinct multi-sentence utterance (no extraction cache, no batch
// dedup), so the decode work is real and concurrent queries can only beat
// the single-goroutine figure by sharing forwards through the gather window.
// With -qps-guard the process exits nonzero if the multi-goroutine pass is
// slower than the single-goroutine pass — the regression CI smoke gate. The
// section also compares the public facade sharded: the same cold workload at
// 1 shard / 1 goroutine and at -parallel shards / -parallel goroutines, and
// the guard extends to it — sharded concurrent QPS must beat the serial
// single-shard baseline, so scatter-gather fan-out can never silently eat
// the batching wins.
//
// The "batch" section sweeps the gather window (off, 100µs, 250µs, 500µs)
// across 1/2/4/8 goroutines on the same cold workload and records QPS plus
// the shared/solo decode counts per pass — the tuning table for BatchWindow.
//
// The "contention" section measures what a writer costs the
// readers: -readers goroutines query continuously for a readers-only
// baseline pass, then again while one goroutine rebuilds the index in a loop
// publishing new snapshot generations the whole time. With pinned immutable
// snapshots the reader QPS of the two passes should be close; a large gap
// would mean readers are blocking on the writer. All sections append to the
// same BENCH.json.
//
// The "cache" section measures the generation-keyed extraction cache: cold
// (uncached) vs warm (cache pre-warmed) per-sentence extraction latency, the
// warm pass's hit ratio, and end-to-end repeated-utterance query QPS with
// the cache off and on. Each QPS pass runs for -parallel-dur.
//
// The "latency" section runs a closed-loop end-to-end query pass with
// request telemetry attached and reports the latency distribution — p50,
// p90, p99, p999 from the high-resolution log-linear histogram — alongside
// the pass's QPS, so BENCH.json tracks tail latency and not just throughput.
//
// The "ingest" section measures the streaming tier on the real filesystem:
// durable append throughput under FsyncAlways (each ack is an fsync) and
// FsyncBatch (sync at publication), append and publish-lag quantiles from
// the ingest histograms, and the crash-recovery figure — how fast a reopened
// ingester replays the log it just wrote.
//
// The "serve" section benchmarks the HTTP tier end to end: for each shard
// count (1, 2, 4) it trains a facade client, starts a real saccs-server on
// loopback, and drives /v1/query with an open-loop load generator — requests
// fire at fixed arrival rates regardless of how fast earlier ones complete,
// and latency is measured from each request's scheduled arrival time, so
// queueing delay under overload is charged to the server, never hidden by a
// slow client (no coordinated omission). The rate ladder is calibrated once
// against the 1-shard server and reused for every shard count, so the
// max-sustained figures (highest offered rate with achieved/offered >= 0.95
// and zero errors) are directly comparable.
//
// Usage:
//
//	saccs-bench [-scale fast|paper]
//	            [-only table2,table3,table4,table5,figures,stages,quant,parallel,batch,contention,cache,latency,ingest,serve]
//	            [-parallel N] [-parallel-dur 2s] [-qps-guard] [-quant-guard]
//	            [-readers N] [-contention-dur 2s]
//	            [-bench-out BENCH.json] [-metrics-addr :9090]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"saccs"
	"saccs/internal/core"
	"saccs/internal/datasets"
	"saccs/internal/experiments"
	"saccs/internal/extcache"
	"saccs/internal/index"
	"saccs/internal/ingest"
	"saccs/internal/nn"
	"saccs/internal/obs"
	"saccs/internal/pairing"
	"saccs/internal/parse"
	"saccs/internal/search"
	"saccs/internal/server"
	"saccs/internal/sim"
	"saccs/internal/tagger"
	"saccs/internal/tokenize"
	"saccs/internal/yelp"
)

func main() {
	scaleFlag := flag.String("scale", "fast", "experiment scale: fast or paper")
	only := flag.String("only", "", "comma-separated subset: table2,table3,table4,table5,figures,stages,quant,parallel,batch,contention,cache,latency,ingest,serve")
	benchOut := flag.String("bench-out", "BENCH.json", "file for the machine-readable benchmark results (empty disables)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /debug/pprof on this address (e.g. :9090)")
	parallelN := flag.Int("parallel", runtime.GOMAXPROCS(0), "goroutines for the parallel query benchmark")
	qpsGuard := flag.Bool("qps-guard", false, "exit nonzero if the parallel section's multi-goroutine QPS falls below its single-goroutine QPS")
	quantGuard := flag.Bool("quant-guard", false, "exit nonzero if the quant section's mixed-precision cold decode is not at least 2x the float64 decode")
	parallelDur := flag.Duration("parallel-dur", 2*time.Second, "duration of each parallel benchmark pass")
	readersN := flag.Int("readers", runtime.GOMAXPROCS(0), "reader goroutines for the contention benchmark")
	contentionDur := flag.Duration("contention-dur", 2*time.Second, "duration of each contention benchmark pass")
	flag.Parse()

	var scale experiments.Scale
	switch *scaleFlag {
	case "fast":
		scale = experiments.Fast
	case "paper":
		scale = experiments.Paper
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want fast or paper)\n", *scaleFlag)
		os.Exit(2)
	}

	o := obs.NewObserver()
	if *metricsAddr != "" {
		srv, err := obs.Serve(*metricsAddr, o.Metrics)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrics server: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("metrics: http://%s/metrics  pprof: http://%s/debug/pprof\n", srv.Addr, srv.Addr)
	}

	want := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
	}
	run := func(name string, f func()) {
		if len(want) > 0 && !want[name] {
			return
		}
		start := time.Now()
		fmt.Printf("=== %s ===\n", name)
		f()
		fmt.Printf("(%s took %s)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	doc := &benchFile{Command: strings.TrimSpace("saccs-bench " + strings.Join(os.Args[1:], " "))}
	run("table3", func() { experiments.Table3(scale, os.Stdout) })
	run("figures", func() {
		experiments.Figure1(os.Stdout)
		experiments.Figure2(scale, os.Stdout)
		experiments.Figure5(scale, os.Stdout)
	})
	run("table5", func() { experiments.Table5(scale, os.Stdout) })
	run("table4", func() { experiments.Table4(scale, os.Stdout) })
	run("table2", func() { experiments.Table2(scale, os.Stdout) })
	run("stages", func() { stageBenchmarks(o, doc) })
	run("quant", func() { quantBenchmarks(o, doc, *quantGuard) })
	run("parallel", func() { parallelBenchmarks(o, doc, *parallelN, *parallelDur, *qpsGuard) })
	run("batch", func() { batchBenchmarks(o, doc, *parallelDur) })
	run("contention", func() { contentionBenchmarks(o, doc, *readersN, *contentionDur) })
	run("cache", func() { cacheBenchmarks(o, doc, *parallelDur) })
	run("latency", func() { latencyBenchmarks(o, doc, *parallelDur) })
	run("ingest", func() { ingestBenchmarks(doc, *parallelDur) })
	run("serve", func() { serveBenchmarks(doc, []int{1, 2, 4}, *parallelDur) })

	if *benchOut != "" && (len(doc.Stages) > 0 || len(doc.Quant) > 0 || len(doc.Parallel) > 0 || len(doc.Batch) > 0 || len(doc.Contention) > 0 || doc.Cache != nil || doc.Latency != nil || doc.Ingest != nil || doc.Serve != nil) {
		data, err := json.MarshalIndent(doc, "", "  ")
		if err == nil {
			err = os.WriteFile(*benchOut, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *benchOut, err)
			os.Exit(1)
		}
		cacheRows := 0
		if doc.Cache != nil {
			cacheRows = len(doc.Cache.Results)
		}
		latency := "no latency section"
		if doc.Latency != nil {
			latency = "latency quantiles"
		}
		ingestRows := 0
		if doc.Ingest != nil {
			ingestRows = len(doc.Ingest.Results)
		}
		serveRows := 0
		if doc.Serve != nil {
			serveRows = len(doc.Serve.Passes)
		}
		fmt.Printf("wrote %s (%d stages, %d parallel passes, %d batch passes, %d contention passes, %d cache rows, %s, %d ingest rows, %d serve passes)\n",
			*benchOut, len(doc.Stages), len(doc.Parallel), len(doc.Batch), len(doc.Contention), cacheRows, latency, ingestRows, serveRows)
	}
}

// stageResult is one row of BENCH.json. Rows whose name ends in ".batchN"
// (e.g. tagger.decode.batch4) are normalized per sequence — ns/allocs/bytes
// divided by N — so they compare directly against their solo row; Iterations
// still counts whole batched ops.
type stageResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// parallelResult is one throughput pass of the parallel benchmark. Shards is
// 0 for the in-process core service passes and set for the facade passes
// that compare a sharded client against the single-shard baseline.
type parallelResult struct {
	Shards     int     `json:"shards,omitempty"`
	Goroutines int     `json:"goroutines"`
	Queries    int64   `json:"queries"`
	Seconds    float64 `json:"seconds"`
	QPS        float64 `json:"qps"`
}

// batchResult is one pass of the gather-window sweep: cold-path query
// throughput at one (window, goroutines) point, plus how the decodes split
// between shared batch forwards and solo bypasses.
type batchResult struct {
	WindowUS      float64 `json:"window_us"`
	Goroutines    int     `json:"goroutines"`
	Queries       int64   `json:"queries"`
	Seconds       float64 `json:"seconds"`
	QPS           float64 `json:"qps"`
	SharedDecodes int64   `json:"shared_decodes"`
	SoloDecodes   int64   `json:"solo_decodes"`
}

// contentionResult is one pass of the readers-vs-rebuild benchmark.
type contentionResult struct {
	// Mode is "readers-only" (baseline) or "readers+rebuild" (one writer
	// republishing the index continuously under the readers).
	Mode     string  `json:"mode"`
	Readers  int     `json:"readers"`
	Queries  int64   `json:"queries"`
	Rebuilds int64   `json:"rebuilds"`
	Seconds  float64 `json:"seconds"`
	QPS      float64 `json:"qps"`
}

// cacheSection is the extraction-cache benchmark's BENCH.json entry.
type cacheSection struct {
	// Results holds the cold (uncached) and warm (cache pre-warmed)
	// per-sentence extraction measurements.
	Results []stageResult `json:"results"`
	// Speedup is cold ns/op over warm ns/op.
	Speedup float64 `json:"speedup"`
	// HitRatio is the warm pass's cache hit ratio.
	HitRatio float64 `json:"hit_ratio"`
	// ColdQPS and WarmQPS are end-to-end repeated-utterance query
	// throughput with the cache detached and attached.
	ColdQPS float64 `json:"cold_qps"`
	WarmQPS float64 `json:"warm_qps"`
	// QPSSpeedup is WarmQPS over ColdQPS.
	QPSSpeedup float64 `json:"qps_speedup"`
}

// latencySection is the tail-latency benchmark's BENCH.json entry: the
// end-to-end query latency distribution read from the high-resolution
// log-linear histogram after a closed-loop pass.
type latencySection struct {
	Queries int64   `json:"queries"`
	Seconds float64 `json:"seconds"`
	QPS     float64 `json:"qps"`
	// Quantiles are in nanoseconds, accurate to the histogram's 1/32
	// relative error.
	P50Ns  float64 `json:"p50_ns"`
	P90Ns  float64 `json:"p90_ns"`
	P99Ns  float64 `json:"p99_ns"`
	P999Ns float64 `json:"p999_ns"`
	MeanNs float64 `json:"mean_ns"`
}

// ingestResult is one fsync-policy pass of the streaming-ingest benchmark.
type ingestResult struct {
	// Mode is "fsync-always" (every ack is an fsync) or "fsync-batch"
	// (sync at publication boundaries).
	Mode string `json:"mode"`
	// Goroutines is how many concurrent appenders drove the pass (absent or
	// 1: the serial baseline). The fsync-batch rows at 1/4/16 goroutines
	// measure group-commit ack latency: appends acknowledge without a
	// per-record fsync and the publication-boundary sync amortizes across
	// everything the group appended since the last barrier, so the ack
	// quantiles show pure WAL contention rather than storage flushes.
	Goroutines    int     `json:"goroutines,omitempty"`
	Appends       int64   `json:"appends"`
	Seconds       float64 `json:"seconds"`
	AppendsPerSec float64 `json:"appends_per_sec"`
	// Append quantiles are the durable-ack latency seen by callers.
	AppendP50Ns float64 `json:"append_p50_ns"`
	AppendP99Ns float64 `json:"append_p99_ns"`
	// Publish-lag quantiles measure bounded staleness: per publication, how
	// long its oldest pending review waited to become queryable.
	PublishLagP50Ns float64 `json:"publish_lag_p50_ns"`
	PublishLagP99Ns float64 `json:"publish_lag_p99_ns"`
	Publishes       int64   `json:"publishes"`
	Compactions     int64   `json:"compactions"`
}

// ingestSection is the streaming-ingest benchmark's BENCH.json entry.
type ingestSection struct {
	Results []ingestResult `json:"results"`
	// RecoverySeconds is how long a fresh ingester took to replay the
	// fsync-always pass's log (WAL + checkpoint + delta stack) at reopen.
	RecoverySeconds  float64 `json:"recovery_seconds"`
	RecoveredReviews int     `json:"recovered_reviews"`
	RecoveredPerSec  float64 `json:"recovered_per_sec"`
}

// servePass is one open-loop pass of the HTTP serving benchmark: one shard
// count driven at one fixed offered arrival rate.
type servePass struct {
	Shards     int     `json:"shards"`
	OfferedQPS float64 `json:"offered_qps"`
	// AchievedQPS is completed requests over the full pass (scheduled span
	// plus drain); Sustained means achieved/offered >= 0.95 with no errors.
	AchievedQPS float64 `json:"achieved_qps"`
	Requests    int64   `json:"requests"`
	Errors      int64   `json:"errors"`
	Sustained   bool    `json:"sustained"`
	// Latency quantiles are measured from each request's scheduled arrival
	// time, not its send time, so queueing under overload is included.
	P50Ns  float64 `json:"p50_ns"`
	P99Ns  float64 `json:"p99_ns"`
	P999Ns float64 `json:"p999_ns"`
}

// serveShardRow summarizes one shard count: the highest offered rate on the
// shared ladder the server sustained.
type serveShardRow struct {
	Shards          int     `json:"shards"`
	MaxSustainedQPS float64 `json:"max_sustained_qps"`
}

// serveSection is the HTTP serving benchmark's BENCH.json entry.
type serveSection struct {
	// CalibratedQPS is the closed-loop throughput estimate of the 1-shard
	// server the shared rate ladder was derived from.
	CalibratedQPS float64         `json:"calibrated_qps"`
	Passes        []servePass     `json:"passes"`
	MaxSustained  []serveShardRow `json:"max_sustained"`
}

// benchFile is the BENCH.json document.
type benchFile struct {
	Command    string             `json:"command"`
	Stages     []stageResult      `json:"stages,omitempty"`
	Quant      []stageResult      `json:"quant,omitempty"`
	Parallel   []parallelResult   `json:"parallel,omitempty"`
	Batch      []batchResult      `json:"batch,omitempty"`
	Contention []contentionResult `json:"contention,omitempty"`
	Cache      *cacheSection      `json:"cache,omitempty"`
	Latency    *latencySection    `json:"latency,omitempty"`
	Ingest     *ingestSection     `json:"ingest,omitempty"`
	Serve      *serveSection      `json:"serve,omitempty"`
}

// benchPipeline builds the fast pipeline the stage and parallel benchmarks
// measure: trained tagger, tree pairer, service with the first 8 canonical
// tags indexed. Built once and shared between sections.
var benchPipeline struct {
	once sync.Once
	svc  *core.Service
	ex   *core.Extractor
	tg   *tagger.Model
}

func buildBenchPipeline(o *obs.Observer) (*core.Service, *core.Extractor, *tagger.Model) {
	benchPipeline.once.Do(func() {
		fmt.Println("building the fast pipeline for the benchmarks...")
		world := yelp.Generate(yelp.FastConfig())
		data := datasets.S1(datasets.Fast)
		encOpts := experiments.DefaultEncoderOpts(datasets.Fast)
		encOpts.Obs = o
		enc := experiments.BuildEncoder(encOpts, world.Domain, nil)
		cfg := tagger.DefaultConfig()
		cfg.Adversarial = true
		cfg.Epsilon = 0.2
		cfg.Precision = nn.Mixed // the serving default (saccs.Config.Precision)
		tg := tagger.New(enc, cfg)
		tg.Obs = o
		tg.Train(data.Train)
		ex := &core.Extractor{
			Tagger: tg,
			Pairer: pairing.Tree{Lex: parse.DomainLexicon(world.Domain), FromOpinions: true},
		}
		svc := core.NewService(world, ex, nil, core.DefaultConfig())
		svc.SetObserver(o)
		svc.BuildEntityTags(core.NeuralSource{E: ex})
		svc.IndexTags(svc.CanonicalTags()[:8])
		benchPipeline.svc, benchPipeline.ex, benchPipeline.tg = svc, ex, tg
	})
	return benchPipeline.svc, benchPipeline.ex, benchPipeline.tg
}

// stageBenchmarks measures every query-path stage in isolation with
// testing.Benchmark and reports ns/op plus allocation counts, printing a
// human table and appending rows to doc.
func stageBenchmarks(o *obs.Observer, doc *benchFile) {
	svc, ex, tg := buildBenchPipeline(o)
	canon := svc.CanonicalTags()

	utterance := "I want an Italian restaurant in Montreal with delicious food and nice staff"
	tokens := tokenize.Words(utterance)
	intent := search.ParseUtterance(utterance)
	apiResults := svc.API.Search(intent.Slots)
	queryTags := ex.ExtractTags(utterance)
	entityTags := svc.EntityTags()

	// Pre-split spans so the pairing stage is measured alone.
	labels := tg.Predict(tokens)
	var aspects, opinions []tokenize.Span
	for _, sp := range tokenize.Spans(labels) {
		if sp.Kind == tokenize.AspectSpan {
			aspects = append(aspects, sp)
		} else {
			opinions = append(opinions, sp)
		}
	}
	buildTags := make([]string, 0, 8)
	for _, t := range canon[:8] {
		buildTags = append(buildTags, strings.ToLower(t))
	}
	var exactTag string
	svc.Index.EachTag(func(t string) bool { exactTag = t; return false })
	// The last canonical tags are not indexed, so resolving one exercises
	// the similarity fallback of Algorithm 1.
	similarTag := strings.ToLower(canon[len(canon)-1])

	// Four copies of the same sentence keep the batched row directly
	// comparable with the serial one: one op decodes 4x the work, so the
	// per-sequence batch speedup is decode ns/op over a quarter of this
	// row's ns/op.
	batch4 := [][]string{tokens, tokens, tokens, tokens}

	stages := []struct {
		name string
		fn   func()
	}{
		{"parse", func() { search.ParseUtterance(utterance) }},
		{"tagger.decode", func() { tg.Predict(tokens) }},
		{"tagger.decode.float64", func() { tg.PredictAt(tokens, nn.Float64) }},
		{"tagger.decode.batch4", func() { tg.PredictBatch(batch4) }},
		{"pairing.pairs", func() { ex.Pairer.Pairs(tokens, aspects, opinions) }},
		{"extract", func() { ex.ExtractFromTokens(tokens) }},
		{"index.build", func() {
			ix := index.New(sim.NewConceptual(), svc.Cfg.ThetaIndex)
			ix.Build(buildTags, entityTags)
		}},
		{"index.resolve.exact", func() { svc.Index.Resolve(exactTag, svc.Cfg.ThetaFilter) }},
		{"index.resolve.similar", func() { svc.Index.Resolve(similarTag, svc.Cfg.ThetaFilter) }},
		{"rank", func() { svc.Ranker.Rank(apiResults, queryTags) }},
		{"query", func() { svc.Query(utterance) }},
	}

	results := make([]stageResult, 0, len(stages))
	fmt.Printf("%-22s %14s %12s %12s\n", "stage", "ns/op", "allocs/op", "B/op")
	for _, st := range stages {
		fn := st.fn
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fn()
			}
		})
		row := stageResult{
			Name:        st.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}
		if n := batchRowSize(row.Name); n > 1 {
			row.NsPerOp /= float64(n)
			row.AllocsPerOp /= int64(n)
			row.BytesPerOp /= int64(n)
		}
		results = append(results, row)
		fmt.Printf("%-22s %14.0f %12d %12d\n", row.Name, row.NsPerOp, row.AllocsPerOp, row.BytesPerOp)
	}
	var decodeNs, batch4Ns float64
	for _, r := range results {
		switch r.Name {
		case "tagger.decode":
			decodeNs = r.NsPerOp
		case "tagger.decode.batch4":
			batch4Ns = r.NsPerOp
		}
	}
	if batch4Ns > 0 {
		fmt.Printf("batch-4 decode: %.0f ns/sequence, %.2fx the serial decode\n",
			batch4Ns, decodeNs/batch4Ns)
	}
	doc.Stages = results
}

// batchRowSize extracts N from a ".batchN" stage-name suffix (0 otherwise),
// the divisor that normalizes batched rows to per-sequence figures.
func batchRowSize(name string) int {
	i := strings.LastIndex(name, ".batch")
	if i < 0 {
		return 0
	}
	n := 0
	for _, c := range name[i+len(".batch"):] {
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + int(c-'0')
	}
	return n
}

// quantBenchmarks measures the cold Viterbi decode at each precision mode
// over the shared pipeline and reports the mixed- and int8-mode speedups
// against full float64. With guard set the process exits nonzero if the
// mixed decode is not at least 2x float64 — the CI floor under the paper
// target of 3x (oracle/quant-drift separately pins that the speed does not
// come at the cost of label agreement).
func quantBenchmarks(o *obs.Observer, doc *benchFile, guard bool) {
	_, _, tg := buildBenchPipeline(o)
	tokens := tokenize.Words("I want an Italian restaurant in Montreal with delicious food and nice staff")

	modes := []struct {
		name string
		p    nn.Precision
	}{
		{"tagger.decode.float64", nn.Float64},
		{"tagger.decode.mixed", nn.Mixed},
		{"tagger.decode.int8", nn.Int8},
	}
	results := make([]stageResult, 0, len(modes))
	fmt.Printf("%-22s %14s %12s %12s\n", "mode", "ns/op", "allocs/op", "B/op")
	for _, m := range modes {
		p := m.p
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tg.PredictAt(tokens, p)
			}
		})
		row := stageResult{
			Name:        m.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}
		results = append(results, row)
		fmt.Printf("%-22s %14.0f %12d %12d\n", row.Name, row.NsPerOp, row.AllocsPerOp, row.BytesPerOp)
	}
	f64, mixed, int8ns := results[0].NsPerOp, results[1].NsPerOp, results[2].NsPerOp
	if mixed > 0 && int8ns > 0 {
		fmt.Printf("mixed cold decode: %.2fx float64; int8: %.2fx float64\n", f64/mixed, f64/int8ns)
	}
	doc.Quant = results
	if guard && mixed > 0 && f64/mixed < 2 {
		fmt.Fprintf(os.Stderr, "quant guard: mixed cold decode is %.2fx float64, want >= 2x\n", f64/mixed)
		os.Exit(1)
	}
}

// coldUtterances builds n distinct three-sentence utterances. Distinctness
// matters twice: it keeps the extraction cache out of the picture (every
// sentence is a real decode — the cold path), and it keeps the batcher's
// duplicate folding from sharing slots, so a batched pass wins only by
// genuinely sharing forward passes, never by answering several callers from
// one sequence.
func coldUtterances(n int) []string {
	adjs := []string{"delicious", "friendly", "quiet", "creative", "amazing",
		"attentive", "cozy", "fresh", "spicy", "generous", "charming", "polite"}
	nouns := []string{"food", "staff", "atmosphere", "cooking", "pizza",
		"waiters", "desserts", "portions", "music", "service", "tables", "coffee"}
	out := make([]string, n)
	for i := range out {
		a1 := adjs[i%len(adjs)]
		n1 := nouns[(i/len(adjs))%len(nouns)]
		a2 := adjs[(i/(len(adjs)*len(nouns)))%len(adjs)]
		out[i] = fmt.Sprintf(
			"I want an Italian restaurant in Montreal with %s %s and %s desserts. "+
				"My friends keep asking for a place with %s staff and really %s portions. "+
				"It should also have %s music plus some %s coffee for the late evenings.",
			a1, n1, a2, a1, a2, a1, a2)
	}
	return out
}

// coldQueryPass runs g goroutines of end-to-end queries over the cold
// utterance pool for dur. A shared round-robin counter hands every query the
// next distinct utterance, so concurrent requests never carry the same
// sentences.
func coldQueryPass(svc *core.Service, pool []string, g int, dur time.Duration) (int64, float64) {
	var n, seq atomic.Int64
	var wg sync.WaitGroup
	deadline := time.Now().Add(dur)
	start := time.Now()
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				i := seq.Add(1)
				svc.Query(pool[int(i)%len(pool)])
				n.Add(1)
			}
		}()
	}
	wg.Wait()
	return n.Load(), time.Since(start).Seconds()
}

// parallelBenchmarks measures cold-path end-to-end Query throughput at 1 and
// at workers goroutines over one shared pipeline, with the facade's default
// cross-request batching configured. On one CPU, time-slicing N goroutines
// through the same serial decodes can only lose (the switch overhead was the
// measured 1→4 goroutine QPS regression); what scales is sharing the work —
// concurrent cache-missing sentences gather into one batched forward. The
// single-goroutine pass runs the identical configuration and stays serial
// through the solo bypass, so the speedup row is batching's real effect, not
// a workload change. With guard set, a multi-goroutine pass slower than the
// single-goroutine one fails the process — the CI regression gate.
func parallelBenchmarks(o *obs.Observer, doc *benchFile, workers int, dur time.Duration, guard bool) {
	if workers < 1 {
		workers = 1
	}
	svc, ex, _ := buildBenchPipeline(o)
	def := saccs.DefaultConfig()
	ex.BatchWindow, ex.BatchMaxSize = def.BatchWindow, def.BatchMaxSize
	defer func() { ex.BatchWindow, ex.BatchMaxSize = 0, 0 }()
	pool := coldUtterances(512)

	measure := func(g int) parallelResult {
		q, sec := coldQueryPass(svc, pool, g, dur)
		return parallelResult{Goroutines: g, Queries: q, Seconds: sec, QPS: float64(q) / sec}
	}
	gs := []int{1}
	if workers > 1 {
		gs = append(gs, workers)
	}
	fmt.Printf("%-12s %10s %10s %12s\n", "goroutines", "queries", "seconds", "qps")
	var rows []parallelResult
	for _, g := range gs {
		r := measure(g)
		rows = append(rows, r)
		fmt.Printf("%-12d %10d %10.2f %12.1f\n", r.Goroutines, r.Queries, r.Seconds, r.QPS)
	}
	if len(rows) == 2 && rows[0].QPS > 0 {
		fmt.Printf("speedup %dx goroutines: %.2fx (GOMAXPROCS=%d, batch window %s)\n",
			rows[1].Goroutines, rows[1].QPS/rows[0].QPS, runtime.GOMAXPROCS(0), def.BatchWindow)
	}
	doc.Parallel = rows
	if guard && len(rows) == 2 && rows[1].QPS < rows[0].QPS {
		fmt.Fprintf(os.Stderr, "qps guard: %d goroutines %.1f QPS < 1 goroutine %.1f QPS — parallel queries must not be slower than serial\n",
			rows[1].Goroutines, rows[1].QPS, rows[0].QPS)
		os.Exit(1)
	}
	if workers > 1 {
		shardedParallel(doc, workers, dur, guard)
	}
}

// shardedParallel extends the parallel section through the public facade: the
// same cold workload at 1 shard / 1 goroutine (the baseline everything since
// PR 7 is measured against) and at `workers` shards / `workers` goroutines.
// The extraction cache is off so every query decodes for real — the regime
// where cross-request batching earns its speedup — and the guard requires the
// sharded concurrent pass to beat the serial single-shard baseline: the
// scatter-gather fan-out must stay cheap enough that the batching wins
// compound with sharding instead of being eaten by it.
func shardedParallel(doc *benchFile, workers int, dur time.Duration, guard bool) {
	mk := func(shards int) *saccs.Client {
		cfg := saccs.DefaultConfig()
		cfg.Shards = shards
		cfg.ExtractCacheSize = 0
		c, err := saccs.New(cfg)
		if err == nil {
			err = c.IndexEntities(serveWorld(), c.CanonicalTags())
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "parallel bench: %d shard(s): %v\n", shards, err)
			os.Exit(1)
		}
		return c
	}
	fmt.Printf("training facade clients (1 and %d shards)...\n", workers)
	baseC, shardedC := mk(1), mk(workers)
	defer baseC.Shutdown()
	defer shardedC.Shutdown()
	pool := coldUtterances(512)

	pass := func(c *saccs.Client, shards, g int) parallelResult {
		var n, seq atomic.Int64
		var wg sync.WaitGroup
		deadline := time.Now().Add(dur)
		start := time.Now()
		for w := 0; w < g; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for time.Now().Before(deadline) {
					i := seq.Add(1)
					c.Query(pool[int(i)%len(pool)])
					n.Add(1)
				}
			}()
		}
		wg.Wait()
		sec := time.Since(start).Seconds()
		return parallelResult{Shards: shards, Goroutines: g, Queries: n.Load(), Seconds: sec, QPS: float64(n.Load()) / sec}
	}
	rows := []parallelResult{pass(baseC, 1, 1), pass(baseC, 1, workers), pass(shardedC, workers, workers)}
	fmt.Printf("%-8s %-12s %10s %10s %12s\n", "shards", "goroutines", "queries", "seconds", "qps")
	for _, r := range rows {
		fmt.Printf("%-8d %-12d %10d %10.2f %12.1f\n", r.Shards, r.Goroutines, r.Queries, r.Seconds, r.QPS)
	}
	if rows[0].QPS > 0 {
		fmt.Printf("sharded speedup over the 1-shard serial baseline: %.2fx\n", rows[2].QPS/rows[0].QPS)
	}
	doc.Parallel = append(doc.Parallel, rows...)
	if guard && rows[2].QPS < rows[0].QPS {
		fmt.Fprintf(os.Stderr, "qps guard: %d shards x %d goroutines %.1f QPS < 1 shard x 1 goroutine %.1f QPS — sharded concurrent queries must beat the serial single-shard baseline\n",
			rows[2].Shards, rows[2].Goroutines, rows[2].QPS, rows[0].QPS)
		os.Exit(1)
	}
}

// batchBenchmarks sweeps the gather window across goroutine counts on the
// cold workload: window 0 is batching off (the old regression behavior), the
// rest bracket the default. Each row also reports how that pass's decodes
// split between shared batch forwards and solo bypasses, so the table shows
// not just what a window buys but whether the gather protocol engaged at
// all. Appends the batch section to BENCH.json.
func batchBenchmarks(o *obs.Observer, doc *benchFile, dur time.Duration) {
	svc, ex, _ := buildBenchPipeline(o)
	ex.BatchMaxSize = saccs.DefaultConfig().BatchMaxSize
	defer func() { ex.BatchWindow, ex.BatchMaxSize = 0, 0 }()
	pool := coldUtterances(512)

	windows := []time.Duration{0, 100 * time.Microsecond, 250 * time.Microsecond, 500 * time.Microsecond}
	gors := []int{1, 2, 4, 8}
	fmt.Printf("%-10s %-12s %10s %12s %10s %10s %10s\n",
		"window", "goroutines", "queries", "qps", "shared", "solo", "mean")
	var rows []batchResult
	for _, win := range windows {
		ex.BatchWindow = win
		for _, g := range gors {
			shared0 := o.Counter("extract.batch.total").Value()
			solo0 := o.Counter("extract.batch.solo.total").Value()
			q, sec := coldQueryPass(svc, pool, g, dur)
			r := batchResult{
				WindowUS:      float64(win) / float64(time.Microsecond),
				Goroutines:    g,
				Queries:       q,
				Seconds:       sec,
				QPS:           float64(q) / sec,
				SharedDecodes: o.Counter("extract.batch.total").Value() - shared0,
				SoloDecodes:   o.Counter("extract.batch.solo.total").Value() - solo0,
			}
			rows = append(rows, r)
			// Each query is three sentences; sentences not decoded solo
			// went through shared forwards.
			mean := 0.0
			if r.SharedDecodes > 0 {
				mean = float64(3*r.Queries-r.SoloDecodes) / float64(r.SharedDecodes)
			}
			fmt.Printf("%-10s %-12d %10d %12.1f %10d %10d %10.2f\n",
				win, r.Goroutines, r.Queries, r.QPS, r.SharedDecodes, r.SoloDecodes, mean)
		}
	}
	doc.Batch = rows
}

// contentionBenchmarks measures reader throughput with and without a
// concurrent writer. Pass one: `readers` goroutines run end-to-end queries
// for dur (baseline). Pass two: the same readers run while one goroutine
// rebuilds the indexed tag set in a tight loop, publishing a new snapshot
// generation per iteration. The printed slowdown is the price readers pay
// for a continuously churning writer — with pinned immutable snapshots it
// should stay near 1x aside from the CPU the writer itself burns.
func contentionBenchmarks(o *obs.Observer, doc *benchFile, readers int, dur time.Duration) {
	if readers < 1 {
		readers = 1
	}
	svc, _, _ := buildBenchPipeline(o)
	canon := svc.CanonicalTags()
	nTags := 8
	if nTags > len(canon) {
		nTags = len(canon)
	}
	utterances := []string{
		"I want an Italian restaurant in Montreal with delicious food",
		"somewhere with friendly staff and a quiet atmosphere",
		"good food and attentive waiters please",
		"a place with creative cooking and amazing pizza",
	}
	measure := func(mode string, rebuild bool) contentionResult {
		var queries, rebuilds atomic.Int64
		var wg sync.WaitGroup
		deadline := time.Now().Add(dur)
		start := time.Now()
		for w := 0; w < readers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; time.Now().Before(deadline); i++ {
					svc.Query(utterances[i%len(utterances)])
					queries.Add(1)
				}
			}(w)
		}
		if rebuild {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for time.Now().Before(deadline) {
					svc.IndexTags(canon[:nTags])
					rebuilds.Add(1)
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start).Seconds()
		return contentionResult{
			Mode:     mode,
			Readers:  readers,
			Queries:  queries.Load(),
			Rebuilds: rebuilds.Load(),
			Seconds:  elapsed,
			QPS:      float64(queries.Load()) / elapsed,
		}
	}
	fmt.Printf("%-18s %8s %10s %10s %10s %12s\n", "mode", "readers", "queries", "rebuilds", "seconds", "qps")
	rows := []contentionResult{
		measure("readers-only", false),
		measure("readers+rebuild", true),
	}
	for _, r := range rows {
		fmt.Printf("%-18s %8d %10d %10d %10.2f %12.1f\n",
			r.Mode, r.Readers, r.Queries, r.Rebuilds, r.Seconds, r.QPS)
	}
	if rows[0].QPS > 0 {
		fmt.Printf("reader slowdown under continuous rebuild: %.2fx (GOMAXPROCS=%d)\n",
			rows[0].QPS/rows[1].QPS, runtime.GOMAXPROCS(0))
	}
	doc.Contention = rows
}

// cacheBenchmarks measures what the generation-keyed extraction cache buys
// on repeated sentences: cold (uncached) vs warm (pre-warmed cache)
// per-sentence extraction latency and allocations, the warm pass's hit
// ratio, and end-to-end repeated-utterance query throughput with the cache
// detached and attached (dur per QPS pass). Real dialog traffic repeats
// itself — canned phrasings, retried queries, reviews quoting the same
// sentences — which is the regime the warm numbers model.
func cacheBenchmarks(o *obs.Observer, doc *benchFile, dur time.Duration) {
	svc, ex, tg := buildBenchPipeline(o)
	utterances := []string{
		"I want an Italian restaurant in Montreal with delicious food",
		"somewhere with friendly staff and a quiet atmosphere",
		"good food and attentive waiters please",
		"a place with creative cooking and amazing pizza",
	}
	sents := make([][]string, len(utterances))
	for i, u := range utterances {
		sents[i] = tokenize.Words(u)
	}

	cold := &core.Extractor{Tagger: tg, Pairer: ex.Pairer}
	cache := extcache.New(4096)
	warm := &core.Extractor{Tagger: tg, Pairer: ex.Pairer, Cache: cache}
	for _, s := range sents {
		warm.ExtractFromTokens(s) // pre-warm: one decode per distinct sentence
	}

	bench := func(name string, fn func(i int)) stageResult {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fn(i)
			}
		})
		return stageResult{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}
	}
	rows := []stageResult{
		bench("extract.cold", func(i int) { cold.ExtractFromTokens(sents[i%len(sents)]) }),
		bench("extract.warm", func(i int) { warm.ExtractFromTokens(sents[i%len(sents)]) }),
	}
	fmt.Printf("%-14s %14s %12s %12s\n", "pass", "ns/op", "allocs/op", "B/op")
	for _, r := range rows {
		fmt.Printf("%-14s %14.0f %12d %12d\n", r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
	}
	sec := &cacheSection{Results: rows}
	if rows[1].NsPerOp > 0 {
		sec.Speedup = rows[0].NsPerOp / rows[1].NsPerOp
	}
	hits, misses, _ := cache.Stats()
	if hits+misses > 0 {
		sec.HitRatio = float64(hits) / float64(hits+misses)
	}
	fmt.Printf("warm speedup: %.1fx  hit ratio: %.4f (%d hits / %d misses)\n",
		sec.Speedup, sec.HitRatio, hits, misses)

	// End-to-end repeated-utterance QPS: the same four utterances through
	// Service.Query, cache detached then attached. Single goroutine — the
	// point is per-query cost, not parallel scaling.
	measureQPS := func() float64 {
		deadline := time.Now().Add(dur)
		start := time.Now()
		n := 0
		for i := 0; time.Now().Before(deadline); i++ {
			svc.Query(utterances[i%len(utterances)])
			n++
		}
		return float64(n) / time.Since(start).Seconds()
	}
	ex.Cache = nil
	sec.ColdQPS = measureQPS()
	ex.Cache = cache
	sec.WarmQPS = measureQPS()
	ex.Cache = nil // leave the shared pipeline the way the other sections expect it
	if sec.ColdQPS > 0 {
		sec.QPSSpeedup = sec.WarmQPS / sec.ColdQPS
	}
	fmt.Printf("repeated-utterance query QPS: cold %.1f, warm %.1f (%.1fx)\n",
		sec.ColdQPS, sec.WarmQPS, sec.QPSSpeedup)
	doc.Cache = sec
}

// latencyBenchmarks measures the end-to-end query latency distribution: it
// attaches request telemetry, runs a single-goroutine closed loop of
// Service.Query calls for dur, and reads p50/p90/p99/p999 from the
// log-linear request.latency.query histogram — the same histogram /metrics
// exports — so BENCH.json tracks tail latency alongside throughput.
func latencyBenchmarks(o *obs.Observer, doc *benchFile, dur time.Duration) {
	svc, _, _ := buildBenchPipeline(o)
	tel := obs.NewTelemetry(obs.TelemetryConfig{Metrics: o.Metrics})
	o.SetTelemetry(tel)
	defer func() {
		o.SetTelemetry(nil) // leave the shared pipeline telemetry-free for other sections
		tel.Close()
	}()

	utterances := []string{
		"I want an Italian restaurant in Montreal with delicious food",
		"somewhere with friendly staff and a quiet atmosphere",
		"good food and attentive waiters please",
		"a place with creative cooking and amazing pizza",
	}
	h := o.Metrics.HDR("request.latency.query")
	before := h.Count()
	deadline := time.Now().Add(dur)
	start := time.Now()
	for i := 0; time.Now().Before(deadline); i++ {
		svc.Query(utterances[i%len(utterances)])
	}
	elapsed := time.Since(start).Seconds()

	snap := h.Snapshot()
	sec := &latencySection{
		Queries: snap.Count - before,
		Seconds: elapsed,
		P50Ns:   float64(snap.Quantile(0.5)),
		P90Ns:   float64(snap.Quantile(0.9)),
		P99Ns:   float64(snap.Quantile(0.99)),
		P999Ns:  float64(snap.Quantile(0.999)),
		MeanNs:  float64(snap.Mean()),
	}
	if elapsed > 0 {
		sec.QPS = float64(sec.Queries) / elapsed
	}
	fmt.Printf("%-10s %10s %12s %12s %12s %12s %12s\n",
		"queries", "qps", "p50", "p90", "p99", "p999", "mean")
	fmt.Printf("%-10d %10.1f %12s %12s %12s %12s %12s\n",
		sec.Queries, sec.QPS,
		time.Duration(sec.P50Ns).Round(time.Microsecond),
		time.Duration(sec.P90Ns).Round(time.Microsecond),
		time.Duration(sec.P99Ns).Round(time.Microsecond),
		time.Duration(sec.P999Ns).Round(time.Microsecond),
		time.Duration(sec.MeanNs).Round(time.Microsecond))
	doc.Latency = sec
}

// ingestTags is the synthetic streaming vocabulary. Reviews carry their tags
// inline ("tag | tag") and benchExtract splits them back out, so the section
// measures the ingest tier itself — WAL append + fsync, delta builds,
// compaction — not the neural extractor in front of it.
var ingestTags = []string{
	"delicious food", "nice staff", "quiet atmosphere", "creative cooking",
	"fair prices", "fresh ingredients", "generous portions", "quick service",
	"cozy decor", "good view",
}

func benchExtract(texts []string) [][]string {
	out := make([][]string, len(texts))
	for i, t := range texts {
		for _, p := range strings.Split(t, " | ") {
			if p != "" {
				out[i] = append(out[i], p)
			}
		}
	}
	return out
}

// ingestBenchmarks measures the streaming-ingest tier on the real
// filesystem. Two duration-bound append passes — FsyncAlways (the durability
// default: every acknowledged review is on stable storage) and FsyncBatch
// (sync at publication boundaries) — each over its own WAL directory with
// its own observer, reporting throughput, the durable-ack latency quantiles,
// and the publish-lag quantiles that quantify bounded staleness. The
// fsync-always log is then reopened by a fresh ingester and the recovery
// replay is timed: the crash-restart figure.
func ingestBenchmarks(doc *benchFile, dur time.Duration) {
	const nEntities = 256
	review := func(i int) (string, string) {
		t1 := ingestTags[i%len(ingestTags)]
		t2 := ingestTags[(i*7+3)%len(ingestTags)]
		return fmt.Sprintf("ent-%d", i%nEntities), t1 + " | " + t2
	}

	pass := func(mode string, policy ingest.FsyncPolicy, workers int) (ingestResult, string) {
		dir, err := os.MkdirTemp("", "saccs-ingest-bench-*")
		if err != nil {
			fmt.Fprintf(os.Stderr, "ingest bench: %v\n", err)
			os.Exit(1)
		}
		io := obs.NewObserver()
		ix := index.New(sim.NewConceptual(), core.DefaultConfig().ThetaIndex)
		ing, err := ingest.Open(ingest.Config{
			Dir:             dir,
			Fsync:           policy,
			PublishEvery:    64,
			PublishInterval: -1,
			CompactAfter:    8,
			Obs:             io,
		}, ix, ingestTags, nil, benchExtract)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ingest bench: open: %v\n", err)
			os.Exit(1)
		}
		ctx := context.Background()
		deadline := time.Now().Add(dur)
		start := time.Now()
		var n int64
		if workers <= 1 {
			for i := 0; time.Now().Before(deadline); i++ {
				id, text := review(i)
				if _, err := ing.Append(ctx, id, text); err != nil {
					fmt.Fprintf(os.Stderr, "ingest bench: append: %v\n", err)
					os.Exit(1)
				}
				n++
			}
		} else {
			// Concurrent appenders stride the review stream so every record
			// is distinct; the total lands in n after the barrier.
			var total atomic.Int64
			var wg sync.WaitGroup
			for g := 0; g < workers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					var mine int64
					for i := g; time.Now().Before(deadline); i += workers {
						id, text := review(i)
						if _, err := ing.Append(ctx, id, text); err != nil {
							fmt.Fprintf(os.Stderr, "ingest bench: append: %v\n", err)
							os.Exit(1)
						}
						mine++
					}
					total.Add(mine)
				}(g)
			}
			wg.Wait()
			n = total.Load()
		}
		if err := ing.Flush(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "ingest bench: flush: %v\n", err)
			os.Exit(1)
		}
		sec := time.Since(start).Seconds()
		if err := ing.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "ingest bench: close: %v\n", err)
			os.Exit(1)
		}
		app := io.Histogram("ingest.append").Snapshot()
		lag := io.Histogram("ingest.publish.lag").Snapshot()
		return ingestResult{
			Mode:            mode,
			Goroutines:      workers,
			Appends:         n,
			Seconds:         sec,
			AppendsPerSec:   float64(n) / sec,
			AppendP50Ns:     float64(app.Quantile(0.5)),
			AppendP99Ns:     float64(app.Quantile(0.99)),
			PublishLagP50Ns: float64(lag.Quantile(0.5)),
			PublishLagP99Ns: float64(lag.Quantile(0.99)),
			Publishes:       lag.Count,
			Compactions:     int64(io.Counter("ingest.compactions.total").Value()),
		}, dir
	}

	fmt.Printf("%-14s %4s %10s %12s %12s %12s %12s %12s %10s\n",
		"mode", "g", "appends", "appends/s", "ack p50", "ack p99", "lag p50", "lag p99", "compacts")
	sec := &ingestSection{}
	var alwaysDir string
	// The serial fsync-always/fsync-batch baselines, then the group-commit
	// ladder: fsync-batch under 4 and 16 concurrent appenders (1 is the
	// serial row), showing how the publication-boundary sync amortizes while
	// WAL-mutex contention grows the ack quantiles.
	for _, m := range []struct {
		mode    string
		policy  ingest.FsyncPolicy
		workers int
	}{
		{"fsync-always", ingest.FsyncAlways, 1},
		{"fsync-batch", ingest.FsyncBatch, 1},
		{"fsync-batch", ingest.FsyncBatch, 4},
		{"fsync-batch", ingest.FsyncBatch, 16},
	} {
		r, dir := pass(m.mode, m.policy, m.workers)
		sec.Results = append(sec.Results, r)
		fmt.Printf("%-14s %4d %10d %12.0f %12s %12s %12s %12s %10d\n",
			r.Mode, r.Goroutines, r.Appends, r.AppendsPerSec,
			time.Duration(r.AppendP50Ns).Round(time.Microsecond),
			time.Duration(r.AppendP99Ns).Round(time.Microsecond),
			time.Duration(r.PublishLagP50Ns).Round(time.Microsecond),
			time.Duration(r.PublishLagP99Ns).Round(time.Microsecond),
			r.Compactions)
		if m.mode == "fsync-always" {
			alwaysDir = dir
		} else {
			_ = os.RemoveAll(dir)
		}
	}

	// Recovery replay: reopen the fsync-always log cold and time Open.
	ix := index.New(sim.NewConceptual(), core.DefaultConfig().ThetaIndex)
	start := time.Now()
	ing, err := ingest.Open(ingest.Config{Dir: alwaysDir, PublishInterval: -1}, ix, ingestTags, nil, benchExtract)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ingest bench: recovery open: %v\n", err)
		os.Exit(1)
	}
	sec.RecoverySeconds = time.Since(start).Seconds()
	for _, e := range ing.State() {
		sec.RecoveredReviews += e.ReviewCount
	}
	if sec.RecoverySeconds > 0 {
		sec.RecoveredPerSec = float64(sec.RecoveredReviews) / sec.RecoverySeconds
	}
	if err := ing.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "ingest bench: recovery close: %v\n", err)
		os.Exit(1)
	}
	_ = os.RemoveAll(alwaysDir)
	fmt.Printf("recovery replay: %d reviews in %v (%.0f reviews/s)\n",
		sec.RecoveredReviews, time.Duration(sec.RecoverySeconds*float64(time.Second)).Round(time.Millisecond),
		sec.RecoveredPerSec)
	doc.Ingest = sec
}

// serveWorld converts the seeded demo Yelp world into facade entities — the
// same corpus the golden snapshots and cmd/saccs-server -seed-demo use.
func serveWorld() []saccs.Entity {
	w := yelp.Generate(yelp.FastConfig())
	out := make([]saccs.Entity, len(w.Entities))
	for i, e := range w.Entities {
		reviews := make([]string, len(e.Reviews))
		for j, r := range e.Reviews {
			reviews[j] = r.Text
		}
		out[i] = saccs.Entity{ID: e.ID, Name: e.Name, City: e.City, Cuisine: e.Cuisine, Reviews: reviews}
	}
	return out
}

// serveBenchmarks drives the real HTTP tier with an open-loop load generator.
// For each shard count it trains a facade client over the demo world, starts
// a server on loopback, and replays /v1/query at the fixed arrival rates of a
// shared ladder calibrated once against the 1-shard server. Open loop means
// arrivals fire on schedule no matter how slow earlier requests are, and each
// request's latency is clocked from its scheduled arrival — so when the
// server falls behind, the queueing shows up in the quantiles instead of
// silently throttling the generator (coordinated omission). A rate is
// sustained when achieved/offered >= 0.95 with zero errors; the per-shard
// summary is the highest sustained rung. The query pool repeats four
// utterances, keeping the extraction cache warm so per-request cost is
// dominated by resolution and ranking — the work that actually shards. (How
// sustained QPS moves with shard count depends on the cores available: on a
// single-CPU box the fan-out is pure scheduling overhead, so the regression
// gate on sharding lives in the parallel section's facade comparison, not
// here.)
func serveBenchmarks(doc *benchFile, shardCounts []int, dur time.Duration) {
	utterances := []string{
		"I want an Italian restaurant in Montreal with delicious food",
		"somewhere with friendly staff and a quiet atmosphere",
		"good food and attentive waiters please",
		"a place with creative cooking and amazing pizza",
	}
	httpc := &http.Client{
		Transport: &http.Transport{MaxIdleConns: 512, MaxIdleConnsPerHost: 512},
		Timeout:   time.Minute,
	}

	startServer := func(shards int) (*server.Server, error) {
		cfg := saccs.DefaultConfig()
		cfg.TrainingScale = "fast"
		cfg.Shards = shards
		c, err := saccs.New(cfg)
		if err != nil {
			return nil, err
		}
		if err := c.IndexEntities(serveWorld(), c.CanonicalTags()); err != nil {
			return nil, err
		}
		s := server.New(c, server.Config{Addr: "127.0.0.1:0"})
		if err := s.Start(); err != nil {
			return nil, err
		}
		return s, nil
	}

	query := func(base string, i int) error {
		body := `{"utterance":"` + utterances[i%len(utterances)] + `"}`
		resp, err := httpc.Post(base+"/v1/query", "application/json", strings.NewReader(body))
		if err != nil {
			return err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		return nil
	}

	// closedLoop estimates capacity: workers hammer the server back to back.
	closedLoop := func(base string, workers int, d time.Duration) float64 {
		var n, seq atomic.Int64
		var wg sync.WaitGroup
		deadline := time.Now().Add(d)
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for time.Now().Before(deadline) {
					if query(base, int(seq.Add(1))) == nil {
						n.Add(1)
					}
				}
			}()
		}
		wg.Wait()
		return float64(n.Load()) / time.Since(start).Seconds()
	}

	// openLoop fires requests at the offered rate for dur over a fixed pool
	// of connections (the wrk2 model: arrivals keep their schedule, and when
	// every connection is busy the missed schedule is charged to the
	// measurement, because each request's latency is clocked from its
	// scheduled arrival time, not from when a connection freed up).
	const workers = 32
	openLoop := func(base string, shards int, rate float64) servePass {
		n := int(rate * dur.Seconds())
		if n < 1 {
			n = 1
		}
		lat := make([]time.Duration, n)
		var errs, next atomic.Int64
		next.Store(-1)
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1))
					if i >= n {
						return
					}
					sched := start.Add(time.Duration(float64(i) / rate * float64(time.Second)))
					time.Sleep(time.Until(sched))
					if err := query(base, i); err != nil {
						errs.Add(1)
					}
					lat[i] = time.Since(sched)
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start).Seconds()
		sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
		q := func(p float64) float64 {
			return float64(lat[min(n-1, int(p*float64(n)))])
		}
		achieved := float64(int64(n)-errs.Load()) / elapsed
		return servePass{
			Shards:      shards,
			OfferedQPS:  rate,
			AchievedQPS: achieved,
			Requests:    int64(n),
			Errors:      errs.Load(),
			Sustained:   errs.Load() == 0 && achieved >= 0.95*rate,
			P50Ns:       q(0.50),
			P99Ns:       q(0.99),
			P999Ns:      q(0.999),
		}
	}

	sec := &serveSection{}
	var ladder []float64
	fmt.Printf("%-8s %12s %12s %10s %8s %10s %10s %10s %10s\n",
		"shards", "offered", "achieved", "requests", "errors", "p50", "p99", "p999", "sustained")
	for _, shards := range shardCounts {
		fmt.Printf("training %d-shard pipeline...\n", shards)
		srv, err := startServer(shards)
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve bench: %d shards: %v\n", shards, err)
			os.Exit(1)
		}
		base := "http://" + srv.Addr()
		// Warm before measuring: a short closed-loop burst opens every pool
		// connection and fills the extraction cache, so no rung is charged
		// for TCP handshakes or cold decodes. (The calibrated server gets
		// this for free from calibration; the others need it explicitly.)
		closedLoop(base, workers, dur/8)
		if ladder == nil {
			cal := closedLoop(base, workers, dur)
			sec.CalibratedQPS = cal
			// 0.3x anchors the ladder low enough that a shard count whose
			// fan-out overhead dominates on this machine still lands a
			// nonzero sustained figure instead of failing every rung.
			for _, m := range []float64{0.3, 0.5, 0.7, 0.9, 1.1} {
				ladder = append(ladder, cal*m)
			}
			fmt.Printf("calibrated %.1f QPS closed-loop on %d shard(s); ladder %.1f..%.1f\n",
				cal, shards, ladder[0], ladder[len(ladder)-1])
		}
		maxSustained := 0.0
		for _, rate := range ladder {
			p := openLoop(base, shards, rate)
			sec.Passes = append(sec.Passes, p)
			if p.Sustained && p.OfferedQPS > maxSustained {
				maxSustained = p.OfferedQPS
			}
			fmt.Printf("%-8d %12.1f %12.1f %10d %8d %10s %10s %10s %10v\n",
				p.Shards, p.OfferedQPS, p.AchievedQPS, p.Requests, p.Errors,
				time.Duration(p.P50Ns).Round(time.Microsecond),
				time.Duration(p.P99Ns).Round(time.Microsecond),
				time.Duration(p.P999Ns).Round(time.Microsecond),
				p.Sustained)
		}
		sec.MaxSustained = append(sec.MaxSustained, serveShardRow{Shards: shards, MaxSustainedQPS: maxSustained})
		httpc.CloseIdleConnections()
		if err := srv.Shutdown(context.Background()); err != nil {
			fmt.Fprintf(os.Stderr, "serve bench: shutdown %d shards: %v\n", shards, err)
			os.Exit(1)
		}
	}
	for _, r := range sec.MaxSustained {
		fmt.Printf("max sustained @ %d shard(s): %.1f QPS\n", r.Shards, r.MaxSustainedQPS)
	}
	doc.Serve = sec
}
