package saccs

import (
	"strings"
	"sync"
	"testing"

	"saccs/internal/obs"
)

// TestQueryTraceStages checks the tentpole acceptance shape: one traced
// Client.Query produces a root "query" span with at least five named child
// stages covering the whole pipeline.
func TestQueryTraceStages(t *testing.T) {
	c := newClient(t)
	if err := c.IndexEntities(demoEntities(), c.CanonicalTags()); err != nil {
		t.Fatal(err)
	}
	ring := obs.NewRingSink(256)
	c.SetTraceSink(ring)
	defer c.SetTraceSink(nil)

	c.Query("I want an Italian restaurant in Montreal with delicious food and friendly staff")

	spans := ring.Spans()
	root, ok := obs.LastRoot(spans)
	if !ok {
		t.Fatal("no root span recorded")
	}
	if root.Name != "query" {
		t.Fatalf("root span name: %q", root.Name)
	}
	stages := map[string]bool{}
	for _, s := range obs.Subtree(spans, root.ID) {
		if s.Parent == root.ID {
			stages[s.Name] = true
		}
	}
	for _, want := range []string{"parse", "tagger.decode", "pairing.pairs", "objective", "rank"} {
		if !stages[want] {
			t.Errorf("missing stage span %q (got %v)", want, stages)
		}
	}
	if len(stages) < 5 {
		t.Fatalf("want >=5 named child stages, got %d: %v", len(stages), stages)
	}
	if root.Duration <= 0 {
		t.Fatal("root span has no duration")
	}
}

// TestClientStats checks the metrics side of the public surface: query
// counters, per-stage latency histograms, and Prometheus exposition.
func TestClientStats(t *testing.T) {
	c := newClient(t)
	if err := c.IndexEntities(demoEntities(), c.CanonicalTags()); err != nil {
		t.Fatal(err)
	}
	before := c.Stats().Counters["query.total"]
	c.Query("a restaurant in Montreal with delicious food")
	snap := c.Stats()
	if got := snap.Counters["query.total"]; got != before+1 {
		t.Fatalf("query.total: %d -> %d", before, got)
	}
	if snap.Histograms["query.latency"].Count == 0 {
		t.Fatal("query.latency histogram is empty")
	}
	for _, h := range []string{"stage.parse", "stage.tagger.decode", "stage.objective", "stage.rank"} {
		if snap.Histograms[h].Count == 0 {
			t.Errorf("histogram %s is empty", h)
		}
	}
	if snap.Histograms["index.build"].Count == 0 {
		t.Error("index.build histogram is empty")
	}

	var sb strings.Builder
	c.Observer().Metrics.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{"query_total", "stage_parse_seconds_bucket", "query_latency_seconds_sum"} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %s", want)
		}
	}
}

// TestConcurrentQueries exercises the documented concurrency contract under
// the race detector: parallel Query/QueryTags/ExtractTags/TagLabels calls
// against one shared index with tracing and metrics enabled.
func TestConcurrentQueries(t *testing.T) {
	c := newClient(t)
	if err := c.IndexEntities(demoEntities(), c.CanonicalTags()); err != nil {
		t.Fatal(err)
	}
	ring := obs.NewRingSink(512)
	c.SetTraceSink(ring)
	defer c.SetTraceSink(nil)

	before := c.Stats().Counters["query.total"]
	const goroutines, perG = 8, 5
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				switch (g + i) % 4 {
				case 0:
					c.Query("an Italian restaurant in Montreal with delicious food")
				case 1:
					c.Query("a place with friendly staff and a quiet atmosphere")
				case 2:
					c.QueryTags([]string{"creative cooking"})
					c.ExtractTags("the staff is friendly")
				default:
					c.TagLabels("the food is delicious")
					c.CorrectTag("delicous food")
					c.Query("good food in Montreal")
				}
			}
		}(g)
	}
	wg.Wait()

	got := c.Stats().Counters["query.total"] - before
	want := int64(goroutines*perG - goroutines*perG/4) // case 2 runs no Query
	if got < want {
		t.Fatalf("query.total grew by %d, want >= %d", got, want)
	}
	if _, ok := obs.LastRoot(ring.Spans()); !ok {
		t.Fatal("no spans recorded under concurrency")
	}
}
