// Package saccs is a from-scratch Go implementation of SACCS — Subjectivity
// Aware Conversational Search Services (Gaci et al., EDBT 2021): a natural
// language understanding layer that extracts subjective tags ("delicious
// food", "nice staff") from user utterances and online reviews, indexes
// entities under those tags with degrees of truth, and filters and ranks the
// results of an objective search API by the user's subjective preferences.
//
// The package exposes a compact facade over the full pipeline:
//
//	client, _ := saccs.New(saccs.DefaultConfig())
//	client.IndexEntities(entities, []string{"delicious food", "nice staff"})
//	resp := client.Query("an italian place with delicious food")
//
// Everything underneath — the MiniBERT encoder, the BiLSTM-CRF adversarial
// tagger, parse-tree and attention pairing, conceptual similarity, the
// subjective tag index and Algorithm 1's filtering & ranking — lives in
// internal/ packages and is documented in DESIGN.md.
package saccs

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"saccs/internal/automaton"
	"saccs/internal/core"
	"saccs/internal/datasets"
	"saccs/internal/experiments"
	"saccs/internal/extcache"
	"saccs/internal/index"
	"saccs/internal/ingest"
	"saccs/internal/lexicon"
	"saccs/internal/nn"
	"saccs/internal/obs"
	"saccs/internal/pairing"
	"saccs/internal/parse"
	"saccs/internal/search"
	"saccs/internal/shard"
	"saccs/internal/sim"
	"saccs/internal/tagger"
	"saccs/internal/tokenize"
)

// Config tunes a Client.
//
// Numeric and boolean fields are taken literally: New applies no defaults, so
// ThetaIndex: 0 really means a zero similarity threshold and Epsilon: 0
// really means no adversarial perturbation. Start from DefaultConfig() and
// override the fields you care about. The string fields keep "" as an alias
// for their default ("restaurants", "fast", "mixed") so the zero Config
// still names a valid pipeline.
type Config struct {
	// Domain selects the lexicon the pipeline is trained for:
	// "restaurants" (the "" default), "electronics" or "hotels".
	Domain string
	// TrainingScale selects how much synthetic data the extractor is
	// trained on: "fast" (the "" default, seconds) or "paper" (Table 3
	// sizes).
	TrainingScale string
	// ThetaIndex is the Eq. 1 review-tag similarity threshold
	// (DefaultConfig: 0.55). 0 admits every review tag.
	ThetaIndex float64
	// ThetaFilter is the Algorithm 1 unknown-tag threshold
	// (DefaultConfig: 0.45). 0 unions every indexed tag.
	ThetaFilter float64
	// TopK truncates query answers (DefaultConfig: 10; 0 = all).
	TopK int
	// Shards partitions the subjective tag index across this many
	// independent shards by consistent hashing of entity IDs (0 or 1 keeps
	// the single-index layout). Queries scatter across every shard in
	// parallel and merge the per-shard top-K answers into results
	// byte-identical to a single index over the same world; writes route
	// each entity to its owning shard. With WALDir set and Shards > 1,
	// shard i persists under WALDir/shard-<i>. The shard count is fixed
	// for the client's lifetime — changing it means a fresh IndexEntities.
	Shards int
	// Adversarial enables FGSM training of the tagger (DefaultConfig: true).
	Adversarial bool
	// Epsilon is the adversarial perturbation radius (DefaultConfig: 0.2).
	// 0 trains on unperturbed embeddings even when Adversarial is set.
	Epsilon float64
	// HistoryLimit bounds the user tag history (the queue of unknown tags
	// awaiting the next Reindex round) to the N most recently seen tags,
	// evicting oldest-first — without it the history's memory grows without
	// limit over a long conversational session (DefaultConfig: 4096;
	// 0 = unbounded).
	HistoryLimit int
	// ExtractCacheSize bounds the extraction cache: a sharded map from
	// normalized token sequence to extracted tags, keyed by the tagger's
	// weight generation, that lets repeated sentences (recurring utterances,
	// duplicated review sentences during indexing) skip the neural decode
	// entirely. Entries stop matching the moment the tagger retrains, so a
	// cached answer is always bit-identical to a fresh decode
	// (DefaultConfig: 4096 entries; 0 disables caching).
	ExtractCacheSize int
	// TraceSampleN head-samples every Nth request for full span-tree
	// retention (1 retains every request, 0 disables head sampling). While
	// both TraceSampleN and SlowThreshold are 0 — the DefaultConfig — tail
	// sampling is off entirely: every request's spans reach the trace sink,
	// as in earlier releases.
	TraceSampleN int
	// SlowThreshold marks requests at or above this duration slow: their
	// span trees are retained regardless of sampling and they enter the
	// worst-K slow-query log (Stats().Slow, /debug/slow, saccs-chat :slow).
	// Setting it (or TraceSampleN) also arms the adaptive rule that retains
	// any request slower than the rolling p99. 0 disables the threshold.
	SlowThreshold time.Duration
	// SLOTarget is the query-latency service-level objective: queries at or
	// under it count good, the rest bad, feeding the
	// slo.requests.{good,bad}.total counters and the slo.error_budget.burn
	// gauge (bad fraction over the 1% error budget). 0 disables SLO
	// accounting.
	SLOTarget time.Duration
	// BatchWindow is how long a cache-missing utterance sentence waits for
	// concurrent requests to share one neural decode (DefaultConfig: 250µs).
	// Concurrent cache misses gather for up to this long and decode as one
	// batched forward pass — bit-identical to decoding each alone, ~3x
	// cheaper per sentence at batch 4 — then fan back out. A lone request
	// skips the wait entirely, so the knob costs idle traffic nothing.
	// 0 disables cross-request batching.
	BatchWindow time.Duration
	// BatchMaxSize caps how many sentences one batched forward pass decodes
	// (DefaultConfig: 16). A gather that exceeds it seals early and splits
	// into balanced forwards of at most this many sequences. Values below 2
	// disable cross-request batching.
	BatchMaxSize int
	// Precision selects the inference arithmetic of the utterance decode —
	// the latency-critical tagger forward behind Query, Chat, and
	// ExtractTags: "mixed" (the "" default) runs int8 GEMMs with float32
	// kernels for the drift-sensitive layers, "int8" additionally
	// quantizes the LSTM recurrence and emission projection, and "float64"
	// is the exact reference arithmetic. Training and review indexing
	// (IndexEntities, AppendReview) always run float64 — the index is a
	// durable artifact and stays byte-identical across Precision settings —
	// and oracle/quant-drift bounds the quantized decode's divergence.
	Precision string
	// WALDir, when non-empty, makes streamed reviews durable: AppendReview
	// acknowledges only after the review is fsynced into a write-ahead log
	// under this directory, and New replays the log (checkpoint + WAL tail)
	// so a crash never loses an acknowledged review. "" keeps streaming
	// purely in memory — AppendReview still works, with no durability.
	WALDir string
	// IngestPublishEvery bounds staleness by count: streamed reviews are
	// folded into the published index after this many accumulate
	// (DefaultConfig: 64). 0 picks the engine default (also 64); negative
	// disables count-triggered publication (interval or Quiesce only).
	IngestPublishEvery int
	// IngestPublishInterval bounds staleness by time: a background tick
	// publishes any pending streamed reviews at least this often
	// (DefaultConfig: 250ms). 0 picks the engine default (250ms); negative
	// disables the ticker (count trigger or Quiesce only).
	IngestPublishInterval time.Duration
}

// DefaultConfig returns the recommended configuration.
func DefaultConfig() Config {
	return Config{
		Domain:           "restaurants",
		TrainingScale:    "fast",
		ThetaIndex:       0.55,
		ThetaFilter:      0.45,
		TopK:             10,
		Adversarial:      true,
		Epsilon:          0.2,
		HistoryLimit:     4096,
		ExtractCacheSize: 4096,
		BatchWindow:      250 * time.Microsecond,
		BatchMaxSize:     16,
		Precision:        "mixed",

		IngestPublishEvery:    64,
		IngestPublishInterval: 250 * time.Millisecond,
	}
}

// QueryOptions overrides per-request query knobs. The zero value inherits
// everything from the client's Config; a non-nil field overrides just that
// knob for the one request, so callers never mutate the shared Config while
// queries are in flight.
type QueryOptions struct {
	// TopK, when non-nil, truncates this request's answer (0 = all).
	TopK *int
	// ThetaFilter, when non-nil, overrides the Algorithm 1 unknown-tag
	// similarity threshold for this request (0 unions every indexed tag).
	ThetaFilter *float64
}

// Int returns a pointer to v — a convenience for QueryOptions literals.
func Int(v int) *int { return &v }

// Float returns a pointer to v — a convenience for QueryOptions literals.
func Float(v float64) *float64 { return &v }

// StageError is the typed failure of a context-aware Client call: the
// pipeline stage that observed the cancellation or expired deadline plus the
// underlying context error. errors.Is sees through it to context.Canceled /
// context.DeadlineExceeded. A call returning a StageError produced no
// partial results and published no partial state.
type StageError struct {
	// Stage names the pipeline stage that observed the failure: "parse",
	// "extract", "objective", "rank", "index", "reindex", "append", or
	// "register".
	Stage string
	// Err is the context's error (or a wrapper around it).
	Err error
}

// Error formats the failure as "saccs: <stage>: <cause>".
func (e *StageError) Error() string { return "saccs: " + e.Stage + ": " + e.Err.Error() }

// Unwrap exposes the underlying context error to errors.Is/As.
func (e *StageError) Unwrap() error { return e.Err }

// Entity is a business (or any reviewable item) a Client can index.
type Entity struct {
	// ID must be unique within the client.
	ID string
	// Name is the display name.
	Name string
	// City and Cuisine are the objective slots the dialog layer filters on.
	City, Cuisine string
	// Reviews are free-text customer reviews.
	Reviews []string
}

// Result is one ranked answer.
type Result struct {
	ID string `json:"id"`
	// Score is the aggregated degree of truth across the query's tags.
	Score float64 `json:"score"`
}

// Response is the answer to a subjective utterance. The JSON field names are
// the saccs-server wire format.
type Response struct {
	// Intent is the recognized intent name.
	Intent string `json:"intent"`
	// Slots are the filled objective slots (cuisine, location).
	Slots map[string]string `json:"slots,omitempty"`
	// Tags are the subjective tags extracted from the utterance.
	Tags []string `json:"tags"`
	// UnknownTags were not in the index and are queued for the next
	// indexing round (see Client.Reindex).
	UnknownTags []string `json:"unknown_tags,omitempty"`
	// Results are the filtered, ranked entities.
	Results []Result `json:"results"`
}

// Client is a trained SACCS pipeline plus a subjective tag index.
//
// Concurrency: every exported method is safe from any number of goroutines.
// The query path is lock-free: each request pins the current immutable index
// snapshot once and reads only that generation end to end, so a query never
// mixes postings from before and after a rebuild and never blocks on a
// writer. Writers — IndexEntities, Reindex, LoadIndex — prepare their state
// off to the side and publish it with one atomic pointer swap; queries
// already in flight keep the generation they pinned, and the next request
// sees the new one. The extraction pipeline (MiniBERT forward pass,
// BiLSTM-CRF decode) is reentrant — per-call scratch arenas come from a
// sync.Pool, and repeated sentences are served from a sharded extraction
// cache keyed by the tagger's weight generation (Config.ExtractCacheSize).
// The cost of the design is memory, not latency: while a rebuild overlaps
// queries, up to two index generations are live at once.
type Client struct {
	cfg    Config
	domain *lexicon.Domain
	// extr is the serving extractor: utterance decodes run at the
	// configured Precision (quantized kernels by default). refExtr is the
	// indexing extractor: the same trained tagger pinned to the float64
	// reference arithmetic, with its own cache and gather state, so the
	// index is a precision-independent artifact — reviews extract to
	// byte-identical postings whatever Precision serves queries.
	extr    *core.Extractor
	refExtr *core.Extractor
	measure sim.Measure

	// w is the client's current world — entities, reviews, shard router,
	// and tag history published as one unit, so a query pinning it never
	// observes entities from one IndexEntities call and postings from
	// another. Readers only Load; writeMu serializes the writers that swap
	// it.
	w       atomic.Pointer[world]
	writeMu sync.Mutex

	// ings are the per-shard streaming ingesters behind AppendReview
	// (ings[i] feeds shard i): nil until the first append (or until New
	// recovers a WALDir). Guarded by writeMu; each ingester is internally
	// synchronized, and the lock order is always writeMu → ingester, never
	// the reverse.
	ings []*ingest.Ingester

	// o is the client's always-on metrics registry plus an optional tracer
	// attached via SetTraceSink.
	o *obs.Observer
}

// world is one generation of the client's indexed state. The maps and
// slices are frozen once published; router and history mutate safely behind
// their own internal synchronization (each shard republishes snapshots
// atomically, history is a locked queue).
type world struct {
	entities map[string]Entity
	reviews  []index.EntityReviews
	router   *shard.Router
	history  *index.History
}

// New trains a SACCS extraction pipeline (MiniBERT masked-language-model
// pre-training plus an adversarially trained BiLSTM-CRF tagger) on synthetic
// in-domain data and returns a ready Client. Training is deterministic and
// CPU-only; the fast scale takes seconds.
func New(cfg Config) (*Client, error) {
	var domain *lexicon.Domain
	var data *datasets.Dataset
	scale := datasets.Fast
	if cfg.TrainingScale == "paper" {
		scale = datasets.Paper
	}
	switch cfg.Domain {
	case "", "restaurants":
		domain = lexicon.Restaurants()
		data = datasets.S1(scale)
	case "electronics":
		domain = lexicon.Electronics()
		data = datasets.S2(scale)
	case "hotels":
		domain = lexicon.Hotels()
		data = datasets.S4(scale)
	default:
		return nil, fmt.Errorf("saccs: unknown domain %q", cfg.Domain)
	}
	precision, err := nn.ParsePrecision(cfg.Precision)
	if err != nil {
		return nil, fmt.Errorf("saccs: %w", err)
	}

	o := obs.NewObserver()
	o.SetTelemetry(obs.NewTelemetry(obs.TelemetryConfig{
		Metrics:       o.Metrics,
		HeadSampleN:   cfg.TraceSampleN,
		SlowThreshold: cfg.SlowThreshold,
		SLOTarget:     cfg.SLOTarget,
		RuntimeEvery:  10 * time.Second,
	}))
	encOpts := experiments.DefaultEncoderOpts(scale)
	encOpts.Obs = o
	enc := experiments.BuildEncoder(encOpts, domain, trainTokens(data))
	tcfg := tagger.DefaultConfig()
	if scale == datasets.Paper {
		tcfg.Epochs = 15
	}
	tcfg.Adversarial = cfg.Adversarial
	tcfg.Epsilon = cfg.Epsilon
	tcfg.Precision = precision
	tg := tagger.New(enc, tcfg)
	tg.Obs = o
	tg.Train(data.Train)

	measure := sim.NewConceptual()
	hist := index.NewHistory()
	hist.SetCap(cfg.HistoryLimit)
	cache := extcache.New(cfg.ExtractCacheSize)
	cache.SetObserver(o)
	pairer := pairing.Tree{Lex: parse.DomainLexicon(domain), FromOpinions: true}
	// Index builds extract through a float64-pinned view of the same trained
	// tagger, with a separate cache (entries must be bit-identical to a fresh
	// decode at the extractor's own precision, so the two modes never share
	// one) and separate gather state (a batched forward decodes at one
	// precision, so cohorts are per-extractor).
	refCache := extcache.New(cfg.ExtractCacheSize)
	refCache.SetObserver(o)
	c := &Client{
		cfg:    cfg,
		domain: domain,
		extr: &core.Extractor{
			Tagger:       tg,
			Pairer:       pairer,
			Cache:        cache,
			Obs:          o,
			BatchWindow:  cfg.BatchWindow,
			BatchMaxSize: cfg.BatchMaxSize,
		},
		refExtr: &core.Extractor{
			Tagger:       tagger.ReferenceView{M: tg},
			Pairer:       pairer,
			Cache:        refCache,
			Obs:          o,
			BatchWindow:  cfg.BatchWindow,
			BatchMaxSize: cfg.BatchMaxSize,
		},
		measure: measure,
		o:       o,
	}
	c.w.Store(&world{entities: map[string]Entity{}, router: c.newRouter(), history: hist})
	// A durable WAL directory is opened eagerly so a restart recovers its
	// streamed world (checkpoint + WAL replay) before the first call — not
	// only once somebody happens to append.
	if cfg.WALDir != "" {
		c.writeMu.Lock()
		err := c.openIngestLocked()
		c.writeMu.Unlock()
		if err != nil {
			return nil, fmt.Errorf("saccs: recovering ingest state: %w", err)
		}
	}
	return c, nil
}

// newRouter builds an empty shard router sized by Config.Shards, with every
// shard's index wired into the client's observer. The extraction pipeline is
// shared — only postings are partitioned — and so is the similarity memo:
// every shard indexes the same tag vocabulary, so an unknown query tag's
// vocabulary scan computes each (query tag, index tag) similarity once for
// the whole router instead of once per shard.
func (c *Client) newRouter() *shard.Router {
	memo := sim.NewMemo(c.measure)
	r := shard.New(c.cfg.Shards, search.MeanAgg, func() *index.Index {
		return index.NewWithMemo(memo, c.cfg.ThetaIndex)
	})
	r.SetObserver(c.o)
	return r
}

func trainTokens(d *datasets.Dataset) [][]string {
	out := make([][]string, len(d.Train))
	for i, ex := range d.Train {
		out[i] = ex.Tokens
	}
	return out
}

// ExtractTags runs the §4+§5 pipeline on free text and returns its
// subjective tags. It is reentrant.
func (c *Client) ExtractTags(text string) []string {
	tags, _ := c.ExtractTagsCtx(context.Background(), text)
	return tags
}

// ExtractTagsCtx is ExtractTags with cooperative cancellation (polled
// between sentences) and request telemetry: each call is one "extract"
// request with its own trace ID and wide event. On cancellation it returns a
// *StageError wrapping ctx's error and no partial tag list.
func (c *Client) ExtractTagsCtx(ctx context.Context, text string) ([]string, error) {
	ctx, req := c.o.StartRequest(ctx, "extract")
	req.Ev.UtteranceLen = len(text)
	tags, err := c.extr.ExtractTagsCtx(ctx, req.Root(), text)
	if err != nil {
		serr := &StageError{Stage: "extract", Err: err}
		req.Finish(serr)
		return nil, serr
	}
	req.Ev.Tags = len(tags)
	req.Finish(nil)
	return tags, nil
}

// CanonicalTags returns the domain's built-in subjective feature tags —
// a convenient starter set for IndexEntities.
func (c *Client) CanonicalTags() []string {
	var tags []string
	for _, f := range c.domain.Features {
		tags = append(tags, f.Name)
	}
	sort.Strings(tags)
	return tags
}

// IndexEntities extracts subjective tags from every entity's reviews and
// builds the inverted index for the given tag set. Extraction fans out
// across GOMAXPROCS goroutines (the pipeline is reentrant) and the build
// fans out per tag; results are merged in input order, so the index is
// identical for any degree of parallelism. Calling IndexEntities again
// builds a complete replacement world off to the side and publishes it
// atomically — queries already in flight finish against the old index, the
// next query sees the new one.
func (c *Client) IndexEntities(entities []Entity, tags []string) error {
	return c.IndexEntitiesCtx(context.Background(), entities, tags)
}

// IndexEntitiesCtx is IndexEntities with cooperative cancellation: the
// context is polled inside the extraction worker loop and the index build.
// On cancellation it returns a *StageError wrapping ctx's error and
// publishes nothing — the client keeps serving its previous index.
func (c *Client) IndexEntitiesCtx(ctx context.Context, entities []Entity, tags []string) error {
	ents := make(map[string]Entity, len(entities))
	for _, e := range entities {
		if e.ID == "" {
			return fmt.Errorf("saccs: entity with empty ID")
		}
		if _, dup := ents[e.ID]; dup {
			return fmt.Errorf("saccs: duplicate entity ID %q", e.ID)
		}
		ents[e.ID] = e
	}
	reviews := make([]index.EntityReviews, len(entities))
	extract := func(i int) {
		e := entities[i]
		er := index.EntityReviews{EntityID: e.ID, ReviewCount: len(e.Reviews)}
		for _, r := range e.Reviews {
			er.Tags = append(er.Tags, c.refExtr.ExtractTags(r)...)
		}
		reviews[i] = er
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(entities) {
		workers = len(entities)
	}
	if workers <= 1 {
		for i := range entities {
			if ctx.Err() != nil {
				break
			}
			extract(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < workers; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ctx.Err() == nil {
					i := int(next.Add(1)) - 1
					if i >= len(entities) {
						return
					}
					extract(i)
				}
			}()
		}
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		return &StageError{Stage: "extract", Err: err}
	}
	router := c.newRouter()
	low := make([]string, len(tags))
	for i, t := range tags {
		low[i] = strings.ToLower(t)
	}
	if err := router.BuildCtx(ctx, low, reviews); err != nil {
		return &StageError{Stage: "index", Err: err}
	}
	hist := index.NewHistory()
	hist.SetCap(c.cfg.HistoryLimit)
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	c.w.Store(&world{entities: ents, reviews: reviews, router: router, history: hist})
	if c.ings != nil {
		// The batch world supersedes the streamed one: rebase each shard's
		// ingester on its slice of the fresh index (checkpointing entity
		// metadata and truncating the WAL behind it) so future appends
		// continue from here.
		parts := router.Partition(reviews)
		metas := partitionMeta(ents, router.N())
		for i, ing := range c.ings {
			if err := ing.Rebase(router.Shard(i), low, parts[i], metas[i]); err != nil {
				return &StageError{Stage: "index", Err: err}
			}
		}
	}
	return nil
}

// partitionMeta splits the non-empty entity metadata by owning shard, in the
// shape each shard's ingester persists (checkpoint meta / WAL metadata
// records).
func partitionMeta(entities map[string]Entity, n int) []map[string]ingest.EntityMeta {
	out := make([]map[string]ingest.EntityMeta, n)
	for id, e := range entities {
		m := ingest.EntityMeta{Name: e.Name, City: e.City, Cuisine: e.Cuisine}
		if m == (ingest.EntityMeta{}) {
			continue
		}
		s := shard.Owner(id, n)
		if out[s] == nil {
			out[s] = map[string]ingest.EntityMeta{}
		}
		out[s][id] = m
	}
	return out
}

// AppendReview streams one review into an entity's record: the review is
// made durable (fsynced into the WAL when Config.WALDir is set) before the
// call returns, its tags are extracted in the background, and the published
// index absorbs it within the bounded-staleness window
// (Config.IngestPublishEvery reviews or Config.IngestPublishInterval,
// whichever comes first). An unknown entity ID is registered as a stub
// entity visible to objective filtering; review text is not retained in the
// entity's Reviews.
//
// Queries racing an append keep the lock-free snapshot contract: a reader
// sees either the generation before the fold or after it — never a torn
// one — and each published generation reflects a strict prefix of the
// append order.
func (c *Client) AppendReview(entityID, review string) error {
	return c.AppendReviewCtx(context.Background(), entityID, review)
}

// AppendReviewCtx is AppendReview with request telemetry (one "append"
// request per call) and cooperative cancellation of the publish that may
// piggyback on this append. The durability acknowledgment itself is not
// cancellable: once the call returns nil the review is on disk.
func (c *Client) AppendReviewCtx(ctx context.Context, entityID, review string) error {
	ctx, req := c.o.StartRequest(ctx, "append")
	req.Ev.UtteranceLen = len(review)
	fail := func(err error) error {
		serr := &StageError{Stage: "append", Err: err}
		req.Finish(serr)
		return serr
	}
	if entityID == "" {
		return fail(fmt.Errorf("empty entity ID"))
	}
	c.writeMu.Lock()
	if c.ings == nil {
		if err := c.openIngestLocked(); err != nil {
			c.writeMu.Unlock()
			return fail(err)
		}
	}
	// Register the entity stub before the append is durable: a review must
	// never be acknowledged for an entity queries cannot see.
	w := c.w.Load()
	_, known := w.entities[entityID]
	if !known {
		ents := make(map[string]Entity, len(w.entities)+1)
		for k, v := range w.entities {
			ents[k] = v
		}
		ents[entityID] = Entity{ID: entityID}
		c.w.Store(&world{entities: ents, reviews: w.reviews, router: w.router, history: w.history})
	}
	_, err := c.ings[w.router.Owner(entityID)].Append(ctx, entityID, review)
	if err != nil && !known {
		// The append was refused, so no review exists for the stub: roll
		// the world back rather than leave a phantom entity visible to
		// queries. Safe under writeMu — every world store holds it, so
		// nothing can have interleaved.
		c.w.Store(w)
	}
	c.writeMu.Unlock()
	if err != nil {
		return fail(err)
	}
	req.Finish(nil)
	return nil
}

// RegisterEntity upserts an entity's objective metadata (Name, City,
// Cuisine) without touching its reviews: the entity becomes visible to
// objective filtering immediately, and when the client streams through a
// durable WAL the metadata is fsynced as its own WAL record before the call
// returns — so a crash-recovered entity keeps its identity instead of
// degrading to a bare-ID stub. Reviews stream separately via AppendReview.
func (c *Client) RegisterEntity(e Entity) error {
	return c.RegisterEntityCtx(context.Background(), e)
}

// RegisterEntityCtx is RegisterEntity with request telemetry (one "register"
// request per call). Like AppendReviewCtx, the durability acknowledgment is
// not cancellable: once the call returns nil the metadata is on disk.
func (c *Client) RegisterEntityCtx(ctx context.Context, e Entity) error {
	ctx, req := c.o.StartRequest(ctx, "register")
	fail := func(err error) error {
		serr := &StageError{Stage: "register", Err: err}
		req.Finish(serr)
		return serr
	}
	if e.ID == "" {
		return fail(fmt.Errorf("empty entity ID"))
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if c.ings == nil && c.cfg.WALDir != "" {
		if err := c.openIngestLocked(); err != nil {
			return fail(err)
		}
	}
	w := c.w.Load()
	// Durability first: only a metadata record the WAL acknowledged may
	// become visible to queries.
	if c.ings != nil {
		m := ingest.EntityMeta{Name: e.Name, City: e.City, Cuisine: e.Cuisine}
		if _, err := c.ings[w.router.Owner(e.ID)].PutMeta(ctx, e.ID, m); err != nil {
			return fail(err)
		}
	}
	cur, known := w.entities[e.ID]
	up := Entity{ID: e.ID, Name: e.Name, City: e.City, Cuisine: e.Cuisine, Reviews: cur.Reviews}
	if !known || cur.Name != up.Name || cur.City != up.City || cur.Cuisine != up.Cuisine {
		ents := make(map[string]Entity, len(w.entities)+1)
		for k, v := range w.entities {
			ents[k] = v
		}
		ents[e.ID] = up
		c.w.Store(&world{entities: ents, reviews: w.reviews, router: w.router, history: w.history})
	}
	req.Finish(nil)
	return nil
}

// Quiesce publishes every streamed review that is still pending, so the
// index reflects all acknowledged appends. It is the streaming counterpart
// of waiting out the staleness window — tests and graceful drains call it
// instead of sleeping.
func (c *Client) Quiesce() error {
	c.writeMu.Lock()
	ings := c.ings
	c.writeMu.Unlock()
	for _, ing := range ings {
		if err := ing.Flush(context.Background()); err != nil {
			return err
		}
	}
	return nil
}

// openIngestLocked opens one streaming ingester per shard over the current
// world, seeding each with its slice of the batch-extracted reviews so
// streamed appends land on top of the indexed corpus. With a WALDir it first
// recovers any durable state — recovered entities come back with their
// persisted metadata, or as bare-ID stubs when none was ever written. Caller
// holds writeMu.
func (c *Client) openIngestLocked() error {
	w := c.w.Load()
	r := w.router
	parts := r.Partition(w.reviews)
	metas := partitionMeta(w.entities, r.N())
	ings := make([]*ingest.Ingester, r.N())
	for i := range ings {
		dir := c.cfg.WALDir
		if dir != "" && r.N() > 1 {
			dir = filepath.Join(dir, fmt.Sprintf("shard-%d", i))
		}
		ing, err := ingest.Open(ingest.Config{
			Dir:             dir,
			PublishEvery:    c.cfg.IngestPublishEvery,
			PublishInterval: c.cfg.IngestPublishInterval,
			Obs:             c.o,
		}, r.Shard(i), r.Shard(i).Tags(), parts[i], c.extractReviewTags)
		if err != nil {
			for _, g := range ings[:i] {
				_ = g.Close()
			}
			return err
		}
		// Known metadata rides along in memory so a later Rebase checkpoint
		// carries it; recovery below pulls the opposite direction.
		if len(metas[i]) > 0 {
			ing.SeedMeta(metas[i])
		}
		ings[i] = ing
	}
	c.ings = ings
	// Recovery can resurface entities the in-memory world has never seen
	// (their reviews or metadata arrived through the WAL in a previous
	// process): rebuild each with its persisted identity, or a stub when
	// only reviews survived.
	ents := w.entities
	changed := false
	clone := func() {
		if changed {
			return
		}
		m := make(map[string]Entity, len(ents)+8)
		for k, v := range ents {
			m[k] = v
		}
		ents, changed = m, true
	}
	for _, ing := range ings {
		meta := ing.Meta()
		for _, er := range ing.State() {
			if _, ok := ents[er.EntityID]; !ok {
				clone()
				m := meta[er.EntityID]
				ents[er.EntityID] = Entity{ID: er.EntityID, Name: m.Name, City: m.City, Cuisine: m.Cuisine}
			}
		}
		for id, m := range meta {
			if _, ok := ents[id]; !ok {
				clone()
				ents[id] = Entity{ID: id, Name: m.Name, City: m.City, Cuisine: m.Cuisine}
			}
		}
	}
	if changed {
		c.w.Store(&world{entities: ents, reviews: w.reviews, router: w.router, history: w.history})
	}
	return nil
}

// extractReviewTags is the ingester's extraction hook: per review it runs
// exactly what the batch IndexEntities path runs (the reference extractor's
// ExtractTags, which dedupes across a review's sentences), so a streamed
// world and a batch world extract identically — at the float64 reference
// precision, independent of the serving Precision.
func (c *Client) extractReviewTags(texts []string) [][]string {
	out := make([][]string, len(texts))
	for i, t := range texts {
		out[i] = c.refExtr.ExtractTags(t)
	}
	return out
}

// IndexedTags returns the current index keys.
func (c *Client) IndexedTags() []string { return c.w.Load().router.Tags() }

// Reindex drains the user tag history (unknown tags seen in queries) into
// the index — the adaptive round of the paper's Fig. 1 — and returns the
// tags added. It fans out across the index's worker pool; queries in flight
// keep their pinned snapshot and later queries see the extended index.
func (c *Client) Reindex() []string {
	tags, _ := c.ReindexCtx(context.Background())
	return tags
}

// ReindexCtx is Reindex with cooperative cancellation. On cancellation the
// drained tags are requeued onto the history (nothing is lost, nothing is
// published) and the error is a *StageError wrapping ctx's error.
func (c *Client) ReindexCtx(ctx context.Context) ([]string, error) {
	ctx, req := c.o.StartRequest(ctx, "reindex")
	fail := func(err error) ([]string, error) {
		serr := &StageError{Stage: "reindex", Err: err}
		req.Finish(serr)
		return nil, serr
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if err := ctx.Err(); err != nil {
		return fail(err)
	}
	w := c.w.Load()
	pend := w.history.Drain()
	if len(pend) == 0 {
		req.Finish(nil)
		return nil, nil
	}
	st := obs.BeginStage(c.o, req.Root(), "history.drain")
	st.Span().Set("pending", len(pend))
	st.End()
	if err := w.router.BuildCtx(ctx, pend, w.reviews); err != nil {
		w.history.Requeue(pend)
		return fail(err)
	}
	for _, ing := range c.ings {
		// Widen the streaming vocabulary too, so future delta publications
		// cover the tags just reindexed (durably, when a WALDir is set).
		if err := ing.AddTags(pend); err != nil {
			return fail(err)
		}
	}
	req.Ev.Tags = len(pend)
	req.Ev.Generation = w.router.Generation()
	req.Finish(nil)
	return pend, nil
}

// Query answers a natural-language utterance: intent recognition and slot
// filling, subjective tag extraction, index probing (similar-tag union for
// unknown tags), and Algorithm 1 filtering & ranking over the indexed
// entities.
//
// Every call updates the client's metrics (see Stats); with a trace sink
// attached (SetTraceSink) it also produces one root "query" span whose
// children time each pipeline stage: parse → tagger.decode → pairing.pairs
// → objective → rank (with per-tag index.resolve spans under rank).
func (c *Client) Query(utterance string) Response {
	resp, _ := c.QueryCtx(context.Background(), utterance)
	return resp
}

// QueryCtx is Query with cooperative cancellation and per-request options.
// The context is polled at every stage boundary (parse → extract →
// objective → rank) and periodically inside the tagger decode loop and the
// rank stage's per-tag similarity scans, so an expired deadline is observed
// mid-rank rather than after the full scan. A cancelled or expired context
// returns a zero Response and a *StageError naming the stage that observed
// it — never partial results. The root "query" span is annotated with a
// cancelled/deadline status and the query.interrupted.total counter ticks.
//
// The current index snapshot is pinned once, up front: the whole request —
// unknown-tag checks and ranking alike — reads one immutable index
// generation even while Reindex or IndexEntities publishes a new one
// mid-flight. An optional QueryOptions overrides TopK and ThetaFilter for
// this request only.
func (c *Client) QueryCtx(ctx context.Context, utterance string, opts ...QueryOptions) (Response, error) {
	t0 := time.Now()
	topK, theta := c.cfg.TopK, c.cfg.ThetaFilter
	if len(opts) > 0 {
		if opts[0].TopK != nil {
			topK = *opts[0].TopK
		}
		if opts[0].ThetaFilter != nil {
			theta = *opts[0].ThetaFilter
		}
	}
	ctx, req := c.o.StartRequest(ctx, "query")
	root := req.Root().Set("utterance_len", len(utterance))
	req.Ev.UtteranceLen = len(utterance)
	if len(opts) > 0 {
		req.Ev.TopK, req.Ev.ThetaFilter = opts[0].TopK, opts[0].ThetaFilter
	}
	w := c.w.Load()
	// Pin a consistent vector of shard snapshots once, up front: the whole
	// request reads one immutable generation per shard even while writers
	// republish underneath it.
	view := w.router.Pin()
	req.Ev.Generation = view.Generation()
	fail := func(stage string, err error) (Response, error) {
		c.o.Counter("query.interrupted.total").Inc()
		serr := &StageError{Stage: stage, Err: err}
		req.Finish(serr)
		return Response{}, serr
	}

	if err := ctx.Err(); err != nil {
		return fail("parse", err)
	}
	st := obs.BeginStage(c.o, root, "parse")
	in := parseIntentSlots(utterance)
	st.End()

	tags, err := c.extr.ExtractTagsCtx(ctx, root, utterance)
	if err != nil {
		return fail("extract", err)
	}

	var unknown []string
	for _, t := range tags {
		if !view.Has(t) {
			unknown = append(unknown, t)
			w.history.Add(t)
		}
	}

	if err := ctx.Err(); err != nil {
		return fail("objective", err)
	}
	st = obs.BeginStage(c.o, root, "objective")
	apiResults := objectiveFilter(w, in.slots)
	st.Span().Set("results", len(apiResults))
	st.End()

	st = obs.BeginStage(c.o, root, "rank")
	ranked, err := view.TopK(ctx, st.Span(), apiResults, tags, theta, topK)
	if err != nil {
		st.EndErr(err)
		return fail("rank", err)
	}
	st.End()
	results := make([]Result, len(ranked))
	for i, s := range ranked {
		results[i] = Result{ID: s.EntityID, Score: s.Score}
	}

	c.o.Counter("query.total").Inc()
	c.o.Counter("query.unknown_tags.total").Add(int64(len(unknown)))
	c.o.Histogram("query.latency").ObserveSince(t0)
	root.Set("tags", len(tags)).Set("unknown", len(unknown)).Set("results", len(results))
	req.Ev.Tags, req.Ev.Unknown, req.Ev.Results = len(tags), len(unknown), len(results)
	req.Finish(nil)
	return Response{
		Intent:      in.name,
		Slots:       in.slots,
		Tags:        tags,
		UnknownTags: unknown,
		Results:     results,
	}, nil
}

// QueryTags answers a query given directly as subjective tags (no dialog
// parsing), ranking all indexed entities.
func (c *Client) QueryTags(tags []string) []Result {
	out, _ := c.QueryTagsCtx(context.Background(), tags)
	return out
}

// QueryTagsCtx is QueryTags with cooperative cancellation and per-request
// options, under the same contract as QueryCtx: one pinned index snapshot,
// a *StageError and no partial results on cancellation.
func (c *Client) QueryTagsCtx(ctx context.Context, tags []string, opts ...QueryOptions) ([]Result, error) {
	t0 := time.Now()
	topK, theta := c.cfg.TopK, c.cfg.ThetaFilter
	if len(opts) > 0 {
		if opts[0].TopK != nil {
			topK = *opts[0].TopK
		}
		if opts[0].ThetaFilter != nil {
			theta = *opts[0].ThetaFilter
		}
	}
	w := c.w.Load()
	view := w.router.Pin()
	for _, t := range tags {
		if lt := strings.ToLower(t); !view.Has(lt) {
			w.history.Add(lt)
		}
	}
	var all []string
	for id := range w.entities {
		all = append(all, id)
	}
	sort.Strings(all)
	low := make([]string, len(tags))
	for i, t := range tags {
		low[i] = strings.ToLower(t)
	}
	ranked, err := view.TopK(ctx, nil, all, low, theta, topK)
	if err != nil {
		c.o.Counter("query.interrupted.total").Inc()
		return nil, &StageError{Stage: "rank", Err: err}
	}
	out := make([]Result, len(ranked))
	for i, s := range ranked {
		out[i] = Result{ID: s.EntityID, Score: s.Score}
	}
	c.o.Counter("query.tags.total").Inc()
	c.o.Histogram("query.latency").ObserveSince(t0)
	return out, nil
}

// Entity returns an indexed entity by id.
func (c *Client) Entity(id string) (Entity, bool) {
	e, ok := c.w.Load().entities[id]
	return e, ok
}

// TagLabels tags each token of a sentence with its IOB aspect/opinion class
// — the raw §4 view, useful for inspection and debugging.
func (c *Client) TagLabels(sentence string) (tokens []string, labels []string) {
	tokens = tokenize.Words(sentence)
	for _, l := range c.extr.Tagger.Predict(tokens) {
		labels = append(labels, l.String())
	}
	return tokens, labels
}

// --- observability ----------------------------------------------------------

// Stats snapshots the client's runtime metrics: query counters, per-stage
// latency histograms (stage.parse, stage.tagger.decode, stage.pairing.pairs,
// stage.objective, stage.rank), the high-resolution request-latency
// histograms (Snapshot.HDRs["request.latency.query"].Quantile for
// p50/p99/p999), the worst-K slow-query log (Snapshot.Slow, slowest first),
// index build/resolve instruments, SLO counters when Config.SLOTarget is
// set, and the training gauges recorded while New trained the pipeline.
// Metrics are always on; their cost is a few atomic operations per query.
func (c *Client) Stats() obs.Snapshot { return c.o.Snapshot() }

// Events returns the most recent wide events, oldest first: one structured
// record per finished request (trace ID, per-stage durations, index
// generation, cache hits, result counts, status, sampling verdict).
func (c *Client) Events() []obs.Event { return c.o.Telemetry().Events() }

// SlowQueries returns the worst-K slow or errored requests, slowest first —
// the same log Stats().Slow, the /debug/slow endpoint, and saccs-chat's
// :slow command expose.
func (c *Client) SlowQueries() []obs.Event { return c.o.Telemetry().SlowQueries() }

// Shutdown marks the client not-ready (the /readyz endpoint turns 503),
// stops background telemetry, and seals the streaming ingester: pending
// streamed reviews are published and the WAL is closed cleanly, so a
// restart recovers from the checkpoint without replay repairs. The client
// still answers queries — shutdown only signals orchestrators to drain
// traffic. Safe to call more than once; AppendReview after Shutdown reopens
// the stream.
func (c *Client) Shutdown() {
	c.writeMu.Lock()
	ings := c.ings
	c.ings = nil
	c.writeMu.Unlock()
	for _, ing := range ings {
		_ = ing.Close()
	}
	c.o.Telemetry().Close()
}

// SetTraceSink enables span tracing into sink (for example
// obs.NewRingSink(512) or obs.NewJSONLSink(file)); a nil sink disables
// tracing again. Disabled tracing costs nothing on the query path. The sink
// swap is atomic and may happen while queries are in flight.
func (c *Client) SetTraceSink(sink obs.SpanSink) {
	c.o.SetTracer(obs.NewTracer(sink))
}

// Observer exposes the client's observability handle — useful to serve the
// metrics registry over HTTP (obs.Serve) or attach custom instruments.
func (c *Client) Observer() *obs.Observer { return c.o }

// ServeMetrics starts an HTTP server exposing the client's observability
// surface: /metrics (Prometheus text, including the request-latency
// summaries and SLO series), /healthz (liveness — 200 whenever the process
// serves HTTP), /readyz (readiness — 200 only between the first index
// publication and Shutdown), /debug/slow (the worst-K slow-query log as
// JSON), and the pprof handlers under /debug/pprof.
//
// Lifecycle: the listener is opened synchronously — when ServeMetrics
// returns nil error the endpoint is already accepting connections, and the
// returned server's Addr holds the resolved bound address (so addr may use
// ":0" to pick a free port). The caller owns the returned server: stop it
// with Shutdown (graceful) or Close. If the listener cannot be opened — a
// malformed address, or the port still held by an earlier ServeMetrics that
// hasn't been shut down — the error is returned immediately and nothing is
// leaked. After a shutdown, ServeMetrics may be called again, including on
// the same address; each call serves the same live registry, so multiple
// concurrent servers on different ports are also fine.
func (c *Client) ServeMetrics(addr string) (*http.Server, error) {
	return obs.ServeObserver(addr, c.o)
}

// The observability vocabulary is re-exported as aliases so module
// consumers can use Stats/SetTraceSink without importing the internal obs
// package (which the compiler forbids outside this module).
type (
	// Snapshot is a point-in-time copy of the metrics registry (plus the
	// slow-query log).
	Snapshot = obs.Snapshot
	// SpanSink receives finished trace spans.
	SpanSink = obs.SpanSink
	// SpanRecord is one finished span: trace ID, span ID, parent, name,
	// start, duration, and key/value attributes.
	SpanRecord = obs.SpanRecord
	// RingSink is a fixed-capacity in-memory span sink.
	RingSink = obs.RingSink
	// Event is one wide event: the canonical structured record of a finished
	// request.
	Event = obs.Event
	// TraceID is the 128-bit per-request identity stamped on spans and
	// events, rendered as 32 hex digits.
	TraceID = obs.TraceID
	// Trace is a request's trace identity (trace ID, span ID, sampled flag)
	// as carried through context.Context and W3C traceparent strings.
	Trace = obs.Trace
)

// ContextWithTrace returns a context carrying tr; Client requests started
// under it join the trace (same trace ID, propagated sampling decision)
// instead of minting a new one — the cross-process propagation hook.
func ContextWithTrace(ctx context.Context, tr Trace) context.Context {
	return obs.ContextWithTrace(ctx, tr)
}

// TraceFrom returns the trace carried by ctx, if any. Inside a request (the
// context handed to stage callbacks) it reports the request's own identity.
func TraceFrom(ctx context.Context) (Trace, bool) { return obs.TraceFrom(ctx) }

// ParseTraceparent parses a W3C traceparent header ("00-<trace>-<span>-<flags>").
func ParseTraceparent(s string) (Trace, error) { return obs.ParseTraceparent(s) }

// NewRingSink returns an in-memory sink holding the last capacity spans.
func NewRingSink(capacity int) *RingSink { return obs.NewRingSink(capacity) }

// NewJSONLSink returns a sink writing one JSON object per span to w.
func NewJSONLSink(w io.Writer) SpanSink { return obs.NewJSONLSink(w) }

// LastRootSpan returns the most recently finished root span among spans.
func LastRootSpan(spans []SpanRecord) (SpanRecord, bool) { return obs.LastRoot(spans) }

// SpanSubtree filters spans down to root's subtree (root included).
func SpanSubtree(spans []SpanRecord, root uint64) []SpanRecord { return obs.Subtree(spans, root) }

// WriteSpanTree renders spans as an indented tree with durations and attrs.
func WriteSpanTree(w io.Writer, spans []SpanRecord) { obs.WriteTree(w, spans) }

// --- small internal helpers -------------------------------------------------

type intentView struct {
	name  string
	slots map[string]string
}

func parseIntentSlots(utterance string) intentView {
	// Reuse the dialog shim's keyword intent recognition and slot filling.
	in := search.ParseUtterance(utterance)
	return intentView{name: in.Name, slots: in.Slots}
}

// objectiveFilter plays the §3.2 objective API over one pinned world.
func objectiveFilter(w *world, slots map[string]string) []string {
	var out []string
	for id, e := range w.entities {
		if v, ok := slots["cuisine"]; ok && !strings.EqualFold(e.Cuisine, v) {
			continue
		}
		if v, ok := slots["location"]; ok && !strings.EqualFold(e.City, v) {
			continue
		}
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// SaveIndex writes the current subjective tag index as JSON so it can be
// reloaded without re-extracting reviews. It serializes the snapshot
// current at the moment of the call, unaffected by concurrent rebuilds.
// The single-index serialization format has no shard framing, so a sharded
// client (Config.Shards > 1) refuses with an error.
func (c *Client) SaveIndex(w io.Writer) error {
	r := c.w.Load().router
	if r.N() > 1 {
		return fmt.Errorf("saccs: SaveIndex unsupported with %d shards (use the WAL for durable sharded state)", r.N())
	}
	return r.Shard(0).Save(w)
}

// LoadIndex restores a previously saved index. The loaded postings are
// validated fully before anything is published, then swapped in atomically;
// on error the client keeps serving its previous index. The client's
// entities must be re-registered separately (IndexEntities with an empty
// tag list keeps reviews without rebuilding the postings). Like SaveIndex,
// it refuses on a sharded client.
func (c *Client) LoadIndex(r io.Reader) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	rt := c.w.Load().router
	if rt.N() > 1 {
		return fmt.Errorf("saccs: LoadIndex unsupported with %d shards (use the WAL for durable sharded state)", rt.N())
	}
	return rt.Shard(0).Load(r)
}

// CorrectTag routes a possibly misspelled tag onto the closest indexed tag
// within edit distance 2, using the §7 search-automaton extension. It
// returns the input unchanged when nothing is close enough.
func (c *Client) CorrectTag(tag string) string {
	trie := automaton.New()
	c.w.Load().router.EachTag(func(t string) bool { trie.Add(t); return true })
	if fixed, ok := trie.Closest(strings.ToLower(tag), 2); ok {
		return fixed
	}
	return tag
}
