package saccs

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"

	"saccs/internal/yelp"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden snapshots")

// goldenResult pins one ranked answer. Score is serialized as a %.9f string
// so the files are diff-stable and the comparison tolerance (1e-9) is visible
// in the snapshot itself.
type goldenResult struct {
	ID    string `json:"id"`
	Score string `json:"score"`
}

type goldenResponse struct {
	Utterance   string            `json:"utterance"`
	Intent      string            `json:"intent"`
	Slots       map[string]string `json:"slots,omitempty"`
	Tags        []string          `json:"tags"`
	UnknownTags []string          `json:"unknown_tags,omitempty"`
	Results     []goldenResult    `json:"results"`
}

// goldenWorld converts the seeded CI-scale Yelp world (36 Italian restaurants
// in Montreal, the same world cmd/saccs-chat and the §6 experiments demo on)
// into facade entities. Generation, training, extraction and ranking are all
// deterministic, so the end-to-end answers are pinnable byte for byte.
func goldenWorld() []Entity {
	w := yelp.Generate(yelp.FastConfig())
	out := make([]Entity, len(w.Entities))
	for i, e := range w.Entities {
		reviews := make([]string, len(e.Reviews))
		for j, r := range e.Reviews {
			reviews[j] = r.Text
		}
		out[i] = Entity{ID: e.ID, Name: e.Name, City: e.City, Cuisine: e.Cuisine, Reviews: reviews}
	}
	return out
}

var (
	goldenOnce   sync.Once
	goldenClient *Client
	goldenErr    error
)

// goldenIndexedClient indexes the golden world once. It reuses the shared
// trained client; the index swap is what the snapshots depend on, so every
// golden test goes through this helper instead of newClient directly.
func goldenIndexedClient(t *testing.T) *Client {
	t.Helper()
	goldenOnce.Do(func() {
		c := newClient(t)
		goldenErr = c.IndexEntities(goldenWorld(), c.CanonicalTags())
		goldenClient = c
	})
	if goldenErr != nil {
		t.Fatal(goldenErr)
	}
	return goldenClient
}

// The five canonical utterances cover the snapshot-worthy paths: plain
// subjective tags, tag + objective slots, multi-tag aggregation, and an
// off-lexicon phrasing that exercises the similar-tag union.
var goldenUtterances = []struct{ name, utterance string }{
	{"delicious-italian-montreal", "I want an Italian restaurant in Montreal with delicious food"},
	{"friendly-romantic", "somewhere with nice staff and a romantic ambiance"},
	{"quiet-quick", "a quiet atmosphere and quick service please"},
	{"prices-ingredients", "fair prices, fresh ingredients and generous portions"},
	{"tasty-meals", "a place that serves tasty meals"},
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".json")
}

func snapshotResponse(utterance string, resp Response) goldenResponse {
	g := goldenResponse{
		Utterance:   utterance,
		Intent:      resp.Intent,
		Slots:       resp.Slots,
		Tags:        resp.Tags,
		UnknownTags: resp.UnknownTags,
	}
	n := len(resp.Results)
	if n > 10 {
		n = 10
	}
	for _, r := range resp.Results[:n] {
		g.Results = append(g.Results, goldenResult{ID: r.ID, Score: fmt.Sprintf("%.9f", r.Score)})
	}
	return g
}

// TestGoldenQueries pins the full end-to-end answer (intent, slots, extracted
// tags, unknown tags, and the top-10 ranked IDs with scores to 1e-9) for the
// canonical utterances against the seeded demo world. Regenerate after an
// intentional behavior change with:
//
//	go test . -run TestGoldenQueries -update
func TestGoldenQueries(t *testing.T) {
	c := goldenIndexedClient(t)
	for _, tc := range goldenUtterances {
		t.Run(tc.name, func(t *testing.T) {
			got := snapshotResponse(tc.utterance, c.Query(tc.utterance))
			path := goldenPath(tc.name)
			if *updateGolden {
				data, err := json.MarshalIndent(got, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden snapshot (run with -update to create): %v", err)
			}
			var want goldenResponse
			if err := json.Unmarshal(data, &want); err != nil {
				t.Fatalf("corrupt golden snapshot %s: %v", path, err)
			}
			compareGolden(t, want, got)
		})
	}
}

func compareGolden(t *testing.T, want, got goldenResponse) {
	t.Helper()
	if got.Intent != want.Intent {
		t.Errorf("intent: got %q, want %q", got.Intent, want.Intent)
	}
	if len(got.Slots) != len(want.Slots) {
		t.Errorf("slots: got %v, want %v", got.Slots, want.Slots)
	} else {
		for k, v := range want.Slots {
			if got.Slots[k] != v {
				t.Errorf("slot %q: got %q, want %q", k, got.Slots[k], v)
			}
		}
	}
	if !equalStrings(got.Tags, want.Tags) {
		t.Errorf("tags: got %v, want %v", got.Tags, want.Tags)
	}
	if !equalStrings(got.UnknownTags, want.UnknownTags) {
		t.Errorf("unknown tags: got %v, want %v", got.UnknownTags, want.UnknownTags)
	}
	if len(got.Results) != len(want.Results) {
		t.Fatalf("results: got %d, want %d\ngot:  %v\nwant: %v", len(got.Results), len(want.Results), got.Results, want.Results)
	}
	for i := range want.Results {
		if got.Results[i].ID != want.Results[i].ID {
			t.Errorf("rank %d: got %s, want %s", i, got.Results[i].ID, want.Results[i].ID)
			continue
		}
		ws, err1 := strconv.ParseFloat(want.Results[i].Score, 64)
		gs, err2 := strconv.ParseFloat(got.Results[i].Score, 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("rank %d: unparseable scores %q / %q", i, want.Results[i].Score, got.Results[i].Score)
		}
		if math.Abs(ws-gs) > 1e-9 {
			t.Errorf("rank %d (%s): score drifted beyond 1e-9: got %s, want %s", i, got.Results[i].ID, got.Results[i].Score, want.Results[i].Score)
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestGoldenShardedQueries proves the scatter-gather serving contract end to
// end: a client partitioned across 3 shards must answer every canonical
// utterance byte-identically to the single-index golden snapshots — same
// tags, same ranking, scores to 1e-9.
func TestGoldenShardedQueries(t *testing.T) {
	if *updateGolden {
		t.Skip("snapshots are updated by the unsharded TestGoldenQueries")
	}
	base := goldenIndexedClient(t)
	cfg := DefaultConfig()
	cfg.Shards = 3
	c := cloneForTest(t, base, cfg)
	if err := c.IndexEntities(goldenWorld(), c.CanonicalTags()); err != nil {
		t.Fatal(err)
	}
	for _, tc := range goldenUtterances {
		t.Run(tc.name, func(t *testing.T) {
			got := snapshotResponse(tc.utterance, c.Query(tc.utterance))
			data, err := os.ReadFile(goldenPath(tc.name))
			if err != nil {
				t.Fatalf("missing golden snapshot (run TestGoldenQueries -update to create): %v", err)
			}
			var want goldenResponse
			if err := json.Unmarshal(data, &want); err != nil {
				t.Fatalf("corrupt golden snapshot: %v", err)
			}
			compareGolden(t, want, got)
		})
	}
}

// TestGoldenWorldStable guards the snapshot's foundation: the seeded world
// itself must not drift (entity count, first/last IDs, total review count).
// If this fails, regenerating the golden files is expected — the queries
// changed because the corpus did, not because the pipeline did.
func TestGoldenWorldStable(t *testing.T) {
	w := goldenWorld()
	if len(w) != 36 {
		t.Fatalf("golden world size changed: %d entities", len(w))
	}
	if w[0].ID != "e000" || w[len(w)-1].ID != "e035" {
		t.Fatalf("golden world IDs changed: %s..%s", w[0].ID, w[len(w)-1].ID)
	}
	total := 0
	for _, e := range w {
		total += len(e.Reviews)
	}
	if total == 0 {
		t.Fatal("golden world has no reviews")
	}
}
