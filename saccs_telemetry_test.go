package saccs

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"saccs/internal/obs"
)

// swapTelemetry attaches a fresh telemetry pipeline to the shared client for
// one test and restores the original afterward. The shared registry is
// untouched — only the event ring, sampler, and slow log are per-test.
func swapTelemetry(t *testing.T, c *Client, cfg obs.TelemetryConfig) *obs.Telemetry {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = c.Observer().Metrics
	}
	old := c.Observer().Telemetry()
	tel := obs.NewTelemetry(cfg)
	c.Observer().SetTelemetry(tel)
	t.Cleanup(func() {
		c.Observer().SetTelemetry(old)
		tel.Close()
	})
	return tel
}

// TestTailSamplingAcceptance drives the tentpole acceptance shape end to end
// on the public surface: a fast request under strict sampling knobs yields a
// wide event but retains no span tree, while a slow request (1ns threshold)
// and an errored request yield wide events with trace IDs and stage timings,
// retained span trees, and slow-log entries visible through Stats().Slow,
// SlowQueries(), and the /debug/slow endpoint.
func TestTailSamplingAcceptance(t *testing.T) {
	c := newClient(t)
	if err := c.IndexEntities(demoEntities(), c.CanonicalTags()); err != nil {
		t.Fatal(err)
	}
	ring := obs.NewRingSink(256)
	c.SetTraceSink(ring)
	defer c.SetTraceSink(nil)

	// Phase 1: unreachable thresholds — a normal query is observed (wide
	// event) but not retained (no span tree, no slow-log entry).
	swapTelemetry(t, c, obs.TelemetryConfig{HeadSampleN: 1 << 30, SlowThreshold: time.Hour})
	c.Query("an Italian restaurant in Montreal with delicious food")
	evs := c.Events()
	if len(evs) != 1 {
		t.Fatalf("%d wide events, want 1", len(evs))
	}
	if ev := evs[0]; ev.Retained || ev.Kind != "query" || ev.Trace.IsZero() {
		t.Fatalf("fast request event: %+v", ev)
	}
	if spans := ring.Spans(); len(spans) != 0 {
		t.Fatalf("fast unsampled request flushed %d spans", len(spans))
	}
	if slow := c.SlowQueries(); len(slow) != 0 {
		t.Fatalf("fast request entered the slow log: %+v", slow)
	}

	// Phase 2: a 1ns threshold makes the same query slow — retained span
	// tree, stage timings, and a slow-log entry on every surface.
	tel := swapTelemetry(t, c, obs.TelemetryConfig{SlowThreshold: time.Nanosecond})
	c.Query("an Italian restaurant in Montreal with delicious food")
	evs = tel.Events()
	if len(evs) != 1 {
		t.Fatalf("%d wide events, want 1", len(evs))
	}
	ev := evs[0]
	if !ev.Retained || ev.RetainReason != "slow" {
		t.Fatalf("slow request retention: %+v", ev)
	}
	if ev.Trace.IsZero() || ev.Duration <= 0 || ev.Results == 0 {
		t.Fatalf("slow request event: %+v", ev)
	}
	for _, stage := range []string{"parse", "tagger.decode", "objective", "rank"} {
		if _, ok := ev.Stage[stage]; !ok {
			t.Errorf("wide event missing stage %q: %v", stage, ev.Stage)
		}
	}
	spans := ring.Spans()
	root, ok := obs.LastRoot(spans)
	if !ok || root.Name != "query" {
		t.Fatalf("slow request span tree: root %+v ok=%v", root, ok)
	}
	if root.Trace != ev.Trace {
		t.Fatalf("span trace %s != event trace %s", root.Trace, ev.Trace)
	}
	if got := len(obs.Subtree(spans, root.ID)); got < 5 {
		t.Fatalf("retained span tree has %d spans, want >= 5", got)
	}

	// The slow-log entry is the same event on every surface.
	checkSlow := func(name string, slow []obs.Event) {
		t.Helper()
		if len(slow) != 1 || slow[0].Trace != ev.Trace {
			t.Fatalf("%s: %+v, want the slow query with trace %s", name, slow, ev.Trace)
		}
	}
	checkSlow("SlowQueries()", c.SlowQueries())
	checkSlow("Stats().Slow", c.Stats().Slow)
	srv := httptest.NewServer(obs.ObserverMux(c.Observer()))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/slow")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var fromHTTP []obs.Event
	if err := json.NewDecoder(resp.Body).Decode(&fromHTTP); err != nil {
		t.Fatal(err)
	}
	checkSlow("/debug/slow", fromHTTP)

	// Phase 3: a cancelled request is retained as an error even with
	// sampling otherwise off.
	tel = swapTelemetry(t, c, obs.TelemetryConfig{HeadSampleN: 1 << 30, SlowThreshold: time.Hour})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.QueryCtx(ctx, "delicious food"); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled query error: %v", err)
	}
	evs = tel.Events()
	if len(evs) != 1 || !evs[0].Retained || evs[0].RetainReason != "error" || evs[0].Status != "cancelled" {
		t.Fatalf("cancelled request events: %+v", evs)
	}
	if len(tel.SlowQueries()) != 1 {
		t.Fatalf("cancelled request missing from the slow log")
	}
}

// TestGoldenQueriesWithSampling replays the golden utterances with the full
// telemetry stack on — tracing, head sampling, a 1ns slow threshold, SLO
// accounting — and compares against the committed snapshots: telemetry must
// never perturb results.
func TestGoldenQueriesWithSampling(t *testing.T) {
	c := newClient(t)
	// Earlier tests may have re-indexed the demo entities on the shared
	// client; the snapshots are pinned against the golden world.
	if err := c.IndexEntities(goldenWorld(), c.CanonicalTags()); err != nil {
		t.Fatal(err)
	}
	ring := obs.NewRingSink(1024)
	c.SetTraceSink(ring)
	defer c.SetTraceSink(nil)
	swapTelemetry(t, c, obs.TelemetryConfig{
		HeadSampleN:   1,
		SlowThreshold: time.Nanosecond,
		SLOTarget:     time.Second,
	})
	for _, tc := range goldenUtterances {
		t.Run(tc.name, func(t *testing.T) {
			got := snapshotResponse(tc.utterance, c.Query(tc.utterance))
			data, err := os.ReadFile(goldenPath(tc.name))
			if err != nil {
				t.Fatalf("missing golden snapshot (run TestGoldenQueries -update first): %v", err)
			}
			var want goldenResponse
			if err := json.Unmarshal(data, &want); err != nil {
				t.Fatal(err)
			}
			compareGolden(t, want, got)
		})
	}
}

// TestClientStatsHDRAndSLO checks the latency-accounting surface: the
// request-latency HDR quantiles appear in Stats() and the full /metrics
// payload — p50/p99/p999 summaries, SLO counters and burn gauge — parses
// under the Prometheus exposition grammar.
func TestClientStatsHDRAndSLO(t *testing.T) {
	c := newClient(t)
	if err := c.IndexEntities(demoEntities(), c.CanonicalTags()); err != nil {
		t.Fatal(err)
	}
	swapTelemetry(t, c, obs.TelemetryConfig{SLOTarget: time.Minute})
	const n = 5
	for i := 0; i < n; i++ {
		c.Query("a place with friendly staff")
	}
	snap := c.Stats()
	hdr, ok := snap.HDRs["request.latency.query"]
	if !ok || hdr.Count < n {
		t.Fatalf("request.latency.query HDR: %+v ok=%v", hdr, ok)
	}
	p50, p99, p999 := hdr.Quantile(0.5), hdr.Quantile(0.99), hdr.Quantile(0.999)
	if p50 <= 0 || p99 < p50 || p999 < p99 {
		t.Fatalf("quantiles out of order: p50=%v p99=%v p999=%v", p50, p99, p999)
	}
	if good := snap.Counters["slo.requests.good.total"]; good < n {
		t.Fatalf("slo.requests.good.total: %d, want >= %d", good, n)
	}
	if _, ok := snap.Gauges["slo.error_budget.burn"]; !ok {
		t.Fatal("slo.error_budget.burn gauge missing")
	}

	srv, err := c.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if err := obs.ValidatePrometheusText(io.TeeReader(resp.Body, &sb)); err != nil {
		t.Fatalf("/metrics fails the exposition grammar: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		`request_latency_query_seconds{quantile="0.5"}`,
		`request_latency_query_seconds{quantile="0.99"}`,
		`request_latency_query_seconds{quantile="0.999"}`,
		"slo_error_budget_burn",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestConfigTelemetryKnobs proves the Config plumbing end to end with one
// dedicated client: TraceSampleN/SlowThreshold/SLOTarget arm sampling, the
// slow log, and SLO accounting, and the readiness lifecycle follows index
// publication — not ready before the first IndexEntities, ready after,
// permanently not ready after Shutdown.
func TestConfigTelemetryKnobs(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a second pipeline")
	}
	cfg := DefaultConfig()
	cfg.TraceSampleN = 1
	cfg.SlowThreshold = time.Nanosecond
	cfg.SLOTarget = time.Second
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()

	srv, err := c.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	readyz := func() int {
		resp, err := http.Get("http://" + srv.Addr + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := readyz(); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz before first index publication: %d, want 503", code)
	}
	if err := c.IndexEntities(demoEntities(), c.CanonicalTags()); err != nil {
		t.Fatal(err)
	}
	if code := readyz(); code != http.StatusOK {
		t.Fatalf("readyz after IndexEntities: %d, want 200", code)
	}

	c.Query("a restaurant with delicious food")
	evs := c.Events()
	if len(evs) == 0 {
		t.Fatal("no wide events with telemetry knobs set")
	}
	last := evs[len(evs)-1]
	if !last.Retained || last.Trace.IsZero() {
		t.Fatalf("knob-armed query not retained: %+v", last)
	}
	if len(c.SlowQueries()) == 0 {
		t.Fatal("1ns SlowThreshold produced no slow-log entries")
	}
	snap := c.Stats()
	if snap.Counters["slo.requests.good.total"]+snap.Counters["slo.requests.bad.total"] == 0 {
		t.Fatal("SLOTarget produced no SLO accounting")
	}

	c.Shutdown()
	if code := readyz(); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz after Shutdown: %d, want 503", code)
	}
	// Shutdown only signals drain; the client still answers.
	if resp := c.Query("a place with delicious food"); len(resp.Tags) == 0 {
		t.Fatal("client stopped answering after Shutdown")
	}
}

// TestTraceSinkSwapRace races Query traffic against concurrent SetTraceSink
// swaps — the documented atomicity contract, exercised under -race.
func TestTraceSinkSwapRace(t *testing.T) {
	c := newClient(t)
	if err := c.IndexEntities(demoEntities(), c.CanonicalTags()); err != nil {
		t.Fatal(err)
	}
	swapTelemetry(t, c, obs.TelemetryConfig{HeadSampleN: 2, SlowThreshold: time.Nanosecond})
	defer c.SetTraceSink(nil)

	var wg sync.WaitGroup
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				if (g+i)%2 == 0 {
					c.Query("delicious food in Montreal")
				} else {
					c.ExtractTags("the staff is friendly")
				}
			}
		}(g)
	}
	go func() { wg.Wait(); close(done) }()
	rings := []*obs.RingSink{obs.NewRingSink(64), obs.NewRingSink(64)}
	for i := 0; ; i++ {
		select {
		case <-done:
		default:
			c.SetTraceSink(rings[i%2])
			c.SetTraceSink(nil)
			continue
		}
		break
	}
	if len(c.Events()) == 0 {
		t.Fatal("no wide events recorded during the sink-swap race")
	}
}

// TestObsLint is the telemetry schema gate run by `make ci` (obs-lint): every
// child stage span the pipeline emits must be declared in obs.StageNames,
// must have a registered latency histogram, and must surface in the wide
// event's stage map — so a renamed or new stage cannot silently fall out of
// /metrics or the wide events.
func TestObsLint(t *testing.T) {
	c := newClient(t)
	if err := c.IndexEntities(demoEntities(), c.CanonicalTags()); err != nil {
		t.Fatal(err)
	}
	ring := obs.NewRingSink(2048)
	c.SetTraceSink(ring)
	defer c.SetTraceSink(nil)
	tel := swapTelemetry(t, c, obs.TelemetryConfig{HeadSampleN: 1})

	// Cover every request kind: query (with an unknown tag so history.drain
	// has work), extract, and reindex.
	c.Query("an Italian restaurant in Montreal with delicious food and a splendiferous vibe")
	c.ExtractTags("the staff is friendly and the food is delicious")
	c.Reindex()

	schema := map[string]bool{}
	for _, name := range obs.StageNames {
		schema[name] = true
	}
	snap := c.Stats()
	eventStages := map[string]bool{}
	for _, ev := range tel.Events() {
		for name := range ev.Stage {
			eventStages[name] = true
		}
	}
	seen := map[string]bool{}
	for _, s := range ring.Spans() {
		if s.Parent == 0 || seen[s.Name] {
			continue
		}
		seen[s.Name] = true
		if !schema[s.Name] {
			t.Errorf("span %q is not declared in obs.StageNames — wide events would drop it from the schema", s.Name)
		}
		// Every stage span must feed a registered latency histogram: BeginStage
		// stages under "stage.<name>", the index instruments under their own name.
		if snap.Histograms["stage."+s.Name].Count == 0 && snap.Histograms[s.Name].Count == 0 {
			t.Errorf("span %q has no registered latency histogram (stage.%s or %s)", s.Name, s.Name, s.Name)
		}
		if !eventStages[s.Name] {
			t.Errorf("span %q never surfaced in a wide event's stage map", s.Name)
		}
	}
	if len(seen) < 5 {
		t.Fatalf("obs-lint saw only %d distinct stage spans: %v", len(seen), seen)
	}
}
