package saccs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

var (
	sharedClient *Client
	sharedErr    error
	clientOnce   sync.Once
)

// newClient trains one shared fast client for the facade tests. Tests that
// index entities re-index, which resets the client's corpus state anyway.
func newClient(t *testing.T) *Client {
	t.Helper()
	clientOnce.Do(func() {
		sharedClient, sharedErr = New(DefaultConfig())
	})
	if sharedErr != nil {
		t.Fatal(sharedErr)
	}
	return sharedClient
}

func demoEntities() []Entity {
	return []Entity{
		{
			ID: "vue", Name: "Vue du Monde", City: "Montreal", Cuisine: "Italian",
			Reviews: []string{
				"The food is delicious and the staff is friendly.",
				"Really good food. The waiters were very attentive.",
				"Amazing pizza and a quiet atmosphere.",
			},
		},
		{
			ID: "hut", Name: "Pizza Hut", City: "Montreal", Cuisine: "Italian",
			Reviews: []string{
				"The food was bland and the staff was rude.",
				"Fast delivery but the plates were dirty.",
			},
		},
		{
			ID: "anchovy", Name: "Anchovy", City: "Melbourne", Cuisine: "Italian",
			Reviews: []string{
				"Creative cooking and fresh ingredients.",
				"The menu is varied and the cooking is inventive.",
			},
		},
	}
}

func TestClientEndToEnd(t *testing.T) {
	c := newClient(t)
	if err := c.IndexEntities(demoEntities(), c.CanonicalTags()); err != nil {
		t.Fatal(err)
	}
	if len(c.IndexedTags()) != 18 {
		t.Fatalf("indexed tags: %d", len(c.IndexedTags()))
	}
	resp := c.Query("I want an Italian restaurant in Montreal with delicious food")
	if resp.Intent != "searchRestaurant" {
		t.Fatalf("intent: %s", resp.Intent)
	}
	if resp.Slots["cuisine"] != "italian" || resp.Slots["location"] != "montreal" {
		t.Fatalf("slots: %v", resp.Slots)
	}
	// Melbourne entity must be filtered out by the objective slots.
	for _, r := range resp.Results {
		if r.ID == "anchovy" {
			t.Fatal("objective filter leaked a Melbourne entity")
		}
	}
	if len(resp.Results) == 0 {
		t.Fatal("no results")
	}
	// The positively reviewed restaurant should outrank the bad one.
	if resp.Results[0].ID != "vue" {
		t.Fatalf("expected vue first, got %v", resp.Results)
	}
}

func TestClientExtractTags(t *testing.T) {
	c := newClient(t)
	tags := c.ExtractTags("The food is delicious and the staff is friendly.")
	if len(tags) == 0 {
		t.Fatal("no tags extracted")
	}
	joined := strings.Join(tags, "|")
	if !strings.Contains(joined, "food") {
		t.Fatalf("expected a food tag, got %v", tags)
	}
}

func TestClientUnknownTagAndReindex(t *testing.T) {
	c := newClient(t)
	if err := c.IndexEntities(demoEntities(), []string{"delicious food"}); err != nil {
		t.Fatal(err)
	}
	resp := c.Query("a place with a quiet atmosphere")
	if len(resp.Tags) == 0 {
		t.Skip("tagger missed the tag at fast scale")
	}
	if len(resp.UnknownTags) == 0 {
		t.Fatalf("tag should be unknown to a 1-tag index: %v", resp.Tags)
	}
	added := c.Reindex()
	if len(added) == 0 {
		t.Fatal("Reindex added nothing")
	}
	for _, tag := range added {
		if !c.w.Load().router.Pin().Has(tag) {
			t.Fatalf("tag %q not indexed after Reindex", tag)
		}
	}
}

func TestClientQueryTags(t *testing.T) {
	c := newClient(t)
	if err := c.IndexEntities(demoEntities(), c.CanonicalTags()); err != nil {
		t.Fatal(err)
	}
	got := c.QueryTags([]string{"creative cooking"})
	if len(got) == 0 {
		t.Fatal("no results")
	}
	if got[0].ID != "anchovy" {
		t.Fatalf("anchovy should win creative cooking: %v", got)
	}
}

func TestClientValidation(t *testing.T) {
	c := newClient(t)
	if err := c.IndexEntities([]Entity{{ID: ""}}, nil); err == nil {
		t.Fatal("empty ID must error")
	}
	if err := c.IndexEntities([]Entity{{ID: "a"}, {ID: "a"}}, nil); err == nil {
		t.Fatal("duplicate ID must error")
	}
	if _, err := New(Config{Domain: "aviation"}); err == nil {
		t.Fatal("unknown domain must error")
	}
	_ = c
}

// TestConfigZeroValuesHonored pins the explicit-zero contract: New takes
// numeric fields literally instead of silently replacing zeros with the
// DefaultConfig values.
func TestConfigZeroValuesHonored(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ThetaIndex = 0
	cfg.ThetaFilter = 0
	cfg.Epsilon = 0
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.cfg.ThetaIndex != 0 || c.cfg.ThetaFilter != 0 || c.cfg.Epsilon != 0 {
		t.Fatalf("explicit zeros were defaulted: %+v", c.cfg)
	}
	// Behavioral check: θ_index = 0 admits every review tag with any
	// positive similarity, so the zero-threshold posting list can only be a
	// superset of the default-threshold one.
	if err := c.IndexEntities(demoEntities(), []string{"delicious food"}); err != nil {
		t.Fatal(err)
	}
	zero := c.w.Load().router.Shard(0).Lookup("delicious food")
	def := newClient(t)
	if err := def.IndexEntities(demoEntities(), []string{"delicious food"}); err != nil {
		t.Fatal(err)
	}
	if len(zero) < len(def.w.Load().router.Shard(0).Lookup("delicious food")) {
		t.Fatalf("theta_index 0 produced fewer postings (%d) than 0.55", len(zero))
	}
}

// TestConcurrentQueryReindex hammers Query from 8 goroutines while Reindex
// runs the adaptive loop of Fig. 1 concurrently — the snapshot-publication
// contract (reentrant extraction + pinned immutable index generations).
// Run with -race.
func TestConcurrentQueryReindex(t *testing.T) {
	c := newClient(t)
	if err := c.IndexEntities(demoEntities(), []string{"delicious food"}); err != nil {
		t.Fatal(err)
	}
	utterances := []string{
		"a place with a quiet atmosphere",
		"I want an Italian restaurant in Montreal with delicious food",
		"somewhere with friendly staff and creative cooking",
		"good food and attentive waiters please",
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp := c.Query(utterances[(g+i)%len(utterances)])
				if resp.Intent != "searchRestaurant" {
					t.Errorf("intent: %s", resp.Intent)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			c.Reindex()
		}
	}()
	wg.Wait()
	// Every unknown tag either drained into the index by a Reindex round or
	// is still pending; a final round must leave nothing behind.
	c.Reindex()
	for _, tag := range c.w.Load().history.Pending() {
		t.Errorf("tag %q still pending after final Reindex", tag)
	}
}

func TestClientTagLabels(t *testing.T) {
	c := newClient(t)
	tokens, labels := c.TagLabels("the food is delicious")
	if len(tokens) != len(labels) || len(tokens) != 4 {
		t.Fatalf("TagLabels shape: %v %v", tokens, labels)
	}
	for _, l := range labels {
		switch l {
		case "O", "B-AS", "I-AS", "B-OP", "I-OP":
		default:
			t.Fatalf("invalid label %q", l)
		}
	}
}

func TestEntityLookup(t *testing.T) {
	c := newClient(t)
	if err := c.IndexEntities(demoEntities(), nil); err != nil {
		t.Fatal(err)
	}
	e, ok := c.Entity("vue")
	if !ok || e.Name != "Vue du Monde" {
		t.Fatalf("Entity lookup: %v %v", e, ok)
	}
	if _, ok := c.Entity("nope"); ok {
		t.Fatal("unknown entity reported present")
	}
}

func TestClientSaveLoadIndex(t *testing.T) {
	c := newClient(t)
	if err := c.IndexEntities(demoEntities(), c.CanonicalTags()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	before := c.QueryTags([]string{"creative cooking"})
	if err := c.LoadIndex(&buf); err != nil {
		t.Fatal(err)
	}
	after := c.QueryTags([]string{"creative cooking"})
	if len(before) != len(after) {
		t.Fatalf("round trip changed results: %v vs %v", before, after)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("result %d changed: %v vs %v", i, before[i], after[i])
		}
	}
}

func TestClientCorrectTag(t *testing.T) {
	c := newClient(t)
	if err := c.IndexEntities(demoEntities(), c.CanonicalTags()); err != nil {
		t.Fatal(err)
	}
	if got := c.CorrectTag("delicous food"); got != "delicious food" {
		t.Fatalf("typo routing: %q", got)
	}
	if got := c.CorrectTag("Nice Staff"); got != "nice staff" {
		t.Fatalf("case routing: %q", got)
	}
	if got := c.CorrectTag("completely unrelated thing"); got != "completely unrelated thing" {
		t.Fatalf("unmatched tags must pass through: %q", got)
	}
}
