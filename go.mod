module saccs

go 1.22
