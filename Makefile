# Tier-1 verification lives behind `make ci`: lint (gofmt gate + vet) +
# build + race-enabled tests + the correctness harness (differential oracles + property checks
# under -race), the obs-lint telemetry-schema gate, a bounded fuzz smoke of
# every fuzz target, and a short parallel-throughput smoke run of saccs-bench. The race run uses -short
# because the full experiment harness (internal/experiments regenerates every
# paper table) exceeds go test's timeout under the race detector; -short
# skips only those heavy regenerators — the concurrency tests (saccs root
# package, internal/obs, internal/index) always run. `make race-full` races
# the whole suite when you have ~an hour.

GO ?= go

# Per-target budget for fuzz-smoke. Native fuzzing keeps any crashers it
# finds under testdata/fuzz/ — commit them as regression seeds.
FUZZTIME ?= 30s

# Minimum acceptable total test coverage (percent), measured by `make cover`.
# Recorded from the seed tree; raise it when coverage genuinely improves,
# never lower it to make a PR pass.
COVER_BASELINE ?= 77.3

.PHONY: ci lint vet build test test-short race race-full bench bench-smoke \
	bench-contention bench-cache bench-latency bench-batch bench-ingest \
	bench-serve check obs-lint fuzz-smoke cover

ci: lint build race check obs-lint fuzz-smoke bench-smoke

# obs-lint gates the telemetry schema: every stage.* span the query pipeline
# emits must have a matching registered stage-latency histogram and must
# appear in the wide-event schema (obs.StageNames), so a renamed span can't
# silently fall out of /metrics or the wide events.
obs-lint:
	$(GO) test -count=1 -run '^TestObsLint' .

# lint gates formatting and static analysis: gofmt must report no files, and
# go vet must pass (with variable-shadow checking when the external shadow
# analyzer is installed — it is optional, CI images without it still get the
# full built-in vet suite).
lint: vet
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	@if command -v shadow >/dev/null 2>&1; then \
		$(GO) vet -vettool=$$(command -v shadow) ./... ./cmd/... ./examples/...; \
	else \
		echo "shadow analyzer not installed; skipping shadow vet"; \
	fi

# ./... covers every package in the module; cmd/ and examples/ are listed
# explicitly so the gate still covers them if the root pattern is narrowed.
vet:
	$(GO) vet ./... ./cmd/... ./examples/...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race -short -timeout=30m ./...

race-full:
	$(GO) test -race -timeout=90m ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# bench-smoke exercises the parallel query path end-to-end for a fraction of
# a second — enough to catch a deadlock or crash in the concurrent pipeline
# without slowing CI — and -qps-guard fails the run if 4-goroutine QPS drops
# below 1-goroutine QPS (the parallel-scaling regression this repo once
# shipped: more goroutines, fewer queries). The same guard covers sharding:
# a 4-shard facade client queried by 4 goroutines must beat the 1-shard
# serial baseline, so scatter-gather fan-out can't eat the batching wins.
# -quant-guard fails the run if the mixed-precision cold decode is not at
# least 2x the float64 decode — the quantized kernels' reason to exist.
# It writes no BENCH.json.
bench-smoke:
	$(GO) run ./cmd/saccs-bench -only parallel,quant -parallel 4 -parallel-dur 300ms -qps-guard -quant-guard -bench-out ""

# bench-contention measures reader QPS with and without a writer
# continuously rebuilding (and republishing) the index — the
# readers-vs-rebuild cost of the snapshot-publication design. Appends
# contention rows to BENCH.json.
bench-contention:
	$(GO) run ./cmd/saccs-bench -only contention -readers 8 -contention-dur 2s

# bench-cache measures the generation-keyed extraction cache: cold vs warm
# per-sentence extraction latency, the warm hit ratio, and repeated-utterance
# query QPS with the cache off and on. Appends the cache section to
# BENCH.json.
bench-cache:
	$(GO) run ./cmd/saccs-bench -only cache -parallel-dur 2s

# bench-batch sweeps the cross-request extraction batcher: gather windows
# {off, 100µs, 250µs, 500µs} × goroutine counts {1,2,4,8} on a cold (cache-
# missing) query stream, reporting QPS, shared vs solo decode counts, and the
# mean batch size. Appends the batch section to BENCH.json.
bench-batch:
	$(GO) run ./cmd/saccs-bench -only batch -parallel-dur 2s

# bench-latency measures the end-to-end query latency distribution
# (p50/p90/p99/p999 from the request-latency histogram, plus QPS) and writes
# the latency section of BENCH.json.
bench-latency:
	$(GO) run ./cmd/saccs-bench -only latency -parallel-dur 2s

# bench-serve drives the real HTTP tier (cmd/saccs-server's stack) with an
# open-loop load generator at shard counts {1,2,4}: fixed arrival rates on a
# ladder calibrated against the 1-shard server, latency quantiles measured
# from scheduled arrival time (no coordinated omission), and the max
# sustained rate per shard count. Appends the serve section to BENCH.json.
# (The sharding regression gate lives in bench-smoke's parallel section,
# where it is independent of the machine's core count.)
bench-serve:
	$(GO) run ./cmd/saccs-bench -only serve -parallel-dur 2s

# bench-ingest measures the streaming-ingest tier on the real filesystem:
# durable append throughput under FsyncAlways and FsyncBatch, the
# durable-ack and publish-lag latency quantiles, and the crash-recovery
# replay rate at reopen. Appends the ingest section to BENCH.json.
bench-ingest:
	$(GO) run ./cmd/saccs-bench -only ingest -parallel-dur 2s

# check runs the correctness harness under the race detector: the
# internal/check differential oracles (serial vs parallel build, persisted vs
# rebuilt index, memoized vs raw similarity, serial vs concurrent query) and
# property/metamorphic checks (threshold monotonicity, tag strengthening,
# rank permutation invariance, slot word boundaries), plus every committed
# fuzz seed corpus replayed as plain regression tests.
check:
	$(GO) test -race -count=1 ./internal/check/...
	$(GO) test -race -count=1 -run '^Fuzz' ./internal/tokenize/ ./internal/search/ \
		./internal/parse/ ./internal/tagger/ ./internal/index/ ./internal/ingest/ \
		./internal/mat/

# fuzz-smoke gives each native fuzz target a bounded budget ($(FUZZTIME) per
# target). `go test -fuzz` accepts exactly one target per invocation, hence
# one line per function. New crashers land in testdata/fuzz/ — commit them.
fuzz-smoke:
	$(GO) test -fuzz '^FuzzWords$$' -fuzztime $(FUZZTIME) -run '^$$' ./internal/tokenize/
	$(GO) test -fuzz '^FuzzSentences$$' -fuzztime $(FUZZTIME) -run '^$$' ./internal/tokenize/
	$(GO) test -fuzz '^FuzzParseUtterance$$' -fuzztime $(FUZZTIME) -run '^$$' ./internal/search/
	$(GO) test -fuzz '^FuzzBuildTree$$' -fuzztime $(FUZZTIME) -run '^$$' ./internal/parse/
	$(GO) test -fuzz '^FuzzPredictDecode$$' -fuzztime $(FUZZTIME) -run '^$$' ./internal/tagger/
	$(GO) test -fuzz '^FuzzSnapshotDecode$$' -fuzztime $(FUZZTIME) -run '^$$' ./internal/index/
	$(GO) test -fuzz '^FuzzWALDecode$$' -fuzztime $(FUZZTIME) -run '^$$' ./internal/ingest/
	$(GO) test -fuzz '^FuzzQuantRoundTrip$$' -fuzztime $(FUZZTIME) -run '^$$' ./internal/mat/

# cover measures total -short coverage and fails if it regresses below
# COVER_BASELINE (the value recorded from the seed tree).
cover:
	$(GO) test -short -coverprofile=coverage.out ./...
	@total=$$($(GO) tool cover -func=coverage.out | tail -1 | awk '{sub(/%/, "", $$NF); print $$NF}'); \
	echo "total coverage: $$total% (baseline $(COVER_BASELINE)%)"; \
	awk -v t="$$total" -v b="$(COVER_BASELINE)" 'BEGIN { exit (t+0 < b+0) ? 1 : 0 }' \
		|| { echo "coverage regressed below $(COVER_BASELINE)%"; exit 1; }
