# Tier-1 verification lives behind `make ci`: vet + build + race-enabled
# tests + a short parallel-throughput smoke run of saccs-bench. The race run
# uses -short because the full experiment harness (internal/experiments
# regenerates every paper table) exceeds go test's timeout under the race
# detector; -short skips only those heavy regenerators — the concurrency
# tests (saccs root package, internal/obs, internal/index) always run.
# `make race-full` races the whole suite when you have ~an hour.

GO ?= go

.PHONY: ci vet build test test-short race race-full bench bench-smoke

ci: vet build race bench-smoke

# ./... covers every package in the module; cmd/ and examples/ are listed
# explicitly so the gate still covers them if the root pattern is narrowed.
vet:
	$(GO) vet ./... ./cmd/... ./examples/...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race -short -timeout=30m ./...

race-full:
	$(GO) test -race -timeout=90m ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# bench-smoke exercises the parallel query path end-to-end for a fraction of
# a second — enough to catch a deadlock or crash in the concurrent pipeline
# without slowing CI. It writes no BENCH.json.
bench-smoke:
	$(GO) run ./cmd/saccs-bench -only parallel -parallel 4 -parallel-dur 300ms -bench-out ""
