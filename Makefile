# Tier-1 verification lives behind `make ci`: vet + build + race-enabled
# tests. The race run uses -short because the full experiment harness
# (internal/experiments regenerates every paper table) exceeds go test's
# timeout under the race detector; -short skips only those heavy
# regenerators — the concurrency tests (saccs root package, internal/obs)
# always run. `make race-full` races the whole suite when you have ~an hour.

GO ?= go

.PHONY: ci vet build test test-short race race-full bench

ci: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race -short -timeout=30m ./...

race-full:
	$(GO) test -race -timeout=90m ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...
