// Benchmarks: one per table and figure of the paper (regenerating the
// corresponding measurement at fast scale and reporting it as a custom
// metric), plus the ablation benches DESIGN.md §4 calls out. Absolute
// wall-clock numbers measure this reproduction's substrate, not the paper's
// testbed; the reported ndcg/f1/accuracy metrics are the reproduced values.
//
// Run everything:  go test -bench=. -benchmem
package saccs

import (
	"math/rand"
	"sync"
	"testing"

	"saccs/internal/core"
	"saccs/internal/crowd"
	"saccs/internal/datasets"
	"saccs/internal/experiments"
	"saccs/internal/index"
	"saccs/internal/ir"
	"saccs/internal/lexicon"
	"saccs/internal/mat"
	"saccs/internal/metrics"
	"saccs/internal/nn"
	"saccs/internal/pairing"
	"saccs/internal/parse"
	"saccs/internal/search"
	"saccs/internal/sim"
	"saccs/internal/simbaseline"
	"saccs/internal/snorkel"
	"saccs/internal/tagger"
	"saccs/internal/tokenize"
	"saccs/internal/yelp"
)

// --- shared lazy fixtures ---------------------------------------------------

var (
	envOnce sync.Once
	env     *experiments.Table2Env
)

// table2Env builds the expensive Table 2 environment once per bench run.
func table2Env(b *testing.B) *experiments.Table2Env {
	b.Helper()
	envOnce.Do(func() {
		env = experiments.BuildTable2Env(experiments.Fast, nil)
	})
	return env
}

var (
	goldOnce sync.Once
	goldSvc  *core.Service
	goldTru  *crowd.Truth
)

// goldWorld builds a gold-extraction service once (for ablation benches that
// isolate index/ranking behaviour).
func goldWorld(b *testing.B) (*core.Service, *crowd.Truth) {
	b.Helper()
	goldOnce.Do(func() {
		w := yelp.Generate(yelp.FastConfig())
		goldTru = crowd.GroundTruth(w, crowd.DefaultConfig())
		goldSvc = core.NewService(w, nil, nil, core.DefaultConfig())
		goldSvc.BuildEntityTags(core.GoldSource{})
	})
	return goldSvc, goldTru
}

func entityIDsOf(svc *core.Service) []string {
	ids := make([]string, len(svc.World.Entities))
	for i, e := range svc.World.Entities {
		ids[i] = e.ID
	}
	return ids
}

// meanNDCGOverQueries evaluates the service over the Short+Medium+Long sets.
func meanNDCGOverQueries(svc *core.Service, truth *crowd.Truth, topK int) float64 {
	qs := experiments.MakeQueries(svc.CanonicalTags(), 12, 5)
	ids := entityIDsOf(svc)
	var vals []float64
	for _, d := range []experiments.Difficulty{experiments.Short, experiments.Medium, experiments.Long} {
		for _, q := range qs[d] {
			gains := truth.Gains(q.Tags, ids)
			ranked := svc.QueryTags(nil, q.Tags)
			rids := make([]string, len(ranked))
			for i, s := range ranked {
				rids[i] = s.EntityID
			}
			vals = append(vals, metrics.NDCG(gains, rids, topK))
		}
	}
	return metrics.Mean(vals)
}

// --- Table 1 ----------------------------------------------------------------

// BenchmarkTable1Index measures one indexing round: computing Eq. 1 degrees
// of truth for a tag over the whole world (Table 1's structure).
func BenchmarkTable1Index(b *testing.B) {
	svc, _ := goldWorld(b)
	entities := svc.EntityTags()
	measure := sim.NewConceptual()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix := index.New(measure, 0.55)
		ix.AddTag("delicious food", entities)
	}
}

// --- Table 2 ----------------------------------------------------------------

// BenchmarkTable2IR reproduces the IR baseline row (query evaluation only;
// the BM25 index is prebuilt) and reports its mean NDCG.
func BenchmarkTable2IR(b *testing.B) {
	e := table2Env(b)
	var row experiments.Table2Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row = e.EvalIR()
	}
	b.ReportMetric(row.Short, "ndcg-short")
	b.ReportMetric(row.Long, "ndcg-long")
}

// BenchmarkTable2SIM reproduces the SIM-2 baseline row.
func BenchmarkTable2SIM(b *testing.B) {
	e := table2Env(b)
	var row experiments.Table2Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row = e.EvalSIM(2)
	}
	b.ReportMetric(row.Short, "ndcg-short")
	b.ReportMetric(row.Long, "ndcg-long")
}

// BenchmarkTable2SACCS reproduces the SACCS-18 row (index build + query
// evaluation per iteration).
func BenchmarkTable2SACCS(b *testing.B) {
	e := table2Env(b)
	var row experiments.Table2Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row = e.EvalSACCS(18)
	}
	b.ReportMetric(row.Short, "ndcg-short")
	b.ReportMetric(row.Long, "ndcg-long")
}

// --- Table 3 ----------------------------------------------------------------

// BenchmarkTable3Datasets measures generating the four Table 3 corpora.
func BenchmarkTable3Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if got := len(datasets.All(datasets.Fast)); got != 4 {
			b.Fatalf("datasets: %d", got)
		}
	}
}

// --- Table 4 ----------------------------------------------------------------

// table4Slice returns a small S4 slice for per-iteration tagger training.
func table4Slice() (*datasets.Dataset, tagger.Encoder) {
	d := datasets.S4(datasets.Fast)
	if len(d.Train) > 40 {
		d.Train = d.Train[:40]
	}
	enc := experiments.BuildEncoder(experiments.DefaultEncoderOpts(datasets.Fast), d.Domain, nil)
	return d, enc
}

// BenchmarkTable4OpineDB trains and evaluates the baseline tagger
// (BERT + per-token classifier) on a small slice, reporting chunk F1.
func BenchmarkTable4OpineDB(b *testing.B) {
	d, enc := table4Slice()
	cfg := tagger.DefaultConfig()
	cfg.Epochs = 3
	var f1 float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := tagger.NewOpineDB(enc, cfg)
		o.Train(d.Train)
		f1 = o.Evaluate(d.Test).F1
	}
	b.ReportMetric(100*f1, "f1")
}

// BenchmarkTable4Adversarial trains and evaluates the SACCS tagger with
// FGSM (ε=0.2), reporting chunk F1.
func BenchmarkTable4Adversarial(b *testing.B) {
	d, enc := table4Slice()
	cfg := tagger.DefaultConfig()
	cfg.Epochs = 3
	cfg.Adversarial = true
	cfg.Epsilon = 0.2
	var f1 float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := tagger.New(enc, cfg)
		m.Train(d.Train)
		f1 = m.Evaluate(d.Test).F1
	}
	b.ReportMetric(100*f1, "f1")
}

// --- Table 5 ----------------------------------------------------------------

var (
	pairOnce  sync.Once
	pairTest  []datasets.PairingExample
	pairVotes [][]snorkel.Vote
	pairLFs   []snorkel.LF[pairing.Candidate]
)

func pairingFixture(b *testing.B) {
	b.Helper()
	pairOnce.Do(func() {
		sents, test := datasets.PairingBenchmark(datasets.Fast)
		pairTest = test
		var exs []datasets.PairingExample
		for _, s := range sents {
			exs = append(exs, datasets.EnumeratePairs(s)...)
		}
		enc := experiments.BuildEncoder(experiments.DefaultEncoderOpts(datasets.Fast), lexicon.Hotels(), nil)
		heads := pairing.SelectHeads(enc, exs[:120], 5)
		pairLFs = pairing.StandardLFs(enc, parse.DomainLexicon(lexicon.Hotels()), heads, experiments.PaperHeadNames)
		cands := make([]pairing.Candidate, len(test))
		for i, ex := range test {
			cands[i] = pairing.CandidateFromExample(ex)
		}
		pairVotes = snorkel.ApplyAll(pairLFs, cands)
	})
}

// BenchmarkTable5LabelingFunctions measures applying the seven §5.2 labeling
// functions to one candidate.
func BenchmarkTable5LabelingFunctions(b *testing.B) {
	pairingFixture(b)
	cand := pairing.CandidateFromExample(pairTest[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, lf := range pairLFs {
			lf.Apply(cand)
		}
	}
}

// BenchmarkTable5MajorityVote measures the majority-vote label model over
// the test votes and reports its accuracy.
func BenchmarkTable5MajorityVote(b *testing.B) {
	pairingFixture(b)
	mv := snorkel.Majority{}
	var bin metrics.Binary
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bin = metrics.Binary{}
		for j, row := range pairVotes {
			bin.Observe(snorkel.Predict(mv, row), pairTest[j].Label)
		}
	}
	b.ReportMetric(100*bin.Accuracy(), "accuracy")
}

// BenchmarkTable5Generative measures fitting the Dawid–Skene label model
// and reports its accuracy on the test votes.
func BenchmarkTable5Generative(b *testing.B) {
	pairingFixture(b)
	var bin metrics.Binary
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := snorkel.FitGenerative(pairVotes, 25)
		if err != nil {
			b.Fatal(err)
		}
		bin = metrics.Binary{}
		for j, row := range pairVotes {
			bin.Observe(snorkel.Predict(g, row), pairTest[j].Label)
		}
	}
	b.ReportMetric(100*bin.Accuracy(), "accuracy")
}

// --- Figures ----------------------------------------------------------------

// BenchmarkFigure5Attention measures encoding a sentence and reading one
// attention head (the Fig. 5 heatmap's inner loop).
func BenchmarkFigure5Attention(b *testing.B) {
	v := tokenize.NewVocab()
	toks := tokenize.Words("the food is delicious and the staff and decor are amazing")
	v.AddAll(toks)
	opts := experiments.DefaultEncoderOpts(datasets.Fast)
	opts.GeneralSize = 40
	enc := experiments.BuildEncoder(opts, lexicon.Restaurants(), [][]string{toks})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.EncodeTokens(toks)
		if enc.Attention(0, 0) == nil {
			b.Fatal("no attention")
		}
	}
}

// --- Ablations (DESIGN.md §4) -----------------------------------------------

// BenchmarkAblationDegreeOfTruth compares Eq. 1 with and without the
// log(|Re|+1) review-count weighting, reporting both NDCGs.
func BenchmarkAblationDegreeOfTruth(b *testing.B) {
	svc, truth := goldWorld(b)
	var with, without float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svc.ResetIndex()
		svc.IndexTags(svc.CanonicalTags())
		with = meanNDCGOverQueries(svc, truth, 10)

		svc.ResetIndex()
		svc.Index.SetReviewWeighting(false)
		svc.IndexTags(svc.CanonicalTags())
		without = meanNDCGOverQueries(svc, truth, 10)
	}
	svc.ResetIndex()
	b.ReportMetric(with, "ndcg-weighted")
	b.ReportMetric(without, "ndcg-unweighted")
}

// BenchmarkAblationAggregation compares the §3.3 aggregation strategies
// (mean / product / min) on multi-tag queries.
func BenchmarkAblationAggregation(b *testing.B) {
	svc, truth := goldWorld(b)
	scores := map[string]float64{}
	aggs := []struct {
		name string
		agg  search.Aggregation
	}{{"mean", search.MeanAgg}, {"product", search.ProductAgg}, {"min", search.MinAgg}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, a := range aggs {
			svc.ResetIndex()
			svc.Ranker.Agg = a.agg
			svc.IndexTags(svc.CanonicalTags())
			scores[a.name] = meanNDCGOverQueries(svc, truth, 10)
		}
	}
	svc.ResetIndex()
	for _, a := range aggs {
		b.ReportMetric(scores[a.name], "ndcg-"+a.name)
	}
}

// BenchmarkAblationSimilarity compares conceptual similarity against plain
// MiniBERT cosine on the tag pairs the index cares about (§3.1's claim that
// conceptual similarity works better on short phrases).
func BenchmarkAblationSimilarity(b *testing.B) {
	enc := experiments.BuildEncoder(experiments.DefaultEncoderOpts(datasets.Fast), lexicon.Restaurants(), nil)
	conceptual := sim.NewConceptual()
	cosine := &sim.Cosine{Provider: enc}
	// Related pairs should outscore unrelated pairs; measure the margin.
	related := [][2]string{
		{"delicious food", "tasty food"}, {"amazing pizza", "good food"},
		{"nice staff", "friendly staff"}, {"quick service", "fast service"},
	}
	unrelated := [][2]string{
		{"delicious food", "nice staff"}, {"quick service", "cozy decor"},
		{"good view", "fair prices"}, {"fast delivery", "romantic ambiance"},
	}
	margin := func(m sim.Measure) float64 {
		var rel, unrel float64
		for _, p := range related {
			rel += m.Phrase(p[0], p[1])
		}
		for _, p := range unrelated {
			unrel += m.Phrase(p[0], p[1])
		}
		return (rel - unrel) / float64(len(related))
	}
	var cm, em float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cm = margin(conceptual)
		em = margin(cosine)
	}
	b.ReportMetric(cm, "margin-conceptual")
	b.ReportMetric(em, "margin-cosine")
}

// BenchmarkAblationCRF compares the BiLSTM-CRF tagger against the
// per-token softmax baseline on the same encoder (the value of label
// dependencies, §4.1).
func BenchmarkAblationCRF(b *testing.B) {
	d, enc := table4Slice()
	cfg := tagger.DefaultConfig()
	cfg.Epochs = 3
	var crfF1, softmaxF1 float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := tagger.New(enc, cfg)
		m.Train(d.Train)
		crfF1 = m.Evaluate(d.Test).F1
		o := tagger.NewOpineDB(enc, cfg)
		o.Train(d.Train)
		softmaxF1 = o.Evaluate(d.Test).F1
	}
	b.ReportMetric(100*crfF1, "f1-crf")
	b.ReportMetric(100*softmaxF1, "f1-softmax")
}

// BenchmarkAblationAlpha sweeps the adversarial mixing weight α (Eq. 8).
func BenchmarkAblationAlpha(b *testing.B) {
	d, enc := table4Slice()
	alphas := []float64{0.25, 0.5, 0.75}
	f1s := make([]float64, len(alphas))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, alpha := range alphas {
			cfg := tagger.DefaultConfig()
			cfg.Epochs = 3
			cfg.Adversarial = true
			cfg.Epsilon = 0.2
			cfg.Alpha = alpha
			m := tagger.New(enc, cfg)
			m.Train(d.Train)
			f1s[j] = m.Evaluate(d.Test).F1
		}
	}
	b.ReportMetric(100*f1s[0], "f1-alpha25")
	b.ReportMetric(100*f1s[1], "f1-alpha50")
	b.ReportMetric(100*f1s[2], "f1-alpha75")
}

// BenchmarkAblationPairing compares word distance, the two tree directions,
// and a raw attention head on the §6.4 benchmark (accuracy).
func BenchmarkAblationPairing(b *testing.B) {
	pairingFixture(b)
	lex := parse.DomainLexicon(lexicon.Hotels())
	heuristics := []pairing.Heuristic{
		pairing.WordDistance{FromOpinions: true},
		pairing.Tree{Lex: lex},
		pairing.Tree{Lex: lex, FromOpinions: true},
	}
	accs := make([]float64, len(heuristics))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, h := range heuristics {
			lf := pairing.LFFromHeuristic(h)
			var bin metrics.Binary
			for _, ex := range pairTest {
				bin.Observe(lf.Apply(pairing.CandidateFromExample(ex)) == snorkel.Positive, ex.Label)
			}
			accs[j] = bin.Accuracy()
		}
	}
	b.ReportMetric(100*accs[0], "acc-worddist")
	b.ReportMetric(100*accs[1], "acc-tree-as")
	b.ReportMetric(100*accs[2], "acc-tree-op")
}

// --- microbenchmarks on the substrates ---------------------------------------

// BenchmarkCRFViterbi measures Viterbi decoding on a 20-token sentence.
func BenchmarkCRFViterbi(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	crf := nn.NewCRF(rng, "b", int(tokenize.NumLabels))
	emissions := make([]mat.Vec, 20)
	for i := range emissions {
		emissions[i] = mat.NewVec(int(tokenize.NumLabels))
		for j := range emissions[i] {
			emissions[i][j] = rng.NormFloat64()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		crf.Decode(emissions)
	}
}

// BenchmarkBM25Search measures one expanded-query search over the world's
// review corpus.
func BenchmarkBM25Search(b *testing.B) {
	svc, _ := goldWorld(b)
	var docs []ir.Doc
	for _, e := range svc.World.Entities {
		var toks []string
		for _, r := range e.Reviews {
			toks = append(toks, tokenize.Words(r.Text)...)
		}
		docs = append(docs, ir.Doc{ID: e.ID, Tokens: toks})
	}
	engine := ir.NewBM25(docs)
	query := ir.ExpandQuery([]string{"delicious food", "nice staff"})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.Search(query, 10)
	}
}

// BenchmarkSIMEnumeration measures the SIM baseline's full combination sweep
// for one query.
func BenchmarkSIMEnumeration(b *testing.B) {
	svc, truth := goldWorld(b)
	gains := truth.Gains([]string{"quiet atmosphere"}, entityIDsOf(svc))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		simbaseline.Best(svc.World, gains, 10, 2)
	}
}
