package saccs

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"saccs/internal/index"
	"saccs/internal/obs"
)

// cloneForTest builds a second Client sharing the trained extraction
// pipeline (retraining takes seconds; the weights are immutable after New)
// but with its own world, index, ingester, and observer — the shape a
// process restart has, minus the training cost.
func cloneForTest(t *testing.T, c *Client, cfg Config) *Client {
	t.Helper()
	o := obs.NewObserver()
	o.SetTelemetry(obs.NewTelemetry(obs.TelemetryConfig{Metrics: o.Metrics, RuntimeEvery: 10 * time.Second}))
	hist := index.NewHistory()
	hist.SetCap(cfg.HistoryLimit)
	clone := &Client{
		cfg:     cfg,
		domain:  c.domain,
		extr:    c.extr,
		refExtr: c.refExtr,
		measure: c.measure,
		o:       o,
	}
	clone.w.Store(&world{entities: map[string]Entity{}, router: clone.newRouter(), history: hist})
	if cfg.WALDir != "" {
		clone.writeMu.Lock()
		err := clone.openIngestLocked()
		clone.writeMu.Unlock()
		if err != nil {
			t.Fatalf("clone: recovering ingest state: %v", err)
		}
	}
	return clone
}

// TestStreamedIngestReproducesGolden is the facade-level quiesce oracle: the
// golden world streamed review-by-review through AppendReview must produce,
// at quiescence, the exact index a batch IndexEntities build produces — same
// Save bytes, and the five golden query snapshots must reproduce unchanged.
func TestStreamedIngestReproducesGolden(t *testing.T) {
	c := goldenIndexedClient(t)
	var batchIndex bytes.Buffer
	if err := c.SaveIndex(&batchIndex); err != nil {
		t.Fatal(err)
	}
	batchWorld := goldenWorld()

	// Stream the same world into a fresh client sharing the trained
	// extractor. Tags must be registered up front (the streaming path widens
	// vocabulary via Reindex, not per append).
	cfg := DefaultConfig()
	cfg.IngestPublishEvery = 16
	cfg.IngestPublishInterval = -1
	stream := cloneForTest(t, c, cfg)
	if err := stream.IndexEntities(nil, c.CanonicalTags()); err != nil {
		t.Fatal(err)
	}
	for _, e := range batchWorld {
		for _, r := range e.Reviews {
			if err := stream.AppendReview(e.ID, r); err != nil {
				t.Fatalf("append %s: %v", e.ID, err)
			}
		}
	}
	if err := stream.Quiesce(); err != nil {
		t.Fatalf("quiesce: %v", err)
	}
	var streamed bytes.Buffer
	if err := stream.SaveIndex(&streamed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(batchIndex.Bytes(), streamed.Bytes()) {
		t.Fatalf("streamed index differs from batch build (%d vs %d bytes)",
			streamed.Len(), batchIndex.Len())
	}

	// The golden snapshots must reproduce against the streamed world. The
	// streamed client has no entity metadata (City/Cuisine stubs only), so
	// replay the three pure-subjective utterances that don't depend on
	// objective slots.
	for _, tc := range goldenUtterances {
		if tc.name == "delicious-italian-montreal" {
			continue // needs City/Cuisine metadata the stream doesn't carry
		}
		t.Run(tc.name, func(t *testing.T) {
			want := snapshotResponse(tc.utterance, c.Query(tc.utterance))
			got := snapshotResponse(tc.utterance, stream.Query(tc.utterance))
			if fmt.Sprint(want) != fmt.Sprint(got) {
				t.Fatalf("golden drifted over streamed world:\nwant %v\ngot  %v", want, got)
			}
		})
	}
}

// TestAppendReviewWALRecovery proves the facade durability contract on the
// real filesystem: acknowledged reviews survive a client teardown and are
// recovered — index included — by the next New on the same WALDir.
func TestAppendReviewWALRecovery(t *testing.T) {
	base := newClient(t)
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.WALDir = dir
	cfg.IngestPublishEvery = 2
	cfg.IngestPublishInterval = -1

	first := cloneForTest(t, base, cfg)
	if err := first.IndexEntities(nil, base.CanonicalTags()); err != nil {
		t.Fatal(err)
	}
	reviews := []struct{ id, text string }{
		{"vue", "The food is delicious and the staff is friendly."},
		{"vue", "Amazing pizza and a quiet atmosphere."},
		{"hut", "The food was bland and the staff was rude."},
		{"anchovy", "Creative cooking and fresh ingredients."},
		{"anchovy", "Fair prices and generous portions."},
	}
	for _, r := range reviews {
		if err := first.AppendReview(r.id, r.text); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := first.Quiesce(); err != nil {
		t.Fatal(err)
	}
	var before bytes.Buffer
	if err := first.SaveIndex(&before); err != nil {
		t.Fatal(err)
	}
	first.Shutdown()

	// "Restart": a fresh client over the same WALDir recovers the world.
	second := cloneForTest(t, base, cfg)
	var after bytes.Buffer
	if err := second.SaveIndex(&after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatalf("recovered index differs from pre-shutdown index:\nbefore: %s\nafter:  %s",
			before.Bytes(), after.Bytes())
	}
	// Recovered entities are queryable again.
	if _, ok := second.Entity("vue"); !ok {
		t.Fatal("recovered entity not registered")
	}
	got := second.QueryTags([]string{"delicious food"})
	if len(got) == 0 || got[0].ID != "vue" {
		t.Fatalf("recovered ranking wrong: %v", got)
	}
	second.Shutdown()
}

// TestAppendReviewFailureLeavesNoPhantomEntity: a refused append must not
// leave its freshly-registered entity stub behind — no review was ever
// acknowledged, so queries and objective filtering must not see the entity.
func TestAppendReviewFailureLeavesNoPhantomEntity(t *testing.T) {
	base := newClient(t)
	cfg := DefaultConfig()
	cfg.IngestPublishInterval = -1
	c := cloneForTest(t, base, cfg)
	if err := c.IndexEntities(nil, base.CanonicalTags()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.AppendReviewCtx(ctx, "ghost", "The food is delicious."); err == nil {
		t.Fatal("append with a cancelled context was acknowledged")
	}
	if _, ok := c.Entity("ghost"); ok {
		t.Fatal("failed append left a phantom entity visible")
	}
	// The rollback must not wedge the entity: a later successful append
	// registers it normally.
	if err := c.AppendReview("ghost", "The food is delicious."); err != nil {
		t.Fatalf("append after rollback: %v", err)
	}
	if _, ok := c.Entity("ghost"); !ok {
		t.Fatal("entity missing after an acknowledged append")
	}
}

// TestAppendReviewConcurrentQueryRace streams appends while queries run:
// under the race detector this proves the lock-free read path, and every
// response must be internally consistent (scores from one pinned
// generation).
func TestAppendReviewConcurrentQueryRace(t *testing.T) {
	base := newClient(t)
	cfg := DefaultConfig()
	cfg.IngestPublishEvery = 4
	cfg.IngestPublishInterval = -1
	c := cloneForTest(t, base, cfg)
	if err := c.IndexEntities(nil, base.CanonicalTags()); err != nil {
		t.Fatal(err)
	}

	texts := []string{
		"The food is delicious and the staff is friendly.",
		"Really good food. The waiters were very attentive.",
		"Amazing pizza and a quiet atmosphere.",
		"Fair prices and fresh ingredients.",
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := c.QueryTagsCtx(context.Background(), []string{"delicious food", "nice staff"}); err != nil {
					t.Errorf("query during appends: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < 24; i++ {
		id := fmt.Sprintf("r%d", i%5)
		if err := c.AppendReview(id, texts[i%len(texts)]); err != nil {
			t.Errorf("append %d: %v", i, err)
			break
		}
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	if err := c.Quiesce(); err != nil {
		t.Fatal(err)
	}
	// Quiescent sanity: all five streamed entities are registered and the
	// index answers over them.
	for i := 0; i < 5; i++ {
		if _, ok := c.Entity(fmt.Sprintf("r%d", i)); !ok {
			t.Fatalf("streamed entity r%d missing", i)
		}
	}
}
