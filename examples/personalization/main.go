// Personalization: the §7 future-work extensions in action — user profiles
// that adapt ranking to standing preferences, fraudulent-review
// downweighting, and search-automaton typo routing for query tags.
package main

import (
	"fmt"

	"saccs/internal/automaton"
	"saccs/internal/core"
	"saccs/internal/profile"
	"saccs/internal/trust"
	"saccs/internal/yelp"
)

func main() {
	world := yelp.Generate(yelp.FastConfig())
	svc := core.NewService(world, nil, nil, core.DefaultConfig())
	svc.BuildEntityTags(core.GoldSource{})
	svc.IndexTags(svc.CanonicalTags())

	// --- user profiles -------------------------------------------------------
	fmt.Println("== user profiles ==")
	p := profile.New("alice", nil)
	for _, session := range [][]string{
		{"romantic ambiance"}, {"romantic ambiance", "cozy decor"}, {"quiet atmosphere"},
	} {
		p.Observe(session)
	}
	fmt.Printf("alice's standing preferences: %v\n", p.Preferences())

	plain := svc.QueryTags(nil, []string{"good food"})
	personal := p.Personalize(svc.Index, plain, 0.4, 3)
	fmt.Println("query 'good food' — top 3 without / with personalization:")
	for i := 0; i < 3 && i < len(plain); i++ {
		fmt.Printf("  %d. %-18s | %s\n",
			i+1, world.Entity(plain[i].EntityID).Name, world.Entity(personal[i].EntityID).Name)
	}

	// --- fraudulent review detection ----------------------------------------
	fmt.Println("\n== fraudulent review detection ==")
	d := trust.NewDetector()
	reviews := map[string][]string{
		"r1":    {"delicious food", "friendly staff"},
		"r2":    {"tasty food", "nice staff"},
		"r3":    {"good food", "helpful staff"},
		"shill": {"bland food", "rude staff"}, // paid competitor review
	}
	sigs := make([]trust.ReviewSignals, 0, len(reviews))
	for id, tags := range reviews {
		sigs = append(sigs, trust.SignalsFromTags(id, tags))
	}
	for _, rep := range d.Analyze(sigs) {
		fmt.Printf("  %-6s agreement %+.2f  weight %.2f  suspicious=%v\n",
			rep.ReviewID, rep.Agreement, rep.Weight, rep.Suspicious)
	}
	kept := d.FilterTags(reviews)
	fmt.Printf("  tags surviving the filter: %d of 8\n", len(kept))

	// --- search automaton ----------------------------------------------------
	fmt.Println("\n== tag automaton (typo routing) ==")
	trie := automaton.New()
	trie.AddAll(svc.Index.Tags())
	for _, q := range []string{"delicous food", "nice staf", "romantic amb"} {
		if fixed, ok := trie.Closest(q, 2); ok {
			fmt.Printf("  %-16q -> %q\n", q, fixed)
		} else if pref := trie.WithPrefix(q); len(pref) > 0 {
			fmt.Printf("  %-16q -> prefix completion %q\n", q, pref[0])
		} else {
			fmt.Printf("  %-16q -> no route\n", q)
		}
	}
}
