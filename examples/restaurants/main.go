// Restaurants: the paper's running example at scale. Generates the synthetic
// Yelp world (Italian restaurants in Montreal), indexes it with the full
// neural pipeline, prints a Table 1-style snippet of the subjective tag
// index, and walks through multi-tag subjective queries — including the
// adaptive user-tag-history loop of the paper's Fig. 1.
package main

import (
	"fmt"

	"saccs/internal/core"
	"saccs/internal/datasets"
	"saccs/internal/experiments"
	"saccs/internal/pairing"
	"saccs/internal/parse"
	"saccs/internal/tagger"
	"saccs/internal/yelp"
)

func main() {
	fmt.Println("generating the synthetic Yelp world...")
	world := yelp.Generate(yelp.FastConfig())
	fmt.Printf("%d Italian restaurants in Montreal, %d reviews\n\n",
		len(world.Entities), world.ReviewCount())

	fmt.Println("training the extractor...")
	data := datasets.S1(datasets.Fast)
	enc := experiments.BuildEncoder(experiments.DefaultEncoderOpts(datasets.Fast), world.Domain, nil)
	cfg := tagger.DefaultConfig()
	cfg.Adversarial = true
	cfg.Epsilon = 0.2
	tg := tagger.New(enc, cfg)
	tg.Train(data.Train)

	ex := &core.Extractor{
		Tagger: tg,
		Pairer: pairing.Tree{Lex: parse.DomainLexicon(world.Domain), FromOpinions: true},
	}
	svc := core.NewService(world, ex, nil, core.DefaultConfig())
	fmt.Println("extracting subjective tags from all reviews...")
	svc.BuildEntityTags(core.NeuralSource{E: ex})
	svc.IndexTags([]string{"good food", "nice staff", "creative cooking", "fast delivery"})

	// Table 1: a snippet of the inverted index with degrees of truth.
	fmt.Println("\nTable 1-style index snippet:")
	for _, tag := range svc.Index.Tags() {
		entries := svc.Index.Lookup(tag)
		if len(entries) > 3 {
			entries = entries[:3]
		}
		fmt.Printf("  %-18s", tag)
		for _, e := range entries {
			fmt.Printf("  %s (%.2f)", world.Entity(e.EntityID).Name, e.Degree)
		}
		fmt.Println()
	}

	// A known-tag query.
	fmt.Println("\nquery: restaurants with nice staff and good food")
	for i, s := range svc.QueryTags(nil, []string{"nice staff", "good food"})[:5] {
		fmt.Printf("  %d. %-16s score %.2f\n", i+1, world.Entity(s.EntityID).Name, s.Score)
	}

	// An unknown tag triggers the adaptive loop (Fig. 1).
	fmt.Println("\nquery: romantic ambiance (not yet indexed)")
	res := svc.QueryTags(nil, []string{"romantic ambiance"})
	fmt.Printf("  answered in real time from %d similar index tags; history now holds %v\n",
		svc.Index.Len(), svc.History.Pending())
	if len(res) > 0 {
		fmt.Printf("  best guess: %s\n", world.Entity(res[0].EntityID).Name)
	}
	indexed := svc.IndexPending()
	fmt.Printf("  next indexing round added %v; index now has %d tags\n", indexed, svc.Index.Len())
	res = svc.QueryTags(nil, []string{"romantic ambiance"})
	if len(res) > 0 {
		fmt.Printf("  direct answer after indexing: %s (%.2f)\n",
			world.Entity(res[0].EntityID).Name, res[0].Score)
	}
}
