// Quickstart: train a SACCS client, index a handful of restaurants from
// their reviews, and answer a subjective utterance — the minimal end-to-end
// path through the public API.
package main

import (
	"fmt"
	"log"

	"saccs"
)

func main() {
	fmt.Println("training the SACCS pipeline (MiniBERT + adversarial tagger)...")
	client, err := saccs.New(saccs.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	entities := []saccs.Entity{
		{
			ID: "vue", Name: "Vue du Monde", City: "Montreal", Cuisine: "Italian",
			Reviews: []string{
				"The food is delicious and the staff is friendly.",
				"Really good food and a quiet atmosphere.",
				"Amazing pizza. The waiters were very attentive.",
			},
		},
		{
			ID: "hut", Name: "Pizza Hut", City: "Montreal", Cuisine: "Italian",
			Reviews: []string{
				"The food was bland and the staff was rude.",
				"Fast delivery but the plates were dirty.",
			},
		},
		{
			ID: "anchovy", Name: "Anchovy", City: "Montreal", Cuisine: "Italian",
			Reviews: []string{
				"Creative cooking and fresh ingredients.",
				"The menu is varied and the cooking is inventive.",
			},
		},
	}

	fmt.Println("indexing subjective tags from reviews...")
	if err := client.IndexEntities(entities, client.CanonicalTags()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index holds %d subjective tags\n\n", len(client.IndexedTags()))

	utterance := "I want an Italian restaurant in Montreal with delicious food and nice staff"
	fmt.Printf("user: %q\n", utterance)
	resp := client.Query(utterance)
	fmt.Printf("intent: %s  slots: %v\n", resp.Intent, resp.Slots)
	fmt.Printf("subjective tags: %v\n", resp.Tags)
	fmt.Println("results:")
	for i, r := range resp.Results {
		e, _ := client.Entity(r.ID)
		fmt.Printf("  %d. %-14s (degree of truth %.2f)\n", i+1, e.Name, r.Score)
	}
}
