// Tagging: a walk through the §4+§5 extraction pipeline — IOB tagging with
// the BERT→BiLSTM→CRF model (Fig. 2/3), adversarial robustness, the pairing
// heuristics on the paper's hard example (§5.1), and a Fig. 5-style
// attention heatmap.
package main

import (
	"fmt"

	"saccs/internal/datasets"
	"saccs/internal/experiments"
	"saccs/internal/lexicon"
	"saccs/internal/pairing"
	"saccs/internal/parse"
	"saccs/internal/tagger"
	"saccs/internal/tokenize"
)

func main() {
	fmt.Println("=== Figure 2: token tagging and pairing ===")
	experiments.Figure2(experiments.Fast, printWriter{})

	fmt.Println("\n=== §5.1: word distance vs parse tree on the hard example ===")
	tokens := tokenize.Words("The staff is friendly, helpful and professional. The decor is beautiful.")
	lex := parse.DomainLexicon(lexicon.Restaurants())
	tree := parse.Build(lex, tokens)
	fmt.Println("parse:", tree)

	aspects := []tokenize.Span{{Kind: tokenize.AspectSpan, Start: 1, End: 2}, {Kind: tokenize.AspectSpan, Start: 10, End: 11}}
	opinions := []tokenize.Span{
		{Kind: tokenize.OpinionSpan, Start: 3, End: 4}, {Kind: tokenize.OpinionSpan, Start: 5, End: 6},
		{Kind: tokenize.OpinionSpan, Start: 7, End: 8}, {Kind: tokenize.OpinionSpan, Start: 12, End: 13},
	}
	show := func(name string, pairs []pairing.Pair) {
		fmt.Printf("%-14s", name)
		for _, p := range pairs {
			fmt.Printf("  (%s, %s)", p.Aspect.Text(tokens), p.Opinion.Text(tokens))
		}
		fmt.Println()
	}
	show("word distance:", pairing.WordDistance{FromOpinions: true}.Pairs(tokens, aspects, opinions))
	show("parse tree:", pairing.Tree{Lex: lex, FromOpinions: true}.Pairs(tokens, aspects, opinions))

	fmt.Println("\n=== §4.3: adversarial robustness to typos ===")
	d := datasets.S4(datasets.Fast)
	enc := experiments.BuildEncoder(experiments.DefaultEncoderOpts(datasets.Fast), d.Domain, nil)
	clean := tagger.New(enc, tagger.DefaultConfig())
	clean.Train(d.Train)
	advCfg := tagger.DefaultConfig()
	advCfg.Adversarial = true
	advCfg.Epsilon = 0.2
	adv := tagger.New(enc, advCfg)
	adv.Train(d.Train)
	fmt.Printf("clean-trained tagger F1:       %.3f\n", clean.Evaluate(d.Test).F1)
	fmt.Printf("adversarially trained (ε=0.2): %.3f\n", adv.Evaluate(d.Test).F1)

	fmt.Println("\n=== Figure 5: attention-head heatmap ===")
	experiments.Figure5(experiments.Fast, printWriter{})
}

// printWriter adapts stdout for the experiment regenerators.
type printWriter struct{}

func (printWriter) Write(p []byte) (int, error) {
	fmt.Print(string(p))
	return len(p), nil
}
