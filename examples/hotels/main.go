// Hotels: SACCS on a second domain (the Booking.com-style S4 corpus of the
// paper's Table 3). Demonstrates the small-data regime §6.3 highlights —
// adversarial training matters most when labeled data is scarce — and
// cross-domain reuse of the same public API.
package main

import (
	"fmt"
	"log"

	"saccs"
)

func main() {
	fmt.Println("training a hotels-domain SACCS client (small-data regime)...")
	cfg := saccs.DefaultConfig()
	cfg.Domain = "hotels"
	client, err := saccs.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	hotels := []saccs.Entity{
		{
			ID: "lumiere", Name: "Hotel Lumière", City: "Paris",
			Reviews: []string{
				"The rooms are spotless and the beds are heavenly.",
				"Very friendly reception. The breakfast was delicious.",
				"The wifi is fast and the floors are quiet.",
			},
		},
		{
			ID: "wanderer", Name: "The Wanderer", City: "Paris",
			Reviews: []string{
				"The rooms were musty and the mattress was lumpy.",
				"The reception was rude. The wifi is spotty.",
			},
		},
		{
			ID: "bayview", Name: "Bayview Inn", City: "Paris",
			Reviews: []string{
				"Great location and a breathtaking view from the balcony.",
				"The pool is lovely. Rates are very reasonable.",
			},
		},
	}
	if err := client.IndexEntities(hotels, client.CanonicalTags()); err != nil {
		log.Fatal(err)
	}

	for _, q := range []string{
		"somewhere with clean rooms and comfortable beds",
		"a hotel with a good view and fair rates",
	} {
		fmt.Printf("\nuser: %q\n", q)
		resp := client.Query(q)
		fmt.Printf("tags: %v\n", resp.Tags)
		for i, r := range resp.Results {
			e, _ := client.Entity(r.ID)
			fmt.Printf("  %d. %-14s (%.2f)\n", i+1, e.Name, r.Score)
		}
	}

	// The raw tagging view.
	fmt.Println("\ntagging view of a review sentence:")
	tokens, labels := client.TagLabels("the breakfast was delicious and the reception was friendly")
	for i := range tokens {
		fmt.Printf("  %-12s %s\n", tokens[i], labels[i])
	}
}
