// Package postag is a lexicon- and suffix-rule part-of-speech tagger, the
// substrate under the shallow constituency parser (internal/parse) that the
// §5.1 tree-distance pairing heuristic needs. It plays the role NLTK played
// for the paper: good enough to segment clauses and phrases, with the same
// failure mode on typos.
package postag

import "strings"

// Tag is a coarse part-of-speech class.
type Tag uint8

// The coarse tag set.
const (
	Other Tag = iota
	Det
	Noun
	Verb
	Adj
	Adv
	Conj
	Prep
	Pron
	Punct
	Num
)

// String returns the tag's display name.
func (t Tag) String() string {
	switch t {
	case Det:
		return "DET"
	case Noun:
		return "NOUN"
	case Verb:
		return "VERB"
	case Adj:
		return "ADJ"
	case Adv:
		return "ADV"
	case Conj:
		return "CONJ"
	case Prep:
		return "PREP"
	case Pron:
		return "PRON"
	case Punct:
		return "PUNCT"
	case Num:
		return "NUM"
	}
	return "OTHER"
}

var closedClass = map[string]Tag{
	"the": Det, "a": Det, "an": Det, "this": Det, "that": Det, "these": Det,
	"i": Pron, "we": Pron, "they": Pron, "it": Pron, "she": Pron, "he": Pron,
	"my": Det, "our": Det, "her": Det, "his": Det, "its": Det, "their": Det,
	"and": Conj, "but": Conj, "or": Conj, "while": Conj, "yet": Conj,
	"in": Prep, "on": Prep, "at": Prep, "with": Prep, "for": Prep,
	"of": Prep, "to": Prep, "from": Prep, "near": Prep, "by": Prep,
	"is": Verb, "was": Verb, "are": Verb, "were": Verb, "be": Verb,
	"been": Verb, "am": Verb, "have": Verb, "has": Verb, "had": Verb,
	"serve": Verb, "offer": Verb, "came": Verb, "come": Verb, "will": Verb,
	"would": Verb, "expect": Verb, "imagine": Verb, "joined": Verb,
	"booked": Verb, "took": Verb, "opened": Verb, "return": Verb,
	"not": Adv, "very": Adv, "really": Adv, "quite": Adv, "absolutely": Adv,
	"truly": Adv, "incredibly": Adv, "here": Adv, "again": Adv, "too": Adv,
	"definitely": Adv, "late": Adv, "back": Adv, "twice": Adv,
}

// lyAdjectives lists common adjectives the "-ly → adverb" suffix rule would
// otherwise mis-tag.
var lyAdjectives = map[string]bool{
	"friendly": true, "lovely": true, "lively": true, "ugly": true,
	"silly": true, "early": true, "costly": true, "deadly": true,
	"likely": true, "lonely": true, "orderly": true, "homely": true,
}

// Lexicon lets callers add domain knowledge: word → tag overrides applied
// before suffix rules (the parser feeds it aspect nouns and opinion
// adjectives from the active domain lexicon).
type Lexicon map[string]Tag

// TagWord tags a single token. Domain lexicon wins over the closed class,
// which wins over suffix rules, which fall back on Noun — the standard
// unknown-word default.
func TagWord(lex Lexicon, word string) Tag {
	w := strings.ToLower(word)
	if lex != nil {
		if t, ok := lex[w]; ok {
			return t
		}
	}
	if t, ok := closedClass[w]; ok {
		return t
	}
	if isPunct(w) {
		return Punct
	}
	if isNum(w) {
		return Num
	}
	switch {
	case lyAdjectives[w]:
		return Adj
	case strings.HasSuffix(w, "ly"):
		return Adv
	case strings.HasSuffix(w, "ous"), strings.HasSuffix(w, "ful"),
		strings.HasSuffix(w, "ive"), strings.HasSuffix(w, "able"),
		strings.HasSuffix(w, "ible"), strings.HasSuffix(w, "al"),
		strings.HasSuffix(w, "ic"), strings.HasSuffix(w, "less"),
		strings.HasSuffix(w, "ish"), strings.HasSuffix(w, "ant"),
		strings.HasSuffix(w, "ent"):
		return Adj
	case strings.HasSuffix(w, "ing"), strings.HasSuffix(w, "ed"),
		strings.HasSuffix(w, "ize"), strings.HasSuffix(w, "ise"):
		return Verb
	}
	return Noun
}

// TagSeq tags each token in the sentence.
func TagSeq(lex Lexicon, tokens []string) []Tag {
	out := make([]Tag, len(tokens))
	for i, tok := range tokens {
		out[i] = TagWord(lex, tok)
	}
	return out
}

func isPunct(w string) bool {
	if w == "" {
		return false
	}
	for _, r := range w {
		switch r {
		case '.', ',', '!', '?', ';', ':', '(', ')', '\'', '"', '-':
		default:
			return false
		}
	}
	return true
}

func isNum(w string) bool {
	if w == "" {
		return false
	}
	for _, r := range w {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}
