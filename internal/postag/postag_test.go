package postag

import "testing"

func TestClosedClass(t *testing.T) {
	cases := map[string]Tag{
		"the": Det, "and": Conj, "is": Verb, "not": Adv,
		"we": Pron, "in": Prep, "The": Det, // case-insensitive
	}
	for w, want := range cases {
		if got := TagWord(nil, w); got != want {
			t.Errorf("TagWord(%q) = %v, want %v", w, got, want)
		}
	}
}

func TestSuffixRules(t *testing.T) {
	cases := map[string]Tag{
		"quickly":   Adv,
		"delicious": Adj,
		"helpful":   Adj,
		"attentive": Adj,
		"walking":   Verb,
		"walked":    Verb,
		"pizza":     Noun, // fallback
		".":         Punct,
		",":         Punct,
		"42":        Num,
	}
	for w, want := range cases {
		if got := TagWord(nil, w); got != want {
			t.Errorf("TagWord(%q) = %v, want %v", w, got, want)
		}
	}
}

func TestLexiconOverridesEverything(t *testing.T) {
	lex := Lexicon{"delicious": Noun, "the": Noun}
	if got := TagWord(lex, "delicious"); got != Noun {
		t.Fatalf("lexicon override failed: %v", got)
	}
	if got := TagWord(lex, "the"); got != Noun {
		t.Fatalf("lexicon must beat closed class: %v", got)
	}
}

func TestTagSeq(t *testing.T) {
	got := TagSeq(nil, []string{"the", "staff", "is", "friendly", "."})
	want := []Tag{Det, Noun, Verb, Adj, Punct}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TagSeq[%d] = %v, want %v (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestEmptyAndWeird(t *testing.T) {
	if got := TagWord(nil, ""); got != Noun {
		t.Fatalf("empty word: %v", got)
	}
	if got := TagWord(nil, "..."); got != Punct {
		t.Fatalf("ellipsis: %v", got)
	}
	if got := TagWord(nil, "a1b"); got == Num {
		t.Fatal("mixed alphanumeric must not be Num")
	}
}

func TestTagStrings(t *testing.T) {
	for _, tag := range []Tag{Other, Det, Noun, Verb, Adj, Adv, Conj, Prep, Pron, Punct, Num} {
		if tag.String() == "" {
			t.Fatalf("empty name for %d", tag)
		}
	}
}
