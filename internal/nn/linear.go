package nn

import (
	"math/rand"

	"saccs/internal/mat"
)

// Linear is a fully connected layer y = W·x + b.
type Linear struct {
	In, Out int
	Weight  *Param // Out×In
	Bias    *Param // 1×Out

	// pack caches Weightᵀ for the batched GEMM path, keyed on the weight
	// version (see packedTransposed); quant and f32 cache the frozen
	// reduced-precision inference copies the same way (see quant.go). Never
	// copy a Linear by value.
	pack  packSlot
	quant quantSlot[LinearQuant]
	f32   quantSlot[LinearF32]
}

// NewLinear returns a Xavier-initialized linear layer.
func NewLinear(rng *rand.Rand, name string, in, out int) *Linear {
	l := &Linear{
		In:     in,
		Out:    out,
		Weight: NewParam(name+".weight", out, in),
		Bias:   NewParam(name+".bias", 1, out),
	}
	XavierInit(rng, l.Weight)
	return l
}

// Params returns the layer's learnable tensors.
func (l *Linear) Params() []*Param { return []*Param{l.Weight, l.Bias} }

// Forward computes y = W·x + b.
func (l *Linear) Forward(x mat.Vec) mat.Vec {
	y := mat.NewVec(l.Out)
	l.Weight.W.MulVec(y, x)
	y.Add(l.Bias.W.Row(0))
	return y
}

// Backward accumulates gradients given upstream dy and the forward input x,
// and returns dx.
func (l *Linear) Backward(x, dy mat.Vec) mat.Vec {
	l.Weight.G.AddOuter(dy, x)
	l.Bias.G.Row(0).Add(dy)
	dx := mat.NewVec(l.In)
	l.Weight.W.MulVecT(dx, dy)
	return dx
}

// ForwardSeq applies the layer to each vector in xs.
func (l *Linear) ForwardSeq(xs []mat.Vec) []mat.Vec {
	ys := make([]mat.Vec, len(xs))
	for i, x := range xs {
		ys[i] = l.Forward(x)
	}
	return ys
}

// BackwardSeq backpropagates a sequence of upstream gradients.
func (l *Linear) BackwardSeq(xs, dys []mat.Vec) []mat.Vec {
	dxs := make([]mat.Vec, len(xs))
	for i := range xs {
		dxs[i] = l.Backward(xs[i], dys[i])
	}
	return dxs
}
