package nn

import (
	"math/rand"
	"testing"

	"saccs/internal/mat"
)

func randSeq(rng *rand.Rand, n, dim int) []mat.Vec {
	xs := make([]mat.Vec, n)
	for i := range xs {
		v := mat.NewVec(dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		xs[i] = v
	}
	return xs
}

// The inference kernels promise bit-identical results to their training
// twins — not approximately equal: the extraction cache and the differential
// oracles compare decoded label paths exactly, so any reordering of float
// operations would surface as a correctness bug, not a tolerance issue.

func TestLSTMInferSeqMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	l := NewLSTM(rng, "t", 6, 5)
	xs := randSeq(rng, 9, 6)
	want, _ := l.Forward(xs)
	var a Arena
	got := l.InferSeq(xs, &a)
	if len(got) != len(want) {
		t.Fatalf("length %d vs %d", len(got), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("h[%d][%d]: %v != %v", i, j, got[i][j], want[i][j])
			}
		}
	}
}

func TestBiLSTMInferSeqMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	b := NewBiLSTM(rng, "t", 6, 4)
	for _, n := range []int{1, 2, 7} {
		xs := randSeq(rng, n, 6)
		want, _ := b.Forward(xs)
		var a Arena
		got := b.InferSeq(xs, &a)
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("n=%d h[%d][%d]: %v != %v", n, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

func TestLinearInferSeqMatchesForwardSeq(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	l := NewLinear(rng, "t", 5, 7)
	xs := randSeq(rng, 6, 5)
	want := l.ForwardSeq(xs)
	var a Arena
	got := l.InferSeq(xs, &a)
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("y[%d][%d]: %v != %v", i, j, got[i][j], want[i][j])
			}
		}
	}
}

func TestGELUIntoMatchesGELUVec(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	x := randSeq(rng, 1, 16)[0]
	want := GELUVec(x)
	got := mat.NewVec(len(x))
	GELUInto(got, x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("gelu[%d]: %v != %v", i, got[i], want[i])
		}
	}
}

func TestDecodeArenaMatchesDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	c := NewCRF(rng, "t", 5)
	for _, n := range []int{0, 1, 2, 12} {
		emissions := randSeq(rng, n, 5)
		want := c.Decode(emissions)
		var a Arena
		got := c.DecodeArena(emissions, &a)
		if len(got) != len(want) {
			t.Fatalf("n=%d: length %d vs %d", n, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d path[%d]: %d != %d", n, i, got[i], want[i])
			}
		}
	}
}

func TestDecodeArenaRespectsConstraints(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	c := NewCRF(rng, "t", 4)
	// Only transitions i -> (i+1)%4 allowed; only label 0 may start.
	c.SetConstraints(
		func(a, b int) bool { return b == (a+1)%4 },
		func(l int) bool { return l == 0 },
	)
	emissions := randSeq(rng, 8, 4)
	var a Arena
	path := c.DecodeArena(emissions, &a)
	if path[0] != 0 {
		t.Fatalf("invalid start %d", path[0])
	}
	for i := 1; i < len(path); i++ {
		if path[i] != (path[i-1]+1)%4 {
			t.Fatalf("invalid transition %d -> %d", path[i-1], path[i])
		}
	}
}

func TestDecodeArenaZeroAllocsWhenWarm(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	c := NewCRF(rng, "t", 5)
	emissions := randSeq(rng, 20, 5)
	var a Arena
	c.DecodeArena(emissions, &a) // warm the arena
	allocs := testing.AllocsPerRun(100, func() {
		a.Reset()
		c.DecodeArena(emissions, &a)
	})
	if allocs != 0 {
		t.Fatalf("warm DecodeArena allocates %v times per run, want 0", allocs)
	}
}

func TestArenaReuseAndGrowth(t *testing.T) {
	var a Arena
	v1 := a.Vec(8)
	for i := range v1 {
		v1[i] = 1
	}
	// Growth must not corrupt v1: the old backing array stays with it.
	v2 := a.Vec(100_000)
	_ = v2
	for i := range v1 {
		if v1[i] != 1 {
			t.Fatal("growth clobbered an outstanding slice")
		}
	}
	a.Reset()
	v3 := a.Vec(8)
	for i := range v3 {
		if v3[i] != 0 {
			t.Fatal("Vec after Reset not zeroed")
		}
	}
	s := a.Seq(4)
	for _, h := range s {
		if h != nil {
			t.Fatal("Seq headers not nil")
		}
	}
	is := a.Ints(4)
	for _, x := range is {
		if x != 0 {
			t.Fatal("Ints not zeroed")
		}
	}
}
