// Package nn is the neural-network substrate of the reproduction: layers
// with handwritten backpropagation (Linear, Embedding, Dropout, LSTM/BiLSTM),
// a linear-chain CRF with forward–backward gradients and Viterbi/beam
// decoding (Eq. 4–5 of the paper), softmax cross-entropy, SGD/Adam
// optimizers, gradient clipping, and the FGSM perturbation of Eq. 9 used for
// adversarial training.
package nn

import (
	"math"
	"math/rand"
	"sync/atomic"

	"saccs/internal/mat"
)

// Param is one learnable tensor with its gradient accumulator.
type Param struct {
	Name string
	W    *mat.Mat
	G    *mat.Mat

	// ver counts W mutations (optimizer steps, re-inits). Derived caches —
	// the packed GEMM operands of the batched inference path — key on it to
	// invalidate when the weights change. Every code path that writes W must
	// call NoteMutated afterward.
	ver atomic.Uint64
}

// NoteMutated records that W changed. Mutators must call it after the last
// write: the atomic bump publishes the preceding writes, so a reader that
// observes the new version also observes the new weights.
func (p *Param) NoteMutated() { p.ver.Add(1) }

// Version identifies the current weight state for cache keying.
func (p *Param) Version() uint64 { return p.ver.Load() }

// NewParam allocates a named zero parameter of the given shape.
func NewParam(name string, rows, cols int) *Param {
	return &Param{Name: name, W: mat.NewMat(rows, cols), G: mat.NewMat(rows, cols)}
}

// ZeroGrad clears the parameter's gradient.
func (p *Param) ZeroGrad() { p.G.Zero() }

// ZeroGrads clears every gradient in params.
func ZeroGrads(params []*Param) {
	for _, p := range params {
		p.ZeroGrad()
	}
}

// GradNorm returns the global L2 norm over all gradients.
func GradNorm(params []*Param) float64 {
	var sq float64
	for _, p := range params {
		for _, g := range p.G.Data {
			sq += g * g
		}
	}
	return math.Sqrt(sq)
}

// ClipGrads rescales all gradients so their global norm is at most maxNorm.
func ClipGrads(params []*Param, maxNorm float64) {
	n := GradNorm(params)
	if n <= maxNorm || n == 0 {
		return
	}
	s := maxNorm / n
	for _, p := range params {
		p.G.Scale(s)
	}
}

// XavierInit fills p.W with Glorot-uniform values sized by fan-in/fan-out.
func XavierInit(rng *rand.Rand, p *Param) {
	fanIn, fanOut := p.W.Cols, p.W.Rows
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range p.W.Data {
		p.W.Data[i] = (rng.Float64()*2 - 1) * limit
	}
	p.NoteMutated()
}

// NormalInit fills p.W with N(0, std²) values.
func NormalInit(rng *rand.Rand, p *Param, std float64) {
	for i := range p.W.Data {
		p.W.Data[i] = rng.NormFloat64() * std
	}
	p.NoteMutated()
}
