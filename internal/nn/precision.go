package nn

import "fmt"

// Precision selects the inference arithmetic of the decode path. Training is
// always float64; the quantized modes only change which frozen weight copies
// and kernels inference dispatches to.
type Precision int

const (
	// Float64 is the exact reference path: every layer in float64, the
	// arithmetic the golden snapshots and differential oracles are defined
	// against.
	Float64 Precision = iota
	// Mixed is the default serving mode: int8 GEMMs for the big projections
	// (transformer linears, LSTM input projection) with float32 kernels for
	// the drift-sensitive layers (LayerNorm, softmax, GELU, residuals, the
	// LSTM recurrence). CRF transitions and Viterbi stay float64.
	Mixed
	// Int8 additionally quantizes the LSTM recurrent projection and the
	// emission projection to int8 — the smallest-footprint mode, with the
	// loosest (still oracle-bounded) drift.
	Int8
)

// ParsePrecision maps the config strings ("float64", "mixed", "int8"; ""
// defaults to mixed) onto a Precision.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "", "mixed":
		return Mixed, nil
	case "float64":
		return Float64, nil
	case "int8":
		return Int8, nil
	}
	return Float64, fmt.Errorf("nn: unknown precision %q (want float64, mixed, or int8)", s)
}

func (p Precision) String() string {
	switch p {
	case Mixed:
		return "mixed"
	case Int8:
		return "int8"
	default:
		return "float64"
	}
}

// Quantized reports whether the mode dispatches to the reduced-precision
// kernels at all.
func (p Precision) Quantized() bool { return p != Float64 }
