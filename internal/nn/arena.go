package nn

import "saccs/internal/mat"

// Arena is a bump allocator for the inference fast path: vectors, vector
// headers, and int scratch are carved out of a few flat backing arrays that
// one Reset recycles wholesale. A warm arena makes an entire forward pass
// (embeddings → transformer blocks → BiLSTM → projection → Viterbi)
// allocation-free — the per-decode cost the training-path Forward methods
// pay in fresh makes becomes three pointer bumps.
//
// Ownership contract: every slice returned by Vec, Seq, or Ints belongs to
// the arena and is valid only until the next Reset. An Arena serves exactly
// one goroutine at a time; callers that share arenas across goroutines
// (tagger.Model, bert.Model) recycle them through a sync.Pool.
//
// Growth never invalidates outstanding slices: when a backing array is
// exhausted the arena allocates a larger one and leaves the old array to the
// slices already handed out. After one full pass the arena has seen the peak
// demand and subsequent Reset/alloc cycles touch no allocator at all.
type Arena struct {
	floats []float64
	nf     int
	vecs   []mat.Vec
	nv     int
	ints   []int
	ni     int
	mats   []mat.Mat
	nm     int

	// Reduced-precision pools for the quantized inference path: float32
	// activations, offset-binary uint8 activation codes, int32 GEMM
	// accumulators, and Mat32 headers. Same contract as the float64 pools.
	f32s   []float32
	nf32   int
	u8s    []uint8
	nu8    int
	i32s   []int32
	ni32   int
	mat32s []mat.Mat32
	nm32   int
}

// Reset recycles the arena: every previously returned slice is dead and the
// backing arrays are reused from the start.
func (a *Arena) Reset() {
	a.nf, a.nv, a.ni, a.nm = 0, 0, 0, 0
	a.nf32, a.nu8, a.ni32, a.nm32 = 0, 0, 0, 0
}

// Vec returns a zeroed vector of length n backed by the arena.
func (a *Arena) Vec(n int) mat.Vec {
	v := a.rawVec(n)
	for i := range v {
		v[i] = 0
	}
	return v
}

// rawVec returns an uninitialized arena vector. Callers must overwrite every
// element before reading — it is used only by kernels that fully fill their
// output (weight packing for the batched GEMMs).
func (a *Arena) rawVec(n int) mat.Vec {
	if a.nf+n > len(a.floats) {
		a.floats = make([]float64, grow(len(a.floats), n, 1024))
		a.nf = 0
	}
	v := a.floats[a.nf : a.nf+n : a.nf+n]
	a.nf += n
	return v
}

// MatRaw is Mat without the zero fill: the caller must overwrite every
// element before reading. The batched kernels use it for outputs a GEMM or
// row copy fully covers, where zeroing would be pure overhead.
func (a *Arena) MatRaw(rows, cols int) *mat.Mat {
	if a.nm >= len(a.mats) {
		a.mats = make([]mat.Mat, grow(len(a.mats), 1, 16))
		a.nm = 0
	}
	m := &a.mats[a.nm]
	a.nm++
	m.Rows, m.Cols = rows, cols
	m.Data = a.rawVec(rows * cols)
	return m
}

// Seq returns a slice of n nil vector headers backed by the arena — the
// []mat.Vec sequences the kernels thread between stages.
func (a *Arena) Seq(n int) []mat.Vec {
	if a.nv+n > len(a.vecs) {
		a.vecs = make([]mat.Vec, grow(len(a.vecs), n, 64))
		a.nv = 0
	}
	s := a.vecs[a.nv : a.nv+n : a.nv+n]
	a.nv += n
	for i := range s {
		s[i] = nil
	}
	return s
}

// Mat returns a zeroed rows×cols matrix backed by the arena: the data comes
// from the float pool and the header from a pooled header array, so the
// batched-inference kernels stay allocation-free once the arena is warm. The
// same ownership contract as Vec applies — the matrix (header and data) is
// valid only until the next Reset.
func (a *Arena) Mat(rows, cols int) *mat.Mat {
	m := a.MatRaw(rows, cols)
	for i := range m.Data {
		m.Data[i] = 0
	}
	return m
}

// Ints returns a zeroed int slice of length n backed by the arena.
func (a *Arena) Ints(n int) []int {
	if a.ni+n > len(a.ints) {
		a.ints = make([]int, grow(len(a.ints), n, 256))
		a.ni = 0
	}
	s := a.ints[a.ni : a.ni+n : a.ni+n]
	a.ni += n
	for i := range s {
		s[i] = 0
	}
	return s
}

// F32Raw returns an uninitialized float32 slice backed by the arena. Callers
// must overwrite every element before reading — the quantized kernels fully
// fill their outputs.
func (a *Arena) F32Raw(n int) []float32 {
	if a.nf32+n > len(a.f32s) {
		a.f32s = make([]float32, grow(len(a.f32s), n, 1024))
		a.nf32 = 0
	}
	v := a.f32s[a.nf32 : a.nf32+n : a.nf32+n]
	a.nf32 += n
	return v
}

// F32 returns a zeroed float32 slice backed by the arena.
func (a *Arena) F32(n int) []float32 {
	v := a.F32Raw(n)
	for i := range v {
		v[i] = 0
	}
	return v
}

// U8Raw returns an uninitialized uint8 slice backed by the arena — the
// activation-code buffers QuantizeRowU8 fully overwrites (padding included).
func (a *Arena) U8Raw(n int) []uint8 {
	if a.nu8+n > len(a.u8s) {
		a.u8s = make([]uint8, grow(len(a.u8s), n, 4096))
		a.nu8 = 0
	}
	v := a.u8s[a.nu8 : a.nu8+n : a.nu8+n]
	a.nu8 += n
	return v
}

// I32Raw returns an uninitialized int32 slice backed by the arena — the GEMM
// accumulator scratch the int8 kernels fully overwrite.
func (a *Arena) I32Raw(n int) []int32 {
	if a.ni32+n > len(a.i32s) {
		a.i32s = make([]int32, grow(len(a.i32s), n, 1024))
		a.ni32 = 0
	}
	v := a.i32s[a.ni32 : a.ni32+n : a.ni32+n]
	a.ni32 += n
	return v
}

// Mat32Raw is the float32 twin of MatRaw: an uninitialized rows×cols Mat32
// whose header and data both come from arena pools.
func (a *Arena) Mat32Raw(rows, cols int) *mat.Mat32 {
	if a.nm32 >= len(a.mat32s) {
		a.mat32s = make([]mat.Mat32, grow(len(a.mat32s), 1, 16))
		a.nm32 = 0
	}
	m := &a.mat32s[a.nm32]
	a.nm32++
	m.Rows, m.Cols = rows, cols
	m.Data = a.F32Raw(rows * cols)
	return m
}

// Mat32 returns a zeroed rows×cols float32 matrix backed by the arena.
func (a *Arena) Mat32(rows, cols int) *mat.Mat32 {
	m := a.Mat32Raw(rows, cols)
	for i := range m.Data {
		m.Data[i] = 0
	}
	return m
}

// grow picks the next backing-array size: doubled, at least min, and always
// enough for the pending request.
func grow(cur, need, min int) int {
	n := cur * 2
	if n < min {
		n = min
	}
	if n < need {
		n = need
	}
	return n
}
