package nn

import (
	"math"
	"math/rand"
	"sort"

	"saccs/internal/mat"
)

// CRF is a linear-chain conditional random field over L labels (Eq. 4 of the
// paper): learned transition, start and end potentials on top of per-token
// emission scores. Training uses exact forward–backward gradients; decoding
// uses Viterbi (Eq. 5) or beam search.
type CRF struct {
	L     int
	Trans *Param // L×L, Trans[i][j] scores label i followed by label j
	Start *Param // 1×L
	End   *Param // 1×L

	// disallowed[i][j] marks structurally invalid transitions (e.g. I-AS
	// after O in the IOB scheme); they receive a large negative penalty in
	// both training and decoding.
	disallowed  [][]bool
	badStart    []bool
	constrained bool
}

// hardPenalty is added to structurally invalid transitions.
const hardPenalty = -1e4

// NewCRF returns a CRF with small random potentials.
func NewCRF(rng *rand.Rand, name string, labels int) *CRF {
	c := &CRF{
		L:     labels,
		Trans: NewParam(name+".trans", labels, labels),
		Start: NewParam(name+".start", 1, labels),
		End:   NewParam(name+".end", 1, labels),
	}
	NormalInit(rng, c.Trans, 0.01)
	NormalInit(rng, c.Start, 0.01)
	NormalInit(rng, c.End, 0.01)
	return c
}

// Params returns the learnable tensors.
func (c *CRF) Params() []*Param { return []*Param{c.Trans, c.Start, c.End} }

// SetConstraints installs hard structural constraints: validTrans(a, b)
// reports whether label b may follow label a, validStart whether a sequence
// may begin with the label.
func (c *CRF) SetConstraints(validTrans func(a, b int) bool, validStart func(int) bool) {
	c.disallowed = make([][]bool, c.L)
	c.badStart = make([]bool, c.L)
	for i := 0; i < c.L; i++ {
		c.disallowed[i] = make([]bool, c.L)
		for j := 0; j < c.L; j++ {
			c.disallowed[i][j] = !validTrans(i, j)
		}
		c.badStart[i] = !validStart(i)
	}
	c.constrained = true
}

func (c *CRF) trans(i, j int) float64 {
	v := c.Trans.W.At(i, j)
	if c.constrained && c.disallowed[i][j] {
		v += hardPenalty
	}
	return v
}

func (c *CRF) start(j int) float64 {
	v := c.Start.W.At(0, j)
	if c.constrained && c.badStart[j] {
		v += hardPenalty
	}
	return v
}

// NLL returns the negative log-likelihood of gold given emissions, and the
// gradient with respect to the emissions (marginals minus gold one-hots).
// CRF parameter gradients are accumulated internally.
func (c *CRF) NLL(emissions []mat.Vec, gold []int) (float64, []mat.Vec) {
	n := len(emissions)
	if n == 0 {
		return 0, nil
	}
	L := c.L

	// Forward pass (log space).
	alpha := make([]mat.Vec, n)
	alpha[0] = mat.NewVec(L)
	for j := 0; j < L; j++ {
		alpha[0][j] = c.start(j) + emissions[0][j]
	}
	scratch := mat.NewVec(L)
	for t := 1; t < n; t++ {
		alpha[t] = mat.NewVec(L)
		for j := 0; j < L; j++ {
			for i := 0; i < L; i++ {
				scratch[i] = alpha[t-1][i] + c.trans(i, j)
			}
			alpha[t][j] = emissions[t][j] + mat.LogSumExp(scratch)
		}
	}
	final := mat.NewVec(L)
	for j := 0; j < L; j++ {
		final[j] = alpha[n-1][j] + c.End.W.At(0, j)
	}
	logZ := mat.LogSumExp(final)

	// Backward pass.
	beta := make([]mat.Vec, n)
	beta[n-1] = mat.NewVec(L)
	for j := 0; j < L; j++ {
		beta[n-1][j] = c.End.W.At(0, j)
	}
	for t := n - 2; t >= 0; t-- {
		beta[t] = mat.NewVec(L)
		for i := 0; i < L; i++ {
			for j := 0; j < L; j++ {
				scratch[j] = c.trans(i, j) + emissions[t+1][j] + beta[t+1][j]
			}
			beta[t][i] = mat.LogSumExp(scratch)
		}
	}

	// Gold path score.
	score := c.start(gold[0]) + emissions[0][gold[0]]
	for t := 1; t < n; t++ {
		score += c.trans(gold[t-1], gold[t]) + emissions[t][gold[t]]
	}
	score += c.End.W.At(0, gold[n-1])
	loss := logZ - score

	// Emission gradients: unary marginals minus gold indicators.
	dE := make([]mat.Vec, n)
	for t := 0; t < n; t++ {
		dE[t] = mat.NewVec(L)
		for j := 0; j < L; j++ {
			dE[t][j] = math.Exp(alpha[t][j] + beta[t][j] - logZ)
		}
		dE[t][gold[t]] -= 1
	}
	// Start/end gradients.
	for j := 0; j < L; j++ {
		c.Start.G.Data[j] += math.Exp(alpha[0][j]+beta[0][j]-logZ) - b2f(j == gold[0])
		c.End.G.Data[j] += math.Exp(alpha[n-1][j]+c.End.W.At(0, j)-logZ) - b2f(j == gold[n-1])
	}
	// Transition gradients: pairwise marginals minus gold transition counts.
	for t := 0; t < n-1; t++ {
		for i := 0; i < L; i++ {
			for j := 0; j < L; j++ {
				p := math.Exp(alpha[t][i] + c.trans(i, j) + emissions[t+1][j] + beta[t+1][j] - logZ)
				c.Trans.G.Data[i*L+j] += p
			}
		}
		c.Trans.G.Data[gold[t]*L+gold[t+1]] -= 1
	}
	return loss, dE
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Decode returns the Viterbi-optimal label sequence for the emissions.
func (c *CRF) Decode(emissions []mat.Vec) []int {
	n := len(emissions)
	if n == 0 {
		return nil
	}
	L := c.L
	delta := mat.NewVec(L)
	for j := 0; j < L; j++ {
		delta[j] = c.start(j) + emissions[0][j]
	}
	back := make([][]int, n)
	next := mat.NewVec(L)
	for t := 1; t < n; t++ {
		back[t] = make([]int, L)
		for j := 0; j < L; j++ {
			best, bi := math.Inf(-1), 0
			for i := 0; i < L; i++ {
				s := delta[i] + c.trans(i, j)
				if s > best {
					best, bi = s, i
				}
			}
			next[j] = best + emissions[t][j]
			back[t][j] = bi
		}
		copy(delta, next)
	}
	for j := 0; j < L; j++ {
		delta[j] += c.End.W.At(0, j)
	}
	path := make([]int, n)
	path[n-1] = delta.MaxIdx()
	for t := n - 1; t > 0; t-- {
		path[t-1] = back[t][path[t]]
	}
	return path
}

// PathScore returns the unnormalized CRF score of one label path under the
// given emissions: start + per-step emission + transition + end, with the
// same constraint penalties Decode applies. Decode returns the argmax of
// this function; exposing it lets differential checks (oracle/quant-drift)
// measure how much the model actually prefers one path over another.
func (c *CRF) PathScore(emissions []mat.Vec, path []int) float64 {
	n := len(emissions)
	if n == 0 || len(path) != n {
		return math.Inf(-1)
	}
	score := c.start(path[0]) + emissions[0][path[0]]
	for t := 1; t < n; t++ {
		score += c.trans(path[t-1], path[t]) + emissions[t][path[t]]
	}
	return score + c.End.W.At(0, path[n-1])
}

// beamHyp is one partial hypothesis during beam decoding.
type beamHyp struct {
	score float64
	last  int
	path  []int
}

// BeamDecode returns the best label sequence found by beam search with the
// given beam width. With width >= L it matches Viterbi on the max-scoring
// path's score; smaller beams trade exactness for speed (§4.1 "Viterbi along
// with beam search").
func (c *CRF) BeamDecode(emissions []mat.Vec, width int) []int {
	n := len(emissions)
	if n == 0 {
		return nil
	}
	if width < 1 {
		width = 1
	}
	beams := make([]beamHyp, 0, c.L)
	for j := 0; j < c.L; j++ {
		beams = append(beams, beamHyp{score: c.start(j) + emissions[0][j], last: j, path: []int{j}})
	}
	beams = topK(beams, width)
	for t := 1; t < n; t++ {
		cand := make([]beamHyp, 0, len(beams)*c.L)
		for _, h := range beams {
			for j := 0; j < c.L; j++ {
				path := make([]int, len(h.path)+1)
				copy(path, h.path)
				path[len(h.path)] = j
				cand = append(cand, beamHyp{
					score: h.score + c.trans(h.last, j) + emissions[t][j],
					last:  j,
					path:  path,
				})
			}
		}
		beams = topK(cand, width)
	}
	best, bestScore := beams[0], math.Inf(-1)
	for _, h := range beams {
		if s := h.score + c.End.W.At(0, h.last); s > bestScore {
			best, bestScore = h, s
		}
	}
	return best.path
}

func topK(hyps []beamHyp, k int) []beamHyp {
	sort.Slice(hyps, func(i, j int) bool { return hyps[i].score > hyps[j].score })
	if len(hyps) > k {
		hyps = hyps[:k]
	}
	return hyps
}
