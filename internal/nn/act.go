package nn

import (
	"math"
	"math/rand"

	"saccs/internal/mat"
)

// Sigmoid returns 1/(1+e^-x) computed stably.
func Sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// SigmoidVec applies Sigmoid element-wise, returning a new vector.
func SigmoidVec(x mat.Vec) mat.Vec {
	y := mat.NewVec(len(x))
	for i, v := range x {
		y[i] = Sigmoid(v)
	}
	return y
}

// TanhVec applies tanh element-wise, returning a new vector.
func TanhVec(x mat.Vec) mat.Vec {
	y := mat.NewVec(len(x))
	for i, v := range x {
		y[i] = math.Tanh(v)
	}
	return y
}

// ReLUVec applies max(0,x) element-wise, returning a new vector.
func ReLUVec(x mat.Vec) mat.Vec {
	y := mat.NewVec(len(x))
	for i, v := range x {
		if v > 0 {
			y[i] = v
		}
	}
	return y
}

// ReLUBackward returns dy masked by the forward activation y.
func ReLUBackward(y, dy mat.Vec) mat.Vec {
	dx := mat.NewVec(len(y))
	for i := range y {
		if y[i] > 0 {
			dx[i] = dy[i]
		}
	}
	return dx
}

// GELUVec applies the tanh-approximation GELU used by transformer FFNs.
func GELUVec(x mat.Vec) mat.Vec {
	y := mat.NewVec(len(x))
	for i, v := range x {
		y[i] = gelu(v)
	}
	return y
}

func gelu(x float64) float64 {
	const c = 0.7978845608028654 // sqrt(2/pi)
	return 0.5 * x * (1 + math.Tanh(c*(x+0.044715*x*x*x)))
}

// GELUBackward returns dy scaled by dGELU/dx at the forward input x.
func GELUBackward(x, dy mat.Vec) mat.Vec {
	dx := mat.NewVec(len(x))
	const c = 0.7978845608028654
	for i, v := range x {
		inner := c * (v + 0.044715*v*v*v)
		t := math.Tanh(inner)
		dinner := c * (1 + 3*0.044715*v*v)
		dx[i] = dy[i] * (0.5*(1+t) + 0.5*v*(1-t*t)*dinner)
	}
	return dx
}

// Dropout zeroes activations with probability P during training and rescales
// survivors by 1/(1-P) (inverted dropout). In eval mode it is the identity.
type Dropout struct {
	P     float64
	Train bool
	rng   *rand.Rand
}

// NewDropout returns a dropout layer in training mode.
func NewDropout(rng *rand.Rand, p float64) *Dropout {
	return &Dropout{P: p, Train: true, rng: rng}
}

// Forward applies dropout and returns the output plus the mask needed for
// the backward pass (nil in eval mode or when P==0).
func (d *Dropout) Forward(x mat.Vec) (mat.Vec, []bool) {
	if !d.Train || d.P <= 0 {
		return x.Clone(), nil
	}
	y := mat.NewVec(len(x))
	mask := make([]bool, len(x))
	scale := 1 / (1 - d.P)
	for i, v := range x {
		if d.rng.Float64() >= d.P {
			mask[i] = true
			y[i] = v * scale
		}
	}
	return y, mask
}

// Backward routes dy through the forward mask.
func (d *Dropout) Backward(dy mat.Vec, mask []bool) mat.Vec {
	if mask == nil {
		return dy.Clone()
	}
	dx := mat.NewVec(len(dy))
	scale := 1 / (1 - d.P)
	for i, v := range dy {
		if mask[i] {
			dx[i] = v * scale
		}
	}
	return dx
}
