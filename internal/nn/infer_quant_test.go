package nn

import (
	"math"
	"math/rand"
	"testing"

	"saccs/internal/mat"
)

// randLinearInput builds a Linear layer and a batch of input rows with
// activations in a realistic post-LayerNorm range.
func randLinearInput(t *testing.T, rng *rand.Rand, in, out, rows int) (*Linear, *mat.Mat32, [][]float64) {
	t.Helper()
	l := NewLinear(rng, "q", in, out)
	x32 := mat.NewMat32(rows, in)
	x64 := make([][]float64, rows)
	for r := 0; r < rows; r++ {
		x64[r] = make([]float64, in)
		row := x32.Row(r)
		for c := 0; c < in; c++ {
			v := rng.NormFloat64() * 2
			x64[r][c] = float64(float32(v))
			row[c] = float32(v)
		}
	}
	return l, x32, x64
}

// TestLinearQuantTracksFloat64 bounds the int8 and f32 batch kernels against
// the float64 Forward on the same inputs: the f32 tier must agree to float32
// rounding, the int8 tier to a small fraction of the output scale.
func TestLinearQuantTracksFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l, x32, x64 := randLinearInput(t, rng, 48, 24, 5)
	var a Arena
	a.Reset()
	q := l.InferQuantBatch(x32, &a)
	f := l.InferF32Batch(x32, &a)

	var scale, qErr, fErr float64
	for r := range x64 {
		want := l.Forward(mat.Vec(x64[r]))
		for j, w := range want {
			if aw := math.Abs(w); aw > scale {
				scale = aw
			}
			if d := math.Abs(float64(q.Row(r)[j]) - w); d > qErr {
				qErr = d
			}
			if d := math.Abs(float64(f.Row(r)[j]) - w); d > fErr {
				fErr = d
			}
		}
	}
	if fErr > 1e-4*scale {
		t.Fatalf("f32 kernel error %v over scale %v, want float32-rounding-level", fErr, scale)
	}
	if qErr > 0.02*scale {
		t.Fatalf("int8 kernel error %v over scale %v, want <= 2%% of scale", qErr, scale)
	}
}

// TestQuantSlotInvalidatesOnMutation pins the quantize-at-load invalidation
// protocol: the frozen copy is cached while the weights hold still and is
// rebuilt from the new weights after a Param mutation (what an optimizer
// step does via NoteMutated).
func TestQuantSlotInvalidatesOnMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	l := NewLinear(rng, "q", 8, 4)
	q1 := l.Quantize()
	if l.Quantize() != q1 {
		t.Fatal("unchanged weights rebuilt the frozen int8 copy")
	}
	f1 := l.Float32()
	if l.Float32() != f1 {
		t.Fatal("unchanged weights rebuilt the frozen f32 copy")
	}

	l.Weight.W.Data[0] += 1
	l.Weight.NoteMutated()
	q2 := l.Quantize()
	if q2 == q1 {
		t.Fatal("weight mutation did not invalidate the frozen int8 copy")
	}
	f2 := l.Float32()
	if f2 == f1 {
		t.Fatal("weight mutation did not invalidate the frozen f32 copy")
	}
	// The rebuilt copies reflect the mutated weights.
	wantW := float32(l.Weight.W.Data[0])
	if got := f2.W.Row(0)[0]; got != wantW {
		t.Fatalf("rebuilt f32 weight %v, want %v", got, wantW)
	}
}
