package nn

import (
	"math/rand"
	"testing"

	"saccs/internal/mat"
)

// The batched kernels must be bit-identical to their serial twins per
// sequence: the cross-request extraction batcher leans on that identity to
// keep batched and solo decodes indistinguishable. These tests pack
// adversarial length mixes (empty, single-token, long) and compare every
// output element for exact equality.

var batchLenMixes = [][]int{
	{3},
	{1, 1},
	{5, 3},
	{0, 4},
	{4, 0, 1, 7},
	{13, 13, 13, 13},
	{2, 9, 1, 0, 6, 3, 12, 5},
}

// packSeqs lays out sequences one token per row and returns the serial-view
// slices alongside the packed matrix.
func packSeqs(rng *rand.Rand, lens []int, dim int) (*mat.Mat, []int, [][]mat.Vec) {
	total := 0
	starts := make([]int, len(lens))
	for s, n := range lens {
		starts[s] = total
		total += n
	}
	x := mat.NewMat(total, dim)
	seqs := make([][]mat.Vec, len(lens))
	for s, n := range lens {
		seqs[s] = make([]mat.Vec, n)
		for t := 0; t < n; t++ {
			row := x.Row(starts[s] + t)
			copy(row, randVec(rng, dim))
			seqs[s][t] = row
		}
	}
	return x, starts, seqs
}

func requireRowsEqual(t *testing.T, name string, s, seq int, want mat.Vec, got mat.Vec) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: seq %d token %d: length %d want %d", name, s, seq, len(got), len(want))
	}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("%s: seq %d token %d elem %d = %v, want %v (bit-exact)", name, s, seq, i, got[i], w)
		}
	}
}

func TestLinearInferBatchMatchesInferInto(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, dims := range [][2]int{{64, 128}, {64, 5}, {31, 7}, {1, 1}} {
		l := NewLinear(rng, "t", dims[0], dims[1])
		for _, lens := range batchLenMixes {
			x, _, _ := packSeqs(rng, lens, dims[0])
			var a Arena
			y := l.InferBatch(x, &a)
			want := mat.NewVec(dims[1])
			for r := 0; r < x.Rows; r++ {
				l.InferInto(want, x.Row(r))
				requireRowsEqual(t, "Linear.InferBatch", 0, r, want, y.Row(r))
			}
		}
	}
}

func TestLSTMInferBatchMatchesInferSeq(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	l := NewLSTM(rng, "t", 16, 8)
	for _, lens := range batchLenMixes {
		x, starts, seqs := packSeqs(rng, lens, 16)
		var a Arena
		got := l.InferBatch(x, starts, lens, &a)
		for s, seq := range seqs {
			var sa Arena
			want := l.InferSeq(seq, &sa)
			for tt := range want {
				requireRowsEqual(t, "LSTM.InferBatch", s, tt, want[tt], got.Row(starts[s]+tt))
			}
		}
	}
}

func TestBiLSTMInferBatchMatchesInferSeq(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	b := NewBiLSTM(rng, "t", 16, 8)
	for _, lens := range batchLenMixes {
		x, starts, seqs := packSeqs(rng, lens, 16)
		var a Arena
		got := b.InferBatch(x, starts, lens, &a)
		for s, seq := range seqs {
			var sa Arena
			want := b.InferSeq(seq, &sa)
			for tt := range want {
				requireRowsEqual(t, "BiLSTM.InferBatch", s, tt, want[tt], got.Row(starts[s]+tt))
			}
		}
	}
}

func TestArenaMat(t *testing.T) {
	var a Arena
	m := a.Mat(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("Mat(3,4) = %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	for i := range m.Data {
		m.Data[i] = 7
	}
	m2 := a.Mat(2, 2)
	for _, x := range m2.Data {
		if x != 0 {
			t.Fatal("arena Mat not zeroed")
		}
	}
	a.Reset()
	m3 := a.Mat(1, 1)
	for _, x := range m3.Data {
		if x != 0 {
			t.Fatal("arena Mat not zeroed after Reset")
		}
	}
}
