package nn

import (
	"math"

	"saccs/internal/mat"
)

// SoftmaxCE computes softmax cross-entropy between logits and the gold class
// and returns (loss, dLogits). This is the per-token decoder of the OpineDB
// baseline tagger and the output loss of the MLM head.
func SoftmaxCE(logits mat.Vec, gold int) (float64, mat.Vec) {
	p := mat.NewVec(len(logits))
	mat.Softmax(p, logits)
	loss := -math.Log(math.Max(p[gold], 1e-12))
	d := p // reuse: dL/dlogits = p - onehot(gold)
	d[gold] -= 1
	return loss, d
}

// BCELogit computes binary cross-entropy from a single pre-sigmoid logit and
// a {0,1} target, returning (loss, probability, dLogit). It powers the
// discriminative pairing classifier (§5.2).
func BCELogit(logit float64, target float64) (loss, prob, dLogit float64) {
	prob = Sigmoid(logit)
	p := math.Min(math.Max(prob, 1e-12), 1-1e-12)
	loss = -(target*math.Log(p) + (1-target)*math.Log(1-p))
	dLogit = prob - target
	return loss, prob, dLogit
}

// FGSM returns the fast-gradient-sign perturbation δ* = ε·sign(g) of Eq. 9,
// where g is the loss gradient with respect to an input embedding. The
// result lies on the l∞ ball of radius ε (Δ(x) of Eq. 6).
func FGSM(grad mat.Vec, eps float64) mat.Vec {
	d := mat.NewVec(len(grad))
	for i, g := range grad {
		switch {
		case g > 0:
			d[i] = eps
		case g < 0:
			d[i] = -eps
		}
	}
	return d
}

// FGSMSeq applies FGSM to each token's embedding gradient.
func FGSMSeq(grads []mat.Vec, eps float64) []mat.Vec {
	out := make([]mat.Vec, len(grads))
	for i, g := range grads {
		out[i] = FGSM(g, eps)
	}
	return out
}
