package nn

import (
	"math"

	"saccs/internal/mat"
)

// Inference kernels: arena-backed, allocation-free counterparts of the
// training Forward methods. Each kernel executes the exact float operations
// of its training twin in the exact same order, so decoded label paths are
// bit-identical to the Forward-based ones (the differential oracles in
// internal/check and the golden snapshots rely on this). None of them writes
// receiver state — any number of goroutines may run them concurrently, each
// with its own Arena.

// InferSeq runs the LSTM over xs and returns the arena-backed hidden state
// sequence. It computes exactly what Forward computes — same gate order,
// same accumulation order — without the backward cache or the per-timestep
// clone allocations.
func (l *LSTM) InferSeq(xs []mat.Vec, a *Arena) []mat.Vec {
	h := a.Vec(l.Hidden)
	c := a.Vec(l.Hidden)
	z := a.Vec(4 * l.Hidden)
	tmp := a.Vec(4 * l.Hidden)
	hs := a.Seq(len(xs))
	for t, x := range xs {
		l.Wx.W.MulVec(z, x)
		l.Wh.W.MulVec(tmp, h)
		z.Add(tmp)
		z.Add(l.B.W.Row(0))
		hNext := a.Vec(l.Hidden)
		for j := 0; j < l.Hidden; j++ {
			ig := Sigmoid(z[j])
			fg := Sigmoid(z[l.Hidden+j])
			gg := math.Tanh(z[2*l.Hidden+j])
			og := Sigmoid(z[3*l.Hidden+j])
			c[j] = fg*c[j] + ig*gg
			hNext[j] = og * math.Tanh(c[j])
		}
		hs[t] = hNext
		h = hNext
	}
	return hs
}

// InferSeq returns per-token [fwd_t ; bwd_t] concatenations, arena-backed.
// It mirrors Forward's arithmetic without building either direction's
// backward cache.
func (b *BiLSTM) InferSeq(xs []mat.Vec, a *Arena) []mat.Vec {
	n := len(xs)
	fh := b.Fwd.InferSeq(xs, a)
	rev := a.Seq(n)
	for i, x := range xs {
		rev[n-1-i] = x
	}
	bhRev := b.Bwd.InferSeq(rev, a)
	out := a.Seq(n)
	for t := 0; t < n; t++ {
		v := a.Vec(b.OutDim())
		copy(v[:b.Fwd.Hidden], fh[t])
		copy(v[b.Fwd.Hidden:], bhRev[n-1-t])
		out[t] = v
	}
	return out
}

// InferInto computes y = W·x + b into the caller-provided y.
func (l *Linear) InferInto(y, x mat.Vec) {
	l.Weight.W.MulVec(y, x)
	y.Add(l.Bias.W.Row(0))
}

// InferSeq applies the layer to each vector of xs, arena-backed.
func (l *Linear) InferSeq(xs []mat.Vec, a *Arena) []mat.Vec {
	ys := a.Seq(len(xs))
	for i, x := range xs {
		y := a.Vec(l.Out)
		l.InferInto(y, x)
		ys[i] = y
	}
	return ys
}

// GELUInto applies the tanh-approximation GELU element-wise into y.
func GELUInto(y, x mat.Vec) {
	for i, v := range x {
		y[i] = gelu(v)
	}
}

// DecodeArena is Decode with arena-backed scratch: the same Viterbi
// recursion, scores, and tie-breaking, but the delta/backpointer/path
// buffers come from a and the call allocates nothing once the arena is warm.
// The returned path belongs to the arena — copy it out before Reset.
func (c *CRF) DecodeArena(emissions []mat.Vec, a *Arena) []int {
	n := len(emissions)
	if n == 0 {
		return nil
	}
	L := c.L
	delta := a.Vec(L)
	for j := 0; j < L; j++ {
		delta[j] = c.start(j) + emissions[0][j]
	}
	back := a.Ints(n * L)
	next := a.Vec(L)
	for t := 1; t < n; t++ {
		bt := back[t*L : (t+1)*L]
		for j := 0; j < L; j++ {
			best, bi := math.Inf(-1), 0
			for i := 0; i < L; i++ {
				s := delta[i] + c.trans(i, j)
				if s > best {
					best, bi = s, i
				}
			}
			next[j] = best + emissions[t][j]
			bt[j] = bi
		}
		copy(delta, next)
	}
	for j := 0; j < L; j++ {
		delta[j] += c.End.W.At(0, j)
	}
	path := a.Ints(n)
	path[n-1] = delta.MaxIdx()
	for t := n - 1; t > 0; t-- {
		path[t-1] = back[t*L+path[t]]
	}
	return path
}
