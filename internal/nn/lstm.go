package nn

import (
	"math"
	"math/rand"

	"saccs/internal/mat"
)

// LSTM is a single-direction long short-term memory layer [16] run over a
// full sequence with exact backpropagation through time.
type LSTM struct {
	In, Hidden int
	Wx         *Param // 4H×In, gate order (i, f, g, o)
	Wh         *Param // 4H×H
	B          *Param // 1×4H

	// packWx/packWh cache the transposed weights for the batched GEMM path,
	// keyed on the weight versions (see packedTransposed); quantMixed and
	// quantInt8 cache the frozen reduced-precision copies per Precision mode
	// (see quant.go). Never copy an LSTM by value.
	packWx, packWh        packSlot
	quantMixed, quantInt8 quantSlot[LSTMQuant]
}

// NewLSTM returns an LSTM with Xavier weights and forget-gate bias 1.
func NewLSTM(rng *rand.Rand, name string, in, hidden int) *LSTM {
	l := &LSTM{
		In:     in,
		Hidden: hidden,
		Wx:     NewParam(name+".wx", 4*hidden, in),
		Wh:     NewParam(name+".wh", 4*hidden, hidden),
		B:      NewParam(name+".b", 1, 4*hidden),
	}
	XavierInit(rng, l.Wx)
	XavierInit(rng, l.Wh)
	// Forget-gate bias of 1 keeps early gradients alive.
	for j := hidden; j < 2*hidden; j++ {
		l.B.W.Set(0, j, 1)
	}
	return l
}

// Params returns the layer's learnable tensors.
func (l *LSTM) Params() []*Param { return []*Param{l.Wx, l.Wh, l.B} }

// lstmStep caches one timestep's forward intermediates for BPTT.
type lstmStep struct {
	x, hPrev, cPrev mat.Vec
	i, f, g, o      mat.Vec
	c, tc           mat.Vec // cell state and tanh(c)
}

// LSTMCache holds the forward pass state needed by Backward.
type LSTMCache struct {
	steps []lstmStep
}

// Forward runs the LSTM over xs and returns the hidden state sequence plus
// the cache for Backward. Initial hidden and cell states are zero.
func (l *LSTM) Forward(xs []mat.Vec) ([]mat.Vec, *LSTMCache) {
	h := mat.NewVec(l.Hidden)
	c := mat.NewVec(l.Hidden)
	hs := make([]mat.Vec, len(xs))
	cache := &LSTMCache{steps: make([]lstmStep, len(xs))}
	z := mat.NewVec(4 * l.Hidden)
	tmp := mat.NewVec(4 * l.Hidden)
	for t, x := range xs {
		l.Wx.W.MulVec(z, x)
		l.Wh.W.MulVec(tmp, h)
		z.Add(tmp)
		z.Add(l.B.W.Row(0))
		st := lstmStep{
			x: x, hPrev: h.Clone(), cPrev: c.Clone(),
			i: mat.NewVec(l.Hidden), f: mat.NewVec(l.Hidden),
			g: mat.NewVec(l.Hidden), o: mat.NewVec(l.Hidden),
			c: mat.NewVec(l.Hidden), tc: mat.NewVec(l.Hidden),
		}
		for j := 0; j < l.Hidden; j++ {
			st.i[j] = Sigmoid(z[j])
			st.f[j] = Sigmoid(z[l.Hidden+j])
			st.g[j] = math.Tanh(z[2*l.Hidden+j])
			st.o[j] = Sigmoid(z[3*l.Hidden+j])
			st.c[j] = st.f[j]*st.cPrev[j] + st.i[j]*st.g[j]
			st.tc[j] = math.Tanh(st.c[j])
		}
		c = st.c.Clone()
		h = mat.NewVec(l.Hidden)
		for j := 0; j < l.Hidden; j++ {
			h[j] = st.o[j] * st.tc[j]
		}
		hs[t] = h.Clone()
		cache.steps[t] = st
	}
	return hs, cache
}

// Backward backpropagates upstream gradients dhs (one per timestep, aligned
// with the Forward output) through time, accumulating weight gradients and
// returning per-timestep input gradients.
func (l *LSTM) Backward(cache *LSTMCache, dhs []mat.Vec) []mat.Vec {
	n := len(cache.steps)
	dxs := make([]mat.Vec, n)
	dhNext := mat.NewVec(l.Hidden)
	dcNext := mat.NewVec(l.Hidden)
	dz := mat.NewVec(4 * l.Hidden)
	for t := n - 1; t >= 0; t-- {
		st := cache.steps[t]
		dh := dhs[t].Clone()
		dh.Add(dhNext)
		dc := dcNext.Clone()
		for j := 0; j < l.Hidden; j++ {
			do := dh[j] * st.tc[j]
			dtc := dh[j] * st.o[j] * (1 - st.tc[j]*st.tc[j])
			dcj := dc[j] + dtc
			df := dcj * st.cPrev[j]
			di := dcj * st.g[j]
			dg := dcj * st.i[j]
			dcNext[j] = dcj * st.f[j]
			dz[j] = di * st.i[j] * (1 - st.i[j])
			dz[l.Hidden+j] = df * st.f[j] * (1 - st.f[j])
			dz[2*l.Hidden+j] = dg * (1 - st.g[j]*st.g[j])
			dz[3*l.Hidden+j] = do * st.o[j] * (1 - st.o[j])
		}
		l.Wx.G.AddOuter(dz, st.x)
		l.Wh.G.AddOuter(dz, st.hPrev)
		l.B.G.Row(0).Add(dz)
		dx := mat.NewVec(l.In)
		l.Wx.W.MulVecT(dx, dz)
		dxs[t] = dx
		l.Wh.W.MulVecT(dhNext, dz)
	}
	return dxs
}

// BiLSTM runs a forward and a backward LSTM over the sequence and
// concatenates their hidden states per token (§4.1, following [8, 35]).
type BiLSTM struct {
	Fwd, Bwd *LSTM
}

// NewBiLSTM returns a bidirectional LSTM whose output dimension is 2·hidden.
func NewBiLSTM(rng *rand.Rand, name string, in, hidden int) *BiLSTM {
	return &BiLSTM{
		Fwd: NewLSTM(rng, name+".fwd", in, hidden),
		Bwd: NewLSTM(rng, name+".bwd", in, hidden),
	}
}

// Params returns the learnable tensors of both directions.
func (b *BiLSTM) Params() []*Param { return append(b.Fwd.Params(), b.Bwd.Params()...) }

// OutDim returns the concatenated output dimension.
func (b *BiLSTM) OutDim() int { return b.Fwd.Hidden + b.Bwd.Hidden }

// BiLSTMCache holds both directions' forward caches.
type BiLSTMCache struct {
	fwd, bwd *LSTMCache
	n        int
}

// Forward returns per-token [fwd_t ; bwd_t] concatenations.
func (b *BiLSTM) Forward(xs []mat.Vec) ([]mat.Vec, *BiLSTMCache) {
	n := len(xs)
	fh, fc := b.Fwd.Forward(xs)
	rev := make([]mat.Vec, n)
	for i, x := range xs {
		rev[n-1-i] = x
	}
	bhRev, bc := b.Bwd.Forward(rev)
	out := make([]mat.Vec, n)
	for t := 0; t < n; t++ {
		v := mat.NewVec(b.OutDim())
		copy(v[:b.Fwd.Hidden], fh[t])
		copy(v[b.Fwd.Hidden:], bhRev[n-1-t])
		out[t] = v
	}
	return out, &BiLSTMCache{fwd: fc, bwd: bc, n: n}
}

// Backward splits the concatenated upstream gradients and backpropagates
// both directions, returning summed input gradients per token.
func (b *BiLSTM) Backward(cache *BiLSTMCache, dys []mat.Vec) []mat.Vec {
	n := cache.n
	dFwd := make([]mat.Vec, n)
	dBwdRev := make([]mat.Vec, n)
	for t := 0; t < n; t++ {
		dFwd[t] = mat.Vec(dys[t][:b.Fwd.Hidden]).Clone()
		dBwdRev[n-1-t] = mat.Vec(dys[t][b.Fwd.Hidden:]).Clone()
	}
	dxF := b.Fwd.Backward(cache.fwd, dFwd)
	dxBRev := b.Bwd.Backward(cache.bwd, dBwdRev)
	dxs := make([]mat.Vec, n)
	for t := 0; t < n; t++ {
		dx := dxF[t].Clone()
		dx.Add(dxBRev[n-1-t])
		dxs[t] = dx
	}
	return dxs
}
