package nn

import (
	"math"
	"sync/atomic"

	"saccs/internal/mat"
)

// Batched inference kernels: the cross-request extraction batcher packs
// several token sequences into one matrix (one row per token, sequences
// concatenated, addressed by starts/lens) and runs each layer as a GEMM over
// all rows at once instead of a MulVec per token. The payoff is kernel
// efficiency — mat.MatMulInto's blocked/vectorized path — not different
// arithmetic: every kernel here performs its serial twin's float operations
// in the same per-element order, so batched results are bit-identical to
// InferSeq/InferInto per sequence. The differential oracle
// oracle/extract-batch-live and the tagger batch tests pin this.
//
// Weights are packed (transposed Out×In → In×Out) so the GEMM can stream B
// rows in k-major order. Packing copies values without reordering any sum —
// exactness is untouched — and the packed copy is cached on the layer, keyed
// by the parameter's mutation version (Param.NoteMutated): a retrain bumps
// the version after its last weight write, so a stale or torn pack can never
// outlive the training step that obsoleted it. Decodes that overlap a
// retrain may pack mid-step weights, the same semantics the serial path has
// when reading mutating weights — their results are discarded by the
// generation check upstream (internal/extcache keying).

// packSlot caches one transposed weight matrix against a Param version.
type packSlot struct {
	p atomic.Pointer[packedWeight]
}

type packedWeight struct {
	ver uint64
	m   *mat.Mat
}

// packedTransposed returns pᵀ (In×Out), rebuilding the cached copy when the
// parameter's version moved. The version is read before the copy: if a
// concurrent mutation tears the copy, the mutator's trailing NoteMutated
// leaves the cache keyed to a version that no longer matches, so the next
// call rebuilds from settled weights.
func packedTransposed(slot *packSlot, p *Param) *mat.Mat {
	v := p.Version()
	if c := slot.p.Load(); c != nil && c.ver == v {
		return c.m
	}
	w := p.W
	t := mat.NewMat(w.Cols, w.Rows)
	const tb = 16 // block the transpose so reads and writes both stay cache-local
	for ib := 0; ib < w.Rows; ib += tb {
		ie := min(ib+tb, w.Rows)
		for jb := 0; jb < w.Cols; jb += tb {
			je := min(jb+tb, w.Cols)
			for i := ib; i < ie; i++ {
				for j := jb; j < je; j++ {
					t.Data[j*w.Rows+i] = w.Data[i*w.Cols+j]
				}
			}
		}
	}
	slot.p.Store(&packedWeight{ver: v, m: t})
	return t
}

// InferBatchInto computes y = x·Wᵀ + b row-wise into y (rows×Out), where x
// is rows×In. Row i of y is bit-identical to InferInto(y_i, x_i): the GEMM
// accumulates each output element's products in ascending k order, exactly
// like MulVec, and the bias adds after the full dot, exactly like InferInto.
func (l *Linear) InferBatchInto(y, x *mat.Mat) {
	wp := packedTransposed(&l.pack, l.Weight)
	mat.MatMulInto(y, x, wp)
	mat.AddRows(y, l.Bias.W.Row(0))
}

// InferBatch applies the layer to every row of x, arena-backed.
func (l *Linear) InferBatch(x *mat.Mat, a *Arena) *mat.Mat {
	y := a.MatRaw(x.Rows, l.Out)
	l.InferBatchInto(y, x)
	return y
}

// InferBatch runs the LSTM over several packed sequences at once: xs holds
// one token per row with sequence s occupying rows [starts[s],
// starts[s]+lens[s]), and the returned matrix holds the hidden states in the
// same layout. The input projection Wx·x of every token in the batch is one
// GEMM; each time step then gathers the live sequences' hidden states and
// runs the recurrent projection Wh·h as one small GEMM. Per sequence the
// recursion — gate order, (Wx·x + Wh·h) + b association, c/h updates — is
// InferSeq's exactly, so row starts[s]+t is bit-identical to InferSeq's
// hs[t] for that sequence alone.
func (l *LSTM) InferBatch(xs *mat.Mat, starts, lens []int, a *Arena) *mat.Mat {
	H := l.Hidden
	out := a.MatRaw(xs.Rows, H)
	nSeq := len(lens)
	maxLen := 0
	for _, n := range lens {
		if n > maxLen {
			maxLen = n
		}
	}
	if maxLen == 0 {
		return out
	}

	wxp := packedTransposed(&l.packWx, l.Wx) // In×4H
	whp := packedTransposed(&l.packWh, l.Wh) // H×4H
	zx := a.MatRaw(xs.Rows, 4*H)
	mat.MatMulInto(zx, xs, wxp)
	bias := l.B.W.Row(0)

	h := a.Mat(nSeq, H) // current hidden state per sequence (zero-initialized)
	c := a.Mat(nSeq, H) // current cell state per sequence
	hbuf := a.MatRaw(nSeq, H)
	zh := a.MatRaw(nSeq, 4*H)
	act := a.Ints(nSeq)

	for t := 0; t < maxLen; t++ {
		nAct := 0
		for s := 0; s < nSeq; s++ {
			if lens[s] > t {
				act[nAct] = s
				nAct++
			}
		}
		// Gather live hidden states and run the recurrent GEMM over them.
		// Shrinking Rows makes the kernels see only the packed prefix; the
		// backing data stays full-sized for the next step.
		hbuf.Rows, zh.Rows = nAct, nAct
		for p := 0; p < nAct; p++ {
			copy(hbuf.Row(p), h.Row(act[p]))
		}
		mat.MatMulInto(zh, hbuf, whp)
		for p := 0; p < nAct; p++ {
			s := act[p]
			zxr := zx.Row(starts[s] + t)
			zhr := zh.Row(p)
			cr := c.Row(s)
			hr := h.Row(s)
			for j := 0; j < H; j++ {
				ig := Sigmoid((zxr[j] + zhr[j]) + bias[j])
				fg := Sigmoid((zxr[H+j] + zhr[H+j]) + bias[H+j])
				gg := math.Tanh((zxr[2*H+j] + zhr[2*H+j]) + bias[2*H+j])
				og := Sigmoid((zxr[3*H+j] + zhr[3*H+j]) + bias[3*H+j])
				cr[j] = fg*cr[j] + ig*gg
				hr[j] = og * math.Tanh(cr[j])
			}
			copy(out.Row(starts[s]+t), hr)
		}
	}
	return out
}

// InferBatch runs the bidirectional LSTM over packed sequences (see
// LSTM.InferBatch for the layout) and returns per-token [fwd_t ; bwd_t]
// concatenations, row starts[s]+t matching InferSeq's out[t] bit for bit.
func (b *BiLSTM) InferBatch(xs *mat.Mat, starts, lens []int, a *Arena) *mat.Mat {
	fh := b.Fwd.InferBatch(xs, starts, lens, a)
	rev := a.MatRaw(xs.Rows, xs.Cols)
	for s, n := range lens {
		base := starts[s]
		for i := 0; i < n; i++ {
			copy(rev.Row(base+n-1-i), xs.Row(base+i))
		}
	}
	bhRev := b.Bwd.InferBatch(rev, starts, lens, a)
	H := b.Fwd.Hidden
	out := a.MatRaw(xs.Rows, b.OutDim())
	for s, n := range lens {
		base := starts[s]
		for t := 0; t < n; t++ {
			v := out.Row(base + t)
			copy(v[:H], fh.Row(base+t))
			copy(v[H:], bhRev.Row(base+n-1-t))
		}
	}
	return out
}
