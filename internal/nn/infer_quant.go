package nn

import (
	"saccs/internal/mat"
)

// Quantized batched inference: the float32/int8 twins of the kernels in
// infer_batch.go. The layout contract is identical — sequences packed one
// token per row, addressed by starts/lens — but activations flow as float32
// and the big projections run on the int8 GEMM. Determinism contract: every
// kernel is row-independent (or, in the LSTM, depends only on its own
// sequence's rows), transcendentals go through the pure-float32 polynomial
// kernels in mat (fastmath32.go) whose arithmetic is IEEE-exact in Go, and
// the mat float32/int8 kernels are bit-identical across dispatch paths — so
// a quantized decode produces the same bits solo or batched, on any machine.
// The solo quantized path IS the batched path with one sequence
// (tagger.predictQuant), which makes that identity structural.

// Sigmoid32 is the fast float32 logistic (mat.Sigmoid32).
func Sigmoid32(x float32) float32 { return mat.Sigmoid32(x) }

// Tanh32 is the fast float32 tanh (mat.Tanh32).
func Tanh32(x float32) float32 { return mat.Tanh32(x) }

// GELU32 applies the tanh-approximation GELU entirely in float32, using the
// same constant as the float64 gelu and the fast Tanh32.
func GELU32(x float32) float32 {
	const c = 0.7978845608028654 // sqrt(2/pi)
	return 0.5 * x * (1 + mat.Tanh32(c*(x+0.044715*x*x*x)))
}

// GELUInto32 applies GELU32 element-wise into y.
func GELUInto32(y, x mat.Vec32) {
	for i, v := range x {
		y[i] = GELU32(v)
	}
}

// quantizeActRows quantizes every row of x to offset-binary uint8 codes with
// per-row scales, arena-backed: the dynamic activation-quantization step in
// front of each int8 GEMM.
func quantizeActRows(x *mat.Mat32, a *Arena) (aq []uint8, scales []float32, kp int) {
	kp = mat.PadK(x.Cols)
	aq = a.U8Raw(x.Rows * kp)
	scales = a.F32Raw(x.Rows)
	for i := 0; i < x.Rows; i++ {
		scales[i] = mat.QuantizeRowU8(aq[i*kp:(i+1)*kp], x.Row(i))
	}
	return aq, scales, kp
}

// InferQuantBatch applies the layer to every row of x on the int8 kernel:
// dynamic per-row activation quantization, one int8 GEMM with the bias fused
// into dequantization. Arena-backed and allocation-free once warm.
func (l *Linear) InferQuantBatch(x *mat.Mat32, a *Arena) *mat.Mat32 {
	q := l.Quantize()
	aq, scales, _ := quantizeActRows(x, a)
	y := a.Mat32Raw(x.Rows, l.Out)
	acc := a.I32Raw(l.Out)
	mat.MulABtInt8Into(y, aq, scales, q.W, q.Bias, acc)
	return y
}

// InferF32Batch applies the layer to every row of x in float32 — the
// drift-sensitive projection path of the mixed mode.
func (l *Linear) InferF32Batch(x *mat.Mat32, a *Arena) *mat.Mat32 {
	f := l.Float32()
	y := a.Mat32Raw(x.Rows, l.Out)
	mat.MulABtF32Into(y, x, f.W)
	mat.AddRows32(y, f.Bias)
	return y
}

// InferQuantBatch runs the LSTM over packed sequences in reduced precision,
// mirroring InferBatch's structure exactly: the input projection of every
// token is one int8 GEMM (bias fused), then each time step gathers the live
// sequences' float32 hidden states and runs the recurrent projection — as a
// float32 GEMM against the pre-transposed WhT in Mixed mode, or as a second
// dynamic int8 GEMM in Int8 mode. Gate math is float32 with float64
// transcendentals (Sigmoid32/Tanh32), per-element order identical to the
// float64 path's.
func (l *LSTM) InferQuantBatch(xs *mat.Mat32, starts, lens []int, a *Arena, p Precision) *mat.Mat32 {
	H := l.Hidden
	out := a.Mat32Raw(xs.Rows, H)
	nSeq := len(lens)
	maxLen := 0
	for _, n := range lens {
		if n > maxLen {
			maxLen = n
		}
	}
	if maxLen == 0 {
		return out
	}

	q := l.Quantize(p)
	zx := a.Mat32Raw(xs.Rows, 4*H)
	{
		aq, scales, _ := quantizeActRows(xs, a)
		acc := a.I32Raw(4 * H)
		mat.MulABtInt8Into(zx, aq, scales, q.Wx, q.Bias, acc) // bias fused here
	}

	h := a.Mat32(nSeq, H)
	c := a.Mat32(nSeq, H)
	hbuf := a.Mat32Raw(nSeq, H)
	zh := a.Mat32Raw(nSeq, 4*H)
	act := a.Ints(nSeq)
	var hq []uint8
	var hqScales []float32
	var hkp int
	var acc4 []int32
	if q.Wh8 != nil {
		hkp = mat.PadK(H)
		hq = a.U8Raw(nSeq * hkp)
		hqScales = a.F32Raw(nSeq)
		acc4 = a.I32Raw(4 * H)
	}

	for t := 0; t < maxLen; t++ {
		nAct := 0
		for s := 0; s < nSeq; s++ {
			if lens[s] > t {
				act[nAct] = s
				nAct++
			}
		}
		hbuf.Rows, zh.Rows = nAct, nAct
		for p := 0; p < nAct; p++ {
			copy(hbuf.Row(p), h.Row(act[p]))
		}
		if q.Wh8 != nil {
			for p := 0; p < nAct; p++ {
				hqScales[p] = mat.QuantizeRowU8(hq[p*hkp:(p+1)*hkp], hbuf.Row(p))
			}
			mat.MulABtInt8Into(zh, hq[:nAct*hkp], hqScales[:nAct], q.Wh8, nil, acc4)
		} else {
			mat.MatMulF32Into(zh, hbuf, q.WhT)
		}
		for p := 0; p < nAct; p++ {
			s := act[p]
			zxr := zx.Row(starts[s] + t)
			zhr := zh.Row(p)
			cr := c.Row(s)
			hr := h.Row(s)
			for j := 0; j < H; j++ {
				ig := Sigmoid32(zxr[j] + zhr[j])
				fg := Sigmoid32(zxr[H+j] + zhr[H+j])
				gg := Tanh32(zxr[2*H+j] + zhr[2*H+j])
				og := Sigmoid32(zxr[3*H+j] + zhr[3*H+j])
				cr[j] = fg*cr[j] + ig*gg
				hr[j] = og * Tanh32(cr[j])
			}
			copy(out.Row(starts[s]+t), hr)
		}
	}
	return out
}

// InferQuantBatch runs the bidirectional LSTM over packed sequences in
// reduced precision and returns per-token [fwd_t ; bwd_t] concatenations —
// the float32 twin of BiLSTM.InferBatch.
func (b *BiLSTM) InferQuantBatch(xs *mat.Mat32, starts, lens []int, a *Arena, p Precision) *mat.Mat32 {
	fh := b.Fwd.InferQuantBatch(xs, starts, lens, a, p)
	rev := a.Mat32Raw(xs.Rows, xs.Cols)
	for s, n := range lens {
		base := starts[s]
		for i := 0; i < n; i++ {
			copy(rev.Row(base+n-1-i), xs.Row(base+i))
		}
	}
	bhRev := b.Bwd.InferQuantBatch(rev, starts, lens, a, p)
	H := b.Fwd.Hidden
	out := a.Mat32Raw(xs.Rows, b.OutDim())
	for s, n := range lens {
		base := starts[s]
		for t := 0; t < n; t++ {
			v := out.Row(base + t)
			copy(v[:H], fh.Row(base+t))
			copy(v[H:], bhRev.Row(base+n-1-t))
		}
	}
	return out
}
