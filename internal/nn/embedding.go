package nn

import (
	"math/rand"

	"saccs/internal/mat"
)

// Embedding is a lookup table mapping token ids to dense vectors.
type Embedding struct {
	VocabSize, Dim int
	Table          *Param // VocabSize×Dim
}

// NewEmbedding returns an embedding table initialized with N(0, 0.1²).
func NewEmbedding(rng *rand.Rand, name string, vocabSize, dim int) *Embedding {
	e := &Embedding{VocabSize: vocabSize, Dim: dim, Table: NewParam(name+".table", vocabSize, dim)}
	NormalInit(rng, e.Table, 0.1)
	return e
}

// Params returns the layer's learnable tensors.
func (e *Embedding) Params() []*Param { return []*Param{e.Table} }

// Lookup returns a copy of the embedding row for id (so callers may perturb
// it — adversarial training adds FGSM noise to exactly these vectors).
func (e *Embedding) Lookup(id int) mat.Vec {
	return e.Table.W.Row(clampID(id, e.VocabSize)).Clone()
}

// LookupInto copies the embedding row for id into dst without allocating —
// the inference-path counterpart of Lookup.
func (e *Embedding) LookupInto(dst mat.Vec, id int) {
	copy(dst, e.Table.W.Row(clampID(id, e.VocabSize)))
}

// LookupSeq embeds a token id sequence.
func (e *Embedding) LookupSeq(ids []int) []mat.Vec {
	out := make([]mat.Vec, len(ids))
	for i, id := range ids {
		out[i] = e.Lookup(id)
	}
	return out
}

// Accumulate adds dvec into the gradient row for id.
func (e *Embedding) Accumulate(id int, dvec mat.Vec) {
	e.Table.G.Row(clampID(id, e.VocabSize)).Add(dvec)
}

// AccumulateSeq adds per-token gradients for an embedded sequence.
func (e *Embedding) AccumulateSeq(ids []int, dvecs []mat.Vec) {
	for i, id := range ids {
		e.Accumulate(id, dvecs[i])
	}
}

func clampID(id, n int) int {
	if id < 0 || id >= n {
		return 0
	}
	return id
}
