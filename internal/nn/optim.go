package nn

import (
	"math"

	"saccs/internal/mat"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update and clears nothing; callers ZeroGrads after.
	Step(params []*Param)
}

// SGD is plain stochastic gradient descent with optional weight decay.
type SGD struct {
	LR          float64
	WeightDecay float64
}

// Step applies w -= lr * (g + wd*w) to every parameter.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		for i, g := range p.G.Data {
			if s.WeightDecay != 0 {
				g += s.WeightDecay * p.W.Data[i]
			}
			p.W.Data[i] -= s.LR * g
		}
		p.NoteMutated()
	}
}

// Adam implements the Adam optimizer with bias correction.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	t                     int
	m, v                  map[*Param]*mat.Mat
}

// NewAdam returns an Adam optimizer with the standard defaults
// (β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*Param]*mat.Mat), v: make(map[*Param]*mat.Mat),
	}
}

// Step applies one Adam update to every parameter.
func (a *Adam) Step(params []*Param) {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m, ok := a.m[p]
		if !ok {
			m = mat.NewMat(p.W.Rows, p.W.Cols)
			a.m[p] = m
		}
		v, ok := a.v[p]
		if !ok {
			v = mat.NewMat(p.W.Rows, p.W.Cols)
			a.v[p] = v
		}
		for i, g := range p.G.Data {
			m.Data[i] = a.Beta1*m.Data[i] + (1-a.Beta1)*g
			v.Data[i] = a.Beta2*v.Data[i] + (1-a.Beta2)*g*g
			mhat := m.Data[i] / bc1
			vhat := v.Data[i] / bc2
			p.W.Data[i] -= a.LR * mhat / (math.Sqrt(vhat) + a.Eps)
		}
		p.NoteMutated()
	}
}
