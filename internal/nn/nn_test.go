package nn

import (
	"math"
	"math/rand"
	"testing"

	"saccs/internal/mat"
)

// numGrad computes a central finite difference of f at p.W.Data[i].
func numGrad(f func() float64, x *float64) float64 {
	const h = 1e-5
	old := *x
	*x = old + h
	up := f()
	*x = old - h
	down := f()
	*x = old
	return (up - down) / (2 * h)
}

func relErr(a, b float64) float64 {
	return math.Abs(a-b) / math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func randVec(rng *rand.Rand, n int) mat.Vec {
	v := mat.NewVec(n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestLinearGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(rng, "l", 4, 3)
	x := randVec(rng, 4)
	target := randVec(rng, 3)

	// loss = 0.5*||Wx+b - target||²
	loss := func() float64 {
		y := l.Forward(x)
		y.Sub(target)
		return 0.5 * y.Dot(y)
	}
	y := l.Forward(x)
	dy := y.Clone()
	dy.Sub(target)
	ZeroGrads(l.Params())
	dx := l.Backward(x, dy)

	for _, p := range l.Params() {
		for i := range p.W.Data {
			want := numGrad(loss, &p.W.Data[i])
			if relErr(p.G.Data[i], want) > 1e-6 {
				t.Fatalf("%s grad[%d]: got %v want %v", p.Name, i, p.G.Data[i], want)
			}
		}
	}
	for i := range x {
		want := numGrad(loss, &x[i])
		if relErr(dx[i], want) > 1e-6 {
			t.Fatalf("dx[%d]: got %v want %v", i, dx[i], want)
		}
	}
}

func TestEmbeddingLookupCloned(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	e := NewEmbedding(rng, "emb", 10, 4)
	v := e.Lookup(3)
	v[0] = 999
	if e.Table.W.At(3, 0) == 999 {
		t.Fatal("Lookup must return a copy (adversarial noise is added in place)")
	}
	if got := e.Lookup(-1); len(got) != 4 {
		t.Fatal("out-of-range id must fall back to row 0")
	}
	ZeroGrads(e.Params())
	e.Accumulate(3, mat.Vec{1, 2, 3, 4})
	if e.Table.G.At(3, 1) != 2 {
		t.Fatal("Accumulate failed")
	}
}

func TestLSTMGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := NewLSTM(rng, "lstm", 3, 2)
	xs := []mat.Vec{randVec(rng, 3), randVec(rng, 3), randVec(rng, 3)}
	targets := []mat.Vec{randVec(rng, 2), randVec(rng, 2), randVec(rng, 2)}

	loss := func() float64 {
		hs, _ := l.Forward(xs)
		var s float64
		for t2, h := range hs {
			d := h.Clone()
			d.Sub(targets[t2])
			s += 0.5 * d.Dot(d)
		}
		return s
	}
	hs, cache := l.Forward(xs)
	dhs := make([]mat.Vec, len(hs))
	for i, h := range hs {
		d := h.Clone()
		d.Sub(targets[i])
		dhs[i] = d
	}
	ZeroGrads(l.Params())
	dxs := l.Backward(cache, dhs)

	for _, p := range l.Params() {
		for i := range p.W.Data {
			want := numGrad(loss, &p.W.Data[i])
			if relErr(p.G.Data[i], want) > 1e-5 {
				t.Fatalf("%s grad[%d]: got %v want %v", p.Name, i, p.G.Data[i], want)
			}
		}
	}
	for ti, x := range xs {
		for i := range x {
			want := numGrad(loss, &x[i])
			if relErr(dxs[ti][i], want) > 1e-5 {
				t.Fatalf("dx[%d][%d]: got %v want %v", ti, i, dxs[ti][i], want)
			}
		}
	}
}

func TestBiLSTMGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	b := NewBiLSTM(rng, "bi", 3, 2)
	xs := []mat.Vec{randVec(rng, 3), randVec(rng, 3)}
	targets := []mat.Vec{randVec(rng, 4), randVec(rng, 4)}

	loss := func() float64 {
		ys, _ := b.Forward(xs)
		var s float64
		for t2, y := range ys {
			d := y.Clone()
			d.Sub(targets[t2])
			s += 0.5 * d.Dot(d)
		}
		return s
	}
	ys, cache := b.Forward(xs)
	dys := make([]mat.Vec, len(ys))
	for i, y := range ys {
		d := y.Clone()
		d.Sub(targets[i])
		dys[i] = d
	}
	ZeroGrads(b.Params())
	dxs := b.Backward(cache, dys)
	for _, p := range b.Params() {
		for i := range p.W.Data {
			want := numGrad(loss, &p.W.Data[i])
			if relErr(p.G.Data[i], want) > 1e-5 {
				t.Fatalf("%s grad[%d]: got %v want %v", p.Name, i, p.G.Data[i], want)
			}
		}
	}
	for ti, x := range xs {
		for i := range x {
			want := numGrad(loss, &x[i])
			if relErr(dxs[ti][i], want) > 1e-5 {
				t.Fatalf("dx[%d][%d]: got %v want %v", ti, i, dxs[ti][i], want)
			}
		}
	}
}

func TestBiLSTMOutputConcatenation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := NewBiLSTM(rng, "bi", 2, 3)
	xs := []mat.Vec{randVec(rng, 2), randVec(rng, 2), randVec(rng, 2)}
	ys, _ := b.Forward(xs)
	if len(ys) != 3 || len(ys[0]) != 6 {
		t.Fatalf("BiLSTM output shape wrong: %d×%d", len(ys), len(ys[0]))
	}
	// Forward half of first token must equal forward LSTM's own first output.
	fh, _ := b.Fwd.Forward(xs)
	for j := 0; j < 3; j++ {
		if ys[0][j] != fh[0][j] {
			t.Fatal("forward half mismatch")
		}
	}
}

func TestCRFGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c := NewCRF(rng, "crf", 4)
	n := 5
	emissions := make([]mat.Vec, n)
	for i := range emissions {
		emissions[i] = randVec(rng, 4)
	}
	gold := []int{0, 2, 1, 3, 0}

	loss := func() float64 {
		l, _ := c.NLL(emissions, gold)
		return l
	}
	ZeroGrads(c.Params())
	_, dE := c.NLL(emissions, gold)
	// Snapshot analytic grads: the numGrad probes below call NLL again,
	// which keeps accumulating into c's gradient buffers.
	analytic := map[*Param][]float64{}
	for _, p := range c.Params() {
		analytic[p] = append([]float64(nil), p.G.Data...)
	}

	for _, p := range c.Params() {
		for i := range p.W.Data {
			want := numGrad(loss, &p.W.Data[i])
			if relErr(analytic[p][i], want) > 1e-5 {
				t.Fatalf("%s grad[%d]: got %v want %v", p.Name, i, analytic[p][i], want)
			}
		}
	}
	for ti := range emissions {
		for j := range emissions[ti] {
			want := numGrad(loss, &emissions[ti][j])
			if relErr(dE[ti][j], want) > 1e-5 {
				t.Fatalf("dE[%d][%d]: got %v want %v", ti, j, dE[ti][j], want)
			}
		}
	}
}

// bruteForceBest enumerates all label sequences to find the max-scoring path.
func bruteForceBest(c *CRF, emissions []mat.Vec) ([]int, float64) {
	n := len(emissions)
	best := math.Inf(-1)
	var bestPath []int
	path := make([]int, n)
	var rec func(t int, score float64)
	rec = func(t int, score float64) {
		if t == n {
			score += c.End.W.At(0, path[n-1])
			if score > best {
				best = score
				bestPath = append([]int(nil), path...)
			}
			return
		}
		for j := 0; j < c.L; j++ {
			s := score
			if t == 0 {
				s += c.start(j)
			} else {
				s += c.trans(path[t-1], j)
			}
			s += emissions[t][j]
			path[t] = j
			rec(t+1, s)
		}
	}
	rec(0, 0)
	return bestPath, best
}

func pathScore(c *CRF, emissions []mat.Vec, path []int) float64 {
	s := c.start(path[0]) + emissions[0][path[0]]
	for t := 1; t < len(path); t++ {
		s += c.trans(path[t-1], path[t]) + emissions[t][path[t]]
	}
	return s + c.End.W.At(0, path[len(path)-1])
}

func TestViterbiMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		c := NewCRF(rng, "crf", 3)
		NormalInit(rng, c.Trans, 1)
		NormalInit(rng, c.Start, 1)
		NormalInit(rng, c.End, 1)
		n := 1 + rng.Intn(5)
		emissions := make([]mat.Vec, n)
		for i := range emissions {
			emissions[i] = randVec(rng, 3)
		}
		got := c.Decode(emissions)
		_, wantScore := bruteForceBest(c, emissions)
		if s := pathScore(c, emissions, got); math.Abs(s-wantScore) > 1e-9 {
			t.Fatalf("Viterbi score %v != brute force %v", s, wantScore)
		}
	}
}

func TestBeamDecodeFullWidthMatchesViterbi(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 10; trial++ {
		c := NewCRF(rng, "crf", 4)
		NormalInit(rng, c.Trans, 1)
		n := 2 + rng.Intn(5)
		emissions := make([]mat.Vec, n)
		for i := range emissions {
			emissions[i] = randVec(rng, 4)
		}
		vit := c.Decode(emissions)
		// Width L² is guaranteed exact for a first-order chain.
		beam := c.BeamDecode(emissions, 16)
		if pathScore(c, emissions, beam) < pathScore(c, emissions, vit)-1e-9 {
			t.Fatalf("wide beam found worse path than Viterbi: %v vs %v", beam, vit)
		}
	}
}

func TestBeamDecodeNarrowStillValid(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c := NewCRF(rng, "crf", 5)
	emissions := []mat.Vec{randVec(rng, 5), randVec(rng, 5), randVec(rng, 5)}
	got := c.BeamDecode(emissions, 1)
	if len(got) != 3 {
		t.Fatalf("beam path length %d", len(got))
	}
	for _, l := range got {
		if l < 0 || l >= 5 {
			t.Fatalf("invalid label %d", l)
		}
	}
}

func TestCRFConstraintsRespectedInDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	c := NewCRF(rng, "crf", 3)
	// Label 2 may never follow label 1, and sequences may not start with 2.
	c.SetConstraints(
		func(a, b int) bool { return !(a == 1 && b == 2) },
		func(l int) bool { return l != 2 },
	)
	// Emissions strongly prefer the forbidden pattern.
	emissions := []mat.Vec{{0, 10, -10}, {0, 0, 10}}
	got := c.Decode(emissions)
	if got[0] == 2 {
		t.Fatal("decoded a forbidden start label")
	}
	if got[0] == 1 && got[1] == 2 {
		t.Fatal("decoded a forbidden transition")
	}
}

func TestCRFTrainsToValidTagging(t *testing.T) {
	// A tiny CRF + fixed emissions should learn a toy pattern A B A B.
	rng := rand.New(rand.NewSource(11))
	c := NewCRF(rng, "crf", 2)
	opt := NewAdam(0.1)
	emissions := []mat.Vec{{0, 0}, {0, 0}, {0, 0}, {0, 0}}
	gold := []int{0, 1, 0, 1}
	var loss float64
	for step := 0; step < 200; step++ {
		ZeroGrads(c.Params())
		loss, _ = c.NLL(emissions, gold)
		opt.Step(c.Params())
	}
	if loss > 0.1 {
		t.Fatalf("CRF failed to fit toy pattern: loss %v", loss)
	}
	got := c.Decode(emissions)
	for i, l := range got {
		if l != gold[i] {
			t.Fatalf("decode %v != gold %v", got, gold)
		}
	}
}

func TestSoftmaxCE(t *testing.T) {
	logits := mat.Vec{2, 1, 0}
	loss, d := SoftmaxCE(logits.Clone(), 0)
	if loss <= 0 {
		t.Fatal("loss must be positive")
	}
	// Gradient sums to zero and is negative at gold.
	if math.Abs(d.Sum()) > 1e-9 {
		t.Fatalf("gradient sum %v", d.Sum())
	}
	if d[0] >= 0 {
		t.Fatal("gold gradient must be negative")
	}
	// Finite-difference check.
	for i := range logits {
		x := logits.Clone()
		want := numGrad(func() float64 {
			l, _ := SoftmaxCE(x.Clone(), 0)
			return l
		}, &x[i])
		if relErr(d[i], want) > 1e-6 {
			t.Fatalf("dlogits[%d]: got %v want %v", i, d[i], want)
		}
	}
}

func TestBCELogit(t *testing.T) {
	loss1, p1, d1 := BCELogit(3, 1)
	if p1 < 0.9 || d1 >= 0 || loss1 <= 0 {
		t.Fatalf("positive case: loss=%v p=%v d=%v", loss1, p1, d1)
	}
	loss0, p0, d0 := BCELogit(3, 0)
	if loss0 <= loss1 || d0 <= 0 || p0 != p1 {
		t.Fatalf("negative case: loss=%v p=%v d=%v", loss0, p0, d0)
	}
	// Gradient check.
	x := 0.7
	want := numGrad(func() float64 {
		l, _, _ := BCELogit(x, 1)
		return l
	}, &x)
	_, _, got := BCELogit(0.7, 1)
	if relErr(got, want) > 1e-6 {
		t.Fatalf("BCE grad: got %v want %v", got, want)
	}
}

func TestFGSM(t *testing.T) {
	d := FGSM(mat.Vec{0.3, -2, 0}, 0.5)
	if d[0] != 0.5 || d[1] != -0.5 || d[2] != 0 {
		t.Fatalf("FGSM: %v", d)
	}
	// l∞ bound holds for any input.
	for _, v := range FGSM(mat.Vec{100, -100, 1e-9}, 0.2) {
		if math.Abs(v) > 0.2 {
			t.Fatalf("FGSM exceeds l∞ ball: %v", v)
		}
	}
	seq := FGSMSeq([]mat.Vec{{1}, {-1}}, 0.1)
	if seq[0][0] != 0.1 || seq[1][0] != -0.1 {
		t.Fatalf("FGSMSeq: %v", seq)
	}
}

func TestDropout(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	d := NewDropout(rng, 0.5)
	x := mat.Vec{1, 1, 1, 1, 1, 1, 1, 1}
	y, mask := d.Forward(x)
	if mask == nil {
		t.Fatal("training dropout must return a mask")
	}
	kept := 0
	for i, m := range mask {
		if m {
			kept++
			if y[i] != 2 { // 1/(1-0.5)
				t.Fatalf("inverted scaling wrong: %v", y[i])
			}
		} else if y[i] != 0 {
			t.Fatal("dropped unit must be zero")
		}
	}
	dy := mat.Vec{1, 1, 1, 1, 1, 1, 1, 1}
	dx := d.Backward(dy, mask)
	for i := range dx {
		if mask[i] && dx[i] != 2 || !mask[i] && dx[i] != 0 {
			t.Fatalf("backward mask routing wrong at %d: %v", i, dx[i])
		}
	}
	d.Train = false
	y2, mask2 := d.Forward(x)
	if mask2 != nil {
		t.Fatal("eval mode must not mask")
	}
	for i := range y2 {
		if y2[i] != x[i] {
			t.Fatal("eval mode must be identity")
		}
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	p := NewParam("x", 1, 2)
	p.W.Data[0], p.W.Data[1] = 5, -3
	opt := NewAdam(0.1)
	for i := 0; i < 500; i++ {
		p.ZeroGrad()
		// f = (x-1)² + (y-2)²
		p.G.Data[0] = 2 * (p.W.Data[0] - 1)
		p.G.Data[1] = 2 * (p.W.Data[1] - 2)
		opt.Step([]*Param{p})
	}
	if math.Abs(p.W.Data[0]-1) > 1e-3 || math.Abs(p.W.Data[1]-2) > 1e-3 {
		t.Fatalf("Adam did not converge: %v", p.W.Data)
	}
}

func TestSGDWithWeightDecay(t *testing.T) {
	p := NewParam("x", 1, 1)
	p.W.Data[0] = 1
	opt := &SGD{LR: 0.1, WeightDecay: 0.5}
	p.G.Data[0] = 0
	opt.Step([]*Param{p})
	if got := p.W.Data[0]; math.Abs(got-0.95) > 1e-12 {
		t.Fatalf("weight decay: got %v want 0.95", got)
	}
}

func TestClipGrads(t *testing.T) {
	p := NewParam("x", 1, 2)
	p.G.Data[0], p.G.Data[1] = 3, 4 // norm 5
	ClipGrads([]*Param{p}, 1)
	if n := GradNorm([]*Param{p}); math.Abs(n-1) > 1e-9 {
		t.Fatalf("clipped norm %v", n)
	}
	// Below threshold: unchanged.
	p.G.Data[0], p.G.Data[1] = 0.3, 0.4
	ClipGrads([]*Param{p}, 1)
	if p.G.Data[0] != 0.3 {
		t.Fatal("small gradients must not be rescaled")
	}
}

func TestActivationGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x := randVec(rng, 6)
	dy := randVec(rng, 6)

	// GELU
	dx := GELUBackward(x, dy)
	for i := range x {
		xi := x.Clone()
		want := numGrad(func() float64 {
			return GELUVec(xi)[i] * dy[i]
		}, &xi[i])
		if relErr(dx[i], want) > 1e-5 {
			t.Fatalf("GELU grad[%d]: got %v want %v", i, dx[i], want)
		}
	}
	// ReLU
	y := ReLUVec(x)
	dxr := ReLUBackward(y, dy)
	for i := range x {
		want := 0.0
		if x[i] > 0 {
			want = dy[i]
		}
		if dxr[i] != want {
			t.Fatalf("ReLU grad[%d]: got %v want %v", i, dxr[i], want)
		}
	}
}

func TestSigmoidStable(t *testing.T) {
	if got := Sigmoid(1000); got != 1 {
		t.Fatalf("Sigmoid(1000)=%v", got)
	}
	if got := Sigmoid(-1000); got != 0 {
		t.Fatalf("Sigmoid(-1000)=%v", got)
	}
	if math.Abs(Sigmoid(0)-0.5) > 1e-12 {
		t.Fatal("Sigmoid(0) != 0.5")
	}
}

func TestCRFEmptySequence(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	c := NewCRF(rng, "crf", 3)
	if loss, dE := c.NLL(nil, nil); loss != 0 || dE != nil {
		t.Fatal("empty NLL must be zero")
	}
	if got := c.Decode(nil); got != nil {
		t.Fatal("empty Decode must be nil")
	}
	if got := c.BeamDecode(nil, 4); got != nil {
		t.Fatal("empty BeamDecode must be nil")
	}
}
