package nn

import (
	"sync/atomic"

	"saccs/internal/mat"
)

// Quantize-at-load: layers freeze reduced-precision copies of their weights
// the first time a quantized decode touches them, and cache the copy against
// the parameters' mutation versions — the same invalidation protocol as the
// transposed-pack cache in infer_batch.go. A retrain's optimizer step bumps
// every touched Param's version (Param.NoteMutated), so the next quantized
// decode after a Generation() bump rebuilds from the settled weights; a torn
// copy taken mid-step is keyed to a version that no longer matches and can
// never be served again. The frozen copies are immutable and shared by any
// number of concurrent decodes.

// quantSlot caches one frozen reduced-precision weight copy against a
// combined parameter-version key.
type quantSlot[T any] struct {
	p atomic.Pointer[quantEntry[T]]
}

type quantEntry[T any] struct {
	key [3]uint64
	v   *T
}

// cached returns the slot's value for key, or rebuilds it with build. The
// key's versions must be read before build reads the weights (the callers
// below do), preserving the torn-copy safety argument of packedTransposed.
func (s *quantSlot[T]) cached(key [3]uint64, build func() *T) *T {
	if c := s.p.Load(); c != nil && c.key == key {
		return c.v
	}
	v := build()
	s.p.Store(&quantEntry[T]{key: key, v: v})
	return v
}

// LinearQuant is a linear layer's frozen int8 inference form: per-output-row
// symmetric weight codes plus a float32 bias the kernel fuses into its
// dequantization loop.
type LinearQuant struct {
	W    *mat.Int8Weights // Out×In codes
	Bias []float32        // len Out
}

// LinearF32 is a linear layer's frozen float32 inference form, for the
// drift-sensitive projections the mixed mode keeps out of int8.
type LinearF32 struct {
	W    *mat.Mat32 // Out×In
	Bias []float32  // len Out
}

func biasF32(p *Param) []float32 {
	src := p.W.Row(0)
	b := make([]float32, len(src))
	for i, v := range src {
		b[i] = float32(v)
	}
	return b
}

// Quantize returns the layer's frozen int8 form, rebuilding it only when the
// weights' versions moved (retrain).
func (l *Linear) Quantize() *LinearQuant {
	key := [3]uint64{l.Weight.Version(), l.Bias.Version(), 0}
	return l.quant.cached(key, func() *LinearQuant {
		return &LinearQuant{W: mat.QuantizeRows(l.Weight.W), Bias: biasF32(l.Bias)}
	})
}

// Float32 returns the layer's frozen float32 form, version-cached like
// Quantize.
func (l *Linear) Float32() *LinearF32 {
	key := [3]uint64{l.Weight.Version(), l.Bias.Version(), 0}
	return l.f32.cached(key, func() *LinearF32 {
		w := l.Weight.W
		m := mat.NewMat32(w.Rows, w.Cols)
		for i, v := range w.Data {
			m.Data[i] = float32(v)
		}
		return &LinearF32{W: m, Bias: biasF32(l.Bias)}
	})
}

// LSTMQuant is an LSTM's frozen reduced-precision inference form. The input
// projection Wx is always int8 (it is the big In-wide GEMM). The recurrent
// projection depends on the mode: Mixed keeps it float32 — WhT is Wh
// pre-transposed to H×4H so the per-timestep recurrence is one row-major
// MatMulF32Into — while Int8 quantizes it too (Wh8, WhT nil). Bias is the
// float32 gate bias, fused into the Wx GEMM's dequantization.
type LSTMQuant struct {
	Wx   *mat.Int8Weights // 4H×In
	WhT  *mat.Mat32       // H×4H (Mixed), nil in Int8 mode
	Wh8  *mat.Int8Weights // 4H×H (Int8), nil in Mixed mode
	Bias []float32        // len 4H
}

// Quantize returns the LSTM's frozen form for the given mode (Mixed or
// Int8), version-cached per mode.
func (l *LSTM) Quantize(p Precision) *LSTMQuant {
	key := [3]uint64{l.Wx.Version(), l.Wh.Version(), l.B.Version()}
	slot := &l.quantMixed
	if p == Int8 {
		slot = &l.quantInt8
	}
	return slot.cached(key, func() *LSTMQuant {
		q := &LSTMQuant{Wx: mat.QuantizeRows(l.Wx.W), Bias: biasF32(l.B)}
		if p == Int8 {
			q.Wh8 = mat.QuantizeRows(l.Wh.W)
			return q
		}
		wh := l.Wh.W // 4H×H
		t := mat.NewMat32(wh.Cols, wh.Rows)
		for i := 0; i < wh.Rows; i++ {
			for j := 0; j < wh.Cols; j++ {
				t.Data[j*wh.Rows+i] = float32(wh.Data[i*wh.Cols+j])
			}
		}
		q.WhT = t
		return q
	})
}
