package experiments

import (
	"bytes"
	"strings"
	"testing"

	"saccs/internal/tokenize"
)

func TestTable3FastShape(t *testing.T) {
	rows := Table3(Fast, nil)
	if len(rows) != 4 {
		t.Fatalf("rows: %d", len(rows))
	}
	names := []string{"S1", "S2", "S3", "S4"}
	for i, r := range rows {
		if r.Dataset != names[i] {
			t.Fatalf("row %d dataset %s", i, r.Dataset)
		}
		if r.Total != r.Train+r.Test {
			t.Fatalf("total mismatch in %s", r.Dataset)
		}
	}
}

func TestFigure1Walkthrough(t *testing.T) {
	var buf bytes.Buffer
	res := Figure1(&buf)
	// E1 and E5 indexed under good food; E3 not (Fig. 1's point).
	food := res.IndexedTags["good food"]
	ids := map[string]bool{}
	for _, e := range food {
		ids[e.EntityID] = true
	}
	if !ids["E1"] || !ids["E5"] {
		t.Fatalf("E1 and E5 must be under good food: %v", food)
	}
	if ids["E3"] {
		t.Fatal("E3's review only mentions the ambiance; it must not map to good food")
	}
	atm := res.IndexedTags["great atmosphere"]
	foundE3 := false
	for _, e := range atm {
		if e.EntityID == "E3" {
			foundE3 = true
		}
	}
	if !foundE3 {
		t.Fatalf("E3 must be under great atmosphere: %v", atm)
	}
	if len(res.HistoryTags) != 1 || res.HistoryTags[0] != "romantic ambiance" {
		t.Fatalf("history: %v", res.HistoryTags)
	}
	if !strings.Contains(buf.String(), "user tag history") {
		t.Fatal("walkthrough output missing")
	}
}

func TestFigure2TagsTheExample(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a tagger")
	}
	var buf bytes.Buffer
	res := Figure2(Fast, &buf)
	if len(res.Tokens) != len(res.Labels) {
		t.Fatal("shape mismatch")
	}
	// "food" must be tagged as an aspect in the Fig. 2 sentence.
	for i, tok := range res.Tokens {
		if tok == "food" && res.Labels[i] != tokenize.BAS {
			t.Fatalf("food tagged %v", res.Labels[i])
		}
	}
	if len(res.Pairs) == 0 {
		t.Fatal("no pairs extracted")
	}
}

func TestFigure5AttentionWellFormed(t *testing.T) {
	if testing.Short() {
		t.Skip("trains an encoder")
	}
	var buf bytes.Buffer
	res := Figure5(Fast, &buf)
	if len(res.Attention) != len(res.Tokens) {
		t.Fatalf("attention rows %d for %d tokens", len(res.Attention), len(res.Tokens))
	}
	for _, row := range res.Attention {
		sum := row.Sum()
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("attention row sums to %v", sum)
		}
	}
	if !strings.Contains(buf.String(), "Figure 5") {
		t.Fatal("missing heatmap output")
	}
}

func TestMakeQueriesShape(t *testing.T) {
	tags := []string{"a", "b", "c", "d", "e", "f", "g"}
	qs := MakeQueries(tags, 20, 1)
	want := map[Difficulty][2]int{Short: {1, 2}, Medium: {3, 4}, Long: {5, 6}}
	for d, lohi := range want {
		if len(qs[d]) != 20 {
			t.Fatalf("%v: %d queries", d, len(qs[d]))
		}
		for _, q := range qs[d] {
			if len(q.Tags) < lohi[0] || len(q.Tags) > lohi[1] {
				t.Fatalf("%v query has %d tags", d, len(q.Tags))
			}
			seen := map[string]bool{}
			for _, tag := range q.Tags {
				if seen[tag] {
					t.Fatalf("duplicate tag in query: %v", q.Tags)
				}
				seen[tag] = true
			}
		}
	}
	// Determinism.
	qs2 := MakeQueries(tags, 20, 1)
	if qs2[Short][0].Tags[0] != qs[Short][0].Tags[0] {
		t.Fatal("query sampling must be deterministic")
	}
}

// TestTable2ShapeFast runs the full §6.2 comparison at fast scale and checks
// the paper's qualitative claims. This is the heaviest test in the repo
// (~15s); skipped in -short mode.
func TestTable2ShapeFast(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table 2 harness")
	}
	res := Table2(Fast, nil)
	ir, _ := res.Row("IR")
	sim2, _ := res.Row("SIM - 2 atts")
	s6, _ := res.Row("SACCS - 6 tags")
	s18, _ := res.Row("SACCS - 18 tags")

	for _, d := range []Difficulty{Short, Medium, Long} {
		if s18.Get(d) <= ir.Get(d) {
			t.Errorf("%v: SACCS-18 (%.3f) must beat IR (%.3f)", d, s18.Get(d), ir.Get(d))
		}
		if s18.Get(d) <= sim2.Get(d) {
			t.Errorf("%v: SACCS-18 (%.3f) must beat SIM-2 (%.3f)", d, s18.Get(d), sim2.Get(d))
		}
		if s18.Get(d) <= s6.Get(d) {
			t.Errorf("%v: more tags must help (6: %.3f, 18: %.3f)", d, s6.Get(d), s18.Get(d))
		}
	}
	// NDCG grows with difficulty for every system (§6.2's observation).
	for _, row := range res.Rows {
		if !(row.Short <= row.Medium+0.05 && row.Medium <= row.Long+0.05) {
			t.Errorf("%s: NDCG should broadly rise with difficulty: %+v", row.System, row)
		}
	}
}

// TestTable5ShapeFast checks the §6.4 qualitative claims at fast scale.
func TestTable5ShapeFast(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table 5 harness")
	}
	res := Table5(Fast, nil)
	opine, ok := res.Row("OpineDB")
	if !ok {
		t.Fatal("missing OpineDB row")
	}
	disc, _ := res.Row("Discriminative")
	mv, _ := res.Row("Majority Vote")
	prob, _ := res.Row("Probabilistic Model")

	if disc.Accuracy <= opine.Accuracy {
		t.Errorf("discriminative (%.1f) must beat OpineDB pairing (%.1f)", disc.Accuracy, opine.Accuracy)
	}
	if mv.Accuracy <= opine.Accuracy-10 {
		t.Errorf("majority vote (%.1f) should be competitive with OpineDB (%.1f)", mv.Accuracy, opine.Accuracy)
	}
	// The probabilistic model has the highest precision among label models.
	if prob.Precision < mv.Precision-1e-9 {
		t.Errorf("probabilistic precision (%.1f) should top majority vote (%.1f)", prob.Precision, mv.Precision)
	}
	// Seven labeling-function rows present with the paper's names.
	for _, name := range append([]string{"lf_tree_op", "lf_tree_as"}, PaperHeadNames...) {
		if _, ok := res.Row(name); !ok {
			t.Errorf("missing LF row %s", name)
		}
	}
	if len(res.Heads) != 5 {
		t.Errorf("head mapping has %d entries", len(res.Heads))
	}
}

func TestTable4ResultHelpers(t *testing.T) {
	res := Table4Result{
		Datasets: []string{"S1", "S2", "S3", "S4"},
		Rows: []Table4Row{
			{Model: "OpineDB", F1: [4]float64{50, 50, 50, 50}},
			{Model: "Adversarial (eps=0.1)", F1: [4]float64{70, 60, 55, 52}},
			{Model: "Adversarial (eps=2.0)", F1: [4]float64{60, 65, 50, 51}},
		},
	}
	if _, ok := res.Row("OpineDB"); !ok {
		t.Fatal("Row lookup failed")
	}
	if _, ok := res.Row("nope"); ok {
		t.Fatal("unexpected row")
	}
	best := res.BestAdversarial()
	want := [4]float64{70, 65, 55, 52}
	if best != want {
		t.Fatalf("BestAdversarial: %v want %v", best, want)
	}
}

func TestEpsilonSweepMatchesPaper(t *testing.T) {
	want := []float64{0.1, 0.2, 0.5, 1.0, 2.0}
	if len(Epsilons) != len(want) {
		t.Fatalf("epsilon sweep: %v", Epsilons)
	}
	for i, e := range Epsilons {
		if e != want[i] {
			t.Fatalf("epsilon sweep: %v", Epsilons)
		}
	}
}
