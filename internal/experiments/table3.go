package experiments

import (
	"io"

	"saccs/internal/datasets"
)

// Table3Row mirrors one row of the paper's dataset inventory.
type Table3Row struct {
	Dataset     string
	Description string
	Train, Test int
	Total       int
}

// Table3 regenerates the dataset description table. At Paper scale the
// counts match the paper exactly (3841 / 3845 / 2000 / 912).
func Table3(scale Scale, w io.Writer) []Table3Row {
	var rows []Table3Row
	for _, d := range datasets.All(scale) {
		rows = append(rows, Table3Row{
			Dataset:     d.Name,
			Description: d.Description,
			Train:       len(d.Train),
			Test:        len(d.Test),
			Total:       d.Total(),
		})
	}
	fprintf(w, "Table 3: Dataset descriptions\n")
	fprintf(w, "%-8s %-28s %7s %7s %7s\n", "Dataset", "Description", "Train", "Test", "Total")
	for _, r := range rows {
		fprintf(w, "%-8s %-28s %7d %7d %7d\n", r.Dataset, r.Description, r.Train, r.Test, r.Total)
	}
	return rows
}
