package experiments

import (
	"io"
	"math/rand"

	"saccs/internal/core"
	"saccs/internal/crowd"
	"saccs/internal/datasets"
	"saccs/internal/ir"
	"saccs/internal/metrics"
	"saccs/internal/pairing"
	"saccs/internal/parse"
	"saccs/internal/simbaseline"
	"saccs/internal/tagger"
	"saccs/internal/tokenize"
	"saccs/internal/yelp"
)

// Difficulty labels the three query sets of §6.2.
type Difficulty int

// Short (1–2 tags), Medium (3–4), Long (5–6).
const (
	Short Difficulty = iota
	Medium
	Long
)

func (d Difficulty) String() string {
	switch d {
	case Short:
		return "Short"
	case Medium:
		return "Medium"
	}
	return "Long"
}

// tagRange returns the tag-count interval for a difficulty.
func (d Difficulty) tagRange() (int, int) {
	switch d {
	case Short:
		return 1, 2
	case Medium:
		return 3, 4
	}
	return 5, 6
}

// Query is one subjective query: a tag combination standing in for a user
// utterance ("I am looking for a restaurant that delivers a quick service
// with clean plates").
type Query struct {
	Tags []string
}

// MakeQueries samples n queries per difficulty by uniform random sampling of
// the canonical tags, deterministically.
func MakeQueries(tags []string, n int, seed int64) map[Difficulty][]Query {
	rng := rand.New(rand.NewSource(seed))
	out := map[Difficulty][]Query{}
	for _, d := range []Difficulty{Short, Medium, Long} {
		lo, hi := d.tagRange()
		for i := 0; i < n; i++ {
			k := lo + rng.Intn(hi-lo+1)
			perm := rng.Perm(len(tags))
			q := Query{}
			for _, idx := range perm[:k] {
				q.Tags = append(q.Tags, tags[idx])
			}
			out[d] = append(out[d], q)
		}
	}
	return out
}

// Table2Row is one system's mean NDCG per difficulty.
type Table2Row struct {
	System              string
	Short, Medium, Long float64
}

// Get returns the row's score for a difficulty.
func (r Table2Row) Get(d Difficulty) float64 {
	switch d {
	case Short:
		return r.Short
	case Medium:
		return r.Medium
	}
	return r.Long
}

// Table2Result is the §6.2 comparison.
type Table2Result struct {
	Rows []Table2Row
}

// Row returns the named system's row.
func (r Table2Result) Row(system string) (Table2Row, bool) {
	for _, row := range r.Rows {
		if row.System == system {
			return row, true
		}
	}
	return Table2Row{}, false
}

// Table2Options tunes the harness.
type Table2Options struct {
	// QueriesPerSet is 100 in the paper.
	QueriesPerSet int
	// TopK is the ranked-list cutoff for NDCG.
	TopK int
	// Seed drives query sampling.
	Seed int64
	// IndexSizes are the SACCS index growth stages (paper: 6, 12, 18).
	IndexSizes []int
}

func defaultTable2Options(scale Scale) Table2Options {
	n := 30
	if scale == Paper {
		n = 100
	}
	return Table2Options{QueriesPerSet: n, TopK: 10, Seed: 61, IndexSizes: []int{6, 12, 18}}
}

// Table2Env bundles the expensive shared state (world, ground truth,
// trained extractor) so ablation benches can reuse it.
type Table2Env struct {
	World   *yelp.World
	Truth   *crowd.Truth
	Service *core.Service
	Queries map[Difficulty][]Query
	Opts    Table2Options
}

// entityIDs lists all world entity ids.
func (e *Table2Env) entityIDs() []string {
	out := make([]string, len(e.World.Entities))
	for i, en := range e.World.Entities {
		out[i] = en.ID
	}
	return out
}

// BuildTable2Env generates the world, simulates the crowd ground truth,
// trains the extraction pipeline (MiniBERT + adversarial tagger + tree
// pairing), and extracts review tags for indexing.
func BuildTable2Env(scale Scale, w io.Writer) *Table2Env {
	worldCfg := yelp.FastConfig()
	if scale == Paper {
		worldCfg = yelp.DefaultConfig()
	}
	fprintf(w, "generating world (%d entities)...\n", worldCfg.Entities)
	world := yelp.Generate(worldCfg)
	fprintf(w, "world: %d entities, %d reviews\n", len(world.Entities), world.ReviewCount())

	fprintf(w, "simulating crowd ground truth...\n")
	truth := crowd.GroundTruth(world, crowd.DefaultConfig())

	fprintf(w, "training extractor (MLM + adversarial tagger)...\n")
	d := datasets.S1(scale)
	enc := BuildEncoder(encoderOpts(scale), world.Domain, tokensOf(d.Train))
	tcfg := table4TaggerCfg(scale)
	tcfg.Adversarial = true
	tcfg.Epsilon = 0.2
	tg := tagger.New(enc, tcfg)
	tg.Train(d.Train)

	ex := &core.Extractor{
		Tagger: tg,
		Pairer: pairing.Tree{Lex: parse.DomainLexicon(world.Domain), FromOpinions: true},
	}
	svc := core.NewService(world, ex, nil, core.DefaultConfig())
	fprintf(w, "extracting subjective tags from reviews...\n")
	svc.BuildEntityTags(core.NeuralSource{E: ex})

	opts := defaultTable2Options(scale)
	var canon []string
	for _, f := range world.Domain.Features {
		canon = append(canon, f.Name)
	}
	return &Table2Env{
		World:   world,
		Truth:   truth,
		Service: svc,
		Queries: MakeQueries(canon, opts.QueriesPerSet, opts.Seed),
		Opts:    opts,
	}
}

// EvalIR scores the BM25 + query-expansion baseline.
func (e *Table2Env) EvalIR() Table2Row {
	var docs []ir.Doc
	for _, en := range e.World.Entities {
		var toks []string
		for _, r := range en.Reviews {
			toks = append(toks, tokenize.Words(r.Text)...)
		}
		docs = append(docs, ir.Doc{ID: en.ID, Tokens: toks})
	}
	engine := ir.NewBM25(docs)
	row := Table2Row{System: "IR"}
	e.forEachSet(&row, func(q Query, gains map[string]float64) float64 {
		ranked := engine.Search(ir.ExpandQuery(q.Tags), e.Opts.TopK)
		ids := make([]string, len(ranked))
		for i, s := range ranked {
			ids[i] = s.ID
		}
		return metrics.NDCG(gains, ids, e.Opts.TopK)
	})
	return row
}

// EvalSIM scores the attribute-sweep baseline with 1 or 2 attributes.
func (e *Table2Env) EvalSIM(attrs int) Table2Row {
	name := "SIM - 1 att"
	if attrs == 2 {
		name = "SIM - 2 atts"
	}
	row := Table2Row{System: name}
	e.forEachSet(&row, func(q Query, gains map[string]float64) float64 {
		return simbaseline.Best(e.World, gains, e.Opts.TopK, attrs).NDCG
	})
	return row
}

// EvalSACCS scores the service with the first size canonical tags indexed
// (the §6.2 adaptivity sweep: 6, 12, 18 tags).
func (e *Table2Env) EvalSACCS(size int) Table2Row {
	// Deterministic growth order: shuffle canonical tags once.
	var canon []string
	for _, f := range e.World.Domain.Features {
		canon = append(canon, f.Name)
	}
	rng := rand.New(rand.NewSource(17))
	rng.Shuffle(len(canon), func(i, j int) { canon[i], canon[j] = canon[j], canon[i] })
	if size > len(canon) {
		size = len(canon)
	}
	e.Service.ResetIndex()
	e.Service.IndexTags(canon[:size])

	row := Table2Row{System: saccsName(size)}
	e.forEachSet(&row, func(q Query, gains map[string]float64) float64 {
		ranked := e.Service.QueryTags(nil, q.Tags)
		ids := make([]string, len(ranked))
		for i, s := range ranked {
			ids[i] = s.EntityID
		}
		return metrics.NDCG(gains, ids, e.Opts.TopK)
	})
	return row
}

func saccsName(size int) string {
	switch size {
	case 6:
		return "SACCS - 6 tags"
	case 12:
		return "SACCS - 12 tags"
	case 18:
		return "SACCS - 18 tags"
	}
	return "SACCS"
}

// forEachSet fills a row by averaging the scorer over each difficulty set.
func (e *Table2Env) forEachSet(row *Table2Row, score func(q Query, gains map[string]float64) float64) {
	ids := e.entityIDs()
	for _, d := range []Difficulty{Short, Medium, Long} {
		var vals []float64
		for _, q := range e.Queries[d] {
			gains := e.Truth.Gains(q.Tags, ids)
			vals = append(vals, score(q, gains))
		}
		mean := metrics.Mean(vals)
		switch d {
		case Short:
			row.Short = mean
		case Medium:
			row.Medium = mean
		default:
			row.Long = mean
		}
	}
}

// Table2 runs the full §6.2 comparison and prints the paper-shaped table.
func Table2(scale Scale, w io.Writer) Table2Result {
	env := BuildTable2Env(scale, w)
	return Table2From(env, w)
}

// Table2From evaluates all systems over a prebuilt environment.
func Table2From(env *Table2Env, w io.Writer) Table2Result {
	res := Table2Result{}
	res.Rows = append(res.Rows, env.EvalIR())
	res.Rows = append(res.Rows, env.EvalSIM(1))
	res.Rows = append(res.Rows, env.EvalSIM(2))
	for _, size := range env.Opts.IndexSizes {
		res.Rows = append(res.Rows, env.EvalSACCS(size))
	}
	res.print(w)
	return res
}

func (r Table2Result) print(w io.Writer) {
	fprintf(w, "Table 2: Comparing SACCS to baselines (NDCG)\n")
	fprintf(w, "%-16s %7s %7s %7s\n", "System", "Short", "Medium", "Long")
	for _, row := range r.Rows {
		fprintf(w, "%-16s %7.3f %7.3f %7.3f\n", row.System, row.Short, row.Medium, row.Long)
	}
}
