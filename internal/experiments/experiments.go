// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) on the synthetic substrates: Table 2 (SACCS vs IR vs SIM),
// Table 3 (dataset inventory), Table 4 (tagger F1 sweep), Table 5 (pairing
// models), and Figures 1, 2 and 5. Each regenerator returns a structured
// result and can print the paper-shaped table to a writer. Fast scale runs
// in CI; Paper scale matches the paper's corpus sizes.
package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"saccs/internal/bert"
	"saccs/internal/corpus"
	"saccs/internal/datasets"
	"saccs/internal/lexicon"
	"saccs/internal/obs"
	"saccs/internal/tokenize"
)

// Scale aliases datasets.Scale for callers.
type Scale = datasets.Scale

// Fast and Paper re-export the two scales.
const (
	Fast  = datasets.Fast
	Paper = datasets.Paper
)

// EncoderOpts sizes the MiniBERT encoders the experiments train.
type EncoderOpts struct {
	Cfg         bert.Config
	GeneralSize int
	MLM         bert.MLMConfig
	Seed        int64
	// Obs, when non-nil, is attached to the encoder before MLM training so
	// pre-training epochs and later Encode calls are instrumented.
	Obs *obs.Observer
}

// encoderOpts returns the per-scale encoder recipe.
func encoderOpts(scale Scale) EncoderOpts {
	cfg := bert.DefaultConfig()
	mlm := bert.DefaultMLMConfig()
	size := 200
	if scale == Paper {
		size = 1200
		mlm.Epochs = 4
	} else {
		mlm.Epochs = 2
	}
	return EncoderOpts{Cfg: cfg, GeneralSize: size, MLM: mlm, Seed: 11}
}

// BuildEncoder pre-trains a MiniBERT on the general corpus and — when
// domainCorpus is non-empty — post-trains it on the domain reviews (§4.2's
// domain-knowledge step). The vocabulary covers the general corpus, the
// domain lexicon, and every provided sentence.
func BuildEncoder(opts EncoderOpts, domain *lexicon.Domain, domainCorpus [][]string) *bert.Model {
	genRng := rand.New(rand.NewSource(opts.Seed))
	general := corpus.GeneralCorpus(genRng, opts.GeneralSize)

	vocab := tokenize.NewVocab()
	vocab.AddAll(corpus.GeneralVocabulary())
	vocab.AddAll(corpus.FunctionWords())
	if domain != nil {
		for _, f := range domain.Features {
			for _, v := range append(append(append([]string{}, f.AspectSyns...), f.PosOps...), f.NegOps...) {
				vocab.AddAll(tokenize.Words(v))
			}
		}
	}
	for _, s := range domainCorpus {
		vocab.AddAll(s)
	}

	m := bert.New(rand.New(rand.NewSource(opts.Seed+1)), opts.Cfg, vocab)
	m.SetObserver(opts.Obs)
	m.TrainMLM(rand.New(rand.NewSource(opts.Seed+2)), general, opts.MLM)
	if len(domainCorpus) > 0 {
		// Post-training gets a longer run than the general phase when the
		// domain corpus is small — the domain corpus is the knowledge being
		// added (§4.2). Large corpora already provide enough steps per epoch.
		domainMLM := opts.MLM
		if len(domainCorpus) < 500 {
			domainMLM.Epochs *= 3
		}
		m.TrainMLM(rand.New(rand.NewSource(opts.Seed+3)), domainCorpus, domainMLM)
	}
	return m
}

// tokensOf projects dataset examples onto token sequences for MLM.
func tokensOf(examples []datasets.Example) [][]string {
	out := make([][]string, len(examples))
	for i, ex := range examples {
		out[i] = ex.Tokens
	}
	return out
}

// fprintf writes formatted output when w is non-nil.
func fprintf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format, args...)
	}
}

// DefaultEncoderOpts exposes the per-scale encoder recipe for callers
// outside the experiments (the public saccs facade trains its client
// pipelines with the same settings the tables use).
func DefaultEncoderOpts(scale Scale) EncoderOpts { return encoderOpts(scale) }
