package experiments

import (
	"io"

	"saccs/internal/datasets"
	"saccs/internal/lexicon"
	"saccs/internal/metrics"
	"saccs/internal/pairing"
	"saccs/internal/parse"
	"saccs/internal/snorkel"
)

// PaperHeadNames are the §6.4 labeling-function labels. BERT-base's
// layer:head geometry does not transfer to MiniBERT, so the five selected
// heads keep the paper's display names in rank order (see EXPERIMENTS.md for
// the mapping actually chosen by the qualitative analysis).
var PaperHeadNames = []string{
	"lf_bert_7:10", "lf_bert_3:10", "lf_bert_3:8", "lf_bert_4:6", "lf_bert_8:9",
}

// Table5Row is one pairing model's metrics (×100). Accuracy-only rows (the
// paper's OpineDB row) leave the others negative.
type Table5Row struct {
	Model                            string
	Accuracy, Precision, Recall, F1C float64
}

// Table5Result is the §6.4 pairing evaluation.
type Table5Result struct {
	Rows []Table5Row
	// Heads records which (layer, head) each lf_bert name mapped to.
	Heads []pairing.HeadScore
}

// Row returns the row with the given model name.
func (r Table5Result) Row(model string) (Table5Row, bool) {
	for _, row := range r.Rows {
		if row.Model == model {
			return row, true
		}
	}
	return Table5Row{}, false
}

// Table5 reproduces the pairing evaluation: the seven labeling functions,
// the majority-vote and probabilistic generative label models, and the
// discriminative classifier trained on data-programming labels over the
// hotels corpus (§6.4). The OpineDB row is reproduced with the word-distance
// pairing that system used.
func Table5(scale Scale, w io.Writer) Table5Result {
	trainSents, test := datasets.PairingBenchmark(scale)
	domain := lexicon.Hotels()
	lex := parse.DomainLexicon(domain)

	var trainTokens [][]string
	var trainExs []datasets.PairingExample
	for _, s := range trainSents {
		trainTokens = append(trainTokens, s.Tokens)
		trainExs = append(trainExs, datasets.EnumeratePairs(s)...)
	}
	// The attention heuristic reads the heads of an encoder steeped in the
	// domain (§5.1); give the pairing encoder a longer domain post-training
	// than the default recipe.
	opts := encoderOpts(scale)
	if opts.MLM.Epochs < 6 {
		opts.MLM.Epochs = 6
	}
	enc := BuildEncoder(opts, domain, trainTokens)

	// Qualitative analysis: pick the five best heads on a dev slice.
	devN := len(trainExs) / 4
	if devN > 300 {
		devN = 300
	}
	heads := pairing.SelectHeads(enc, trainExs[:devN], 5)
	lfs := pairing.StandardLFs(enc, lex, heads, PaperHeadNames)

	// Candidates.
	trainCands := make([]pairing.Candidate, len(trainExs))
	for i, ex := range trainExs {
		trainCands[i] = pairing.CandidateFromExample(ex)
	}
	testCands := make([]pairing.Candidate, len(test))
	for i, ex := range test {
		testCands[i] = pairing.CandidateFromExample(ex)
	}

	trainVotes := snorkel.ApplyAll(lfs, trainCands)
	testVotes := snorkel.ApplyAll(lfs, testCands)

	res := Table5Result{Heads: heads}

	// OpineDB stand-in: the word-distance pairing of [31, 55, 56].
	wd := pairing.LFFromHeuristic(pairing.WordDistance{FromOpinions: true})
	res.Rows = append(res.Rows, evalPredictor("OpineDB", test, func(i int) bool {
		return wd.Apply(testCands[i]) == snorkel.Positive
	}))

	// Individual labeling functions (in the paper's row order: bert LFs
	// then tree LFs — our lfs slice is tree-first, so reorder).
	order := []int{2, 3, 4, 5, 6, 1, 0} // five bert heads, lf_tree_op, lf_tree_as
	for _, j := range order {
		if j >= len(lfs) {
			continue
		}
		j := j
		res.Rows = append(res.Rows, evalPredictor(lfs[j].Name, test, func(i int) bool {
			return testVotes[i][j] == snorkel.Positive
		}))
	}

	// Generative models.
	mv := snorkel.Majority{}
	res.Rows = append(res.Rows, evalPredictor("Majority Vote", test, func(i int) bool {
		return snorkel.Predict(mv, testVotes[i])
	}))
	// The probabilistic row uses the Dawid–Skene generative model (per-LF
	// sensitivity/specificity), which our asymmetric labeling functions
	// need; see EXPERIMENTS.md for how this differs from the paper's tied
	// Snorkel model.
	gen, err := snorkel.FitGenerative(trainVotes, 25)
	if err != nil {
		gen = nil
	}
	if gen != nil {
		res.Rows = append(res.Rows, evalPredictor("Probabilistic Model", test, func(i int) bool {
			return snorkel.Predict(gen, testVotes[i])
		}))
	}

	// Discriminative model trained on the generative model's probabilistic
	// labels (Fig. 6's pipeline), falling back to majority vote if EM fails.
	labels := make([]float64, len(trainCands))
	for i, row := range trainVotes {
		if gen != nil {
			labels[i] = gen.Posterior(row)
		} else if snorkel.Predict(mv, row) {
			labels[i] = 1
		}
	}
	ccfg := pairing.DefaultClassifierConfig()
	ccfg.Hidden = 64
	ccfg.Epochs = 12
	clf := pairing.NewClassifier(enc, ccfg)
	clf.Lex = lex
	clf.Train(trainCands, labels)
	res.Rows = append(res.Rows, evalPredictor("Discriminative", test, func(i int) bool {
		return clf.Predict(testCands[i]) > 0.5
	}))

	res.print(w)
	return res
}

// evalPredictor computes a Table 5 row from a per-example predictor.
func evalPredictor(name string, test []datasets.PairingExample, pred func(i int) bool) Table5Row {
	var bin metrics.Binary
	for i, ex := range test {
		bin.Observe(pred(i), ex.Label)
	}
	return Table5Row{
		Model:     name,
		Accuracy:  100 * bin.Accuracy(),
		Precision: 100 * bin.Precision(),
		Recall:    100 * bin.Recall(),
		F1C:       100 * bin.F1(),
	}
}

func (r Table5Result) print(w io.Writer) {
	fprintf(w, "Table 5: Evaluation of the pairing models (x100)\n")
	fprintf(w, "%-22s %9s %10s %8s %8s\n", "Models", "Accuracy", "Precision", "Recall", "F1")
	for _, row := range r.Rows {
		fprintf(w, "%-22s %9.2f %10.2f %8.2f %8.2f\n",
			row.Model, row.Accuracy, row.Precision, row.Recall, row.F1C)
	}
	fprintf(w, "head mapping:")
	for i, h := range r.Heads {
		name := ""
		if i < len(PaperHeadNames) {
			name = PaperHeadNames[i]
		}
		fprintf(w, " %s->(layer %d, head %d)", name, h.Layer, h.Head)
	}
	fprintf(w, "\n")
}
