package experiments

import (
	"io"

	"saccs/internal/datasets"
	"saccs/internal/tagger"
)

// Epsilons is the Table 4 perturbation sweep.
var Epsilons = []float64{0.1, 0.2, 0.5, 1.0, 2.0}

// Table4Row is one model's F1 (×100) on S1–S4.
type Table4Row struct {
	Model string
	F1    [4]float64
}

// Table4Result is the full tagger evaluation of §6.3.
type Table4Result struct {
	Datasets []string
	Rows     []Table4Row
}

// Row returns the row with the given model name.
func (r Table4Result) Row(model string) (Table4Row, bool) {
	for _, row := range r.Rows {
		if row.Model == model {
			return row, true
		}
	}
	return Table4Row{}, false
}

// table4TaggerCfg returns the per-scale training recipe (paper: 15 epochs).
func table4TaggerCfg(scale Scale) tagger.Config {
	cfg := tagger.DefaultConfig()
	if scale == Paper {
		cfg.Epochs = 15
	} else {
		cfg.Epochs = 5
	}
	cfg.Alpha = 0.5 // fixed across all runs, as in §6.3
	return cfg
}

// Table4 reproduces the aspect/opinion tagger evaluation: OpineDB (BERT +
// per-token classifier), OpineDB + DK (domain post-trained encoder), and the
// SACCS adversarial tagger at ε ∈ {0.1, 0.2, 0.5, 1.0, 2.0}, on S1–S4, with
// exact-match chunk F1 (×100).
func Table4(scale Scale, w io.Writer) Table4Result {
	res := Table4Result{}
	all := datasets.All(scale)
	opts := encoderOpts(scale)

	rows := map[string]*Table4Row{}
	order := []string{"OpineDB", "OpineDB + DK"}
	rows["OpineDB"] = &Table4Row{Model: "OpineDB"}
	rows["OpineDB + DK"] = &Table4Row{Model: "OpineDB + DK"}
	for _, eps := range Epsilons {
		name := advName(eps)
		order = append(order, name)
		rows[name] = &Table4Row{Model: name}
	}

	for di, d := range all {
		res.Datasets = append(res.Datasets, d.Name)
		// Plain encoder (Wikipedia-only BERT) and domain-adapted encoder.
		plain := BuildEncoder(opts, d.Domain, nil)
		dk := BuildEncoder(opts, d.Domain, tokensOf(d.Train))

		base := table4TaggerCfg(scale)

		// The linear head is cheap to train; give it extra epochs so the
		// baseline is as strong as its architecture allows.
		headCfg := base
		headCfg.Epochs = base.Epochs + 3
		o := tagger.NewOpineDB(plain, headCfg)
		o.Train(d.Train)
		rows["OpineDB"].F1[di] = 100 * o.Evaluate(d.Test).F1

		odk := tagger.NewOpineDB(dk, headCfg)
		odk.Train(d.Train)
		rows["OpineDB + DK"].F1[di] = 100 * odk.Evaluate(d.Test).F1

		for _, eps := range Epsilons {
			cfg := base
			cfg.Adversarial = true
			cfg.Epsilon = eps
			m := tagger.New(dk, cfg)
			m.Train(d.Train)
			rows[advName(eps)].F1[di] = 100 * m.Evaluate(d.Test).F1
		}
	}

	for _, name := range order {
		res.Rows = append(res.Rows, *rows[name])
	}
	res.print(w)
	return res
}

func advName(eps float64) string {
	switch eps {
	case 0.1:
		return "Adversarial (eps=0.1)"
	case 0.2:
		return "Adversarial (eps=0.2)"
	case 0.5:
		return "Adversarial (eps=0.5)"
	case 1.0:
		return "Adversarial (eps=1.0)"
	case 2.0:
		return "Adversarial (eps=2.0)"
	}
	return "Adversarial"
}

func (r Table4Result) print(w io.Writer) {
	fprintf(w, "Table 4: Evaluation of aspect/opinion tagger (F1 x100)\n")
	fprintf(w, "%-24s", "Models")
	for _, d := range r.Datasets {
		fprintf(w, " %8s", d)
	}
	fprintf(w, "\n")
	for _, row := range r.Rows {
		fprintf(w, "%-24s", row.Model)
		for i := range r.Datasets {
			fprintf(w, " %8.2f", row.F1[i])
		}
		fprintf(w, "\n")
	}
}

// BestAdversarial returns, per dataset, the best F1 over the ε sweep.
func (r Table4Result) BestAdversarial() [4]float64 {
	var best [4]float64
	for _, row := range r.Rows {
		if len(row.Model) < 11 || row.Model[:11] != "Adversarial" {
			continue
		}
		for i, f := range row.F1 {
			if f > best[i] {
				best[i] = f
			}
		}
	}
	return best
}
