package experiments

import (
	"io"

	"saccs/internal/datasets"
	"saccs/internal/index"
	"saccs/internal/lexicon"
	"saccs/internal/mat"
	"saccs/internal/pairing"
	"saccs/internal/parse"
	"saccs/internal/sim"
	"saccs/internal/tagger"
	"saccs/internal/tokenize"
)

// Figure1Result captures the Fig. 1 walkthrough: the index after one round.
type Figure1Result struct {
	IndexedTags map[string][]index.Entry
	HistoryTags []string
}

// Figure1 replays the paper's Fig. 1 example: an index holding {good food,
// great atmosphere}; entities E1/E3/E5 whose single reviews yield the tags
// {good food}, {superb atmosphere}, {amazing pizza}; the similarity checker
// admits E1 and E5 under "good food" but not E3; a user utterance introduces
// "romantic ambiance", which lands in the user tag history.
func Figure1(w io.Writer) Figure1Result {
	measure := sim.NewConceptual()
	ix := index.New(measure, 0.55)
	entities := []index.EntityReviews{
		{EntityID: "E1", ReviewCount: 1, Tags: []string{"good food"}},
		{EntityID: "E3", ReviewCount: 1, Tags: []string{"superb atmosphere"}},
		{EntityID: "E5", ReviewCount: 1, Tags: []string{"amazing pizza"}},
	}
	ix.Build([]string{"good food", "great atmosphere"}, entities)

	hist := index.NewHistory()
	utteranceTag := "romantic ambiance"
	if !ix.Has(utteranceTag) {
		hist.Add(utteranceTag)
	}

	res := Figure1Result{IndexedTags: map[string][]index.Entry{}, HistoryTags: hist.Pending()}
	fprintf(w, "Figure 1: subjective tag indexing walkthrough\n")
	for _, tag := range ix.Tags() {
		entries := ix.Lookup(tag)
		res.IndexedTags[tag] = entries
		fprintf(w, "  index[%q] ->", tag)
		for _, e := range entries {
			fprintf(w, " %s(%.2f)", e.EntityID, e.Degree)
		}
		fprintf(w, "\n")
	}
	fprintf(w, "  user utterance tag %q unknown -> user tag history %v\n",
		utteranceTag, res.HistoryTags)

	// Next indexing round picks the history up.
	for _, tag := range hist.Drain() {
		ix.AddTag(tag, entities)
	}
	fprintf(w, "  after next round, index has %d tags\n", ix.Len())
	return res
}

// Figure2Result is the tagging + pairing demo output.
type Figure2Result struct {
	Tokens []string
	Labels []tokenize.Label
	Pairs  []pairing.Pair
}

// Figure2 reproduces the paper's Fig. 2 on its example sentence "The food
// was really good but the service was a bit slow", using a tagger trained at
// the given scale and the tree pairing heuristic.
func Figure2(scale Scale, w io.Writer) Figure2Result {
	d := datasets.S1(scale)
	enc := BuildEncoder(encoderOpts(scale), d.Domain, tokensOf(d.Train))
	cfg := table4TaggerCfg(scale)
	if cfg.Epochs < 6 {
		cfg.Epochs = 6 // the demo sentence deserves a fully converged tagger
	}
	m := tagger.New(enc, cfg)
	m.Train(d.Train)

	tokens := tokenize.Words("The food was really good but the service was a bit slow")
	labels := m.Predict(tokens)
	spans := tokenize.Spans(labels)
	var aspects, opinions []tokenize.Span
	for _, sp := range spans {
		if sp.Kind == tokenize.AspectSpan {
			aspects = append(aspects, sp)
		} else {
			opinions = append(opinions, sp)
		}
	}
	tr := pairing.Tree{Lex: parse.DomainLexicon(d.Domain), FromOpinions: true}
	pairs := tr.Pairs(tokens, aspects, opinions)

	fprintf(w, "Figure 2: token tagging and pairing\n  ")
	for i, tok := range tokens {
		fprintf(w, "%s/%s ", tok, labels[i])
	}
	fprintf(w, "\n  pairs:")
	for _, p := range pairs {
		fprintf(w, " (%s, %s)", p.Aspect.Text(tokens), p.Opinion.Text(tokens))
	}
	fprintf(w, "\n")
	return Figure2Result{Tokens: tokens, Labels: labels, Pairs: pairs}
}

// Figure5Result is the attention heatmap.
type Figure5Result struct {
	Tokens    []string
	Layer     int
	Head      int
	Attention []mat.Vec
}

// Figure5 renders the paper's attention-head heatmap: on "the food is
// delicious and the staff and decor are amazing", the best pairing head
// should make food attend to delicious, and staff/decor to amazing. The
// heatmap is printed with shade characters, darkest = highest attention.
func Figure5(scale Scale, w io.Writer) Figure5Result {
	trainSents, _ := datasets.PairingBenchmark(scale)
	domain := lexicon.Hotels()
	var trainTokens [][]string
	var exs []datasets.PairingExample
	for _, s := range trainSents {
		trainTokens = append(trainTokens, s.Tokens)
		exs = append(exs, datasets.EnumeratePairs(s)...)
	}
	// Include the restaurant words of the figure's sentence in the vocab.
	rest := lexicon.Restaurants()
	for _, f := range rest.Features {
		for _, v := range append(append([]string{}, f.AspectSyns...), f.PosOps...) {
			trainTokens = append(trainTokens, tokenize.Words(v))
		}
	}
	enc := BuildEncoder(encoderOpts(scale), domain, trainTokens)
	devN := len(exs)
	if devN > 200 {
		devN = 200
	}
	heads := pairing.SelectHeads(enc, exs[:devN], 1)
	layer, head := heads[0].Layer, heads[0].Head

	tokens := tokenize.Words("the food is delicious and the staff and decor are amazing")
	enc.EncodeTokens(tokens)
	attn := enc.Attention(layer, head)

	fprintf(w, "Figure 5: BERT attention head (layer %d, head %d) on %q\n", layer, head, "the food is delicious ...")
	shades := []rune(" .:-=+*#%@")
	fprintf(w, "%12s", "")
	for _, tok := range tokens {
		fprintf(w, " %4.4s", tok)
	}
	fprintf(w, "\n")
	for i, tok := range tokens {
		fprintf(w, "%12.12s", tok)
		for j := range tokens {
			v := attn[i][j]
			idx := int(v * float64(len(shades)))
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			fprintf(w, "  %c%c ", shades[idx], shades[idx])
		}
		fprintf(w, "\n")
	}
	return Figure5Result{Tokens: tokens, Layer: layer, Head: head, Attention: attn}
}
