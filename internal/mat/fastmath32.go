package mat

import "math"

// Fast scalar float32 transcendentals for the reduced-precision inference
// tier. The float64 math package routines cost hundreds of cycles each and
// dominate the quantized decode profile (LSTM gates, GELU, attention
// softmax); these polynomial kernels bring that to ~20 flops at float32
// accuracy, which is far below the int8 quantization noise the quant-drift
// oracle budgets for. Both are pure float32 arithmetic — IEEE-exact in Go on
// every platform — so the quantized decode's cross-machine bit-identity
// contract is preserved.

// Exp32 computes e^x in float32: range reduction x = n·ln2 + r with the
// classic hi/lo split of ln2, a degree-5 minimax polynomial for e^r on
// [-ln2/2, ln2/2] (Cephes expf coefficients), and exponent reassembly by bit
// manipulation. Accurate to ~2 ulp over the finite range; saturates to +Inf
// above ~88.02 and to 0 below ~-87.34 (the float32 normal range).
func Exp32(x float32) float32 {
	const (
		expHi = 88.02
		expLo = -87.33654
		log2e = 1.44269504088896341
		ln2Hi = 0.693359375
		ln2Lo = -2.12194440e-4
		expP0 = 1.9875691500e-4
		expP1 = 1.3981999507e-3
		expP2 = 8.3334519073e-3
		expP3 = 4.1665795894e-2
		expP4 = 1.6666665459e-1
		expP5 = 5.0000001201e-1
	)
	if x != x { // NaN
		return x
	}
	if x > expHi {
		return float32(math.Inf(1))
	}
	if x < expLo {
		return 0
	}
	// n = round(x/ln2): shift into [-ln2/2, ln2/2].
	fx := x*log2e + 0.5
	n := int32(fx)
	if float32(n) > fx { // int32 truncates toward zero; we need floor
		n--
	}
	fn := float32(n)
	r := x - fn*ln2Hi
	r -= fn * ln2Lo
	z := r * r
	y := float32(expP0)
	y = y*r + expP1
	y = y*r + expP2
	y = y*r + expP3
	y = y*r + expP4
	y = y*r + expP5
	y = y*z + r + 1
	// Scale by 2^n: n is in [-126, 127] here, so the biased exponent is a
	// normal float32 and the multiply is exact.
	return y * math.Float32frombits(uint32(n+127)<<23)
}

// Tanh32 computes tanh(x) in float32 as the odd rational approximation
// α(x²)·x / β(x²) on the clamped range |x| ≤ 7.905 (beyond which tanh is ±1
// to float32 precision). The 13/6-degree coefficient pair is the standard
// float32 minimax fit; accurate to a few ulp everywhere.
func Tanh32(x float32) float32 {
	const clamp = 7.90531110763549805
	if x != x { // NaN
		return x
	}
	if x > clamp {
		x = clamp
	} else if x < -clamp {
		x = -clamp
	}
	x2 := x * x
	alpha := float32(-2.76076847742355e-16)
	alpha = alpha*x2 + 2.00018790482477e-13
	alpha = alpha*x2 + -8.60467152213735e-11
	alpha = alpha*x2 + 5.12229709037114e-08
	alpha = alpha*x2 + 1.48572235717979e-05
	alpha = alpha*x2 + 6.37261928875436e-04
	alpha = alpha*x2 + 4.89352455891786e-03
	alpha *= x
	beta := float32(1.19825839466702e-06)
	beta = beta*x2 + 1.18534705686654e-04
	beta = beta*x2 + 2.26843463243900e-03
	beta = beta*x2 + 4.89352518554385e-03
	return alpha / beta
}

// Sigmoid32 is the float32 logistic 1/(1+e^-x), computed through Exp32 with
// the numerically stable branch structure of the float64 nn.Sigmoid.
func Sigmoid32(x float32) float32 {
	if x >= 0 {
		return 1 / (1 + Exp32(-x))
	}
	e := Exp32(x)
	return e / (1 + e)
}
