// Package mat provides the dense vector and matrix arithmetic used by the
// neural substrates (internal/nn, internal/bert). It is a deliberately small
// BLAS-lite: row-major float64 matrices, the handful of kernels the models
// need, and numerically stable reductions (softmax, logsumexp).
package mat

import (
	"fmt"
	"math"
)

// Vec is a dense float64 vector.
type Vec []float64

// NewVec returns a zero vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// Clone returns a copy of v.
func (v Vec) Clone() Vec {
	out := make(Vec, len(v))
	copy(out, v)
	return out
}

// Zero sets every element of v to 0.
func (v Vec) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// Add adds w into v element-wise. Panics if lengths differ.
func (v Vec) Add(w Vec) {
	checkLen(len(v), len(w))
	for i, x := range w {
		v[i] += x
	}
}

// Sub subtracts w from v element-wise.
func (v Vec) Sub(w Vec) {
	checkLen(len(v), len(w))
	for i, x := range w {
		v[i] -= x
	}
}

// AddScaled adds s*w into v.
func (v Vec) AddScaled(s float64, w Vec) {
	checkLen(len(v), len(w))
	for i, x := range w {
		v[i] += s * x
	}
}

// Scale multiplies every element of v by s.
func (v Vec) Scale(s float64) {
	for i := range v {
		v[i] *= s
	}
}

// Dot returns the inner product of v and w.
func (v Vec) Dot(w Vec) float64 {
	checkLen(len(v), len(w))
	var s float64
	for i, x := range v {
		s += x * w[i]
	}
	return s
}

// Norm returns the Euclidean norm of v.
func (v Vec) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// MaxIdx returns the index of the largest element (first on ties).
// It returns -1 for an empty vector.
func (v Vec) MaxIdx() int {
	if len(v) == 0 {
		return -1
	}
	best, bi := v[0], 0
	for i, x := range v[1:] {
		if x > best {
			best, bi = x, i+1
		}
	}
	return bi
}

// Max returns the largest element of v. Panics on empty input.
func (v Vec) Max() float64 {
	if len(v) == 0 {
		panic("mat: Max of empty vector")
	}
	return v[v.MaxIdx()]
}

// Sum returns the sum of the elements of v.
func (v Vec) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of v, or 0 for an empty vector.
func (v Vec) Mean() float64 {
	if len(v) == 0 {
		return 0
	}
	return v.Sum() / float64(len(v))
}

// Cosine returns the cosine similarity between v and w, and 0 when either
// vector is all zeros.
func Cosine(v, w Vec) float64 {
	nv, nw := v.Norm(), w.Norm()
	if nv == 0 || nw == 0 {
		return 0
	}
	return v.Dot(w) / (nv * nw)
}

// Softmax overwrites dst with the softmax of src using the max-shift trick.
// dst and src may alias.
func Softmax(dst, src Vec) {
	checkLen(len(dst), len(src))
	if len(src) == 0 {
		return
	}
	m := src.Max()
	var sum float64
	for i, x := range src {
		e := math.Exp(x - m)
		dst[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range dst {
		dst[i] *= inv
	}
}

// LogSumExp returns log(sum(exp(v))) computed stably.
func LogSumExp(v Vec) float64 {
	if len(v) == 0 {
		return math.Inf(-1)
	}
	m := v.Max()
	if math.IsInf(m, -1) {
		return m
	}
	var sum float64
	for _, x := range v {
		sum += math.Exp(x - m)
	}
	return m + math.Log(sum)
}

// Mat is a dense row-major matrix.
type Mat struct {
	Rows, Cols int
	Data       []float64
}

// NewMat returns a zero matrix with the given shape.
func NewMat(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must all share a length.
func FromRows(rows [][]float64) *Mat {
	if len(rows) == 0 {
		return NewMat(0, 0)
	}
	m := NewMat(len(rows), len(rows[0]))
	for i, r := range rows {
		checkLen(m.Cols, len(r))
		copy(m.Row(i), r)
	}
	return m
}

// At returns the element at (i, j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a Vec sharing m's storage.
func (m *Mat) Row(i int) Vec { return Vec(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	out := NewMat(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero sets every element of m to 0.
func (m *Mat) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Add adds o into m element-wise.
func (m *Mat) Add(o *Mat) {
	m.checkSameShape(o)
	for i, x := range o.Data {
		m.Data[i] += x
	}
}

// AddScaled adds s*o into m.
func (m *Mat) AddScaled(s float64, o *Mat) {
	m.checkSameShape(o)
	for i, x := range o.Data {
		m.Data[i] += s * x
	}
}

// Scale multiplies every element of m by s.
func (m *Mat) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// MulVec computes dst = m · v where v has length m.Cols and dst length m.Rows.
func (m *Mat) MulVec(dst, v Vec) {
	checkLen(len(v), m.Cols)
	checkLen(len(dst), m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, x := range row {
			s += x * v[j]
		}
		dst[i] = s
	}
}

// MulVecT computes dst = mᵀ · v where v has length m.Rows and dst length
// m.Cols. dst is overwritten.
//
// The zero-skip is kept deliberately: MulVecT runs on the training backward
// path where v is an upstream gradient that really is sparse (dropout masks,
// softmax-CE one-hots zero entire rows), so the branch wins there — unlike
// the dense inference kernels in gemm.go, which are branch-free.
func (m *Mat) MulVecT(dst, v Vec) {
	checkLen(len(v), m.Rows)
	checkLen(len(dst), m.Cols)
	dst.Zero()
	for i := 0; i < m.Rows; i++ {
		vi := v[i]
		if vi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, x := range row {
			dst[j] += vi * x
		}
	}
}

// AddOuter accumulates the outer product u·vᵀ into m (rank-1 update),
// where u has length m.Rows and v length m.Cols. Like MulVecT it keeps the
// zero-skip because u is a gradient on the training path, where exact zeros
// are common (masked tokens, one-hot targets); adding u[i]*v ≡ +0 row-wise
// makes the skip a pure win there.
func (m *Mat) AddOuter(u, v Vec) {
	checkLen(len(u), m.Rows)
	checkLen(len(v), m.Cols)
	for i, ui := range u {
		if ui == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, vj := range v {
			row[j] += ui * vj
		}
	}
}

// MatMul returns a·b. Panics if a.Cols != b.Rows.
//
// The kernel is branch-free: it used to skip k whenever a[i][k] == 0, a
// "sparsity" shortcut that never fires on trained dense weights but puts a
// data-dependent branch in the hottest loop of every dense multiply. The
// skip survives only where operand sparsity is structural — the training
// path's MulVecT and AddOuter.
func MatMul(a, b *Mat) *Mat {
	checkLen(a.Cols, b.Rows)
	out := NewMat(a.Rows, b.Cols)
	MatMulInto(out, a, b)
	return out
}

// Frob returns the Frobenius norm of m.
func (m *Mat) Frob() float64 { return Vec(m.Data).Norm() }

func (m *Mat) checkSameShape(o *Mat) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic(fmt.Sprintf("mat: shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
}

func checkLen(a, b int) {
	if a != b {
		panic(fmt.Sprintf("mat: length mismatch %d vs %d", a, b))
	}
}
