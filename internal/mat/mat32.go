package mat

// Float32 tier for the mixed-precision inference path (internal/nn,
// internal/bert). Training stays float64 end to end; these types carry only
// frozen inference activations and weight copies, halving memory traffic and
// doubling SIMD lanes against the float64 kernels for the layers where int8
// drift is unacceptable (LayerNorm inputs, attention softmax, the LSTM
// recurrence in `mixed` mode).
//
// Determinism contract: every float32 kernel in this tier performs one
// multiply and one add per product, unfused, with k ascending per output
// element — the float32 twin of the float64 exactness contract in gemm.go.
// There is no FMA anywhere (Go does not fuse at the default GOAMD64 level and
// the assembly uses separate VMULPS/VADDPS), so a decode produces the same
// bits whether it runs solo, batched, or on the scalar fallback.

// Vec32 is a float32 vector.
type Vec32 []float32

// Mat32 is a dense row-major float32 matrix.
type Mat32 struct {
	Rows, Cols int
	Data       []float32
}

// NewMat32 returns a zeroed rows×cols float32 matrix.
func NewMat32(rows, cols int) *Mat32 {
	return &Mat32{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// Row returns row i as a slice sharing the matrix storage.
func (m *Mat32) Row(i int) Vec32 {
	return Vec32(m.Data[i*m.Cols : (i+1)*m.Cols])
}

// Zero clears the matrix in place.
func (m *Mat32) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Softmax32 writes softmax(src) into dst with the max-subtraction trick,
// mirroring the float64 Softmax's structure: exponentials through the fast
// float32 Exp32, the sum accumulated in ascending index order, and the
// normalization one multiply by the reciprocal per element.
func Softmax32(dst, src Vec32) {
	checkLen(len(dst), len(src))
	if len(src) == 0 {
		return
	}
	max := src[0]
	for _, v := range src[1:] {
		if v > max {
			max = v
		}
	}
	var sum float32
	for i, v := range src {
		e := Exp32(v - max)
		dst[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range dst {
		dst[i] *= inv
	}
}

// MatMulF32Into computes dst = a·b where a is M×K, b is K×N (both row-major
// float32) and dst is M×N, overwritten. Per output element products
// accumulate in ascending k order with an unfused multiply and add each —
// the float32 twin of MatMulInto's contract — so the AVX-512 path
// (quant_amd64.s) and this scalar fallback are bit-identical.
func MatMulF32Into(dst, a, b *Mat32) {
	checkLen(a.Cols, b.Rows)
	checkLen(dst.Rows, a.Rows)
	checkLen(dst.Cols, b.Cols)
	if gemm32AsmInto(dst, a, b) {
		return
	}
	dst.Zero()
	for i := 0; i < a.Rows; i++ {
		a0 := a.Data[i*a.Cols : (i+1)*a.Cols]
		d0 := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		for k := 0; k < a.Cols; k++ {
			av := a0[k]
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				d0[j] += av * bv
			}
		}
	}
}

// MulABtF32Into computes dst = a·bᵀ where a is M×K and bt is N×K (the
// natural Out×In layout of nn.Linear weights), with a 2×4 register tile:
// eight independent accumulator chains hide FP-add latency while each output
// element still sums its products in ascending k order. It is the float32
// dot-style reference kernel; the projection layer of the quantized decode
// runs on it directly.
func MulABtF32Into(dst, a, bt *Mat32) {
	checkLen(a.Cols, bt.Cols)
	checkLen(dst.Rows, a.Rows)
	checkLen(dst.Cols, bt.Rows)
	n := a.Cols
	i := 0
	for ; i+2 <= a.Rows; i += 2 {
		a0 := a.Data[i*n : i*n+n]
		a1 := a.Data[(i+1)*n : (i+1)*n+n]
		d0 := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		d1 := dst.Data[(i+1)*dst.Cols : (i+2)*dst.Cols]
		j := 0
		for ; j+4 <= bt.Rows; j += 4 {
			b0 := bt.Data[j*n : j*n+n]
			b1 := bt.Data[(j+1)*n : (j+1)*n+n]
			b2 := bt.Data[(j+2)*n : (j+2)*n+n]
			b3 := bt.Data[(j+3)*n : (j+3)*n+n]
			var s00, s01, s02, s03 float32
			var s10, s11, s12, s13 float32
			for k := 0; k < n; k++ {
				av0, av1 := a0[k], a1[k]
				bv0, bv1, bv2, bv3 := b0[k], b1[k], b2[k], b3[k]
				s00 += av0 * bv0
				s01 += av0 * bv1
				s02 += av0 * bv2
				s03 += av0 * bv3
				s10 += av1 * bv0
				s11 += av1 * bv1
				s12 += av1 * bv2
				s13 += av1 * bv3
			}
			d0[j], d0[j+1], d0[j+2], d0[j+3] = s00, s01, s02, s03
			d1[j], d1[j+1], d1[j+2], d1[j+3] = s10, s11, s12, s13
		}
		for ; j < bt.Rows; j++ {
			brow := bt.Data[j*n : j*n+n]
			var s0, s1 float32
			for k, bv := range brow {
				s0 += a0[k] * bv
				s1 += a1[k] * bv
			}
			d0[j], d1[j] = s0, s1
		}
	}
	if i < a.Rows {
		a0 := a.Data[i*n : i*n+n]
		d0 := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		j := 0
		for ; j+4 <= bt.Rows; j += 4 {
			b0 := bt.Data[j*n : j*n+n]
			b1 := bt.Data[(j+1)*n : (j+1)*n+n]
			b2 := bt.Data[(j+2)*n : (j+2)*n+n]
			b3 := bt.Data[(j+3)*n : (j+3)*n+n]
			var s0, s1, s2, s3 float32
			for k := 0; k < n; k++ {
				av := a0[k]
				s0 += av * b0[k]
				s1 += av * b1[k]
				s2 += av * b2[k]
				s3 += av * b3[k]
			}
			d0[j], d0[j+1], d0[j+2], d0[j+3] = s0, s1, s2, s3
		}
		for ; j < bt.Rows; j++ {
			brow := bt.Data[j*n : j*n+n]
			var s float32
			for k, bv := range brow {
				s += a0[k] * bv
			}
			d0[j] = s
		}
	}
}

// AddRows32 adds b to every row of y — one addition per element, the float32
// twin of AddRows.
func AddRows32(y *Mat32, b Vec32) {
	checkLen(y.Cols, len(b))
	for i := 0; i < y.Rows; i++ {
		row := y.Row(i)
		for j, v := range b {
			row[j] += v
		}
	}
}
