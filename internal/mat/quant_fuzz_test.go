package mat

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzQuantRoundTrip feeds arbitrary bit patterns through the weight
// quantizer as one float64 row and checks the stability invariants that the
// quantize-at-load path depends on:
//
//  1. Fixed point: quantize→dequantize→requantize reproduces the codes and
//     the scale bit-exactly. Dequantization computes code·float64(scale) —
//     at most a 7-bit × 24-bit product — exactly in float64, so the max-abs
//     element and every rounding decision recur identically.
//  2. Codes stay in [-127, 127] (never -128) and Corr is 128·Σcodes.
//  3. When the scale guard did not fire, the max-abs element maps to ±127.
//
// The committed seed corpus (testdata/fuzz/FuzzQuantRoundTrip) covers the
// scale edge cases: all-zero rows, denormals that underflow the float32
// scale, ±MaxFloat64 that overflow it, NaN and ±Inf entries.
func FuzzQuantRoundTrip(f *testing.F) {
	le := binary.LittleEndian
	seed := func(vals ...float64) {
		b := make([]byte, 8*len(vals))
		for i, v := range vals {
			le.PutUint64(b[i*8:], math.Float64bits(v))
		}
		f.Add(b)
	}
	seed(0, 0, 0)
	seed(5e-324, -5e-324, 0) // denormals: float32 scale underflows to 0
	seed(math.MaxFloat64, -math.MaxFloat64, 1)
	seed(math.NaN(), 2, -2)
	seed(math.Inf(1), math.Inf(-1), 3)
	seed(1, -2, 3, -4, 5, -6, 7, -8)
	seed(1e-30, 2e-30, -3e-30)

	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data) / 8
		if n == 0 {
			return
		}
		if n > 256 {
			n = 256
		}
		row := make([]float64, n)
		for i := range row {
			row[i] = math.Float64frombits(le.Uint64(data[i*8:]))
		}
		w := &Mat{Rows: 1, Cols: n, Data: row}
		q1 := QuantizeRows(w)

		var sum int32
		maxCode := int8(0)
		for _, c := range q1.Data {
			if c == -128 {
				t.Fatalf("code -128 escaped the clamp (row %v)", row)
			}
			sum += int32(c)
			if c < 0 {
				c = -c
			}
			if c > maxCode {
				maxCode = c
			}
		}
		if q1.Corr[0] != 128*sum {
			t.Fatalf("Corr = %d, want 128*Σcodes = %d", q1.Corr[0], 128*sum)
		}

		maxAbs := 0.0
		for _, v := range row {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		rawScale := float32(maxAbs / 127)
		guarded := rawScale < 0x1p-126 || math.IsInf(float64(rawScale), 0)
		if guarded {
			if q1.Scales[0] != 1 {
				t.Fatalf("guard case scale = %v, want 1", q1.Scales[0])
			}
		} else if maxCode != 127 {
			t.Fatalf("non-degenerate row: max |code| = %d, want 127 (maxAbs %v, scale %v)",
				maxCode, maxAbs, q1.Scales[0])
		}

		q2 := QuantizeRows(q1.Dequantize())
		if q1.Scales[0] != q2.Scales[0] {
			t.Fatalf("requantized scale %v != %v", q2.Scales[0], q1.Scales[0])
		}
		for i := range q1.Data {
			if q1.Data[i] != q2.Data[i] {
				t.Fatalf("requantized code[%d] = %d != %d (row %v)", i, q2.Data[i], q1.Data[i], row)
			}
		}
	})
}
