package mat

import (
	"math"
	"sync"
)

// Int8 kernel family for the quantized inference path.
//
// Scheme: per-output-channel symmetric weight quantization. Every weight row
// (one output channel of an Out×In layer) gets its own scale s_r =
// maxabs(row)/127 and codes q = clamp(round(w/s_r), ±127); activations are
// quantized dynamically per row (per token) the same way at call time. A dot
// product then dequantizes as float32(Σ q_a·q_w)·s_a·s_r — one int32
// accumulator per output element, scaled once at the end.
//
// Offset-binary trick: activation codes are stored as uint8 with a +128
// offset (q_a + 128) so the AVX-512 VNNI instruction VPDPBUSD — which
// multiplies unsigned bytes by signed bytes — applies directly. Since
// Σ (q_a+128)·q_w = Σ q_a·q_w + 128·Σ q_w, subtracting the precomputed
// per-row correction Corr_r = 128·rowsum(q_w) recovers the signed dot
// exactly. All three kernel paths (pure Go, AVX-512 VNNI, and the
// AVX-512BW VPMADDWD fallback) produce the identical int32 accumulator —
// integer addition is associative, so lane order doesn't matter — and share
// one scalar Go dequantization loop, making quantized results bit-identical
// across machines and dispatch paths. TestInt8KernelPathsBitIdentical and
// FuzzQuantRoundTrip pin this.
//
// The K dimension is padded to a multiple of QuantK: padded weight bytes are
// 0 and padded activation bytes are 128 (code 0 in offset-binary), so the
// padding contributes exactly zero to both the dot and the correction.

// QuantK is the K-padding granularity: one 64-byte zmm of weight codes.
const QuantK = 64

// Int8Weights is the frozen per-output-row symmetric int8 quantization of an
// Out×In float64 weight matrix, produced once at quantize-at-load time
// (nn.Linear.Quantize / nn.LSTM.Quantize) and shared read-only by any number
// of concurrent decodes.
type Int8Weights struct {
	Rows, Cols int // logical Out×In
	KP         int // Cols padded up to a multiple of QuantK

	// Data holds the codes row-major, Rows×KP, padding zero.
	Data []int8
	// Scales holds the per-row dequantization scale s_r.
	Scales []float32
	// Corr holds the per-row offset correction 128·rowsum(Data[r]).
	Corr []int32

	// vnni is the VNNI-interleaved copy of Data: full blocks of 16 output
	// rows × 4 k-bytes per 64-byte group, the layout VPDPBUSD consumes with
	// one broadcast activation dword per group. Built only when the CPU has
	// AVX512-VNNI; nil otherwise. vnniBlocks counts the full 16-row blocks;
	// the Rows%16 tail always runs on the row-major fallbacks.
	vnni       []int8
	vnniBlocks int
}

// padK rounds n up to the next multiple of QuantK.
func padK(n int) int { return (n + QuantK - 1) &^ (QuantK - 1) }

// PadK is padK for callers sizing activation-quantization buffers
// (internal/nn arena carving).
func PadK(n int) int { return padK(n) }

// quantScale turns a row's max-abs into the symmetric scale, guarding the
// degenerate cases so quantize→dequantize→requantize is a fixed point: an
// all-zero (or all-NaN) row, a scale that would underflow below the smallest
// normal float32 (denormal scales lose so much relative precision that the
// max element no longer maps to ±127), and a scale that would overflow to
// +Inf all collapse to scale 1 — their codes are then 0 or ±127 and
// reproduce themselves.
func quantScale(maxAbs float64) float32 {
	s := float32(maxAbs / 127)
	if s < 0x1p-126 || math.IsInf(float64(s), 0) {
		return 1
	}
	return s
}

// quantCode quantizes one value against a scale: round to nearest (ties away
// from zero), clamped to ±127, with NaN mapping to 0. The clamp happens in
// the float domain so ±Inf inputs saturate instead of hitting Go's undefined
// float→int conversion.
func quantCode(v float64, scale float32) int8 {
	q := math.Round(v / float64(scale))
	switch {
	case math.IsNaN(q):
		return 0
	case q > 127:
		return 127
	case q < -127:
		return -127
	}
	return int8(q)
}

// QuantizeRows quantizes an Out×In float64 weight matrix with one symmetric
// scale per output row. The returned Int8Weights is immutable.
func QuantizeRows(w *Mat) *Int8Weights {
	kp := padK(w.Cols)
	q := &Int8Weights{
		Rows:   w.Rows,
		Cols:   w.Cols,
		KP:     kp,
		Data:   make([]int8, w.Rows*kp),
		Scales: make([]float32, w.Rows),
		Corr:   make([]int32, w.Rows),
	}
	for r := 0; r < w.Rows; r++ {
		row := w.Data[r*w.Cols : (r+1)*w.Cols]
		maxAbs := 0.0
		for _, v := range row {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a // NaN compares false and is skipped
			}
		}
		s := quantScale(maxAbs)
		q.Scales[r] = s
		dst := q.Data[r*kp : (r+1)*kp]
		var sum int32
		for k, v := range row {
			c := quantCode(v, s)
			dst[k] = c
			sum += int32(c)
		}
		q.Corr[r] = 128 * sum
	}
	if useVNNI() {
		q.packVNNI()
	}
	return q
}

// packVNNI builds the interleaved layout the VNNI kernel streams: for each
// full block of 16 output rows, KP/4 groups of 64 bytes, group g holding
// rows r..r+15's k-bytes [4g, 4g+4). Pure data movement — the codes are
// Data's exactly.
func (q *Int8Weights) packVNNI() {
	blocks := q.Rows / 16
	if blocks == 0 {
		return
	}
	groups := q.KP / 4
	packed := make([]int8, blocks*groups*64)
	for b := 0; b < blocks; b++ {
		for g := 0; g < groups; g++ {
			out := packed[(b*groups+g)*64:]
			for lane := 0; lane < 16; lane++ {
				src := q.Data[(b*16+lane)*q.KP+g*4:]
				out[lane*4+0] = src[0]
				out[lane*4+1] = src[1]
				out[lane*4+2] = src[2]
				out[lane*4+3] = src[3]
			}
		}
	}
	q.vnni, q.vnniBlocks = packed, blocks
}

// Dequantize expands the codes back to float64 (code·scale), the reference
// the round-trip fuzz target and drift tests compare against.
func (q *Int8Weights) Dequantize() *Mat {
	m := NewMat(q.Rows, q.Cols)
	for r := 0; r < q.Rows; r++ {
		s := float64(q.Scales[r])
		src := q.Data[r*q.KP:]
		dst := m.Data[r*q.Cols : (r+1)*q.Cols]
		for k := range dst {
			dst[k] = float64(src[k]) * s
		}
	}
	return m
}

// QuantizeRowU8 quantizes one float32 activation row symmetrically to int8
// stored offset-binary (code+128) in dst and returns the scale. dst must be
// a padded row of length padK(len(src)); the padding is written as 128
// (code 0), so kernels can stream whole 64-byte groups unconditionally.
func QuantizeRowU8(dst []uint8, src []float32) float32 {
	checkLen(len(dst), padK(len(src)))
	var maxAbs float32
	for _, v := range src {
		a := v
		if a < 0 {
			a = -a
		}
		if a > maxAbs { // NaN compares false on both branches: skipped
			maxAbs = a
		}
	}
	s := quantScale(float64(maxAbs))
	// Hot per-decode loop (runs before every int8 GEMM), so the rounding is
	// the magic-number trick rather than math.Round: adding and subtracting
	// 1.5·2²³ forces float32 round-to-nearest-even on any |r| ≤ 2²², and
	// |v·inv| ≤ ~127.5 here by construction. (The weight-side quantCode
	// rounds ties away from zero; the two may disagree by one code on
	// half-ulp knife edges, which is inside the quantization noise the drift
	// oracle budgets. NaN propagates through the magic adds and fails every
	// ordered compare, landing on the zero code like quantCode.)
	const magic = float32(3 << 22) // 1.5·2²³
	inv := 1 / s
	for k, v := range src {
		r := v*inv + magic
		r -= magic
		var q int32
		switch {
		case r > 127:
			q = 127
		case r < -127:
			q = -127
		case r == r:
			q = int32(r)
		}
		dst[k] = uint8(q + 128)
	}
	for k := len(src); k < len(dst); k++ {
		dst[k] = 128
	}
	return s
}

// MulABtInt8Into computes dst = dequant(Aq·Wᵀ) + bias: dst is rows×w.Rows
// float32, aq holds rows quantized activation rows of w.KP offset-binary
// codes each, aScales their per-row scales, and acc is caller-provided int32
// scratch of at least w.Rows (arena-backed in the inference path, so the
// kernel allocates nothing). bias may be nil. Every dispatch path fills the
// same int32 accumulators and shares the one dequantization loop below, so
// the output is identical bits regardless of CPU features.
func MulABtInt8Into(dst *Mat32, aq []uint8, aScales []float32, w *Int8Weights, bias []float32, acc []int32) {
	rows := dst.Rows
	checkLen(dst.Cols, w.Rows)
	checkLen(len(aq), rows*w.KP)
	checkLen(len(aScales), rows)
	if len(acc) < w.Rows {
		panic("mat: int8 accumulator scratch shorter than w.Rows")
	}
	acc = acc[:w.Rows]
	for i := 0; i < rows; i++ {
		arow := aq[i*w.KP : (i+1)*w.KP]
		int8GemvInto(acc, arow, w)
		out := dst.Row(i)
		sa := aScales[i]
		if bias != nil {
			for j := range out {
				out[j] = float32(acc[j]-w.Corr[j])*(sa*w.Scales[j]) + bias[j]
			}
		} else {
			for j := range out {
				out[j] = float32(acc[j]-w.Corr[j]) * (sa * w.Scales[j])
			}
		}
	}
}

// int8GemvGo is the portable accumulator kernel: the raw offset-binary dot
// Σ u8(a)·s8(w) per output row, the exact integer every vector path must
// reproduce.
func int8GemvGo(acc []int32, arow []uint8, wdata []int8, kp int) {
	for j := range acc {
		wrow := wdata[j*kp : (j+1)*kp]
		var s int32
		for k, av := range arow {
			s += int32(av) * int32(wrow[k])
		}
		acc[j] = s
	}
}

// ParallelMulABtInt8Into is MulABtInt8Into with the activation rows (and
// their dst rows) split across at most workers goroutines, mirroring
// ParallelMulABtInto's row-split tiling. acc must hold workers×w.Rows int32
// so each worker owns a private accumulator strip. Identical results for any
// worker count: every output element is computed by exactly one worker with
// the same kernels.
func ParallelMulABtInt8Into(dst *Mat32, aq []uint8, aScales []float32, w *Int8Weights, bias []float32, acc []int32, workers int) {
	const minRowsPerWorker = 8
	rows := dst.Rows
	if workers > rows/minRowsPerWorker {
		workers = rows / minRowsPerWorker
	}
	if workers <= 1 {
		MulABtInt8Into(dst, aq, aScales, w, bias, acc)
		return
	}
	if len(acc) < workers*w.Rows {
		panic("mat: int8 accumulator scratch shorter than workers*w.Rows")
	}
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	worker := 0
	for lo := 0; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi, wk int) {
			defer wg.Done()
			dv := &Mat32{Rows: hi - lo, Cols: dst.Cols, Data: dst.Data[lo*dst.Cols : hi*dst.Cols]}
			MulABtInt8Into(dv, aq[lo*w.KP:hi*w.KP], aScales[lo:hi], w, bias, acc[wk*w.Rows:(wk+1)*w.Rows])
		}(lo, hi, worker)
		worker++
	}
	wg.Wait()
}
