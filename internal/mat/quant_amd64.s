//go:build amd64

#include "textflag.h"

// AVX-512 kernels for the quantized / float32 inference tier.
//
// Integer kernels fill the raw offset-binary accumulator Σ u8(a)·s8(w) —
// integer addition is associative, so any lane grouping produces the same
// int32 bits as the scalar Go loop. Float32 kernels use one unfused
// VMULPS + VADDPS per product in ascending k order, matching the scalar
// fallback's rounding exactly (same contract as the float64 kernels in
// gemm_amd64.s).

// func int8DotVNNI(acc *int32, a *uint8, packed *int8, groups, blocks int)
//
// One 16-row VNNI block per iteration of the outer loop: the block's
// accumulator lives in 4 zmm registers (one per unrolled k-group) whose
// dword lanes are the 16 output rows. Each k-group broadcasts 4 activation
// bytes to every lane and VPDPBUSD multiplies them against the interleaved
// 64-byte weight group. groups is KP/4 (a multiple of 16, so the 4-group
// unroll is always exact; the single-group tail is kept for safety).
TEXT ·int8DotVNNI(SB), NOSPLIT, $0-40
	MOVQ acc+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ packed+16(FP), DX
	MOVQ groups+24(FP), CX
	MOVQ blocks+32(FP), BX

vnni_block:
	VPXORQ Z0, Z0, Z0
	VPXORQ Z3, Z3, Z3
	VPXORQ Z4, Z4, Z4
	VPXORQ Z5, Z5, Z5
	MOVQ   SI, R8 // activation cursor restarts every block
	MOVQ   CX, R9

vnni_g4:
	CMPQ          R9, $4
	JL            vnni_g1
	VPBROADCASTD  (R8), Z1
	VMOVDQU32     (DX), Z2
	VPDPBUSD      Z2, Z1, Z0
	VPBROADCASTD  4(R8), Z6
	VMOVDQU32     64(DX), Z7
	VPDPBUSD      Z7, Z6, Z3
	VPBROADCASTD  8(R8), Z8
	VMOVDQU32     128(DX), Z9
	VPDPBUSD      Z9, Z8, Z4
	VPBROADCASTD  12(R8), Z10
	VMOVDQU32     192(DX), Z11
	VPDPBUSD      Z11, Z10, Z5
	ADDQ          $16, R8
	ADDQ          $256, DX
	SUBQ          $4, R9
	JMP           vnni_g4

vnni_g1:
	TESTQ         R9, R9
	JZ            vnni_reduce
	VPBROADCASTD  (R8), Z1
	VMOVDQU32     (DX), Z2
	VPDPBUSD      Z2, Z1, Z0
	ADDQ          $4, R8
	ADDQ          $64, DX
	DECQ          R9
	JMP           vnni_g1

vnni_reduce:
	VPADDD    Z3, Z0, Z0
	VPADDD    Z5, Z4, Z4
	VPADDD    Z4, Z0, Z0
	VMOVDQU32 Z0, (DI)
	ADDQ      $64, DI
	DECQ      BX
	JNZ       vnni_block
	VZEROUPPER
	RET

// func int8GemvMadd(acc *int32, a *uint8, w *int8, kp, rows int)
//
// Row-major fallback for CPUs without VNNI (and for the Rows%16 tail of the
// VNNI path). Per output row, each 64-byte k-chunk widens 32 activation
// bytes (zero-extended) and 32 weight bytes (sign-extended) to words and
// VPMADDWD-accumulates pairwise products into 16 dword lanes; products are
// at most 255·127 so the i16 madd cannot saturate. The 16 lanes reduce
// horizontally to one int32 per row.
TEXT ·int8GemvMadd(SB), NOSPLIT, $0-40
	MOVQ acc+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ w+16(FP), DX
	MOVQ kp+24(FP), CX
	MOVQ rows+32(FP), BX
	SHRQ $6, CX // 64-byte chunks per row

madd_row:
	VPXORQ Z0, Z0, Z0
	MOVQ   SI, R8
	MOVQ   CX, R9

madd_chunk:
	VPMOVZXBW (R8), Z1
	VPMOVSXBW (DX), Z2
	VPMADDWD  Z2, Z1, Z3
	VPADDD    Z3, Z0, Z0
	VPMOVZXBW 32(R8), Z4
	VPMOVSXBW 32(DX), Z5
	VPMADDWD  Z5, Z4, Z6
	VPADDD    Z6, Z0, Z0
	ADDQ      $64, R8
	ADDQ      $64, DX
	DECQ      R9
	JNZ       madd_chunk

	VEXTRACTI64X4 $1, Z0, Y1
	VPADDD        Y1, Y0, Y0
	VEXTRACTI128  $1, Y0, X1
	VPADDD        X1, X0, X0
	VPSHUFD       $0x4E, X0, X1
	VPADDD        X1, X0, X0
	VPSHUFD       $0xB1, X0, X1
	VPADDD        X1, X0, X0
	VMOVD         X0, AX
	MOVL          AX, (DI)
	ADDQ          $4, DI
	DECQ          BX
	JNZ           madd_row
	VZEROUPPER
	RET

// func f32saxpy2x32(k int, a0, a1, bp, d0, d1 *float32, bstride int)
//
// Two A rows × 32 output columns (2 zmm per row). For each k: broadcast one
// scalar from each A row, load 32 packed B values, and do an unfused
// multiply + add per accumulator — ascending k, exactly the scalar order.
TEXT ·f32saxpy2x32(SB), NOSPLIT, $0-56
	MOVQ   k+0(FP), CX
	MOVQ   a0+8(FP), SI
	MOVQ   a1+16(FP), DI
	MOVQ   bp+24(FP), BX
	MOVQ   d0+32(FP), R8
	MOVQ   d1+40(FP), R9
	MOVQ   bstride+48(FP), DX
	VPXORQ Z0, Z0, Z0
	VPXORQ Z1, Z1, Z1
	VPXORQ Z2, Z2, Z2
	VPXORQ Z3, Z3, Z3

f32s2x32_loop:
	VBROADCASTSS (SI), Z4
	VBROADCASTSS (DI), Z5
	VMOVUPS      (BX), Z6
	VMOVUPS      64(BX), Z7
	VMULPS       Z6, Z4, Z8
	VADDPS       Z8, Z0, Z0
	VMULPS       Z7, Z4, Z9
	VADDPS       Z9, Z1, Z1
	VMULPS       Z6, Z5, Z10
	VADDPS       Z10, Z2, Z2
	VMULPS       Z7, Z5, Z11
	VADDPS       Z11, Z3, Z3
	ADDQ         $4, SI
	ADDQ         $4, DI
	ADDQ         DX, BX
	DECQ         CX
	JNZ          f32s2x32_loop

	VMOVUPS Z0, (R8)
	VMOVUPS Z1, 64(R8)
	VMOVUPS Z2, (R9)
	VMOVUPS Z3, 64(R9)
	VZEROUPPER
	RET

// func f32saxpy1x32(k int, a0, bp, d0 *float32, bstride int)
TEXT ·f32saxpy1x32(SB), NOSPLIT, $0-40
	MOVQ   k+0(FP), CX
	MOVQ   a0+8(FP), SI
	MOVQ   bp+16(FP), BX
	MOVQ   d0+24(FP), R8
	MOVQ   bstride+32(FP), DX
	VPXORQ Z0, Z0, Z0
	VPXORQ Z1, Z1, Z1

f32s1x32_loop:
	VBROADCASTSS (SI), Z4
	VMOVUPS      (BX), Z6
	VMOVUPS      64(BX), Z7
	VMULPS       Z6, Z4, Z8
	VADDPS       Z8, Z0, Z0
	VMULPS       Z7, Z4, Z9
	VADDPS       Z9, Z1, Z1
	ADDQ         $4, SI
	ADDQ         DX, BX
	DECQ         CX
	JNZ          f32s1x32_loop

	VMOVUPS Z0, (R8)
	VMOVUPS Z1, 64(R8)
	VZEROUPPER
	RET

// func f32saxpy2x16(k int, a0, a1, bp, d0, d1 *float32, bstride int)
TEXT ·f32saxpy2x16(SB), NOSPLIT, $0-56
	MOVQ   k+0(FP), CX
	MOVQ   a0+8(FP), SI
	MOVQ   a1+16(FP), DI
	MOVQ   bp+24(FP), BX
	MOVQ   d0+32(FP), R8
	MOVQ   d1+40(FP), R9
	MOVQ   bstride+48(FP), DX
	VPXORQ Z0, Z0, Z0
	VPXORQ Z2, Z2, Z2

f32s2x16_loop:
	VBROADCASTSS (SI), Z4
	VBROADCASTSS (DI), Z5
	VMOVUPS      (BX), Z6
	VMULPS       Z6, Z4, Z8
	VADDPS       Z8, Z0, Z0
	VMULPS       Z6, Z5, Z10
	VADDPS       Z10, Z2, Z2
	ADDQ         $4, SI
	ADDQ         $4, DI
	ADDQ         DX, BX
	DECQ         CX
	JNZ          f32s2x16_loop

	VMOVUPS Z0, (R8)
	VMOVUPS Z2, (R9)
	VZEROUPPER
	RET

// func f32saxpy1x16(k int, a0, bp, d0 *float32, bstride int)
TEXT ·f32saxpy1x16(SB), NOSPLIT, $0-40
	MOVQ   k+0(FP), CX
	MOVQ   a0+8(FP), SI
	MOVQ   bp+16(FP), BX
	MOVQ   d0+24(FP), R8
	MOVQ   bstride+32(FP), DX
	VPXORQ Z0, Z0, Z0

f32s1x16_loop:
	VBROADCASTSS (SI), Z4
	VMOVUPS      (BX), Z6
	VMULPS       Z6, Z4, Z8
	VADDPS       Z8, Z0, Z0
	ADDQ         $4, SI
	ADDQ         DX, BX
	DECQ         CX
	JNZ          f32s1x16_loop

	VMOVUPS Z0, (R8)
	VZEROUPPER
	RET
