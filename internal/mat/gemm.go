package mat

import "sync"

// Cache-blocked, register-tiled matrix-multiply kernels for the batched
// inference fast path (internal/nn, internal/bert).
//
// Exactness contract: for every output element, products are accumulated in
// ascending k order — the same order MulVec and the naive triple loop use —
// so these kernels are bit-identical to the reference implementations.
// Blocking and tiling only regroup *output elements* (rows of A, columns of
// B): the k dimension is never split, because float addition is not
// associative and splitting it would change per-element results. The
// differential oracle oracle/gemm-blocked in internal/check pins this.
//
// Why tiling helps at all on a scalar CPU: MulVec's single-accumulator dot
// loop is serialized on floating-point add latency (~4 cycles per element);
// computing a 2×4 tile of outputs keeps 8 independent accumulator chains in
// flight, so the same multiply-adds retire at throughput rather than
// latency. The win is instruction-level parallelism, not vectorization, and
// it costs nothing in exactness because each accumulator still sums its own
// element's products in k order.

const (
	// gemmColBlock bounds the panel of B columns (rows of Bᵀ) processed per
	// pass so the panel stays cache-resident while the A rows stream by.
	gemmColBlock = 256
)

// MulABtInto computes dst = a·bᵀ where a is M×K, bt is N×K (b transposed,
// row-major — the natural layout for Y = X·Wᵀ with nn.Linear weights stored
// Out×In), and dst is M×N. dst is overwritten. Per output element the
// products are accumulated in ascending k order, exactly as MulVec's dot
// loop, so dst.Row(i) is bit-identical to bt.MulVec(dst.Row(i), a.Row(i)).
func MulABtInto(dst, a, bt *Mat) {
	checkLen(a.Cols, bt.Cols)
	checkLen(dst.Rows, a.Rows)
	checkLen(dst.Cols, bt.Rows)
	for jb := 0; jb < bt.Rows; jb += gemmColBlock {
		je := jb + gemmColBlock
		if je > bt.Rows {
			je = bt.Rows
		}
		i := 0
		for ; i+2 <= a.Rows; i += 2 {
			mulABt2Rows(dst, a, bt, i, jb, je)
		}
		if i < a.Rows {
			mulABt1Row(dst, a, bt, i, jb, je)
		}
	}
}

// mulABt2Rows fills dst rows i and i+1 for output columns [jb, je) with a
// 2×4 register tile: eight independent accumulators hide FP-add latency
// while each still sums its own element's products in ascending k order.
func mulABt2Rows(dst, a, bt *Mat, i, jb, je int) {
	n := a.Cols
	a0 := a.Data[i*n : i*n+n]
	a1 := a.Data[(i+1)*n : (i+1)*n+n]
	d0 := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
	d1 := dst.Data[(i+1)*dst.Cols : (i+2)*dst.Cols]
	j := jb
	for ; j+4 <= je; j += 4 {
		b0 := bt.Data[j*n : j*n+n]
		b1 := bt.Data[(j+1)*n : (j+1)*n+n]
		b2 := bt.Data[(j+2)*n : (j+2)*n+n]
		b3 := bt.Data[(j+3)*n : (j+3)*n+n]
		var s00, s01, s02, s03 float64
		var s10, s11, s12, s13 float64
		for k := 0; k < n; k++ {
			av0, av1 := a0[k], a1[k]
			bv0, bv1, bv2, bv3 := b0[k], b1[k], b2[k], b3[k]
			s00 += av0 * bv0
			s01 += av0 * bv1
			s02 += av0 * bv2
			s03 += av0 * bv3
			s10 += av1 * bv0
			s11 += av1 * bv1
			s12 += av1 * bv2
			s13 += av1 * bv3
		}
		d0[j], d0[j+1], d0[j+2], d0[j+3] = s00, s01, s02, s03
		d1[j], d1[j+1], d1[j+2], d1[j+3] = s10, s11, s12, s13
	}
	for ; j < je; j++ {
		brow := bt.Data[j*n : j*n+n]
		var s0, s1 float64
		for k, bv := range brow {
			s0 += a0[k] * bv
			s1 += a1[k] * bv
		}
		d0[j], d1[j] = s0, s1
	}
}

// mulABt1Row is the odd-row remainder of MulABtInto: a 1×4 tile.
func mulABt1Row(dst, a, bt *Mat, i, jb, je int) {
	n := a.Cols
	a0 := a.Data[i*n : i*n+n]
	d0 := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
	j := jb
	for ; j+4 <= je; j += 4 {
		b0 := bt.Data[j*n : j*n+n]
		b1 := bt.Data[(j+1)*n : (j+1)*n+n]
		b2 := bt.Data[(j+2)*n : (j+2)*n+n]
		b3 := bt.Data[(j+3)*n : (j+3)*n+n]
		var s0, s1, s2, s3 float64
		for k := 0; k < n; k++ {
			av := a0[k]
			s0 += av * b0[k]
			s1 += av * b1[k]
			s2 += av * b2[k]
			s3 += av * b3[k]
		}
		d0[j], d0[j+1], d0[j+2], d0[j+3] = s0, s1, s2, s3
	}
	for ; j < je; j++ {
		brow := bt.Data[j*n : j*n+n]
		var s float64
		for k, bv := range brow {
			s += a0[k] * bv
		}
		d0[j] = s
	}
}

// ParallelMulABtInto is MulABtInto with the A rows (and their dst rows)
// split across at most workers goroutines. Each output element is computed
// by exactly one worker with the same tile kernels, so the result is
// bit-identical to the serial call for any worker count. workers <= 1 (or a
// matrix too small to be worth the handoff) runs serially.
func ParallelMulABtInto(dst, a, bt *Mat, workers int) {
	const minRowsPerWorker = 8
	if workers > a.Rows/minRowsPerWorker {
		workers = a.Rows / minRowsPerWorker
	}
	if workers <= 1 {
		MulABtInto(dst, a, bt)
		return
	}
	var wg sync.WaitGroup
	chunk := (a.Rows + workers - 1) / workers
	for lo := 0; lo < a.Rows; lo += chunk {
		hi := lo + chunk
		if hi > a.Rows {
			hi = a.Rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			av := &Mat{Rows: hi - lo, Cols: a.Cols, Data: a.Data[lo*a.Cols : hi*a.Cols]}
			dv := &Mat{Rows: hi - lo, Cols: dst.Cols, Data: dst.Data[lo*dst.Cols : hi*dst.Cols]}
			MulABtInto(dv, av, bt)
		}(lo, hi)
	}
	wg.Wait()
}

// MatMulInto computes dst = a·b into dst (overwritten), blocked over B
// columns for locality and branch-free in the inner loop. Per output
// element the products accumulate in ascending k order — the same order as
// the naive triple loop — so the result is bit-identical to MatMul's.
//
// On amd64 with AVX-512 the inner kernels run vectorized (gemm_amd64.s) with
// unfused multiply/add, lanes spanning output columns; the scalar blocked
// path below is the portable fallback and the vector path's differential
// reference. Both honor the same k-order contract.
func MatMulInto(dst, a, b *Mat) {
	checkLen(a.Cols, b.Rows)
	checkLen(dst.Rows, a.Rows)
	checkLen(dst.Cols, b.Cols)
	if gemmAsmInto(dst, a, b) {
		return
	}
	dst.Zero()
	for jb := 0; jb < b.Cols; jb += gemmColBlock {
		je := jb + gemmColBlock
		if je > b.Cols {
			je = b.Cols
		}
		i := 0
		for ; i+2 <= a.Rows; i += 2 {
			a0 := a.Data[i*a.Cols : (i+1)*a.Cols]
			a1 := a.Data[(i+1)*a.Cols : (i+2)*a.Cols]
			d0 := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
			d1 := dst.Data[(i+1)*dst.Cols : (i+2)*dst.Cols]
			for k := 0; k < a.Cols; k++ {
				av0, av1 := a0[k], a1[k]
				brow := b.Data[k*b.Cols : (k+1)*b.Cols]
				for j := jb; j < je; j++ {
					bv := brow[j]
					d0[j] += av0 * bv
					d1[j] += av1 * bv
				}
			}
		}
		if i < a.Rows {
			a0 := a.Data[i*a.Cols : (i+1)*a.Cols]
			d0 := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
			for k := 0; k < a.Cols; k++ {
				av := a0[k]
				brow := b.Data[k*b.Cols : (k+1)*b.Cols]
				for j := jb; j < je; j++ {
					d0[j] += av * brow[j]
				}
			}
		}
	}
}

// AddRows adds b element-wise to every row of y — the bias pass of a batched
// linear layer. Each element receives exactly one addition, so the
// vectorized path is bit-identical to calling Vec.Add per row.
func AddRows(y *Mat, b Vec) {
	for i := 0; i < y.Rows; i++ {
		addVecFast(y.Row(i), b)
	}
}
