//go:build !amd64

package mat

// Portable fallbacks: no VNNI weight copy, the scalar accumulator kernel,
// and the scalar float32 GEMM.

func useVNNI() bool { return false }

func int8GemvInto(acc []int32, arow []uint8, w *Int8Weights) {
	int8GemvGo(acc, arow, w.Data, w.KP)
}

func gemm32AsmInto(dst, a, b *Mat32) bool { return false }
