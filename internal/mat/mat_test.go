package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-12

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestVecAddSub(t *testing.T) {
	v := Vec{1, 2, 3}
	w := Vec{4, 5, 6}
	v.Add(w)
	if v[0] != 5 || v[1] != 7 || v[2] != 9 {
		t.Fatalf("Add: got %v", v)
	}
	v.Sub(w)
	if v[0] != 1 || v[1] != 2 || v[2] != 3 {
		t.Fatalf("Sub: got %v", v)
	}
}

func TestVecAddScaled(t *testing.T) {
	v := Vec{1, 1}
	v.AddScaled(2, Vec{3, 4})
	if v[0] != 7 || v[1] != 9 {
		t.Fatalf("AddScaled: got %v", v)
	}
}

func TestVecDotNorm(t *testing.T) {
	v := Vec{3, 4}
	if got := v.Dot(v); got != 25 {
		t.Fatalf("Dot: got %v", got)
	}
	if got := v.Norm(); got != 5 {
		t.Fatalf("Norm: got %v", got)
	}
}

func TestVecMaxIdx(t *testing.T) {
	cases := []struct {
		v    Vec
		want int
	}{
		{nil, -1},
		{Vec{1}, 0},
		{Vec{1, 3, 2}, 1},
		{Vec{2, 2, 2}, 0}, // first on ties
		{Vec{-5, -1, -3}, 1},
	}
	for _, c := range cases {
		if got := c.v.MaxIdx(); got != c.want {
			t.Errorf("MaxIdx(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestVecSumMean(t *testing.T) {
	v := Vec{1, 2, 3, 4}
	if v.Sum() != 10 {
		t.Fatalf("Sum: got %v", v.Sum())
	}
	if v.Mean() != 2.5 {
		t.Fatalf("Mean: got %v", v.Mean())
	}
	if (Vec{}).Mean() != 0 {
		t.Fatal("Mean of empty should be 0")
	}
}

func TestCosine(t *testing.T) {
	if got := Cosine(Vec{1, 0}, Vec{1, 0}); !almostEq(got, 1, eps) {
		t.Fatalf("parallel: got %v", got)
	}
	if got := Cosine(Vec{1, 0}, Vec{0, 1}); !almostEq(got, 0, eps) {
		t.Fatalf("orthogonal: got %v", got)
	}
	if got := Cosine(Vec{1, 0}, Vec{-1, 0}); !almostEq(got, -1, eps) {
		t.Fatalf("antiparallel: got %v", got)
	}
	if got := Cosine(Vec{0, 0}, Vec{1, 1}); got != 0 {
		t.Fatalf("zero vector: got %v", got)
	}
}

func TestSoftmaxProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(20)
		src := NewVec(n)
		for i := range src {
			src[i] = rng.NormFloat64() * 10
		}
		dst := NewVec(n)
		Softmax(dst, src)
		sum := dst.Sum()
		if !almostEq(sum, 1, 1e-9) {
			t.Fatalf("softmax sums to %v", sum)
		}
		for _, x := range dst {
			if x < 0 || x > 1 {
				t.Fatalf("softmax element out of range: %v", x)
			}
		}
		if dst.MaxIdx() != src.MaxIdx() {
			t.Fatal("softmax should preserve argmax")
		}
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	src := Vec{1, 2, 3}
	a, b := NewVec(3), NewVec(3)
	Softmax(a, src)
	shifted := src.Clone()
	for i := range shifted {
		shifted[i] += 100
	}
	Softmax(b, shifted)
	for i := range a {
		if !almostEq(a[i], b[i], 1e-9) {
			t.Fatalf("softmax not shift invariant: %v vs %v", a, b)
		}
	}
}

func TestSoftmaxLargeInputsStable(t *testing.T) {
	src := Vec{1000, 1001, 1002}
	dst := NewVec(3)
	Softmax(dst, src)
	if math.IsNaN(dst.Sum()) || !almostEq(dst.Sum(), 1, 1e-9) {
		t.Fatalf("softmax unstable on large inputs: %v", dst)
	}
}

func TestLogSumExp(t *testing.T) {
	v := Vec{math.Log(1), math.Log(2), math.Log(3)}
	if got := LogSumExp(v); !almostEq(got, math.Log(6), 1e-9) {
		t.Fatalf("LogSumExp: got %v, want %v", got, math.Log(6))
	}
	if got := LogSumExp(Vec{}); !math.IsInf(got, -1) {
		t.Fatalf("LogSumExp(empty): got %v", got)
	}
	neg := Vec{math.Inf(-1), math.Inf(-1)}
	if got := LogSumExp(neg); !math.IsInf(got, -1) {
		t.Fatalf("LogSumExp(-inf): got %v", got)
	}
}

func TestLogSumExpQuick(t *testing.T) {
	// Property: LSE(v) >= max(v) and LSE(v) <= max(v) + log(n).
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		v := make(Vec, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			// keep magnitudes sane
			v = append(v, math.Mod(x, 50))
		}
		if len(v) == 0 {
			return true
		}
		lse := LogSumExp(v)
		m := v.Max()
		return lse >= m-1e-9 && lse <= m+math.Log(float64(len(v)))+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulVec(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	dst := NewVec(3)
	m.MulVec(dst, Vec{1, 1})
	if dst[0] != 3 || dst[1] != 7 || dst[2] != 11 {
		t.Fatalf("MulVec: got %v", dst)
	}
	tdst := NewVec(2)
	m.MulVecT(tdst, Vec{1, 1, 1})
	if tdst[0] != 9 || tdst[1] != 12 {
		t.Fatalf("MulVecT: got %v", tdst)
	}
}

func TestMatMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := MatMul(a, b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("MatMul: got %v", c.Data)
			}
		}
	}
}

func TestAddOuter(t *testing.T) {
	m := NewMat(2, 3)
	m.AddOuter(Vec{1, 2}, Vec{3, 4, 5})
	want := [][]float64{{3, 4, 5}, {6, 8, 10}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != want[i][j] {
				t.Fatalf("AddOuter: got %v", m.Data)
			}
		}
	}
}

// Property: (AB)v == A(Bv) for random matrices.
func TestMatMulAssociatesWithMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		r, k, c := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a, b := NewMat(r, k), NewMat(k, c)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		v := NewVec(c)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		ab := MatMul(a, b)
		left := NewVec(r)
		ab.MulVec(left, v)
		bv := NewVec(k)
		b.MulVec(bv, v)
		right := NewVec(r)
		a.MulVec(right, bv)
		for i := range left {
			if !almostEq(left[i], right[i], 1e-9) {
				t.Fatalf("(AB)v != A(Bv): %v vs %v", left, right)
			}
		}
	}
}

func TestMatRowSharesStorage(t *testing.T) {
	m := NewMat(2, 2)
	m.Row(1)[0] = 42
	if m.At(1, 0) != 42 {
		t.Fatal("Row must alias matrix storage")
	}
}

func TestMatCloneIndependent(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must not alias")
	}
}

func TestShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	a := NewMat(2, 3)
	b := NewMat(3, 2)
	a.Add(b)
}
