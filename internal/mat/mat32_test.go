package mat

import (
	"math"
	"math/rand"
	"testing"
)

func naiveMatMul32(a, b *Mat32) *Mat32 {
	out := NewMat32(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float32
			for k := 0; k < a.Cols; k++ {
				s += a.Data[i*a.Cols+k] * b.Data[k*b.Cols+j]
			}
			out.Data[i*out.Cols+j] = s
		}
	}
	return out
}

var f32Shapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{1, 8, 16},
	{2, 7, 32},
	{3, 16, 33},
	{5, 24, 48},
	{4, 32, 15}, // below the 16-col asm floor: scalar path
	{7, 12, 100},
	{8, 64, 128},
}

// TestMatMulF32AsmMatchesScalar pins the float32 determinism contract: the
// AVX-512 path and the scalar fallback must agree bit for bit, since the
// mixed-precision decode may take either depending on the machine.
func TestMatMulF32AsmMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, sh := range f32Shapes {
		a := randMat32(rng, sh.m, sh.k)
		b := randMat32(rng, sh.k, sh.n)
		want := naiveMatMul32(a, b)

		got := NewMat32(sh.m, sh.n)
		MatMulF32Into(got, a, b)
		requireBitEqual32(t, "MatMulF32Into", want, got)

		if hasAVX512 {
			hasAVX512 = false
			scalar := NewMat32(sh.m, sh.n)
			MatMulF32Into(scalar, a, b)
			hasAVX512 = true
			requireBitEqual32(t, "f32 asm vs scalar", want, scalar)
		}
	}
}

func TestMulABtF32IntoMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, sh := range f32Shapes {
		a := randMat32(rng, sh.m, sh.k)
		bt := randMat32(rng, sh.n, sh.k)
		want := NewMat32(sh.m, sh.n)
		for i := 0; i < sh.m; i++ {
			for j := 0; j < sh.n; j++ {
				var s float32
				for k := 0; k < sh.k; k++ {
					s += a.Data[i*sh.k+k] * bt.Data[j*sh.k+k]
				}
				want.Data[i*sh.n+j] = s
			}
		}
		got := NewMat32(sh.m, sh.n)
		MulABtF32Into(got, a, bt)
		requireBitEqual32(t, "MulABtF32Into", want, got)
	}
}

func TestSoftmax32(t *testing.T) {
	src := Vec32{1, 2, 3, 4}
	dst := make(Vec32, 4)
	Softmax32(dst, src)
	var sum float32
	for i := 1; i < len(dst); i++ {
		if dst[i] <= dst[i-1] {
			t.Fatalf("softmax not increasing with logits: %v", dst)
		}
	}
	for _, v := range dst {
		sum += v
	}
	if math.Abs(float64(sum)-1) > 1e-5 {
		t.Fatalf("softmax sum = %v, want ≈1", sum)
	}
	// Max-shift must survive large logits without overflow.
	big := Vec32{1000, 1001, 1002}
	out := make(Vec32, 3)
	Softmax32(out, big)
	for _, v := range out {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("softmax overflowed on large logits: %v", out)
		}
	}
}

func TestAddRows32(t *testing.T) {
	y := NewMat32(2, 3)
	copy(y.Data, []float32{1, 2, 3, 4, 5, 6})
	AddRows32(y, Vec32{10, 20, 30})
	want := []float32{11, 22, 33, 14, 25, 36}
	for i, w := range want {
		if y.Data[i] != w {
			t.Fatalf("AddRows32[%d] = %v, want %v", i, y.Data[i], w)
		}
	}
}
