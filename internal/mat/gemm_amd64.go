//go:build amd64

package mat

// AVX-512 fast path for MatMulInto.
//
// The microkernels in gemm_amd64.s vectorize across *output columns*: one zmm
// lane owns one output element, and per k step each lane executes exactly one
// unfused VMULPD followed by one VADDPD, with k ascending. That is the same
// rounding sequence as the scalar kernels — a float64 multiply and add round
// identically whether they sit in a scalar register or a vector lane — so the
// vector path is bit-identical to MulVec and the naive triple loop. FMA would
// be faster still but fuses the multiply-add into a single rounding, which
// would break that identity; it is deliberately not used.
//
// The k dimension is never split across lanes or accumulators: splitting k
// would reassociate the (non-associative) float sum.

//go:noescape
func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)

//go:noescape
func xgetbv0() (eax, edx uint32)

//go:noescape
func saxpy2x32(k int, a0, a1, bp, d0, d1 *float64, bstride int)

//go:noescape
func saxpy1x32(k int, a0, bp, d0 *float64, bstride int)

//go:noescape
func saxpy2x8(k int, a0, a1, bp, d0, d1 *float64, bstride int)

//go:noescape
func saxpy1x8(k int, a0, bp, d0 *float64, bstride int)

// hasAVX512 reports whether the CPU and OS support the zmm registers the
// microkernels use. Tests may flip it to force the scalar path.
var hasAVX512 = detectAVX512()

func detectAVX512() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := cpuid(1, 0)
	const osxsaveBit = 1 << 27
	if c1&osxsaveBit == 0 {
		return false
	}
	// XCR0 must enable XMM (bit 1), YMM (bit 2), and the AVX-512 state
	// triple: opmask (5), zmm0-15 upper halves (6), zmm16-31 (7).
	xlo, _ := xgetbv0()
	const xcr0Needed = 1<<1 | 1<<2 | 1<<5 | 1<<6 | 1<<7
	if xlo&xcr0Needed != xcr0Needed {
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	const avx512fBit = 1 << 16
	return b7&avx512fBit != 0
}

// gemmAsmInto computes dst = a·b with the AVX-512 microkernels and returns
// true, or returns false with dst untouched when the CPU lacks AVX-512 or the
// shape is degenerate (no columns to vectorize, empty k). Column tiles go
// 32-wide, then 8-wide, then a scalar tail; rows go in pairs with a single-row
// remainder. Every tile fully overwrites its output elements, so no prior
// zeroing of dst is needed on this path.
func gemmAsmInto(dst, a, b *Mat) bool {
	n := b.Cols
	k := a.Cols
	if !hasAVX512 || n < 8 || k == 0 || a.Rows == 0 {
		return false
	}
	bstride := n * 8 // bytes per packed B row
	n32 := n &^ 31
	n8 := n &^ 7
	i := 0
	for ; i+2 <= a.Rows; i += 2 {
		a0 := a.Data[i*k : (i+1)*k]
		a1 := a.Data[(i+1)*k : (i+2)*k]
		d0 := dst.Data[i*n : (i+1)*n]
		d1 := dst.Data[(i+1)*n : (i+2)*n]
		for j := 0; j < n32; j += 32 {
			saxpy2x32(k, &a0[0], &a1[0], &b.Data[j], &d0[j], &d1[j], bstride)
		}
		for j := n32; j < n8; j += 8 {
			saxpy2x8(k, &a0[0], &a1[0], &b.Data[j], &d0[j], &d1[j], bstride)
		}
		for j := n8; j < n; j++ {
			var s0, s1 float64
			for kk := 0; kk < k; kk++ {
				bv := b.Data[kk*n+j]
				s0 += a0[kk] * bv
				s1 += a1[kk] * bv
			}
			d0[j], d1[j] = s0, s1
		}
	}
	if i < a.Rows {
		a0 := a.Data[i*k : (i+1)*k]
		d0 := dst.Data[i*n : (i+1)*n]
		for j := 0; j < n32; j += 32 {
			saxpy1x32(k, &a0[0], &b.Data[j], &d0[j], bstride)
		}
		for j := n32; j < n8; j += 8 {
			saxpy1x8(k, &a0[0], &b.Data[j], &d0[j], bstride)
		}
		for j := n8; j < n; j++ {
			var s float64
			for kk := 0; kk < k; kk++ {
				s += a0[kk] * b.Data[kk*n+j]
			}
			d0[j] = s
		}
	}
	return true
}

//go:noescape
func vadd8n(dst, src *float64, n8 int)

// addVecFast is the amd64 element-wise add: the AVX-512 kernel covers the
// 8-wide body and the scalar tail finishes. Per element it performs exactly
// one addition, identical to Vec.Add.
func addVecFast(dst, src Vec) {
	n := len(dst)
	if !hasAVX512 || n < 8 {
		dst.Add(src)
		return
	}
	n8 := n >> 3
	vadd8n(&dst[0], &src[0], n8)
	for i := n8 << 3; i < n; i++ {
		dst[i] += src[i]
	}
}
