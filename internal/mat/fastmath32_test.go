package mat

import (
	"math"
	"testing"
)

// relErr32 is |got-want|/max(|want|, tiny) in float64.
func relErr32(got float32, want float64) float64 {
	d := math.Abs(float64(got) - want)
	m := math.Abs(want)
	if m < 1e-30 {
		return d
	}
	return d / m
}

func TestExp32Accuracy(t *testing.T) {
	// Sweep the useful range densely; relative error must stay at float32
	// polynomial accuracy (a few ulp ≈ 1e-6).
	for x := -87.0; x <= 88.0; x += 0.0137 {
		got := Exp32(float32(x))
		want := math.Exp(x)
		if e := relErr32(got, want); e > 5e-6 {
			t.Fatalf("Exp32(%v) = %v, want %v (rel err %v)", x, got, want, e)
		}
	}
	if got := Exp32(0); got != 1 {
		t.Fatalf("Exp32(0) = %v, want 1", got)
	}
	if got := Exp32(200); !math.IsInf(float64(got), 1) {
		t.Fatalf("Exp32(200) = %v, want +Inf", got)
	}
	if got := Exp32(-200); got != 0 {
		t.Fatalf("Exp32(-200) = %v, want 0", got)
	}
	if got := Exp32(float32(math.NaN())); got == got {
		t.Fatalf("Exp32(NaN) = %v, want NaN", got)
	}
}

func TestTanh32Accuracy(t *testing.T) {
	for x := -12.0; x <= 12.0; x += 0.0031 {
		got := Tanh32(float32(x))
		want := math.Tanh(x)
		if e := relErr32(got, want); e > 5e-6 {
			t.Fatalf("Tanh32(%v) = %v, want %v (rel err %v)", x, got, want, e)
		}
	}
	if got := Tanh32(0); got != 0 {
		t.Fatalf("Tanh32(0) = %v, want 0", got)
	}
	// Saturation and odd symmetry at the clamp boundary.
	if got := Tanh32(50); math.Abs(float64(got)-1) > 1e-6 {
		t.Fatalf("Tanh32(50) = %v, want ≈1", got)
	}
	for _, x := range []float32{0.1, 1.5, 7, 30} {
		if Tanh32(-x) != -Tanh32(x) {
			t.Fatalf("Tanh32 not odd at %v: %v vs %v", x, Tanh32(-x), -Tanh32(x))
		}
	}
	if got := Tanh32(float32(math.NaN())); got == got {
		t.Fatalf("Tanh32(NaN) = %v, want NaN", got)
	}
}

func TestSigmoid32Accuracy(t *testing.T) {
	for x := -30.0; x <= 30.0; x += 0.0071 {
		got := Sigmoid32(float32(x))
		want := 1 / (1 + math.Exp(-x))
		if e := relErr32(got, want); e > 5e-6 {
			t.Fatalf("Sigmoid32(%v) = %v, want %v (rel err %v)", x, got, want, e)
		}
	}
	if got := Sigmoid32(0); got != 0.5 {
		t.Fatalf("Sigmoid32(0) = %v, want 0.5", got)
	}
	// The stable branch keeps tiny tails finite and positive.
	if got := Sigmoid32(-80); got < 0 || got > 1e-30 {
		t.Fatalf("Sigmoid32(-80) = %v, want tiny positive", got)
	}
	if got := Sigmoid32(80); got != 1 {
		t.Fatalf("Sigmoid32(80) = %v, want 1", got)
	}
}
