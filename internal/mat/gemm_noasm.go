//go:build !amd64

package mat

// hasAVX512 mirrors the amd64 detection flag so tests that force the scalar
// path compile everywhere.
var hasAVX512 = false

// gemmAsmInto has no vector implementation off amd64; MatMulInto always takes
// the scalar blocked path.
func gemmAsmInto(dst, a, b *Mat) bool { return false }

func addVecFast(dst, src Vec) { dst.Add(src) }
