//go:build amd64

package mat

// AVX-512 fast paths for the quantized kernel family (quant_amd64.s).
//
// Integer path: all int8 kernels fill the identical int32 accumulator — the
// raw offset-binary dot Σ u8(a)·s8(w) — because integer addition is
// associative, so the VNNI dword groups, the VPMADDWD word pairs, and the
// scalar loop can reduce in any order and still agree bit for bit. The
// shared dequantization then happens once, in Go.
//
// Float32 path: the f32saxpy kernels follow gemm_amd64.s exactly — lanes
// span output columns, one unfused VMULPS + VADDPS per k in ascending k
// order — so MatMulF32Into's vector path rounds identically to its scalar
// fallback. No FMA anywhere.

//go:noescape
func int8DotVNNI(acc *int32, a *uint8, packed *int8, groups, blocks int)

//go:noescape
func int8GemvMadd(acc *int32, a *uint8, w *int8, kp, rows int)

//go:noescape
func f32saxpy2x32(k int, a0, a1, bp, d0, d1 *float32, bstride int)

//go:noescape
func f32saxpy1x32(k int, a0, bp, d0 *float32, bstride int)

//go:noescape
func f32saxpy2x16(k int, a0, a1, bp, d0, d1 *float32, bstride int)

//go:noescape
func f32saxpy1x16(k int, a0, bp, d0 *float32, bstride int)

// hasAVX512VNNI / hasAVX512BW gate the two int8 vector kernels. Tests flip
// them (and hasAVX512) to force every downgrade path and compare results.
var (
	hasAVX512VNNI = hasAVX512 && cpuidFeature(7, 0, regECX, 11) // AVX512_VNNI
	hasAVX512BW   = hasAVX512 && cpuidFeature(7, 0, regEBX, 30) // AVX512BW
)

type cpuidReg int

const (
	regEBX cpuidReg = iota
	regECX
)

func cpuidFeature(leaf, sub uint32, reg cpuidReg, bit uint) bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < leaf {
		return false
	}
	_, b, c, _ := cpuid(leaf, sub)
	switch reg {
	case regEBX:
		return b&(1<<bit) != 0
	default:
		return c&(1<<bit) != 0
	}
}

// useVNNI reports whether QuantizeRows should build the VNNI-interleaved
// weight copy.
func useVNNI() bool { return hasAVX512VNNI }

// int8GemvInto fills acc[0:w.Rows] with the offset-binary dot of one
// activation row against every weight row, picking the fastest kernel the
// CPU supports. The VNNI path covers full 16-row blocks via the interleaved
// copy; its row tail and the no-VNNI path run on the row-major VPMADDWD
// kernel, and pre-AVX-512 machines take the scalar loop. All paths produce
// the same int32 bits.
func int8GemvInto(acc []int32, arow []uint8, w *Int8Weights) {
	switch {
	case hasAVX512VNNI && w.vnni != nil:
		full := w.vnniBlocks * 16
		int8DotVNNI(&acc[0], &arow[0], &w.vnni[0], w.KP/4, w.vnniBlocks)
		if tail := w.Rows - full; tail > 0 {
			if hasAVX512BW {
				int8GemvMadd(&acc[full], &arow[0], &w.Data[full*w.KP], w.KP, tail)
			} else {
				int8GemvGo(acc[full:], arow, w.Data[full*w.KP:], w.KP)
			}
		}
	case hasAVX512BW:
		int8GemvMadd(&acc[0], &arow[0], &w.Data[0], w.KP, w.Rows)
	default:
		int8GemvGo(acc, arow, w.Data, w.KP)
	}
}

// gemm32AsmInto computes dst = a·b with the float32 AVX-512 microkernels and
// returns true, or returns false with dst untouched when the CPU lacks
// AVX-512 or the shape is degenerate. Column tiles go 32-wide, then 16-wide,
// then a scalar tail; rows go in pairs with a single-row remainder — the
// float32 twin of gemmAsmInto.
func gemm32AsmInto(dst, a, b *Mat32) bool {
	n := b.Cols
	k := a.Cols
	if !hasAVX512 || n < 16 || k == 0 || a.Rows == 0 {
		return false
	}
	bstride := n * 4 // bytes per packed B row
	n32 := n &^ 31
	n16 := n &^ 15
	i := 0
	for ; i+2 <= a.Rows; i += 2 {
		a0 := a.Data[i*k : (i+1)*k]
		a1 := a.Data[(i+1)*k : (i+2)*k]
		d0 := dst.Data[i*n : (i+1)*n]
		d1 := dst.Data[(i+1)*n : (i+2)*n]
		for j := 0; j < n32; j += 32 {
			f32saxpy2x32(k, &a0[0], &a1[0], &b.Data[j], &d0[j], &d1[j], bstride)
		}
		for j := n32; j < n16; j += 16 {
			f32saxpy2x16(k, &a0[0], &a1[0], &b.Data[j], &d0[j], &d1[j], bstride)
		}
		for j := n16; j < n; j++ {
			var s0, s1 float32
			for kk := 0; kk < k; kk++ {
				bv := b.Data[kk*n+j]
				s0 += a0[kk] * bv
				s1 += a1[kk] * bv
			}
			d0[j], d1[j] = s0, s1
		}
	}
	if i < a.Rows {
		a0 := a.Data[i*k : (i+1)*k]
		d0 := dst.Data[i*n : (i+1)*n]
		for j := 0; j < n32; j += 32 {
			f32saxpy1x32(k, &a0[0], &b.Data[j], &d0[j], bstride)
		}
		for j := n32; j < n16; j += 16 {
			f32saxpy1x16(k, &a0[0], &b.Data[j], &d0[j], bstride)
		}
		for j := n16; j < n; j++ {
			var s float32
			for kk := 0; kk < k; kk++ {
				s += a0[kk] * b.Data[kk*n+j]
			}
			d0[j] = s
		}
	}
	return true
}
