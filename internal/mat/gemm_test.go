package mat

import (
	"math/rand"
	"testing"
)

// naiveMatMul is the reference triple loop: for each output element the
// products accumulate in ascending k order. Every blocked kernel must agree
// with it bit for bit.
func naiveMatMul(a, b *Mat) *Mat {
	out := NewMat(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func randMat(rng *rand.Rand, rows, cols int) *Mat {
	m := NewMat(rows, cols)
	for i := range m.Data {
		// Mixed magnitudes and signs so reordered summation would actually
		// diverge in the low bits if a kernel broke the k-order contract.
		m.Data[i] = (rng.Float64() - 0.5) * float64(int(1)<<(rng.Intn(20)))
		if rng.Intn(16) == 0 {
			m.Data[i] = 0 // exact zeros: the branch the old kernel special-cased
		}
	}
	return m
}

func transpose(m *Mat) *Mat {
	t := NewMat(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

func requireBitEqual(t *testing.T, name string, want, got *Mat) {
	t.Helper()
	if want.Rows != got.Rows || want.Cols != got.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i, w := range want.Data {
		if got.Data[i] != w {
			t.Fatalf("%s: element %d = %v, want %v (bit-exact)", name, i, got.Data[i], w)
		}
	}
}

// gemmShapes are adversarial: degenerate rows/cols, 1xN, Nx1, shapes not a
// multiple of any tile or block size, and one shape wider than gemmColBlock.
var gemmShapes = []struct{ m, k, n int }{
	{0, 0, 0}, {0, 5, 3}, {3, 0, 5}, {1, 1, 1},
	{1, 64, 1}, {1, 7, 129}, {129, 7, 1},
	{2, 3, 4}, {3, 3, 3}, {5, 17, 9}, {7, 64, 5},
	{13, 64, 128}, {48, 64, 64}, {6, 31, 300},
}

func TestMatMulIntoMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, sh := range gemmShapes {
		a := randMat(rng, sh.m, sh.k)
		b := randMat(rng, sh.k, sh.n)
		want := naiveMatMul(a, b)
		got := NewMat(sh.m, sh.n)
		// Pre-poison dst: MatMulInto must fully overwrite it.
		for i := range got.Data {
			got.Data[i] = 1e300
		}
		MatMulInto(got, a, b)
		requireBitEqual(t, "MatMulInto", want, got)
		requireBitEqual(t, "MatMul", want, MatMul(a, b))
	}
}

// TestMatMulIntoScalarVsVector pins the bit-identity of the AVX-512 path
// against the pure-Go blocked kernel on the same inputs. On machines without
// AVX-512 both runs take the scalar path and the test is vacuously green.
func TestMatMulIntoScalarVsVector(t *testing.T) {
	if !hasAVX512 {
		t.Skip("no AVX-512; scalar path is the only path")
	}
	rng := rand.New(rand.NewSource(45))
	defer func() { hasAVX512 = true }()
	for _, sh := range gemmShapes {
		a := randMat(rng, sh.m, sh.k)
		b := randMat(rng, sh.k, sh.n)
		hasAVX512 = false
		scalar := NewMat(sh.m, sh.n)
		MatMulInto(scalar, a, b)
		hasAVX512 = true
		vector := NewMat(sh.m, sh.n)
		for i := range vector.Data {
			vector.Data[i] = 1e300 // vector path must fully overwrite too
		}
		MatMulInto(vector, a, b)
		requireBitEqual(t, "scalar-vs-vector", scalar, vector)
	}
}

func TestMulABtIntoMatchesMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, sh := range gemmShapes {
		a := randMat(rng, sh.m, sh.k)
		b := randMat(rng, sh.k, sh.n)
		bt := transpose(b)
		want := naiveMatMul(a, b)
		got := NewMat(sh.m, sh.n)
		MulABtInto(got, a, bt)
		requireBitEqual(t, "MulABtInto", want, got)

		// Row-for-row agreement with MulVec — the kernel the serial
		// inference path uses — is the exactness contract the batched
		// forward relies on.
		row := NewVec(sh.n)
		for i := 0; i < sh.m; i++ {
			bt.MulVec(row, a.Row(i))
			for j, w := range row {
				if got.At(i, j) != w {
					t.Fatalf("shape %v: (%d,%d) = %v, want MulVec's %v", sh, i, j, got.At(i, j), w)
				}
			}
		}
	}
}

func TestParallelMulABtIntoMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for _, workers := range []int{0, 1, 2, 3, 8} {
		for _, sh := range gemmShapes {
			a := randMat(rng, sh.m, sh.k)
			bt := randMat(rng, sh.n, sh.k)
			want := NewMat(sh.m, sh.n)
			MulABtInto(want, a, bt)
			got := NewMat(sh.m, sh.n)
			ParallelMulABtInto(got, a, bt, workers)
			requireBitEqual(t, "ParallelMulABtInto", want, got)
		}
	}
}

func BenchmarkMulVecDense(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	w := randMat(rng, 64, 64)
	x := randMat(rng, 13, 64) // one 13-token sequence, row-at-a-time
	y := NewVec(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < x.Rows; r++ {
			w.MulVec(y, x.Row(r))
		}
	}
}

func BenchmarkMulABtInto(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	w := randMat(rng, 64, 64)
	x := randMat(rng, 13, 64)
	y := NewMat(13, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulABtInto(y, x, w)
	}
}

// TestAddRowsScalarVsVector pins the AVX-512 element-wise add against the
// scalar Vec.Add across awkward widths (tails, sub-vector-width rows).
func TestAddRowsScalarVsVector(t *testing.T) {
	if !hasAVX512 {
		t.Skip("no AVX-512; scalar path is the only path")
	}
	defer func() { hasAVX512 = true }()
	rng := rand.New(rand.NewSource(17))
	for _, shape := range [][2]int{{1, 1}, {3, 7}, {4, 8}, {5, 9}, {2, 31}, {6, 64}, {3, 129}} {
		rows, cols := shape[0], shape[1]
		y := randMat(rng, rows, cols)
		b := randMat(rng, 1, cols).Row(0)
		want := NewMat(rows, cols)
		copy(want.Data, y.Data)
		hasAVX512 = false
		AddRows(want, b)
		hasAVX512 = true
		AddRows(y, b)
		requireBitEqual(t, "AddRows", y, want)
	}
}
