// AVX-512 GEMM microkernels for MatMulInto's fast path. See gemm_amd64.go
// for the exactness argument: lanes span output columns, each lane performs
// one unfused VMULPD + VADDPD per k in ascending k order, so every output
// element rounds exactly like the scalar kernels. No FMA anywhere — fusing
// would change the rounding and break bit-identity with the serial path.

#include "textflag.h"

// func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxArg+0(FP), AX
	MOVL ecxArg+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func saxpy2x32(k int, a0, a1, bp, d0, d1 *float64, bstride int)
//
// Computes a 2-row × 32-column tile of dst = A·B with B packed row-major
// (K×N): d0[0:32] = Σ_k a0[k]·bp[k*N+0:32], d1 likewise for a1. bstride is
// the byte stride of one packed B row (N*8). Eight zmm accumulators, each
// owning 8 output columns of one row; per k iteration every accumulator
// receives exactly one unfused multiply-add, so each output element sums
// its products in ascending k order — bit-identical to the scalar loop.
TEXT ·saxpy2x32(SB), NOSPLIT, $0-56
	MOVQ k+0(FP), CX
	MOVQ a0+8(FP), SI
	MOVQ a1+16(FP), DI
	MOVQ bp+24(FP), BX
	MOVQ d0+32(FP), R8
	MOVQ d1+40(FP), R9
	MOVQ bstride+48(FP), DX
	VPXORQ Z0, Z0, Z0
	VPXORQ Z1, Z1, Z1
	VPXORQ Z2, Z2, Z2
	VPXORQ Z3, Z3, Z3
	VPXORQ Z4, Z4, Z4
	VPXORQ Z5, Z5, Z5
	VPXORQ Z6, Z6, Z6
	VPXORQ Z7, Z7, Z7

loop2x32:
	VBROADCASTSD (SI), Z8
	VBROADCASTSD (DI), Z9
	VMOVUPD (BX), Z10
	VMOVUPD 64(BX), Z11
	VMOVUPD 128(BX), Z12
	VMOVUPD 192(BX), Z13
	VMULPD Z10, Z8, Z14
	VADDPD Z14, Z0, Z0
	VMULPD Z11, Z8, Z15
	VADDPD Z15, Z1, Z1
	VMULPD Z12, Z8, Z16
	VADDPD Z16, Z2, Z2
	VMULPD Z13, Z8, Z17
	VADDPD Z17, Z3, Z3
	VMULPD Z10, Z9, Z18
	VADDPD Z18, Z4, Z4
	VMULPD Z11, Z9, Z19
	VADDPD Z19, Z5, Z5
	VMULPD Z12, Z9, Z20
	VADDPD Z20, Z6, Z6
	VMULPD Z13, Z9, Z21
	VADDPD Z21, Z7, Z7
	ADDQ $8, SI
	ADDQ $8, DI
	ADDQ DX, BX
	DECQ CX
	JNZ  loop2x32

	VMOVUPD Z0, (R8)
	VMOVUPD Z1, 64(R8)
	VMOVUPD Z2, 128(R8)
	VMOVUPD Z3, 192(R8)
	VMOVUPD Z4, (R9)
	VMOVUPD Z5, 64(R9)
	VMOVUPD Z6, 128(R9)
	VMOVUPD Z7, 192(R9)
	VZEROUPPER
	RET

// func saxpy1x32(k int, a0, bp, d0 *float64, bstride int)
//
// Single-row remainder of saxpy2x32: a 1×32 tile with four accumulators.
TEXT ·saxpy1x32(SB), NOSPLIT, $0-40
	MOVQ k+0(FP), CX
	MOVQ a0+8(FP), SI
	MOVQ bp+16(FP), BX
	MOVQ d0+24(FP), R8
	MOVQ bstride+32(FP), DX
	VPXORQ Z0, Z0, Z0
	VPXORQ Z1, Z1, Z1
	VPXORQ Z2, Z2, Z2
	VPXORQ Z3, Z3, Z3

loop1x32:
	VBROADCASTSD (SI), Z8
	VMOVUPD (BX), Z10
	VMOVUPD 64(BX), Z11
	VMOVUPD 128(BX), Z12
	VMOVUPD 192(BX), Z13
	VMULPD Z10, Z8, Z14
	VADDPD Z14, Z0, Z0
	VMULPD Z11, Z8, Z15
	VADDPD Z15, Z1, Z1
	VMULPD Z12, Z8, Z16
	VADDPD Z16, Z2, Z2
	VMULPD Z13, Z8, Z17
	VADDPD Z17, Z3, Z3
	ADDQ $8, SI
	ADDQ DX, BX
	DECQ CX
	JNZ  loop1x32

	VMOVUPD Z0, (R8)
	VMOVUPD Z1, 64(R8)
	VMOVUPD Z2, 128(R8)
	VMOVUPD Z3, 192(R8)
	VZEROUPPER
	RET

// func saxpy2x8(k int, a0, a1, bp, d0, d1 *float64, bstride int)
//
// Narrow column tile (one zmm per row) for N tails in [8, 32): same
// per-element contract, two accumulators.
TEXT ·saxpy2x8(SB), NOSPLIT, $0-56
	MOVQ k+0(FP), CX
	MOVQ a0+8(FP), SI
	MOVQ a1+16(FP), DI
	MOVQ bp+24(FP), BX
	MOVQ d0+32(FP), R8
	MOVQ d1+40(FP), R9
	MOVQ bstride+48(FP), DX
	VPXORQ Z0, Z0, Z0
	VPXORQ Z4, Z4, Z4

loop2x8:
	VBROADCASTSD (SI), Z8
	VBROADCASTSD (DI), Z9
	VMOVUPD (BX), Z10
	VMULPD Z10, Z8, Z14
	VADDPD Z14, Z0, Z0
	VMULPD Z10, Z9, Z18
	VADDPD Z18, Z4, Z4
	ADDQ $8, SI
	ADDQ $8, DI
	ADDQ DX, BX
	DECQ CX
	JNZ  loop2x8

	VMOVUPD Z0, (R8)
	VMOVUPD Z4, (R9)
	VZEROUPPER
	RET

// func saxpy1x8(k int, a0, bp, d0 *float64, bstride int)
TEXT ·saxpy1x8(SB), NOSPLIT, $0-40
	MOVQ k+0(FP), CX
	MOVQ a0+8(FP), SI
	MOVQ bp+16(FP), BX
	MOVQ d0+24(FP), R8
	MOVQ bstride+32(FP), DX
	VPXORQ Z0, Z0, Z0

loop1x8:
	VBROADCASTSD (SI), Z8
	VMOVUPD (BX), Z10
	VMULPD Z10, Z8, Z14
	VADDPD Z14, Z0, Z0
	ADDQ $8, SI
	ADDQ DX, BX
	DECQ CX
	JNZ  loop1x8

	VMOVUPD Z0, (R8)
	VZEROUPPER
	RET

// func vadd8n(dst, src *float64, n8 int)
// dst[i] += src[i] for i in [0, 8*n8). Element-wise: one add per element, so
// lane width cannot reorder any sum — bit-identical to the scalar loop.
TEXT ·vadd8n(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n8+16(FP), CX
	TESTQ CX, CX
	JZ vadd_done
vadd_loop:
	VMOVUPD (DI), Z0
	VADDPD (SI), Z0, Z0
	VMOVUPD Z0, (DI)
	ADDQ $64, DI
	ADDQ $64, SI
	DECQ CX
	JNZ vadd_loop
	VZEROUPPER
vadd_done:
	RET
