package mat

import (
	"math"
	"math/rand"
	"testing"
)

func randMat32(rng *rand.Rand, rows, cols int) *Mat32 {
	m := NewMat32(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32((rng.Float64() - 0.5) * float64(int(1)<<(rng.Intn(12))))
		if rng.Intn(16) == 0 {
			m.Data[i] = 0
		}
	}
	return m
}

// quantKernelShapes stress the dispatch boundaries: rows below/at/above the
// 16-row VNNI block, K below/at/above one QuantK group, and the exact bench
// shapes (4H×In LSTM gates, NumLabels×OutDim projections).
var quantKernelShapes = []struct{ m, n, k int }{
	{1, 1, 1},
	{1, 16, 64},
	{3, 15, 63}, // all-tail: no full VNNI block, padded K
	{2, 16, 64},
	{5, 17, 65},
	{4, 32, 64},
	{7, 33, 100},
	{8, 128, 32},
	{12, 64, 129},
	{1, 9, 48},
}

// quantNaiveRef recomputes dequant(Aq·Wᵀ)+bias from the quantized operands
// with plain nested loops and the same scalar dequantization formula —
// independent of every kernel path.
func quantNaiveRef(rows int, aq []uint8, aScales []float32, w *Int8Weights, bias []float32) *Mat32 {
	out := NewMat32(rows, w.Rows)
	for i := 0; i < rows; i++ {
		arow := aq[i*w.KP : (i+1)*w.KP]
		for j := 0; j < w.Rows; j++ {
			wrow := w.Data[j*w.KP : (j+1)*w.KP]
			var acc int32
			for k := range arow {
				acc += int32(arow[k]) * int32(wrow[k])
			}
			v := float32(acc-w.Corr[j]) * (aScales[i] * w.Scales[j])
			if bias != nil {
				v += bias[j]
			}
			out.Data[i*w.Rows+j] = v
		}
	}
	return out
}

func quantizeActivations(a *Mat32) (aq []uint8, scales []float32) {
	kp := padK(a.Cols)
	aq = make([]uint8, a.Rows*kp)
	scales = make([]float32, a.Rows)
	for i := 0; i < a.Rows; i++ {
		scales[i] = QuantizeRowU8(aq[i*kp:(i+1)*kp], a.Row(i))
	}
	return aq, scales
}

func mulInt8(rows int, aq []uint8, aScales []float32, w *Int8Weights, bias []float32) *Mat32 {
	dst := NewMat32(rows, w.Rows)
	acc := make([]int32, w.Rows)
	MulABtInt8Into(dst, aq, aScales, w, bias, acc)
	return dst
}

func requireBitEqual32(t *testing.T, name string, want, got *Mat32) {
	t.Helper()
	if want.Rows != got.Rows || want.Cols != got.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i, wv := range want.Data {
		if got.Data[i] != wv {
			t.Fatalf("%s: element %d = %v, want %v (bit-exact)", name, i, got.Data[i], wv)
		}
	}
}

func TestMulABtInt8MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, sh := range quantKernelShapes {
		wf := randMat(rng, sh.n, sh.k)
		w := QuantizeRows(wf)
		a := randMat32(rng, sh.m, sh.k)
		aq, scales := quantizeActivations(a)
		bias := make([]float32, sh.n)
		for j := range bias {
			bias[j] = float32(rng.NormFloat64())
		}
		want := quantNaiveRef(sh.m, aq, scales, w, bias)
		got := mulInt8(sh.m, aq, scales, w, bias)
		requireBitEqual32(t, "int8 gemm with bias", want, got)
		wantNB := quantNaiveRef(sh.m, aq, scales, w, nil)
		gotNB := mulInt8(sh.m, aq, scales, w, nil)
		requireBitEqual32(t, "int8 gemm nil bias", wantNB, gotNB)
	}
}

// TestInt8KernelPathsBitIdentical pins the cross-path contract: the VNNI
// kernel, the VPMADDWD kernel, and the scalar Go loop must fill identical
// int32 accumulators, so the dequantized outputs are identical bits. The
// test only ever downgrades the feature flags, never force-enables them.
func TestInt8KernelPathsBitIdentical(t *testing.T) {
	if !hasAVX512BW && !hasAVX512VNNI {
		t.Skip("no AVX-512 int8 kernels on this machine; only the Go path exists")
	}
	savedVNNI, savedBW := hasAVX512VNNI, hasAVX512BW
	defer func() { hasAVX512VNNI, hasAVX512BW = savedVNNI, savedBW }()

	rng := rand.New(rand.NewSource(12))
	for _, sh := range quantKernelShapes {
		// Quantize with the real flags so the VNNI pack exists when it can.
		hasAVX512VNNI, hasAVX512BW = savedVNNI, savedBW
		wf := randMat(rng, sh.n, sh.k)
		w := QuantizeRows(wf)
		a := randMat32(rng, sh.m, sh.k)
		aq, scales := quantizeActivations(a)
		bias := make([]float32, sh.n)
		for j := range bias {
			bias[j] = float32(rng.NormFloat64())
		}

		full := mulInt8(sh.m, aq, scales, w, bias)
		if savedVNNI {
			hasAVX512VNNI = false // force the madd kernel over the same weights
			requireBitEqual32(t, "vnni vs madd", full, mulInt8(sh.m, aq, scales, w, bias))
		}
		hasAVX512VNNI, hasAVX512BW = false, false // force the scalar loop
		requireBitEqual32(t, "asm vs go", full, mulInt8(sh.m, aq, scales, w, bias))
	}
}

func TestParallelMulABtInt8MatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	wf := randMat(rng, 48, 96)
	w := QuantizeRows(wf)
	a := randMat32(rng, 70, 96)
	aq, scales := quantizeActivations(a)
	bias := make([]float32, w.Rows)
	for j := range bias {
		bias[j] = float32(rng.NormFloat64())
	}
	want := mulInt8(a.Rows, aq, scales, w, bias)
	for _, workers := range []int{1, 2, 3, 4, 8, 64} {
		dst := NewMat32(a.Rows, w.Rows)
		acc := make([]int32, workers*w.Rows)
		ParallelMulABtInt8Into(dst, aq, scales, w, bias, acc, workers)
		requireBitEqual32(t, "parallel int8 gemm", want, dst)
	}
}

func TestQuantizeRowsEdgeCases(t *testing.T) {
	w := NewMat(4, 3)
	// row 0: all zero — scale must guard to 1, codes 0
	// row 1: denormal values whose scale would underflow float32 — guard to 1
	// row 2: huge values whose scale would overflow float32 — guard to 1
	// row 3: ±max exercising the clamp
	w.Data = []float64{
		0, 0, 0,
		5e-324, -5e-324, 0,
		math.MaxFloat64, -math.MaxFloat64, 1,
		3, -3, 1.5,
	}
	q := QuantizeRows(w)
	for r := 0; r < 3; r++ {
		if q.Scales[r] != 1 {
			t.Fatalf("row %d: scale = %v, want guard value 1", r, q.Scales[r])
		}
	}
	for k := 0; k < q.KP; k++ {
		if q.Data[k] != 0 {
			t.Fatalf("zero row quantized to nonzero code %d at %d", q.Data[k], k)
		}
	}
	if got := q.Data[2*q.KP : 2*q.KP+3]; got[0] != 127 || got[1] != -127 || got[2] != 1 {
		t.Fatalf("overflow row codes = %v, want [127 -127 1]", got)
	}
	if q.Data[3*q.KP] != 127 || q.Data[3*q.KP+1] != -127 {
		t.Fatalf("±max row codes = %d,%d, want 127,-127", q.Data[3*q.KP], q.Data[3*q.KP+1])
	}
	if q.Corr[3] != 128*(127-127+int32(q.Data[3*q.KP+2])) {
		t.Fatalf("Corr[3] = %d inconsistent with codes", q.Corr[3])
	}

	nan := NewMat(1, 2)
	nan.Data = []float64{math.NaN(), 2}
	qn := QuantizeRows(nan)
	if qn.Data[0] != 0 {
		t.Fatalf("NaN weight quantized to %d, want 0", qn.Data[0])
	}
	if qn.Data[1] != 127 {
		t.Fatalf("max weight beside NaN = %d, want 127", qn.Data[1])
	}
}

// TestQuantRoundTripFixedPoint: quantize→dequantize→requantize must
// reproduce the codes and scales exactly. The fuzz target generalizes this;
// the unit test pins the deterministic seed shapes.
func TestQuantRoundTripFixedPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, rows := range []int{1, 3, 16, 17} {
		w := randMat(rng, rows, 33)
		q1 := QuantizeRows(w)
		q2 := QuantizeRows(q1.Dequantize())
		for i := range q1.Scales {
			if q1.Scales[i] != q2.Scales[i] {
				t.Fatalf("row %d: requantized scale %v != %v", i, q2.Scales[i], q1.Scales[i])
			}
		}
		for i := range q1.Data {
			if q1.Data[i] != q2.Data[i] {
				t.Fatalf("code %d: requantized %d != %d", i, q2.Data[i], q1.Data[i])
			}
		}
	}
}

func TestQuantizeRowU8Padding(t *testing.T) {
	src := []float32{1, -2, 3}
	dst := make([]uint8, padK(len(src)))
	s := QuantizeRowU8(dst, src)
	if s <= 0 {
		t.Fatalf("scale = %v, want > 0", s)
	}
	for k := len(src); k < len(dst); k++ {
		if dst[k] != 128 {
			t.Fatalf("padding byte %d = %d, want 128 (offset-binary zero)", k, dst[k])
		}
	}
	if dst[2] != 128+127 {
		t.Fatalf("max element code = %d, want %d", dst[2], 128+127)
	}
}
