package index

import (
	"bytes"
	"testing"
)

// flatMeasure is a trivial deterministic similarity for persistence fuzzing:
// snapshot decode never consults it, and keeping it taxonomy-free keeps the
// fuzz loop fast.
type flatMeasure struct{}

func (flatMeasure) Phrase(a, b string) float64 {
	if a == b {
		return 1
	}
	return 0.3
}

// FuzzSnapshotDecode fuzzes Index.Load with adversarial bytes. Invariants:
// decode never panics; a rejected snapshot leaves the index unchanged; and an
// accepted snapshot is stable — re-saving the loaded index and loading that
// again reproduces the snapshot byte for byte.
func FuzzSnapshotDecode(f *testing.F) {
	// A well-formed snapshot, produced by Save.
	good := New(flatMeasure{}, 0.5)
	good.Build([]string{"good food", "nice staff"}, []EntityReviews{
		{EntityID: "vue", ReviewCount: 4, Tags: []string{"good food", "nice staff"}},
		{EntityID: "hut", ReviewCount: 2, Tags: []string{"good food"}},
	})
	var wellFormed bytes.Buffer
	if err := good.Save(&wellFormed); err != nil {
		f.Fatal(err)
	}
	f.Add(wellFormed.Bytes())
	// Corrupt shapes the decoder must reject without panicking (the same
	// cases are pinned as regression tests in persist_test.go).
	f.Add([]byte(`{"version":1,"tags":[{"tag":"a"`))
	f.Add([]byte(`{"version":99,"tags":[]}`))
	f.Add([]byte(`{"version":1,"tags":[{"tag":"","entries":[]}]}`))
	f.Add([]byte(`{"version":1,"tags":[{"tag":"a","entries":[{"EntityID":"x","Degree":0.5},{"EntityID":"x","Degree":0.4}]}]}`))
	f.Add([]byte(`{"version":1,"tags":[{"tag":"a","entries":[{"EntityID":"x","Degree":0.1},{"EntityID":"y","Degree":0.9}]}]}`))
	f.Add([]byte(`{"version":1,"tags":[{"tag":"a","entries":[{"EntityID":"x","Degree":-1}]}]}`))
	f.Add([]byte(`{"version":1,"tags":[]}garbage`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte(`[1,2,3]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		ix := New(flatMeasure{}, 0.5)
		ix.Build([]string{"sentinel tag"}, []EntityReviews{
			{EntityID: "keep", ReviewCount: 1, Tags: []string{"sentinel tag"}},
		})
		wantTags := ix.Tags()

		if err := ix.Load(bytes.NewReader(data)); err != nil {
			// Rejected input must leave the index untouched.
			gotTags := ix.Tags()
			if len(gotTags) != len(wantTags) || gotTags[0] != wantTags[0] {
				t.Fatalf("failed Load mutated index: %v → %v (input %q)", wantTags, gotTags, data)
			}
			return
		}

		// Accepted input must round-trip byte-stably through Save/Load/Save.
		var first bytes.Buffer
		if err := ix.Save(&first); err != nil {
			t.Fatalf("save after accepted load: %v (input %q)", err, data)
		}
		re := New(flatMeasure{}, 0.5)
		if err := re.Load(bytes.NewReader(first.Bytes())); err != nil {
			t.Fatalf("own Save output rejected: %v (input %q)", err, data)
		}
		var second bytes.Buffer
		if err := re.Save(&second); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("snapshot not byte-stable (input %q):\nfirst:  %s\nsecond: %s", data, first.Bytes(), second.Bytes())
		}
	})
}
