package index

import "sync"

// History is the user tag history of §3.1: unknown tags extracted from user
// utterances queue here until the next indexing round. It is safe for
// concurrent use — queries on parallel conversations append to one shared
// history.
//
// The history remembers every tag it has ever queued (so a drained tag is
// not re-queued on the next utterance). Over a long conversational session
// that memory grows without bound unless capped: SetCap bounds the seen-set
// to the n most recently first-seen tags, evicting oldest-first. An evicted
// tag is forgotten entirely — dropped from the pending queue if still queued,
// and re-queued like a brand-new tag if a later utterance mentions it again.
type History struct {
	mu      sync.Mutex
	cap     int
	pending []string
	seen    map[string]bool
	// arrival records seen tags oldest-first, driving eviction order.
	arrival []string
}

// NewHistory returns an empty, unbounded history.
func NewHistory() *History { return &History{seen: map[string]bool{}} }

// SetCap bounds the history's memory to the n most recently first-seen tags
// (0 or negative removes the bound). If the history already holds more than
// n tags, the oldest are evicted immediately.
func (h *History) SetCap(n int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if n < 0 {
		n = 0
	}
	h.cap = n
	h.evictLocked()
}

// Cap returns the configured bound (0 = unbounded).
func (h *History) Cap() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.cap
}

// Add queues a tag once; duplicates and the empty tag are ignored. When the
// cap is exceeded the oldest-seen tag is evicted.
func (h *History) Add(tag string) {
	if tag == "" {
		return
	}
	h.mu.Lock()
	if !h.seen[tag] {
		h.seen[tag] = true
		h.arrival = append(h.arrival, tag)
		h.pending = append(h.pending, tag)
		h.evictLocked()
	}
	h.mu.Unlock()
}

// evictLocked drops oldest-seen tags until the cap holds; h.mu must be held.
func (h *History) evictLocked() {
	if h.cap <= 0 {
		return
	}
	for len(h.arrival) > h.cap {
		oldest := h.arrival[0]
		h.arrival = h.arrival[1:]
		delete(h.seen, oldest)
		for i, t := range h.pending {
			if t == oldest {
				h.pending = append(h.pending[:i], h.pending[i+1:]...)
				break
			}
		}
	}
}

// Pending returns queued tags in arrival order (a defensive copy; the query
// path should prefer Each, which does not allocate).
func (h *History) Pending() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]string(nil), h.pending...)
}

// Each calls f for every queued tag in arrival order without copying,
// stopping early when f returns false. f must not call back into the
// history (the lock is held).
func (h *History) Each(f func(tag string) bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, t := range h.pending {
		if !f(t) {
			return
		}
	}
}

// Drain returns and clears the queue (the seen-set persists so a drained
// tag is not re-queued).
func (h *History) Drain() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := h.pending
	h.pending = nil
	return out
}

// Requeue returns previously drained tags to the front of the queue — the
// recovery path for an indexing round that was cancelled after draining.
// Tags already queued or no longer remembered (evicted since the drain) are
// skipped.
func (h *History) Requeue(tags []string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	queued := make(map[string]bool, len(h.pending))
	for _, t := range h.pending {
		queued[t] = true
	}
	var front []string
	for _, t := range tags {
		if h.seen[t] && !queued[t] {
			front = append(front, t)
			queued[t] = true
		}
	}
	if len(front) > 0 {
		h.pending = append(front, h.pending...)
	}
}

// Len returns the number of queued tags.
func (h *History) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.pending)
}
