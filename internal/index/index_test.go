package index

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"saccs/internal/sim"
)

func testIndex() *Index { return New(sim.NewConceptual(), 0.6) }

func entities() []EntityReviews {
	return []EntityReviews{
		{EntityID: "vue", ReviewCount: 10, Tags: []string{"good food", "tasty food", "nice staff", "friendly staff"}},
		{EntityID: "hut", ReviewCount: 3, Tags: []string{"good food", "rude staff"}},
		{EntityID: "anchovy", ReviewCount: 5, Tags: []string{"amazing pizza", "creative cooking"}},
		{EntityID: "empty", ReviewCount: 2, Tags: nil},
	}
}

func TestBuildAndLookup(t *testing.T) {
	ix := testIndex()
	ix.Build([]string{"good food", "nice staff"}, entities())
	if ix.Len() != 2 || !ix.Has("good food") {
		t.Fatalf("index keys wrong: %v", ix.Tags())
	}
	food := ix.Lookup("good food")
	if len(food) < 2 {
		t.Fatalf("good food postings: %v", food)
	}
	// The entity with no matching tags must be absent.
	for _, e := range food {
		if e.EntityID == "empty" {
			t.Fatal("tagless entity indexed")
		}
	}
}

func TestDegreeOfTruthEquation1(t *testing.T) {
	ix := testIndex()
	// Entity with 1 review and a single exact tag: deg = log(2)/1 * 1.
	es := []EntityReviews{{EntityID: "e", ReviewCount: 1, Tags: []string{"good food"}}}
	ix.AddTag("good food", es)
	got := ix.Lookup("good food")
	if len(got) != 1 {
		t.Fatalf("postings: %v", got)
	}
	want := math.Log(2)
	if math.Abs(got[0].Degree-want) > 1e-12 {
		t.Fatalf("Eq.1 degree: got %v want %v", got[0].Degree, want)
	}
}

func TestReviewCountWeighting(t *testing.T) {
	// At the same mention rate, more reviews → higher degree (the paper
	// privileges entities with more reviews: statistical significance).
	ix := testIndex()
	manyTags := make([]string, 25)
	for i := range manyTags {
		manyTags[i] = "good food"
	}
	es := []EntityReviews{
		{EntityID: "few", ReviewCount: 2, Tags: []string{"good food"}},
		{EntityID: "many", ReviewCount: 50, Tags: manyTags},
	}
	ix.AddTag("good food", es)
	got := ix.Lookup("good food")
	if got[0].EntityID != "many" {
		t.Fatalf("review-count weighting failed: %v", got)
	}
}

func TestFrequencyFactorAblation(t *testing.T) {
	// With the mention-rate factor off, a single confirmation in 50 reviews
	// scores as well as 25 confirmations; with it on, it must not.
	es := []EntityReviews{
		{EntityID: "sparse", ReviewCount: 50, Tags: []string{"good food"}},
		{EntityID: "dense", ReviewCount: 50, Tags: func() []string {
			out := make([]string, 25)
			for i := range out {
				out[i] = "good food"
			}
			return out
		}()},
	}
	on := testIndex()
	on.AddTag("good food", es)
	got := on.Lookup("good food")
	if got[0].EntityID != "dense" || got[0].Degree <= got[1].Degree {
		t.Fatalf("frequency factor should favor dense confirmation: %v", got)
	}
	off := testIndex()
	off.SetFrequencyAware(false)
	off.AddTag("good food", es)
	got = off.Lookup("good food")
	if len(got) != 2 || got[0].Degree != got[1].Degree {
		t.Fatalf("without the factor both score Eq. 1 equally: %v", got)
	}
}

func TestMeanNotSumOverMatches(t *testing.T) {
	// Eq. 1 divides by |T_e^tag|: many weak matches must not beat one
	// perfect match at equal review counts.
	ix := testIndex()
	es := []EntityReviews{
		{EntityID: "exact", ReviewCount: 5, Tags: []string{"good food"}},
		{EntityID: "weak", ReviewCount: 5, Tags: []string{"amazing pizza", "tasty dishes", "creative cooking"}},
	}
	ix.AddTag("good food", es)
	got := ix.Lookup("good food")
	if len(got) == 0 || got[0].EntityID != "exact" {
		t.Fatalf("mean semantics violated: %v", got)
	}
}

func TestConceptualMatchIndexesPizza(t *testing.T) {
	// Fig. 1: E5's "amazing pizza" must be indexed under "good food".
	ix := testIndex()
	ix.AddTag("good food", entities())
	found := false
	for _, e := range ix.Lookup("good food") {
		if e.EntityID == "anchovy" {
			found = true
		}
	}
	if !found {
		t.Fatal("conceptual similarity failed to index amazing pizza under good food")
	}
}

func TestNegativeTagsExcluded(t *testing.T) {
	ix := testIndex()
	es := []EntityReviews{
		{EntityID: "bad", ReviewCount: 5, Tags: []string{"rude staff", "unhelpful staff"}},
		{EntityID: "good", ReviewCount: 5, Tags: []string{"friendly staff"}},
	}
	ix.AddTag("nice staff", es)
	for _, e := range ix.Lookup("nice staff") {
		if e.EntityID == "bad" {
			t.Fatalf("negative mentions must not support a positive tag: %v", e)
		}
	}
}

func TestLookupSimilarUnknownTag(t *testing.T) {
	// §3.2: "delicious food" is not indexed; it must be answered from
	// similar indexed tags with degree × similarity.
	ix := testIndex()
	ix.Build([]string{"good food", "creative cooking"}, entities())
	got := ix.LookupSimilar("delicious food", 0.5)
	if len(got) == 0 {
		t.Fatal("no results for similar unknown tag")
	}
	exact := ix.Lookup("good food")
	var vueSim, vueExact float64
	for _, e := range got {
		if e.EntityID == "vue" {
			vueSim = e.Degree
		}
	}
	for _, e := range exact {
		if e.EntityID == "vue" {
			vueExact = e.Degree
		}
	}
	if vueSim <= 0 || vueSim > vueExact+1e-9 {
		t.Fatalf("similar lookup must discount by similarity: %v vs exact %v", vueSim, vueExact)
	}
}

func TestLookupSimilarSumsContributions(t *testing.T) {
	// An entity matching two similar index tags accumulates both (the S_t2
	// example sums s1·0.76 + s2·0.94 for Anchovy).
	ix := testIndex()
	ix.Build([]string{"good food", "creative cooking"}, entities())
	union := ix.LookupSimilar("delicious food", 0.3)
	var anchovy float64
	for _, e := range union {
		if e.EntityID == "anchovy" {
			anchovy = e.Degree
		}
	}
	onlyFood := 0.0
	m := sim.NewConceptual()
	s1 := m.Phrase("delicious food", "good food")
	for _, e := range ix.Lookup("good food") {
		if e.EntityID == "anchovy" {
			onlyFood = s1 * e.Degree
		}
	}
	if anchovy <= onlyFood {
		t.Fatalf("union must accumulate across tags: %v vs %v", anchovy, onlyFood)
	}
}

func TestResolve(t *testing.T) {
	ix := testIndex()
	ix.Build([]string{"good food"}, entities())
	exact := ix.Resolve("good food", 0.5)
	if len(exact) == 0 {
		t.Fatal("exact resolve empty")
	}
	similar := ix.Resolve("delicious food", 0.5)
	if len(similar) == 0 {
		t.Fatal("similar resolve empty")
	}
}

func TestPostingsSorted(t *testing.T) {
	ix := testIndex()
	rng := rand.New(rand.NewSource(1))
	var es []EntityReviews
	for i := 0; i < 20; i++ {
		es = append(es, EntityReviews{
			EntityID:    string(rune('a' + i)),
			ReviewCount: 1 + rng.Intn(30),
			Tags:        []string{"good food"},
		})
	}
	ix.AddTag("good food", es)
	got := ix.Lookup("good food")
	for i := 1; i < len(got); i++ {
		if got[i].Degree > got[i-1].Degree {
			t.Fatal("postings must be sorted by degree desc")
		}
	}
}

func TestAddTagIdempotentKeys(t *testing.T) {
	ix := testIndex()
	ix.AddTag("good food", entities())
	ix.AddTag("good food", entities())
	if ix.Len() != 1 {
		t.Fatalf("re-adding a tag must not duplicate keys: %v", ix.Tags())
	}
}

func TestHistory(t *testing.T) {
	h := NewHistory()
	h.Add("romantic ambiance")
	h.Add("romantic ambiance") // dup
	h.Add("")                  // empty ignored
	h.Add("quick service")
	if h.Len() != 2 {
		t.Fatalf("history length %d", h.Len())
	}
	got := h.Drain()
	if len(got) != 2 || got[0] != "romantic ambiance" {
		t.Fatalf("drain: %v", got)
	}
	if h.Len() != 0 {
		t.Fatal("drain must clear")
	}
	h.Add("romantic ambiance")
	if h.Len() != 0 {
		t.Fatal("drained tags must not re-queue")
	}
}

func TestLookupReturnsCopy(t *testing.T) {
	ix := testIndex()
	ix.AddTag("good food", entities())
	got := ix.Lookup("good food")
	if len(got) == 0 {
		t.Fatal("empty")
	}
	got[0].Degree = -1
	again := ix.Lookup("good food")
	if again[0].Degree == -1 {
		t.Fatal("Lookup must not expose internal storage")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	ix := testIndex()
	ix.Build([]string{"good food", "nice staff"}, entities())
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored := testIndex()
	if err := restored.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != ix.Len() {
		t.Fatalf("tag count: %d vs %d", restored.Len(), ix.Len())
	}
	for _, tag := range ix.Tags() {
		a, b := ix.Lookup(tag), restored.Lookup(tag)
		if len(a) != len(b) {
			t.Fatalf("postings for %q differ", tag)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("entry mismatch under %q: %v vs %v", tag, a[i], b[i])
			}
		}
	}
	// Loaded index still answers similarity queries.
	if got := restored.Resolve("delicious food", 0.45); len(got) == 0 {
		t.Fatal("restored index cannot resolve similar tags")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	ix := testIndex()
	if err := ix.Load(strings.NewReader("{not json")); err == nil {
		t.Fatal("garbage must error")
	}
	if err := ix.Load(strings.NewReader(`{"version":99,"tags":[]}`)); err == nil {
		t.Fatal("unknown version must error")
	}
	if err := ix.Load(strings.NewReader(
		`{"version":1,"tags":[{"tag":"a","entries":[]},{"tag":"a","entries":[]}]}`)); err == nil {
		t.Fatal("duplicate tags must error")
	}
}

func TestDynamicTheta(t *testing.T) {
	base := 0.5
	if got := DynamicTheta(base, "good food"); got != base {
		t.Fatalf("generic tag must keep the base: %v", got)
	}
	specific := DynamicTheta(base, "true to its roots cuisine")
	if specific >= base {
		t.Fatalf("specific tag must lower the threshold: %v", specific)
	}
	if specific < base-0.15-1e-12 {
		t.Fatalf("threshold clamp violated: %v", specific)
	}
}

func TestResolveDynamic(t *testing.T) {
	ix := testIndex()
	ix.Build([]string{"good food"}, entities())
	exact := ix.ResolveDynamic("good food", 0.5)
	if len(exact) == 0 {
		t.Fatal("exact resolve")
	}
	// A long specific unknown tag gets a lowered threshold and therefore at
	// least as many results as the static resolve.
	tag := "wonderfully flavorful gastronomic food"
	static := ix.Resolve(tag, 0.5)
	dynamic := ix.ResolveDynamic(tag, 0.5)
	if len(dynamic) < len(static) {
		t.Fatalf("dynamic resolve must not lose results: %d vs %d", len(dynamic), len(static))
	}
}

// TestParallelBuildDeterministic pins the tentpole's merge contract: a Build
// fanned out across many workers must produce an index byte-identical to a
// serial one — same key order, same posting order, same degrees.
func TestParallelBuildDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	vocabulary := []string{
		"good food", "tasty food", "bland food", "nice staff", "rude staff",
		"friendly staff", "amazing pizza", "creative cooking", "quiet atmosphere",
		"great view", "fast service", "slow service",
	}
	var es []EntityReviews
	for i := 0; i < 60; i++ {
		n := 1 + rng.Intn(8)
		tags := make([]string, n)
		for j := range tags {
			tags[j] = vocabulary[rng.Intn(len(vocabulary))]
		}
		es = append(es, EntityReviews{
			EntityID:    "e" + strings.Repeat("x", i%3) + string(rune('a'+i%26)) + string(rune('0'+i/26)),
			ReviewCount: 1 + rng.Intn(12),
			Tags:        tags,
		})
	}
	buildTags := []string{"good food", "nice staff", "creative cooking", "fast service", "great view"}

	snap := func(workers int) []byte {
		ix := testIndex()
		ix.SetWorkers(workers)
		ix.Build(buildTags, es)
		// One standalone AddTag as well, to cover its chunked fan-out.
		ix.AddTag("quiet atmosphere", es)
		var buf bytes.Buffer
		if err := ix.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	serial := snap(1)
	for _, w := range []int{2, 4, 8} {
		if got := snap(w); !bytes.Equal(serial, got) {
			t.Fatalf("workers=%d produced a different index than serial", w)
		}
	}
}

// TestSetWorkersBounds checks the worker-count plumbing.
func TestSetWorkersBounds(t *testing.T) {
	ix := testIndex()
	ix.SetWorkers(-3)
	ix.Build([]string{"good food"}, entities())
	ix.SetWorkers(4)
	ix.Build([]string{"nice staff"}, entities())
	if ix.Len() != 2 {
		t.Fatalf("builds under different worker counts: %v", ix.Tags())
	}
}

// TestMemoStatsAccumulate checks the memo is actually on the indexing path:
// repeated (tag, reviewTag) pairs must hit the cache.
func TestMemoStatsAccumulate(t *testing.T) {
	ix := testIndex()
	ix.SetWorkers(1)
	ix.Build([]string{"good food"}, entities())
	_, m1, _ := ix.MemoStats()
	ix.Build([]string{"good food"}, entities())
	hits, m2, _ := ix.MemoStats()
	if hits == 0 {
		t.Fatal("rebuilding the same tag must hit the similarity memo")
	}
	if m2 != m1 {
		t.Fatalf("rebuild recomputed pairs: misses %d -> %d", m1, m2)
	}
}
