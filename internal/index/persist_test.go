package index

import (
	"bytes"
	"strings"
	"testing"
)

// TestLoadRejectsCorruptSnapshots pins the corrupt-input classes surfaced
// while fuzzing FuzzSnapshotDecode: every one must be rejected with an error
// (never a panic) and must leave the target index unchanged.
func TestLoadRejectsCorruptSnapshots(t *testing.T) {
	cases := []struct {
		name, input string
	}{
		{"truncated object", `{"version":1,"tags":[{"tag":"a"`},
		{"truncated entries", `{"version":1,"tags":[{"tag":"a","entries":[{"EntityID":"x","Deg`},
		{"empty input", ``},
		{"bare null", `null`},
		{"wrong top-level type", `[1,2,3]`},
		{"unknown version", `{"version":99,"tags":[]}`},
		{"missing version", `{"tags":[]}`},
		{"empty tag key", `{"version":1,"tags":[{"tag":"","entries":[]}]}`},
		{"duplicate tag", `{"version":1,"tags":[{"tag":"a","entries":[]},{"tag":"a","entries":[]}]}`},
		{"empty entity ID", `{"version":1,"tags":[{"tag":"a","entries":[{"EntityID":"","Degree":0.5}]}]}`},
		{"duplicate entity", `{"version":1,"tags":[{"tag":"a","entries":[{"EntityID":"x","Degree":0.5},{"EntityID":"x","Degree":0.4}]}]}`},
		{"negative degree", `{"version":1,"tags":[{"tag":"a","entries":[{"EntityID":"x","Degree":-1}]}]}`},
		{"overflowing degree", `{"version":1,"tags":[{"tag":"a","entries":[{"EntityID":"x","Degree":1e999}]}]}`},
		{"postings out of degree order", `{"version":1,"tags":[{"tag":"a","entries":[{"EntityID":"x","Degree":0.1},{"EntityID":"y","Degree":0.9}]}]}`},
		{"postings out of ID order on tie", `{"version":1,"tags":[{"tag":"a","entries":[{"EntityID":"y","Degree":0.5},{"EntityID":"x","Degree":0.5}]}]}`},
		{"trailing garbage", `{"version":1,"tags":[]}garbage`},
		{"second JSON value", `{"version":1,"tags":[]}{"version":1,"tags":[]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ix := testIndex()
			ix.Build([]string{"good food"}, entities())
			want := ix.Tags()
			err := ix.Load(strings.NewReader(tc.input))
			if err == nil {
				t.Fatalf("corrupt snapshot accepted: %s", tc.input)
			}
			if !strings.HasPrefix(err.Error(), "index: ") {
				t.Fatalf("error not index-wrapped: %v", err)
			}
			got := ix.Tags()
			if len(got) != len(want) || got[0] != want[0] {
				t.Fatalf("failed Load mutated index: %v → %v", want, got)
			}
			if len(ix.Lookup("good food")) == 0 {
				t.Fatal("failed Load dropped postings")
			}
		})
	}
}

// TestLoadAcceptsBenignVariants documents what strict decoding still allows:
// whitespace padding, null posting lists, and unknown JSON fields.
func TestLoadAcceptsBenignVariants(t *testing.T) {
	cases := []struct {
		name, input string
	}{
		{"trailing whitespace", "{\"version\":1,\"tags\":[]}\n\t "},
		{"null entries", `{"version":1,"tags":[{"tag":"a","entries":null}]}`},
		{"unknown fields", `{"version":1,"future":"field","tags":[{"tag":"a","entries":[],"extra":1}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ix := testIndex()
			if err := ix.Load(strings.NewReader(tc.input)); err != nil {
				t.Fatalf("benign snapshot rejected: %v", err)
			}
		})
	}
}

// TestSaveLoadSaveByteStable checks that persistence is a fixed point: the
// snapshot of a loaded snapshot is byte-identical to the original.
func TestSaveLoadSaveByteStable(t *testing.T) {
	ix := testIndex()
	ix.Build([]string{"good food", "nice staff", "amazing pizza"}, entities())
	var first bytes.Buffer
	if err := ix.Save(&first); err != nil {
		t.Fatal(err)
	}
	re := testIndex()
	if err := re.Load(bytes.NewReader(first.Bytes())); err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := re.Save(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("snapshot not byte-stable:\nfirst:  %s\nsecond: %s", first.Bytes(), second.Bytes())
	}
}

// TestLoadRejectsStackFraming pins the version-2 (LSM) framing rules: a
// version-1 file must not smuggle version-2 fields, mini-snapshots are not
// full worlds, and unknown kinds are refused. Every rejection leaves the
// index unchanged.
func TestLoadRejectsStackFraming(t *testing.T) {
	cases := []struct {
		name, input string
	}{
		{"delta into Load", `{"version":2,"kind":"delta","seq":7,"theta_index":0.6,"entities":["x"],"tags":[]}`},
		{"v1 with kind", `{"version":1,"kind":"full","theta_index":0.6,"tags":[]}`},
		{"v1 with seq", `{"version":1,"seq":3,"theta_index":0.6,"tags":[]}`},
		{"v1 with entities", `{"version":1,"theta_index":0.6,"entities":["x"],"tags":[]}`},
		{"v2 unknown kind", `{"version":2,"kind":"merge","seq":3,"theta_index":0.6,"tags":[]}`},
		{"v2 missing kind", `{"version":2,"seq":3,"theta_index":0.6,"tags":[]}`},
		{"v2 full with entities", `{"version":2,"kind":"full","seq":3,"theta_index":0.6,"entities":["x"],"tags":[]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ix := testIndex()
			ix.Build([]string{"good food"}, entities())
			if err := ix.Load(strings.NewReader(tc.input)); err == nil {
				t.Fatalf("bad framing accepted: %s", tc.input)
			}
			if len(ix.Lookup("good food")) == 0 {
				t.Fatal("failed Load mutated index")
			}
		})
	}
}

// TestWriteBaseLoadRoundTrip: a version-2 base file carries the same world
// as Save, so loading one and re-saving reproduces the version-1 snapshot
// byte-for-byte.
func TestWriteBaseLoadRoundTrip(t *testing.T) {
	ix := testIndex()
	ix.Build([]string{"good food", "nice staff"}, entities())
	var v1, base bytes.Buffer
	if err := ix.Save(&v1); err != nil {
		t.Fatal(err)
	}
	if err := ix.Current().WriteBase(&base, 42); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(v1.Bytes(), base.Bytes()) {
		t.Fatal("base file carries no version-2 framing")
	}
	re := testIndex()
	if err := re.Load(bytes.NewReader(base.Bytes())); err != nil {
		t.Fatalf("load base: %v", err)
	}
	var second bytes.Buffer
	if err := re.Save(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v1.Bytes(), second.Bytes()) {
		t.Fatalf("world drifted through base round-trip:\nwant: %s\ngot:  %s", v1.Bytes(), second.Bytes())
	}
}

func testDelta() *Delta {
	return &Delta{
		Seq:      50,
		Entities: []string{"vue", "newbie"},
		Tags:     []string{"good food"},
		Postings: [][]Entry{{{EntityID: "newbie", Degree: 0.9}, {EntityID: "vue", Degree: 0.7}}},
	}
}

// TestWriteDeltaReadDeltaRoundTrip: a mini-snapshot survives its own wire
// format without loss.
func TestWriteDeltaReadDeltaRoundTrip(t *testing.T) {
	d := testDelta()
	var buf bytes.Buffer
	if err := WriteDelta(&buf, 0.6, d); err != nil {
		t.Fatal(err)
	}
	got, theta, err := ReadDelta(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("read delta: %v", err)
	}
	if theta != 0.6 || got.Seq != d.Seq {
		t.Fatalf("framing drifted: theta=%v seq=%d", theta, got.Seq)
	}
	if len(got.Entities) != len(d.Entities) || got.Entities[0] != d.Entities[0] {
		t.Fatalf("entities drifted: %v", got.Entities)
	}
	if len(got.Tags) != 1 || got.Tags[0] != "good food" || len(got.Postings[0]) != 2 {
		t.Fatalf("postings drifted: %v %v", got.Tags, got.Postings)
	}
}

// TestLoadStackEqualsDirectMerge: replaying base+delta files must land on
// the same generation as applying the delta in memory.
func TestLoadStackEqualsDirectMerge(t *testing.T) {
	tags := []string{"good food", "nice staff"}
	ix := testIndex()
	ix.Build(tags, entities())
	d := testDelta()

	direct := testIndex()
	direct.Build(tags, entities())
	direct.ApplyDelta(d)

	var base, delta bytes.Buffer
	if err := ix.Current().WriteBase(&base, 42); err != nil {
		t.Fatal(err)
	}
	if err := WriteDelta(&delta, 0.6, d); err != nil {
		t.Fatal(err)
	}
	st := testIndex()
	top, err := st.LoadStack(bytes.NewReader(base.Bytes()), bytes.NewReader(delta.Bytes()))
	if err != nil {
		t.Fatalf("load stack: %v", err)
	}
	if top != d.Seq {
		t.Fatalf("stack top watermark = %d, want %d", top, d.Seq)
	}
	var a, b bytes.Buffer
	if err := st.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := direct.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("stack replay differs from direct merge:\nstack:  %s\ndirect: %s", a.Bytes(), b.Bytes())
	}
}

// TestLoadStackRejectsBadStacks pins the stack-level strictness: no
// version-1 base, no watermark regressions, no deltas posting entities they
// did not declare dirty.
func TestLoadStackRejectsBadStacks(t *testing.T) {
	tags := []string{"good food"}
	goodBase := func() *bytes.Reader {
		ix := testIndex()
		ix.Build(tags, entities())
		var b bytes.Buffer
		if err := ix.Current().WriteBase(&b, 42); err != nil {
			t.Fatal(err)
		}
		return bytes.NewReader(b.Bytes())
	}
	deltaBytes := func(d *Delta) *bytes.Reader {
		var b bytes.Buffer
		if err := WriteDelta(&b, 0.6, d); err != nil {
			t.Fatal(err)
		}
		return bytes.NewReader(b.Bytes())
	}

	t.Run("v1 base is a mixed-version stack", func(t *testing.T) {
		ix := testIndex()
		ix.Build(tags, entities())
		var v1 bytes.Buffer
		if err := ix.Save(&v1); err != nil {
			t.Fatal(err)
		}
		st := testIndex()
		if _, err := st.LoadStack(bytes.NewReader(v1.Bytes())); err == nil {
			t.Fatal("version-1 base accepted")
		} else if !strings.Contains(err.Error(), "mixed-version stack") {
			t.Fatalf("unexpected error: %v", err)
		}
	})
	t.Run("delta watermark not above base", func(t *testing.T) {
		d := testDelta()
		d.Seq = 42 // equal to the base watermark
		st := testIndex()
		if _, err := st.LoadStack(goodBase(), deltaBytes(d)); err == nil {
			t.Fatal("stale delta accepted")
		}
	})
	t.Run("delta watermark regression", func(t *testing.T) {
		hi, lo := testDelta(), testDelta()
		hi.Seq, lo.Seq = 60, 50
		st := testIndex()
		if _, err := st.LoadStack(goodBase(), deltaBytes(hi), deltaBytes(lo)); err == nil {
			t.Fatal("regressing delta stack accepted")
		}
	})
	t.Run("delta posts outside dirty set", func(t *testing.T) {
		raw := `{"version":2,"kind":"delta","seq":50,"theta_index":0.6,"entities":["vue"],` +
			`"tags":[{"tag":"good food","entries":[{"EntityID":"stranger","Degree":0.5}]}]}`
		st := testIndex()
		if _, err := st.LoadStack(goodBase(), strings.NewReader(raw)); err == nil {
			t.Fatal("delta posting an undeclared entity accepted")
		}
	})
	t.Run("delta with no dirty entities", func(t *testing.T) {
		raw := `{"version":2,"kind":"delta","seq":50,"theta_index":0.6,"tags":[]}`
		st := testIndex()
		if _, err := st.LoadStack(goodBase(), strings.NewReader(raw)); err == nil {
			t.Fatal("empty dirty set accepted")
		}
	})
}
