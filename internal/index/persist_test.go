package index

import (
	"bytes"
	"strings"
	"testing"
)

// TestLoadRejectsCorruptSnapshots pins the corrupt-input classes surfaced
// while fuzzing FuzzSnapshotDecode: every one must be rejected with an error
// (never a panic) and must leave the target index unchanged.
func TestLoadRejectsCorruptSnapshots(t *testing.T) {
	cases := []struct {
		name, input string
	}{
		{"truncated object", `{"version":1,"tags":[{"tag":"a"`},
		{"truncated entries", `{"version":1,"tags":[{"tag":"a","entries":[{"EntityID":"x","Deg`},
		{"empty input", ``},
		{"bare null", `null`},
		{"wrong top-level type", `[1,2,3]`},
		{"unknown version", `{"version":99,"tags":[]}`},
		{"missing version", `{"tags":[]}`},
		{"empty tag key", `{"version":1,"tags":[{"tag":"","entries":[]}]}`},
		{"duplicate tag", `{"version":1,"tags":[{"tag":"a","entries":[]},{"tag":"a","entries":[]}]}`},
		{"empty entity ID", `{"version":1,"tags":[{"tag":"a","entries":[{"EntityID":"","Degree":0.5}]}]}`},
		{"duplicate entity", `{"version":1,"tags":[{"tag":"a","entries":[{"EntityID":"x","Degree":0.5},{"EntityID":"x","Degree":0.4}]}]}`},
		{"negative degree", `{"version":1,"tags":[{"tag":"a","entries":[{"EntityID":"x","Degree":-1}]}]}`},
		{"overflowing degree", `{"version":1,"tags":[{"tag":"a","entries":[{"EntityID":"x","Degree":1e999}]}]}`},
		{"postings out of degree order", `{"version":1,"tags":[{"tag":"a","entries":[{"EntityID":"x","Degree":0.1},{"EntityID":"y","Degree":0.9}]}]}`},
		{"postings out of ID order on tie", `{"version":1,"tags":[{"tag":"a","entries":[{"EntityID":"y","Degree":0.5},{"EntityID":"x","Degree":0.5}]}]}`},
		{"trailing garbage", `{"version":1,"tags":[]}garbage`},
		{"second JSON value", `{"version":1,"tags":[]}{"version":1,"tags":[]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ix := testIndex()
			ix.Build([]string{"good food"}, entities())
			want := ix.Tags()
			err := ix.Load(strings.NewReader(tc.input))
			if err == nil {
				t.Fatalf("corrupt snapshot accepted: %s", tc.input)
			}
			if !strings.HasPrefix(err.Error(), "index: ") {
				t.Fatalf("error not index-wrapped: %v", err)
			}
			got := ix.Tags()
			if len(got) != len(want) || got[0] != want[0] {
				t.Fatalf("failed Load mutated index: %v → %v", want, got)
			}
			if len(ix.Lookup("good food")) == 0 {
				t.Fatal("failed Load dropped postings")
			}
		})
	}
}

// TestLoadAcceptsBenignVariants documents what strict decoding still allows:
// whitespace padding, null posting lists, and unknown JSON fields.
func TestLoadAcceptsBenignVariants(t *testing.T) {
	cases := []struct {
		name, input string
	}{
		{"trailing whitespace", "{\"version\":1,\"tags\":[]}\n\t "},
		{"null entries", `{"version":1,"tags":[{"tag":"a","entries":null}]}`},
		{"unknown fields", `{"version":1,"future":"field","tags":[{"tag":"a","entries":[],"extra":1}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ix := testIndex()
			if err := ix.Load(strings.NewReader(tc.input)); err != nil {
				t.Fatalf("benign snapshot rejected: %v", err)
			}
		})
	}
}

// TestSaveLoadSaveByteStable checks that persistence is a fixed point: the
// snapshot of a loaded snapshot is byte-identical to the original.
func TestSaveLoadSaveByteStable(t *testing.T) {
	ix := testIndex()
	ix.Build([]string{"good food", "nice staff", "amazing pizza"}, entities())
	var first bytes.Buffer
	if err := ix.Save(&first); err != nil {
		t.Fatal(err)
	}
	re := testIndex()
	if err := re.Load(bytes.NewReader(first.Bytes())); err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := re.Save(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("snapshot not byte-stable:\nfirst:  %s\nsecond: %s", first.Bytes(), second.Bytes())
	}
}
