package index

import (
	"context"
	"time"
)

// Delta is one mini-snapshot: the recomputed posting entries of a set of
// dirty entities across a tag list, produced by an incremental (streaming)
// indexing round. A delta is self-contained — Entities names every entity it
// covers, and Postings[i] holds tag Tags[i]'s entries for those entities
// only — so applying it to a base snapshot is "remove the dirty entities'
// old entries, merge in the new ones".
//
// Because Eq. 1's degree of truth for (tag, entity) depends only on that
// entity's own accumulated review state, a delta computed from an entity's
// full state is exactly what a batch rebuild would compute for it: merging a
// delta into the published snapshot yields a generation bit-identical to a
// full Build over the same world. (This is also why the duplicate-entity
// merge rule across a stack of mini-snapshots is newest-wins, not
// max-degree: Eq. 1 is not monotone — a mean-similarity can drop as reviews
// accumulate — so only the entry computed from the largest review prefix
// reproduces the batch build. See LoadStack.)
type Delta struct {
	// Seq is the durability watermark the delta was published at (the WAL
	// sequence number of its last covered review); informational for
	// in-memory application, authoritative for persisted stacks.
	Seq uint64
	// Entities are the dirty entity IDs the delta covers. Every posting
	// entry in Postings refers to one of them.
	Entities []string
	// Tags and Postings are parallel: Postings[i] is tag Tags[i]'s entries
	// for the dirty entities, sorted (degree desc, entity ID asc) like every
	// posting list in the index.
	Tags     []string
	Postings [][]Entry
}

// MergeDelta runs one incremental indexing round: it computes fresh posting
// entries for the dirty entities across the given tags (each entity's
// EntityReviews must carry its full accumulated review state, not just the
// new reviews — Eq. 1 is per-entity but not per-review), derives the next
// generation by replacing those entities' entries, and publishes it
// atomically. Readers in flight keep their pinned snapshot, exactly as with
// Build. The applied delta is returned so callers can persist it (SaveDelta).
//
// The resulting generation is bit-identical to a full Build over the union
// of the dirty state and the untouched entities, provided tags covers every
// indexed tag the dirty entities may appear under.
func (ix *Index) MergeDelta(ctx context.Context, tags []string, dirty []EntityReviews) (*Delta, error) {
	var t0 time.Time
	if ix.o != nil {
		t0 = time.Now()
	}
	cfg := ix.b.config()
	postings, err := ix.b.Postings(ctx, tags, dirty, cfg)
	if err != nil {
		return nil, err
	}
	ids := make([]string, len(dirty))
	for i, e := range dirty {
		ids[i] = e.EntityID
	}
	d := &Delta{Entities: ids, Tags: tags, Postings: postings}
	ix.publishMu.Lock()
	n := ix.publish(ix.snap.Load().withDelta(d))
	ix.publishMu.Unlock()
	if ix.o != nil {
		ix.o.Histogram("index.merge").Observe(time.Since(t0))
		ix.tagsGauge.Set(float64(n))
		ix.o.Counter("index.merge.entities.total").Add(int64(len(dirty)))
	}
	return d, nil
}

// ApplyDelta merges a precomputed delta (for example one read back with
// ReadDelta) into the current generation and publishes the result. Unlike
// MergeDelta it computes nothing — the delta's entries are trusted as-is, so
// callers must validate untrusted deltas first (ReadDelta does).
func (ix *Index) ApplyDelta(d *Delta) {
	ix.publishMu.Lock()
	ix.publish(ix.snap.Load().withDelta(d))
	ix.publishMu.Unlock()
}

// withDelta derives the next generation from s by applying d: for each
// delta tag, the dirty entities' old entries are removed and the delta's
// entries merged in, preserving (degree desc, entity ID asc) order; tags the
// delta does not cover keep their posting lists untouched (shared, not
// copied). New tags are appended to the key order.
func (s *Snapshot) withDelta(d *Delta) *Snapshot {
	dirty := make(map[string]bool, len(d.Entities))
	for _, id := range d.Entities {
		dirty[id] = true
	}
	next := &Snapshot{
		memo:        s.memo,
		thetaIndex:  s.thetaIndex,
		tags:        make(map[string][]Entry, len(s.tags)+len(d.Tags)),
		order:       make([]string, 0, len(s.order)+len(d.Tags)),
		resolveHist: s.resolveHist,
		exactCtr:    s.exactCtr,
		similarCtr:  s.similarCtr,
	}
	for _, t := range s.order {
		next.tags[t] = s.tags[t]
		next.order = append(next.order, t)
	}
	for i, t := range d.Tags {
		base, exists := next.tags[t]
		if !exists {
			next.order = append(next.order, t)
		}
		next.tags[t] = mergePostings(base, d.Postings[i], dirty)
	}
	return next
}

// mergePostings merges fresh entries for the dirty entities into a base
// posting list: base entries belonging to a dirty entity are dropped
// (superseded), and the two sorted lists interleave by (degree desc, entity
// ID asc). The result is always non-nil, matching what a batch build
// produces for an empty posting list.
func mergePostings(base, fresh []Entry, dirty map[string]bool) []Entry {
	out := make([]Entry, 0, len(base)+len(fresh))
	i, j := 0, 0
	for i < len(base) || j < len(fresh) {
		// Skip superseded base entries first so the comparison below only
		// ever sees entries that belong in the output.
		if i < len(base) && dirty[base[i].EntityID] {
			i++
			continue
		}
		switch {
		case i >= len(base):
			out = append(out, fresh[j])
			j++
		case j >= len(fresh):
			out = append(out, base[i])
			i++
		case postingLess(fresh[j], base[i]):
			out = append(out, fresh[j])
			j++
		default:
			out = append(out, base[i])
			i++
		}
	}
	return out
}

// postingLess is the global posting order: degree descending, entity ID
// ascending on ties.
func postingLess(a, b Entry) bool {
	if a.Degree != b.Degree {
		return a.Degree > b.Degree
	}
	return a.EntityID < b.EntityID
}
