package index

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
)

// TestSnapshotHasNoMutexField enforces the read-path contract structurally:
// a published Snapshot carries no mutex anywhere in its value — the query
// path cannot block on one even by accident. Pointer fields (the shared
// similarity memo, observability instruments) stop the walk: they carry
// their own internal synchronization and are not part of the frozen value.
func TestSnapshotHasNoMutexField(t *testing.T) {
	mutex := reflect.TypeOf(sync.Mutex{})
	rwMutex := reflect.TypeOf(sync.RWMutex{})
	var walk func(typ reflect.Type, path string)
	walk = func(typ reflect.Type, path string) {
		if typ == mutex || typ == rwMutex {
			t.Errorf("%s is a mutex on the lock-free read path", path)
			return
		}
		if typ.Kind() == reflect.Struct {
			for i := 0; i < typ.NumField(); i++ {
				f := typ.Field(i)
				walk(f.Type, path+"."+f.Name)
			}
		}
	}
	walk(reflect.TypeOf(Snapshot{}), "Snapshot")
}

// TestPinnedSnapshotSurvivesRebuild pins a snapshot, rebuilds the index,
// and checks the pinned generation is byte-identical to before while
// Current() serves the new one.
func TestPinnedSnapshotSurvivesRebuild(t *testing.T) {
	ix := testIndex()
	ix.Build([]string{"good food"}, entities())
	snap := ix.Current()
	tagsBefore := snap.Tags()
	postingsBefore := snap.Lookup("good food")

	ix.Build([]string{"nice staff", "creative cooking"}, entities())

	if snap.Has("nice staff") || snap.Has("creative cooking") {
		t.Fatal("pinned snapshot grew new tags after a rebuild")
	}
	if !reflect.DeepEqual(snap.Tags(), tagsBefore) {
		t.Fatalf("pinned snapshot keys changed: %v -> %v", tagsBefore, snap.Tags())
	}
	if !reflect.DeepEqual(snap.Lookup("good food"), postingsBefore) {
		t.Fatal("pinned snapshot postings changed after a rebuild")
	}
	cur := ix.Current()
	if cur == snap {
		t.Fatal("Build did not publish a new generation")
	}
	for _, tag := range []string{"good food", "nice staff", "creative cooking"} {
		if !cur.Has(tag) {
			t.Fatalf("current generation missing %q", tag)
		}
	}
}

// TestBuildCtxCancelledPublishesNothing: a cancelled context aborts
// BuildCtx/AddTagCtx with the context's error and the index is unchanged —
// no partial generation ever becomes visible.
func TestBuildCtxCancelledPublishesNothing(t *testing.T) {
	ix := testIndex()
	ix.Build([]string{"good food"}, entities())
	before := ix.Current()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := ix.BuildCtx(ctx, []string{"nice staff"}, entities()); !errors.Is(err, context.Canceled) {
		t.Fatalf("BuildCtx error: %v", err)
	}
	if err := ix.AddTagCtx(ctx, "creative cooking", entities()); !errors.Is(err, context.Canceled) {
		t.Fatalf("AddTagCtx error: %v", err)
	}
	if ix.Current() != before {
		t.Fatal("cancelled build published a generation")
	}
	if ix.Has("nice staff") || ix.Has("creative cooking") {
		t.Fatalf("cancelled build left tags behind: %v", ix.Tags())
	}
}

// TestBuildCtxDeadlineMidBuild cancels partway through via a context that
// expires after a fixed number of Err polls, exercising the in-loop checks
// rather than the up-front one.
func TestBuildCtxDeadlineMidBuild(t *testing.T) {
	ix := testIndex()
	ix.SetWorkers(1)
	ctx := &countdownCtx{Context: context.Background(), after: 2, err: context.DeadlineExceeded}
	err := ix.BuildCtx(ctx, []string{"good food", "nice staff", "creative cooking", "amazing pizza"}, entities())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("BuildCtx error: %v", err)
	}
	if ix.Len() != 0 {
		t.Fatalf("mid-build cancellation published tags: %v", ix.Tags())
	}
}

// countdownCtx reports no error for the first `after` Err() calls, then
// fails with err forever. All cancellation in this package is cooperative
// Err() polling, so the countdown deterministically places the failure at
// the Nth poll — no timing, no flakes.
type countdownCtx struct {
	context.Context
	mu    sync.Mutex
	after int
	err   error
}

func (c *countdownCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.after > 0 {
		c.after--
		return nil
	}
	return c.err
}

func TestHistoryCapEviction(t *testing.T) {
	h := NewHistory()
	h.SetCap(3)
	if h.Cap() != 3 {
		t.Fatalf("Cap: %d", h.Cap())
	}
	for _, tag := range []string{"a", "b", "c", "d"} {
		h.Add(tag)
	}
	// "a" is the oldest-seen and must be evicted, queue keeps arrival order.
	if got := h.Pending(); !reflect.DeepEqual(got, []string{"b", "c", "d"}) {
		t.Fatalf("pending after eviction: %v", got)
	}
	// An evicted tag is forgotten entirely: adding it again re-queues it
	// (and evicts the new oldest, "b").
	h.Add("a")
	if got := h.Pending(); !reflect.DeepEqual(got, []string{"c", "d", "a"}) {
		t.Fatalf("pending after re-add: %v", got)
	}
}

func TestHistorySetCapShrinksImmediately(t *testing.T) {
	h := NewHistory()
	for _, tag := range []string{"a", "b", "c", "d", "e"} {
		h.Add(tag)
	}
	h.SetCap(2)
	if got := h.Pending(); !reflect.DeepEqual(got, []string{"d", "e"}) {
		t.Fatalf("pending after shrink: %v", got)
	}
	// Cap 0 removes the bound again.
	h.SetCap(0)
	for _, tag := range []string{"f", "g", "h"} {
		h.Add(tag)
	}
	if h.Len() != 5 {
		t.Fatalf("unbounded history len: %d", h.Len())
	}
}

// TestHistoryCapUnbounded pins the regression the cap fixes: without a
// bound the seen-set grows with every distinct tag; with a bound it cannot
// exceed the cap no matter how many tags stream through.
func TestHistoryCapUnbounded(t *testing.T) {
	h := NewHistory()
	h.SetCap(8)
	for i := 0; i < 1000; i++ {
		h.Add(string(rune('a'+i%26)) + string(rune('0'+i%10)))
	}
	if h.Len() > 8 {
		t.Fatalf("capped history holds %d pending tags", h.Len())
	}
	if n := len(h.seen); n > 8 {
		t.Fatalf("capped history remembers %d tags", n)
	}
}

func TestHistoryRequeue(t *testing.T) {
	h := NewHistory()
	for _, tag := range []string{"a", "b", "c"} {
		h.Add(tag)
	}
	drained := h.Drain()
	if h.Len() != 0 {
		t.Fatalf("drain left %d pending", h.Len())
	}
	// A new tag arrives between the drain and the failed build.
	h.Add("d")
	h.Requeue(drained)
	if got := h.Pending(); !reflect.DeepEqual(got, []string{"a", "b", "c", "d"}) {
		t.Fatalf("pending after requeue: %v", got)
	}
	// Requeued tags stay deduplicated: a second requeue is a no-op.
	h.Requeue(drained)
	if h.Len() != 4 {
		t.Fatalf("double requeue duplicated tags: %v", h.Pending())
	}
}

func TestHistoryRequeueSkipsEvicted(t *testing.T) {
	h := NewHistory()
	h.SetCap(2)
	h.Add("a")
	h.Add("b")
	drained := h.Drain()
	// "a" is evicted from memory while the drained build is in flight.
	h.Add("c")
	h.Requeue(drained)
	if got := h.Pending(); !reflect.DeepEqual(got, []string{"b", "c"}) {
		t.Fatalf("pending after requeue with eviction: %v", got)
	}
}
