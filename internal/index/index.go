// Package index implements the subjective tag inverted index of §3.1
// (Table 1, Fig. 1): each subjective tag maps to the entities whose reviews
// mention it, with a degree of truth computed by Eq. 1:
//
//	Deg_truth(tag, e) = log(|Re|+1) / |T_e^tag| · Σ_{t ∈ T_e^tag} Sim(tag, t)
//
// where Re is e's review set and T_e^tag the review tags whose similarity to
// tag exceeds θ_index. Unknown query tags are answered by combining similar
// index tags (§3.2) and queued in the user tag history for the next indexing
// round — the adaptive loop of Fig. 1.
//
// # Concurrency
//
// Index is safe for concurrent use: reads (Has, Lookup, Resolve, ResolveEach,
// Save, …) take a shared lock, writes (AddTag, Build, Load) an exclusive one,
// so queries on parallel conversations can overlap with indexing rounds.
// Build and AddTag additionally fan their Eq. 1 work out across a bounded
// worker pool (SetWorkers) — Build across tags, AddTag across entity chunks —
// and merge deterministically, so a parallel build is byte-identical to a
// serial one. Similarity scores are cached in a bounded sim.Memo, so a
// repeated (tag, reviewTag) pair is never recomputed.
package index

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"saccs/internal/obs"
	"saccs/internal/sim"
)

// ContradictionAware is an optional similarity capability: Base returns the
// polarity-blind similarity plus whether the phrases' polarities conflict.
// sim.Conceptual implements it.
type ContradictionAware interface {
	Base(a, b string) (float64, bool)
}

// Entry is one entity under a tag with its degree of truth.
type Entry struct {
	EntityID string
	Degree   float64
}

// EntityReviews is the per-entity input to indexing: how many reviews the
// entity has and every subjective tag the extractor pulled from them.
type EntityReviews struct {
	EntityID    string
	ReviewCount int
	Tags        []string
}

// Index is the subjective tag inverted index.
type Index struct {
	// mu guards every field below it. Public methods take it exactly once
	// (Go's RWMutex is not reentrant); internal helpers assume it is held.
	mu sync.RWMutex

	// memo caches the similarity measure's pairwise scores (bounded, sharded,
	// safe for concurrent use). It wraps the measure passed to New.
	memo *sim.Memo

	thetaIndex float64
	// reviewWeight applies Eq. 1's log(|Re|+1) factor; disabling it is the
	// ablation of the review-count weighting design choice.
	reviewWeight bool
	// frequencyAware scales degrees by the square root of the matched
	// mention rate (mentions per review).
	frequencyAware bool
	// workers bounds the indexing worker pool; 0 means GOMAXPROCS.
	workers int
	// tags maps an index tag to its posting list, sorted by degree desc.
	tags map[string][]Entry
	// order preserves insertion order for deterministic iteration.
	order []string

	// observability (nil when disabled; see SetObserver).
	o            *obs.Observer
	addTagHist   *obs.Histogram
	buildHist    *obs.Histogram
	resolveHist  *obs.Histogram
	tagsGauge    *obs.Gauge
	workersGauge *obs.Gauge
	entriesCtr   *obs.Counter
	matchedCtr   *obs.Counter
	conflictCtr  *obs.Counter
	exactCtr     *obs.Counter
	similarCtr   *obs.Counter
}

// New returns an empty index using the given similarity measure and
// θ_index threshold for review-tag matching. Eq. 1's review-count weighting
// is on by default, as is the similarity memo; the worker pool defaults to
// GOMAXPROCS.
func New(measure sim.Measure, thetaIndex float64) *Index {
	return &Index{
		memo:           sim.NewMemo(measure),
		thetaIndex:     thetaIndex,
		reviewWeight:   true,
		frequencyAware: true,
		tags:           map[string][]Entry{},
	}
}

// SetObserver attaches runtime observability: indexing rounds record build
// latency, worker count, and tag/entry counts; lookups record resolution
// latency and exact-vs-similar hit counters; the similarity memo reports its
// hit/miss/eviction traffic. Call before concurrent use; a nil observer
// (the default) keeps every hot path free of instrumentation cost.
func (ix *Index) SetObserver(o *obs.Observer) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.o = o
	ix.memo.SetObserver(o)
	if o == nil {
		ix.addTagHist, ix.buildHist, ix.resolveHist = nil, nil, nil
		ix.tagsGauge, ix.workersGauge = nil, nil
		ix.entriesCtr, ix.matchedCtr, ix.conflictCtr = nil, nil, nil
		ix.exactCtr, ix.similarCtr = nil, nil
		return
	}
	ix.addTagHist = o.Histogram("index.add_tag")
	ix.buildHist = o.Histogram("index.build")
	ix.resolveHist = o.Histogram("index.resolve")
	ix.tagsGauge = o.Gauge("index.tags")
	ix.workersGauge = o.Gauge("index.build.workers")
	ix.entriesCtr = o.Counter("index.entries.total")
	ix.matchedCtr = o.Counter("index.matched_mentions.total")
	ix.conflictCtr = o.Counter("index.contradicted_mentions.total")
	ix.exactCtr = o.Counter("index.resolve.exact.total")
	ix.similarCtr = o.Counter("index.resolve.similar.total")
}

// SetReviewWeighting toggles Eq. 1's log(|Re|+1) factor (ablation knob).
// It affects subsequent AddTag calls only.
func (ix *Index) SetReviewWeighting(on bool) {
	ix.mu.Lock()
	ix.reviewWeight = on
	ix.mu.Unlock()
}

// SetFrequencyAware toggles the mention-rate factor (ablation knob).
func (ix *Index) SetFrequencyAware(on bool) {
	ix.mu.Lock()
	ix.frequencyAware = on
	ix.mu.Unlock()
}

// SetWorkers bounds the indexing worker pool: Build fans out across tags and
// AddTag across entity chunks with at most n goroutines. n ≤ 0 restores the
// default (GOMAXPROCS); n = 1 forces serial indexing. The merged result is
// identical for every worker count.
func (ix *Index) SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	ix.mu.Lock()
	ix.workers = n
	ix.mu.Unlock()
}

// MemoStats returns the similarity memo's lifetime hits, misses, and
// whole-shard evictions.
func (ix *Index) MemoStats() (hits, misses, evictions int64) {
	return ix.memo.Stats()
}

// degCfg is an immutable snapshot of the knobs Eq. 1 depends on, taken once
// per indexing round so worker goroutines never race the Set* methods.
type degCfg struct {
	theta          float64
	reviewWeight   bool
	frequencyAware bool
	workers        int
	matchedCtr     *obs.Counter
	conflictCtr    *obs.Counter
}

// snapshotCfg captures the indexing configuration under the read lock.
func (ix *Index) snapshotCfg() degCfg {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	w := ix.workers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return degCfg{
		theta:          ix.thetaIndex,
		reviewWeight:   ix.reviewWeight,
		frequencyAware: ix.frequencyAware,
		workers:        w,
		matchedCtr:     ix.matchedCtr,
		conflictCtr:    ix.conflictCtr,
	}
}

// Has reports whether tag is an index key (§3.2's "t ∈ index.keys").
func (ix *Index) Has(tag string) bool {
	ix.mu.RLock()
	_, ok := ix.tags[tag]
	ix.mu.RUnlock()
	return ok
}

// Tags returns the index keys in insertion order (a defensive copy; the
// query path should prefer EachTag, which does not allocate).
func (ix *Index) Tags() []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return append([]string(nil), ix.order...)
}

// EachTag calls f for every index key in insertion order, stopping early
// when f returns false. Unlike Tags it performs no copy. f must not call
// back into the index (the lock is held).
func (ix *Index) EachTag(f func(tag string) bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	for _, t := range ix.order {
		if !f(t) {
			return
		}
	}
}

// EachEntry calls f for every posting of an exact index tag in degree order,
// stopping early when f returns false. Unlike Lookup it performs no copy.
// f must not call back into the index (the lock is held).
func (ix *Index) EachEntry(tag string, f func(Entry) bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	for _, e := range ix.tags[tag] {
		if !f(e) {
			return
		}
	}
}

// Len returns the number of indexed tags.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.order)
}

// computeEntries runs Eq. 1 for one tag against every entity, fanning out
// across cfg.workers contiguous entity chunks when parallel is set. Chunk
// results concatenate in input order before the fully tie-broken sort, so the
// posting list is identical for any worker count.
func (ix *Index) computeEntries(tag string, entities []EntityReviews, cfg degCfg, parallel bool) []Entry {
	w := cfg.workers
	if !parallel || w > len(entities) {
		w = 1
	}
	var entries []Entry
	if w <= 1 {
		for _, e := range entities {
			deg, matched := degreeOfTruth(ix.memo, tag, e, cfg)
			if matched == 0 {
				continue
			}
			entries = append(entries, Entry{EntityID: e.EntityID, Degree: deg})
		}
	} else {
		chunks := make([][]Entry, w)
		var wg sync.WaitGroup
		size := (len(entities) + w - 1) / w
		for c := 0; c < w; c++ {
			lo := c * size
			hi := lo + size
			if hi > len(entities) {
				hi = len(entities)
			}
			wg.Add(1)
			go func(c int, part []EntityReviews) {
				defer wg.Done()
				var out []Entry
				for _, e := range part {
					deg, matched := degreeOfTruth(ix.memo, tag, e, cfg)
					if matched == 0 {
						continue
					}
					out = append(out, Entry{EntityID: e.EntityID, Degree: deg})
				}
				chunks[c] = out
			}(c, entities[lo:hi])
		}
		wg.Wait()
		for _, part := range chunks {
			entries = append(entries, part...)
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Degree != entries[j].Degree {
			return entries[i].Degree > entries[j].Degree
		}
		return entries[i].EntityID < entries[j].EntityID
	})
	return entries
}

// insertLocked installs a posting list; ix.mu must be held exclusively.
func (ix *Index) insertLocked(tag string, entries []Entry) {
	if _, exists := ix.tags[tag]; !exists {
		ix.order = append(ix.order, tag)
	}
	ix.tags[tag] = entries
}

// AddTag runs one indexing round for a single tag (Fig. 1's indexer): every
// entity whose review tags include a mention similar enough to the tag is
// added with its Eq. 1 degree of truth, fanning out across the worker pool
// for large entity sets. Re-adding a tag recomputes its posting list.
func (ix *Index) AddTag(tag string, entities []EntityReviews) {
	var t0 time.Time
	if ix.o != nil {
		t0 = time.Now()
	}
	cfg := ix.snapshotCfg()
	entries := ix.computeEntries(tag, entities, cfg, true)
	ix.mu.Lock()
	ix.insertLocked(tag, entries)
	n := len(ix.order)
	ix.mu.Unlock()
	if ix.o != nil {
		ix.addTagHist.Observe(time.Since(t0))
		ix.entriesCtr.Add(int64(len(entries)))
		ix.tagsGauge.Set(float64(n))
	}
}

// Build indexes a whole tag set in one pass, fanning out across the worker
// pool — one goroutine per tag, each computing its posting list serially —
// then merging in input order under a single exclusive lock. The resulting
// index is byte-identical to a serial build. Latency, worker count, and
// resulting size are recorded when an observer is attached.
func (ix *Index) Build(tags []string, entities []EntityReviews) {
	var t0 time.Time
	if ix.o != nil {
		t0 = time.Now()
	}
	cfg := ix.snapshotCfg()
	results := make([][]Entry, len(tags))
	if cfg.workers <= 1 || len(tags) < 2 {
		for i, t := range tags {
			results[i] = ix.computeEntries(t, entities, cfg, false)
		}
	} else {
		sem := make(chan struct{}, cfg.workers)
		var wg sync.WaitGroup
		for i, t := range tags {
			wg.Add(1)
			go func(i int, t string) {
				defer wg.Done()
				sem <- struct{}{}
				results[i] = ix.computeEntries(t, entities, cfg, false)
				<-sem
			}(i, t)
		}
		wg.Wait()
	}
	ix.mu.Lock()
	for i, t := range tags {
		ix.insertLocked(t, results[i])
	}
	n := len(ix.order)
	ix.mu.Unlock()
	if ix.o != nil {
		ix.buildHist.Observe(time.Since(t0))
		var total int64
		for _, es := range results {
			total += int64(len(es))
		}
		ix.entriesCtr.Add(total)
		ix.tagsGauge.Set(float64(n))
		ix.workersGauge.Set(float64(cfg.workers))
		ix.o.Gauge("index.build.entities").Set(float64(len(entities)))
	}
}

// degreeOfTruth computes Eq. 1 for (tag, entity): the mean similarity of the
// entity's matching review tags, weighted by log(|Re|+1). When the measure
// is contradiction-aware, review tags that contradict the query tag (same
// concept, opposite polarity — "bland food" against "delicious food") scale
// the degree by the support ratio matched/(matched+contradicted): certainty
// about a tag drops when reviews disagree. Similarity lookups go through the
// memo, so a repeated (tag, reviewTag) pair costs a map probe. The second
// return is |T_e^tag|. Free function over an immutable cfg so indexing
// workers share no mutable state.
func degreeOfTruth(memo *sim.Memo, tag string, e EntityReviews, cfg degCfg) (float64, int) {
	var sum float64
	matched := 0
	contradicted := 0
	for _, t := range e.Tags {
		// Memo.Base degrades to (Phrase, conflict=false) for measures that
		// are not contradiction-aware, which makes this single path score
		// exactly as the plain-Phrase path would.
		base, conflict := memo.Base(tag, t)
		if base <= cfg.theta {
			continue
		}
		if conflict {
			contradicted++
			continue
		}
		sum += base
		matched++
	}
	if matched == 0 {
		return 0, 0
	}
	weight := 1.0
	if cfg.reviewWeight {
		weight = math.Log(float64(e.ReviewCount) + 1)
	}
	deg := weight / float64(matched) * sum
	if contradicted > 0 {
		deg *= float64(matched) / float64(matched+contradicted)
	}
	if cfg.frequencyAware && e.ReviewCount > 0 {
		// Mention-rate factor: a tag confirmed by most reviews is more
		// certain than one confirmed once. The square root keeps Eq. 1's
		// mean-similarity character dominant (see DESIGN.md §4 ablations).
		rate := float64(matched) / float64(e.ReviewCount)
		if rate > 1 {
			rate = 1
		}
		deg *= math.Sqrt(rate)
	}
	cfg.matchedCtr.Add(int64(matched))
	cfg.conflictCtr.Add(int64(contradicted))
	return deg, matched
}

// Lookup returns the posting list for an exact index tag (copy).
func (ix *Index) Lookup(tag string) []Entry {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return append([]Entry(nil), ix.tags[tag]...)
}

// lookupSimilarLocked is LookupSimilar's body; ix.mu must be held (shared).
func (ix *Index) lookupSimilarLocked(tag string, thetaFilter float64) []Entry {
	acc := map[string]float64{}
	for _, key := range ix.order {
		s := ix.memo.Phrase(tag, key)
		if s <= thetaFilter {
			continue
		}
		for _, entry := range ix.tags[key] {
			acc[entry.EntityID] += s * entry.Degree
		}
	}
	entries := make([]Entry, 0, len(acc))
	for id, deg := range acc {
		entries = append(entries, Entry{EntityID: id, Degree: deg})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Degree != entries[j].Degree {
			return entries[i].Degree > entries[j].Degree
		}
		return entries[i].EntityID < entries[j].EntityID
	})
	return entries
}

// LookupSimilar answers an unknown tag per §3.2: the union of the posting
// lists of every index tag whose similarity to the query tag exceeds
// θ_filter, with degrees multiplied by that similarity and summed across
// contributing tags (the S_t2 construction).
func (ix *Index) LookupSimilar(tag string, thetaFilter float64) []Entry {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.lookupSimilarLocked(tag, thetaFilter)
}

// Resolve implements the probing rule of Algorithm 1 lines 7–10: exact hit
// when the tag is indexed, otherwise the similar-tag union.
func (ix *Index) Resolve(tag string, thetaFilter float64) []Entry {
	var t0 time.Time
	if ix.o != nil {
		t0 = time.Now()
	}
	ix.mu.RLock()
	var out []Entry
	_, exact := ix.tags[tag]
	if exact {
		out = append([]Entry(nil), ix.tags[tag]...)
	} else {
		out = ix.lookupSimilarLocked(tag, thetaFilter)
	}
	ix.mu.RUnlock()
	if ix.o != nil {
		ix.resolveHist.Observe(time.Since(t0))
		if exact {
			ix.exactCtr.Inc()
		} else {
			ix.similarCtr.Inc()
		}
	}
	return out
}

// ResolveEach is the copy-free Resolve for the query hot path: exact hits
// iterate the posting list in place; only the similar-tag union (which must
// aggregate across tags) materializes a slice. f must not call back into the
// index (the lock is held).
func (ix *Index) ResolveEach(tag string, thetaFilter float64, f func(Entry) bool) {
	var t0 time.Time
	if ix.o != nil {
		t0 = time.Now()
	}
	ix.mu.RLock()
	entries, exact := ix.tags[tag]
	if exact {
		for _, e := range entries {
			if !f(e) {
				break
			}
		}
	} else {
		for _, e := range ix.lookupSimilarLocked(tag, thetaFilter) {
			if !f(e) {
				break
			}
		}
	}
	ix.mu.RUnlock()
	if ix.o != nil {
		ix.resolveHist.Observe(time.Since(t0))
		if exact {
			ix.exactCtr.Inc()
		} else {
			ix.similarCtr.Inc()
		}
	}
}

// History is the user tag history of §3.1: unknown tags extracted from user
// utterances queue here until the next indexing round. It is safe for
// concurrent use — queries on parallel conversations append to one shared
// history.
type History struct {
	mu      sync.Mutex
	pending []string
	seen    map[string]bool
}

// NewHistory returns an empty history.
func NewHistory() *History { return &History{seen: map[string]bool{}} }

// Add queues a tag once; duplicates are ignored.
func (h *History) Add(tag string) {
	if tag == "" {
		return
	}
	h.mu.Lock()
	if !h.seen[tag] {
		h.seen[tag] = true
		h.pending = append(h.pending, tag)
	}
	h.mu.Unlock()
}

// Pending returns queued tags in arrival order (a defensive copy; the query
// path should prefer Each, which does not allocate).
func (h *History) Pending() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]string(nil), h.pending...)
}

// Each calls f for every queued tag in arrival order without copying,
// stopping early when f returns false. f must not call back into the
// history (the lock is held).
func (h *History) Each(f func(tag string) bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, t := range h.pending {
		if !f(t) {
			return
		}
	}
}

// Drain returns and clears the queue (the seen-set persists so a drained
// tag is not re-queued).
func (h *History) Drain() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := h.pending
	h.pending = nil
	return out
}

// Len returns the number of queued tags.
func (h *History) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.pending)
}
