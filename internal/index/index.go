// Package index implements the subjective tag inverted index of §3.1
// (Table 1, Fig. 1): each subjective tag maps to the entities whose reviews
// mention it, with a degree of truth computed by Eq. 1:
//
//	Deg_truth(tag, e) = log(|Re|+1) / |T_e^tag| · Σ_{t ∈ T_e^tag} Sim(tag, t)
//
// where Re is e's review set and T_e^tag the review tags whose similarity to
// tag exceeds θ_index. Unknown query tags are answered by combining similar
// index tags (§3.2) and queued in the user tag history for the next indexing
// round — the adaptive loop of Fig. 1.
package index

import (
	"math"
	"sort"
	"sync"
	"time"

	"saccs/internal/obs"
	"saccs/internal/sim"
)

// ContradictionAware is an optional similarity capability: Base returns the
// polarity-blind similarity plus whether the phrases' polarities conflict.
// sim.Conceptual implements it.
type ContradictionAware interface {
	Base(a, b string) (float64, bool)
}

// Entry is one entity under a tag with its degree of truth.
type Entry struct {
	EntityID string
	Degree   float64
}

// EntityReviews is the per-entity input to indexing: how many reviews the
// entity has and every subjective tag the extractor pulled from them.
type EntityReviews struct {
	EntityID    string
	ReviewCount int
	Tags        []string
}

// Index is the subjective tag inverted index.
type Index struct {
	measure    sim.Measure
	thetaIndex float64
	// reviewWeight applies Eq. 1's log(|Re|+1) factor; disabling it is the
	// ablation of the review-count weighting design choice.
	reviewWeight bool
	// frequencyAware scales degrees by the square root of the matched
	// mention rate (mentions per review).
	frequencyAware bool
	// tags maps an index tag to its posting list, sorted by degree desc.
	tags map[string][]Entry
	// order preserves insertion order for deterministic iteration.
	order []string

	// observability (nil when disabled; see SetObserver).
	o           *obs.Observer
	addTagHist  *obs.Histogram
	buildHist   *obs.Histogram
	resolveHist *obs.Histogram
	tagsGauge   *obs.Gauge
	entriesCtr  *obs.Counter
	matchedCtr  *obs.Counter
	conflictCtr *obs.Counter
	exactCtr    *obs.Counter
	similarCtr  *obs.Counter
}

// New returns an empty index using the given similarity measure and
// θ_index threshold for review-tag matching. Eq. 1's review-count weighting
// is on by default.
func New(measure sim.Measure, thetaIndex float64) *Index {
	return &Index{measure: measure, thetaIndex: thetaIndex, reviewWeight: true, frequencyAware: true, tags: map[string][]Entry{}}
}

// SetObserver attaches runtime observability: indexing rounds record build
// latency and tag/entry counts, lookups record resolution latency and
// exact-vs-similar hit counters. Call before concurrent use; a nil observer
// (the default) keeps every hot path free of instrumentation cost.
func (ix *Index) SetObserver(o *obs.Observer) {
	ix.o = o
	if o == nil {
		ix.addTagHist, ix.buildHist, ix.resolveHist = nil, nil, nil
		ix.tagsGauge = nil
		ix.entriesCtr, ix.matchedCtr, ix.conflictCtr = nil, nil, nil
		ix.exactCtr, ix.similarCtr = nil, nil
		return
	}
	ix.addTagHist = o.Histogram("index.add_tag")
	ix.buildHist = o.Histogram("index.build")
	ix.resolveHist = o.Histogram("index.resolve")
	ix.tagsGauge = o.Gauge("index.tags")
	ix.entriesCtr = o.Counter("index.entries.total")
	ix.matchedCtr = o.Counter("index.matched_mentions.total")
	ix.conflictCtr = o.Counter("index.contradicted_mentions.total")
	ix.exactCtr = o.Counter("index.resolve.exact.total")
	ix.similarCtr = o.Counter("index.resolve.similar.total")
}

// SetReviewWeighting toggles Eq. 1's log(|Re|+1) factor (ablation knob).
// It affects subsequent AddTag calls only.
func (ix *Index) SetReviewWeighting(on bool) { ix.reviewWeight = on }

// SetFrequencyAware toggles the mention-rate factor (ablation knob).
func (ix *Index) SetFrequencyAware(on bool) { ix.frequencyAware = on }

// Has reports whether tag is an index key (§3.2's "t ∈ index.keys").
func (ix *Index) Has(tag string) bool {
	_, ok := ix.tags[tag]
	return ok
}

// Tags returns the index keys in insertion order (a defensive copy; the
// query path should prefer EachTag, which does not allocate).
func (ix *Index) Tags() []string { return append([]string(nil), ix.order...) }

// EachTag calls f for every index key in insertion order, stopping early
// when f returns false. Unlike Tags it performs no copy.
func (ix *Index) EachTag(f func(tag string) bool) {
	for _, t := range ix.order {
		if !f(t) {
			return
		}
	}
}

// EachEntry calls f for every posting of an exact index tag in degree order,
// stopping early when f returns false. Unlike Lookup it performs no copy.
func (ix *Index) EachEntry(tag string, f func(Entry) bool) {
	for _, e := range ix.tags[tag] {
		if !f(e) {
			return
		}
	}
}

// Len returns the number of indexed tags.
func (ix *Index) Len() int { return len(ix.order) }

// AddTag runs one indexing round for a single tag (Fig. 1's indexer): every
// entity whose review tags include a mention similar enough to the tag is
// added with its Eq. 1 degree of truth. Re-adding a tag recomputes its
// posting list.
func (ix *Index) AddTag(tag string, entities []EntityReviews) {
	var t0 time.Time
	if ix.o != nil {
		t0 = time.Now()
	}
	var entries []Entry
	for _, e := range entities {
		deg, matched := ix.degreeOfTruth(tag, e)
		if matched == 0 {
			continue
		}
		entries = append(entries, Entry{EntityID: e.EntityID, Degree: deg})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Degree != entries[j].Degree {
			return entries[i].Degree > entries[j].Degree
		}
		return entries[i].EntityID < entries[j].EntityID
	})
	if _, exists := ix.tags[tag]; !exists {
		ix.order = append(ix.order, tag)
	}
	ix.tags[tag] = entries
	if ix.o != nil {
		ix.addTagHist.Observe(time.Since(t0))
		ix.entriesCtr.Add(int64(len(entries)))
		ix.tagsGauge.Set(float64(len(ix.order)))
	}
}

// Build indexes a whole tag set in one pass, recording the round's total
// latency and resulting index size when an observer is attached.
func (ix *Index) Build(tags []string, entities []EntityReviews) {
	var t0 time.Time
	if ix.o != nil {
		t0 = time.Now()
	}
	for _, t := range tags {
		ix.AddTag(t, entities)
	}
	if ix.o != nil {
		ix.buildHist.Observe(time.Since(t0))
		ix.o.Gauge("index.build.entities").Set(float64(len(entities)))
	}
}

// degreeOfTruth computes Eq. 1 for (tag, entity): the mean similarity of the
// entity's matching review tags, weighted by log(|Re|+1). When the measure
// is contradiction-aware, review tags that contradict the query tag (same
// concept, opposite polarity — "bland food" against "delicious food") scale
// the degree by the support ratio matched/(matched+contradicted): certainty
// about a tag drops when reviews disagree. The second return is |T_e^tag|.
func (ix *Index) degreeOfTruth(tag string, e EntityReviews) (float64, int) {
	ca, aware := ix.measure.(ContradictionAware)
	var sum float64
	matched := 0
	contradicted := 0
	for _, t := range e.Tags {
		if aware {
			base, conflict := ca.Base(tag, t)
			if base <= ix.thetaIndex {
				continue
			}
			if conflict {
				contradicted++
				continue
			}
			sum += base
			matched++
			continue
		}
		s := ix.measure.Phrase(tag, t)
		if s > ix.thetaIndex {
			sum += s
			matched++
		}
	}
	if matched == 0 {
		return 0, 0
	}
	weight := 1.0
	if ix.reviewWeight {
		weight = math.Log(float64(e.ReviewCount) + 1)
	}
	deg := weight / float64(matched) * sum
	if aware && contradicted > 0 {
		deg *= float64(matched) / float64(matched+contradicted)
	}
	if ix.frequencyAware && e.ReviewCount > 0 {
		// Mention-rate factor: a tag confirmed by most reviews is more
		// certain than one confirmed once. The square root keeps Eq. 1's
		// mean-similarity character dominant (see DESIGN.md §4 ablations).
		rate := float64(matched) / float64(e.ReviewCount)
		if rate > 1 {
			rate = 1
		}
		deg *= math.Sqrt(rate)
	}
	if ix.o != nil {
		ix.matchedCtr.Add(int64(matched))
		ix.conflictCtr.Add(int64(contradicted))
	}
	return deg, matched
}

// Lookup returns the posting list for an exact index tag (copy).
func (ix *Index) Lookup(tag string) []Entry {
	return append([]Entry(nil), ix.tags[tag]...)
}

// LookupSimilar answers an unknown tag per §3.2: the union of the posting
// lists of every index tag whose similarity to the query tag exceeds
// θ_filter, with degrees multiplied by that similarity and summed across
// contributing tags (the S_t2 construction).
func (ix *Index) LookupSimilar(tag string, thetaFilter float64) []Entry {
	acc := map[string]float64{}
	for _, key := range ix.order {
		s := ix.measure.Phrase(tag, key)
		if s <= thetaFilter {
			continue
		}
		for _, entry := range ix.tags[key] {
			acc[entry.EntityID] += s * entry.Degree
		}
	}
	entries := make([]Entry, 0, len(acc))
	for id, deg := range acc {
		entries = append(entries, Entry{EntityID: id, Degree: deg})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Degree != entries[j].Degree {
			return entries[i].Degree > entries[j].Degree
		}
		return entries[i].EntityID < entries[j].EntityID
	})
	return entries
}

// Resolve implements the probing rule of Algorithm 1 lines 7–10: exact hit
// when the tag is indexed, otherwise the similar-tag union.
func (ix *Index) Resolve(tag string, thetaFilter float64) []Entry {
	var t0 time.Time
	if ix.o != nil {
		t0 = time.Now()
	}
	var out []Entry
	exact := ix.Has(tag)
	if exact {
		out = ix.Lookup(tag)
	} else {
		out = ix.LookupSimilar(tag, thetaFilter)
	}
	if ix.o != nil {
		ix.resolveHist.Observe(time.Since(t0))
		if exact {
			ix.exactCtr.Inc()
		} else {
			ix.similarCtr.Inc()
		}
	}
	return out
}

// ResolveEach is the copy-free Resolve for the query hot path: exact hits
// iterate the posting list in place; only the similar-tag union (which must
// aggregate across tags) materializes a slice.
func (ix *Index) ResolveEach(tag string, thetaFilter float64, f func(Entry) bool) {
	var t0 time.Time
	if ix.o != nil {
		t0 = time.Now()
	}
	exact := ix.Has(tag)
	if exact {
		ix.EachEntry(tag, f)
	} else {
		for _, e := range ix.LookupSimilar(tag, thetaFilter) {
			if !f(e) {
				break
			}
		}
	}
	if ix.o != nil {
		ix.resolveHist.Observe(time.Since(t0))
		if exact {
			ix.exactCtr.Inc()
		} else {
			ix.similarCtr.Inc()
		}
	}
}

// History is the user tag history of §3.1: unknown tags extracted from user
// utterances queue here until the next indexing round. It is safe for
// concurrent use — queries on parallel conversations append to one shared
// history.
type History struct {
	mu      sync.Mutex
	pending []string
	seen    map[string]bool
}

// NewHistory returns an empty history.
func NewHistory() *History { return &History{seen: map[string]bool{}} }

// Add queues a tag once; duplicates are ignored.
func (h *History) Add(tag string) {
	if tag == "" {
		return
	}
	h.mu.Lock()
	if !h.seen[tag] {
		h.seen[tag] = true
		h.pending = append(h.pending, tag)
	}
	h.mu.Unlock()
}

// Pending returns queued tags in arrival order (a defensive copy; the query
// path should prefer Each, which does not allocate).
func (h *History) Pending() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]string(nil), h.pending...)
}

// Each calls f for every queued tag in arrival order without copying,
// stopping early when f returns false. f must not call back into the
// history (the lock is held).
func (h *History) Each(f func(tag string) bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, t := range h.pending {
		if !f(t) {
			return
		}
	}
}

// Drain returns and clears the queue (the seen-set persists so a drained
// tag is not re-queued).
func (h *History) Drain() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := h.pending
	h.pending = nil
	return out
}

// Len returns the number of queued tags.
func (h *History) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.pending)
}
