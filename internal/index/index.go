// Package index implements the subjective tag inverted index of §3.1
// (Table 1, Fig. 1): each subjective tag maps to the entities whose reviews
// mention it, with a degree of truth computed by Eq. 1:
//
//	Deg_truth(tag, e) = log(|Re|+1) / |T_e^tag| · Σ_{t ∈ T_e^tag} Sim(tag, t)
//
// where Re is e's review set and T_e^tag the review tags whose similarity to
// tag exceeds θ_index. Unknown query tags are answered by combining similar
// index tags (§3.2) and queued in the user tag history for the next indexing
// round — the adaptive loop of Fig. 1.
//
// # Concurrency: read-copy-update
//
// The index is split into a mutable Builder (the write side: Eq. 1 posting
// computation, worker pool, similarity memo) and an immutable Snapshot (the
// read side: lock-free probes over a frozen tag → postings map), published
// through an atomic pointer. Queries pin one Snapshot with Current at the
// start of the request and run against it lock-free for the request's whole
// lifetime; Build/AddTag/Load compute the next generation off to the side
// and publish it with a single atomic store. Readers in flight keep their
// old snapshot — a rebuild can neither block nor change a running query.
// Writers are serialized against each other by a small publish mutex that no
// reader ever touches.
//
// Build fans its Eq. 1 work out across a bounded worker pool (SetWorkers) —
// across tags for batch builds, across entity chunks for single-tag AddTag —
// and merges deterministically, so a parallel build is byte-identical to a
// serial one. Similarity scores are cached in a bounded sim.Memo shared by
// every generation, so a repeated (tag, reviewTag) pair is never recomputed.
// The BuildCtx/AddTagCtx variants poll their context between tags and
// entities and abort without publishing when it is cancelled.
package index

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"saccs/internal/obs"
	"saccs/internal/sim"
)

// ContradictionAware is an optional similarity capability: Base returns the
// polarity-blind similarity plus whether the phrases' polarities conflict.
// sim.Conceptual implements it.
type ContradictionAware interface {
	Base(a, b string) (float64, bool)
}

// Entry is one entity under a tag with its degree of truth.
type Entry struct {
	EntityID string
	Degree   float64
}

// EntityReviews is the per-entity input to indexing: how many reviews the
// entity has and every subjective tag the extractor pulled from them.
type EntityReviews struct {
	EntityID    string
	ReviewCount int
	Tags        []string
}

// Index is the subjective tag inverted index: a Builder computing posting
// lists off to the side, plus the atomically published current Snapshot.
// All read methods (Has, Lookup, Resolve, …) delegate to the snapshot
// current at call time; a request that needs one consistent view across
// several probes should pin Current() once and read through it.
type Index struct {
	// b computes posting lists and owns the indexing configuration.
	b *Builder

	// snap is the current published generation; never nil after New.
	snap atomic.Pointer[Snapshot]

	// publishMu serializes writers (Build, AddTag, Load, SetObserver)
	// deriving the next generation from the current one. Readers never
	// acquire it.
	publishMu sync.Mutex

	// gens numbers published generations; the counter lives on the Index
	// (not the snapshot chain) so SetObserver's republication of identical
	// contents does not consume a number.
	gens atomic.Uint64

	// Write-side observability (nil when disabled; see SetObserver, which
	// must be called before concurrent use).
	o            *obs.Observer
	addTagHist   *obs.Histogram
	buildHist    *obs.Histogram
	tagsGauge    *obs.Gauge
	workersGauge *obs.Gauge
	entriesCtr   *obs.Counter
}

// New returns an empty index using the given similarity measure and
// θ_index threshold for review-tag matching. Eq. 1's review-count weighting
// is on by default, as is the similarity memo; the worker pool defaults to
// GOMAXPROCS.
func New(measure sim.Measure, thetaIndex float64) *Index {
	return NewWithMemo(sim.NewMemo(measure), thetaIndex)
}

// NewWithMemo is New over a caller-supplied (possibly shared) similarity
// memo; see NewBuilderWithMemo. Every snapshot the index publishes reads
// similarities through this memo.
func NewWithMemo(memo *sim.Memo, thetaIndex float64) *Index {
	b := NewBuilderWithMemo(memo, thetaIndex)
	ix := &Index{b: b}
	ix.snap.Store(&Snapshot{
		memo:       b.Memo(),
		thetaIndex: thetaIndex,
		tags:       map[string][]Entry{},
	})
	return ix
}

// Current returns the currently published snapshot. The returned value is
// immutable and remains valid (and unchanged) for as long as the caller
// holds it, no matter how many rebuilds publish after it — pin it once per
// request for a consistent, lock-free view.
func (ix *Index) Current() *Snapshot { return ix.snap.Load() }

// Builder exposes the write side (for advanced callers that compute posting
// lists themselves; most should use Build/AddTag).
func (ix *Index) Builder() *Builder { return ix.b }

// SetObserver attaches runtime observability: indexing rounds record build
// latency, worker count, and tag/entry counts; lookups record resolution
// latency and exact-vs-similar hit counters; the similarity memo reports its
// hit/miss/eviction traffic. Call before concurrent use; a nil observer
// (the default) keeps every hot path free of instrumentation cost.
func (ix *Index) SetObserver(o *obs.Observer) {
	ix.publishMu.Lock()
	defer ix.publishMu.Unlock()
	ix.o = o
	ix.b.SetObserver(o)
	if o == nil {
		ix.addTagHist, ix.buildHist = nil, nil
		ix.tagsGauge, ix.workersGauge = nil, nil
		ix.entriesCtr = nil
	} else {
		ix.addTagHist = o.Histogram("index.add_tag")
		ix.buildHist = o.Histogram("index.build")
		ix.tagsGauge = o.Gauge("index.tags")
		ix.workersGauge = o.Gauge("index.build.workers")
		ix.entriesCtr = o.Counter("index.entries.total")
	}
	// Republish the current contents with re-wired read instruments.
	ix.snap.Store(ix.snap.Load().withObserver(o))
}

// SetReviewWeighting toggles Eq. 1's log(|Re|+1) factor (ablation knob).
// It affects subsequent builds only.
func (ix *Index) SetReviewWeighting(on bool) { ix.b.SetReviewWeighting(on) }

// SetFrequencyAware toggles the mention-rate factor (ablation knob).
func (ix *Index) SetFrequencyAware(on bool) { ix.b.SetFrequencyAware(on) }

// SetWorkers bounds the indexing worker pool; see Builder.SetWorkers.
func (ix *Index) SetWorkers(n int) { ix.b.SetWorkers(n) }

// MemoStats returns the similarity memo's lifetime hits, misses, and
// whole-shard evictions.
func (ix *Index) MemoStats() (hits, misses, evictions int64) {
	return ix.b.Memo().Stats()
}

// publish stamps next with a fresh generation number, installs it as the
// current generation, and returns its key count. Publication is also the
// readiness signal: with an observer attached, the service's health flips to
// ready on the first published generation.
func (ix *Index) publish(next *Snapshot) int {
	next.gen = ix.gens.Add(1)
	ix.snap.Store(next)
	if ix.o != nil {
		ix.o.Gauge("index.generation").Set(float64(next.gen))
		ix.o.MarkReady()
	}
	return len(next.order)
}

// AddTag runs one indexing round for a single tag (Fig. 1's indexer): every
// entity whose review tags include a mention similar enough to the tag is
// added with its Eq. 1 degree of truth, fanning out across the worker pool
// for large entity sets. Re-adding a tag recomputes its posting list. The
// new generation is published atomically; readers in flight keep theirs.
func (ix *Index) AddTag(tag string, entities []EntityReviews) {
	_ = ix.AddTagCtx(context.Background(), tag, entities)
}

// AddTagCtx is AddTag with cooperative cancellation: the posting computation
// polls ctx per entity, and a cancelled or expired context aborts the round
// with ctx's error before anything is published — the index is unchanged.
func (ix *Index) AddTagCtx(ctx context.Context, tag string, entities []EntityReviews) error {
	var t0 time.Time
	if ix.o != nil {
		t0 = time.Now()
	}
	cfg := ix.b.config()
	entries, err := ix.b.PostingsForTag(ctx, tag, entities, cfg)
	if err != nil {
		return err
	}
	ix.publishMu.Lock()
	n := ix.publish(ix.snap.Load().with([]string{tag}, [][]Entry{entries}))
	ix.publishMu.Unlock()
	if ix.o != nil {
		ix.addTagHist.Observe(time.Since(t0))
		ix.entriesCtr.Add(int64(len(entries)))
		ix.tagsGauge.Set(float64(n))
	}
	return nil
}

// Build indexes a whole tag set in one pass, fanning out across the worker
// pool — one goroutine per tag, each computing its posting list serially —
// then deriving and atomically publishing the next generation. The resulting
// index is byte-identical to a serial build. Latency, worker count, and
// resulting size are recorded when an observer is attached.
func (ix *Index) Build(tags []string, entities []EntityReviews) {
	_ = ix.BuildCtx(context.Background(), tags, entities)
}

// BuildCtx is Build with cooperative cancellation: worker loops poll ctx
// between tags and entities, and a cancelled or expired context aborts the
// whole round with ctx's error before anything is published — readers keep
// seeing the previous generation and no partial build ever becomes visible.
func (ix *Index) BuildCtx(ctx context.Context, tags []string, entities []EntityReviews) error {
	var t0 time.Time
	if ix.o != nil {
		t0 = time.Now()
	}
	cfg := ix.b.config()
	results, err := ix.b.Postings(ctx, tags, entities, cfg)
	if err != nil {
		return err
	}
	ix.publishMu.Lock()
	n := ix.publish(ix.snap.Load().with(tags, results))
	ix.publishMu.Unlock()
	if ix.o != nil {
		ix.buildHist.Observe(time.Since(t0))
		var total int64
		for _, es := range results {
			total += int64(len(es))
		}
		ix.entriesCtr.Add(total)
		ix.tagsGauge.Set(float64(n))
		ix.workersGauge.Set(float64(cfg.workers))
		ix.o.Gauge("index.build.entities").Set(float64(len(entities)))
	}
	return nil
}

// --- read delegation --------------------------------------------------------
//
// Each method reads through the snapshot current at call time. Multi-probe
// consumers (the Ranker, Save) should pin Current() once instead, so all
// probes see one generation.

// Has reports whether tag is an index key (§3.2's "t ∈ index.keys").
func (ix *Index) Has(tag string) bool { return ix.Current().Has(tag) }

// Tags returns the index keys in insertion order (a copy; the query path
// should prefer EachTag, which does not allocate).
func (ix *Index) Tags() []string { return ix.Current().Tags() }

// EachTag calls f for every index key in insertion order, stopping early
// when f returns false. The iteration is over one pinned snapshot, so f may
// call back into the index freely (nothing is locked).
func (ix *Index) EachTag(f func(tag string) bool) { ix.Current().EachTag(f) }

// EachEntry calls f for every posting of an exact index tag in degree order,
// stopping early when f returns false. Unlike Lookup it performs no copy.
func (ix *Index) EachEntry(tag string, f func(Entry) bool) { ix.Current().EachEntry(tag, f) }

// Len returns the number of indexed tags.
func (ix *Index) Len() int { return ix.Current().Len() }

// Lookup returns the posting list for an exact index tag (copy).
func (ix *Index) Lookup(tag string) []Entry { return ix.Current().Lookup(tag) }

// LookupSimilar answers an unknown tag per §3.2; see Snapshot.LookupSimilar.
func (ix *Index) LookupSimilar(tag string, thetaFilter float64) []Entry {
	return ix.Current().LookupSimilar(tag, thetaFilter)
}

// Resolve implements the probing rule of Algorithm 1 lines 7–10: exact hit
// when the tag is indexed, otherwise the similar-tag union.
func (ix *Index) Resolve(tag string, thetaFilter float64) []Entry {
	return ix.Current().Resolve(tag, thetaFilter)
}

// ResolveEach is the copy-free Resolve for the query hot path; see
// Snapshot.ResolveEach.
func (ix *Index) ResolveEach(tag string, thetaFilter float64, f func(Entry) bool) {
	ix.Current().ResolveEach(tag, thetaFilter, f)
}

// ResolveEachCtx is ResolveEach with cooperative cancellation; see
// Snapshot.ResolveEachCtx.
func (ix *Index) ResolveEachCtx(ctx context.Context, tag string, thetaFilter float64, f func(Entry) bool) error {
	return ix.Current().ResolveEachCtx(ctx, tag, thetaFilter, f)
}
