package index

import (
	"context"
	"sort"
	"time"

	"saccs/internal/obs"
	"saccs/internal/sim"
)

// Snapshot is one immutable, published generation of the index: the tag →
// posting-list map frozen at publication time. Every method is a pure read —
// the struct has no mutex field at all, so queries that pin a snapshot run
// completely lock-free and are never blocked (or affected) by a concurrent
// rebuild. The only locking reachable from a Snapshot is inside the shared
// sim.Memo's shards, and only on the similarity-fallback path; exact-hit
// resolution touches no lock whatsoever.
//
// Obtain a snapshot with Index.Current, use it for the whole request, and
// drop it; the garbage collector reclaims superseded generations once the
// last pinned reader finishes. The memory cost of a rebuild is therefore at
// most two live generations (plus shared posting slices: a publication
// copies the map and key order but reuses every unchanged posting list).
type Snapshot struct {
	// memo is the shared similarity cache (internally sharded, safe for
	// concurrent use); the similarity fallback scores query tags against
	// index keys through it.
	memo *sim.Memo
	// thetaIndex records the threshold the postings were computed with
	// (persisted informationally by Save).
	thetaIndex float64
	// tags maps an index tag to its posting list, sorted by degree desc.
	// Both map and slices are frozen at publication.
	tags map[string][]Entry
	// order preserves insertion order for deterministic iteration.
	order []string
	// gen is this generation's publication number, assigned by
	// Index.publish; 0 only for the initial empty snapshot. Wide events
	// record it so a slow query can be tied to the exact index state it read.
	gen uint64

	// Read-side observability (nil when disabled). The instruments are
	// atomic; recording to them mutates no snapshot state.
	resolveHist *obs.Histogram
	exactCtr    *obs.Counter
	similarCtr  *obs.Counter
}

// simScanCheckEvery is how many index keys the similarity fallback scans
// between context polls: frequent enough that an expired deadline interrupts
// a long scan within a few key comparisons, rare enough to stay off the
// per-key fast path.
const simScanCheckEvery = 32

// Generation returns the snapshot's publication number: 0 for the initial
// empty snapshot, then incrementing with every published generation.
func (s *Snapshot) Generation() uint64 { return s.gen }

// Has reports whether tag is an index key (§3.2's "t ∈ index.keys").
func (s *Snapshot) Has(tag string) bool {
	_, ok := s.tags[tag]
	return ok
}

// Len returns the number of indexed tags.
func (s *Snapshot) Len() int { return len(s.order) }

// Tags returns the index keys in insertion order (a copy; the query path
// should prefer EachTag, which does not allocate).
func (s *Snapshot) Tags() []string {
	return append([]string(nil), s.order...)
}

// EachTag calls f for every index key in insertion order, stopping early
// when f returns false.
func (s *Snapshot) EachTag(f func(tag string) bool) {
	for _, t := range s.order {
		if !f(t) {
			return
		}
	}
}

// EachEntry calls f for every posting of an exact index tag in degree order,
// stopping early when f returns false. Unlike Lookup it performs no copy.
func (s *Snapshot) EachEntry(tag string, f func(Entry) bool) {
	for _, e := range s.tags[tag] {
		if !f(e) {
			return
		}
	}
}

// Lookup returns the posting list for an exact index tag (copy).
func (s *Snapshot) Lookup(tag string) []Entry {
	return append([]Entry(nil), s.tags[tag]...)
}

// LookupSimilar answers an unknown tag per §3.2: the union of the posting
// lists of every index tag whose similarity to the query tag exceeds
// θ_filter, with degrees multiplied by that similarity and summed across
// contributing tags (the S_t2 construction).
func (s *Snapshot) LookupSimilar(tag string, thetaFilter float64) []Entry {
	out, _ := s.lookupSimilar(context.Background(), tag, thetaFilter)
	return out
}

// LookupSimilarCtx is LookupSimilar with cooperative cancellation: the
// context is polled every simScanCheckEvery index keys, and a cancelled or
// expired context aborts the scan with ctx's error and no partial results.
func (s *Snapshot) LookupSimilarCtx(ctx context.Context, tag string, thetaFilter float64) ([]Entry, error) {
	return s.lookupSimilar(ctx, tag, thetaFilter)
}

func (s *Snapshot) lookupSimilar(ctx context.Context, tag string, thetaFilter float64) ([]Entry, error) {
	acc := map[string]float64{}
	for i, key := range s.order {
		if i%simScanCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		sc := s.memo.Phrase(tag, key)
		if sc <= thetaFilter {
			continue
		}
		for _, entry := range s.tags[key] {
			acc[entry.EntityID] += sc * entry.Degree
		}
	}
	entries := make([]Entry, 0, len(acc))
	for id, deg := range acc {
		entries = append(entries, Entry{EntityID: id, Degree: deg})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Degree != entries[j].Degree {
			return entries[i].Degree > entries[j].Degree
		}
		return entries[i].EntityID < entries[j].EntityID
	})
	return entries, nil
}

// Resolve implements the probing rule of Algorithm 1 lines 7–10: exact hit
// when the tag is indexed, otherwise the similar-tag union.
func (s *Snapshot) Resolve(tag string, thetaFilter float64) []Entry {
	var t0 time.Time
	if s.resolveHist != nil {
		t0 = time.Now()
	}
	var out []Entry
	entries, exact := s.tags[tag]
	if exact {
		out = append([]Entry(nil), entries...)
	} else {
		out, _ = s.lookupSimilar(context.Background(), tag, thetaFilter)
	}
	if s.resolveHist != nil {
		s.resolveHist.Observe(time.Since(t0))
		if exact {
			s.exactCtr.Inc()
		} else {
			s.similarCtr.Inc()
		}
	}
	return out
}

// ResolveEach is the copy-free Resolve for the query hot path: exact hits
// iterate the posting list in place; only the similar-tag union (which must
// aggregate across tags) materializes a slice. Unlike the pre-snapshot
// index, no lock is held during f — the callback may be arbitrarily slow
// without stalling writers or other readers.
func (s *Snapshot) ResolveEach(tag string, thetaFilter float64, f func(Entry) bool) {
	_ = s.ResolveEachCtx(context.Background(), tag, thetaFilter, f)
}

// ResolveEachCtx is ResolveEach with cooperative cancellation: the context
// is polled before the probe and periodically inside the similarity scan. On
// a cancelled or expired context it returns ctx's error without invoking f
// for any further entry.
func (s *Snapshot) ResolveEachCtx(ctx context.Context, tag string, thetaFilter float64, f func(Entry) bool) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	var t0 time.Time
	if s.resolveHist != nil {
		t0 = time.Now()
	}
	entries, exact := s.tags[tag]
	if exact {
		for _, e := range entries {
			if !f(e) {
				break
			}
		}
	} else {
		union, err := s.lookupSimilar(ctx, tag, thetaFilter)
		if err != nil {
			return err
		}
		for _, e := range union {
			if !f(e) {
				break
			}
		}
	}
	if s.resolveHist != nil {
		s.resolveHist.Observe(time.Since(t0))
		if exact {
			s.exactCtr.Inc()
		} else {
			s.similarCtr.Inc()
		}
	}
	return nil
}

// ResolveDynamic is Resolve with a per-tag dynamic θ_filter (§7): unknown
// tags are answered at DynamicTheta(baseTheta, tag) instead of a fixed
// threshold.
func (s *Snapshot) ResolveDynamic(tag string, baseTheta float64) []Entry {
	if entries, ok := s.tags[tag]; ok {
		return append([]Entry(nil), entries...)
	}
	out, _ := s.lookupSimilar(context.Background(), tag, DynamicTheta(baseTheta, tag))
	return out
}

// with derives the next generation: a copy of s with each tags[i] bound to
// postings[i] (appended to the key order when new). Shared posting lists are
// reused, not copied — only the map and key order are rebuilt.
func (s *Snapshot) with(tags []string, postings [][]Entry) *Snapshot {
	next := &Snapshot{
		memo:        s.memo,
		thetaIndex:  s.thetaIndex,
		tags:        make(map[string][]Entry, len(s.tags)+len(tags)),
		order:       make([]string, 0, len(s.order)+len(tags)),
		resolveHist: s.resolveHist,
		exactCtr:    s.exactCtr,
		similarCtr:  s.similarCtr,
	}
	for _, t := range s.order {
		next.tags[t] = s.tags[t]
		next.order = append(next.order, t)
	}
	for i, t := range tags {
		if _, exists := next.tags[t]; !exists {
			next.order = append(next.order, t)
		}
		next.tags[t] = postings[i]
	}
	return next
}

// withContents derives a generation whose contents are replaced wholesale
// (the Load path), keeping the memo, threshold, and instruments.
func (s *Snapshot) withContents(tags map[string][]Entry, order []string) *Snapshot {
	return &Snapshot{
		memo:        s.memo,
		thetaIndex:  s.thetaIndex,
		tags:        tags,
		order:       order,
		resolveHist: s.resolveHist,
		exactCtr:    s.exactCtr,
		similarCtr:  s.similarCtr,
	}
}

// withObserver derives a generation with re-wired read instruments (the
// SetObserver path), sharing the contents.
func (s *Snapshot) withObserver(o *obs.Observer) *Snapshot {
	next := &Snapshot{
		memo:       s.memo,
		thetaIndex: s.thetaIndex,
		tags:       s.tags,
		order:      s.order,
		gen:        s.gen,
	}
	if o != nil {
		next.resolveHist = o.Histogram("index.resolve")
		next.exactCtr = o.Counter("index.resolve.exact.total")
		next.similarCtr = o.Counter("index.resolve.similar.total")
	}
	return next
}
