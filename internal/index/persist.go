package index

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
)

// snapshotFile is the serializable form of an index generation: tag →
// posting list. The similarity measure and thresholds are configuration, not
// state, so they are not persisted; load into an Index constructed with the
// same measure.
type snapshotFile struct {
	// Version guards the wire format.
	Version int `json:"version"`
	// ThetaIndex records the threshold the postings were computed with
	// (informational; loading does not override the target's threshold).
	ThetaIndex float64 `json:"theta_index"`
	// Tags preserves insertion order.
	Tags []tagPostings `json:"tags"`
}

// tagPostings is one tag's posting list on the wire.
type tagPostings struct {
	Tag     string  `json:"tag"`
	Entries []Entry `json:"entries"`
}

// snapshotVersion is the current wire format version.
const snapshotVersion = 1

// Save writes the snapshot as JSON. A Snapshot is immutable, so the output
// is one consistent generation regardless of concurrent rebuilds.
func (s *Snapshot) Save(w io.Writer) error {
	file := snapshotFile{Version: snapshotVersion, ThetaIndex: s.thetaIndex}
	for _, tag := range s.order {
		file.Tags = append(file.Tags, tagPostings{Tag: tag, Entries: s.tags[tag]})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(file)
}

// Save writes the currently published generation as JSON. The generation is
// pinned once, so a snapshot taken during concurrent rebuilds is consistent.
func (ix *Index) Save(w io.Writer) error { return ix.Current().Save(w) }

// Load replaces the index's postings with a previously saved snapshot,
// published atomically: readers in flight keep their pinned generation. The
// receiver keeps its similarity measure and thresholds.
//
// Load validates the snapshot fully before publishing: truncated or corrupt
// input — trailing garbage, an unknown version, duplicate tags or entities,
// empty keys, non-finite or negative degrees, postings out of Save's
// (degree desc, ID asc) order — is rejected with a wrapped error and leaves
// the index unchanged. It never panics on adversarial input (the
// FuzzSnapshotDecode target enforces this).
func (ix *Index) Load(r io.Reader) error {
	dec := json.NewDecoder(r)
	var file snapshotFile
	if err := dec.Decode(&file); err != nil {
		return fmt.Errorf("index: decoding snapshot: %w", err)
	}
	if _, err := dec.Token(); !errors.Is(err, io.EOF) {
		return fmt.Errorf("index: corrupt snapshot: trailing data after snapshot value")
	}
	if file.Version != snapshotVersion {
		return fmt.Errorf("index: unsupported snapshot version %d", file.Version)
	}
	tags := make(map[string][]Entry, len(file.Tags))
	order := make([]string, 0, len(file.Tags))
	for _, tp := range file.Tags {
		if tp.Tag == "" {
			return fmt.Errorf("index: corrupt snapshot: empty tag key")
		}
		if _, dup := tags[tp.Tag]; dup {
			return fmt.Errorf("index: duplicate tag %q in snapshot", tp.Tag)
		}
		if err := validPostings(tp.Tag, tp.Entries); err != nil {
			return fmt.Errorf("index: corrupt snapshot: %w", err)
		}
		tags[tp.Tag] = tp.Entries
		order = append(order, tp.Tag)
	}
	ix.publishMu.Lock()
	ix.publish(ix.snap.Load().withContents(tags, order))
	ix.publishMu.Unlock()
	return nil
}

// validPostings checks one tag's posting list for the invariants Save
// guarantees: non-empty entity IDs, no duplicate entity, finite non-negative
// degrees, and (degree desc, entity ID asc) order.
func validPostings(tag string, entries []Entry) error {
	seen := make(map[string]bool, len(entries))
	for i, e := range entries {
		if e.EntityID == "" {
			return fmt.Errorf("tag %q: posting %d has an empty entity ID", tag, i)
		}
		if seen[e.EntityID] {
			return fmt.Errorf("tag %q: duplicate entity %q", tag, e.EntityID)
		}
		seen[e.EntityID] = true
		if math.IsNaN(e.Degree) || math.IsInf(e.Degree, 0) || e.Degree < 0 {
			return fmt.Errorf("tag %q: entity %q has invalid degree %v", tag, e.EntityID, e.Degree)
		}
		if i > 0 {
			prev := entries[i-1]
			if prev.Degree < e.Degree || (prev.Degree == e.Degree && prev.EntityID >= e.EntityID) {
				return fmt.Errorf("tag %q: postings out of order at %d (%q deg=%v before %q deg=%v)",
					tag, i, prev.EntityID, prev.Degree, e.EntityID, e.Degree)
			}
		}
	}
	return nil
}
