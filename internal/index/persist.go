package index

import (
	"encoding/json"
	"fmt"
	"io"
)

// Snapshot is the serializable form of an index: tag → posting list. The
// similarity measure and thresholds are configuration, not state, so they
// are not persisted; load into an Index constructed with the same measure.
type Snapshot struct {
	// Version guards the wire format.
	Version int `json:"version"`
	// ThetaIndex records the threshold the postings were computed with
	// (informational; loading does not override the target's threshold).
	ThetaIndex float64 `json:"theta_index"`
	// Tags preserves insertion order.
	Tags []TagPostings `json:"tags"`
}

// TagPostings is one tag's posting list.
type TagPostings struct {
	Tag     string  `json:"tag"`
	Entries []Entry `json:"entries"`
}

// snapshotVersion is the current wire format version.
const snapshotVersion = 1

// Save writes the index as JSON. It holds the shared lock for the duration,
// so a snapshot taken during concurrent queries is consistent.
func (ix *Index) Save(w io.Writer) error {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	snap := Snapshot{Version: snapshotVersion, ThetaIndex: ix.thetaIndex}
	for _, tag := range ix.order {
		snap.Tags = append(snap.Tags, TagPostings{Tag: tag, Entries: ix.tags[tag]})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// Load replaces the index's postings with a previously saved snapshot.
// The receiver keeps its similarity measure and thresholds.
func (ix *Index) Load(r io.Reader) error {
	var snap Snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("index: decoding snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return fmt.Errorf("index: unsupported snapshot version %d", snap.Version)
	}
	tags := make(map[string][]Entry, len(snap.Tags))
	order := make([]string, 0, len(snap.Tags))
	for _, tp := range snap.Tags {
		if _, dup := tags[tp.Tag]; dup {
			return fmt.Errorf("index: duplicate tag %q in snapshot", tp.Tag)
		}
		tags[tp.Tag] = tp.Entries
		order = append(order, tp.Tag)
	}
	ix.mu.Lock()
	ix.tags = tags
	ix.order = order
	ix.mu.Unlock()
	return nil
}
