package index

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
)

// snapshotFile is the serializable form of an index generation: tag →
// posting list. The similarity measure and thresholds are configuration, not
// state, so they are not persisted; load into an Index constructed with the
// same measure.
//
// Two framings share the struct. Version 1 (Save/Load) is a full-world
// snapshot and carries only ThetaIndex + Tags. Version 2 (WriteBase/
// WriteDelta/LoadStack) adds LSM framing for the streaming-ingest tier: Kind
// distinguishes a base ("full") from a mini-snapshot ("delta"), Seq is the
// WAL durability watermark the file was cut at, and for deltas Entities
// lists the dirty entity IDs the postings cover. The extra fields are
// omitempty so version-1 output is byte-identical to what it always was.
type snapshotFile struct {
	// Version guards the wire format.
	Version int `json:"version"`
	// Kind is "full" or "delta" (version 2 only; empty in version 1).
	Kind string `json:"kind,omitempty"`
	// Seq is the WAL sequence watermark (version 2 only).
	Seq uint64 `json:"seq,omitempty"`
	// ThetaIndex records the threshold the postings were computed with
	// (informational; loading does not override the target's threshold).
	ThetaIndex float64 `json:"theta_index"`
	// Entities lists the dirty entities a delta covers (version 2 deltas
	// only); every posting entry must reference one of them.
	Entities []string `json:"entities,omitempty"`
	// Tags preserves insertion order.
	Tags []tagPostings `json:"tags"`
}

// tagPostings is one tag's posting list on the wire.
type tagPostings struct {
	Tag     string  `json:"tag"`
	Entries []Entry `json:"entries"`
}

// snapshotVersion is the full-world snapshot wire format version.
const snapshotVersion = 1

// stackVersion is the LSM (base + delta stack) wire format version.
const stackVersion = 2

// The two version-2 framing kinds.
const (
	kindFull  = "full"
	kindDelta = "delta"
)

// Save writes the snapshot as JSON. A Snapshot is immutable, so the output
// is one consistent generation regardless of concurrent rebuilds.
func (s *Snapshot) Save(w io.Writer) error {
	file := snapshotFile{Version: snapshotVersion, ThetaIndex: s.thetaIndex}
	for _, tag := range s.order {
		file.Tags = append(file.Tags, tagPostings{Tag: tag, Entries: s.tags[tag]})
	}
	return encodeSnapshotFile(w, file)
}

// Save writes the currently published generation as JSON. The generation is
// pinned once, so a snapshot taken during concurrent rebuilds is consistent.
func (ix *Index) Save(w io.Writer) error { return ix.Current().Save(w) }

// WriteBase writes the snapshot as a version-2 base ("full") file stamped
// with the WAL sequence watermark it was compacted at. Apart from the
// framing fields the payload matches Save.
func (s *Snapshot) WriteBase(w io.Writer, seq uint64) error {
	file := snapshotFile{Version: stackVersion, Kind: kindFull, Seq: seq, ThetaIndex: s.thetaIndex}
	for _, tag := range s.order {
		file.Tags = append(file.Tags, tagPostings{Tag: tag, Entries: s.tags[tag]})
	}
	return encodeSnapshotFile(w, file)
}

// WriteDelta writes one mini-snapshot as a version-2 "delta" file. The delta
// must carry its WAL watermark in Seq; thetaIndex is recorded for the same
// informational purpose as in Save.
func WriteDelta(w io.Writer, thetaIndex float64, d *Delta) error {
	file := snapshotFile{
		Version:    stackVersion,
		Kind:       kindDelta,
		Seq:        d.Seq,
		ThetaIndex: thetaIndex,
		Entities:   d.Entities,
	}
	for i, tag := range d.Tags {
		file.Tags = append(file.Tags, tagPostings{Tag: tag, Entries: d.Postings[i]})
	}
	return encodeSnapshotFile(w, file)
}

func encodeSnapshotFile(w io.Writer, file snapshotFile) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(file)
}

// Load replaces the index's postings with a previously saved snapshot,
// published atomically: readers in flight keep their pinned generation. The
// receiver keeps its similarity measure and thresholds.
//
// Load validates the snapshot fully before publishing: truncated or corrupt
// input — trailing garbage, an unknown version, duplicate tags or entities,
// empty keys, non-finite or negative degrees, postings out of Save's
// (degree desc, ID asc) order — is rejected with a wrapped error and leaves
// the index unchanged. It never panics on adversarial input (the
// FuzzSnapshotDecode target enforces this).
//
// Load accepts a version-1 snapshot or a version-2 base ("full") file. A
// version-2 mini-snapshot ("delta") is NOT a full world — its postings cover
// only the dirty entities — so loading one here is rejected; replay a delta
// stack with LoadStack instead.
func (ix *Index) Load(r io.Reader) error {
	file, err := decodeSnapshotFile(r)
	if err != nil {
		return err
	}
	if file.Kind == kindDelta {
		return fmt.Errorf("index: corrupt snapshot: a mini-snapshot (delta) is not a full world; load it with LoadStack")
	}
	tags, order, err := validateSnapshotFile(file)
	if err != nil {
		return err
	}
	ix.publishMu.Lock()
	ix.publish(ix.snap.Load().withContents(tags, order))
	ix.publishMu.Unlock()
	return nil
}

// LoadStack replays an LSM stack — one version-2 base file plus zero or more
// version-2 delta files in ascending watermark order — and publishes the
// folded result as one generation. Every file is validated before anything
// is published; on any error the index is unchanged.
//
// Strictness: the base must be version 2 kind "full" (a version-1 snapshot
// in a stack is a mixed-version stack and is rejected — re-compact instead),
// every delta must be version 2 kind "delta", and watermarks must be
// strictly increasing from the base's. The top watermark is returned.
func (ix *Index) LoadStack(base io.Reader, deltas ...io.Reader) (uint64, error) {
	file, err := decodeSnapshotFile(base)
	if err != nil {
		return 0, err
	}
	if file.Version != stackVersion || file.Kind != kindFull {
		return 0, fmt.Errorf("index: mixed-version stack: base must be a version %d %q file, got version %d kind %q",
			stackVersion, kindFull, file.Version, file.Kind)
	}
	tags, order, err := validateSnapshotFile(file)
	if err != nil {
		return 0, err
	}
	seq := file.Seq
	parsed := make([]*Delta, 0, len(deltas))
	for i, r := range deltas {
		d, _, derr := ReadDelta(r)
		if derr != nil {
			return 0, fmt.Errorf("index: stack delta %d: %w", i, derr)
		}
		if d.Seq <= seq {
			return 0, fmt.Errorf("index: stack delta %d: watermark %d not above predecessor %d", i, d.Seq, seq)
		}
		seq = d.Seq
		parsed = append(parsed, d)
	}
	next := ix.snap.Load().withContents(tags, order)
	for _, d := range parsed {
		next = next.withDelta(d)
	}
	ix.publishMu.Lock()
	ix.publish(next)
	ix.publishMu.Unlock()
	return seq, nil
}

// ReadDelta decodes and fully validates one version-2 mini-snapshot file,
// returning the delta and the thetaIndex it was computed with. Validation
// mirrors Load's — plus the delta-specific invariants: a non-empty dirty
// entity list with no duplicates, and every posting entry referencing a
// declared dirty entity.
func ReadDelta(r io.Reader) (*Delta, float64, error) {
	file, err := decodeSnapshotFile(r)
	if err != nil {
		return nil, 0, err
	}
	if file.Version != stackVersion || file.Kind != kindDelta {
		return nil, 0, fmt.Errorf("index: not a mini-snapshot: version %d kind %q", file.Version, file.Kind)
	}
	if len(file.Entities) == 0 {
		return nil, 0, fmt.Errorf("index: corrupt mini-snapshot: no dirty entities declared")
	}
	dirty := make(map[string]bool, len(file.Entities))
	for _, id := range file.Entities {
		if id == "" {
			return nil, 0, fmt.Errorf("index: corrupt mini-snapshot: empty entity ID")
		}
		if dirty[id] {
			return nil, 0, fmt.Errorf("index: corrupt mini-snapshot: duplicate entity %q", id)
		}
		dirty[id] = true
	}
	d := &Delta{Seq: file.Seq, Entities: file.Entities}
	seen := make(map[string]bool, len(file.Tags))
	for _, tp := range file.Tags {
		if tp.Tag == "" {
			return nil, 0, fmt.Errorf("index: corrupt mini-snapshot: empty tag key")
		}
		if seen[tp.Tag] {
			return nil, 0, fmt.Errorf("index: duplicate tag %q in mini-snapshot", tp.Tag)
		}
		seen[tp.Tag] = true
		if err := validPostings(tp.Tag, tp.Entries); err != nil {
			return nil, 0, fmt.Errorf("index: corrupt mini-snapshot: %w", err)
		}
		for _, e := range tp.Entries {
			if !dirty[e.EntityID] {
				return nil, 0, fmt.Errorf("index: corrupt mini-snapshot: tag %q posts entity %q outside the dirty set", tp.Tag, e.EntityID)
			}
		}
		entries := tp.Entries
		if entries == nil {
			entries = make([]Entry, 0)
		}
		d.Tags = append(d.Tags, tp.Tag)
		d.Postings = append(d.Postings, entries)
	}
	return d, file.ThetaIndex, nil
}

// decodeSnapshotFile decodes one snapshot/delta JSON document and applies
// the cross-kind framing checks: no trailing data, a known version, and
// framing fields consistent with that version (a version-1 file must not
// smuggle version-2 framing, a version-2 file must declare a known kind and
// only deltas may list entities).
func decodeSnapshotFile(r io.Reader) (snapshotFile, error) {
	dec := json.NewDecoder(r)
	var file snapshotFile
	if err := dec.Decode(&file); err != nil {
		return file, fmt.Errorf("index: decoding snapshot: %w", err)
	}
	if _, err := dec.Token(); !errors.Is(err, io.EOF) {
		return file, fmt.Errorf("index: corrupt snapshot: trailing data after snapshot value")
	}
	switch file.Version {
	case snapshotVersion:
		if file.Kind != "" || file.Seq != 0 || len(file.Entities) != 0 {
			return file, fmt.Errorf("index: corrupt snapshot: version %d file carries version %d framing fields",
				snapshotVersion, stackVersion)
		}
	case stackVersion:
		if file.Kind != kindFull && file.Kind != kindDelta {
			return file, fmt.Errorf("index: corrupt snapshot: unknown kind %q", file.Kind)
		}
		if file.Kind == kindFull && len(file.Entities) != 0 {
			return file, fmt.Errorf("index: corrupt snapshot: %q file declares a dirty entity set", kindFull)
		}
	default:
		return file, fmt.Errorf("index: unsupported snapshot version %d", file.Version)
	}
	return file, nil
}

// validateSnapshotFile checks a full-world file's tag map (either version)
// and returns its contents ready for publication.
func validateSnapshotFile(file snapshotFile) (map[string][]Entry, []string, error) {
	tags := make(map[string][]Entry, len(file.Tags))
	order := make([]string, 0, len(file.Tags))
	for _, tp := range file.Tags {
		if tp.Tag == "" {
			return nil, nil, fmt.Errorf("index: corrupt snapshot: empty tag key")
		}
		if _, dup := tags[tp.Tag]; dup {
			return nil, nil, fmt.Errorf("index: duplicate tag %q in snapshot", tp.Tag)
		}
		if err := validPostings(tp.Tag, tp.Entries); err != nil {
			return nil, nil, fmt.Errorf("index: corrupt snapshot: %w", err)
		}
		tags[tp.Tag] = tp.Entries
		order = append(order, tp.Tag)
	}
	return tags, order, nil
}

// validPostings checks one tag's posting list for the invariants Save
// guarantees: non-empty entity IDs, no duplicate entity, finite non-negative
// degrees, and (degree desc, entity ID asc) order.
func validPostings(tag string, entries []Entry) error {
	seen := make(map[string]bool, len(entries))
	for i, e := range entries {
		if e.EntityID == "" {
			return fmt.Errorf("tag %q: posting %d has an empty entity ID", tag, i)
		}
		if seen[e.EntityID] {
			return fmt.Errorf("tag %q: duplicate entity %q", tag, e.EntityID)
		}
		seen[e.EntityID] = true
		if math.IsNaN(e.Degree) || math.IsInf(e.Degree, 0) || e.Degree < 0 {
			return fmt.Errorf("tag %q: entity %q has invalid degree %v", tag, e.EntityID, e.Degree)
		}
		if i > 0 {
			prev := entries[i-1]
			if prev.Degree < e.Degree || (prev.Degree == e.Degree && prev.EntityID >= e.EntityID) {
				return fmt.Errorf("tag %q: postings out of order at %d (%q deg=%v before %q deg=%v)",
					tag, i, prev.EntityID, prev.Degree, e.EntityID, e.Degree)
			}
		}
	}
	return nil
}
