package index

import "strings"

// This file implements the last future-work item of §7: "given the
// importance of thresholds in similarity assessments, it would be useful for
// SACCS to adjust these dynamically depending on the semantics of the
// subjective tags being compared."

// DynamicTheta computes a per-tag similarity threshold from a base value and
// the tag's semantic specificity: generic tags ("good food" — short, common
// opinion words) keep the base threshold, while specific multi-word tags
// ("true to its roots cuisine") lower it, because exact conceptual matches
// for rare phrasings are scarcer and near-misses should still count.
//
// The returned threshold is clamped to [base-0.15, base].
func DynamicTheta(base float64, tag string) float64 {
	words := strings.Fields(tag)
	specificity := 0.0
	if len(words) > 2 {
		specificity += 0.05 * float64(len(words)-2)
	}
	for _, w := range words {
		if len(w) >= 9 { // long, rare surface forms
			specificity += 0.03
		}
	}
	if specificity > 0.15 {
		specificity = 0.15
	}
	return base - specificity
}

// ResolveDynamic is Resolve with a per-tag dynamic θ_filter. It reads one
// pinned snapshot, so the exact-hit check and the similar-tag union see one
// consistent index generation.
func (ix *Index) ResolveDynamic(tag string, baseTheta float64) []Entry {
	return ix.Current().ResolveDynamic(tag, baseTheta)
}
