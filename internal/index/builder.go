package index

import (
	"context"
	"math"
	"runtime"
	"sort"
	"sync"

	"saccs/internal/obs"
	"saccs/internal/sim"
)

// Builder is the mutable write side of the index: it owns the indexing
// configuration (θ_index, Eq. 1 ablation knobs, worker-pool width) and the
// shared similarity memo, and computes posting lists off to the side of the
// serving Snapshot. A Builder never touches published state — Index derives
// and publishes the next Snapshot from the posting lists a Builder returns.
//
// Builder is safe for concurrent use: the configuration knobs are guarded by
// a mutex and captured once per build into an immutable degCfg, so worker
// goroutines never race the Set* methods, and the memo is internally sharded.
type Builder struct {
	// mu guards the configuration fields; posting computation reads them
	// exactly once through config().
	mu sync.Mutex

	// memo caches the similarity measure's pairwise scores (bounded, sharded,
	// safe for concurrent use). It wraps the measure passed to NewBuilder and
	// is shared with every Snapshot the index publishes.
	memo *sim.Memo

	thetaIndex float64
	// reviewWeight applies Eq. 1's log(|Re|+1) factor; disabling it is the
	// ablation of the review-count weighting design choice.
	reviewWeight bool
	// frequencyAware scales degrees by the square root of the matched
	// mention rate (mentions per review).
	frequencyAware bool
	// workers bounds the indexing worker pool; 0 means GOMAXPROCS.
	workers int

	matchedCtr  *obs.Counter
	conflictCtr *obs.Counter
}

// NewBuilder returns a builder over the given similarity measure and θ_index
// threshold. Eq. 1's review-count weighting and the mention-rate factor are
// on by default; the worker pool defaults to GOMAXPROCS.
func NewBuilder(measure sim.Measure, thetaIndex float64) *Builder {
	return NewBuilderWithMemo(sim.NewMemo(measure), thetaIndex)
}

// NewBuilderWithMemo is NewBuilder over a caller-supplied similarity memo.
// The memo is safe for concurrent use, so several indexes may share one —
// the shard router does, because its shards index the same tag vocabulary
// and would otherwise each recompute identical (query tag, index tag)
// similarities. Memoization is transparent: shared or not, every score is
// the same value the bare measure would return.
func NewBuilderWithMemo(memo *sim.Memo, thetaIndex float64) *Builder {
	return &Builder{
		memo:           memo,
		thetaIndex:     thetaIndex,
		reviewWeight:   true,
		frequencyAware: true,
	}
}

// Memo exposes the shared similarity memo (for the read-side Snapshot).
func (b *Builder) Memo() *sim.Memo { return b.memo }

// SetObserver wires the Eq. 1 accounting counters and the memo's hit/miss
// instrumentation. A nil observer detaches both.
func (b *Builder) SetObserver(o *obs.Observer) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.memo.SetObserver(o)
	if o == nil {
		b.matchedCtr, b.conflictCtr = nil, nil
		return
	}
	b.matchedCtr = o.Counter("index.matched_mentions.total")
	b.conflictCtr = o.Counter("index.contradicted_mentions.total")
}

// SetReviewWeighting toggles Eq. 1's log(|Re|+1) factor (ablation knob).
// It affects subsequent builds only.
func (b *Builder) SetReviewWeighting(on bool) {
	b.mu.Lock()
	b.reviewWeight = on
	b.mu.Unlock()
}

// SetFrequencyAware toggles the mention-rate factor (ablation knob).
func (b *Builder) SetFrequencyAware(on bool) {
	b.mu.Lock()
	b.frequencyAware = on
	b.mu.Unlock()
}

// SetWorkers bounds the indexing worker pool: batch builds fan out across
// tags and single-tag builds across entity chunks with at most n goroutines.
// n ≤ 0 restores the default (GOMAXPROCS); n = 1 forces serial indexing. The
// merged result is identical for every worker count.
func (b *Builder) SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	b.mu.Lock()
	b.workers = n
	b.mu.Unlock()
}

// degCfg is an immutable snapshot of the knobs Eq. 1 depends on, taken once
// per indexing round so worker goroutines never race the Set* methods.
type degCfg struct {
	theta          float64
	reviewWeight   bool
	frequencyAware bool
	workers        int
	matchedCtr     *obs.Counter
	conflictCtr    *obs.Counter
}

// config captures the indexing configuration under the lock.
func (b *Builder) config() degCfg {
	b.mu.Lock()
	defer b.mu.Unlock()
	w := b.workers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return degCfg{
		theta:          b.thetaIndex,
		reviewWeight:   b.reviewWeight,
		frequencyAware: b.frequencyAware,
		workers:        w,
		matchedCtr:     b.matchedCtr,
		conflictCtr:    b.conflictCtr,
	}
}

// Postings runs Eq. 1 for every tag against every entity, fanning out across
// the worker pool — one goroutine per tag, each computing its posting list
// serially — and returns the lists in input order, so the result is identical
// for any worker count. Cancellation is checked between tags and between
// entities inside each worker loop; on a cancelled or expired context the
// whole round aborts with ctx's error and no partial lists are returned.
func (b *Builder) Postings(ctx context.Context, tags []string, entities []EntityReviews, cfg degCfg) ([][]Entry, error) {
	results := make([][]Entry, len(tags))
	if cfg.workers <= 1 || len(tags) < 2 {
		for i, t := range tags {
			var err error
			if results[i], err = b.postingsForTag(ctx, t, entities, cfg, false); err != nil {
				return nil, err
			}
		}
		return results, nil
	}
	sem := make(chan struct{}, cfg.workers)
	var wg sync.WaitGroup
	for i, t := range tags {
		wg.Add(1)
		go func(i int, t string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			// A worker that starts after cancellation skips its tag; the
			// aggregate error check below rejects the whole round.
			if ctx.Err() != nil {
				return
			}
			results[i], _ = b.postingsForTag(ctx, t, entities, cfg, false)
		}(i, t)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// PostingsForTag runs Eq. 1 for one tag, fanning the entity list out across
// worker chunks (the single-tag AddTag path).
func (b *Builder) PostingsForTag(ctx context.Context, tag string, entities []EntityReviews, cfg degCfg) ([]Entry, error) {
	return b.postingsForTag(ctx, tag, entities, cfg, true)
}

// postingsForTag computes one tag's posting list, fanning out across
// cfg.workers contiguous entity chunks when parallel is set. Chunk results
// concatenate in input order before the fully tie-broken sort, so the posting
// list is identical for any worker count. The context is polled once per
// entity.
func (b *Builder) postingsForTag(ctx context.Context, tag string, entities []EntityReviews, cfg degCfg, parallel bool) ([]Entry, error) {
	w := cfg.workers
	if !parallel || w > len(entities) {
		w = 1
	}
	// Posting buffers are pre-sized to their worst case (every entity
	// matches) so the append loops never reallocate mid-scan.
	var entries []Entry
	if w <= 1 {
		entries = make([]Entry, 0, len(entities))
		for _, e := range entities {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			deg, matched := degreeOfTruth(b.memo, tag, e, cfg)
			if matched == 0 {
				continue
			}
			entries = append(entries, Entry{EntityID: e.EntityID, Degree: deg})
		}
	} else {
		chunks := make([][]Entry, w)
		var wg sync.WaitGroup
		size := (len(entities) + w - 1) / w
		for c := 0; c < w; c++ {
			lo := c * size
			hi := lo + size
			if hi > len(entities) {
				hi = len(entities)
			}
			wg.Add(1)
			go func(c int, part []EntityReviews) {
				defer wg.Done()
				out := make([]Entry, 0, len(part))
				for _, e := range part {
					if ctx.Err() != nil {
						return
					}
					deg, matched := degreeOfTruth(b.memo, tag, e, cfg)
					if matched == 0 {
						continue
					}
					out = append(out, Entry{EntityID: e.EntityID, Degree: deg})
				}
				chunks[c] = out
			}(c, entities[lo:hi])
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var n int
		for _, part := range chunks {
			n += len(part)
		}
		entries = make([]Entry, 0, n)
		for _, part := range chunks {
			entries = append(entries, part...)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Degree != entries[j].Degree {
			return entries[i].Degree > entries[j].Degree
		}
		return entries[i].EntityID < entries[j].EntityID
	})
	return entries, nil
}

// degreeOfTruth computes Eq. 1 for (tag, entity): the mean similarity of the
// entity's matching review tags, weighted by log(|Re|+1). When the measure
// is contradiction-aware, review tags that contradict the query tag (same
// concept, opposite polarity — "bland food" against "delicious food") scale
// the degree by the support ratio matched/(matched+contradicted): certainty
// about a tag drops when reviews disagree. Similarity lookups go through the
// memo, so a repeated (tag, reviewTag) pair costs a map probe. The second
// return is |T_e^tag|. Free function over an immutable cfg so indexing
// workers share no mutable state.
func degreeOfTruth(memo *sim.Memo, tag string, e EntityReviews, cfg degCfg) (float64, int) {
	var sum float64
	matched := 0
	contradicted := 0
	for _, t := range e.Tags {
		// Memo.Base degrades to (Phrase, conflict=false) for measures that
		// are not contradiction-aware, which makes this single path score
		// exactly as the plain-Phrase path would.
		base, conflict := memo.Base(tag, t)
		if base <= cfg.theta {
			continue
		}
		if conflict {
			contradicted++
			continue
		}
		sum += base
		matched++
	}
	if matched == 0 {
		return 0, 0
	}
	weight := 1.0
	if cfg.reviewWeight {
		weight = math.Log(float64(e.ReviewCount) + 1)
	}
	deg := weight / float64(matched) * sum
	if contradicted > 0 {
		deg *= float64(matched) / float64(matched+contradicted)
	}
	if cfg.frequencyAware && e.ReviewCount > 0 {
		// Mention-rate factor: a tag confirmed by most reviews is more
		// certain than one confirmed once. The square root keeps Eq. 1's
		// mean-similarity character dominant (see DESIGN.md §4 ablations).
		rate := float64(matched) / float64(e.ReviewCount)
		if rate > 1 {
			rate = 1
		}
		deg *= math.Sqrt(rate)
	}
	cfg.matchedCtr.Add(int64(matched))
	cfg.conflictCtr.Add(int64(contradicted))
	return deg, matched
}
