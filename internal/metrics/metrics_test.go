package metrics

import (
	"math"
	"math/rand"
	"testing"

	"saccs/internal/tokenize"
)

func TestDCGFirstPositionWeighsMost(t *testing.T) {
	gains := map[string]float64{"a": 1, "b": 0.5}
	best := DCG(gains, []string{"a", "b"})
	worse := DCG(gains, []string{"b", "a"})
	if best <= worse {
		t.Fatalf("DCG must reward relevant-first: %v vs %v", best, worse)
	}
}

func TestNDCGIdealOrderIsOne(t *testing.T) {
	gains := map[string]float64{"a": 1, "b": 0.7, "c": 0.2}
	if got := NDCG(gains, []string{"a", "b", "c"}, 3); math.Abs(got-1) > 1e-12 {
		t.Fatalf("ideal ordering NDCG = %v", got)
	}
}

func TestNDCGRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	entities := []string{"a", "b", "c", "d", "e"}
	for trial := 0; trial < 100; trial++ {
		gains := map[string]float64{}
		for _, e := range entities {
			gains[e] = rng.Float64()
		}
		ranked := append([]string(nil), entities...)
		rng.Shuffle(len(ranked), func(i, j int) { ranked[i], ranked[j] = ranked[j], ranked[i] })
		k := 1 + rng.Intn(5)
		got := NDCG(gains, ranked, k)
		if got < 0 || got > 1+1e-12 {
			t.Fatalf("NDCG out of range: %v", got)
		}
	}
}

func TestNDCGTruncation(t *testing.T) {
	gains := map[string]float64{"a": 1, "b": 1, "c": 0}
	// Ranked list puts the irrelevant entity first; with k=1 the score must
	// be low, with k=3 higher.
	atOne := NDCG(gains, []string{"c", "a", "b"}, 1)
	atThree := NDCG(gains, []string{"c", "a", "b"}, 3)
	if atOne >= atThree {
		t.Fatalf("truncation wrong: k=1 %v vs k=3 %v", atOne, atThree)
	}
	if atOne != 0 {
		t.Fatalf("k=1 with irrelevant top must be 0: %v", atOne)
	}
}

func TestNDCGEmptyGains(t *testing.T) {
	if got := NDCG(map[string]float64{}, []string{"a"}, 5); got != 1 {
		t.Fatalf("no relevant entities: %v", got)
	}
}

func TestNDCGMissingEntityGainsZero(t *testing.T) {
	gains := map[string]float64{"a": 1}
	with := NDCG(gains, []string{"a", "zz"}, 2)
	if math.Abs(with-1) > 1e-12 {
		t.Fatalf("unknown entities must not hurt when ranked after: %v", with)
	}
}

func labelSeq(t *testing.T, names ...string) []tokenize.Label {
	t.Helper()
	out := make([]tokenize.Label, len(names))
	for i, n := range names {
		l, err := tokenize.ParseLabel(n)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = l
	}
	return out
}

func TestChunkPRFPerfect(t *testing.T) {
	gold := [][]tokenize.Label{labelSeq(t, "O", "B-AS", "I-AS", "O", "B-OP")}
	got := ChunkPRF(gold, gold)
	if got.Precision != 1 || got.Recall != 1 || got.F1 != 1 {
		t.Fatalf("perfect prediction: %+v", got)
	}
}

func TestChunkPRFBoundaryErrorCountsAsWrong(t *testing.T) {
	gold := [][]tokenize.Label{labelSeq(t, "O", "B-AS", "I-AS", "O")}
	pred := [][]tokenize.Label{labelSeq(t, "O", "B-AS", "O", "O")} // truncated chunk
	got := ChunkPRF(gold, pred)
	if got.Precision != 0 || got.Recall != 0 {
		t.Fatalf("exact-match must reject boundary errors: %+v", got)
	}
}

func TestChunkPRFKindMatters(t *testing.T) {
	gold := [][]tokenize.Label{labelSeq(t, "B-AS")}
	pred := [][]tokenize.Label{labelSeq(t, "B-OP")}
	got := ChunkPRF(gold, pred)
	if got.F1 != 0 {
		t.Fatalf("aspect predicted as opinion must not match: %+v", got)
	}
}

func TestChunkPRFPartial(t *testing.T) {
	gold := [][]tokenize.Label{labelSeq(t, "B-AS", "O", "B-OP", "O")}
	pred := [][]tokenize.Label{labelSeq(t, "B-AS", "O", "O", "B-OP")}
	got := ChunkPRF(gold, pred)
	// 1 TP (aspect), 1 FP (shifted opinion), 1 FN (missed opinion).
	if math.Abs(got.Precision-0.5) > 1e-12 || math.Abs(got.Recall-0.5) > 1e-12 {
		t.Fatalf("partial: %+v", got)
	}
}

func TestChunkPRFDuplicatePredictionsNotDoubleCounted(t *testing.T) {
	gold := [][]tokenize.Label{labelSeq(t, "B-AS", "B-AS")} // two gold chunks at 0 and 1
	pred := [][]tokenize.Label{labelSeq(t, "B-AS", "O")}
	got := ChunkPRF(gold, pred)
	if got.Precision != 1 {
		t.Fatalf("precision: %+v", got)
	}
	if math.Abs(got.Recall-0.5) > 1e-12 {
		t.Fatalf("recall: %+v", got)
	}
}

func TestBinaryMetrics(t *testing.T) {
	var b Binary
	// 3 TP, 1 FP, 4 TN, 2 FN
	for i := 0; i < 3; i++ {
		b.Observe(true, true)
	}
	b.Observe(true, false)
	for i := 0; i < 4; i++ {
		b.Observe(false, false)
	}
	for i := 0; i < 2; i++ {
		b.Observe(false, true)
	}
	if got := b.Accuracy(); math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("accuracy %v", got)
	}
	if got := b.Precision(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("precision %v", got)
	}
	if got := b.Recall(); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("recall %v", got)
	}
	wantF1 := 2 * 0.75 * 0.6 / (0.75 + 0.6)
	if got := b.F1(); math.Abs(got-wantF1) > 1e-12 {
		t.Fatalf("f1 %v", got)
	}
}

func TestBinaryEmptyGuards(t *testing.T) {
	var b Binary
	if b.Accuracy() != 0 || b.Precision() != 0 || b.Recall() != 0 || b.F1() != 0 {
		t.Fatal("empty metrics must be zero")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean: %v", got)
	}
}
