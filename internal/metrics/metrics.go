// Package metrics implements the evaluation measures of §6: NDCG over
// ranked entity lists (Eq. 10–11), exact-match chunk precision/recall/F1 for
// the aspect/opinion tagger (§6.3, NER-style), and binary classification
// metrics for the pairing models (§6.4).
package metrics

import (
	"math"
	"sort"

	"saccs/internal/tokenize"
)

// DCG computes Eq. 10 for a ranked entity list: gains[e] must already be the
// mean sat(q_i, e) over the query's tags, in [0, 1]. Entities absent from
// gains contribute zero gain.
func DCG(gains map[string]float64, ranked []string) float64 {
	var dcg float64
	for j, e := range ranked {
		g := gains[e]
		dcg += (math.Pow(2, g) - 1) / math.Log2(float64(j)+2)
	}
	return dcg
}

// IdealDCG computes the DCG of the best possible ordering of the entities in
// gains, truncated to k (Eq. 11's iDCG).
func IdealDCG(gains map[string]float64, k int) float64 {
	es := make([]string, 0, len(gains))
	for e := range gains {
		es = append(es, e)
	}
	sort.Slice(es, func(i, j int) bool {
		if gains[es[i]] != gains[es[j]] {
			return gains[es[i]] > gains[es[j]]
		}
		return es[i] < es[j] // deterministic tie-break
	})
	if k > 0 && len(es) > k {
		es = es[:k]
	}
	return DCG(gains, es)
}

// NDCG computes Eq. 11: DCG(ranked[:k]) / iDCG(k). It returns 1 when the
// ideal DCG is zero (nothing relevant exists, so any ordering is perfect).
func NDCG(gains map[string]float64, ranked []string, k int) float64 {
	if k > 0 && len(ranked) > k {
		ranked = ranked[:k]
	}
	ideal := IdealDCG(gains, k)
	if ideal == 0 {
		return 1
	}
	return DCG(gains, ranked) / ideal
}

// PRF bundles precision, recall and F1.
type PRF struct {
	Precision, Recall, F1 float64
}

// F1 from precision and recall, guarding the zero denominator.
func f1(p, r float64) float64 {
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// ChunkPRF computes exact-match precision/recall/F1 between gold and
// predicted IOB label sequences, decoded into chunks: a predicted aspect or
// opinion counts only if its kind and exact token boundaries match a gold
// chunk (§6.3: "it needs to match the exact terms present in the ground
// truth"). Sequences are paired by index; lengths must match per pair.
func ChunkPRF(gold, pred [][]tokenize.Label) PRF {
	var tp, fp, fn float64
	for i := range gold {
		gSpans := tokenize.Spans(gold[i])
		pSpans := tokenize.Spans(pred[i])
		gSet := make(map[tokenize.Span]bool, len(gSpans))
		for _, s := range gSpans {
			gSet[s] = true
		}
		matched := make(map[tokenize.Span]bool)
		for _, s := range pSpans {
			if gSet[s] && !matched[s] {
				tp++
				matched[s] = true
			} else {
				fp++
			}
		}
		fn += float64(len(gSpans) - len(matched))
	}
	var p, r float64
	if tp+fp > 0 {
		p = tp / (tp + fp)
	}
	if tp+fn > 0 {
		r = tp / (tp + fn)
	}
	return PRF{Precision: p, Recall: r, F1: f1(p, r)}
}

// Binary accumulates binary classification outcomes.
type Binary struct {
	TP, FP, TN, FN int
}

// Observe records one prediction against its gold label.
func (b *Binary) Observe(pred, gold bool) {
	switch {
	case pred && gold:
		b.TP++
	case pred && !gold:
		b.FP++
	case !pred && !gold:
		b.TN++
	default:
		b.FN++
	}
}

// Accuracy returns (TP+TN)/total, or 0 when empty.
func (b *Binary) Accuracy() float64 {
	n := b.TP + b.FP + b.TN + b.FN
	if n == 0 {
		return 0
	}
	return float64(b.TP+b.TN) / float64(n)
}

// Precision returns TP/(TP+FP), or 0 when undefined.
func (b *Binary) Precision() float64 {
	if b.TP+b.FP == 0 {
		return 0
	}
	return float64(b.TP) / float64(b.TP+b.FP)
}

// Recall returns TP/(TP+FN), or 0 when undefined.
func (b *Binary) Recall() float64 {
	if b.TP+b.FN == 0 {
		return 0
	}
	return float64(b.TP) / float64(b.TP+b.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (b *Binary) F1() float64 { return f1(b.Precision(), b.Recall()) }

// Mean returns the arithmetic mean of xs, or 0 when empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
