package search

import "testing"

// FuzzParseUtterance fuzzes the dialog shim's intent recognizer and slot
// filler. Invariants: the intent is always searchRestaurant, only the two
// known slots are filled, every filled value comes from the keyword lists,
// and — the word-boundary guarantee — every filled value occurs as a whole
// word of the utterance ("comparison" must never fill location=paris).
func FuzzParseUtterance(f *testing.F) {
	f.Add("I want an italian restaurant in montreal with delicious food")
	f.Add("a comparison of indiana-style and italianate lyonnaise dining")
	f.Add("french food in paris or lyon, or japanese in sydney?")
	f.Add("MONTREAL!!! Italian???")
	f.Add("")
	f.Add("chinese\nchinese\tchinese chinese")
	f.Fuzz(func(t *testing.T, utt string) {
		in := ParseUtterance(utt)
		if in.Name != "searchRestaurant" {
			t.Fatalf("intent %q for %q", in.Name, utt)
		}
		words := utteranceWords(utt)
		known := map[string][]string{SlotCuisine: cuisines, SlotLocation: locations}
		for slot, val := range in.Slots {
			vocab, ok := known[slot]
			if !ok {
				t.Fatalf("unknown slot %q filled for %q", slot, utt)
			}
			inVocab := false
			for _, v := range vocab {
				if v == val {
					inVocab = true
					break
				}
			}
			if !inVocab {
				t.Fatalf("slot %s=%q not from keyword list for %q", slot, val, utt)
			}
			if !words[val] {
				t.Fatalf("slot %s=%q filled but not a whole word of %q", slot, val, utt)
			}
		}
	})
}
