package search

import (
	"testing"

	"saccs/internal/index"
	"saccs/internal/sim"
	"saccs/internal/yelp"
)

func TestParseUtterance(t *testing.T) {
	in := ParseUtterance("I want an Italian restaurant in Melbourne that serves delicious food")
	if in.Name != "searchRestaurant" {
		t.Fatalf("intent: %s", in.Name)
	}
	if in.Slots[SlotCuisine] != "italian" || in.Slots[SlotLocation] != "melbourne" {
		t.Fatalf("slots: %v", in.Slots)
	}
	in2 := ParseUtterance("somewhere romantic please")
	if len(in2.Slots) != 0 {
		t.Fatalf("no slots expected: %v", in2.Slots)
	}
}

func TestParseUtteranceWordBoundaries(t *testing.T) {
	cases := []struct {
		utterance string
		cuisine   string
		location  string
	}{
		// Regressions for the substring matcher: slot keywords inside longer
		// words must not fill slots.
		{"a comparison of nearby places", "", ""},
		{"somewhere with indiana-style decor", "", ""},
		{"a frenchified menu would be fun", "", ""},
		// Whole-word mentions still fill, punctuation included.
		{"Italian, in Paris!", "italian", "paris"},
		{"indian food in toronto", "indian", "toronto"},
		{"best ramen in (Sydney)", "", "sydney"},
	}
	for _, tc := range cases {
		in := ParseUtterance(tc.utterance)
		if in.Slots[SlotCuisine] != tc.cuisine {
			t.Errorf("%q: cuisine = %q, want %q", tc.utterance, in.Slots[SlotCuisine], tc.cuisine)
		}
		if in.Slots[SlotLocation] != tc.location {
			t.Errorf("%q: location = %q, want %q", tc.utterance, in.Slots[SlotLocation], tc.location)
		}
	}
}

func TestAPISearchFilters(t *testing.T) {
	w := yelp.Generate(yelp.FastConfig())
	api := &API{World: w}
	all := api.Search(map[string]string{})
	if len(all) != len(w.Entities) {
		t.Fatalf("unfiltered search: %d", len(all))
	}
	match := api.Search(map[string]string{SlotCuisine: "italian", SlotLocation: "montreal"})
	if len(match) != len(w.Entities) {
		t.Fatalf("world is all-Italian-Montreal; got %d", len(match))
	}
	none := api.Search(map[string]string{SlotCuisine: "french"})
	if len(none) != 0 {
		t.Fatalf("french search must be empty: %d", len(none))
	}
}

func buildIndex() *index.Index {
	ix := index.New(sim.NewConceptual(), 0.55)
	es := []index.EntityReviews{
		{EntityID: "vue", ReviewCount: 10, Tags: []string{"good food", "good food", "tasty food", "friendly staff", "friendly staff"}},
		{EntityID: "hut", ReviewCount: 4, Tags: []string{"good food", "rude staff"}},
		{EntityID: "anchovy", ReviewCount: 6, Tags: []string{"creative cooking", "creative cooking", "creative cooking"}},
	}
	ix.Build([]string{"good food", "nice staff", "creative cooking"}, es)
	return ix
}

func TestRankSingleTag(t *testing.T) {
	r := &Ranker{Index: buildIndex(), ThetaFilter: 0.5}
	got := r.Rank([]string{"vue", "hut", "anchovy"}, []string{"good food"})
	if len(got) < 2 {
		t.Fatalf("rank: %v", got)
	}
	if got[0].EntityID != "vue" {
		t.Fatalf("vue must rank first (more reviews): %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Score > got[i-1].Score {
			t.Fatal("ranking not sorted")
		}
	}
}

func TestRankIntersectsWithAPI(t *testing.T) {
	r := &Ranker{Index: buildIndex(), ThetaFilter: 0.5}
	got := r.Rank([]string{"hut"}, []string{"good food"})
	for _, s := range got {
		if s.EntityID != "hut" {
			t.Fatalf("entity outside S_api leaked: %v", got)
		}
	}
}

func TestRankMultiTagIntersection(t *testing.T) {
	r := &Ranker{Index: buildIndex(), ThetaFilter: 0.5}
	got := r.Rank([]string{"vue", "hut", "anchovy"}, []string{"good food", "nice staff"})
	if len(got) == 0 {
		t.Fatal("empty result")
	}
	// vue matches both tags; hut matches food but its staff is rude.
	if got[0].EntityID != "vue" {
		t.Fatalf("vue must win the intersection: %v", got)
	}
}

func TestRankRelaxationWhenIntersectionEmpty(t *testing.T) {
	r := &Ranker{Index: buildIndex(), ThetaFilter: 0.5}
	// anchovy only matches creative cooking; no entity matches both tags
	// with exact postings (staff tag excludes anchovy).
	got := r.Rank([]string{"anchovy"}, []string{"creative cooking", "nice staff"})
	if len(got) == 0 {
		t.Fatal("relaxation must return partial matches instead of nothing")
	}
}

func TestRankNoTags(t *testing.T) {
	r := &Ranker{Index: buildIndex(), ThetaFilter: 0.5}
	got := r.Rank([]string{"a", "b"}, nil)
	if len(got) != 2 {
		t.Fatalf("no-tag rank must pass API results through: %v", got)
	}
}

func TestAggregations(t *testing.T) {
	ix := buildIndex()
	mean := &Ranker{Index: ix, ThetaFilter: 0.5, Agg: MeanAgg}
	prod := &Ranker{Index: ix, ThetaFilter: 0.5, Agg: ProductAgg}
	minr := &Ranker{Index: ix, ThetaFilter: 0.5, Agg: MinAgg}
	api := []string{"vue", "hut", "anchovy"}
	tags := []string{"good food", "nice staff"}
	for _, r := range []*Ranker{mean, prod, minr} {
		got := r.Rank(api, tags)
		if len(got) == 0 {
			t.Fatalf("agg %v produced nothing", r.Agg)
		}
		if got[0].EntityID != "vue" {
			t.Fatalf("agg %v: vue must still win: %v", r.Agg, got)
		}
	}
	// Anchovy matches creative cooking but not nice staff: the product
	// collapses to zero while the mean keeps the partial evidence.
	partial := []string{"creative cooking", "nice staff"}
	gotMean := mean.Rank([]string{"anchovy"}, partial)
	gotProd := prod.Rank([]string{"anchovy"}, partial)
	if len(gotMean) == 0 || len(gotProd) == 0 {
		t.Fatal("rankers must relax")
	}
	if gotProd[0].Score != 0 {
		t.Fatalf("product with missing tag must be 0: %v", gotProd)
	}
	if gotMean[0].Score <= 0 {
		t.Fatalf("mean with one matching tag must be positive: %v", gotMean)
	}
}

func TestRankedIDs(t *testing.T) {
	ids := RankedIDs([]Scored{{EntityID: "a"}, {EntityID: "b"}})
	if len(ids) != 2 || ids[0] != "a" {
		t.Fatalf("RankedIDs: %v", ids)
	}
}

func TestRankDeterministicTieBreak(t *testing.T) {
	r := &Ranker{Index: buildIndex(), ThetaFilter: 0.5}
	a := r.Rank([]string{"vue", "hut", "anchovy"}, []string{"good food"})
	b := r.Rank([]string{"anchovy", "hut", "vue"}, []string{"good food"})
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ordering depends on API order: %v vs %v", a, b)
		}
	}
}

// TestRankCoverageThenScoreOrder pins the full tie-break ladder: tag
// coverage first, aggregate score second, entity ID last — and checks it is
// stable under permuted API result order.
func TestRankCoverageThenScoreOrder(t *testing.T) {
	r := &Ranker{Index: buildIndex(), ThetaFilter: 0.5}
	api := []string{"vue", "hut", "anchovy"}
	tags := []string{"good food", "nice staff"}
	cases := []struct {
		name string
		api  []string
	}{
		{"input order", []string{"vue", "hut", "anchovy"}},
		{"reversed", []string{"anchovy", "hut", "vue"}},
		{"rotated", []string{"hut", "anchovy", "vue"}},
	}
	want := r.Rank(api, tags)
	// vue covers both tags, hut one, anchovy none: coverage must dominate
	// even though scores alone could order differently.
	if want[0].EntityID != "vue" || want[1].EntityID != "hut" || want[2].EntityID != "anchovy" {
		t.Fatalf("coverage-then-score order wrong: %v", want)
	}
	for _, tc := range cases {
		got := r.Rank(tc.api, tags)
		if len(got) != len(want) {
			t.Fatalf("%s: length %d, want %d", tc.name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: position %d = %v, want %v", tc.name, i, got[i], want[i])
			}
		}
	}
}
