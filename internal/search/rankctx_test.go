package search

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
)

// countdownCtx reports no error for the first `after` Err() polls, then the
// configured error forever. RankCtx and the snapshot probes cancel purely by
// polling Err(), so the countdown deterministically places an expiry at the
// Nth poll without any real clock.
type countdownCtx struct {
	context.Context
	mu    sync.Mutex
	after int
	err   error
}

func (c *countdownCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.after > 0 {
		c.after--
		return nil
	}
	return c.err
}

func TestRankCtxCancelledReturnsNoPartialResults(t *testing.T) {
	r := &Ranker{Index: buildIndex().Current(), ThetaFilter: 0.5}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := r.RankCtx(ctx, nil, []string{"vue", "hut", "anchovy"}, []string{"good food"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error: %v", err)
	}
	if out != nil {
		t.Fatalf("partial results on cancellation: %v", out)
	}
}

// TestRankCtxDeadlineObservedMidRank sweeps the expiry across every poll
// point of a multi-tag ranking (n = 0, 1, 2, …): wherever the deadline
// lands, the call must fail with the context error and nil results; once n
// exceeds the total poll count, the result must equal the uncancelled
// baseline exactly.
func TestRankCtxDeadlineObservedMidRank(t *testing.T) {
	ix := buildIndex().Current()
	api := []string{"vue", "hut", "anchovy"}
	// "quiet atmosphere" misses the index, forcing a similarity scan probe.
	tags := []string{"good food", "quiet atmosphere", "creative cooking"}
	mk := func() *Ranker { return &Ranker{Index: ix, ThetaFilter: 0.45} }
	want, err := mk().RankCtx(context.Background(), nil, api, tags)
	if err != nil || len(want) == 0 {
		t.Fatalf("baseline: %v %v", want, err)
	}
	const maxPolls = 1000
	completed := false
	for n := 0; n < maxPolls; n++ {
		ctx := &countdownCtx{Context: context.Background(), after: n, err: context.DeadlineExceeded}
		got, err := mk().RankCtx(ctx, nil, api, tags)
		if err == nil {
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d: result diverged from baseline: %v != %v", n, got, want)
			}
			completed = true
			break
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("n=%d: wrong error type: %v", n, err)
		}
		if got != nil {
			t.Fatalf("n=%d: partial results alongside error: %v", n, got)
		}
	}
	if !completed {
		t.Fatalf("ranking still cancelled after %d polls", maxPolls)
	}
}
