// Package search implements the conversational plumbing of §3: a dialog shim
// with intent recognition and slot filling (the capabilities the paper
// assumes of the underlying dialog system), an objective search API over the
// Yelp world (the paper's TripAdvisor/Yelp role), and the filtering &
// ranking of Algorithm 1 with the §3.3 aggregation strategies.
package search

import (
	"context"
	"sort"
	"strings"

	"saccs/internal/index"
	"saccs/internal/obs"
	"saccs/internal/yelp"
)

// Intent is the dialog system's reading of an utterance: intent name plus
// objective slots (§3's intent recognition + slot filling).
type Intent struct {
	Name  string
	Slots map[string]string
}

// Slot names the shim can fill.
const (
	SlotCuisine  = "cuisine"
	SlotLocation = "location"
)

var cuisines = []string{"italian", "french", "japanese", "mexican", "indian", "chinese"}

var locations = []string{"montreal", "melbourne", "lyon", "paris", "toronto", "sydney"}

// ParseUtterance runs the lightweight intent recognizer and slot filler. Any
// utterance asking for a place to eat maps to the searchRestaurant intent;
// cuisine and location slots are keyword-filled. Keywords match whole words
// only — "comparison" does not fill location=paris, nor "indiana-style"
// cuisine=indian.
func ParseUtterance(utterance string) Intent {
	words := utteranceWords(utterance)
	in := Intent{Name: "searchRestaurant", Slots: map[string]string{}}
	for _, c := range cuisines {
		if words[c] {
			in.Slots[SlotCuisine] = c
			break
		}
	}
	for _, l := range locations {
		if words[l] {
			in.Slots[SlotLocation] = l
			break
		}
	}
	return in
}

// utteranceWords lowercases the utterance and splits it into a word set on
// every non-alphanumeric boundary, so slot keywords cannot match inside a
// longer word.
func utteranceWords(utterance string) map[string]bool {
	fields := strings.FieldsFunc(strings.ToLower(utterance), func(r rune) bool {
		return !('a' <= r && r <= 'z' || '0' <= r && r <= '9')
	})
	words := make(map[string]bool, len(fields))
	for _, w := range fields {
		words[w] = true
	}
	return words
}

// API is the objective search service of §3.2: it answers slot-filtered
// queries with entity ids, ignoring every subjective signal — exactly the
// S_api the paper re-filters.
type API struct {
	World *yelp.World
}

// Search returns the ids of entities matching the objective slots.
func (a *API) Search(slots map[string]string) []string {
	var out []string
	for _, e := range a.World.Entities {
		if c, ok := slots[SlotCuisine]; ok && !strings.EqualFold(e.Cuisine, c) {
			continue
		}
		if l, ok := slots[SlotLocation]; ok && !strings.EqualFold(e.City, l) {
			continue
		}
		out = append(out, e.ID)
	}
	return out
}

// Aggregation selects how degrees of truth combine across tags (§3.3).
type Aggregation int

// The §3.3 strategies: arithmetic mean (the paper's choice), product, min.
const (
	MeanAgg Aggregation = iota
	ProductAgg
	MinAgg
)

// Scored is one ranked entity. Coverage is the number of query tags the
// entity matched (line 11's intersection cardinality): the primary sort key
// of Algorithm 1's relaxed ranking, carried on the result so independently
// ranked partitions can be merged under the exact same coverage/score/ID
// order the single index produces.
type Scored struct {
	EntityID string
	Score    float64
	Coverage int
}

// Resolver is the read surface Algorithm 1 needs from the subjective tag
// index: the copy-free, cancellable probe. Both *index.Index (resolving
// against whatever generation is current at each probe) and *index.Snapshot
// (a view pinned to one immutable generation) satisfy it; request-scoped
// rankers should be handed a pinned snapshot so every tag of the query reads
// one consistent, lock-free index state.
type Resolver interface {
	ResolveEachCtx(ctx context.Context, tag string, thetaFilter float64, f func(index.Entry) bool) error
}

// Ranker implements Algorithm 1 over a subjective tag index view.
type Ranker struct {
	Index Resolver
	// ThetaFilter is the θ_filter similarity threshold of Algorithm 1.
	ThetaFilter float64
	// Agg is the cross-tag aggregation (§3.3; mean works best).
	Agg Aggregation
}

// Rank executes lines 6–12 of Algorithm 1: resolve each subjective tag to a
// scored entity set (exact hit or similar-tag union), intersect with the
// API's objective result set, aggregate per-entity scores across tags, and
// sort descending. When the strict intersection across all tags is empty,
// it relaxes to entities matched by at least one tag (still within S_api) so
// the user gets best-effort results instead of nothing.
func (r *Ranker) Rank(apiResults []string, tags []string) []Scored {
	return r.RankTraced(nil, apiResults, tags)
}

// RankTraced is Rank with tracing: when parent is a live span, each tag's
// index probe becomes an "index.resolve" child annotated with the tag and
// its posting count. A nil parent costs nothing.
func (r *Ranker) RankTraced(parent *obs.Span, apiResults []string, tags []string) []Scored {
	// context.Background is never cancelled, so the error path is dead.
	out, _ := r.RankCtx(context.Background(), parent, apiResults, tags)
	return out
}

// RankCtx is RankTraced with cooperative cancellation: the context is polled
// before each tag's index probe and periodically inside the probe's
// similarity scan. A cancelled or expired context aborts ranking with ctx's
// error and no partial results — the deadline is observed mid-rank rather
// than after the full scan. The failed probe's span carries a
// cancelled/deadline status.
func (r *Ranker) RankCtx(ctx context.Context, parent *obs.Span, apiResults []string, tags []string) ([]Scored, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	inAPI := make(map[string]bool, len(apiResults))
	for _, id := range apiResults {
		inAPI[id] = true
	}
	if len(tags) == 0 {
		out := make([]Scored, 0, len(apiResults))
		for _, id := range apiResults {
			out = append(out, Scored{EntityID: id})
		}
		return out, nil
	}

	// S_t per tag, restricted to S_api. ResolveEachCtx iterates exact posting
	// lists in place instead of copying them per query.
	perTag := make([]map[string]float64, len(tags))
	for i, tag := range tags {
		sp := parent.Child("index.resolve").Set("tag", tag)
		m := map[string]float64{}
		n := 0
		err := r.Index.ResolveEachCtx(ctx, tag, r.ThetaFilter, func(entry index.Entry) bool {
			n++
			if inAPI[entry.EntityID] {
				m[entry.EntityID] = entry.Degree
			}
			return true
		})
		if err != nil {
			sp.SetStatus(err).End()
			return nil, err
		}
		sp.Set("postings", n).Set("in_api", len(m)).End()
		perTag[i] = m
	}

	// Strict intersection (line 11) ranks first; entities covering fewer
	// tags follow, ordered by coverage then score, and untagged API results
	// fill the tail. The fill keeps Algorithm 1's ordering at the top while
	// guaranteeing a full top-k answer when the intersection is small.
	counts := make(map[string]int, len(apiResults))
	for _, m := range perTag {
		for id := range m {
			counts[id]++
		}
	}
	out := make([]Scored, 0, len(apiResults))
	seen := make(map[string]bool, len(apiResults))
	for id := range counts {
		out = append(out, Scored{EntityID: id, Score: r.aggregate(perTag, id), Coverage: counts[id]})
		seen[id] = true
	}
	sort.Slice(out, func(i, j int) bool {
		return Less(out[i], out[j])
	})
	// The untagged tail is ordered by ID: with no subjective signal to
	// separate them, the lexicographic order keeps the full ranking total and
	// independent of the API's result order.
	tail := len(out)
	for _, id := range apiResults {
		if !seen[id] {
			out = append(out, Scored{EntityID: id})
			seen[id] = true
		}
	}
	sort.Slice(out[tail:], func(i, j int) bool {
		return out[tail+i].EntityID < out[tail+j].EntityID
	})
	return out, nil
}

// aggregate computes the §3.3 cross-tag score for one entity. Missing tags
// contribute zero (mean), or collapse the score (product/min) — which is why
// the mean behaves best once the intersection is relaxed. The per-tag degrees
// are combined in sorted order: float addition and multiplication are not
// associative, so a fixed combination order is what makes the final score —
// and therefore the ranking — independent of the query's tag order.
func (r *Ranker) aggregate(perTag []map[string]float64, id string) float64 {
	vals := make([]float64, len(perTag))
	for i, m := range perTag {
		vals[i] = m[id]
	}
	sort.Float64s(vals)
	switch r.Agg {
	case ProductAgg:
		p := 1.0
		for _, v := range vals {
			p *= v
		}
		return p
	case MinAgg:
		if len(vals) == 0 {
			return 0
		}
		return vals[0]
	default:
		var s float64
		for _, v := range vals {
			s += v
		}
		return s / float64(len(vals))
	}
}

// Less is the deterministic total order of Algorithm 1's relaxed ranking:
// coverage descending, then aggregate score descending, then entity ID
// ascending. RankCtx sorts by it, and scatter-gather merges re-apply it so a
// merge of independently ranked partitions is byte-identical to ranking the
// union.
func Less(a, b Scored) bool {
	if a.Coverage != b.Coverage {
		return a.Coverage > b.Coverage
	}
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.EntityID < b.EntityID
}

// RankedIDs projects a scored list onto entity ids.
func RankedIDs(scored []Scored) []string {
	out := make([]string, len(scored))
	for i, s := range scored {
		out[i] = s.EntityID
	}
	return out
}
