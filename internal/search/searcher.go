package search

import (
	"context"

	"saccs/internal/index"
	"saccs/internal/obs"
)

// View is one pinned, immutable read view of the subjective tag index: every
// probe made through a View observes a single consistent generation (or, for
// a partitioned searcher, one consistent vector of per-shard generations),
// no matter how many concurrent writers publish while the request runs.
type View interface {
	// Generation identifies the pinned state; for sharded views it is the
	// sum of the pinned per-shard generations, which is monotone under the
	// per-shard publish counters.
	Generation() uint64
	// Has reports whether the tag is indexed in the pinned state.
	Has(tag string) bool
	// Resolve returns the tag's scored entity set (exact posting list or
	// similar-tag union) under θ_filter, honoring ctx mid-scan.
	Resolve(ctx context.Context, tag string, thetaFilter float64) ([]index.Entry, error)
	// TopK runs Algorithm 1 (Ranker.RankCtx) over the pinned state —
	// restricted to apiResults, aggregated across tags, ordered by
	// coverage/score/ID with the ID-sorted untagged tail — and truncates to
	// k results (k <= 0 means unbounded). parent, when live, receives one
	// "index.resolve" child span per tag probe.
	TopK(ctx context.Context, parent *obs.Span, apiResults, tags []string, thetaFilter float64, k int) ([]Scored, error)
}

// Searcher is the read surface the conversational facade needs from an index
// arrangement: pin a consistent snapshot now, query it later. The
// single-index client is one implementation (Single); the scatter-gather
// shard router is another.
type Searcher interface {
	Pin() View
}

// Single adapts one *index.Index to the Searcher interface: Pin captures the
// index's current immutable snapshot, exactly the per-request pinning the
// unsharded client has always done.
type Single struct {
	Index *index.Index
	// Agg is the §3.3 cross-tag aggregation TopK ranks with.
	Agg Aggregation
}

// Pin captures the current snapshot.
func (s Single) Pin() View { return singleView{snap: s.Index.Current(), agg: s.Agg} }

type singleView struct {
	snap *index.Snapshot
	agg  Aggregation
}

func (v singleView) Generation() uint64 { return v.snap.Generation() }

func (v singleView) Has(tag string) bool { return v.snap.Has(tag) }

func (v singleView) Resolve(ctx context.Context, tag string, thetaFilter float64) ([]index.Entry, error) {
	var out []index.Entry
	err := v.snap.ResolveEachCtx(ctx, tag, thetaFilter, func(e index.Entry) bool {
		out = append(out, e)
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (v singleView) TopK(ctx context.Context, parent *obs.Span, apiResults, tags []string, thetaFilter float64, k int) ([]Scored, error) {
	r := &Ranker{Index: v.snap, ThetaFilter: thetaFilter, Agg: v.agg}
	out, err := r.RankCtx(ctx, parent, apiResults, tags)
	if err != nil {
		return nil, err
	}
	return Truncate(out, k), nil
}

// Truncate caps a ranked list at k entries; k <= 0 leaves it unbounded.
func Truncate(s []Scored, k int) []Scored {
	if k > 0 && len(s) > k {
		return s[:k]
	}
	return s
}
