// Package corpus generates the synthetic review language every experiment in
// this reproduction runs on. A grammar over a domain lexicon emits review
// sentences together with gold IOB labels and gold aspect↔opinion pairings —
// the ground truth the paper obtained from SemEval annotations and OpineDB's
// labeled corpora (Table 3). The grammar deliberately produces the phenomena
// the paper's techniques target: multi-word aspect and opinion terms, several
// aspects and opinions per sentence (pairing ambiguity, §5), domain idioms
// ("la carte", "a killer", §4.2), intensifiers, negation, and optional typo
// noise (§5.1 limitation (ii)).
package corpus

import (
	"math/rand"
	"strings"

	"saccs/internal/lexicon"
	"saccs/internal/tokenize"
)

// Mention records one subjective statement inside a sentence: which feature
// it expresses, its polarity, and the aspect and opinion spans realizing it.
type Mention struct {
	FeatureID int
	Positive  bool
	Aspect    tokenize.Span
	Opinion   tokenize.Span
}

// Pair is a gold aspect↔opinion association.
type Pair struct {
	Aspect  tokenize.Span
	Opinion tokenize.Span
}

// Sentence is one generated review sentence with full gold annotation.
type Sentence struct {
	Tokens   []string
	Labels   []tokenize.Label
	Pairs    []Pair
	Mentions []Mention
}

// Text joins the tokens back into a display string (simple detokenization:
// no space before punctuation).
func (s Sentence) Text() string {
	var b strings.Builder
	for i, tok := range s.Tokens {
		if i > 0 && tok != "." && tok != "," && tok != "!" && tok != "?" {
			b.WriteByte(' ')
		}
		b.WriteString(tok)
	}
	return b.String()
}

// AspectText returns the surface form of a mention's aspect term.
func (m Mention) AspectText(tokens []string) string { return m.Aspect.Text(tokens) }

// OpinionText returns the surface form of a mention's opinion term.
func (m Mention) OpinionText(tokens []string) string { return m.Opinion.Text(tokens) }

// Options tunes the generator.
type Options struct {
	// MaxClauses bounds subjective clauses per sentence (default 2).
	MaxClauses int
	// TypoProb is the per-token probability of injecting a typo (default 0).
	TypoProb float64
	// DistractorProb is the probability of appending an objective filler
	// clause carrying no subjective content (default 0.3).
	DistractorProb float64
	// IntensifierProb is the probability of prefixing a single-word opinion
	// with an intensifier, which joins the opinion span (default 0.35).
	IntensifierProb float64
	// NegationProb is the probability of realizing a negative mention as
	// "not <positive-opinion>" instead of a negative variant (default 0.25).
	NegationProb float64
	// MultiOpinionProb makes a clause attach 2–3 opinions to one aspect
	// (default 0.2) — the word-distance-hostile shape of §5.
	MultiOpinionProb float64
	// MultiAspectProb makes a clause attach one opinion to two aspects
	// (default 0.1).
	MultiAspectProb float64
}

func (o Options) withDefaults() Options {
	if o.MaxClauses == 0 {
		o.MaxClauses = 2
	}
	if o.DistractorProb == 0 {
		o.DistractorProb = 0.3
	}
	if o.IntensifierProb == 0 {
		o.IntensifierProb = 0.35
	}
	if o.NegationProb == 0 {
		o.NegationProb = 0.25
	}
	if o.MultiOpinionProb == 0 {
		o.MultiOpinionProb = 0.2
	}
	if o.MultiAspectProb == 0 {
		o.MultiAspectProb = 0.1
	}
	return o
}

// Generator emits annotated sentences for one domain. It is not safe for
// concurrent use; create one per goroutine.
type Generator struct {
	Domain *lexicon.Domain
	Opts   Options
	rng    *rand.Rand
}

// NewGenerator returns a generator over domain seeded deterministically.
func NewGenerator(domain *lexicon.Domain, seed int64, opts Options) *Generator {
	return &Generator{Domain: domain, Opts: opts.withDefaults(), rng: rand.New(rand.NewSource(seed))}
}

var intensifiers = []string{"really", "very", "absolutely", "quite", "truly", "incredibly"}

var copulas = []string{"is", "was", "are", "were"}

var connectors = []string{"and", "but", "while"}

var distractors = [][]string{
	{"we", "came", "back", "twice"},
	{"i", "will", "definitely", "return"},
	{"it", "was", "a", "busy", "evening"},
	{"my", "friends", "joined", "us", "late"},
	{"we", "booked", "a", "table", "in", "advance"},
	{"the", "place", "opened", "in", "2019"},
	{"parking", "took", "a", "while"},
}

// pick returns a uniform random element of xs.
func pick[T any](rng *rand.Rand, xs []T) T { return xs[rng.Intn(len(xs))] }

// MentionSpec requests one subjective statement in a generated sentence.
type MentionSpec struct {
	FeatureID int
	Positive  bool
}

// Sentence generates a random sentence with 1..MaxClauses subjective clauses
// over random features and polarities (70% positive).
func (g *Generator) Sentence() Sentence {
	n := 1 + g.rng.Intn(g.Opts.MaxClauses)
	specs := make([]MentionSpec, 0, n)
	used := map[int]bool{}
	for len(specs) < n {
		fid := g.rng.Intn(len(g.Domain.Features))
		if used[fid] {
			continue
		}
		used[fid] = true
		specs = append(specs, MentionSpec{FeatureID: fid, Positive: g.rng.Float64() < 0.7})
	}
	return g.SentenceFor(specs)
}

// SentenceFor generates one sentence realizing exactly the requested
// mentions, in order, joined by connectors, with optional distractor clause
// and terminal punctuation. Gold labels and pairs are produced by
// construction.
func (g *Generator) SentenceFor(specs []MentionSpec) Sentence {
	var s Sentence
	for i, spec := range specs {
		if i > 0 {
			s.appendO(pick(g.rng, connectors))
		}
		g.clause(&s, spec)
	}
	if g.rng.Float64() < g.Opts.DistractorProb {
		if len(specs) > 0 {
			s.appendO(pick(g.rng, connectors))
		}
		for _, w := range pick(g.rng, distractors) {
			s.appendO(w)
		}
	}
	s.appendO(pick(g.rng, []string{".", ".", ".", "!"}))
	if g.Opts.TypoProb > 0 {
		g.perturb(&s)
	}
	return s
}

// clause realizes one mention with a randomly chosen surface pattern.
func (g *Generator) clause(s *Sentence, spec MentionSpec) {
	f := g.Domain.Features[spec.FeatureID]
	r := g.rng.Float64()
	switch {
	case r < g.Opts.MultiOpinionProb:
		g.multiOpinionClause(s, f, spec)
	case r < g.Opts.MultiOpinionProb+g.Opts.MultiAspectProb:
		g.multiAspectClause(s, f, spec)
	case g.rng.Float64() < 0.3:
		g.attributiveClause(s, f, spec)
	default:
		g.copularClause(s, f, spec)
	}
}

// copularClause: "the <aspect> is <opinion>".
func (g *Generator) copularClause(s *Sentence, f lexicon.Feature, spec MentionSpec) {
	s.appendO("the")
	asp := s.appendSpan(g.aspectWords(f), tokenize.AspectSpan)
	s.appendO(pick(g.rng, copulas))
	op := s.appendSpan(g.opinionWords(f, spec.Positive), tokenize.OpinionSpan)
	s.addMention(spec, asp, op)
}

// attributiveClause: "they serve <opinion> <aspect>" / "<opinion> <aspect> here".
func (g *Generator) attributiveClause(s *Sentence, f lexicon.Feature, spec MentionSpec) {
	if g.rng.Intn(2) == 0 {
		s.appendO("they")
		s.appendO(pick(g.rng, []string{"serve", "offer", "have"}))
	} else {
		s.appendO(pick(g.rng, []string{"expect", "imagine"}))
	}
	op := s.appendSpan(g.opinionWords(f, spec.Positive), tokenize.OpinionSpan)
	asp := s.appendSpan(g.aspectWords(f), tokenize.AspectSpan)
	if g.rng.Intn(2) == 0 {
		s.appendO("here")
	}
	s.addMention(spec, asp, op)
}

// multiOpinionClause: "the <aspect> is <op1> , <op2> and <op3>" — one aspect,
// several opinions, the §5 shape that defeats word distance.
func (g *Generator) multiOpinionClause(s *Sentence, f lexicon.Feature, spec MentionSpec) {
	s.appendO("the")
	asp := s.appendSpan(g.aspectWords(f), tokenize.AspectSpan)
	s.appendO(pick(g.rng, copulas))
	nOps := 2 + g.rng.Intn(2)
	pool := f.PosOps
	if !spec.Positive {
		pool = f.NegOps
	}
	seen := map[string]bool{}
	for i := 0; i < nOps; i++ {
		variant := pick(g.rng, pool)
		if seen[variant] {
			continue
		}
		seen[variant] = true
		if i > 0 {
			if i == nOps-1 {
				s.appendO("and")
			} else {
				s.appendO(",")
			}
		}
		op := s.appendSpan(strings.Fields(variant), tokenize.OpinionSpan)
		s.addMention(spec, asp, op)
	}
}

// multiAspectClause: "the <a1> and the <a2> are <opinion>" — one opinion
// shared by two aspects (footnote 4 of the paper).
func (g *Generator) multiAspectClause(s *Sentence, f lexicon.Feature, spec MentionSpec) {
	other := f
	for tries := 0; tries < 5; tries++ {
		cand := g.Domain.Features[g.rng.Intn(len(g.Domain.Features))]
		if cand.ID != f.ID {
			other = cand
			break
		}
	}
	s.appendO("the")
	asp1 := s.appendSpan(g.aspectWords(f), tokenize.AspectSpan)
	s.appendO("and")
	s.appendO("the")
	asp2 := s.appendSpan(g.aspectWords(other), tokenize.AspectSpan)
	s.appendO("are")
	op := s.appendSpan(g.opinionWords(f, spec.Positive), tokenize.OpinionSpan)
	s.addMention(spec, asp1, op)
	s.addMention(MentionSpec{FeatureID: other.ID, Positive: spec.Positive}, asp2, op)
}

// aspectWords picks an aspect surface form, tokenized.
func (g *Generator) aspectWords(f lexicon.Feature) []string {
	return strings.Fields(pick(g.rng, f.AspectSyns))
}

// opinionWords picks an opinion surface form for the polarity, applying
// negation ("not <pos>") and intensifier rules. The returned words form the
// full opinion span.
func (g *Generator) opinionWords(f lexicon.Feature, positive bool) []string {
	if !positive && g.rng.Float64() < g.Opts.NegationProb {
		words := strings.Fields(pick(g.rng, f.PosOps))
		return append([]string{"not"}, words...)
	}
	pool := f.PosOps
	if !positive {
		pool = f.NegOps
	}
	words := strings.Fields(pick(g.rng, pool))
	if len(words) == 1 && g.rng.Float64() < g.Opts.IntensifierProb {
		words = append([]string{pick(g.rng, intensifiers)}, words...)
	}
	return words
}

// appendO appends a token labeled O.
func (s *Sentence) appendO(tok string) {
	s.Tokens = append(s.Tokens, tok)
	s.Labels = append(s.Labels, tokenize.O)
}

// appendSpan appends words as a labeled chunk and returns its span.
func (s *Sentence) appendSpan(words []string, kind tokenize.SpanKind) tokenize.Span {
	start := len(s.Tokens)
	b, i := tokenize.BAS, tokenize.IAS
	if kind == tokenize.OpinionSpan {
		b, i = tokenize.BOP, tokenize.IOP
	}
	for j, w := range words {
		s.Tokens = append(s.Tokens, w)
		if j == 0 {
			s.Labels = append(s.Labels, b)
		} else {
			s.Labels = append(s.Labels, i)
		}
	}
	return tokenize.Span{Kind: kind, Start: start, End: len(s.Tokens)}
}

func (s *Sentence) addMention(spec MentionSpec, asp, op tokenize.Span) {
	s.Pairs = append(s.Pairs, Pair{Aspect: asp, Opinion: op})
	s.Mentions = append(s.Mentions, Mention{
		FeatureID: spec.FeatureID,
		Positive:  spec.Positive,
		Aspect:    asp,
		Opinion:   op,
	})
}

// perturb injects character-level typos into O-labeled tokens and may drop
// punctuation — the §5.1 noise that breaks parse trees. Labeled spans are
// kept intact (only their positions are remapped) so gold annotation stays
// valid.
func (g *Generator) perturb(s *Sentence) {
	n := len(s.Tokens)
	keep := make([]bool, n)
	toks := append([]string(nil), s.Tokens...)
	for i, tok := range s.Tokens {
		keep[i] = true
		if s.Labels[i] != tokenize.O || g.rng.Float64() >= g.Opts.TypoProb {
			continue
		}
		if tok == "," || tok == "." {
			keep[i] = false
		} else {
			toks[i] = typo(g.rng, tok)
		}
	}
	newIdx := make([]int, n+1)
	kept := 0
	for i := 0; i < n; i++ {
		newIdx[i] = kept
		if keep[i] {
			kept++
		}
	}
	newIdx[n] = kept
	outToks := make([]string, 0, kept)
	outLabels := make([]tokenize.Label, 0, kept)
	for i := 0; i < n; i++ {
		if keep[i] {
			outToks = append(outToks, toks[i])
			outLabels = append(outLabels, s.Labels[i])
		}
	}
	remap := func(sp *tokenize.Span) {
		sp.Start = newIdx[sp.Start]
		sp.End = newIdx[sp.End]
	}
	for i := range s.Pairs {
		remap(&s.Pairs[i].Aspect)
		remap(&s.Pairs[i].Opinion)
	}
	for i := range s.Mentions {
		remap(&s.Mentions[i].Aspect)
		remap(&s.Mentions[i].Opinion)
	}
	s.Tokens = outToks
	s.Labels = outLabels
}

// typo applies one random character edit: swap, drop, or duplicate.
func typo(rng *rand.Rand, tok string) string {
	r := []rune(tok)
	if len(r) < 2 {
		return tok
	}
	i := rng.Intn(len(r) - 1)
	switch rng.Intn(3) {
	case 0: // swap
		r[i], r[i+1] = r[i+1], r[i]
		return string(r)
	case 1: // drop
		return string(append(r[:i], r[i+1:]...))
	default: // duplicate
		out := make([]rune, 0, len(r)+1)
		out = append(out, r[:i+1]...)
		out = append(out, r[i])
		out = append(out, r[i+1:]...)
		return string(out)
	}
}

// FunctionWords returns the closed-class vocabulary the grammar can emit
// outside lexicon entries. Vocabulary builders include these.
func FunctionWords() []string {
	out := []string{
		"the", "a", "an", "they", "we", "i", "it", "my", "and", "but",
		"while", "not", "here", "serve", "offer", "have", "expect", "imagine",
		".", ",", "!", "?",
	}
	out = append(out, intensifiers...)
	for _, opener := range utteranceOpeners {
		out = append(out, opener...)
	}
	out = append(out, copulas...)
	for _, d := range distractors {
		out = append(out, d...)
	}
	return out
}

var utteranceOpeners = [][]string{
	{"i", "want", "a", "restaurant", "with"},
	{"i", "am", "looking", "for", "a", "place", "with"},
	{"find", "me", "somewhere", "with"},
	{"i", "would", "like", "a", "restaurant", "that", "has"},
	{"show", "me", "places", "with"},
}

// Utterance generates a user-utterance-style sentence ("i want a restaurant
// with delicious food and nice staff") realizing the requested mentions as
// attributive opinion+aspect phrases. Tagger training mixes these in so the
// extractor handles conversational queries, not just review prose (§3.2).
func (g *Generator) Utterance(specs []MentionSpec) Sentence {
	var s Sentence
	for _, w := range pick(g.rng, utteranceOpeners) {
		s.appendO(w)
	}
	for i, spec := range specs {
		if i > 0 {
			s.appendO("and")
		}
		f := g.Domain.Features[spec.FeatureID]
		op := s.appendSpan(g.opinionWords(f, spec.Positive), tokenize.OpinionSpan)
		asp := s.appendSpan(g.aspectWords(f), tokenize.AspectSpan)
		s.addMention(spec, asp, op)
	}
	return s
}

// RandomUtterance generates an utterance over 1..max random features, all
// positive (users ask for what they want, not what they fear).
func (g *Generator) RandomUtterance(max int) Sentence {
	n := 1 + g.rng.Intn(max)
	used := map[int]bool{}
	var specs []MentionSpec
	for len(specs) < n {
		fid := g.rng.Intn(len(g.Domain.Features))
		if used[fid] {
			continue
		}
		used[fid] = true
		specs = append(specs, MentionSpec{FeatureID: fid, Positive: true})
	}
	return g.Utterance(specs)
}
