package corpus

import (
	"math/rand"
	"strings"
	"testing"
)

func TestGeneralSentence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		toks := GeneralSentence(rng)
		if len(toks) < 4 {
			t.Fatalf("too short: %v", toks)
		}
		if toks[len(toks)-1] != "." {
			t.Fatalf("must end with period: %v", toks)
		}
		for _, tok := range toks {
			if tok == "" || strings.Contains(tok, " ") {
				t.Fatalf("bad token %q", tok)
			}
		}
	}
}

func TestGeneralCorpusSize(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := GeneralCorpus(rng, 25)
	if len(c) != 25 {
		t.Fatalf("got %d sentences", len(c))
	}
}

func TestGeneralVocabularyCoversSentences(t *testing.T) {
	vocab := map[string]bool{}
	for _, w := range GeneralVocabulary() {
		vocab[w] = true
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		for _, tok := range GeneralSentence(rng) {
			if !vocab[tok] {
				t.Fatalf("token %q not in GeneralVocabulary", tok)
			}
		}
	}
}

func TestGeneralVocabularyDisjointFromDomainJargon(t *testing.T) {
	// The point of the general corpus is that it lacks review jargon, so
	// domain post-training has something to add (§4.2).
	vocab := map[string]bool{}
	for _, w := range GeneralVocabulary() {
		vocab[w] = true
	}
	for _, jargon := range []string{"delicious", "killer", "carte", "romantic"} {
		if vocab[jargon] {
			t.Fatalf("general corpus must not contain domain jargon %q", jargon)
		}
	}
}
