package corpus

import (
	"strings"
	"testing"

	"saccs/internal/lexicon"
	"saccs/internal/tokenize"
)

func gen(t *testing.T, seed int64, opts Options) *Generator {
	t.Helper()
	return NewGenerator(lexicon.Restaurants(), seed, opts)
}

// checkInvariants asserts the structural gold-annotation invariants every
// generated sentence must satisfy.
func checkInvariants(t *testing.T, s Sentence) {
	t.Helper()
	if len(s.Tokens) != len(s.Labels) {
		t.Fatalf("tokens/labels length mismatch: %d vs %d", len(s.Tokens), len(s.Labels))
	}
	if len(s.Tokens) == 0 {
		t.Fatal("empty sentence")
	}
	// IOB sequence must be well-formed.
	prev := tokenize.O
	for i, l := range s.Labels {
		if i == 0 && !tokenize.ValidStart(l) {
			t.Fatalf("invalid start label %v in %v", l, s.Labels)
		}
		if i > 0 && !tokenize.ValidTransition(prev, l) {
			t.Fatalf("invalid transition %v->%v in %v (%v)", prev, l, s.Labels, s.Tokens)
		}
		prev = l
	}
	// Every gold pair must reference spans matching the labels.
	for _, p := range s.Pairs {
		checkSpan(t, s, p.Aspect, tokenize.AspectSpan)
		checkSpan(t, s, p.Opinion, tokenize.OpinionSpan)
	}
	// Mentions and pairs must correspond 1:1.
	if len(s.Mentions) != len(s.Pairs) {
		t.Fatalf("mentions/pairs mismatch: %d vs %d", len(s.Mentions), len(s.Pairs))
	}
}

func checkSpan(t *testing.T, s Sentence, sp tokenize.Span, kind tokenize.SpanKind) {
	t.Helper()
	if sp.Start < 0 || sp.End > len(s.Tokens) || sp.Start >= sp.End {
		t.Fatalf("span %v out of range for %d tokens (%v)", sp, len(s.Tokens), s.Tokens)
	}
	b, i := tokenize.BAS, tokenize.IAS
	if kind == tokenize.OpinionSpan {
		b, i = tokenize.BOP, tokenize.IOP
	}
	if s.Labels[sp.Start] != b {
		t.Fatalf("span %v does not start with %v: %v / %v", sp, b, s.Tokens, s.Labels)
	}
	for j := sp.Start + 1; j < sp.End; j++ {
		if s.Labels[j] != i {
			t.Fatalf("span %v interior not %v at %d: %v / %v", sp, i, j, s.Tokens, s.Labels)
		}
	}
}

func TestSentenceInvariants(t *testing.T) {
	g := gen(t, 1, Options{})
	for trial := 0; trial < 500; trial++ {
		checkInvariants(t, g.Sentence())
	}
}

func TestSentenceInvariantsWithTypos(t *testing.T) {
	g := gen(t, 2, Options{TypoProb: 0.4})
	for trial := 0; trial < 500; trial++ {
		checkInvariants(t, g.Sentence())
	}
}

func TestSentenceForRealizesRequestedMentions(t *testing.T) {
	g := gen(t, 3, Options{MultiOpinionProb: 0.0001, MultiAspectProb: 0.0001})
	specs := []MentionSpec{
		{FeatureID: 0, Positive: true},
		{FeatureID: 4, Positive: false},
	}
	for trial := 0; trial < 50; trial++ {
		s := g.SentenceFor(specs)
		checkInvariants(t, s)
		if len(s.Mentions) < 2 {
			t.Fatalf("expected >=2 mentions, got %d", len(s.Mentions))
		}
		if s.Mentions[0].FeatureID != 0 || !s.Mentions[0].Positive {
			t.Fatalf("first mention wrong: %+v", s.Mentions[0])
		}
	}
}

func TestSentenceForEmptySpecs(t *testing.T) {
	g := gen(t, 4, Options{})
	s := g.SentenceFor(nil)
	checkInvariants(t, s)
	if len(s.Pairs) != 0 {
		t.Fatalf("no mentions requested but got pairs: %v", s.Pairs)
	}
}

func TestDeterminism(t *testing.T) {
	a := gen(t, 42, Options{}).Sentence()
	b := gen(t, 42, Options{}).Sentence()
	if a.Text() != b.Text() {
		t.Fatalf("same seed must generate same text: %q vs %q", a.Text(), b.Text())
	}
}

func TestMultiOpinionShape(t *testing.T) {
	// Force multi-opinion clauses and verify several opinions pair with one aspect.
	g := gen(t, 5, Options{MultiOpinionProb: 0.999, MaxClauses: 1, DistractorProb: 0.0001})
	sawMulti := false
	for trial := 0; trial < 100; trial++ {
		s := g.SentenceFor([]MentionSpec{{FeatureID: 4, Positive: true}})
		checkInvariants(t, s)
		if len(s.Pairs) >= 2 {
			sawMulti = true
			a0 := s.Pairs[0].Aspect
			for _, p := range s.Pairs[1:] {
				if p.Aspect != a0 {
					t.Fatalf("multi-opinion clause must share the aspect: %v", s.Pairs)
				}
			}
		}
	}
	if !sawMulti {
		t.Fatal("never generated a multi-opinion clause")
	}
}

func TestMultiAspectShape(t *testing.T) {
	g := gen(t, 6, Options{MultiAspectProb: 0.999, MultiOpinionProb: 0.0001, MaxClauses: 1, DistractorProb: 0.0001})
	sawMulti := false
	for trial := 0; trial < 100; trial++ {
		s := g.SentenceFor([]MentionSpec{{FeatureID: 0, Positive: true}})
		checkInvariants(t, s)
		if len(s.Pairs) == 2 && s.Pairs[0].Opinion == s.Pairs[1].Opinion {
			sawMulti = true
		}
	}
	if !sawMulti {
		t.Fatal("never generated a multi-aspect clause")
	}
}

func TestNegationInsideOpinionSpan(t *testing.T) {
	g := gen(t, 7, Options{NegationProb: 0.999, MaxClauses: 1, DistractorProb: 0.0001,
		MultiOpinionProb: 0.0001, MultiAspectProb: 0.0001})
	sawNot := false
	for trial := 0; trial < 200; trial++ {
		s := g.SentenceFor([]MentionSpec{{FeatureID: 0, Positive: false}})
		checkInvariants(t, s)
		for _, p := range s.Pairs {
			if s.Tokens[p.Opinion.Start] == "not" {
				sawNot = true
				if s.Labels[p.Opinion.Start] != tokenize.BOP {
					t.Fatal("negation token must begin the opinion span")
				}
			}
		}
	}
	if !sawNot {
		t.Fatal("negated opinions never generated")
	}
}

func TestTextDetokenization(t *testing.T) {
	s := Sentence{Tokens: []string{"the", "food", "is", "great", ",", "really", "."}}
	if got := s.Text(); got != "the food is great, really." {
		t.Fatalf("Text: %q", got)
	}
}

func TestPerturbRemapsSpans(t *testing.T) {
	// With aggressive typo probability, dropped punctuation must shift spans.
	g := gen(t, 8, Options{TypoProb: 0.95, MultiOpinionProb: 0.999, MaxClauses: 1})
	for trial := 0; trial < 300; trial++ {
		s := g.SentenceFor([]MentionSpec{{FeatureID: 4, Positive: true}})
		checkInvariants(t, s)
	}
}

func TestTypoPreservesLabeledTokens(t *testing.T) {
	// Labeled spans must never be typo-corrupted: aspect/opinion surface
	// forms are exactly lexicon variants.
	d := lexicon.Restaurants()
	valid := map[string]bool{}
	for _, f := range d.Features {
		for _, v := range append(append(append([]string{}, f.AspectSyns...), f.PosOps...), f.NegOps...) {
			for _, w := range strings.Fields(v) {
				valid[w] = true
			}
		}
	}
	for _, w := range []string{"not"} {
		valid[w] = true
	}
	for _, w := range intensifiers {
		valid[w] = true
	}
	g := gen(t, 9, Options{TypoProb: 0.9})
	for trial := 0; trial < 200; trial++ {
		s := g.Sentence()
		for i, l := range s.Labels {
			if l != tokenize.O && !valid[s.Tokens[i]] {
				t.Fatalf("labeled token %q corrupted (labels %v, tokens %v)", s.Tokens[i], s.Labels, s.Tokens)
			}
		}
	}
}

func TestFunctionWordsNonEmptyAndLower(t *testing.T) {
	ws := FunctionWords()
	if len(ws) < 10 {
		t.Fatal("too few function words")
	}
	for _, w := range ws {
		if w == "" || w != strings.ToLower(w) {
			t.Fatalf("bad function word %q", w)
		}
	}
}

func TestAllDomainsGenerate(t *testing.T) {
	for _, d := range []*lexicon.Domain{lexicon.Restaurants(), lexicon.Electronics(), lexicon.Hotels()} {
		g := NewGenerator(d, 10, Options{})
		for trial := 0; trial < 100; trial++ {
			checkInvariants(t, g.Sentence())
		}
	}
}

func TestUtteranceShape(t *testing.T) {
	g := gen(t, 11, Options{})
	for trial := 0; trial < 100; trial++ {
		s := g.RandomUtterance(3)
		checkInvariants(t, s)
		if len(s.Mentions) < 1 || len(s.Mentions) > 3 {
			t.Fatalf("mentions: %d", len(s.Mentions))
		}
		for _, m := range s.Mentions {
			if !m.Positive {
				t.Fatal("utterances ask for positive qualities")
			}
			// Attributive order: opinion precedes aspect.
			if m.Opinion.Start >= m.Aspect.Start {
				t.Fatalf("utterance must be opinion-then-aspect: %v", s.Tokens)
			}
		}
	}
}

func TestUtteranceVocabularyCovered(t *testing.T) {
	valid := map[string]bool{}
	for _, w := range FunctionWords() {
		valid[w] = true
	}
	g := gen(t, 12, Options{})
	for trial := 0; trial < 50; trial++ {
		s := g.RandomUtterance(2)
		for i, tok := range s.Tokens {
			if s.Labels[i] == tokenize.O && !valid[tok] {
				t.Fatalf("utterance O-token %q missing from FunctionWords", tok)
			}
		}
	}
}
