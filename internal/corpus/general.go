package corpus

import "math/rand"

// The general corpus plays the role of Wikipedia in BERT's pre-training
// (§4.2): generic subject–verb–object text with none of the review domain's
// aspect/opinion jargon. MiniBERT is first pre-trained here, then
// post-trained on domain reviews — reproducing why vanilla BERT misses
// "a killer" and "la carte" and why domain post-training helps.

var generalSubjects = []string{
	"the city", "the river", "the museum", "a committee", "the library",
	"the treaty", "the mountain", "the election", "an engineer", "the bridge",
	"the university", "a journalist", "the festival", "the company", "the law",
	"the researcher", "the village", "the empire", "the parliament", "the orchestra",
}

var generalVerbs = []string{
	"was founded in", "borders", "published", "organized", "approved",
	"connects", "describes", "hosted", "elected", "measured", "funded",
	"documented", "surveyed", "rebuilt", "translated", "archived",
}

var generalObjects = []string{
	"the northern district", "a historic charter", "several reports",
	"the annual summit", "two provinces", "an early manuscript",
	"the coastal region", "a research council", "new regulations",
	"the railway line", "three expeditions", "a public archive",
	"the eastern valley", "an international standard", "the old quarter",
}

var generalModifiers = []string{
	"in 1887", "during the war", "after the merger", "for two decades",
	"under the new charter", "across the region", "with public funding",
	"despite objections", "before the reform", "in the early period",
}

// GeneralSentence emits one generic non-review sentence as tokens.
func GeneralSentence(rng *rand.Rand) []string {
	toks := fields(pick(rng, generalSubjects))
	toks = append(toks, fields(pick(rng, generalVerbs))...)
	toks = append(toks, fields(pick(rng, generalObjects))...)
	if rng.Intn(2) == 0 {
		toks = append(toks, fields(pick(rng, generalModifiers))...)
	}
	return append(toks, ".")
}

// GeneralCorpus emits n generic sentences for MLM pre-training.
func GeneralCorpus(rng *rand.Rand, n int) [][]string {
	out := make([][]string, n)
	for i := range out {
		out[i] = GeneralSentence(rng)
	}
	return out
}

// GeneralVocabulary returns every word the general grammar can emit.
func GeneralVocabulary() []string {
	var out []string
	for _, pool := range [][]string{generalSubjects, generalVerbs, generalObjects, generalModifiers} {
		for _, phrase := range pool {
			out = append(out, fields(phrase)...)
		}
	}
	out = append(out, ".")
	return dedupStrings(out)
}

func fields(s string) []string {
	var out []string
	start := -1
	for i, r := range s {
		if r == ' ' {
			if start >= 0 {
				out = append(out, s[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		out = append(out, s[start:])
	}
	return out
}

func dedupStrings(in []string) []string {
	seen := make(map[string]bool, len(in))
	out := in[:0]
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
