package parse

import (
	"testing"

	"saccs/internal/lexicon"
	"saccs/internal/tokenize"
)

var fuzzLex = DomainLexicon(lexicon.Restaurants())

// FuzzBuildTree fuzzes the shallow constituency parser through the real
// tokenizer. Invariants: every token becomes exactly one leaf carrying its
// own index, leaf-to-leaf distance is a symmetric premetric (zero on the
// diagonal, positive and symmetric off it), and SameClause is reflexive —
// for arbitrary input, including the unpunctuated and typo-ridden text the
// §5.1 heuristic documents as its failure modes.
func FuzzBuildTree(f *testing.F) {
	f.Add("The staff is friendly, helpful and professional. The decor is beautiful")
	f.Add("great pizza but the waiters were slow and the room was loud")
	f.Add("...!!!???")
	f.Add("word")
	f.Add("no punctuation at all just words running on and on and on forever")
	f.Add("l'étoile, naïve décor — 100% charming!")
	f.Fuzz(func(t *testing.T, s string) {
		tokens := tokenize.Words(s)
		tree := Build(fuzzLex, tokens)
		if tree.Root == nil {
			t.Fatalf("nil root for %q", s)
		}
		seen := make([]int, len(tokens))
		var walk func(n *Node)
		walk = func(n *Node) {
			if n.Token >= 0 {
				if n.Token >= len(tokens) {
					t.Fatalf("leaf token index %d out of range (%d tokens) for %q", n.Token, len(tokens), s)
				}
				seen[n.Token]++
			}
			for _, c := range n.Children {
				walk(c)
			}
		}
		walk(tree.Root)
		for i, n := range seen {
			if n != 1 {
				t.Fatalf("token %d (%q) appears in %d leaves for %q", i, tokens[i], n, s)
			}
		}
		for i := range tokens {
			if d := tree.Distance(i, i); d != 0 {
				t.Fatalf("Distance(%d,%d) = %d for %q", i, i, d, s)
			}
			if !tree.SameClause(i, i) {
				t.Fatalf("SameClause(%d,%d) false for %q", i, i, s)
			}
			// Keep the pairwise sweep linear: check each adjacent pair plus
			// the far end.
			for _, j := range []int{i + 1, len(tokens) - 1} {
				if j <= i || j >= len(tokens) {
					continue
				}
				dij, dji := tree.Distance(i, j), tree.Distance(j, i)
				if dij != dji {
					t.Fatalf("Distance asymmetric: d(%d,%d)=%d, d(%d,%d)=%d for %q", i, j, dij, j, i, dji, s)
				}
				if dij <= 0 {
					t.Fatalf("Distance(%d,%d) = %d not positive for distinct leaves of %q", i, j, dij, s)
				}
			}
		}
		if tree.Distance(-1, 0) <= 0 || tree.Distance(0, len(tokens)) <= 0 {
			t.Fatalf("out-of-range distance not large for %q", s)
		}
	})
}
