// Package parse builds shallow constituency trees and computes the
// leaf-to-leaf tree distances behind the first pairing heuristic of §5.1:
// an opinion belongs with the aspect that shares its subtree ("The staff is
// friendly, helpful and professional. The decor is beautiful" puts staff and
// professional in one clause, decor and beautiful in another). The parser
// inherits the heuristic's documented limitations: long unpunctuated
// sentences collapse into one clause (limitation (i)) and typos/missing
// punctuation corrupt the tree (limitation (ii)).
package parse

import (
	"strings"

	"saccs/internal/lexicon"
	"saccs/internal/postag"
)

// Node is a tree node: internal nodes carry a constituent label, leaves a
// token index.
type Node struct {
	Label    string // "S", "CLAUSE", "NP", "VP", "ADJP", "PP", "X", "TOK"
	Token    int    // token index for leaves, -1 otherwise
	Children []*Node
	parent   *Node
}

// Tree is a parsed sentence.
type Tree struct {
	Tokens []string
	Root   *Node
	leaves []*Node // indexed by token position
}

// DomainLexicon converts a domain's aspect/opinion vocabulary into POS
// overrides: aspect words tag as nouns, opinion words as adjectives.
func DomainLexicon(d *lexicon.Domain) postag.Lexicon {
	lex := postag.Lexicon{}
	for _, f := range d.Features {
		for _, v := range f.AspectSyns {
			for _, w := range strings.Fields(v) {
				lex[w] = postag.Noun
			}
		}
		for _, v := range append(append([]string{}, f.PosOps...), f.NegOps...) {
			for _, w := range strings.Fields(v) {
				if _, exists := lex[w]; !exists {
					lex[w] = postag.Adj
				}
			}
		}
	}
	return lex
}

// Build parses tokens into a shallow tree: S → CLAUSE* → phrase* → TOK*.
// Clauses split at sentence punctuation and at conjunctions that introduce a
// new subject; phrases chunk determiner-adjective-noun groups (NP),
// verb groups (VP), adjective groups (ADJP), and preposition groups (PP).
func Build(lex postag.Lexicon, tokens []string) *Tree {
	tags := postag.TagSeq(lex, tokens)
	t := &Tree{
		Tokens: tokens,
		Root:   &Node{Label: "S", Token: -1},
		leaves: make([]*Node, len(tokens)),
	}
	clauses := splitClauses(tokens, tags)
	for _, cl := range clauses {
		clause := &Node{Label: "CLAUSE", Token: -1, parent: t.Root}
		t.Root.Children = append(t.Root.Children, clause)
		for _, ph := range chunkPhrases(tags, cl.start, cl.end) {
			phrase := &Node{Label: ph.label, Token: -1, parent: clause}
			clause.Children = append(clause.Children, phrase)
			for i := ph.start; i < ph.end; i++ {
				leaf := &Node{Label: "TOK", Token: i, parent: phrase}
				phrase.Children = append(phrase.Children, leaf)
				t.leaves[i] = leaf
			}
		}
	}
	return t
}

type span struct{ start, end int }

// splitClauses cuts the token range at strong boundaries: sentence-final
// punctuation always ends a clause; a conjunction followed by a determiner,
// pronoun or noun phrase start (i.e. a fresh subject) ends a clause; a comma
// does NOT (so "friendly, helpful and professional" stays together).
func splitClauses(tokens []string, tags []postag.Tag) []span {
	var out []span
	start := 0
	flush := func(end int) {
		if end > start {
			out = append(out, span{start, end})
		}
		start = end
	}
	for i := 0; i < len(tokens); i++ {
		switch {
		case tags[i] == postag.Punct && isSentenceFinal(tokens[i]):
			flush(i + 1)
		case tags[i] == postag.Conj && i+1 < len(tokens) && startsNewSubject(tags, i+1):
			flush(i) // conjunction belongs to the next clause
		}
	}
	flush(len(tokens))
	if len(out) == 0 {
		out = append(out, span{0, len(tokens)})
	}
	return out
}

func isSentenceFinal(tok string) bool {
	return tok == "." || tok == "!" || tok == "?" || tok == ";"
}

// startsNewSubject reports whether position i begins a new clause subject:
// a determiner or pronoun followed eventually by a verb in this clause.
// A bare adjective after the conjunction ("friendly and professional") does
// not start a clause.
func startsNewSubject(tags []postag.Tag, i int) bool {
	if tags[i] != postag.Det && tags[i] != postag.Pron {
		return false
	}
	// Look ahead for a verb before the next boundary — "the decor is ..."
	for j := i + 1; j < len(tags) && j < i+6; j++ {
		switch tags[j] {
		case postag.Verb:
			return true
		case postag.Punct, postag.Conj:
			return false
		}
	}
	return false
}

type phrase struct {
	label      string
	start, end int
}

// chunkPhrases groups [start,end) into flat phrases by tag patterns.
func chunkPhrases(tags []postag.Tag, start, end int) []phrase {
	var out []phrase
	i := start
	for i < end {
		switch tags[i] {
		case postag.Det:
			j := i + 1
			for j < end && (tags[j] == postag.Adj || tags[j] == postag.Adv || tags[j] == postag.Noun || tags[j] == postag.Num) {
				j++
			}
			out = append(out, phrase{"NP", i, j})
			i = j
		case postag.Noun, postag.Pron, postag.Num:
			j := i + 1
			for j < end && tags[j] == postag.Noun {
				j++
			}
			out = append(out, phrase{"NP", i, j})
			i = j
		case postag.Verb:
			j := i + 1
			for j < end && tags[j] == postag.Verb {
				j++
			}
			out = append(out, phrase{"VP", i, j})
			i = j
		case postag.Adv, postag.Adj:
			// ADJP absorbs adverbs, adjectives, commas between adjectives,
			// and coordinating conjunctions inside an enumeration
			// ("friendly , helpful and professional").
			j := i
			for j < end {
				switch tags[j] {
				case postag.Adv, postag.Adj:
					j++
					continue
				case postag.Punct, postag.Conj:
					if j+1 < end && (tags[j+1] == postag.Adj || tags[j+1] == postag.Adv) {
						j++
						continue
					}
				}
				break
			}
			out = append(out, phrase{"ADJP", i, j})
			i = j
		case postag.Prep:
			j := i + 1
			for j < end && (tags[j] == postag.Det || tags[j] == postag.Adj || tags[j] == postag.Noun || tags[j] == postag.Num) {
				j++
			}
			out = append(out, phrase{"PP", i, j})
			i = j
		default:
			out = append(out, phrase{"X", i, i + 1})
			i++
		}
	}
	return out
}

// Distance returns the number of edges on the leaf-to-leaf path between
// token i and token j (0 for i==j). Out-of-range indices return a large
// distance so callers can treat them as "unrelated".
func (t *Tree) Distance(i, j int) int {
	const far = 1 << 20
	if i < 0 || j < 0 || i >= len(t.leaves) || j >= len(t.leaves) {
		return far
	}
	a, b := t.leaves[i], t.leaves[j]
	if a == nil || b == nil {
		return far
	}
	da := depthChain(a)
	db := depthChain(b)
	// Find lowest common ancestor by comparing chains from the root.
	k := 0
	for k < len(da) && k < len(db) && da[len(da)-1-k] == db[len(db)-1-k] {
		k++
	}
	return (len(da) - k) + (len(db) - k)
}

func depthChain(n *Node) []*Node {
	var chain []*Node
	for cur := n; cur != nil; cur = cur.parent {
		chain = append(chain, cur)
	}
	return chain
}

// SameClause reports whether tokens i and j belong to the same CLAUSE node.
func (t *Tree) SameClause(i, j int) bool {
	ci := t.clauseOf(i)
	return ci != nil && ci == t.clauseOf(j)
}

func (t *Tree) clauseOf(i int) *Node {
	if i < 0 || i >= len(t.leaves) || t.leaves[i] == nil {
		return nil
	}
	for cur := t.leaves[i]; cur != nil; cur = cur.parent {
		if cur.Label == "CLAUSE" {
			return cur
		}
	}
	return nil
}

// String renders the tree as a bracketed s-expression, for debugging and
// the examples.
func (t *Tree) String() string {
	var b strings.Builder
	var rec func(n *Node)
	rec = func(n *Node) {
		if n.Token >= 0 {
			b.WriteString(t.Tokens[n.Token])
			return
		}
		b.WriteByte('(')
		b.WriteString(n.Label)
		for _, c := range n.Children {
			b.WriteByte(' ')
			rec(c)
		}
		b.WriteByte(')')
	}
	rec(t.Root)
	return b.String()
}
