package parse

import (
	"strings"
	"testing"

	"saccs/internal/lexicon"
	"saccs/internal/tokenize"
)

func restaurantLex() map[string]uint8 { return nil } // silence unused helper pattern

func buildR(t *testing.T, text string) *Tree {
	t.Helper()
	lex := DomainLexicon(lexicon.Restaurants())
	return Build(lex, tokenize.Words(text))
}

func TestPaperExampleClauseSplit(t *testing.T) {
	// "The staff is friendly, helpful and professional. The decor is
	// beautiful" — professional must be closer to staff than to decor (§5.1).
	tr := buildR(t, "The staff is friendly, helpful and professional. The decor is beautiful.")
	toks := tr.Tokens
	idx := func(w string) int {
		for i, tok := range toks {
			if tok == w {
				return i
			}
		}
		t.Fatalf("token %q not found in %v", w, toks)
		return -1
	}
	staff, prof, decor := idx("staff"), idx("professional"), idx("decor")
	if !tr.SameClause(staff, prof) {
		t.Fatalf("staff and professional must share a clause: %s", tr)
	}
	if tr.SameClause(prof, decor) {
		t.Fatalf("professional and decor must be in different clauses: %s", tr)
	}
	if tr.Distance(staff, prof) >= tr.Distance(decor, prof) {
		t.Fatalf("tree distance must prefer staff (%d) over decor (%d): %s",
			tr.Distance(staff, prof), tr.Distance(decor, prof), tr)
	}
}

func TestConjunctionWithNewSubjectSplits(t *testing.T) {
	tr := buildR(t, "the food is delicious and the staff is friendly")
	food, staff := 1, 6
	if tr.Tokens[food] != "food" || tr.Tokens[staff] != "staff" {
		t.Fatalf("token positions shifted: %v", tr.Tokens)
	}
	if tr.SameClause(food, staff) {
		t.Fatalf("two full clauses must split: %s", tr)
	}
}

func TestEnumerationDoesNotSplit(t *testing.T) {
	tr := buildR(t, "the staff is friendly and professional")
	// "friendly and professional" is one enumeration — one clause.
	for i := range tr.Tokens {
		if !tr.SameClause(0, i) {
			t.Fatalf("enumeration must stay in one clause: %s", tr)
		}
	}
}

func TestDistanceProperties(t *testing.T) {
	tr := buildR(t, "the food is delicious. the staff is friendly.")
	n := len(tr.Tokens)
	for i := 0; i < n; i++ {
		if tr.Distance(i, i) != 0 {
			t.Fatalf("Distance(i,i) must be 0")
		}
		for j := 0; j < n; j++ {
			if tr.Distance(i, j) != tr.Distance(j, i) {
				t.Fatalf("Distance must be symmetric at (%d,%d)", i, j)
			}
			if i != j && tr.Distance(i, j) <= 0 {
				t.Fatalf("distinct leaves must have positive distance")
			}
		}
	}
	if tr.Distance(-1, 0) < 1<<19 || tr.Distance(0, 999) < 1<<19 {
		t.Fatal("out-of-range must be far")
	}
}

func TestLongSentenceDegradesToOneClause(t *testing.T) {
	// Limitation (i): no punctuation, no fresh subject → single clause.
	tr := buildR(t, "delicious food friendly staff beautiful decor quick service")
	for i := range tr.Tokens {
		if !tr.SameClause(0, i) {
			t.Fatalf("unpunctuated sentence should collapse to one clause: %s", tr)
		}
	}
}

func TestMissingPunctuationMergesClauses(t *testing.T) {
	// Limitation (ii): dropping the period merges the two clauses.
	withDot := buildR(t, "the staff is friendly. the decor is beautiful.")
	without := buildR(t, "the staff is friendly the decor is beautiful")
	staffW, decorW := 1, 5
	if without.Tokens[staffW] != "staff" || without.Tokens[decorW] != "decor" {
		t.Fatalf("positions: %v", without.Tokens)
	}
	if !withDot.SameClause(1, 1) {
		t.Fatal("sanity")
	}
	// Without the period the split can only happen if a verb pattern rescues
	// it; either way the tree must still be valid and distances finite.
	if d := without.Distance(staffW, decorW); d <= 0 || d >= 1<<19 {
		t.Fatalf("degraded tree must still give finite distances: %d", d)
	}
}

func TestEmptyAndSingleToken(t *testing.T) {
	lex := DomainLexicon(lexicon.Restaurants())
	tr := Build(lex, nil)
	if tr.Root == nil {
		t.Fatal("nil root")
	}
	tr1 := Build(lex, []string{"delicious"})
	if tr1.Distance(0, 0) != 0 {
		t.Fatal("single token distance")
	}
}

func TestDomainLexicon(t *testing.T) {
	lex := DomainLexicon(lexicon.Restaurants())
	if lex["food"].String() != "NOUN" {
		t.Fatalf("aspect word must be NOUN: %v", lex["food"])
	}
	if lex["delicious"].String() != "ADJ" {
		t.Fatalf("opinion word must be ADJ: %v", lex["delicious"])
	}
	// Aspect nouns win over opinion adjectives on collision.
	if lex["view"].String() != "NOUN" {
		t.Fatalf("aspect/opinion collision must resolve to NOUN: %v", lex["view"])
	}
}

func TestStringRendering(t *testing.T) {
	tr := buildR(t, "the food is delicious.")
	s := tr.String()
	if !strings.HasPrefix(s, "(S") || !strings.Contains(s, "CLAUSE") {
		t.Fatalf("unexpected rendering: %s", s)
	}
	if !strings.Contains(s, "delicious") {
		t.Fatalf("leaves missing: %s", s)
	}
}

var _ = restaurantLex
