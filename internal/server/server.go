// Package server is the HTTP serving tier over a saccs.Client: a small JSON
// API (query, extract, append, register, reindex) layered on the
// observability mux, so one listener exposes the whole operational surface —
// /v1/* for traffic, /metrics, /healthz, /readyz, /debug/slow and
// /debug/pprof for operators.
//
// The handlers are a thin shell: every request parses its body, ingests an
// optional W3C traceparent header into the request context (so the client's
// wide events join the caller's trace), and calls the corresponding Client
// method. All ranking, sharding, durability, and telemetry semantics live
// below the facade; the HTTP layer adds only transport concerns — method
// checks, body-size limits, JSON framing, and graceful drain.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"saccs"
	"saccs/internal/obs"
)

// Config tunes the HTTP tier. The zero value listens on a random port with a
// 1 MiB body cap and a 5 s drain window.
type Config struct {
	// Addr is the listen address ("" = ":0", a random free port; the bound
	// address is available from Server.Addr after Start).
	Addr string
	// MaxBodyBytes caps request bodies; a larger body is refused with 413
	// before it is read in full (0 = 1 MiB).
	MaxBodyBytes int64
	// DrainTimeout bounds how long Shutdown waits for in-flight requests
	// after readiness flips to 503 (0 = 5 s).
	DrainTimeout time.Duration
}

// Server owns one HTTP listener over one Client.
type Server struct {
	c   *saccs.Client
	cfg Config
	mux *http.ServeMux
	srv *http.Server
}

// New assembles the serving mux over c. Start opens the listener; Handler
// exposes the mux directly for in-process tests.
func New(c *saccs.Client, cfg Config) *Server {
	if cfg.Addr == "" {
		cfg.Addr = ":0"
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	s := &Server{c: c, cfg: cfg, mux: obs.ObserverMux(c.Observer())}
	s.mux.HandleFunc("/v1/query", s.post(s.handleQuery))
	s.mux.HandleFunc("/v1/extract", s.post(s.handleExtract))
	s.mux.HandleFunc("/v1/append", s.post(s.handleAppend))
	s.mux.HandleFunc("/v1/register", s.post(s.handleRegister))
	s.mux.HandleFunc("/v1/reindex", s.post(s.handleReindex))
	return s
}

// Handler returns the full serving mux (API + observability endpoints).
func (s *Server) Handler() http.Handler { return s.mux }

// Start opens the listener synchronously: when it returns nil the server is
// accepting connections and Addr reports the resolved bound address.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.srv = &http.Server{Addr: ln.Addr().String(), Handler: s.mux}
	go func() { _ = s.srv.Serve(ln) }()
	return nil
}

// Addr returns the bound listen address after Start.
func (s *Server) Addr() string {
	if s.srv == nil {
		return s.cfg.Addr
	}
	return s.srv.Addr
}

// Shutdown drains gracefully: readiness flips to 503 first (so load
// balancers stop routing here), in-flight requests get up to DrainTimeout to
// finish, and only then is the client sealed — pending streamed reviews
// published and the WAL closed cleanly.
func (s *Server) Shutdown(ctx context.Context) error {
	s.c.Observer().Telemetry().Health().MarkShutdown()
	var err error
	if s.srv != nil {
		dctx, cancel := context.WithTimeout(ctx, s.cfg.DrainTimeout)
		defer cancel()
		err = s.srv.Shutdown(dctx)
	}
	s.c.Shutdown()
	return err
}

// post wraps a JSON handler with the transport checks shared by every API
// endpoint: POST only, body-size cap, and traceparent ingestion. The inner
// handler sees a request whose context joins the caller's trace, so the wide
// event the facade emits carries the propagated trace ID.
func (s *Server) post(h func(w http.ResponseWriter, r *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		if tp := r.Header.Get("traceparent"); tp != "" {
			if tr, err := obs.ParseTraceparent(tp); err == nil {
				r = r.WithContext(obs.ContextWithTrace(r.Context(), tr))
				w.Header().Set("traceparent", tp)
			}
		}
		h(w, r)
	}
}

// decode unmarshals the request body into v, translating transport failures
// to their HTTP statuses: 413 for an over-limit body, 400 for bad JSON. An
// empty body decodes as the zero value (so bodyless POSTs to /v1/reindex
// work).
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.EOF) {
			return true
		}
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("body exceeds %d bytes", tooBig.Limit))
			return false
		}
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return false
	}
	return true
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// writeErr maps a facade error to a status: a cancelled or timed-out request
// (the caller hung up, or the deadline passed mid-rank) is the client's
// fault, everything else is a 500.
func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		code = http.StatusServiceUnavailable
	}
	httpError(w, code, err.Error())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// QueryRequest is the /v1/query body. TopK and ThetaFilter override the
// client's config for this request only when present.
type QueryRequest struct {
	Utterance   string   `json:"utterance"`
	TopK        *int     `json:"top_k,omitempty"`
	ThetaFilter *float64 `json:"theta_filter,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Utterance == "" {
		httpError(w, http.StatusBadRequest, "utterance required")
		return
	}
	resp, err := s.c.QueryCtx(r.Context(), req.Utterance, saccs.QueryOptions{TopK: req.TopK, ThetaFilter: req.ThetaFilter})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, resp)
}

// ExtractRequest is the /v1/extract body.
type ExtractRequest struct {
	Text string `json:"text"`
}

// ExtractResponse is the /v1/extract answer.
type ExtractResponse struct {
	Tags []string `json:"tags"`
}

func (s *Server) handleExtract(w http.ResponseWriter, r *http.Request) {
	var req ExtractRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Text == "" {
		httpError(w, http.StatusBadRequest, "text required")
		return
	}
	tags, err := s.c.ExtractTagsCtx(r.Context(), req.Text)
	if err != nil {
		writeErr(w, err)
		return
	}
	if tags == nil {
		tags = []string{}
	}
	writeJSON(w, ExtractResponse{Tags: tags})
}

// AppendRequest is the /v1/append body: one review streamed into an entity.
// The optional metadata fields, when any is set, are registered durably
// before the review (so a crash-recovered entity keeps its identity).
type AppendRequest struct {
	EntityID string `json:"entity_id"`
	Review   string `json:"review"`
	Name     string `json:"name,omitempty"`
	City     string `json:"city,omitempty"`
	Cuisine  string `json:"cuisine,omitempty"`
}

func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	var req AppendRequest
	if !decode(w, r, &req) {
		return
	}
	if req.EntityID == "" || req.Review == "" {
		httpError(w, http.StatusBadRequest, "entity_id and review required")
		return
	}
	if req.Name != "" || req.City != "" || req.Cuisine != "" {
		e := saccs.Entity{ID: req.EntityID, Name: req.Name, City: req.City, Cuisine: req.Cuisine}
		if err := s.c.RegisterEntityCtx(r.Context(), e); err != nil {
			writeErr(w, err)
			return
		}
	}
	if err := s.c.AppendReviewCtx(r.Context(), req.EntityID, req.Review); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, map[string]string{"status": "ok"})
}

// RegisterRequest is the /v1/register body: entity metadata without reviews.
type RegisterRequest struct {
	EntityID string `json:"entity_id"`
	Name     string `json:"name,omitempty"`
	City     string `json:"city,omitempty"`
	Cuisine  string `json:"cuisine,omitempty"`
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !decode(w, r, &req) {
		return
	}
	if req.EntityID == "" {
		httpError(w, http.StatusBadRequest, "entity_id required")
		return
	}
	e := saccs.Entity{ID: req.EntityID, Name: req.Name, City: req.City, Cuisine: req.Cuisine}
	if err := s.c.RegisterEntityCtx(r.Context(), e); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, map[string]string{"status": "ok"})
}

// ReindexResponse is the /v1/reindex answer: the unknown tags drained from
// the history into the index.
type ReindexResponse struct {
	Added []string `json:"added"`
}

func (s *Server) handleReindex(w http.ResponseWriter, r *http.Request) {
	var req struct{}
	if !decode(w, r, &req) {
		return
	}
	added, err := s.c.ReindexCtx(r.Context())
	if err != nil {
		writeErr(w, err)
		return
	}
	if added == nil {
		added = []string{}
	}
	writeJSON(w, ReindexResponse{Added: added})
}
