package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"

	"saccs"
	"saccs/internal/yelp"
)

// The trained pipeline is expensive (seconds) and immutable once built:
// every test shares one sharded client over the seeded demo world. The drain
// test seals it, so it must run last (it does — tests run in source order
// within this file).
var (
	sharedOnce   sync.Once
	sharedClient *saccs.Client
	sharedErr    error
)

func demoEntities() []saccs.Entity {
	w := yelp.Generate(yelp.FastConfig())
	out := make([]saccs.Entity, len(w.Entities))
	for i, e := range w.Entities {
		reviews := make([]string, len(e.Reviews))
		for j, r := range e.Reviews {
			reviews[j] = r.Text
		}
		out[i] = saccs.Entity{ID: e.ID, Name: e.Name, City: e.City, Cuisine: e.Cuisine, Reviews: reviews}
	}
	return out
}

func testClient(t *testing.T) *saccs.Client {
	t.Helper()
	sharedOnce.Do(func() {
		cfg := saccs.DefaultConfig()
		cfg.Shards = 2
		c, err := saccs.New(cfg)
		if err != nil {
			sharedErr = err
			return
		}
		sharedErr = c.IndexEntities(demoEntities(), c.CanonicalTags())
		sharedClient = c
	})
	if sharedErr != nil {
		t.Fatal(sharedErr)
	}
	return sharedClient
}

func testServer(t *testing.T) *Server {
	return New(testClient(t), Config{MaxBodyBytes: 4096})
}

func postJSON(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// TestHandlerTable drives every transport-error path through the mux: method
// checks, malformed and unknown-field JSON, oversized bodies, and missing
// required fields.
func TestHandlerTable(t *testing.T) {
	s := testServer(t)
	cases := []struct {
		name, method, path, body string
		wantCode                 int
	}{
		// The reindex case runs before any query case: with an empty tag
		// history it is a no-op, while after a query it could drain unknown
		// tags into the shared index and perturb the golden replay below.
		{"reindex-empty-body", http.MethodPost, "/v1/reindex", "", http.StatusOK},
		{"query-get", http.MethodGet, "/v1/query", "", http.StatusMethodNotAllowed},
		{"query-bad-json", http.MethodPost, "/v1/query", "{not json", http.StatusBadRequest},
		{"query-unknown-field", http.MethodPost, "/v1/query", `{"utteranc":"typo"}`, http.StatusBadRequest},
		{"query-missing-utterance", http.MethodPost, "/v1/query", `{}`, http.StatusBadRequest},
		{"query-oversized", http.MethodPost, "/v1/query", `{"utterance":"` + strings.Repeat("x", 8192) + `"}`, http.StatusRequestEntityTooLarge},
		{"query-ok", http.MethodPost, "/v1/query", `{"utterance":"a place with delicious food"}`, http.StatusOK},
		{"extract-missing-text", http.MethodPost, "/v1/extract", `{}`, http.StatusBadRequest},
		{"extract-ok", http.MethodPost, "/v1/extract", `{"text":"the pasta was delicious"}`, http.StatusOK},
		{"append-missing-review", http.MethodPost, "/v1/append", `{"entity_id":"e900"}`, http.StatusBadRequest},
		{"append-delete", http.MethodDelete, "/v1/append", "", http.StatusMethodNotAllowed},
		{"register-missing-id", http.MethodPost, "/v1/register", `{"name":"No ID"}`, http.StatusBadRequest},
		{"healthz", http.MethodGet, "/healthz", "", http.StatusOK},
		{"readyz", http.MethodGet, "/readyz", "", http.StatusOK},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(tc.method, tc.path, strings.NewReader(tc.body))
			w := httptest.NewRecorder()
			s.Handler().ServeHTTP(w, req)
			if w.Code != tc.wantCode {
				t.Fatalf("%s %s: got %d, want %d; body: %s", tc.method, tc.path, w.Code, tc.wantCode, w.Body.String())
			}
		})
	}
}

// TestQueryAnswers checks the happy path end to end through the mux: a
// subjective utterance comes back with tags and ranked results, and a
// per-request top_k override truncates.
func TestQueryAnswers(t *testing.T) {
	s := testServer(t)
	w := postJSON(t, s.Handler(), "/v1/query", `{"utterance":"an italian place with delicious food","top_k":3}`)
	if w.Code != http.StatusOK {
		t.Fatalf("query: %d: %s", w.Code, w.Body.String())
	}
	var resp saccs.Response
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Tags) == 0 {
		t.Fatalf("no tags extracted: %+v", resp)
	}
	if len(resp.Results) == 0 || len(resp.Results) > 3 {
		t.Fatalf("top_k=3 returned %d results", len(resp.Results))
	}
}

// TestCancelledRequest maps a caller that has already hung up to 503, not a
// hung handler or a 500.
func TestCancelledRequest(t *testing.T) {
	s := testServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/query", strings.NewReader(`{"utterance":"delicious food"}`)).WithContext(ctx)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("cancelled query: got %d, want 503; body: %s", w.Code, w.Body.String())
	}
}

// TestTraceparentRoundTrip propagates a W3C traceparent through the HTTP
// layer: the response echoes it and the facade's wide event joins the trace.
func TestTraceparentRoundTrip(t *testing.T) {
	s := testServer(t)
	const trace = "4bf92f3577b34da6a3ce929d0e0e4736"
	tp := "00-" + trace + "-00f067aa0ba902b7-01"
	req := httptest.NewRequest(http.MethodPost, "/v1/query", strings.NewReader(`{"utterance":"nice staff"}`))
	req.Header.Set("traceparent", tp)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("query: %d: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("traceparent"); got != tp {
		t.Fatalf("response traceparent = %q, want %q", got, tp)
	}
	events := testClient(t).Events()
	if len(events) == 0 {
		t.Fatal("no wide events recorded")
	}
	last := events[len(events)-1]
	if last.Trace.String() != trace {
		t.Fatalf("wide event trace = %s, want %s (request did not join the caller's trace)", last.Trace, trace)
	}
	if got := w.Header().Get("traceparent"); !strings.Contains(got, trace) {
		t.Fatalf("echoed traceparent lost the trace ID: %q", got)
	}
}

// goldenFile mirrors the snapshot schema of the root package's golden tests.
type goldenFile struct {
	Utterance   string            `json:"utterance"`
	Intent      string            `json:"intent"`
	Slots       map[string]string `json:"slots"`
	Tags        []string          `json:"tags"`
	UnknownTags []string          `json:"unknown_tags"`
	Results     []struct {
		ID    string `json:"id"`
		Score string `json:"score"`
	} `json:"results"`
}

// TestGoldenReplayOverLoopback replays every golden utterance through the
// real server — TCP listener, HTTP client, JSON round trip — against the
// sharded demo world and requires the answers to match the same snapshots
// the in-process single-index client pins: the serving tier must add framing,
// not semantics.
func TestGoldenReplayOverLoopback(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "golden", "*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no golden snapshots found: %v", err)
	}
	s := New(testClient(t), Config{Addr: "127.0.0.1:0"})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	base := "http://" + s.Addr()
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		var want goldenFile
		if err := json.Unmarshal(data, &want); err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		t.Run(filepath.Base(f), func(t *testing.T) {
			body, _ := json.Marshal(map[string]string{"utterance": want.Utterance})
			resp, err := http.Post(base+"/v1/query", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("query over loopback: %d", resp.StatusCode)
			}
			var got saccs.Response
			if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
				t.Fatal(err)
			}
			if got.Intent != want.Intent {
				t.Errorf("intent: got %q, want %q", got.Intent, want.Intent)
			}
			if fmt.Sprint(got.Tags) != fmt.Sprint(want.Tags) {
				t.Errorf("tags: got %v, want %v", got.Tags, want.Tags)
			}
			n := len(got.Results)
			if n > 10 {
				n = 10
			}
			if n != len(want.Results) {
				t.Fatalf("results: got %d, want %d", n, len(want.Results))
			}
			for i, wr := range want.Results {
				if got.Results[i].ID != wr.ID {
					t.Errorf("rank %d: got %s, want %s", i, got.Results[i].ID, wr.ID)
					continue
				}
				ws, err := strconv.ParseFloat(wr.Score, 64)
				if err != nil {
					t.Fatalf("rank %d: unparseable golden score %q", i, wr.Score)
				}
				if math.Abs(ws-got.Results[i].Score) > 1e-9 {
					t.Errorf("rank %d (%s): score drifted: got %.9f, want %s", i, wr.ID, got.Results[i].Score, wr.Score)
				}
			}
		})
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// Drain contract: readiness is now permanently 503, liveness still 200.
	req := httptest.NewRequest(http.MethodGet, "/readyz", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after drain: got %d, want 503", w.Code)
	}
	req = httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("/healthz after drain: got %d, want 200", w.Code)
	}
}

// TestAppendWithMetadata streams a review with entity metadata through the
// API and checks both land: the entity is registered with its identity and
// the review is acknowledged. It runs after the golden replay because the
// streamed review eventually publishes into the shared index (and the
// preceding drain sealed the stream — an append transparently reopens it).
func TestAppendWithMetadata(t *testing.T) {
	s := testServer(t)
	body := `{"entity_id":"e900","review":"wonderful fresh pasta and a lovely view","name":"Trattoria 900","city":"montreal","cuisine":"italian"}`
	if w := postJSON(t, s.Handler(), "/v1/append", body); w.Code != http.StatusOK {
		t.Fatalf("append: %d: %s", w.Code, w.Body.String())
	}
	e, ok := testClient(t).Entity("e900")
	if !ok {
		t.Fatal("appended entity not registered")
	}
	if e.Name != "Trattoria 900" || e.City != "montreal" || e.Cuisine != "italian" {
		t.Fatalf("metadata lost: %+v", e)
	}
}
