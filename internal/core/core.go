// Package core assembles the paper's contribution — the Subjectivity Aware
// Conversational Search Service (SACCS) — from its parts: the extraction
// pipeline (tagging §4 + pairing §5) that turns utterances and reviews into
// subjective tags, the subjective tag inverted index with degrees of truth
// (§3.1), and the filtering & ranking of Algorithm 1 over an objective
// search API (§3.2–3.3), with the adaptive user-tag-history loop of Fig. 1.
package core

import (
	"context"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"saccs/internal/corpus"
	"saccs/internal/extcache"
	"saccs/internal/index"
	"saccs/internal/obs"
	"saccs/internal/pairing"
	"saccs/internal/search"
	"saccs/internal/sim"
	"saccs/internal/tokenize"
	"saccs/internal/yelp"
)

// Tagger labels tokens with IOB aspect/opinion classes; tagger.Model and
// tagger.OpineDB both satisfy it.
type Tagger interface {
	Predict(tokens []string) []tokenize.Label
}

// Generationer identifies a tagger's weight state; tagger.Model and
// tagger.OpineDB both satisfy it. Equal generations promise bit-identical
// predictions, which is what lets the extraction cache serve a stored result
// in place of a decode. A Tagger without a generation (GoldTagger, test
// fakes) is simply never cached.
type Generationer interface {
	Generation() uint64
}

// Pairer associates aspect spans with opinion spans; the §5.1 heuristics
// satisfy it directly and ClassifierPairer adapts the supervised model.
type Pairer interface {
	Pairs(tokens []string, aspects, opinions []tokenize.Span) []pairing.Pair
}

// ClassifierPairer adapts the §5.2 discriminative model to the Pairer
// interface: every P_all candidate scoring above Threshold becomes a pair.
type ClassifierPairer struct {
	C *pairing.Classifier
	// Threshold on the positive probability (0 defaults to 0.5).
	Threshold float64
}

// Pairs scores every aspect×opinion combination and keeps the positives.
func (p ClassifierPairer) Pairs(tokens []string, aspects, opinions []tokenize.Span) []pairing.Pair {
	th := p.Threshold
	if th == 0 {
		th = 0.5
	}
	var out []pairing.Pair
	for _, a := range aspects {
		for _, o := range opinions {
			cand := pairing.Candidate{
				Tokens: tokens, Aspects: aspects, Opinions: opinions,
				Aspect: a, Opinion: o,
			}
			if p.C.Predict(cand) >= th {
				out = append(out, pairing.Pair{Aspect: a, Opinion: o})
			}
		}
	}
	return out
}

// Extractor is the full §4+§5 pipeline: tag tokens, split spans, pair them,
// and render subjective tags as "<opinion> <aspect>".
type Extractor struct {
	Tagger Tagger
	Pairer Pairer
	// Cache, when non-nil and the Tagger has a weight generation
	// (Generationer), short-circuits repeated sentences: the extracted tags
	// of each normalized token sequence are stored under the tagger's
	// generation and served without a decode while the weights are
	// unchanged. A retrain or model swap bumps the generation, making every
	// stale entry unservable. Nil (the default) disables caching.
	Cache *extcache.Cache
	// Obs, when set, records tagging and pairing latency histograms. Set it
	// before use; it must not change while extractions are in flight.
	Obs *obs.Observer
	// BatchWindow and BatchMaxSize configure cross-request decode batching
	// on the context-aware path (see batch.go): concurrent cache-missing
	// sentences gather for up to BatchWindow, and one shared forward decodes
	// up to BatchMaxSize of them, bit-identically to serial decoding. An
	// explicit zero in either (the zero value) disables batching, as does a
	// Tagger that is not a BatchTagger. Set both before use; they must not
	// change while extractions are in flight.
	BatchWindow  time.Duration
	BatchMaxSize int

	// Gather state (batch.go): the open cohort, the in-flight extraction
	// count, and the load signals gating the solo bypass — the last instant
	// two extractions overlapped, and the last decode-request arrival
	// (burst detection for schedulers that admit requests one at a time).
	// hwInflight/hwStamp track the recent high-water mark of the in-flight
	// count: the seal target for a gathering batch, so a requester that is
	// momentarily between queries (ranking, parsing) still gets a slot in
	// the cohort it is about to rejoin.
	batchMu    sync.Mutex
	batchCur   *extractBatch
	inflight   atomic.Int64
	lastMulti  atomic.Int64
	lastArrive atomic.Int64
	hwInflight atomic.Int64
	hwStamp    atomic.Int64
}

// ExtractFromTokens extracts subjective tags from one tokenized sentence.
func (e *Extractor) ExtractFromTokens(tokens []string) []string {
	return e.ExtractFromTokensTraced(nil, tokens)
}

// ExtractFromTokensTraced is ExtractFromTokens with tracing: under a live
// parent span it opens "tagger.decode" and "pairing.pairs" children — the §4
// Viterbi decode and the §5 pairing stages of the pipeline. Cache hits emit
// the same two stage spans (so trace shapes and stage histograms are
// unaffected by caching) with a "cached" attribute set.
func (e *Extractor) ExtractFromTokensTraced(parent *obs.Span, tokens []string) []string {
	var gen uint64
	var key string
	var tg Generationer
	if e.Cache != nil {
		if g, ok := e.Tagger.(Generationer); ok {
			tg = g
			gen = g.Generation()
			key = strings.Join(tokens, "\x1f")
			if tags, ok := e.Cache.Get(gen, key); ok {
				st := obs.BeginStage(e.Obs, parent, "tagger.decode")
				st.Span().Set("tokens", len(tokens)).Set("cached", 1)
				st.End()
				st = obs.BeginStage(e.Obs, parent, "pairing.pairs")
				st.Span().Set("cached", 1)
				st.End()
				return tags
			}
		}
	}
	st := obs.BeginStage(e.Obs, parent, "tagger.decode")
	labels := e.Tagger.Predict(tokens)
	st.Span().Set("tokens", len(tokens))
	st.End()
	// Store only if the weights did not change while we were decoding: a
	// Train that overlapped this decode bumped the generation at its start,
	// so the re-read differs and the possibly-mixed result is discarded
	// rather than cached under the pre-train generation.
	genOK := tg != nil && tg.Generation() == gen
	return e.finishExtract(parent, tokens, labels, gen, genOK, key)
}

// finishExtract is the post-decode tail shared by the serial and batched
// paths: span splitting, pairing, tag rendering, and the generation-checked
// cache fill. genOK reports that the tagger's generation was unchanged across
// the decode that produced labels; only then is the result cached under gen.
func (e *Extractor) finishExtract(parent *obs.Span, tokens []string, labels []tokenize.Label, gen uint64, genOK bool, key string) []string {
	spans := tokenize.Spans(labels)
	var aspects, opinions []tokenize.Span
	for _, sp := range spans {
		if sp.Kind == tokenize.AspectSpan {
			aspects = append(aspects, sp)
		} else {
			opinions = append(opinions, sp)
		}
	}
	st := obs.BeginStage(e.Obs, parent, "pairing.pairs")
	pairs := e.Pairer.Pairs(tokens, aspects, opinions)
	st.Span().Set("aspects", len(aspects)).Set("opinions", len(opinions)).Set("pairs", len(pairs))
	st.End()
	var tags []string
	seen := map[string]bool{}
	for _, p := range pairs {
		tag := p.Opinion.Text(tokens) + " " + p.Aspect.Text(tokens)
		if !seen[tag] {
			seen[tag] = true
			tags = append(tags, tag)
		}
	}
	if genOK {
		e.Cache.Put(gen, key, tags)
	}
	return tags
}

// ExtractBatch extracts tags from many tokenized sentences, fanning the
// sentences (not their callers' coarser units) across at most workers
// goroutines: 0 means GOMAXPROCS, 1 forces serial. Results land in input
// order, and since sentence extractions are independent the output is
// identical to calling ExtractFromTokens in a loop, for any worker count.
// The workers share the extractor's cache, so duplicated sentences are
// decoded once. Requires a reentrant Tagger/Pairer when workers > 1 (every
// production pipeline in this repo is; pairing.Attention is not).
func (e *Extractor) ExtractBatch(sentences [][]string, workers int) [][]string {
	out := make([][]string, len(sentences))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(sentences) {
		workers = len(sentences)
	}
	if workers <= 1 {
		for i, s := range sentences {
			out[i] = e.ExtractFromTokens(s)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(sentences) {
					return
				}
				out[i] = e.ExtractFromTokens(sentences[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// ExtractTags splits free text into sentences and extracts tags from each.
func (e *Extractor) ExtractTags(text string) []string {
	return e.ExtractTagsTraced(nil, text)
}

// ExtractTagsTraced is ExtractTags with per-sentence stage spans attached to
// parent (see ExtractFromTokensTraced).
func (e *Extractor) ExtractTagsTraced(parent *obs.Span, text string) []string {
	// context.Background is never cancelled, so the error path is dead.
	tags, _ := e.ExtractTagsCtx(context.Background(), parent, text)
	return tags
}

// ExtractTagsCtx is ExtractTagsTraced with cooperative cancellation: the
// context is polled before each sentence's decode, so a cancelled or expired
// context aborts with ctx's error and no partial tag list. (A single
// sentence's Viterbi decode is not interruptible — stage boundaries are the
// cancellation points.) With batching configured (BatchWindow/BatchMaxSize)
// the caller's cache-missing sentences are enqueued together into the gather
// window and share decode forwards with concurrent callers — see batch.go; a
// caller cancelled while enqueued returns ctx's error without disturbing its
// cohort. Batched and serial decoding are bit-identical, so the tag list is
// the same either way.
func (e *Extractor) ExtractTagsCtx(ctx context.Context, parent *obs.Span, text string) ([]string, error) {
	sentences := tokenize.Sentences(text)
	var perSent [][]string
	if bt, ok := e.batchingEnabled(); ok {
		var err error
		perSent, err = e.extractSentencesBatched(ctx, parent, bt, sentences)
		if err != nil {
			return nil, err
		}
	} else {
		perSent = make([][]string, 0, len(sentences))
		for _, sent := range sentences {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			perSent = append(perSent, e.ExtractFromTokensTraced(parent, tokenize.Words(sent)))
		}
	}
	var tags []string
	seen := map[string]bool{}
	for _, stags := range perSent {
		for _, tag := range stags {
			if !seen[tag] {
				seen[tag] = true
				tags = append(tags, tag)
			}
		}
	}
	return tags, nil
}

// ReviewTagSource yields subjective tags for a review. NeuralSource runs the
// extraction pipeline; GoldSource reads the generator's gold mentions and is
// used to isolate index/ranking quality from extraction noise in ablations.
type ReviewTagSource interface {
	Tags(r *yelp.Review) []string
}

// NeuralSource extracts review tags with the full pipeline.
type NeuralSource struct {
	E *Extractor
}

// Tags runs the extractor over every sentence of the review.
func (n NeuralSource) Tags(r *yelp.Review) []string {
	var out []string
	for _, s := range r.Sentences {
		out = append(out, n.E.ExtractFromTokens(s.Tokens)...)
	}
	return out
}

// GoldSource reads the generator's gold annotation.
type GoldSource struct{}

// Tags renders each gold mention as "<opinion> <aspect>".
func (GoldSource) Tags(r *yelp.Review) []string {
	var out []string
	for _, s := range r.Sentences {
		for _, m := range s.Mentions {
			out = append(out, m.OpinionText(s.Tokens)+" "+m.AspectText(s.Tokens))
		}
	}
	return out
}

// Config tunes the service.
type Config struct {
	// ThetaIndex is the Eq. 1 review-tag similarity threshold.
	ThetaIndex float64
	// ThetaFilter is the Algorithm 1 unknown-tag similarity threshold.
	ThetaFilter float64
	// Agg is the §3.3 cross-tag aggregation.
	Agg search.Aggregation
	// TopK truncates query answers (0 = all).
	TopK int
}

// DefaultConfig returns the thresholds used across the reproduction.
func DefaultConfig() Config {
	return Config{ThetaIndex: 0.55, ThetaFilter: 0.45, Agg: search.MeanAgg, TopK: 10}
}

// Response is the answer to one subjective utterance.
type Response struct {
	// Intent is the dialog system's parse.
	Intent search.Intent
	// Tags are the subjective tags extracted from the utterance.
	Tags []string
	// UnknownTags are the extracted tags missing from the index (queued in
	// the user tag history for the next indexing round).
	UnknownTags []string
	// Results are the filtered, ranked entities.
	Results []search.Scored
}

// Service is the assembled SACCS system.
type Service struct {
	Cfg       Config
	World     *yelp.World
	Extractor *Extractor
	Measure   sim.Measure
	Index     *index.Index
	History   *index.History
	API       *search.API
	Ranker    *search.Ranker
	// Obs is the service's observability handle (nil when disabled); use
	// SetObserver to attach it so the index and extractor are wired too.
	Obs *obs.Observer
	// Workers bounds BuildEntityTags' extraction fan-out: 0 (the default)
	// uses GOMAXPROCS, 1 forces serial extraction. Set 1 when the extractor
	// is not reentrant — every production Tagger/Pairer in this repo is, but
	// the attention-readback pairing heuristic (pairing.Attention) is not.
	Workers int

	entityTags []index.EntityReviews
}

// SetObserver threads an observer through every instrumented component the
// service owns. Call before serving; ResetIndex preserves the wiring.
func (s *Service) SetObserver(o *obs.Observer) {
	s.Obs = o
	s.Index.SetObserver(o)
	if s.Extractor != nil {
		s.Extractor.Obs = o
		s.Extractor.Cache.SetObserver(o)
	}
}

// NewService wires a SACCS instance over a world. The similarity measure
// defaults to conceptual similarity (§3.1) when nil.
func NewService(w *yelp.World, ex *Extractor, measure sim.Measure, cfg Config) *Service {
	if measure == nil {
		measure = sim.NewConceptual()
	}
	ix := index.New(measure, cfg.ThetaIndex)
	return &Service{
		Cfg:       cfg,
		World:     w,
		Extractor: ex,
		Measure:   measure,
		Index:     ix,
		History:   index.NewHistory(),
		API:       &search.API{World: w},
		Ranker:    &search.Ranker{Index: ix, ThetaFilter: cfg.ThetaFilter, Agg: cfg.Agg},
	}
}

// BuildEntityTags runs the tag source over every review once and caches the
// per-entity tag multisets the indexer consumes. Extraction fans out across
// at most Workers goroutines; each result lands in its input-order slot, so
// the cached tag multisets are identical for any worker count.
//
// A NeuralSource is fanned out at sentence granularity (Extractor.
// ExtractBatch): every (entity, review, sentence) becomes one task, so a few
// review-heavy entities cannot serialize the build the way per-entity tasks
// would, and duplicated sentences share one cached decode. Any other source
// keeps the per-entity fan-out.
func (s *Service) BuildEntityTags(src ReviewTagSource) {
	var t0 time.Time
	if s.Obs != nil {
		t0 = time.Now()
	}
	out := make([]index.EntityReviews, len(s.World.Entities))
	w := s.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if ns, ok := src.(NeuralSource); ok && w > 1 {
		s.buildEntityTagsBatched(ns, w, out)
	} else {
		if w > len(s.World.Entities) {
			w = len(s.World.Entities)
		}
		s.buildEntityTagsByEntity(src, w, out)
	}
	s.entityTags = out
	if s.Obs != nil {
		s.Obs.Histogram("extract.reviews").ObserveSince(t0)
		s.Obs.Gauge("extract.entities").Set(float64(len(s.entityTags)))
		s.Obs.Gauge("extract.workers").Set(float64(w))
	}
}

// buildEntityTagsByEntity is the per-entity fan-out: one task per entity.
func (s *Service) buildEntityTagsByEntity(src ReviewTagSource, w int, out []index.EntityReviews) {
	extract := func(i int) {
		e := s.World.Entities[i]
		er := index.EntityReviews{EntityID: e.ID, ReviewCount: len(e.Reviews)}
		for _, r := range e.Reviews {
			er.Tags = append(er.Tags, src.Tags(r)...)
		}
		out[i] = er
	}
	if w <= 1 {
		for i := range s.World.Entities {
			extract(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(s.World.Entities) {
					return
				}
				extract(i)
			}
		}()
	}
	wg.Wait()
}

// buildEntityTagsBatched flattens every (entity, review, sentence) into one
// job list, extracts all sentences through ExtractBatch (which applies the
// Workers bound), and reassembles per-entity tag multisets in input order —
// byte-identical to the serial per-entity walk.
func (s *Service) buildEntityTagsBatched(ns NeuralSource, w int, out []index.EntityReviews) {
	var sentences [][]string
	var owner []int // flattened sentence -> entity slot
	for i, e := range s.World.Entities {
		out[i] = index.EntityReviews{EntityID: e.ID, ReviewCount: len(e.Reviews)}
		for _, r := range e.Reviews {
			for _, sent := range r.Sentences {
				sentences = append(sentences, sent.Tokens)
				owner = append(owner, i)
			}
		}
	}
	tags := ns.E.ExtractBatch(sentences, w)
	for j, t := range tags {
		out[owner[j]].Tags = append(out[owner[j]].Tags, t...)
	}
}

// EntityTags exposes the cached extraction (after BuildEntityTags).
func (s *Service) EntityTags() []index.EntityReviews {
	return append([]index.EntityReviews(nil), s.entityTags...)
}

// ResetIndex discards the index and user tag history, keeping the cached
// entity tags — used to sweep index sizes over one extraction pass.
func (s *Service) ResetIndex() {
	s.Index = index.New(s.Measure, s.Cfg.ThetaIndex)
	s.Index.SetObserver(s.Obs)
	s.History = index.NewHistory()
	s.Ranker = &search.Ranker{Index: s.Index, ThetaFilter: s.Cfg.ThetaFilter, Agg: s.Cfg.Agg}
}

// IndexTags runs an indexing round for the given tags (Fig. 1's indexer),
// fanning out across the index's worker pool (index.Index.SetWorkers).
// BuildEntityTags must have run first.
func (s *Service) IndexTags(tags []string) {
	s.Index.Build(lower(tags), s.entityTags)
}

// IndexPending drains the user tag history into the index — the adaptive
// round of §3.1 — and returns the tags indexed.
func (s *Service) IndexPending() []string {
	pend := s.History.Drain()
	s.IndexTags(pend)
	return pend
}

// QueryTags answers a query expressed directly as subjective tags plus
// objective slots (the Table 2 harness path). Unknown tags go to the
// history. The whole query reads one pinned index snapshot, so it is
// lock-free and unaffected by concurrent indexing rounds.
func (s *Service) QueryTags(slots map[string]string, tags []string) []search.Scored {
	snap := s.Index.Current()
	apiResults := s.API.Search(slots)
	for _, t := range tags {
		if !snap.Has(strings.ToLower(t)) {
			s.History.Add(strings.ToLower(t))
		}
	}
	rk := &search.Ranker{Index: snap, ThetaFilter: s.Cfg.ThetaFilter, Agg: s.Cfg.Agg}
	ranked := rk.Rank(apiResults, lower(tags))
	if s.Cfg.TopK > 0 && len(ranked) > s.Cfg.TopK {
		ranked = ranked[:s.Cfg.TopK]
	}
	return ranked
}

// Query answers a natural-language utterance end-to-end: intent + slots,
// subjective tag extraction, index probe, filtering and ranking. With an
// observer attached (SetObserver) it produces one root "query" span whose
// children time every stage, and per-stage latency histograms.
func (s *Service) Query(utterance string) Response {
	// context.Background is never cancelled, so the error path is dead.
	resp, _ := s.QueryCtx(context.Background(), utterance)
	return resp
}

// QueryCtx is Query with cooperative cancellation: the context is polled at
// every stage boundary (parse → tagger.decode → pairing → objective → rank),
// between extraction sentences, and inside the per-tag similarity scan. On a
// cancelled or expired context it returns ctx's error and a zero Response —
// never partial results — and the root span (plus the interrupted stage's
// span) carries a cancelled/deadline status.
//
// The query pins one index snapshot up front: every index probe reads that
// immutable generation lock-free, so a concurrent indexing round neither
// blocks nor changes the answer mid-request.
func (s *Service) QueryCtx(ctx context.Context, utterance string) (Response, error) {
	var t0 time.Time
	if s.Obs != nil {
		t0 = time.Now()
	}
	ctx, req := s.Obs.StartRequest(ctx, "query")
	root := req.Root().Set("utterance_len", len(utterance))
	req.Ev.UtteranceLen = len(utterance)
	fail := func(err error) (Response, error) {
		if s.Obs != nil {
			s.Obs.Counter("query.interrupted.total").Inc()
		}
		req.Finish(err)
		return Response{}, err
	}
	if err := ctx.Err(); err != nil {
		return fail(err)
	}
	snap := s.Index.Current()
	req.Ev.Generation = snap.Generation()

	st := obs.BeginStage(s.Obs, root, "parse")
	intent := search.ParseUtterance(utterance)
	st.End()

	tags, err := s.Extractor.ExtractTagsCtx(ctx, root, utterance)
	if err != nil {
		return fail(err)
	}

	var unknown []string
	for _, t := range tags {
		if !snap.Has(t) {
			unknown = append(unknown, t)
			s.History.Add(t)
		}
	}

	if err := ctx.Err(); err != nil {
		return fail(err)
	}
	st = obs.BeginStage(s.Obs, root, "objective")
	apiResults := s.API.Search(intent.Slots)
	st.Span().Set("results", len(apiResults))
	st.End()

	st = obs.BeginStage(s.Obs, root, "rank")
	rk := &search.Ranker{Index: snap, ThetaFilter: s.Cfg.ThetaFilter, Agg: s.Cfg.Agg}
	results, err := rk.RankCtx(ctx, st.Span(), apiResults, tags)
	if err != nil {
		st.EndErr(err)
		return fail(err)
	}
	st.End()
	if s.Cfg.TopK > 0 && len(results) > s.Cfg.TopK {
		results = results[:s.Cfg.TopK]
	}

	if s.Obs != nil {
		s.Obs.Counter("query.total").Inc()
		s.Obs.Counter("query.unknown_tags.total").Add(int64(len(unknown)))
		s.Obs.Histogram("query.latency").ObserveSince(t0)
	}
	root.Set("tags", len(tags)).Set("unknown", len(unknown)).Set("results", len(results))
	req.Ev.Tags, req.Ev.Unknown, req.Ev.Results = len(tags), len(unknown), len(results)
	req.Finish(nil)
	return Response{Intent: intent, Tags: tags, UnknownTags: unknown, Results: results}, nil
}

// CanonicalTags returns the world's feature tags sorted — the 18 tags of
// §6.2 for the restaurants domain.
func (s *Service) CanonicalTags() []string {
	var tags []string
	for _, f := range s.World.Domain.Features {
		tags = append(tags, f.Name)
	}
	sort.Strings(tags)
	return tags
}

func lower(tags []string) []string {
	out := make([]string, len(tags))
	for i, t := range tags {
		out[i] = strings.ToLower(t)
	}
	return out
}

// GoldTagger tags sentences by replaying the generator's gold labels; it
// exists for tests and ablations that isolate the pairing or ranking stages
// from tagging noise. It matches sentences by their joined token text.
type GoldTagger struct {
	gold map[string][]tokenize.Label
}

// NewGoldTagger indexes gold sentences for lookup.
func NewGoldTagger(sentences []corpus.Sentence) *GoldTagger {
	g := &GoldTagger{gold: map[string][]tokenize.Label{}}
	for _, s := range sentences {
		g.gold[strings.Join(s.Tokens, " ")] = s.Labels
	}
	return g
}

// Predict returns the stored gold labels, or all-O for unknown sentences.
func (g *GoldTagger) Predict(tokens []string) []tokenize.Label {
	if labels, ok := g.gold[strings.Join(tokens, " ")]; ok {
		return labels
	}
	return make([]tokenize.Label, len(tokens))
}
