package core

import (
	"context"
	"strings"
	"time"

	"saccs/internal/obs"
	"saccs/internal/tokenize"
)

// Cross-request extraction batching. On a single-CPU box, N concurrent
// queries gain nothing from running N Viterbi decodes interleaved — the
// scheduler just time-slices the same serial work and adds switch overhead
// (the measured 1→4 goroutine QPS regression). What does help is making the
// concurrency visible to the kernels: decode requests that miss the
// extraction cache gather into one batch, a single leader runs one padded
// MiniBERT + BiLSTM-CRF forward over all of them (tagger.Model.PredictBatch,
// ~3x cheaper per sequence than serial Predict at batch ≥4), and the results
// fan back to the waiting requests. Batched decoding is bit-identical to
// serial Predict — the batch kernels replay the serial arithmetic per
// sequence (internal/nn, internal/bert differential tests) — so batching is
// invisible in results, goldens, and cache contents.
//
// Gather protocol. The first cache-missing request opens a batch and becomes
// its leader; later requests join it, each enqueuing ALL of its cache-missing
// sentences at once (a three-sentence utterance contributes three sequences
// in one join — within-request batching rides on the same cohort). The batch
// seals — no further joins — at the earliest of:
//
//   - a joiner filling it to BatchMaxSize sequences,
//   - a joiner completing the expected cohort (the recent high-water mark of
//     concurrent extractions — everyone who could join has joined; waiting
//     longer is pure latency), or
//   - the leader's gather window (BatchWindow) expiring.
//
// The sealed leader decodes the gathered sequences in shared forwards of at
// most BatchMaxSize each and publishes the labels; each request then
// finishes its own pipeline tails — pairing, tag rendering,
// generation-checked cache fill — exactly as the serial path would, in its
// own sentence order. Duplicate sentences occupy one batch slot and fan out
// to all their waiters.
//
// Cancellation cannot poison a batch. A waiter whose context dies while
// enqueued abandons the batch (its sequence still decodes; its result is
// simply never read) and returns ctx.Err() with no cache fill. A leader
// whose context dies during the gather still seals and decodes the batch —
// the joined waiters depend on it — and only then returns its own error.
//
// A solo request pays no gather latency: when nothing else is in flight,
// nothing has been for a few windows (hysteresis), and the previous decode
// request arrived more than a window ago (arrival-gap burst detection — a
// 1-CPU scheduler admits a burst one request at a time, so an in-flight
// count of 1 does not mean load is gone), the request decodes serially on
// the spot.

// BatchTagger is a Tagger that can decode several sequences in one shared
// forward pass, each result bit-identical to a solo Predict; tagger.Model
// satisfies it. The cross-request batcher engages only for taggers that do.
type BatchTagger interface {
	Tagger
	PredictBatch(seqs [][]string) [][]tokenize.Label
}

// soloHysteresisWindows is how long after the last observed concurrency a
// lone request keeps batching (in units of BatchWindow) instead of decoding
// solo. On one CPU, cohort members enter the extractor one at a time — an
// instantaneous in-flight count of 1 does not mean load is gone.
const soloHysteresisWindows = 16

// extractBatch is one gather cohort: the sequences collected during a
// window, keyed for duplicate folding, and the decode results its waiters
// read after done closes.
type extractBatch struct {
	keys    map[string]int // sentence key -> slot in seqs
	seqs    [][]string
	callers int // requests gathered, each contributing >= 1 sequence
	opened  time.Time

	full chan struct{} // closed by the joiner that seals the batch
	done chan struct{} // closed by the leader once labels/gen are set

	labels [][]tokenize.Label
	gen    uint64
	genOK  bool
}

// batchingEnabled reports whether cross-request batching is configured and
// the tagger supports shared forwards.
func (e *Extractor) batchingEnabled() (BatchTagger, bool) {
	if e.BatchWindow <= 0 || e.BatchMaxSize < 2 {
		return nil, false
	}
	bt, ok := e.Tagger.(BatchTagger)
	return bt, ok
}

// extractSentencesBatched is the decode entry of the context-aware path with
// batching configured: per-sentence cache lookups, then one batched (or
// serial, under the solo bypass) decode of every cache-missing sentence,
// then the shared per-sentence pipeline tails in sentence order. Results are
// bit-identical to running ExtractFromTokensTraced per sentence.
func (e *Extractor) extractSentencesBatched(ctx context.Context, parent *obs.Span, bt BatchTagger, sentences []string) ([][]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var tg Generationer
	if e.Cache != nil {
		tg, _ = e.Tagger.(Generationer)
	}
	out := make([][]string, len(sentences))
	type missed struct {
		idx    int
		tokens []string
		key    string
	}
	var misses []missed
	for i, sent := range sentences {
		tokens := tokenize.Words(sent)
		key := strings.Join(tokens, "\x1f")
		if tg != nil {
			if tags, hit := e.Cache.Get(tg.Generation(), key); hit {
				st := obs.BeginStage(e.Obs, parent, "tagger.decode")
				st.Span().Set("tokens", len(tokens)).Set("cached", 1)
				st.End()
				st = obs.BeginStage(e.Obs, parent, "pairing.pairs")
				st.Span().Set("cached", 1)
				st.End()
				out[i] = tags
				continue
			}
		}
		misses = append(misses, missed{i, tokens, key})
	}
	if len(misses) == 0 {
		return out, nil
	}

	n := e.inflight.Add(1)
	defer e.inflight.Add(-1)
	now := time.Now()
	// Two load signals decide between decoding solo and gathering. The
	// in-flight count (with hysteresis) sees requests that overlap in time.
	// The arrival gap sees bursts a single CPU serializes before they can
	// overlap: when the previous decode request arrived less than a window
	// ago, traffic is dense enough that opening a batch — whose leader wait
	// yields the processor to exactly those queued requests — wins even
	// though nothing is concurrent at this instant.
	arriveGap := now.UnixNano() - e.lastArrive.Swap(now.UnixNano())
	if n >= e.hwInflight.Load() {
		// Refresh the concurrency high-water mark (benignly racy: any
		// interleaving still records a recently observed level).
		e.hwInflight.Store(n)
		e.hwStamp.Store(now.UnixNano())
	}
	if n >= 2 {
		e.lastMulti.Store(now.UnixNano())
	} else if arriveGap > int64(e.BatchWindow) &&
		now.Sub(time.Unix(0, e.lastMulti.Load())) > soloHysteresisWindows*e.BatchWindow {
		// Nothing else in flight and nothing recently: skip the gather
		// window entirely and decode sentence by sentence, exactly as the
		// unbatched path. The serial and batched decodes are bit-identical,
		// so the choice is invisible beyond latency.
		for _, m := range misses {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			var gen uint64
			if tg != nil {
				gen = tg.Generation()
			}
			st := obs.BeginStage(e.Obs, parent, "tagger.decode")
			labels := e.Tagger.Predict(m.tokens)
			st.Span().Set("tokens", len(m.tokens))
			st.End()
			if e.Obs != nil {
				e.Obs.Counter("extract.batch.solo.total").Inc()
			}
			genOK := tg != nil && tg.Generation() == gen
			out[m.idx] = e.finishExtract(parent, m.tokens, labels, gen, genOK, m.key)
		}
		return out, nil
	}

	totalTokens := 0
	for _, m := range misses {
		totalTokens += len(m.tokens)
	}
	st := obs.BeginStage(e.Obs, parent, "tagger.decode")
	st.Span().Set("tokens", totalTokens).Set("sentences", len(misses)).Set("batched", 1)
	seqs := make([][]string, len(misses))
	keys := make([]string, len(misses))
	for j, m := range misses {
		seqs[j], keys[j] = m.tokens, m.key
	}
	b, slots, leader := e.joinBatch(keys, seqs, now)
	if leader {
		e.leadBatch(ctx, bt, b)
		// The batch is decoded regardless — joined waiters depend on it —
		// but a leader whose context died during the gather still fails
		// its own request, with no partial result.
		if err := ctx.Err(); err != nil {
			st.EndErr(err)
			return nil, err
		}
	} else {
		select {
		case <-b.done:
		case <-ctx.Done():
			// Abandon the cohort: the batch completes for the others, this
			// request's slots simply go unread and nothing is cached for
			// them here.
			st.EndErr(ctx.Err())
			return nil, ctx.Err()
		}
	}
	st.End()
	for j, m := range misses {
		out[m.idx] = e.finishExtract(parent, m.tokens, b.labels[slots[j]], b.gen, b.genOK && tg != nil, m.key)
	}
	return out, nil
}

// joinBatch adds one caller's cache-missing sentences to the open batch
// (starting one if needed) and returns the batch, each sentence's result
// slot, and whether the caller is the leader. The joiner that fills the
// batch to BatchMaxSize sequences, or that completes the expected cohort
// (sealTarget callers), seals it.
func (e *Extractor) joinBatch(keys []string, seqs [][]string, now time.Time) (*extractBatch, []int, bool) {
	e.batchMu.Lock()
	defer e.batchMu.Unlock()
	b := e.batchCur
	leader := b == nil
	if leader {
		b = &extractBatch{
			keys:   make(map[string]int, e.BatchMaxSize),
			opened: now,
			full:   make(chan struct{}),
			done:   make(chan struct{}),
		}
		e.batchCur = b
	}
	slots := make([]int, len(keys))
	for j, key := range keys {
		slot, dup := b.keys[key]
		if !dup {
			slot = len(b.seqs)
			b.keys[key] = slot
			b.seqs = append(b.seqs, seqs[j])
		}
		slots[j] = slot
	}
	b.callers++
	if !leader && (len(b.seqs) >= e.BatchMaxSize || int64(b.callers) >= e.sealTarget(now)) {
		e.batchCur = nil
		close(b.full)
	}
	return b, slots, leader
}

// sealTarget is the cohort size a gathering batch waits for: the recent
// high-water mark of the in-flight count. The instantaneous count alone
// seals one short whenever a steady requester is momentarily between
// queries — ranking or parsing when its peers join — which shrinks every
// cohort and its decode sharing. A high-water mark not re-observed within
// the hysteresis horizon is stale (a requester left for good): fall back to
// the live count rather than stall every batch on the window timer.
func (e *Extractor) sealTarget(now time.Time) int64 {
	if now.Sub(time.Unix(0, e.hwStamp.Load())) <= soloHysteresisWindows*e.BatchWindow {
		return e.hwInflight.Load()
	}
	n := e.inflight.Load()
	e.hwInflight.Store(n)
	e.hwStamp.Store(now.UnixNano())
	return n
}

// leadBatch gathers until the batch seals or the window expires, decodes
// the gathered sequences in shared forwards of at most BatchMaxSize each,
// and publishes the results. (A cohort can gather more than BatchMaxSize
// sequences — each joiner enqueues all its sentences at once — so the cap
// bounds the forward, not the cohort.)
func (e *Extractor) leadBatch(ctx context.Context, bt BatchTagger, b *extractBatch) {
	timer := time.NewTimer(e.BatchWindow)
	select {
	case <-b.full:
	case <-timer.C:
	case <-ctx.Done():
	}
	timer.Stop()
	e.batchMu.Lock()
	if e.batchCur == b {
		e.batchCur = nil
	}
	e.batchMu.Unlock()

	var tg Generationer
	if e.Cache != nil {
		tg, _ = e.Tagger.(Generationer)
	}
	if tg != nil {
		b.gen = tg.Generation()
	}
	if e.Obs != nil {
		e.Obs.Histogram("extract.batch.wait").ObserveSince(b.opened)
	}
	// Split the cohort into the fewest forwards of at most BatchMaxSize,
	// balanced so no forward is left with a tiny remainder (9 sequences at
	// cap 8 decode as 5+4, not 8+1 — a near-empty forward wastes the whole
	// point of sharing).
	chunks := (len(b.seqs) + e.BatchMaxSize - 1) / e.BatchMaxSize
	per := (len(b.seqs) + chunks - 1) / chunks
	b.labels = make([][]tokenize.Label, 0, len(b.seqs))
	for off := 0; off < len(b.seqs); off += per {
		end := off + per
		if end > len(b.seqs) {
			end = len(b.seqs)
		}
		b.labels = append(b.labels, bt.PredictBatch(b.seqs[off:end])...)
		if e.Obs != nil {
			e.Obs.Histogram("extract.batch.size").Observe(time.Duration(end - off))
			e.Obs.Counter("extract.batch.total").Inc()
		}
	}
	// Fills are valid only if no retrain overlapped the shared decodes —
	// the same bracket the serial path puts around its solo Predict.
	b.genOK = tg != nil && tg.Generation() == b.gen
	close(b.done)
}
