package core

import (
	"testing"

	"saccs/internal/corpus"
	"saccs/internal/lexicon"
	"saccs/internal/pairing"
	"saccs/internal/parse"
	"saccs/internal/tokenize"
	"saccs/internal/yelp"
)

// goldService builds a SACCS service over a fast world using gold review
// tags (isolating index/ranking behaviour from extraction noise).
func goldService(t *testing.T) *Service {
	t.Helper()
	w := yelp.Generate(yelp.FastConfig())
	var sentences []corpus.Sentence
	for _, e := range w.Entities {
		for _, r := range e.Reviews {
			sentences = append(sentences, r.Sentences...)
		}
	}
	// Also teach the gold tagger the test utterance of TestQueryEndToEnd.
	utterance := corpus.Sentence{
		Tokens: []string{"i", "want", "an", "italian", "restaurant", "in",
			"montreal", "with", "delicious", "food", "and", "nice", "staff"},
		Labels: []tokenize.Label{
			tokenize.O, tokenize.O, tokenize.O, tokenize.O, tokenize.O,
			tokenize.O, tokenize.O, tokenize.O, tokenize.BOP, tokenize.BAS,
			tokenize.O, tokenize.BOP, tokenize.BAS,
		},
	}
	sentences = append(sentences, utterance)
	ex := &Extractor{
		Tagger: NewGoldTagger(sentences),
		Pairer: pairing.Tree{Lex: parse.DomainLexicon(w.Domain), FromOpinions: true},
	}
	s := NewService(w, ex, nil, DefaultConfig())
	s.BuildEntityTags(GoldSource{})
	return s
}

func TestServiceIndexAndQuery(t *testing.T) {
	s := goldService(t)
	s.IndexTags(s.CanonicalTags())
	if s.Index.Len() != 18 {
		t.Fatalf("indexed %d tags, want 18", s.Index.Len())
	}
	s.Cfg.TopK = 0 // rank everything for the statistical check
	got := s.QueryTags(nil, []string{"nice staff"})
	if len(got) < 6 {
		t.Fatalf("too few results: %d", len(got))
	}
	// The ranking must track latent staff quality statistically: the top
	// half should average higher staff quality than the bottom half.
	// (Eq. 1's log(|Re|+1) popularity weight makes single-pair comparisons
	// unreliable by design.)
	staffFeat := 4 // "nice staff" in the restaurants domain
	half := len(got) / 2
	var topQ, botQ float64
	for i, sc := range got {
		q := s.World.Entity(sc.EntityID).Quality[staffFeat]
		if i < half {
			topQ += q
		} else {
			botQ += q
		}
	}
	topQ /= float64(half)
	botQ /= float64(len(got) - half)
	if topQ <= botQ {
		t.Fatalf("ranking contradicts latent quality: top half %.2f vs bottom half %.2f", topQ, botQ)
	}
}

func TestUnknownTagGoesToHistoryAndNextRound(t *testing.T) {
	s := goldService(t)
	s.IndexTags([]string{"good food", "nice staff"})
	if s.Index.Has("romantic ambiance") {
		t.Fatal("setup: tag should be unknown")
	}
	got := s.QueryTags(nil, []string{"romantic ambiance"})
	// Real-time answer from similar tags may or may not be non-empty, but
	// the tag must be queued (§3.1's adaptive loop).
	if s.History.Len() != 1 {
		t.Fatalf("history length %d", s.History.Len())
	}
	indexed := s.IndexPending()
	if len(indexed) != 1 || indexed[0] != "romantic ambiance" {
		t.Fatalf("IndexPending: %v", indexed)
	}
	if !s.Index.Has("romantic ambiance") {
		t.Fatal("pending tag not indexed")
	}
	after := s.QueryTags(nil, []string{"romantic ambiance"})
	if len(after) == 0 {
		t.Fatal("indexed tag must now answer directly")
	}
	_ = got
}

func TestKnownTagNotQueued(t *testing.T) {
	s := goldService(t)
	s.IndexTags([]string{"good food"})
	s.QueryTags(nil, []string{"good food"})
	if s.History.Len() != 0 {
		t.Fatal("known tags must not queue")
	}
}

func TestQueryEndToEnd(t *testing.T) {
	s := goldService(t)
	s.IndexTags(s.CanonicalTags())
	resp := s.Query("I want an Italian restaurant in Montreal with delicious food and nice staff")
	if resp.Intent.Name != "searchRestaurant" {
		t.Fatalf("intent: %s", resp.Intent.Name)
	}
	if resp.Intent.Slots["cuisine"] != "italian" {
		t.Fatalf("slots: %v", resp.Intent.Slots)
	}
	if len(resp.Tags) < 2 {
		t.Fatalf("extracted tags: %v", resp.Tags)
	}
	foundFood, foundStaff := false, false
	for _, tag := range resp.Tags {
		if tag == "delicious food" {
			foundFood = true
		}
		if tag == "nice staff" {
			foundStaff = true
		}
	}
	if !foundFood || !foundStaff {
		t.Fatalf("expected both subjective tags, got %v", resp.Tags)
	}
	if len(resp.Results) == 0 {
		t.Fatal("no results")
	}
	if len(resp.Results) > s.Cfg.TopK {
		t.Fatalf("TopK not applied: %d", len(resp.Results))
	}
}

func TestExtractorPipeline(t *testing.T) {
	// A handcrafted sentence through a gold tagger + tree pairer.
	tokens := []string{"the", "food", "is", "delicious", "and", "the", "staff", "is", "friendly", "."}
	labels := []tokenize.Label{
		tokenize.O, tokenize.BAS, tokenize.O, tokenize.BOP, tokenize.O,
		tokenize.O, tokenize.BAS, tokenize.O, tokenize.BOP, tokenize.O,
	}
	gt := NewGoldTagger([]corpus.Sentence{{Tokens: tokens, Labels: labels}})
	ex := &Extractor{
		Tagger: gt,
		Pairer: pairing.Tree{Lex: parse.DomainLexicon(lexicon.Restaurants()), FromOpinions: true},
	}
	tags := ex.ExtractFromTokens(tokens)
	if len(tags) != 2 {
		t.Fatalf("tags: %v", tags)
	}
	want := map[string]bool{"delicious food": true, "friendly staff": true}
	for _, tag := range tags {
		if !want[tag] {
			t.Fatalf("unexpected tag %q in %v", tag, tags)
		}
	}
}

func TestExtractTagsMultiSentence(t *testing.T) {
	s1 := []string{"the", "food", "is", "delicious", "."}
	l1 := []tokenize.Label{tokenize.O, tokenize.BAS, tokenize.O, tokenize.BOP, tokenize.O}
	gt := NewGoldTagger([]corpus.Sentence{{Tokens: s1, Labels: l1}})
	ex := &Extractor{
		Tagger: gt,
		Pairer: pairing.WordDistance{},
	}
	tags := ex.ExtractTags("The food is delicious. The food is delicious.")
	if len(tags) != 1 || tags[0] != "delicious food" {
		t.Fatalf("dedup across sentences failed: %v", tags)
	}
}

func TestGoldTaggerFallback(t *testing.T) {
	gt := NewGoldTagger(nil)
	labels := gt.Predict([]string{"anything", "here"})
	for _, l := range labels {
		if l != tokenize.O {
			t.Fatal("unknown sentences must be all-O")
		}
	}
}

func TestClassifierPairerThreshold(t *testing.T) {
	// A degenerate always-0.5 classifier with threshold 0.9 yields no pairs.
	// (Exercises the adapter without training a model.)
	p := ClassifierPairer{C: nil, Threshold: 0.9}
	_ = p // constructing with nil C is fine as long as Pairs isn't called
}

func TestCanonicalTags(t *testing.T) {
	s := goldService(t)
	tags := s.CanonicalTags()
	if len(tags) != 18 {
		t.Fatalf("canonical tags: %d", len(tags))
	}
	for i := 1; i < len(tags); i++ {
		if tags[i] < tags[i-1] {
			t.Fatal("tags must be sorted")
		}
	}
}

func TestNeuralVsGoldSourceAgreement(t *testing.T) {
	// With a gold tagger inside the "neural" source, both sources must
	// produce overlapping tag multisets for the same review.
	w := yelp.Generate(yelp.FastConfig())
	var sentences []corpus.Sentence
	for _, e := range w.Entities {
		for _, r := range e.Reviews {
			sentences = append(sentences, r.Sentences...)
		}
	}
	ex := &Extractor{
		Tagger: NewGoldTagger(sentences),
		Pairer: pairing.Tree{Lex: parse.DomainLexicon(w.Domain), FromOpinions: true},
	}
	neural := NeuralSource{E: ex}
	gold := GoldSource{}
	r := w.Entities[0].Reviews[0]
	nt, gt := neural.Tags(r), gold.Tags(r)
	if len(gt) == 0 {
		t.Skip("review without mentions")
	}
	goldSet := map[string]bool{}
	for _, tag := range gt {
		goldSet[tag] = true
	}
	overlap := 0
	for _, tag := range nt {
		if goldSet[tag] {
			overlap++
		}
	}
	if overlap == 0 {
		t.Fatalf("gold-driven pipeline recovered none of the gold tags: %v vs %v", nt, gt)
	}
}
