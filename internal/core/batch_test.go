package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"saccs/internal/extcache"
	"saccs/internal/pairing"
	"saccs/internal/tokenize"
)

// stubBatchTagger is a deterministic BatchTagger with test hooks: it labels
// the first two tokens of a sentence opinion/aspect (so every distinct
// sentence yields the distinct tag "tok0 tok1"), counts serial and batched
// decodes, and can block inside PredictBatch or run a hook there (to model a
// retrain overlapping the shared decode).
type stubBatchTagger struct {
	gen     atomic.Uint64
	serial  atomic.Int64
	batches struct {
		sync.Mutex
		sizes []int
	}
	block    chan struct{} // when non-nil, PredictBatch waits for close
	onDecode func()        // when non-nil, runs inside PredictBatch
}

func (s *stubBatchTagger) label(tokens []string) []tokenize.Label {
	out := make([]tokenize.Label, len(tokens))
	if len(tokens) >= 2 {
		out[0], out[1] = tokenize.BOP, tokenize.BAS
	}
	return out
}

func (s *stubBatchTagger) Predict(tokens []string) []tokenize.Label {
	s.serial.Add(1)
	return s.label(tokens)
}

func (s *stubBatchTagger) PredictBatch(seqs [][]string) [][]tokenize.Label {
	if s.block != nil {
		<-s.block
	}
	if s.onDecode != nil {
		s.onDecode()
	}
	s.batches.Lock()
	s.batches.sizes = append(s.batches.sizes, len(seqs))
	s.batches.Unlock()
	out := make([][]tokenize.Label, len(seqs))
	for i, seq := range seqs {
		out[i] = s.label(seq)
	}
	return out
}

func (s *stubBatchTagger) Generation() uint64 { return s.gen.Load() }

func (s *stubBatchTagger) batchSizes() []int {
	s.batches.Lock()
	defer s.batches.Unlock()
	return append([]int(nil), s.batches.sizes...)
}

// allPairs pairs every aspect with every opinion — enough structure for the
// stub labels to round-trip into "opinion aspect" tags.
type allPairs struct{}

func (allPairs) Pairs(tokens []string, aspects, opinions []tokenize.Span) []pairing.Pair {
	var out []pairing.Pair
	for _, a := range aspects {
		for _, o := range opinions {
			out = append(out, pairing.Pair{Aspect: a, Opinion: o})
		}
	}
	return out
}

// batchExtractor returns an extractor wired for cross-request batching with
// the stub tagger. The solo-bypass hysteresis is pre-armed (lastMulti set to
// now) so the first caller batches instead of decoding serially — tests
// control concurrency explicitly.
func batchExtractor(window time.Duration, maxSize int, st *stubBatchTagger) *Extractor {
	e := &Extractor{
		Tagger:       st,
		Pairer:       allPairs{},
		Cache:        extcache.New(64),
		BatchWindow:  window,
		BatchMaxSize: maxSize,
	}
	e.lastMulti.Store(time.Now().UnixNano())
	return e
}

// TestBatchedExtractMatchesSerial runs many concurrent extractions through
// the gather window and checks every result equals the serial path's.
func TestBatchedExtractMatchesSerial(t *testing.T) {
	st := &stubBatchTagger{}
	e := batchExtractor(2*time.Millisecond, 8, st)
	serial := &Extractor{Tagger: &stubBatchTagger{}, Pairer: allPairs{}}

	texts := make([]string, 16)
	for i := range texts {
		texts[i] = fmt.Sprintf("lovely meal%d and shiny table%d", i, i)
	}
	got := make([][]string, len(texts))
	var wg sync.WaitGroup
	for i, txt := range texts {
		wg.Add(1)
		go func(i int, txt string) {
			defer wg.Done()
			tags, err := e.ExtractTagsCtx(context.Background(), nil, txt)
			if err != nil {
				t.Errorf("extract %d: %v", i, err)
			}
			got[i] = tags
		}(i, txt)
	}
	wg.Wait()
	for i, txt := range texts {
		want, _ := serial.ExtractTagsCtx(context.Background(), nil, txt)
		if fmt.Sprint(got[i]) != fmt.Sprint(want) {
			t.Fatalf("text %d: batched %v, serial %v", i, got[i], want)
		}
	}
	if sizes := st.batchSizes(); len(sizes) == 0 {
		t.Fatal("no batched decode ran; every request went serial")
	}
}

// TestBatchCancelledWaiterDoesNotPoisonBatch pins the cancellation contract:
// a waiter whose context dies mid-batch gets ctx's error immediately and
// leaves no cache entry, while the batch completes for the other members.
func TestBatchCancelledWaiterDoesNotPoisonBatch(t *testing.T) {
	st := &stubBatchTagger{block: make(chan struct{})}
	e := batchExtractor(time.Second, 4, st)

	leaderDone := make(chan []string, 1)
	go func() {
		tags, err := e.ExtractTagsCtx(context.Background(), nil, "delicious food here")
		if err != nil {
			t.Errorf("leader: %v", err)
		}
		leaderDone <- tags
	}()
	// Wait for the leader to open the batch.
	waitFor(t, func() bool { return e.inflight.Load() == 1 })

	ctx, cancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, err := e.ExtractTagsCtx(ctx, nil, "nice staff there")
		waiterDone <- err
	}()
	// The waiter joins, seals the batch (2 sequences = 2 in flight), and the
	// leader enters the blocked PredictBatch. Cancel the waiter while the
	// shared decode is in progress.
	waitFor(t, func() bool { return e.inflight.Load() == 2 })
	time.Sleep(time.Millisecond)
	cancel()
	select {
	case err := <-waiterDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled waiter returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiter did not return while the batch was blocked")
	}

	close(st.block)
	select {
	case tags := <-leaderDone:
		if fmt.Sprint(tags) != "[delicious food]" {
			t.Fatalf("leader tags = %v, want [delicious food]", tags)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("leader did not complete after the decode unblocked")
	}

	// The leader's sentence was cached; the cancelled waiter's was not (its
	// pipeline tail never ran — zero side effects).
	if _, ok := e.Cache.Get(0, "delicious\x1ffood\x1fhere"); !ok {
		t.Fatal("leader's sentence missing from cache")
	}
	if _, ok := e.Cache.Get(0, "nice\x1fstaff\x1fthere"); ok {
		t.Fatal("cancelled waiter's sentence was cached")
	}
	if sizes := st.batchSizes(); len(sizes) != 1 || sizes[0] != 2 {
		t.Fatalf("batch sizes = %v, want [2] (batch completed with both members)", sizes)
	}
}

// TestBatchGenSwapDiscardsFills pins the retrain-overlap contract: a
// generation bump during the shared decode (a Train starting mid-batch)
// discards every cache fill from that batch, exactly as the serial path
// discards a decode a Train overlapped.
func TestBatchGenSwapDiscardsFills(t *testing.T) {
	st := &stubBatchTagger{}
	st.onDecode = func() { st.gen.Add(1) }
	e := batchExtractor(time.Millisecond, 4, st)

	tags, err := e.ExtractTagsCtx(context.Background(), nil, "delicious food here")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(tags) != "[delicious food]" {
		t.Fatalf("tags = %v despite gen bump (results must still be served)", tags)
	}
	if e.Cache.Len() != 0 {
		t.Fatalf("cache has %d entries; a mid-batch generation bump must discard fills", e.Cache.Len())
	}

	// With a stable generation the same extraction is cached.
	st.onDecode = nil
	if _, err := e.ExtractTagsCtx(context.Background(), nil, "delicious food here"); err != nil {
		t.Fatal(err)
	}
	if e.Cache.Len() != 1 {
		t.Fatalf("cache has %d entries after stable-generation decode, want 1", e.Cache.Len())
	}
}

// TestBatchDedupSharesSlot checks duplicate sentences occupy one batch slot
// and still answer every waiter.
func TestBatchDedupSharesSlot(t *testing.T) {
	st := &stubBatchTagger{}
	e := batchExtractor(5*time.Millisecond, 8, st)
	e.Cache = nil // force every request through the batcher

	const callers = 6
	var wg sync.WaitGroup
	results := make([][]string, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _ = e.ExtractTagsCtx(context.Background(), nil, "delicious food here")
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if fmt.Sprint(r) != "[delicious food]" {
			t.Fatalf("caller %d got %v", i, r)
		}
	}
	for _, n := range st.batchSizes() {
		if n != 1 {
			t.Fatalf("duplicate sentences occupied %d slots, want 1", n)
		}
	}
}

// TestBatchSoloBypass checks a lone request with no recent concurrency skips
// the gather window and decodes serially.
func TestBatchSoloBypass(t *testing.T) {
	st := &stubBatchTagger{}
	e := &Extractor{
		Tagger:       st,
		Pairer:       allPairs{},
		BatchWindow:  time.Hour, // a non-bypassed request would hang here
		BatchMaxSize: 8,
	}
	done := make(chan struct{})
	go func() {
		if _, err := e.ExtractTagsCtx(context.Background(), nil, "delicious food here"); err != nil {
			t.Errorf("solo extract: %v", err)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("solo request waited on the gather window")
	}
	if st.serial.Load() != 1 || len(st.batchSizes()) != 0 {
		t.Fatalf("solo request: serial=%d batches=%v, want one serial decode",
			st.serial.Load(), st.batchSizes())
	}
}

// TestBatchDisabledByZeroConfig checks the house convention: an explicit
// zero in either knob disables batching entirely.
func TestBatchDisabledByZeroConfig(t *testing.T) {
	for _, cfg := range []struct{ window, max int }{{0, 8}, {250, 0}, {250, 1}} {
		st := &stubBatchTagger{}
		e := &Extractor{
			Tagger:       st,
			Pairer:       allPairs{},
			BatchWindow:  time.Duration(cfg.window) * time.Microsecond,
			BatchMaxSize: cfg.max,
		}
		e.lastMulti.Store(time.Now().UnixNano()) // would batch if enabled
		if _, err := e.ExtractTagsCtx(context.Background(), nil, "delicious food here"); err != nil {
			t.Fatal(err)
		}
		if st.serial.Load() != 1 || len(st.batchSizes()) != 0 {
			t.Fatalf("window=%dµs max=%d: serial=%d batches=%v, want serial only",
				cfg.window, cfg.max, st.serial.Load(), st.batchSizes())
		}
	}
}

// waitFor polls cond until it holds or the test deadline budget is spent.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(100 * time.Microsecond)
	}
}
