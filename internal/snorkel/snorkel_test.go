package snorkel

import (
	"math/rand"
	"testing"
)

func TestApplyAll(t *testing.T) {
	lfs := []LF[int]{
		{Name: "even", Apply: func(x int) Vote {
			if x%2 == 0 {
				return Positive
			}
			return Negative
		}},
		{Name: "big", Apply: func(x int) Vote {
			if x > 10 {
				return Positive
			}
			return Abstain
		}},
	}
	votes := ApplyAll(lfs, []int{4, 7, 12})
	want := [][]Vote{{Positive, Abstain}, {Negative, Abstain}, {Positive, Positive}}
	for i := range want {
		for j := range want[i] {
			if votes[i][j] != want[i][j] {
				t.Fatalf("votes[%d][%d] = %v", i, j, votes[i][j])
			}
		}
	}
}

func TestMajorityPosterior(t *testing.T) {
	m := Majority{}
	if p := m.Posterior([]Vote{Positive, Positive, Negative}); p <= 0.5 {
		t.Fatalf("2/3 positive must exceed 0.5: %v", p)
	}
	if p := m.Posterior([]Vote{Negative, Negative, Positive}); p >= 0.5 {
		t.Fatalf("1/3 positive must be below 0.5: %v", p)
	}
	if p := m.Posterior([]Vote{Positive, Negative}); p >= 0.5 {
		t.Fatalf("tie must break negative: %v", p)
	}
	if p := m.Posterior([]Vote{Abstain, Abstain}); p >= 0.5 {
		t.Fatalf("all-abstain must lean negative: %v", p)
	}
	if !Predict(m, []Vote{Positive, Positive, Negative}) {
		t.Fatal("Predict must threshold at 0.5")
	}
	// Abstains are excluded from the denominator.
	if p := m.Posterior([]Vote{Positive, Abstain, Abstain}); p != 1 {
		t.Fatalf("single positive with abstains: %v", p)
	}
}

// synthesizeVotes builds a vote matrix from labeled data with known per-LF
// accuracies, for testing the generative model's recovery.
func synthesizeVotes(rng *rand.Rand, n int, accs []float64, prior float64) (votes [][]Vote, gold []bool) {
	votes = make([][]Vote, n)
	gold = make([]bool, n)
	for i := 0; i < n; i++ {
		y := rng.Float64() < prior
		gold[i] = y
		row := make([]Vote, len(accs))
		for j, a := range accs {
			correct := rng.Float64() < a
			val := y == correct // y XOR wrong
			if val {
				row[j] = Positive
			} else {
				row[j] = Negative
			}
		}
		votes[i] = row
	}
	return votes, gold
}

func TestGenerativeRecoversAccuracies(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	trueAccs := []float64{0.9, 0.85, 0.7, 0.6}
	votes, _ := synthesizeVotes(rng, 2000, trueAccs, 0.4)
	g, err := FitGenerative(votes, 30)
	if err != nil {
		t.Fatal(err)
	}
	// EM can converge to the flipped labeling; our asymmetric init plus
	// majority-correct LFs should keep it aligned.
	for j, want := range trueAccs {
		if d := g.Acc(j) - want; d > 0.08 || d < -0.08 {
			t.Fatalf("acc[%d] = %v, want ≈ %v (sens %v spec %v)", j, g.Acc(j), want, g.Sens, g.Spec)
		}
	}
	if d := g.Prior - 0.4; d > 0.08 || d < -0.08 {
		t.Fatalf("prior = %v, want ≈ 0.4", g.Prior)
	}
}

func TestGenerativeBeatsWorstLF(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	trueAccs := []float64{0.9, 0.8, 0.65, 0.55}
	votes, gold := synthesizeVotes(rng, 1500, trueAccs, 0.5)
	g, err := FitGenerative(votes, 30)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	worstLFCorrect := 0
	for i, row := range votes {
		if Predict(g, row) == gold[i] {
			correct++
		}
		if (row[3] == Positive) == gold[i] {
			worstLFCorrect++
		}
	}
	if correct <= worstLFCorrect {
		t.Fatalf("generative model (%d) must beat the weakest LF (%d)", correct, worstLFCorrect)
	}
	if float64(correct)/float64(len(votes)) < 0.85 {
		t.Fatalf("generative accuracy too low: %d/%d", correct, len(votes))
	}
}

func TestGenerativeHandlesAbstains(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	votes, _ := synthesizeVotes(rng, 500, []float64{0.9, 0.8}, 0.5)
	// Make the second LF abstain half the time.
	for _, row := range votes {
		if rng.Intn(2) == 0 {
			row[1] = Abstain
		}
	}
	g, err := FitGenerative(votes, 20)
	if err != nil {
		t.Fatal(err)
	}
	p := g.Posterior([]Vote{Abstain, Abstain})
	if p < 0.3 || p > 0.7 {
		t.Fatalf("all-abstain posterior should be near the prior: %v", p)
	}
}

func TestFitGenerativeErrors(t *testing.T) {
	if _, err := FitGenerative(nil, 5); err == nil {
		t.Fatal("empty matrix must error")
	}
	if _, err := FitGenerative([][]Vote{{Positive}, {Positive, Negative}}, 5); err == nil {
		t.Fatal("ragged matrix must error")
	}
}

func TestGenerativePosteriorMonotonicInVotes(t *testing.T) {
	g := &Generative{Sens: []float64{0.8, 0.8, 0.8}, Spec: []float64{0.8, 0.8, 0.8}, Prior: 0.5}
	p0 := g.Posterior([]Vote{Negative, Negative, Negative})
	p1 := g.Posterior([]Vote{Positive, Negative, Negative})
	p2 := g.Posterior([]Vote{Positive, Positive, Negative})
	p3 := g.Posterior([]Vote{Positive, Positive, Positive})
	if !(p0 < p1 && p1 < p2 && p2 < p3) {
		t.Fatalf("posterior must increase with positive votes: %v %v %v %v", p0, p1, p2, p3)
	}
}
