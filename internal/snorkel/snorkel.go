// Package snorkel implements the data-programming pipeline of §5.2 (Fig. 6),
// after Ratner et al. [48, 49]: weak-supervision labeling functions vote on
// unlabeled examples; a label model — either a simple majority vote or a
// probabilistic generative model fit by EM over labeling-function accuracies,
// without any ground truth — aggregates the votes into training labels for a
// downstream discriminative model.
package snorkel

import (
	"fmt"
	"math"
)

// Vote is one labeling function's output on one example.
type Vote int8

// Labeling functions vote Positive/Negative or abstain.
const (
	Abstain  Vote = -1
	Negative Vote = 0
	Positive Vote = 1
)

// LF is a named labeling function over examples of type T.
type LF[T any] struct {
	Name  string
	Apply func(x T) Vote
}

// ApplyAll evaluates every labeling function on every example, producing the
// vote matrix votes[i][j] (example i, function j).
func ApplyAll[T any](lfs []LF[T], data []T) [][]Vote {
	out := make([][]Vote, len(data))
	for i, x := range data {
		row := make([]Vote, len(lfs))
		for j, lf := range lfs {
			row[j] = lf.Apply(x)
		}
		out[i] = row
	}
	return out
}

// LabelModel converts one example's votes into a probabilistic label.
type LabelModel interface {
	// Posterior returns P(y = 1 | votes).
	Posterior(votes []Vote) float64
}

// Predict thresholds a model's posterior at 1/2.
func Predict(m LabelModel, votes []Vote) bool { return m.Posterior(votes) > 0.5 }

// Majority is the simple aggregation of §5.2: each labeling function is an
// independent voter; the most agreed-upon label wins, ties break Negative
// (the conservative choice for extraction).
type Majority struct{}

// Posterior returns the fraction of positive votes among non-abstains,
// or 0.5-biased-down on an all-abstain row.
func (Majority) Posterior(votes []Vote) float64 {
	pos, total := 0, 0
	for _, v := range votes {
		switch v {
		case Positive:
			pos++
			total++
		case Negative:
			total++
		}
	}
	if total == 0 {
		return 0.49 // no signal: lean negative
	}
	p := float64(pos) / float64(total)
	if p == 0.5 {
		return 0.49 // tie breaks negative
	}
	return p
}

// Generative is the probabilistic graphical label model, a Dawid–Skene
// mixture: each labeling function j has an unknown sensitivity Sens[j]
// (probability of voting Positive on a true positive) and specificity
// Spec[j] (probability of voting Negative on a true negative); the true
// label has prior Prior. All parameters are estimated from agreements and
// disagreements alone via EM — no ground-truth labels are used. Per-class
// parameters matter here because the pairing heuristics are asymmetric:
// a one-pair-per-aspect heuristic is very precise when it votes Positive
// but produces many false negatives on multi-opinion aspects.
type Generative struct {
	Sens  []float64
	Spec  []float64
	Prior float64
}

// Acc returns LF j's balanced accuracy (mean of sensitivity and
// specificity), a convenient scalar summary.
func (g *Generative) Acc(j int) float64 { return (g.Sens[j] + g.Spec[j]) / 2 }

// FitGenerative runs EM on the vote matrix for the given iterations.
func FitGenerative(votes [][]Vote, iters int) (*Generative, error) {
	if len(votes) == 0 {
		return nil, fmt.Errorf("snorkel: empty vote matrix")
	}
	nLF := len(votes[0])
	for i, row := range votes {
		if len(row) != nLF {
			return nil, fmt.Errorf("snorkel: ragged vote matrix at row %d", i)
		}
	}
	g := &Generative{
		Sens:  make([]float64, nLF),
		Spec:  make([]float64, nLF),
		Prior: 0.5,
	}
	for j := 0; j < nLF; j++ {
		// Better-than-chance init breaks the label-flip symmetry.
		g.Sens[j] = 0.7 + 0.01*float64(j%3)
		g.Spec[j] = 0.7 + 0.01*float64(j%3)
	}
	post := make([]float64, len(votes))
	for it := 0; it < iters; it++ {
		// E-step: posterior of y=1 per example.
		for i, row := range votes {
			post[i] = g.Posterior(row)
		}
		// M-step: update prior, sensitivities and specificities.
		var priorSum float64
		for _, p := range post {
			priorSum += p
		}
		g.Prior = clampProb(priorSum / float64(len(votes)))
		for j := 0; j < nLF; j++ {
			var posHit, posTot, negHit, negTot float64
			for i, row := range votes {
				v := row[j]
				if v == Abstain {
					continue
				}
				p := post[i]
				posTot += p
				negTot += 1 - p
				if v == Positive {
					posHit += p
				} else {
					negHit += 1 - p
				}
			}
			if posTot > 0 {
				g.Sens[j] = clampProb(posHit / posTot)
			}
			if negTot > 0 {
				g.Spec[j] = clampProb(negHit / negTot)
			}
		}
	}
	return g, nil
}

// Posterior computes P(y=1 | votes) under the conditional-independence
// model, in log space for stability.
func (g *Generative) Posterior(votes []Vote) float64 {
	logPos := math.Log(g.Prior)
	logNeg := math.Log(1 - g.Prior)
	for j, v := range votes {
		if v == Abstain || j >= len(g.Sens) {
			continue
		}
		sens := clampProb(g.Sens[j])
		spec := clampProb(g.Spec[j])
		if v == Positive {
			logPos += math.Log(sens)
			logNeg += math.Log(1 - spec)
		} else {
			logPos += math.Log(1 - sens)
			logNeg += math.Log(spec)
		}
	}
	m := math.Max(logPos, logNeg)
	pos := math.Exp(logPos - m)
	neg := math.Exp(logNeg - m)
	return pos / (pos + neg)
}

func clampProb(p float64) float64 {
	const eps = 1e-3
	return math.Min(1-eps, math.Max(eps, p))
}

// FitTied runs EM like FitGenerative but ties each labeling function's
// sensitivity and specificity to a single accuracy parameter — the
// assumption of the original Snorkel generative model [48]. With
// heterogeneous, class-asymmetric labeling functions the tied model is the
// weaker fit; the paper's observation that majority vote beats the
// probabilistic model (§6.4) holds under exactly this model.
func FitTied(votes [][]Vote, iters int) (*Generative, error) {
	g, err := FitGenerative(votes, 0) // validate + initialize
	if err != nil {
		return nil, err
	}
	post := make([]float64, len(votes))
	nLF := len(g.Sens)
	for it := 0; it < iters; it++ {
		for i, row := range votes {
			post[i] = g.Posterior(row)
		}
		var priorSum float64
		for _, p := range post {
			priorSum += p
		}
		g.Prior = clampProb(priorSum / float64(len(votes)))
		for j := 0; j < nLF; j++ {
			var correct, total float64
			for i, row := range votes {
				v := row[j]
				if v == Abstain {
					continue
				}
				p := post[i]
				if v == Positive {
					correct += p
				} else {
					correct += 1 - p
				}
				total++
			}
			if total > 0 {
				acc := clampProb(correct / total)
				g.Sens[j] = acc
				g.Spec[j] = acc
			}
		}
	}
	return g, nil
}
