package obs

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestHDRQuantileAccuracy checks the histogram's quantiles against a sorted
// reference over a log-uniform workload: every reported quantile must be
// within the advertised 1/2^hdrSubBits relative error of the exact
// ceil-rank order statistic.
func TestHDRQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := &HDR{}
	const n = 20000
	vals := make([]int64, n)
	for i := range vals {
		// Log-uniform across ~9 decades, exercising both the exact unit
		// buckets and the log-linear range.
		v := int64(1) << uint(rng.Intn(30))
		v += rng.Int63n(v)
		vals[i] = v
		h.Observe(time.Duration(v))
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })

	snap := h.Snapshot()
	if snap.Count != n {
		t.Fatalf("count: %d, want %d", snap.Count, n)
	}
	const relErr = 1.0 / hdrSubs
	for _, q := range []float64{0.01, 0.1, 0.5, 0.9, 0.99, 0.999, 1} {
		rank := int(q * n)
		if rank < 1 {
			rank = 1
		}
		exact := vals[rank-1]
		got := int64(snap.Quantile(q))
		// The bucket upper bound can only overestimate, by at most the
		// bucket width (one part in hdrSubs of the value's magnitude).
		if got < exact || float64(got-exact) > relErr*float64(got)+1 {
			t.Errorf("q=%g: got %d, exact %d (rel err %.4f > %.4f)",
				q, got, exact, float64(got-exact)/float64(got), relErr)
		}
	}
	if m := snap.Mean(); m <= 0 {
		t.Fatalf("mean: %v", m)
	}
}

func TestHDRBucketBoundsConsistent(t *testing.T) {
	// Every value must land in a bucket whose bound is >= the value, and the
	// previous bucket's bound must be < the value (tightness).
	// Values up to 2^40-1 land in tight buckets; beyond that they clamp into
	// the final overflow bucket (checked separately below).
	for _, v := range []int64{0, 1, 31, 32, 33, 63, 64, 100, 1023, 1024, 1 << 20, 1<<39 + 12345, 1<<40 - 1} {
		idx := hdrIndex(v)
		if b := hdrBound(idx); b < v {
			t.Errorf("value %d: bucket %d bound %d < value", v, idx, b)
		}
		if idx > 0 {
			if b := hdrBound(idx - 1); b >= v {
				t.Errorf("value %d: previous bucket %d bound %d >= value", v, idx-1, b)
			}
		}
	}
	// Bounds are strictly increasing across the whole range.
	for i := 1; i < hdrBuckets; i++ {
		if hdrBound(i) <= hdrBound(i-1) {
			t.Fatalf("bounds not increasing at %d: %d <= %d", i, hdrBound(i), hdrBound(i-1))
		}
	}
	// Out-of-range values clamp instead of panicking.
	if idx := hdrIndex(1 << 62); idx != hdrBuckets-1 {
		t.Fatalf("huge value bucket %d, want clamp to %d", idx, hdrBuckets-1)
	}
	if idx := hdrIndex(-5); idx != 0 {
		t.Fatalf("negative value bucket %d, want 0", idx)
	}
}

func TestHDRConcurrentObserve(t *testing.T) {
	h := &HDR{}
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration((w+1)*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	snap := h.Snapshot()
	if snap.Count != workers*per {
		t.Fatalf("count: %d, want %d", snap.Count, workers*per)
	}
	var total int64
	for _, b := range snap.Counts {
		total += b.Count
	}
	if total != workers*per {
		t.Fatalf("bucket sum: %d, want %d", total, workers*per)
	}
}

func TestHDRNilSafe(t *testing.T) {
	var h *HDR
	h.Observe(time.Second)
	h.ObserveSince(time.Now())
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil HDR not inert")
	}
	var s HDRSnapshot
	if s.Quantile(0.99) != 0 || s.Mean() != 0 {
		t.Fatal("empty snapshot not zero")
	}
}
