package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestEventRingConcurrentWraparound(t *testing.T) {
	const capacity, workers, per = 16, 8, 500
	r := NewEventRing(capacity)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.RecordEvent(Event{Kind: "query", Results: w*per + i})
			}
		}(w)
	}
	// Concurrent readers must always see a consistent ring: at most capacity
	// events, each a value some writer actually produced.
	stop := make(chan struct{})
	var readErr error
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			evs := r.Events()
			if len(evs) > capacity {
				readErr = fmt.Errorf("ring returned %d events, capacity %d", len(evs), capacity)
				return
			}
			for _, ev := range evs {
				if ev.Kind != "query" || ev.Results < 0 || ev.Results >= workers*per {
					readErr = fmt.Errorf("torn event: %+v", ev)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	rwg.Wait()
	if readErr != nil {
		t.Fatal(readErr)
	}
	evs := r.Events()
	if len(evs) != capacity {
		t.Fatalf("after %d writes the ring holds %d events, want %d", workers*per, len(evs), capacity)
	}
}

func TestEventRingOldestFirst(t *testing.T) {
	r := NewEventRing(4)
	for i := 0; i < 6; i++ {
		r.RecordEvent(Event{Results: i})
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("len %d", len(evs))
	}
	for i, want := range []int{2, 3, 4, 5} {
		if evs[i].Results != want {
			t.Fatalf("evs[%d].Results = %d, want %d", i, evs[i].Results, want)
		}
	}
}

func TestJSONLEventSink(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLEventSink(&buf)
	tr := NewTraceID()
	sink.RecordEvent(Event{Kind: "query", Trace: tr, Duration: time.Millisecond, Status: StatusOK})
	sink.RecordEvent(Event{Kind: "reindex", Status: StatusError, Error: "boom"})

	sc := bufio.NewScanner(&buf)
	var events []Event
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if len(events) != 2 {
		t.Fatalf("%d lines, want 2", len(events))
	}
	if events[0].Trace != tr || events[0].Duration != time.Millisecond {
		t.Fatalf("event 0 round trip: %+v", events[0])
	}
	if events[1].Error != "boom" {
		t.Fatalf("event 1 round trip: %+v", events[1])
	}
}

// newTestObserver builds an observer with a ring trace sink and telemetry
// configured by cfg; the caller owns Close via the returned telemetry.
func newTestObserver(cfg TelemetryConfig) (*Observer, *RingSink, *Telemetry) {
	o := NewObserver()
	ring := NewRingSink(256)
	o.SetTracer(NewTracer(ring))
	if cfg.Metrics == nil {
		cfg.Metrics = o.Metrics
	}
	tel := NewTelemetry(cfg)
	o.SetTelemetry(tel)
	return o, ring, tel
}

func TestRequestWideEventAssembly(t *testing.T) {
	o, ring, tel := newTestObserver(TelemetryConfig{HeadSampleN: 1})
	defer tel.Close()

	ctx, req := o.StartRequest(context.Background(), "query")
	tr, ok := TraceFrom(ctx)
	if !ok || !tr.Valid() || !tr.Sampled {
		t.Fatalf("request context trace: %+v, %v", tr, ok)
	}
	stage := req.Root().Child("parse")
	time.Sleep(time.Millisecond)
	stage.End()
	stage = req.Root().Child("rank")
	stage.End()
	req.Ev.Tags, req.Ev.Results, req.Ev.Generation = 2, 5, 7
	req.Finish(nil)

	evs := tel.Events()
	if len(evs) != 1 {
		t.Fatalf("%d events, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Kind != "query" || ev.Status != StatusOK || ev.Trace != tr.TraceID {
		t.Fatalf("event header: %+v", ev)
	}
	if ev.Tags != 2 || ev.Results != 5 || ev.Generation != 7 {
		t.Fatalf("caller fields lost: %+v", ev)
	}
	if ev.Duration < time.Millisecond {
		t.Fatalf("duration %v", ev.Duration)
	}
	if ev.Stage["parse"] < time.Millisecond || ev.Stage["rank"] < 0 {
		t.Fatalf("stage durations: %v", ev.Stage)
	}
	if !ev.Retained || ev.RetainReason != "head" {
		t.Fatalf("retention: %v %q", ev.Retained, ev.RetainReason)
	}
	// Head-sampled: the span tree reached the trace sink, stamped with the
	// request's trace ID.
	spans := ring.Spans()
	if len(spans) != 3 {
		t.Fatalf("%d spans flushed, want 3", len(spans))
	}
	for _, s := range spans {
		if s.Trace != tr.TraceID {
			t.Fatalf("span %s carries trace %s, want %s", s.Name, s.Trace, tr.TraceID)
		}
	}
}

func TestRequestTailSamplingDrops(t *testing.T) {
	// Head sampling every 10^9th request and a 1h slow threshold: a fast, ok
	// request must retain nothing.
	o, ring, tel := newTestObserver(TelemetryConfig{HeadSampleN: 1 << 30, SlowThreshold: time.Hour})
	defer tel.Close()

	_, req := o.StartRequest(context.Background(), "query")
	req.Root().Child("parse").End()
	req.Finish(nil)

	if evs := tel.Events(); len(evs) != 1 || evs[0].Retained {
		t.Fatalf("fast request events: %+v", evs)
	}
	if spans := ring.Spans(); len(spans) != 0 {
		t.Fatalf("fast unsampled request flushed %d spans", len(spans))
	}
	if slow := tel.SlowQueries(); len(slow) != 0 {
		t.Fatalf("fast request entered the slow log: %+v", slow)
	}

	// An errored request is always retained and slow-logged.
	_, req = o.StartRequest(context.Background(), "query")
	req.Root().Child("parse").End()
	req.Finish(errors.New("boom"))
	evs := tel.Events()
	if len(evs) != 2 || !evs[1].Retained || evs[1].RetainReason != "error" {
		t.Fatalf("errored request events: %+v", evs)
	}
	if spans := ring.Spans(); len(spans) != 2 {
		t.Fatalf("errored request flushed %d spans, want 2", len(spans))
	}
	slow := tel.SlowQueries()
	if len(slow) != 1 || slow[0].Error != "boom" {
		t.Fatalf("slow log: %+v", slow)
	}
}

func TestRequestJoinsContextTrace(t *testing.T) {
	o, _, tel := newTestObserver(TelemetryConfig{HeadSampleN: 1 << 30, SlowThreshold: time.Hour})
	defer tel.Close()

	parent, err := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	if err != nil {
		t.Fatal(err)
	}
	ctx := ContextWithTrace(context.Background(), parent)
	ctx2, req := o.StartRequest(ctx, "query")
	if got := req.Trace().TraceID; got != parent.TraceID {
		t.Fatalf("request minted trace %s instead of joining %s", got, parent.TraceID)
	}
	// The upstream sampled flag propagates: this request is head-retained
	// even though local head sampling would not have picked it.
	child, _ := TraceFrom(ctx2)
	if !child.Sampled {
		t.Fatal("upstream sampled flag dropped")
	}
	req.Finish(nil)
	evs := tel.Events()
	if len(evs) != 1 || !evs[0].Retained || evs[0].RetainReason != "head" {
		t.Fatalf("propagated-sampled request: %+v", evs)
	}
	if evs[0].Trace != parent.TraceID {
		t.Fatalf("wide event trace %s, want %s", evs[0].Trace, parent.TraceID)
	}
}

func TestRequestDegenerateWithoutTelemetry(t *testing.T) {
	o := NewObserver()
	ring := NewRingSink(16)
	o.SetTracer(NewTracer(ring))
	_, req := o.StartRequest(context.Background(), "query")
	req.Root().Child("parse").End()
	req.Finish(nil)
	req.Finish(nil) // idempotent
	// Pre-telemetry behavior: spans stream straight to the sink.
	if spans := ring.Spans(); len(spans) != 2 {
		t.Fatalf("%d spans, want 2", len(spans))
	}

	var nilObs *Observer
	_, req = nilObs.StartRequest(context.Background(), "query")
	req.Ev.Tags = 3
	req.Finish(errors.New("x")) // must not panic
	var nilReq *Request
	nilReq.Finish(nil)
	if nilReq.Root() != nil || nilReq.Trace().Valid() {
		t.Fatal("nil request not inert")
	}
}

func TestTelemetryCloseIdempotent(t *testing.T) {
	_, _, tel := newTestObserver(TelemetryConfig{RuntimeEvery: time.Millisecond})
	if !tel.Health().Ready() {
		tel.Health().MarkReady()
	}
	tel.Close()
	tel.Close()
	if tel.Health().State() != "shutdown" {
		t.Fatalf("state after close: %s", tel.Health().State())
	}
	var nilTel *Telemetry
	nilTel.Close()
	if nilTel.Events() != nil || nilTel.SlowQueries() != nil || nilTel.Health().Ready() {
		t.Fatal("nil telemetry not inert")
	}
}
