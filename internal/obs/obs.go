// Package obs is the runtime observability subsystem: hierarchical tracing
// spans with pluggable sinks (in-memory ring buffer, JSONL), a registry of
// atomic counters, gauges, and exponential-bucket latency histograms with
// Prometheus text exposition, and optional net/http serving of /metrics and
// /debug/pprof.
//
// The package is stdlib-only and designed around a nil-safe no-op fast path:
// a nil *Observer, *Tracer, *Span, or any nil instrument accepts every call
// as a cheap no-op, so instrumented code needs no conditionals beyond an
// optional `if x.obs != nil` guard where even a time.Now() would be too much.
package obs

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// Observer bundles the halves of the subsystem — a metrics registry, an
// (optionally attached) tracer, and (optionally attached) request-scoped
// telemetry — into the single handle instrumented components hold. Metrics
// is fixed at construction; the tracer and telemetry may be swapped at
// runtime (atomically, so concurrent queries may race with
// enabling/disabling either).
type Observer struct {
	Metrics *Registry
	tracer  atomic.Pointer[Tracer]
	tel     atomic.Pointer[Telemetry]
}

// NewObserver returns an observer with a fresh registry and no tracer.
func NewObserver() *Observer {
	return &Observer{Metrics: NewRegistry()}
}

// SetTelemetry attaches (or, with nil, detaches) request-scoped telemetry.
// In-flight requests keep the telemetry they started under.
func (o *Observer) SetTelemetry(t *Telemetry) {
	if o == nil {
		return
	}
	o.tel.Store(t)
}

// Telemetry returns the currently attached telemetry, possibly nil.
func (o *Observer) Telemetry() *Telemetry {
	if o == nil {
		return nil
	}
	return o.tel.Load()
}

// MarkReady flips the health state to ready; the index calls this on every
// snapshot publication, so readiness follows "a generation has been
// published". Nil-safe, no-op without telemetry.
func (o *Observer) MarkReady() {
	o.Telemetry().Health().MarkReady()
}

// Snapshot copies the registry's current state and, when telemetry is
// attached, folds in the slow-query log.
func (o *Observer) Snapshot() Snapshot {
	if o == nil {
		return (*Registry)(nil).Snapshot()
	}
	s := o.Metrics.Snapshot()
	if tel := o.Telemetry(); tel != nil {
		s.Slow = tel.SlowQueries()
	}
	return s
}

// SetTracer attaches (or, with nil, detaches) a tracer.
func (o *Observer) SetTracer(t *Tracer) {
	if o == nil {
		return
	}
	o.tracer.Store(t)
}

// Tracer returns the currently attached tracer, possibly nil.
func (o *Observer) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.tracer.Load()
}

// StartSpan opens a root span on the attached tracer (nil without one).
func (o *Observer) StartSpan(name string) *Span {
	return o.Tracer().Start(name)
}

// Counter returns the named counter from the registry (nil-safe).
func (o *Observer) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	return o.Metrics.Counter(name)
}

// Gauge returns the named gauge from the registry (nil-safe).
func (o *Observer) Gauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	return o.Metrics.Gauge(name)
}

// Histogram returns the named histogram from the registry (nil-safe).
func (o *Observer) Histogram(name string) *Histogram {
	if o == nil {
		return nil
	}
	return o.Metrics.Histogram(name)
}

// Stage times one named pipeline stage: a child span under parent (when
// tracing) plus a latency histogram "stage.<name>" (when metrics are on).
// The zero Stage is a no-op, so BeginStage/End can wrap stages
// unconditionally.
type Stage struct {
	span  *Span
	hist  *Histogram
	start time.Time
}

// BeginStage opens a stage. Either o or parent (or both) may be nil.
func BeginStage(o *Observer, parent *Span, name string) Stage {
	st := Stage{span: parent.Child(name)}
	if o != nil && o.Metrics != nil {
		st.hist = o.Metrics.Histogram("stage." + name)
	}
	if st.span != nil || st.hist != nil {
		st.start = time.Now()
	}
	return st
}

// Span exposes the stage's span so sub-stages can attach children to it.
func (st Stage) Span() *Span { return st.span }

// End closes the stage's span and records its latency.
func (st Stage) End() {
	if st.span == nil && st.hist == nil {
		return
	}
	d := time.Since(st.start)
	st.span.End()
	st.hist.Observe(d)
}

// EndErr is End with an outcome: the stage's span is annotated with the
// status derived from err (see StatusOf) before it closes. Use it on
// context-aware stages so cancelled and deadline-expired work is visible in
// traces.
func (st Stage) EndErr(err error) {
	st.span.SetStatus(err)
	st.End()
}

// Span status values attached by SetStatus under the "status" attribute.
const (
	StatusOK        = "ok"
	StatusCancelled = "cancelled"
	StatusDeadline  = "deadline"
	StatusError     = "error"
)

// StatusOf classifies an error for span annotation: nil is "ok", a context
// cancellation "cancelled", an expired deadline "deadline", anything else
// "error". Wrapped context errors (errors.Is) classify like the originals.
func StatusOf(err error) string {
	switch {
	case err == nil:
		return StatusOK
	case errors.Is(err, context.Canceled):
		return StatusCancelled
	case errors.Is(err, context.DeadlineExceeded):
		return StatusDeadline
	default:
		return StatusError
	}
}
