package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ValidatePrometheusText checks a payload against the Prometheus text
// exposition format (0.0.4): comment/TYPE syntax, metric-name and label
// grammar, parseable sample values, and the histogram/summary contracts —
// every histogram has monotonically non-decreasing buckets ending in a
// mandatory "+Inf" bucket equal to its _count, plus _sum and _count series;
// every summary has _sum and _count. It returns the first violation found,
// or nil for a conformant payload. The /metrics test feeds the full live
// payload through this, so a malformed series is a test failure rather than
// a scrape-time surprise.
func ValidatePrometheusText(r io.Reader) error {
	type hist struct {
		typ     string // "histogram" or "summary"
		buckets []promBucket
		hasSum  bool
		count   float64
		hasCnt  bool
	}
	hists := map[string]*hist{}
	types := map[string]string{}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: malformed TYPE comment %q", lineNo, line)
				}
				name, typ := fields[2], fields[3]
				if !validPromName(name) {
					return fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: invalid metric type %q", lineNo, typ)
				}
				if _, dup := types[name]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
				}
				types[name] = typ
				if typ == "histogram" || typ == "summary" {
					hists[name] = &hist{typ: typ}
				}
			}
			continue
		}

		name, labels, value, err := parsePromSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		base, suffix := name, ""
		for _, s := range [...]string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, s) {
				if _, ok := hists[strings.TrimSuffix(name, s)]; ok {
					base, suffix = strings.TrimSuffix(name, s), s
					break
				}
			}
		}
		if h, ok := hists[base]; ok {
			switch suffix {
			case "_bucket":
				if h.typ != "histogram" {
					return fmt.Errorf("line %d: _bucket series on %s %q", lineNo, h.typ, base)
				}
				le, ok := labels["le"]
				if !ok {
					return fmt.Errorf("line %d: histogram bucket without le label", lineNo)
				}
				ub, err := parsePromValue(le)
				if err != nil {
					return fmt.Errorf("line %d: bad le value %q", lineNo, le)
				}
				h.buckets = append(h.buckets, promBucket{ub: ub, count: value})
			case "_sum":
				h.hasSum = true
			case "_count":
				h.hasCnt, h.count = true, value
			case "":
				if h.typ == "summary" {
					if _, ok := labels["quantile"]; !ok {
						return fmt.Errorf("line %d: summary series without quantile label", lineNo)
					}
				} else {
					return fmt.Errorf("line %d: bare series %q on histogram", lineNo, name)
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}

	names := make([]string, 0, len(hists))
	for name := range hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := hists[name]
		if !h.hasSum {
			return fmt.Errorf("%s %q missing _sum series", h.typ, name)
		}
		if !h.hasCnt {
			return fmt.Errorf("%s %q missing _count series", h.typ, name)
		}
		if h.typ != "histogram" {
			continue
		}
		if len(h.buckets) == 0 {
			return fmt.Errorf("histogram %q has no buckets", name)
		}
		last := h.buckets[len(h.buckets)-1]
		if !math.IsInf(last.ub, 1) {
			return fmt.Errorf("histogram %q missing +Inf bucket", name)
		}
		if last.count != h.count {
			return fmt.Errorf("histogram %q: +Inf bucket %g != _count %g", name, last.count, h.count)
		}
		for i := 1; i < len(h.buckets); i++ {
			if h.buckets[i].ub <= h.buckets[i-1].ub {
				return fmt.Errorf("histogram %q: bucket bounds not increasing at le=%g", name, h.buckets[i].ub)
			}
			if h.buckets[i].count < h.buckets[i-1].count {
				return fmt.Errorf("histogram %q: bucket counts not cumulative at le=%g", name, h.buckets[i].ub)
			}
		}
	}
	return nil
}

type promBucket struct {
	ub    float64
	count float64
}

// parsePromSample parses one sample line: name{label="v",...} value [ts].
func parsePromSample(line string) (name string, labels map[string]string, value float64, err error) {
	rest := line
	i := 0
	for i < len(rest) && isPromNameChar(rest[i], i == 0) {
		i++
	}
	name = rest[:i]
	if !validPromName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name in %q", line)
	}
	rest = rest[i:]
	labels = map[string]string{}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
		}
		body := rest[1:end]
		rest = rest[end+1:]
		for _, pair := range splitPromLabels(body) {
			eq := strings.Index(pair, "=")
			if eq < 0 {
				return "", nil, 0, fmt.Errorf("malformed label %q", pair)
			}
			k, v := pair[:eq], pair[eq+1:]
			if !validPromLabelName(k) {
				return "", nil, 0, fmt.Errorf("invalid label name %q", k)
			}
			uq, uerr := strconv.Unquote(v)
			if uerr != nil {
				return "", nil, 0, fmt.Errorf("unquoted label value %q", v)
			}
			labels[k] = uq
		}
	}
	fields := strings.Fields(rest)
	if len(fields) != 1 && len(fields) != 2 {
		return "", nil, 0, fmt.Errorf("want value [timestamp] after name, got %q", rest)
	}
	value, err = parsePromValue(fields[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad sample value %q", fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", nil, 0, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return name, labels, value, nil
}

// splitPromLabels splits a label-set body on commas outside quotes.
func splitPromLabels(body string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '"':
			if i == 0 || body[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				if p := strings.TrimSpace(body[start:i]); p != "" {
					out = append(out, p)
				}
				start = i + 1
			}
		}
	}
	if p := strings.TrimSpace(body[start:]); p != "" {
		out = append(out, p)
	}
	return out
}

// parsePromValue parses a sample value, accepting the special +Inf/-Inf/NaN
// forms.
func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func validPromName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isPromNameChar(s[i], i == 0) {
			return false
		}
	}
	return true
}

func isPromNameChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

func validPromLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || (c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}
