package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestRingSinkConcurrentWraparound hammers a small ring from many goroutines
// so every Record races the wraparound path, then checks the buffer holds
// exactly its capacity of well-formed records. Run under -race this is the
// PR 1 gap the harness issue calls out.
func TestRingSinkConcurrentWraparound(t *testing.T) {
	const (
		capacity   = 64
		writers    = 8
		perWriter  = 500
		totalSpans = writers * perWriter
	)
	ring := NewRingSink(capacity)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				ring.Record(SpanRecord{
					ID:       uint64(w*perWriter + i + 1),
					Name:     "span",
					Start:    time.Unix(0, int64(i)),
					Duration: time.Duration(i),
				})
			}
		}(w)
	}
	wg.Wait()
	spans := ring.Spans()
	if len(spans) != capacity {
		t.Fatalf("after %d records ring holds %d spans, want %d", totalSpans, len(spans), capacity)
	}
	seen := make(map[uint64]bool, len(spans))
	for i, s := range spans {
		if s.ID == 0 || s.Name != "span" {
			t.Fatalf("slot %d holds a torn record: %+v", i, s)
		}
		if seen[s.ID] {
			t.Fatalf("span ID %d appears twice after wraparound", s.ID)
		}
		seen[s.ID] = true
	}
}

// TestRingSinkOldestFirstAfterWraparound pins the ordering contract with a
// deterministic sequential fill.
func TestRingSinkOldestFirstAfterWraparound(t *testing.T) {
	ring := NewRingSink(4)
	for i := 1; i <= 10; i++ {
		ring.Record(SpanRecord{ID: uint64(i), Name: "s"})
	}
	spans := ring.Spans()
	want := []uint64{7, 8, 9, 10}
	if len(spans) != len(want) {
		t.Fatalf("got %d spans, want %d", len(spans), len(want))
	}
	for i, id := range want {
		if spans[i].ID != id {
			t.Fatalf("slot %d: got ID %d, want %d (oldest first)", i, spans[i].ID, id)
		}
	}
	ring.Reset()
	if got := ring.Spans(); len(got) != 0 {
		t.Fatalf("after Reset ring still holds %d spans", len(got))
	}
	ring.Record(SpanRecord{ID: 99, Name: "s"})
	if got := ring.Spans(); len(got) != 1 || got[0].ID != 99 {
		t.Fatalf("ring unusable after Reset: %+v", got)
	}
}

// failAfterWriter fails every Write after the first n calls — the
// disk-full/closed-pipe shape a JSONL sink must absorb.
type failAfterWriter struct {
	mu    sync.Mutex
	n     int
	buf   bytes.Buffer
	calls int
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.calls++
	if w.calls > w.n {
		return 0, errors.New("writer failed")
	}
	return w.buf.Write(p)
}

// TestJSONLSinkWriterErrors checks that a failing writer never panics the
// sink or the traced operation, that records written before the failure are
// intact JSON lines, and that the sink keeps accepting records (so a tracer
// outlives a transient sink failure).
func TestJSONLSinkWriterErrors(t *testing.T) {
	w := &failAfterWriter{n: 2}
	sink := NewJSONLSink(w)
	for i := 1; i <= 5; i++ {
		sink.Record(SpanRecord{ID: uint64(i), Name: fmt.Sprintf("s%d", i)})
	}
	sc := bufio.NewScanner(bytes.NewReader(w.buf.Bytes()))
	var got []uint64
	for sc.Scan() {
		var rec SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("corrupt JSONL line %q: %v", sc.Text(), err)
		}
		got = append(got, rec.ID)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("lines before failure: got IDs %v, want [1 2]", got)
	}
}

// TestJSONLSinkConcurrentRecords checks that concurrent emission through the
// sink's internal lock produces one intact JSON line per span even though the
// underlying writer is a plain bytes.Buffer.
func TestJSONLSinkConcurrentRecords(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	const writers, perWriter = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				sink.Record(SpanRecord{ID: uint64(w*perWriter + i + 1), Name: "concurrent"})
			}
		}(w)
	}
	wg.Wait()
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	seen := make(map[uint64]bool)
	for sc.Scan() {
		var rec SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("interleaved/corrupt JSONL line %q: %v", sc.Text(), err)
		}
		if seen[rec.ID] {
			t.Fatalf("span %d written twice", rec.ID)
		}
		seen[rec.ID] = true
	}
	if len(seen) != writers*perWriter {
		t.Fatalf("got %d intact lines, want %d", len(seen), writers*perWriter)
	}
}

// TestMultiSinkConcurrentFanOut checks fan-out delivery to a ring and a JSONL
// sink under concurrent emission: both receive every record.
func TestMultiSinkConcurrentFanOut(t *testing.T) {
	ring := NewRingSink(10_000)
	w := &failAfterWriter{n: 1 << 30}
	sink := MultiSink(ring, NewJSONLSink(w))
	const writers, perWriter = 4, 100
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				sink.Record(SpanRecord{ID: uint64(g*perWriter + i + 1), Name: "fan"})
			}
		}(g)
	}
	wg.Wait()
	if got := len(ring.Spans()); got != writers*perWriter {
		t.Fatalf("ring received %d spans, want %d", got, writers*perWriter)
	}
	lines := bytes.Count(w.buf.Bytes(), []byte("\n"))
	if lines != writers*perWriter {
		t.Fatalf("jsonl received %d lines, want %d", lines, writers*perWriter)
	}
}
