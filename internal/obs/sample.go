package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Sampler makes tail-sampling retention decisions. A nil *Sampler is the
// pass-through mode (no sampling knobs configured): every request's span
// tree is retained, matching the pre-telemetry tracing behavior.
type Sampler struct {
	// HeadN retains every Nth request up-front (1 = all, 0 = none).
	HeadN int
	// Slow is the fixed slow threshold (0 = disabled).
	Slow time.Duration
	// hdr, when set, enables the adaptive rule: a request slower than the
	// rolling p99 of the query-latency HDR is slow even under the fixed
	// threshold.
	hdr *HDR
	seq atomic.Uint64
}

// samplerMinCount gates the rolling-p99 rule: with fewer observations the
// empirical p99 is noise (it equals the max of a handful of samples), so the
// adaptive rule stays off until the histogram has a real tail to compare
// against.
const samplerMinCount = 100

// SampleHead decides head sampling for a new request: true for every HeadN-th
// request. Nil or HeadN<=0 never head-samples.
func (s *Sampler) SampleHead() bool {
	if s == nil || s.HeadN <= 0 {
		return false
	}
	return s.seq.Add(1)%uint64(s.HeadN) == 0
}

// IsSlow reports whether d crosses the fixed threshold or the rolling p99 of
// the request-latency histogram. Nil is never slow.
func (s *Sampler) IsSlow(d time.Duration) bool {
	if s == nil {
		return false
	}
	if s.Slow > 0 && d >= s.Slow {
		return true
	}
	if s.hdr != nil && s.hdr.Count() >= samplerMinCount && d > s.hdr.Quantile(0.99) {
		return true
	}
	return false
}

// Decide returns the tail-sampling verdict for a finished request: whether
// its span tree is retained, and why. Precedence: error > slow > head; a
// nil sampler retains everything with reason "all".
func (s *Sampler) Decide(status string, d time.Duration, head bool) (bool, string) {
	if s == nil {
		return true, "all"
	}
	if status != StatusOK {
		return true, "error"
	}
	if s.IsSlow(d) {
		return true, "slow"
	}
	if head {
		return true, "head"
	}
	return false, ""
}

// SlowLog is a bounded worst-K log of slow or errored requests, kept as a
// min-heap on duration so the fastest of the worst is evicted first.
type SlowLog struct {
	mu   sync.Mutex
	heap []Event
	k    int
}

// NewSlowLog returns a slow log retaining the k worst requests (min 1).
func NewSlowLog(k int) *SlowLog {
	if k < 1 {
		k = 1
	}
	return &SlowLog{k: k}
}

// Insert offers one event; it is kept if the log has room or it is slower
// than the log's current fastest entry.
func (l *SlowLog) Insert(ev Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.heap) < l.k {
		l.heap = append(l.heap, ev)
		l.siftUp(len(l.heap) - 1)
		return
	}
	if ev.Duration <= l.heap[0].Duration {
		return
	}
	l.heap[0] = ev
	l.siftDown(0)
}

// Worst returns the logged events, slowest first.
func (l *SlowLog) Worst() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := append([]Event(nil), l.heap...)
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Duration > out[j].Duration })
	return out
}

func (l *SlowLog) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if l.heap[p].Duration <= l.heap[i].Duration {
			return
		}
		l.heap[p], l.heap[i] = l.heap[i], l.heap[p]
		i = p
	}
}

func (l *SlowLog) siftDown(i int) {
	n := len(l.heap)
	for {
		least := i
		if c := 2*i + 1; c < n && l.heap[c].Duration < l.heap[least].Duration {
			least = c
		}
		if c := 2*i + 2; c < n && l.heap[c].Duration < l.heap[least].Duration {
			least = c
		}
		if least == i {
			return
		}
		l.heap[i], l.heap[least] = l.heap[least], l.heap[i]
		i = least
	}
}

// SLO tracks a latency service-level objective: queries at or under Target
// are good, the rest bad, and the burn gauge scales the bad fraction by the
// error budget (1 - Objective), so burn 1.0 means the budget is being spent
// exactly as fast as the objective allows and >1 means it is being exceeded.
type SLO struct {
	Target    time.Duration
	Objective float64
	good      *Counter
	bad       *Counter
	burn      *Gauge
}

// NewSLO registers the SLO instruments in reg: slo.requests.good.total,
// slo.requests.bad.total, slo.error_budget.burn, and slo.target.seconds.
// objective defaults to 0.99 when out of (0,1).
func NewSLO(reg *Registry, target time.Duration, objective float64) *SLO {
	if objective <= 0 || objective >= 1 {
		objective = 0.99
	}
	s := &SLO{
		Target:    target,
		Objective: objective,
		good:      reg.Counter("slo.requests.good.total"),
		bad:       reg.Counter("slo.requests.bad.total"),
		burn:      reg.Gauge("slo.error_budget.burn"),
	}
	reg.Gauge("slo.target.seconds").Set(target.Seconds())
	return s
}

// Record classifies one query against the SLO (non-ok statuses other than
// client cancellation count as bad regardless of latency) and refreshes the
// burn gauge.
func (s *SLO) Record(d time.Duration, status string) {
	if s == nil {
		return
	}
	if (status == StatusOK || status == StatusCancelled) && d <= s.Target {
		s.good.Inc()
	} else {
		s.bad.Inc()
	}
	good, bad := s.good.Value(), s.bad.Value()
	if total := good + bad; total > 0 {
		badFrac := float64(bad) / float64(total)
		s.burn.Set(badFrac / (1 - s.Objective))
	}
}
