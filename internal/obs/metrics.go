package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. All methods are safe
// on a nil receiver (no-ops), so call sites need no enabled-checks.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 holding the latest value of some measurement
// (a loss, a queue depth, an index size). Nil-safe like Counter.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v as the gauge's current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add moves the gauge by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the gauge's current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram bucket layout: bucket i counts observations with
// d <= histBaseNs<<i (1µs, 2µs, 4µs, … ~33.6s); the last bucket is +Inf.
const (
	histBuckets = 27
	histBaseNs  = int64(1000) // 1µs
)

// BucketBound returns the inclusive upper bound of bucket i; the final
// bucket's bound is reported as a negative duration, meaning +Inf.
func BucketBound(i int) time.Duration {
	if i >= histBuckets-1 {
		return -1
	}
	return time.Duration(histBaseNs << uint(i))
}

// Histogram is a lock-free latency histogram with exponential (power-of-two)
// buckets from 1µs to ~33s plus an overflow bucket. Nil-safe like Counter.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	sum    atomic.Int64 // nanoseconds
	n      atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	b := 0
	for ub := histBaseNs; b < histBuckets-1 && ns > ub; ub <<= 1 {
		b++
	}
	h.counts[b].Add(1)
	h.sum.Add(ns)
	h.n.Add(1)
}

// ObserveSince records the time elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0)) }

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	s.Counts = make([]int64, histBuckets)
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Sum = time.Duration(h.sum.Load())
	s.Count = h.n.Load()
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	// Count is the number of observations; Sum their total duration.
	Count int64
	Sum   time.Duration
	// Counts holds per-bucket (non-cumulative) observation counts; bucket i's
	// upper bound is BucketBound(i).
	Counts []int64
}

// Mean returns the average observed duration.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Quantile estimates the q-quantile (0 < q <= 1) as the upper bound of the
// bucket where the cumulative count crosses q·Count. The overflow bucket
// reports the largest finite bound.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 || len(s.Counts) == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(s.Count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if cum >= target {
			if b := BucketBound(i); b >= 0 {
				return b
			}
			return BucketBound(histBuckets - 2)
		}
	}
	return BucketBound(histBuckets - 2)
}

// Registry is a named collection of counters, gauges, and histograms.
// Instruments are created on first use and live for the registry's lifetime;
// lookups are cheap, but hot paths should resolve a handle once and keep it.
// All methods are safe on a nil receiver, returning nil instruments whose
// methods are in turn no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	hdrs     map[string]*HDR
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		hdrs:     map[string]*HDR{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// HDR returns the named high-resolution latency histogram, creating it on
// first use.
func (r *Registry) HDR(name string) *HDR {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hdrs[name]
	if !ok {
		h = &HDR{}
		r.hdrs[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every instrument in a registry, plus —
// when taken through Observer.Snapshot with telemetry attached — the
// slow-query log.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]float64
	Histograms map[string]HistogramSnapshot
	// HDRs holds the high-resolution request-latency histograms
	// (request.latency.query and friends); use Quantile for p50/p99/p999.
	HDRs map[string]HDRSnapshot
	// Slow is the worst-K slow-query log, slowest first. Empty without
	// telemetry.
	Slow []Event
}

// Snapshot copies the registry's current state. Nil-safe (returns empty maps).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
		HDRs:       map[string]HDRSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	hdrs := make(map[string]*HDR, len(r.hdrs))
	for k, v := range r.hdrs {
		hdrs[k] = v
	}
	r.mu.Unlock()
	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	for k, v := range hists {
		s.Histograms[k] = v.Snapshot()
	}
	for k, v := range hdrs {
		s.HDRs[k] = v.Snapshot()
	}
	return s
}

// WriteText renders the snapshot for humans: counters and gauges one per
// line, histograms as count/mean/p50/p95/max-bucket summaries.
func (s Snapshot) WriteText(w io.Writer) {
	for _, k := range sortedKeys(s.Counters) {
		fmt.Fprintf(w, "%-40s %d\n", k, s.Counters[k])
	}
	for _, k := range sortedKeys(s.Gauges) {
		fmt.Fprintf(w, "%-40s %g\n", k, s.Gauges[k])
	}
	for _, k := range sortedKeys(s.Histograms) {
		h := s.Histograms[k]
		fmt.Fprintf(w, "%-40s n=%d mean=%s p50=%s p95=%s\n",
			k, h.Count, h.Mean().Round(time.Microsecond),
			h.Quantile(0.50), h.Quantile(0.95))
	}
	for _, k := range sortedKeys(s.HDRs) {
		h := s.HDRs[k]
		fmt.Fprintf(w, "%-40s n=%d mean=%s p50=%s p90=%s p99=%s p999=%s\n",
			k, h.Count, h.Mean().Round(time.Microsecond),
			h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99), h.Quantile(0.999))
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (0.0.4): counters and gauges verbatim, histograms with cumulative
// le-labeled buckets in seconds (always ending in the mandatory "+Inf"
// bucket equal to _count), and the high-resolution HDR latency histograms as
// summaries with p50/p90/p99/p999 quantile series. Metric names are
// sanitized ('.', '-' → '_').
func (r *Registry) WritePrometheus(w io.Writer) {
	s := r.Snapshot()
	for _, k := range sortedKeys(s.Counters) {
		name := promName(k)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, s.Counters[k])
	}
	for _, k := range sortedKeys(s.Gauges) {
		name := promName(k)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name,
			formatPromFloat(s.Gauges[k]))
	}
	for _, k := range sortedKeys(s.Histograms) {
		name := promName(k) + "_seconds"
		h := s.Histograms[k]
		fmt.Fprintf(w, "# TYPE %s histogram\n", name)
		var cum int64
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if b := BucketBound(i); b >= 0 {
				le = formatPromFloat(b.Seconds())
			}
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum)
		}
		fmt.Fprintf(w, "%s_sum %s\n", name, formatPromFloat(h.Sum.Seconds()))
		fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
	}
	for _, k := range sortedKeys(s.HDRs) {
		name := promName(k) + "_seconds"
		h := s.HDRs[k]
		fmt.Fprintf(w, "# TYPE %s summary\n", name)
		for _, q := range [...]float64{0.5, 0.9, 0.99, 0.999} {
			fmt.Fprintf(w, "%s{quantile=%q} %s\n", name,
				strconv.FormatFloat(q, 'g', -1, 64),
				formatPromFloat(h.Quantile(q).Seconds()))
		}
		fmt.Fprintf(w, "%s_sum %s\n", name,
			formatPromFloat(time.Duration(h.Sum).Seconds()))
		fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
	}
}

// formatPromFloat renders a float sample value for the text exposition
// format.
func formatPromFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promName maps a dotted instrument name onto the Prometheus charset.
func promName(s string) string {
	out := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			out[i] = c
		case c >= '0' && c <= '9':
			if i == 0 {
				out[i] = '_'
			} else {
				out[i] = c
			}
		default:
			out[i] = '_'
		}
	}
	return string(out)
}
