package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("q.total")
	c.Inc()
	c.Add(4)
	if got := r.Counter("q.total").Value(); got != 5 {
		t.Fatalf("counter: %d", got)
	}
	g := r.Gauge("loss")
	g.Set(1.5)
	g.Add(-0.5)
	if got := g.Value(); got != 1.0 {
		t.Fatalf("gauge: %g", got)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := &Histogram{}
	h.Observe(500 * time.Nanosecond) // bucket 0 (<=1µs)
	h.Observe(3 * time.Microsecond)  // bucket 2 (<=4µs)
	h.Observe(100 * time.Millisecond)
	h.Observe(2 * time.Hour) // overflow
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count: %d", s.Count)
	}
	if s.Counts[0] != 1 || s.Counts[2] != 1 || s.Counts[len(s.Counts)-1] != 1 {
		t.Fatalf("bucket placement: %v", s.Counts)
	}
	if q := s.Quantile(0.25); q != time.Microsecond {
		t.Fatalf("p25: %s", q)
	}
	if q := s.Quantile(0.5); q != 4*time.Microsecond {
		t.Fatalf("p50: %s", q)
	}
	// Overflow quantile reports the largest finite bound.
	if q := s.Quantile(1.0); q != BucketBound(histBuckets-2) {
		t.Fatalf("p100: %s", q)
	}
	if s.Mean() == 0 {
		t.Fatal("mean")
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Histogram("x").Observe(time.Second)
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	var o *Observer
	o.Counter("x").Inc()
	o.SetTracer(nil)
	sp := o.StartSpan("root")
	sp.Set("k", "v").Child("child").End()
	if sp.End() != 0 {
		t.Fatal("nil span End")
	}
	st := BeginStage(o, nil, "parse")
	st.End()
	var tr *Tracer
	if tr.Start("x") != nil {
		t.Fatal("nil tracer Start")
	}
}

func TestNoopSpanZeroAllocs(t *testing.T) {
	var o *Observer
	allocs := testing.AllocsPerRun(100, func() {
		sp := o.StartSpan("query")
		child := sp.Child("parse")
		child.Set("k", 1)
		child.End()
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocates: %v allocs/op", allocs)
	}
}

func TestSpanHierarchyAndRingSink(t *testing.T) {
	ring := NewRingSink(16)
	tr := NewTracer(ring)
	root := tr.Start("query").Set("utterance", "hi")
	c1 := root.Child("parse")
	time.Sleep(time.Millisecond)
	c1.End()
	c2 := root.Child("rank")
	c2.Child("index.resolve").Set("tag", "delicious food").End()
	c2.End()
	root.End()

	spans := ring.Spans()
	if len(spans) != 4 {
		t.Fatalf("spans: %d", len(spans))
	}
	rec, ok := LastRoot(spans)
	if !ok || rec.Name != "query" || rec.Parent != 0 {
		t.Fatalf("root: %+v ok=%v", rec, ok)
	}
	if rec.Duration < time.Millisecond {
		t.Fatalf("root duration: %s", rec.Duration)
	}
	sub := Subtree(spans, rec.ID)
	if len(sub) != 4 || sub[0].Name != "query" {
		t.Fatalf("subtree: %+v", sub)
	}
	var buf bytes.Buffer
	WriteTree(&buf, sub)
	out := buf.String()
	for _, want := range []string{"query", "parse", "rank", "index.resolve", "tag=delicious food"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tree output missing %q:\n%s", want, out)
		}
	}
	// Indented child appears after its parent.
	if strings.Index(out, "index.resolve") < strings.Index(out, "rank") {
		t.Fatalf("child ordering:\n%s", out)
	}
}

func TestRingSinkWraps(t *testing.T) {
	ring := NewRingSink(3)
	for i := 1; i <= 5; i++ {
		ring.Record(SpanRecord{ID: uint64(i), Name: fmt.Sprint(i)})
	}
	spans := ring.Spans()
	if len(spans) != 3 || spans[0].ID != 3 || spans[2].ID != 5 {
		t.Fatalf("ring contents: %+v", spans)
	}
	ring.Reset()
	if len(ring.Spans()) != 0 {
		t.Fatal("reset")
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	tr := NewTracer(MultiSink(sink, NewRingSink(4)))
	sp := tr.Start("query")
	sp.Child("parse").Set("n", 3).End()
	sp.End()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines: %d", len(lines))
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["name"] != "parse" || rec["parent"] == nil {
		t.Fatalf("jsonl record: %v", rec)
	}
}

func TestSnapshotAndPrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("query.total").Add(7)
	r.Gauge("index.tags").Set(18)
	r.Histogram("query.latency").Observe(3 * time.Millisecond)

	s := r.Snapshot()
	if s.Counters["query.total"] != 7 || s.Gauges["index.tags"] != 18 {
		t.Fatalf("snapshot: %+v", s)
	}
	if s.Histograms["query.latency"].Count != 1 {
		t.Fatalf("hist snapshot: %+v", s.Histograms)
	}

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"# TYPE query_total counter", "query_total 7",
		"# TYPE index_tags gauge", "index_tags 18",
		"# TYPE query_latency_seconds histogram",
		`query_latency_seconds_bucket{le="+Inf"} 1`,
		"query_latency_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}

	var txt bytes.Buffer
	s.WriteText(&txt)
	if !strings.Contains(txt.String(), "query.latency") {
		t.Fatalf("text output:\n%s", txt.String())
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(NewRingSink(64))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(time.Microsecond)
				sp := tr.Start("root")
				sp.Child("leaf").End()
				sp.End()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 1600 {
		t.Fatalf("counter under concurrency: %d", got)
	}
	if got := r.Histogram("h").Snapshot().Count; got != 1600 {
		t.Fatalf("histogram under concurrency: %d", got)
	}
}

func TestServeMetricsAndPprof(t *testing.T) {
	r := NewRegistry()
	r.Counter("query.total").Inc()
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}
	if body := get("/metrics"); !strings.Contains(body, "query_total 1") {
		t.Fatalf("/metrics body:\n%s", body)
	}
	if body := get("/debug/pprof/cmdline"); body == "" {
		t.Fatal("pprof cmdline empty")
	}
}
