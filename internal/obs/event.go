package obs

import (
	"context"
	"encoding/json"
	"io"
	"runtime"
	"sync"
	"time"
)

// Event is one canonical wide event: everything worth knowing about a single
// request, emitted once when the request finishes. One event per request —
// instead of correlating log lines — is what makes "which requests were slow
// and why" answerable after the fact.
type Event struct {
	Time time.Time `json:"time"`
	// Kind is the request type: "query", "extract", "reindex", or "append".
	Kind  string  `json:"kind"`
	Trace TraceID `json:"trace_id"`
	Root  SpanID  `json:"span_id"`
	// Duration is the request's end-to-end wall-clock time.
	Duration time.Duration `json:"duration_ns"`
	// Status is a StatusOf value: ok, cancelled, deadline, or error.
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
	// Stage maps pipeline stage span names to their summed durations.
	Stage map[string]time.Duration `json:"stage_ns,omitempty"`
	// Generation is the index snapshot generation the request read.
	Generation uint64 `json:"generation,omitempty"`
	// CacheHits/CacheMisses count extraction-cache outcomes within the
	// request (derived from tagger.decode spans' cached attribute).
	CacheHits   int `json:"cache_hits,omitempty"`
	CacheMisses int `json:"cache_misses,omitempty"`
	// Tags is the number of subjective tags extracted; Unknown the number of
	// unknown-tag warnings; Results the ranked result count.
	Tags    int `json:"tags,omitempty"`
	Unknown int `json:"unknown,omitempty"`
	Results int `json:"results,omitempty"`
	// UtteranceLen is the query utterance length in bytes (the text itself is
	// never recorded).
	UtteranceLen int `json:"utterance_len,omitempty"`
	// ThetaFilter/TopK record per-request option overrides, when present.
	ThetaFilter *float64 `json:"theta_filter,omitempty"`
	TopK        *int     `json:"top_k,omitempty"`
	// Retained reports whether the full span tree was kept (tail sampling);
	// RetainReason is why: "error", "slow", "head", or "all".
	Retained     bool   `json:"retained,omitempty"`
	RetainReason string `json:"retain_reason,omitempty"`
}

// EventSink receives completed wide events. Implementations must be safe for
// concurrent RecordEvent calls.
type EventSink interface {
	RecordEvent(Event)
}

// EventRing keeps the most recent wide events in a fixed-size ring buffer.
type EventRing struct {
	mu   sync.Mutex
	buf  []Event
	next int
	full bool
}

// NewEventRing returns a ring holding up to capacity events (min 1).
func NewEventRing(capacity int) *EventRing {
	if capacity < 1 {
		capacity = 1
	}
	return &EventRing{buf: make([]Event, capacity)}
}

// RecordEvent stores one event, evicting the oldest when full.
func (r *EventRing) RecordEvent(ev Event) {
	r.mu.Lock()
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Events returns the buffered events, oldest first.
func (r *EventRing) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// JSONLEventSink appends one JSON object per wide event to a writer.
type JSONLEventSink struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONLEventSink returns a sink streaming events to w as JSON lines.
func NewJSONLEventSink(w io.Writer) *JSONLEventSink {
	return &JSONLEventSink{enc: json.NewEncoder(w)}
}

// RecordEvent writes one event as a JSON line; encoding errors are dropped (a
// telemetry sink must never fail the request it describes).
func (s *JSONLEventSink) RecordEvent(ev Event) {
	s.mu.Lock()
	_ = s.enc.Encode(ev)
	s.mu.Unlock()
}

// StageNames is the wide-event stage schema: every pipeline stage span name
// that may appear as an Event.Stage key. The obs-lint test asserts the
// pipeline emits no stage outside this list, so an uninstrumented stage is a
// CI failure rather than a silent telemetry gap.
var StageNames = []string{
	"parse",
	"tagger.decode",
	"pairing.pairs",
	"objective",
	"rank",
	"index.resolve",
	"index.add_tag",
	"index.build",
	"extract",
	"history.drain",
}

// spanBuffer accumulates a request's spans until its tail-sampling fate is
// decided at Finish.
type spanBuffer struct {
	mu    sync.Mutex
	spans []SpanRecord
}

func (b *spanBuffer) Record(rec SpanRecord) {
	b.mu.Lock()
	b.spans = append(b.spans, rec)
	b.mu.Unlock()
}

func (b *spanBuffer) take() []SpanRecord {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := b.spans
	b.spans = nil
	return s
}

// TelemetryConfig configures NewTelemetry. Zero values select the documented
// defaults where one exists (ring sizes, SLO objective) and "disabled" for
// the sampling and SLO knobs.
type TelemetryConfig struct {
	// Metrics is the registry request-latency HDRs and SLO counters register
	// in. Required.
	Metrics *Registry
	// EventRingSize bounds the in-memory wide-event ring (default 256).
	EventRingSize int
	// EventSink, when set, additionally receives every wide event (e.g. a
	// JSONLEventSink).
	EventSink EventSink
	// HeadSampleN retains the full span tree of every Nth request regardless
	// of latency (1 = every request, 0 = no head sampling).
	HeadSampleN int
	// SlowThreshold marks requests at or above this duration slow: their
	// span trees are retained and they enter the slow-query log. Zero
	// disables the fixed threshold (the rolling-p99 rule still applies).
	SlowThreshold time.Duration
	// SlowLogSize bounds the worst-K slow-query log (default 64).
	SlowLogSize int
	// SLOTarget is the query latency objective; requests at or under it are
	// good, above it bad. Zero disables SLO accounting.
	SLOTarget time.Duration
	// SLOObjective is the target good-request fraction used to scale the
	// error-budget burn gauge (default 0.99).
	SLOObjective float64
	// RuntimeEvery is the period of the runtime gauge sampler (goroutines,
	// heap, GC). Zero disables periodic sampling; gauges are still refreshed
	// on every Snapshot.
	RuntimeEvery time.Duration
}

// Telemetry is the request-scoped half of the Observer: wide events, tail
// sampling, the slow-query log, SLO accounting, request-latency HDR
// histograms, readiness, and runtime gauges. Attach with
// Observer.SetTelemetry.
type Telemetry struct {
	reg     *Registry
	events  *EventRing
	sink    EventSink
	sampler *Sampler
	slow    *SlowLog
	slo     *SLO
	health  *Health

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// NewTelemetry builds a telemetry pipeline from cfg. With no sampling knobs
// set (HeadSampleN, SlowThreshold both zero) span retention is pass-through:
// every request's spans reach the attached trace sink, preserving the
// pre-telemetry tracing behavior.
func NewTelemetry(cfg TelemetryConfig) *Telemetry {
	reg := cfg.Metrics
	if reg == nil {
		reg = NewRegistry()
	}
	if cfg.EventRingSize <= 0 {
		cfg.EventRingSize = 256
	}
	if cfg.SlowLogSize <= 0 {
		cfg.SlowLogSize = 64
	}
	t := &Telemetry{
		reg:    reg,
		events: NewEventRing(cfg.EventRingSize),
		sink:   cfg.EventSink,
		slow:   NewSlowLog(cfg.SlowLogSize),
		health: NewHealth(),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	if cfg.HeadSampleN > 0 || cfg.SlowThreshold > 0 {
		t.sampler = &Sampler{
			HeadN: cfg.HeadSampleN,
			Slow:  cfg.SlowThreshold,
			hdr:   reg.HDR("request.latency.query"),
		}
	}
	if cfg.SLOTarget > 0 {
		t.slo = NewSLO(reg, cfg.SLOTarget, cfg.SLOObjective)
	}
	sampleRuntime(reg)
	if cfg.RuntimeEvery > 0 {
		go t.runtimeLoop(cfg.RuntimeEvery)
	} else {
		close(t.done)
	}
	return t
}

// Events returns the buffered wide events, oldest first.
func (t *Telemetry) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events.Events()
}

// SlowQueries returns the worst-K slow/errored requests, slowest first.
func (t *Telemetry) SlowQueries() []Event {
	if t == nil {
		return nil
	}
	return t.slow.Worst()
}

// Health returns the readiness state machine.
func (t *Telemetry) Health() *Health {
	if t == nil {
		return nil
	}
	return t.health
}

// Close marks the service shutting down (readyz turns 503) and stops the
// runtime gauge sampler. Safe to call more than once.
func (t *Telemetry) Close() {
	if t == nil {
		return
	}
	t.once.Do(func() {
		t.health.MarkShutdown()
		close(t.stop)
	})
	<-t.done
}

func (t *Telemetry) runtimeLoop(every time.Duration) {
	defer close(t.done)
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			sampleRuntime(t.reg)
		case <-t.stop:
			return
		}
	}
}

// sampleRuntime refreshes the runtime health gauges.
func sampleRuntime(reg *Registry) {
	if reg == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	reg.Gauge("runtime.goroutines").Set(float64(runtime.NumGoroutine()))
	reg.Gauge("runtime.heap.alloc.bytes").Set(float64(ms.HeapAlloc))
	reg.Gauge("runtime.heap.objects").Set(float64(ms.HeapObjects))
	reg.Gauge("runtime.gc.count").Set(float64(ms.NumGC))
	reg.Gauge("runtime.gc.pause.last.seconds").Set(time.Duration(ms.PauseNs[(ms.NumGC+255)%256]).Seconds())
}

// Request is one in-flight instrumented request. Callers fill the exported
// Ev fields as facts become known (generation, tag counts, option overrides)
// and call Finish exactly once; Finish assembles the wide event, applies tail
// sampling, and feeds the latency/SLO accounting. A degenerate Request (from
// a nil or telemetry-less Observer) accepts all of this as a no-op, so
// instrumented code needs no nil checks.
type Request struct {
	// Ev is the wide event under construction. Time, Kind, Trace, Root,
	// Duration, Status, Error, Stage, CacheHits/Misses, Retained and
	// RetainReason are filled by StartRequest/Finish; the caller sets the
	// rest.
	Ev Event

	tel   *Telemetry
	o     *Observer
	root  *Span
	buf   *spanBuffer
	trace Trace
	head  bool
	done  bool
}

// Root returns the request's root span (nil when tracing is off), for
// attaching stage children.
func (r *Request) Root() *Span {
	if r == nil {
		return nil
	}
	return r.root
}

// Trace returns the request's trace identity (zero without telemetry).
func (r *Request) Trace() Trace {
	if r == nil {
		return Trace{}
	}
	return r.trace
}

// StartRequest opens an instrumented request of the given kind. It always
// returns a usable *Request (never nil) and a context carrying the request's
// trace identity. Without telemetry it degrades to the pre-telemetry
// behavior: a root span on the attached tracer and no wide event. With
// telemetry, the request joins the trace in ctx if present (propagation) or
// mints a fresh one, and its spans are buffered until Finish decides their
// retention.
func (o *Observer) StartRequest(ctx context.Context, kind string) (context.Context, *Request) {
	tel := o.Telemetry()
	if tel == nil {
		return ctx, &Request{o: o, root: o.StartSpan(kind)}
	}
	tr, ok := TraceFrom(ctx)
	if !ok || !tr.Valid() {
		tr = NewTrace()
	}
	head := tr.Sampled
	if !head && tel.sampler.SampleHead() {
		head = true
	}
	buf := &spanBuffer{}
	root := NewTraceTracer(buf, tr.TraceID).Start(kind)
	req := &Request{
		tel:   tel,
		o:     o,
		root:  root,
		buf:   buf,
		trace: Trace{TraceID: tr.TraceID, SpanID: SpanID(root.id), Sampled: head},
		head:  head,
	}
	req.Ev.Time = root.start
	req.Ev.Kind = kind
	req.Ev.Trace = tr.TraceID
	req.Ev.Root = SpanID(root.id)
	return ContextWithTrace(ctx, req.trace), req
}

// Finish completes the request: closes the root span, assembles the wide
// event (per-stage durations and cache hit/miss aggregated from the span
// buffer), decides span-tree retention, records the event into the ring and
// sink, and feeds the request-latency HDR, SLO accounting, and slow-query
// log. Nil-safe and idempotent.
func (r *Request) Finish(err error) {
	if r == nil || r.done {
		return
	}
	r.done = true
	if r.tel == nil {
		// Degenerate request: just close the root span (pre-telemetry path).
		if err != nil {
			r.root.SetStatus(err)
		}
		r.root.End()
		return
	}
	if err != nil {
		r.root.SetStatus(err)
	}
	d := r.root.End()
	spans := r.buf.take()

	ev := &r.Ev
	ev.Duration = d
	ev.Status = StatusOf(err)
	if err != nil {
		ev.Error = err.Error()
	}
	ev.Stage = make(map[string]time.Duration, 8)
	rootID := r.root.id
	for _, s := range spans {
		if s.ID == rootID {
			continue
		}
		ev.Stage[s.Name] += s.Duration
		if s.Name == "tagger.decode" {
			hit := false
			for _, a := range s.Attrs {
				if a.Key == "cached" {
					if v, ok := a.Value.(int); ok && v == 1 {
						hit = true
					}
					break
				}
			}
			if hit {
				ev.CacheHits++
			} else {
				ev.CacheMisses++
			}
		}
	}

	retained, reason := r.tel.sampler.Decide(ev.Status, d, r.head)
	ev.Retained, ev.RetainReason = retained, reason
	if retained {
		if sink := sinkOf(r.o.Tracer()); sink != nil {
			for _, s := range spans {
				sink.Record(s)
			}
		}
	}

	r.tel.events.RecordEvent(*ev)
	if r.tel.sink != nil {
		r.tel.sink.RecordEvent(*ev)
	}
	r.tel.reg.HDR("request.latency." + ev.Kind).Observe(d)
	if ev.Kind == "query" {
		r.tel.slo.Record(d, ev.Status)
		if ev.Status != StatusOK || r.tel.sampler.IsSlow(d) {
			r.tel.slow.Insert(*ev)
		}
	} else if ev.Status != StatusOK {
		r.tel.slow.Insert(*ev)
	}
}

// sinkOf exposes a tracer's sink for span-tree flush at retention time.
func sinkOf(t *Tracer) SpanSink {
	if t == nil {
		return nil
	}
	return t.sink
}
