package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// SpanRecord is the completed form of a span, as delivered to sinks.
type SpanRecord struct {
	// Trace identifies the request the span belongs to; zero when the span
	// was produced by a tracer with no trace identity (NewTracer).
	Trace TraceID `json:"trace_id,omitempty"`
	// ID is process-unique; Parent is 0 for root spans.
	ID     uint64    `json:"id"`
	Parent uint64    `json:"parent,omitempty"`
	Name   string    `json:"name"`
	Start  time.Time `json:"start"`
	// Duration is the span's wall-clock length in nanoseconds.
	Duration time.Duration `json:"duration_ns"`
	Attrs    []Attr        `json:"attrs,omitempty"`
}

// SpanSink receives completed spans. Implementations must be safe for
// concurrent Record calls.
type SpanSink interface {
	Record(SpanRecord)
}

// Tracer hands out hierarchical spans and forwards completed ones to its
// sink. A nil *Tracer is the disabled fast path: Start returns a nil *Span,
// and every span method on nil is a no-op with zero allocations. Span IDs
// come from a process-global counter, so spans from many tracers (one per
// request under telemetry) never collide in a shared sink.
type Tracer struct {
	sink  SpanSink
	trace TraceID
}

// NewTracer returns a tracer writing completed spans to sink, with no trace
// identity (spans carry a zero trace ID).
func NewTracer(sink SpanSink) *Tracer {
	if sink == nil {
		return nil
	}
	return &Tracer{sink: sink}
}

// NewTraceTracer returns a tracer whose spans are all stamped with trace.
func NewTraceTracer(sink SpanSink, trace TraceID) *Tracer {
	if sink == nil {
		return nil
	}
	return &Tracer{sink: sink, trace: trace}
}

// Start opens a root span.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, id: nextSpanID(), name: name, start: time.Now()}
}

// Span is one timed, named region of work. A span and its children must be
// used from a single goroutine; sibling spans may run on different
// goroutines. All methods are nil-safe.
type Span struct {
	t      *Tracer
	id     uint64
	parent uint64
	name   string
	start  time.Time
	attrs  []Attr
}

// Child opens a sub-span.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{t: s.t, id: nextSpanID(), parent: s.id, name: name, start: time.Now()}
}

// Set attaches a key/value attribute and returns the span for chaining.
func (s *Span) Set(key string, value any) *Span {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	return s
}

// SetStatus annotates the span with a "status" attribute derived from err
// (StatusOf) and returns the span for chaining. Nil-safe.
func (s *Span) SetStatus(err error) *Span {
	if s == nil {
		return nil
	}
	return s.Set("status", StatusOf(err))
}

// End closes the span, delivers it to the sink, and returns its duration.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	s.t.sink.Record(SpanRecord{
		Trace: s.t.trace, ID: s.id, Parent: s.parent, Name: s.name,
		Start: s.start, Duration: d, Attrs: s.attrs,
	})
	return d
}

// RingSink keeps the most recent spans in a fixed-size in-memory ring buffer.
type RingSink struct {
	mu   sync.Mutex
	buf  []SpanRecord
	next int
	full bool
}

// NewRingSink returns a ring buffer holding up to capacity spans (min 1).
func NewRingSink(capacity int) *RingSink {
	if capacity < 1 {
		capacity = 1
	}
	return &RingSink{buf: make([]SpanRecord, capacity)}
}

// Record stores one span, evicting the oldest when full.
func (r *RingSink) Record(rec SpanRecord) {
	r.mu.Lock()
	r.buf[r.next] = rec
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Spans returns the buffered spans, oldest first.
func (r *RingSink) Spans() []SpanRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]SpanRecord(nil), r.buf[:r.next]...)
	}
	out := make([]SpanRecord, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// Reset discards all buffered spans.
func (r *RingSink) Reset() {
	r.mu.Lock()
	r.next, r.full = 0, false
	r.mu.Unlock()
}

// JSONLSink appends one JSON object per completed span to a writer.
type JSONLSink struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONLSink returns a sink streaming spans to w as JSON lines.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Record writes one span as a JSON line; encoding errors are dropped (a
// tracing sink must never fail the traced operation).
func (s *JSONLSink) Record(rec SpanRecord) {
	s.mu.Lock()
	_ = s.enc.Encode(rec)
	s.mu.Unlock()
}

// MultiSink fans completed spans out to several sinks.
func MultiSink(sinks ...SpanSink) SpanSink { return multiSink(sinks) }

type multiSink []SpanSink

func (m multiSink) Record(rec SpanRecord) {
	for _, s := range m {
		s.Record(rec)
	}
}

// LastRoot returns the most recently started root span (Parent == 0) in
// spans, and whether one exists.
func LastRoot(spans []SpanRecord) (SpanRecord, bool) {
	var best SpanRecord
	found := false
	for _, s := range spans {
		if s.Parent != 0 {
			continue
		}
		if !found || s.Start.After(best.Start) {
			best, found = s, true
		}
	}
	return best, found
}

// Subtree returns root's record followed by all its descendants found in
// spans, in depth-first start order.
func Subtree(spans []SpanRecord, root uint64) []SpanRecord {
	children := childIndex(spans)
	byID := make(map[uint64]SpanRecord, len(spans))
	for _, s := range spans {
		byID[s.ID] = s
	}
	var out []SpanRecord
	var walk func(id uint64)
	walk = func(id uint64) {
		if rec, ok := byID[id]; ok {
			out = append(out, rec)
		}
		for _, c := range children[id] {
			walk(c.ID)
		}
	}
	walk(root)
	return out
}

// WriteTree renders spans as indented trees (one per root), children ordered
// by start time — the :trace view of cmd/saccs-chat.
func WriteTree(w io.Writer, spans []SpanRecord) {
	children := childIndex(spans)
	have := make(map[uint64]bool, len(spans))
	for _, s := range spans {
		have[s.ID] = true
	}
	var walk func(rec SpanRecord, depth int)
	walk = func(rec SpanRecord, depth int) {
		fmt.Fprintf(w, "%*s%-*s %10s", 2*depth, "", 28-2*depth, rec.Name,
			rec.Duration.Round(time.Microsecond))
		for _, a := range rec.Attrs {
			fmt.Fprintf(w, "  %s=%v", a.Key, a.Value)
		}
		fmt.Fprintln(w)
		for _, c := range children[rec.ID] {
			walk(c, depth+1)
		}
	}
	for _, s := range spans {
		// Roots: true roots, plus spans whose parent is outside the slice.
		if s.Parent == 0 || !have[s.Parent] {
			walk(s, 0)
		}
	}
}

// childIndex groups spans by parent ID, each group sorted by start time.
func childIndex(spans []SpanRecord) map[uint64][]SpanRecord {
	children := map[uint64][]SpanRecord{}
	for _, s := range spans {
		if s.Parent != 0 {
			children[s.Parent] = append(children[s.Parent], s)
		}
	}
	for _, c := range children {
		sort.Slice(c, func(i, j int) bool { return c[i].Start.Before(c[j].Start) })
	}
	return children
}
