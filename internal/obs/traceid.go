package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"strconv"
	"sync/atomic"
	"time"
)

// TraceID is a 128-bit process-unique request identity, rendered as 32
// lowercase hex digits — the W3C trace-context trace-id. The zero value is
// invalid (per the W3C spec, an all-zero trace-id must be rejected).
type TraceID struct {
	Hi, Lo uint64
}

// IsZero reports whether the trace ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t.Hi == 0 && t.Lo == 0 }

// String renders the ID as 32 lowercase hex digits.
func (t TraceID) String() string {
	return fmt.Sprintf("%016x%016x", t.Hi, t.Lo)
}

// MarshalText renders the ID as hex, so JSON wide events and JSONL span
// records carry "4bf92f3577b34da6a3ce929d0e0e4736"-style strings.
func (t TraceID) MarshalText() ([]byte, error) { return []byte(t.String()), nil }

// UnmarshalText parses the 32-hex-digit form written by MarshalText. Unlike
// ParseTraceparent it accepts the all-zero form (and ""), so span records
// from tracers without a trace identity round-trip through JSON.
func (t *TraceID) UnmarshalText(b []byte) error {
	if len(b) == 0 {
		*t = TraceID{}
		return nil
	}
	s := string(b)
	if len(s) != 32 {
		return fmt.Errorf("obs: trace ID %q is not 32 hex digits", s)
	}
	hi, err1 := parseHexField(s[:16])
	lo, err2 := parseHexField(s[16:])
	if err1 != nil || err2 != nil {
		return fmt.Errorf("obs: trace ID %q is not lowercase hex", s)
	}
	*t = TraceID{Hi: hi, Lo: lo}
	return nil
}

// SpanID is a 64-bit span identity, rendered as 16 lowercase hex digits —
// the W3C trace-context parent-id. Zero is invalid.
type SpanID uint64

// String renders the ID as 16 lowercase hex digits.
func (s SpanID) String() string { return fmt.Sprintf("%016x", uint64(s)) }

// MarshalText renders the ID as hex.
func (s SpanID) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses the 16-hex-digit form written by MarshalText. Like
// TraceID.UnmarshalText it accepts the all-zero form (and ""), so span
// records without a trace identity round-trip through JSON; ParseTraceparent
// stays strict.
func (s *SpanID) UnmarshalText(b []byte) error {
	if len(b) == 0 {
		*s = 0
		return nil
	}
	str := string(b)
	if len(str) != 16 {
		return fmt.Errorf("obs: span ID %q is not 16 hex digits", str)
	}
	v, err := parseHexField(str)
	if err != nil {
		return fmt.Errorf("obs: span ID %q is not lowercase hex", str)
	}
	*s = SpanID(v)
	return nil
}

// Trace is the request-scoped trace identity carried through
// context.Context and across process boundaries: the trace ID shared by
// every span of the request, the current (root or parent) span ID, and the
// head-sampling decision, which propagates so one shard's decision to retain
// a trace is honored by every shard the request fans out to.
type Trace struct {
	TraceID TraceID
	SpanID  SpanID
	// Sampled is the W3C "sampled" flag: the request was head-sampled for
	// full span-tree retention.
	Sampled bool
}

// Valid reports whether both IDs are non-zero.
func (tr Trace) Valid() bool { return !tr.TraceID.IsZero() && tr.SpanID != 0 }

// traceIDBase seeds process-unique ID generation: a random 128-bit base read
// once at init (crypto/rand, falling back to the clock), advanced by an
// atomic counter per NewTrace, so IDs are unique within the process and
// collide across processes only with ~2^-64 probability.
var (
	traceIDHi  uint64
	traceIDLo  uint64
	traceIDCtr atomic.Uint64
	spanIDCtr  atomic.Uint64
)

func init() {
	var b [24]byte
	if _, err := rand.Read(b[:]); err != nil {
		binary.LittleEndian.PutUint64(b[0:], uint64(time.Now().UnixNano()))
		binary.LittleEndian.PutUint64(b[8:], uint64(time.Now().UnixNano())^0x9e3779b97f4a7c15)
		binary.LittleEndian.PutUint64(b[16:], uint64(time.Now().UnixNano())*0xbf58476d1ce4e5b9)
	}
	traceIDHi = binary.LittleEndian.Uint64(b[0:])
	traceIDLo = binary.LittleEndian.Uint64(b[8:])
	if traceIDHi == 0 {
		traceIDHi = 1 // the all-zero trace ID is invalid
	}
	spanIDCtr.Store(binary.LittleEndian.Uint64(b[16:]) | 1)
}

// NewTraceID returns a fresh process-unique, non-zero trace ID.
func NewTraceID() TraceID {
	return TraceID{Hi: traceIDHi, Lo: traceIDLo + traceIDCtr.Add(1)}
}

// nextSpanID returns a fresh process-unique, non-zero span ID. Span IDs are
// shared with SpanRecord.ID, so spans from different requests never collide
// in a shared sink.
func nextSpanID() uint64 {
	for {
		if id := spanIDCtr.Add(1); id != 0 {
			return id
		}
	}
}

// NewTrace returns a fresh trace identity: new trace ID, new span ID, not
// head-sampled.
func NewTrace() Trace {
	return Trace{TraceID: NewTraceID(), SpanID: SpanID(nextSpanID())}
}

// Traceparent serializes the trace in the W3C trace-context traceparent
// form: "00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>", with flag
// bit 0 carrying Sampled. The future saccs-server forwards this header so a
// scatter-gathered query keeps one trace ID across every shard.
func (tr Trace) Traceparent() string {
	flags := "00"
	if tr.Sampled {
		flags = "01"
	}
	return "00-" + tr.TraceID.String() + "-" + tr.SpanID.String() + "-" + flags
}

// ParseTraceparent parses a W3C traceparent string, rejecting malformed
// input: wrong field count or lengths, uppercase or non-hex digits, an
// unsupported version, or all-zero trace/span IDs.
func ParseTraceparent(s string) (Trace, error) {
	// Fixed layout: 2+1+32+1+16+1+2 = 55 bytes, dashes at 2, 35, 52.
	if len(s) != 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return Trace{}, fmt.Errorf("obs: malformed traceparent %q", s)
	}
	if s[:2] != "00" {
		return Trace{}, fmt.Errorf("obs: unsupported traceparent version %q", s[:2])
	}
	tid, err := parseTraceID(s[3:35])
	if err != nil {
		return Trace{}, err
	}
	sid, err := parseSpanID(s[36:52])
	if err != nil {
		return Trace{}, err
	}
	flags, err := parseHexField(s[53:55])
	if err != nil {
		return Trace{}, fmt.Errorf("obs: malformed traceparent flags %q", s[53:55])
	}
	return Trace{TraceID: tid, SpanID: sid, Sampled: flags&1 != 0}, nil
}

func parseTraceID(s string) (TraceID, error) {
	if len(s) != 32 {
		return TraceID{}, fmt.Errorf("obs: trace ID %q is not 32 hex digits", s)
	}
	hi, err1 := parseHexField(s[:16])
	lo, err2 := parseHexField(s[16:])
	if err1 != nil || err2 != nil {
		return TraceID{}, fmt.Errorf("obs: trace ID %q is not lowercase hex", s)
	}
	id := TraceID{Hi: hi, Lo: lo}
	if id.IsZero() {
		return TraceID{}, fmt.Errorf("obs: all-zero trace ID")
	}
	return id, nil
}

func parseSpanID(s string) (SpanID, error) {
	if len(s) != 16 {
		return 0, fmt.Errorf("obs: span ID %q is not 16 hex digits", s)
	}
	v, err := parseHexField(s)
	if err != nil {
		return 0, fmt.Errorf("obs: span ID %q is not lowercase hex", s)
	}
	if v == 0 {
		return 0, fmt.Errorf("obs: all-zero span ID")
	}
	return SpanID(v), nil
}

// parseHexField parses fixed-width lowercase hex (the W3C format forbids
// uppercase digits, which strconv would otherwise accept).
func parseHexField(s string) (uint64, error) {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f') {
			return 0, strconv.ErrSyntax
		}
	}
	return strconv.ParseUint(s, 16, 64)
}

// traceKey keys the Trace stored in a context.
type traceKey struct{}

// ContextWithTrace returns a context carrying tr; requests started under it
// (Observer.StartRequest) join the trace instead of minting a new ID.
func ContextWithTrace(ctx context.Context, tr Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, tr)
}

// TraceFrom returns the trace carried by ctx, if any.
func TraceFrom(ctx context.Context) (Trace, bool) {
	tr, ok := ctx.Value(traceKey{}).(Trace)
	return tr, ok
}
