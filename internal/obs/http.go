package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
)

// Health lifecycle states: a service starts not-ready, becomes ready when
// its first index snapshot generation is published, and turns permanently
// not-ready at shutdown.
const (
	healthStarting = iota
	healthReady
	healthShutdown
)

// Health is the readiness state machine behind /readyz. All methods are
// nil-safe and concurrent.
type Health struct {
	state atomic.Int32
}

// NewHealth returns a Health in the starting (not-ready) state.
func NewHealth() *Health { return &Health{} }

// MarkReady transitions starting → ready; it is a no-op after shutdown, so a
// late snapshot publication cannot resurrect a draining service.
func (h *Health) MarkReady() {
	if h != nil {
		h.state.CompareAndSwap(healthStarting, healthReady)
	}
}

// MarkShutdown makes the service permanently not-ready.
func (h *Health) MarkShutdown() {
	if h != nil {
		h.state.Store(healthShutdown)
	}
}

// Ready reports whether the service is serving.
func (h *Health) Ready() bool {
	return h != nil && h.state.Load() == healthReady
}

// State returns "starting", "ready", or "shutdown".
func (h *Health) State() string {
	if h == nil {
		return "starting"
	}
	switch h.state.Load() {
	case healthReady:
		return "ready"
	case healthShutdown:
		return "shutdown"
	default:
		return "starting"
	}
}

// MetricsHandler serves the registry in Prometheus text format.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// Mux returns an http.ServeMux exposing /metrics (Prometheus text) and the
// /debug/pprof profiling endpoints.
func Mux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(r))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ObserverMux returns the full serving mux for an observer: /metrics and
// /debug/pprof as in Mux, plus the request-telemetry endpoints — /healthz
// (liveness: 200 whenever the process can serve HTTP), /readyz (readiness:
// 200 only between the first snapshot publication and shutdown; without
// telemetry it reports ready, preserving Mux-era behavior), and /debug/slow
// (the worst-K slow-query log as JSON, slowest first).
func ObserverMux(o *Observer) *http.ServeMux {
	var reg *Registry
	if o != nil {
		reg = o.Metrics
	}
	mux := Mux(reg)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		tel := o.Telemetry()
		if tel == nil {
			_, _ = w.Write([]byte("ready\n"))
			return
		}
		h := tel.Health()
		if !h.Ready() {
			http.Error(w, h.State(), http.StatusServiceUnavailable)
			return
		}
		_, _ = w.Write([]byte("ready\n"))
	})
	mux.HandleFunc("/debug/slow", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		events := o.Telemetry().SlowQueries()
		if events == nil {
			events = []Event{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(events)
	})
	return mux
}

// Serve starts an HTTP server for Mux(r) on addr (e.g. ":9090") in a
// background goroutine and returns it; the caller owns shutdown. Server.Addr
// is set to the bound address, so addr may use port 0.
func Serve(addr string, r *Registry) (*http.Server, error) {
	return serveHandler(addr, Mux(r))
}

// ServeObserver is Serve for the full ObserverMux surface (metrics, pprof,
// health, slow-query log).
func ServeObserver(addr string, o *Observer) (*http.Server, error) {
	return serveHandler(addr, ObserverMux(o))
}

func serveHandler(addr string, h http.Handler) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Addr: ln.Addr().String(), Handler: h}
	go func() { _ = srv.Serve(ln) }()
	return srv, nil
}
