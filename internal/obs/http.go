package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// MetricsHandler serves the registry in Prometheus text format.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// Mux returns an http.ServeMux exposing /metrics (Prometheus text) and the
// /debug/pprof profiling endpoints.
func Mux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(r))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts an HTTP server for Mux(r) on addr (e.g. ":9090") in a
// background goroutine and returns it; the caller owns shutdown. Server.Addr
// is set to the bound address, so addr may use port 0.
func Serve(addr string, r *Registry) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Addr: ln.Addr().String(), Handler: Mux(r)}
	go func() { _ = srv.Serve(ln) }()
	return srv, nil
}
