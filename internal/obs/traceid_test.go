package obs

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func TestNewTraceIDsUnique(t *testing.T) {
	seen := map[TraceID]bool{}
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if id.IsZero() {
			t.Fatal("NewTraceID returned the all-zero ID")
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %s after %d draws", id, i)
		}
		seen[id] = true
	}
	spans := map[SpanID]bool{}
	for i := 0; i < 1000; i++ {
		id := SpanID(nextSpanID())
		if id == 0 {
			t.Fatal("nextSpanID returned zero")
		}
		if spans[id] {
			t.Fatalf("duplicate span ID %s after %d draws", id, i)
		}
		spans[id] = true
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	for _, sampled := range []bool{false, true} {
		tr := NewTrace()
		tr.Sampled = sampled
		s := tr.Traceparent()
		if len(s) != 55 {
			t.Fatalf("traceparent %q: length %d, want 55", s, len(s))
		}
		if s != strings.ToLower(s) {
			t.Fatalf("traceparent %q contains uppercase hex", s)
		}
		back, err := ParseTraceparent(s)
		if err != nil {
			t.Fatalf("ParseTraceparent(%q): %v", s, err)
		}
		if back != tr {
			t.Fatalf("round trip: got %+v, want %+v", back, tr)
		}
	}
}

func TestParseTraceparentMalformed(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	if tr, err := ParseTraceparent(valid); err != nil || !tr.Sampled {
		t.Fatalf("valid traceparent rejected: %+v, %v", tr, err)
	}
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"truncated", valid[:54]},
		{"too long", valid + "0"},
		{"bad version", "01" + valid[2:]},
		{"missing dash", "00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"},
		{"uppercase trace id", "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01"},
		{"non-hex trace id", "00-4bf92f3577b34da6a3ce929d0e0e473g-00f067aa0ba902b7-01"},
		{"zero trace id", "00-00000000000000000000000000000000-00f067aa0ba902b7-01"},
		{"zero span id", "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01"},
		{"uppercase span id", "00-4bf92f3577b34da6a3ce929d0e0e4736-00F067AA0BA902B7-01"},
		{"non-hex flags", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0x"},
	}
	for _, c := range cases {
		if tr, err := ParseTraceparent(c.in); err == nil {
			t.Errorf("%s: ParseTraceparent(%q) accepted as %+v", c.name, c.in, tr)
		}
	}
}

func TestTraceIDJSONRoundTrip(t *testing.T) {
	for _, id := range []TraceID{NewTraceID(), {}, {Hi: 1}} {
		b, err := json.Marshal(id)
		if err != nil {
			t.Fatalf("marshal %v: %v", id, err)
		}
		var back TraceID
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if back != id {
			t.Fatalf("round trip: got %v, want %v", back, id)
		}
	}
	var id TraceID
	if err := json.Unmarshal([]byte(`"nope"`), &id); err == nil {
		t.Fatal("short non-hex trace ID accepted")
	}
	if err := json.Unmarshal([]byte(`"4BF92F3577B34DA6A3CE929D0E0E4736"`), &id); err == nil {
		t.Fatal("uppercase trace ID accepted")
	}
}

func TestContextWithTrace(t *testing.T) {
	ctx := context.Background()
	if _, ok := TraceFrom(ctx); ok {
		t.Fatal("empty context reported a trace")
	}
	tr := NewTrace()
	got, ok := TraceFrom(ContextWithTrace(ctx, tr))
	if !ok || got != tr {
		t.Fatalf("TraceFrom: %+v, %v; want %+v", got, ok, tr)
	}
}
