package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// HDR is a log-linear high-dynamic-range latency histogram: each power-of-two
// major bucket is split into 2^hdrSubBits linear sub-buckets, bounding the
// relative quantile error at 1/2^hdrSubBits (~3%) across the whole range —
// unlike the coarse exponential Histogram, whose quantiles are only accurate
// to a full power of two. Values are nanoseconds; the range covers 1ns up to
// ~18 minutes before clamping into the final bucket. All methods are atomic,
// lock-free, and nil-safe.
type HDR struct {
	counts [hdrBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
}

const (
	// hdrSubBits is the linear precision: 2^5 = 32 sub-buckets per
	// power-of-two major bucket, so quantiles carry ≤ 1/32 relative error.
	hdrSubBits = 5
	hdrSubs    = 1 << hdrSubBits
	// hdrMajors covers values up to 2^(hdrMajors+hdrSubBits) ns ≈ 18.7 min;
	// anything larger clamps into the last bucket.
	hdrMajors  = 35
	hdrBuckets = (hdrMajors + 1) * hdrSubs
)

// hdrIndex maps a value to its bucket. Values below hdrSubs land in exact
// unit-width buckets; above, the top hdrSubBits bits after the leading one
// select the sub-bucket within the value's power-of-two major.
func hdrIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < hdrSubs {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 - hdrSubBits
	idx := (exp+1)*hdrSubs + int(v>>uint(exp)) - hdrSubs
	if idx >= hdrBuckets {
		return hdrBuckets - 1
	}
	return idx
}

// hdrBound returns the inclusive upper bound of bucket idx, the value
// reported for any quantile landing in it.
func hdrBound(idx int) int64 {
	if idx < hdrSubs {
		return int64(idx)
	}
	exp := idx/hdrSubs - 1
	sub := idx % hdrSubs
	return (int64(hdrSubs+sub+1) << uint(exp)) - 1
}

// Observe records one duration.
func (h *HDR) Observe(d time.Duration) {
	if h == nil {
		return
	}
	n := int64(d)
	h.counts[hdrIndex(n)].Add(1)
	h.count.Add(1)
	h.sum.Add(n)
}

// ObserveSince records the time elapsed since start.
func (h *HDR) ObserveSince(start time.Time) {
	if h != nil {
		h.Observe(time.Since(start))
	}
}

// Count returns the number of recorded observations.
func (h *HDR) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Quantile reads the live histogram; see HDRSnapshot.Quantile.
func (h *HDR) Quantile(q float64) time.Duration {
	return h.Snapshot().Quantile(q)
}

// Snapshot copies the histogram's current state.
func (h *HDR) Snapshot() HDRSnapshot {
	var s HDRSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.counts {
		if c := h.counts[i].Load(); c != 0 {
			s.Counts = append(s.Counts, HDRBucket{Index: i, Count: c})
		}
	}
	return s
}

// HDRBucket is one non-empty bucket of an HDR snapshot.
type HDRBucket struct {
	Index int
	Count int64
}

// HDRSnapshot is a point-in-time copy of an HDR histogram, storing only its
// non-empty buckets.
type HDRSnapshot struct {
	Count  int64
	Sum    int64
	Counts []HDRBucket
}

// Quantile returns the upper bound of the bucket holding the q-quantile
// observation (q in [0,1]), accurate to the histogram's 1/32 relative error.
// An empty snapshot returns 0.
func (s HDRSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for _, b := range s.Counts {
		seen += b.Count
		if seen >= rank {
			return time.Duration(hdrBound(b.Index))
		}
	}
	return time.Duration(hdrBound(s.Counts[len(s.Counts)-1].Index))
}

// Mean returns the arithmetic mean of the recorded durations.
func (s HDRSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.Sum / s.Count)
}
