package obs

import (
	"fmt"
	"testing"
	"time"
)

func TestSamplerDecide(t *testing.T) {
	var nilSampler *Sampler
	if ok, why := nilSampler.Decide(StatusError, time.Hour, false); !ok || why != "all" {
		t.Fatalf("nil sampler: %v %q, want pass-through", ok, why)
	}

	s := &Sampler{HeadN: 2, Slow: 100 * time.Millisecond}
	cases := []struct {
		status string
		d      time.Duration
		head   bool
		want   bool
		why    string
	}{
		{StatusError, time.Millisecond, false, true, "error"},
		{StatusDeadline, time.Millisecond, false, true, "error"},
		{StatusOK, 100 * time.Millisecond, false, true, "slow"},
		{StatusOK, time.Second, false, true, "slow"},
		{StatusOK, time.Millisecond, true, true, "head"},
		{StatusOK, time.Millisecond, false, false, ""},
		// Precedence: an errored slow head-sampled request is retained as "error".
		{StatusError, time.Second, true, true, "error"},
	}
	for _, c := range cases {
		ok, why := s.Decide(c.status, c.d, c.head)
		if ok != c.want || why != c.why {
			t.Errorf("Decide(%s, %v, head=%v) = %v %q, want %v %q",
				c.status, c.d, c.head, ok, why, c.want, c.why)
		}
	}
}

func TestSamplerHeadEveryNth(t *testing.T) {
	s := &Sampler{HeadN: 4}
	hits := 0
	for i := 0; i < 100; i++ {
		if s.SampleHead() {
			hits++
		}
	}
	if hits != 25 {
		t.Fatalf("head-sampled %d of 100 at N=4, want 25", hits)
	}
	none := &Sampler{}
	for i := 0; i < 10; i++ {
		if none.SampleHead() {
			t.Fatal("HeadN=0 sampler head-sampled a request")
		}
	}
}

func TestSamplerRollingP99(t *testing.T) {
	hdr := &HDR{}
	s := &Sampler{hdr: hdr}
	// Below samplerMinCount observations the adaptive rule must stay off.
	for i := 0; i < samplerMinCount-1; i++ {
		hdr.Observe(time.Millisecond)
	}
	if s.IsSlow(time.Hour) {
		t.Fatal("adaptive rule fired below the minimum count")
	}
	hdr.Observe(time.Millisecond)
	if !s.IsSlow(time.Hour) {
		t.Fatal("an hour-long request not slow against a 1ms p99")
	}
	if s.IsSlow(time.Microsecond) {
		t.Fatal("a 1µs request marked slow against a 1ms p99")
	}
}

func TestSlowLogKeepsWorstK(t *testing.T) {
	l := NewSlowLog(4)
	// Insert in shuffled order; only the 4 slowest must survive.
	for _, ms := range []int{5, 90, 10, 70, 30, 100, 20, 80, 40, 60} {
		l.Insert(Event{Kind: "query", Duration: time.Duration(ms) * time.Millisecond})
	}
	worst := l.Worst()
	if len(worst) != 4 {
		t.Fatalf("kept %d, want 4", len(worst))
	}
	for i, wantMs := range []int{100, 90, 80, 70} {
		if got := worst[i].Duration; got != time.Duration(wantMs)*time.Millisecond {
			t.Fatalf("worst[%d] = %v, want %dms (full log: %v)", i, got, wantMs, worst)
		}
	}
	var nilLog *SlowLog
	nilLog.Insert(Event{})
	if nilLog.Worst() != nil {
		t.Fatal("nil slow log not inert")
	}
}

func TestSLOBurn(t *testing.T) {
	reg := NewRegistry()
	slo := NewSLO(reg, 100*time.Millisecond, 0.99)
	for i := 0; i < 98; i++ {
		slo.Record(time.Millisecond, StatusOK)
	}
	slo.Record(time.Second, StatusOK)         // over target → bad
	slo.Record(time.Millisecond, StatusError) // error → bad
	// Client cancellation under target stays good: the service met its side.
	slo.Record(time.Millisecond, StatusCancelled)

	if good := reg.Counter("slo.requests.good.total").Value(); good != 99 {
		t.Fatalf("good: %d, want 99", good)
	}
	if bad := reg.Counter("slo.requests.bad.total").Value(); bad != 2 {
		t.Fatalf("bad: %d, want 2", bad)
	}
	// 2 bad / 101 total against a 1% budget → burn ≈ 1.98.
	burn := reg.Gauge("slo.error_budget.burn").Value()
	want := (2.0 / 101.0) / 0.01
	if diff := burn - want; diff < -1e-9 || diff > 1e-9 {
		t.Fatalf("burn: %g, want %g", burn, want)
	}
	if target := reg.Gauge("slo.target.seconds").Value(); target != 0.1 {
		t.Fatalf("target gauge: %g", target)
	}
	var nilSLO *SLO
	nilSLO.Record(time.Second, StatusOK) // must not panic
	_ = fmt.Sprint(nilSLO)
}
