package obs

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestHealthLifecycle(t *testing.T) {
	h := NewHealth()
	if h.Ready() || h.State() != "starting" {
		t.Fatalf("initial state: %v %s", h.Ready(), h.State())
	}
	h.MarkReady()
	if !h.Ready() || h.State() != "ready" {
		t.Fatalf("after MarkReady: %v %s", h.Ready(), h.State())
	}
	h.MarkShutdown()
	if h.Ready() || h.State() != "shutdown" {
		t.Fatalf("after MarkShutdown: %v %s", h.Ready(), h.State())
	}
	// A late snapshot publication must not resurrect a draining service.
	h.MarkReady()
	if h.Ready() {
		t.Fatal("MarkReady resurrected a shut-down service")
	}
	var nilH *Health
	nilH.MarkReady()
	nilH.MarkShutdown()
	if nilH.Ready() || nilH.State() != "starting" {
		t.Fatal("nil Health not inert")
	}
}

func TestHealthEndpointsLifecycle(t *testing.T) {
	o, _, tel := newTestObserver(TelemetryConfig{})
	srv := httptest.NewServer(ObserverMux(o))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	// Liveness is up from the first byte; readiness waits for a snapshot.
	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz while starting: %d %q", code, body)
	}
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "starting") {
		t.Fatalf("readyz while starting: %d %q", code, body)
	}

	// The first index snapshot publication flips readiness.
	o.MarkReady()
	if code, body := get("/readyz"); code != http.StatusOK || !strings.Contains(body, "ready") {
		t.Fatalf("readyz after publish: %d %q", code, body)
	}

	// Shutdown turns readiness off permanently; liveness stays up.
	tel.Close()
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "shutdown") {
		t.Fatalf("readyz after shutdown: %d %q", code, body)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz after shutdown: %d", code)
	}
}

func TestReadyzWithoutTelemetry(t *testing.T) {
	o := NewObserver()
	srv := httptest.NewServer(ObserverMux(o))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("telemetry-less readyz: %d, want 200 (compat)", resp.StatusCode)
	}
}

func TestDebugSlowEndpoint(t *testing.T) {
	o, _, tel := newTestObserver(TelemetryConfig{SlowThreshold: time.Hour})
	defer tel.Close()
	srv := httptest.NewServer(ObserverMux(o))
	defer srv.Close()

	fetch := func() []Event {
		resp, err := http.Get(srv.URL + "/debug/slow")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("content type %q", ct)
		}
		var evs []Event
		if err := json.NewDecoder(resp.Body).Decode(&evs); err != nil {
			t.Fatalf("decode /debug/slow: %v", err)
		}
		return evs
	}

	if evs := fetch(); len(evs) != 0 {
		t.Fatalf("empty slow log served %d events", len(evs))
	}

	_, req := o.StartRequest(context.Background(), "query")
	req.Finish(errors.New("boom"))
	evs := fetch()
	if len(evs) != 1 || evs[0].Error != "boom" || evs[0].Trace.IsZero() {
		t.Fatalf("slow log after error: %+v", evs)
	}
}
