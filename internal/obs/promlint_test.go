package obs

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"
)

func TestValidatePrometheusTextAccepts(t *testing.T) {
	valid := []string{
		"",
		"# HELP x y\n# TYPE q_total counter\nq_total 5\n",
		"# TYPE temp gauge\ntemp{city=\"montreal\",unit=\"c\"} -3.5\n",
		"# TYPE lat_seconds histogram\n" +
			"lat_seconds_bucket{le=\"0.1\"} 2\n" +
			"lat_seconds_bucket{le=\"1\"} 3\n" +
			"lat_seconds_bucket{le=\"+Inf\"} 4\n" +
			"lat_seconds_sum 2.5\n" +
			"lat_seconds_count 4\n",
		"# TYPE rq_seconds summary\n" +
			"rq_seconds{quantile=\"0.5\"} 0.01\n" +
			"rq_seconds{quantile=\"0.99\"} 0.2\n" +
			"rq_seconds_sum 1.5\n" +
			"rq_seconds_count 30\n",
		"untyped_metric 1 1700000000\n",
	}
	for i, in := range valid {
		if err := ValidatePrometheusText(strings.NewReader(in)); err != nil {
			t.Errorf("valid payload %d rejected: %v\n%s", i, err, in)
		}
	}
}

func TestValidatePrometheusTextRejects(t *testing.T) {
	invalid := []struct {
		name, in string
	}{
		{"garbage sample", "this is not a metric line\n"},
		{"bad value", "x_total five\n"},
		{"bad name", "# TYPE 9lives counter\n"},
		{"duplicate type", "# TYPE a counter\n# TYPE a gauge\na 1\n"},
		{"unknown type", "# TYPE a rainbow\na 1\n"},
		{"unclosed labels", "a{b=\"c 1\n"},
		{"histogram missing +Inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_sum 1\nh_count 2\n"},
		{"histogram missing count", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\n"},
		{"histogram missing sum", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_count 2\n"},
		{"histogram no buckets", "# TYPE h histogram\nh_sum 1\nh_count 2\n"},
		{"bucket without le", "# TYPE h histogram\nh_bucket 2\nh_sum 1\nh_count 2\n"},
		{"unparseable le", "# TYPE h histogram\nh_bucket{le=\"wide\"} 2\nh_sum 1\nh_count 2\n"},
		{"non-cumulative buckets", "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n"},
		{"unsorted bounds", "# TYPE h histogram\n" +
			"h_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n"},
		{"+Inf disagrees with count", "# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n"},
		{"summary series without quantile", "# TYPE s summary\ns 1\ns_sum 1\ns_count 1\n"},
		{"summary missing count", "# TYPE s summary\ns{quantile=\"0.5\"} 1\ns_sum 1\n"},
	}
	for _, c := range invalid {
		if err := ValidatePrometheusText(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: accepted\n%s", c.name, c.in)
		}
	}
}

// TestWritePrometheusConformant feeds a fully populated registry — counters,
// gauges, exponential histograms, HDR summaries, SLO instruments — through
// the exposition validator: whatever /metrics serves must parse under the
// text-format grammar with coherent histogram invariants.
func TestWritePrometheusConformant(t *testing.T) {
	o, _, tel := newTestObserver(TelemetryConfig{
		HeadSampleN:   2,
		SlowThreshold: time.Millisecond,
		SLOTarget:     50 * time.Millisecond,
	})
	defer tel.Close()

	o.Counter("query.total").Add(7)
	o.Gauge("index.generation").Set(3)
	for i := 0; i < 50; i++ {
		o.Histogram("stage.parse.latency").Observe(time.Duration(i) * time.Microsecond)
	}
	for i := 0; i < 200; i++ {
		_, req := o.StartRequest(context.Background(), "query")
		req.Finish(nil)
	}

	var buf bytes.Buffer
	o.Metrics.WritePrometheus(&buf)
	out := buf.String()
	if err := ValidatePrometheusText(strings.NewReader(out)); err != nil {
		t.Fatalf("WritePrometheus output fails the exposition grammar: %v\n%s", err, out)
	}
	for _, want := range []string{
		"request_latency_query_seconds{quantile=\"0.5\"}",
		"request_latency_query_seconds{quantile=\"0.999\"}",
		"request_latency_query_seconds_count 200",
		"slo_error_budget_burn",
		"slo_requests_good_total",
		"runtime_goroutines",
		"le=\"+Inf\"",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics payload missing %q", want)
		}
	}
}
