package sim

import (
	"fmt"
	"sync"
	"testing"
)

// countingMeasure counts Phrase invocations so tests can prove caching.
type countingMeasure struct {
	mu    sync.Mutex
	calls int
}

func (c *countingMeasure) Phrase(a, b string) float64 {
	c.mu.Lock()
	c.calls++
	c.mu.Unlock()
	if a == b {
		return 1
	}
	return 0.5
}

func TestMemoCachesPhrase(t *testing.T) {
	cm := &countingMeasure{}
	m := NewMemo(cm)
	for i := 0; i < 5; i++ {
		if got := m.Phrase("good food", "tasty food"); got != 0.5 {
			t.Fatalf("Phrase = %v", got)
		}
	}
	if cm.calls != 1 {
		t.Fatalf("underlying measure called %d times, want 1", cm.calls)
	}
	hits, misses, _ := m.Stats()
	if hits != 4 || misses != 1 {
		t.Fatalf("stats hits=%d misses=%d, want 4/1", hits, misses)
	}
}

func TestMemoBaseDegradesWithoutContradictor(t *testing.T) {
	m := NewMemo(&countingMeasure{})
	s, conflict := m.Base("good food", "bad food")
	if s != 0.5 || conflict {
		t.Fatalf("degraded Base = (%v, %v), want (0.5, false)", s, conflict)
	}
}

func TestMemoBaseDelegatesToContradictor(t *testing.T) {
	c := NewConceptual()
	m := NewMemo(c)
	wantS, wantC := c.Base("delicious food", "bland food")
	gotS, gotC := m.Base("delicious food", "bland food")
	if gotS != wantS || gotC != wantC {
		t.Fatalf("Base = (%v, %v), want (%v, %v)", gotS, gotC, wantS, wantC)
	}
	// Cached round must agree.
	gotS, gotC = m.Base("delicious food", "bland food")
	if gotS != wantS || gotC != wantC {
		t.Fatalf("cached Base = (%v, %v), want (%v, %v)", gotS, gotC, wantS, wantC)
	}
}

func TestMemoPreservesMeasureExactly(t *testing.T) {
	c := NewConceptual()
	m := NewMemo(c)
	pairs := [][2]string{
		{"good food", "tasty food"},
		{"nice staff", "rude staff"},
		{"amazing pizza", "amazing pizza"},
		{"quiet atmosphere", "good food"},
	}
	for _, p := range pairs {
		want := c.Phrase(p[0], p[1])
		if got := m.Phrase(p[0], p[1]); got != want {
			t.Fatalf("Phrase(%q, %q) = %v, want %v", p[0], p[1], got, want)
		}
		// Second call exercises the cached path.
		if got := m.Phrase(p[0], p[1]); got != want {
			t.Fatalf("cached Phrase(%q, %q) = %v, want %v", p[0], p[1], got, want)
		}
	}
}

func TestMemoEvictsWhenFull(t *testing.T) {
	m := NewMemoCapacity(&countingMeasure{}, 2)
	for i := 0; i < 200; i++ {
		m.Phrase(fmt.Sprintf("tag %d", i), "other")
	}
	if _, _, evictions := m.Stats(); evictions == 0 {
		t.Fatal("bounded memo never evicted under pressure")
	}
}

func TestMemoConcurrentAccess(t *testing.T) {
	m := NewMemo(NewConceptual())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				m.Phrase(fmt.Sprintf("tag %d", i%10), "good food")
				m.Base(fmt.Sprintf("tag %d", i%10), "bad food")
			}
		}(g)
	}
	wg.Wait()
	hits, misses, _ := m.Stats()
	if hits+misses != 8*200*2 {
		t.Fatalf("lookups accounted %d, want %d", hits+misses, 8*200*2)
	}
}
