// Package sim implements the phrase similarity of §3.1: conceptual
// similarity, which besides surface identity considers the nature of words
// through an IS-A taxonomy ("amazing pizza" matches "good food" because pizza
// is a kind of food), and a plain embedding-cosine measure used as the
// ablation baseline the paper says works worse on short subjective tags.
package sim

import (
	"strings"

	"saccs/internal/lexicon"
	"saccs/internal/mat"
)

// Measure scores the similarity of two short phrases in [0, 1].
type Measure interface {
	Phrase(a, b string) float64
}

// stopwords are ignored when aligning phrase words.
var stopwords = map[string]bool{
	"the": true, "a": true, "an": true, "of": true, "is": true, "are": true,
	"and": true, "with": true, "very": true, "really": true,
}

func contentWords(phrase string) []string {
	// Filter in place over the Fields slice — no second allocation.
	ws := strings.Fields(strings.ToLower(phrase))
	out := ws[:0]
	for _, w := range ws {
		if !stopwords[w] {
			out = append(out, w)
		}
	}
	return out
}

// Conceptual is the taxonomy-backed similarity: each word of one phrase is
// greedily aligned to its best conceptual match in the other (exact match 1,
// otherwise Wu–Palmer over the IS-A graph), and the two directions are
// averaged.
type Conceptual struct {
	Tax      *lexicon.Taxonomy
	polarity map[string]int
}

// NewConceptual returns a Conceptual measure over the built-in taxonomy and
// polarity lexicon.
func NewConceptual() *Conceptual {
	return &Conceptual{Tax: lexicon.DefaultTaxonomy(), polarity: lexicon.PolarityLexicon()}
}

// polarityPenalty scales the similarity of phrases with opposite sentiment
// polarity ("not delicious food" vs "delicious food").
const polarityPenalty = 0.1

// Phrase scores two phrases in [0, 1]. Phrases whose sentiment polarities
// conflict (one positive, one negative — negation counts) are heavily
// penalized: a tag extracted from "the food was not delicious" must not
// strengthen the index entry for "delicious food".
func (c *Conceptual) Phrase(a, b string) float64 {
	s, conflict := c.Base(a, b)
	if conflict {
		s *= polarityPenalty
	}
	return s
}

// Base returns the polarity-blind conceptual similarity and whether the two
// phrases' sentiment polarities conflict. The subjective tag index uses the
// conflict signal to let contradicting mentions ("bland food") lower an
// entity's degree of truth for the contradicted tag ("delicious food").
func (c *Conceptual) Base(a, b string) (float64, bool) {
	wa, wb := contentWords(a), contentWords(b)
	if len(wa) == 0 || len(wb) == 0 {
		if strings.EqualFold(strings.TrimSpace(a), strings.TrimSpace(b)) && strings.TrimSpace(a) != "" {
			return 1, false
		}
		return 0, false
	}
	s := (c.directional(wa, wb) + c.directional(wb, wa)) / 2
	pa, pb := c.Polarity(a), c.Polarity(b)
	return s, pa*pb < 0
}

// Polarity returns +1, −1 or 0 for a phrase's sentiment orientation, using
// the taxonomy's positive/negative ancestors; a preceding "not"/"no"/"never"
// flips the next sentiment word.
func (c *Conceptual) Polarity(phrase string) int {
	neg := false
	total := 0
	for _, w := range strings.Fields(strings.ToLower(phrase)) {
		if w == "not" || w == "no" || w == "never" {
			neg = !neg
			continue
		}
		p := c.wordPolarity(w)
		if p == 0 {
			continue
		}
		if neg {
			p = -p
			neg = false
		}
		total += p
	}
	switch {
	case total > 0:
		return 1
	case total < 0:
		return -1
	}
	return 0
}

func (c *Conceptual) wordPolarity(w string) int {
	if c.polarity != nil {
		if p, ok := c.polarity[w]; ok {
			return p
		}
	}
	// Walk parent links directly instead of materializing the ancestor
	// chain. The hop bound replaces Ancestors' seen-map cycle guard: a cycle
	// never contains "positive"/"negative" (their chains terminate at
	// "polarity"), so a bounded walk returns the same 0 a full visit would.
	for a, hops := w, 0; a != "" && hops < 256; hops++ {
		switch a {
		case "positive":
			return 1
		case "negative":
			return -1
		}
		a = c.Tax.Parent(a)
	}
	return 0
}

func (c *Conceptual) directional(from, to []string) float64 {
	var total float64
	for _, w := range from {
		best := 0.0
		for _, v := range to {
			s := c.word(w, v)
			if s > best {
				best = s
			}
		}
		total += best
	}
	return total / float64(len(from))
}

func (c *Conceptual) word(a, b string) float64 {
	if a == b {
		return 1
	}
	return c.Tax.WuPalmer(a, b)
}

// VecProvider supplies a phrase embedding; MiniBERT's SentenceVec satisfies
// it.
type VecProvider interface {
	SentenceVec(tokens []string) mat.Vec
}

// Cosine scores phrases by cosine over provider embeddings — the plain
// measure the paper reports as weaker on short tags (§3.1 footnote 2).
type Cosine struct {
	Provider VecProvider
}

// Phrase returns the embedding cosine clamped to [0, 1].
func (c *Cosine) Phrase(a, b string) float64 {
	va := c.Provider.SentenceVec(strings.Fields(strings.ToLower(a)))
	vb := c.Provider.SentenceVec(strings.Fields(strings.ToLower(b)))
	s := mat.Cosine(va, vb)
	if s < 0 {
		return 0
	}
	return s
}

// Blend mixes two measures with weight w on the first.
type Blend struct {
	A, B Measure
	W    float64
}

// Phrase returns w·A + (1−w)·B.
func (b *Blend) Phrase(x, y string) float64 {
	return b.W*b.A.Phrase(x, y) + (1-b.W)*b.B.Phrase(x, y)
}
