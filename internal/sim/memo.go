package sim

import (
	"sync"
	"sync/atomic"

	"saccs/internal/obs"
)

// memoShards is the number of independently locked cache segments. Sharding
// keeps concurrent index builds and queries from serializing on one mutex.
const memoShards = 16

// DefaultMemoCapacity bounds each shard; the whole memo holds at most
// memoShards × DefaultMemoCapacity pairs before a shard is evicted wholesale.
const DefaultMemoCapacity = 4096

// memoEntry caches every facet of one (a, b) phrase comparison: the plain
// Phrase score and — when the underlying measure is contradiction-aware —
// the polarity-blind base score with its conflict flag. The facets are
// filled lazily, so a pair only seen through Base never pays for Phrase.
type memoEntry struct {
	phrase             float64
	base               float64
	conflict           bool
	hasPhrase, hasBase bool
}

type memoShard struct {
	mu sync.Mutex
	m  map[string]memoEntry
}

// Contradictor mirrors index.ContradictionAware without importing it (index
// imports sim): Base returns the polarity-blind similarity plus whether the
// phrases' polarities conflict.
type Contradictor interface {
	Base(a, b string) (float64, bool)
}

// Memo wraps a Measure with a bounded, sharded cache of pairwise scores, so
// hot paths (Eq. 1 indexing, Algorithm 1 similarity fallbacks) never
// recompute Sim(tag, reviewTag) for a repeated pair. It is safe for
// concurrent use and preserves the wrapped measure's results exactly.
//
// Memo always exposes a Base method: when the wrapped measure is itself a
// Contradictor it delegates (and caches the conflict flag); otherwise Base
// degrades to (Phrase, false), which makes the index's contradiction-aware
// path compute the same degrees as its plain path.
type Memo struct {
	m      Measure
	ca     Contradictor // non-nil when m is contradiction-aware
	cap    int
	shards [memoShards]memoShard

	hits, misses, evictions atomic.Int64

	// optional metrics (nil-safe): sim.memo.{hit,miss,eviction}.total.
	hitCtr, missCtr, evictCtr *obs.Counter
}

// NewMemo wraps m with a cache of DefaultMemoCapacity entries per shard.
func NewMemo(m Measure) *Memo { return NewMemoCapacity(m, DefaultMemoCapacity) }

// NewMemoCapacity wraps m with perShard cached pairs per shard (minimum 1).
// A full shard is cleared wholesale — cheap amortized eviction that keeps
// the memory bound hard without LRU bookkeeping.
func NewMemoCapacity(m Measure, perShard int) *Memo {
	if perShard < 1 {
		perShard = 1
	}
	memo := &Memo{m: m, cap: perShard}
	memo.ca, _ = m.(Contradictor)
	return memo
}

// Unwrap returns the measure the memo caches.
func (mm *Memo) Unwrap() Measure { return mm.m }

// SetObserver attaches hit/miss/eviction counters. Call before concurrent
// use; a nil observer detaches them.
func (mm *Memo) SetObserver(o *obs.Observer) {
	if o == nil {
		mm.hitCtr, mm.missCtr, mm.evictCtr = nil, nil, nil
		return
	}
	mm.hitCtr = o.Counter("sim.memo.hit.total")
	mm.missCtr = o.Counter("sim.memo.miss.total")
	mm.evictCtr = o.Counter("sim.memo.eviction.total")
}

// Stats returns lifetime cache hits, misses, and whole-shard evictions.
func (mm *Memo) Stats() (hits, misses, evictions int64) {
	return mm.hits.Load(), mm.misses.Load(), mm.evictions.Load()
}

// fnv32a over the pair key selects a shard.
func shardOf(key string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h % memoShards
}

// lookup fetches the cached entry for key, if any.
func (mm *Memo) lookup(key string) (memoEntry, bool) {
	sh := &mm.shards[shardOf(key)]
	sh.mu.Lock()
	e, ok := sh.m[key]
	sh.mu.Unlock()
	return e, ok
}

// store merges upd into the cached entry for key, evicting the whole shard
// first when it is full. Concurrent writers for the same key write identical
// facet values (the measure is deterministic), so last-write-wins is safe.
func (mm *Memo) store(key string, upd memoEntry) {
	sh := &mm.shards[shardOf(key)]
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[string]memoEntry, mm.cap)
	}
	prev, existed := sh.m[key]
	if !existed && len(sh.m) >= mm.cap {
		sh.m = make(map[string]memoEntry, mm.cap)
		mm.evictions.Add(1)
		mm.evictCtr.Inc()
	}
	if upd.hasPhrase {
		prev.phrase, prev.hasPhrase = upd.phrase, true
	}
	if upd.hasBase {
		prev.base, prev.conflict, prev.hasBase = upd.base, upd.conflict, true
	}
	sh.m[key] = prev
	sh.mu.Unlock()
}

func pairKey(a, b string) string { return a + "\x1f" + b }

// Phrase returns the wrapped measure's Phrase(a, b), cached.
func (mm *Memo) Phrase(a, b string) float64 {
	key := pairKey(a, b)
	if e, ok := mm.lookup(key); ok && e.hasPhrase {
		mm.hits.Add(1)
		mm.hitCtr.Inc()
		return e.phrase
	}
	mm.misses.Add(1)
	mm.missCtr.Inc()
	s := mm.m.Phrase(a, b)
	mm.store(key, memoEntry{phrase: s, hasPhrase: true})
	return s
}

// Base returns the wrapped measure's polarity-blind similarity and conflict
// flag, cached. For a measure without a Base of its own it returns
// (Phrase(a, b), false).
func (mm *Memo) Base(a, b string) (float64, bool) {
	key := pairKey(a, b)
	if e, ok := mm.lookup(key); ok && e.hasBase {
		mm.hits.Add(1)
		mm.hitCtr.Inc()
		return e.base, e.conflict
	}
	mm.misses.Add(1)
	mm.missCtr.Inc()
	var s float64
	var conflict bool
	if mm.ca != nil {
		s, conflict = mm.ca.Base(a, b)
	} else {
		s = mm.m.Phrase(a, b)
	}
	mm.store(key, memoEntry{base: s, conflict: conflict, hasBase: true})
	return s, conflict
}
