package sim

import (
	"testing"

	"saccs/internal/mat"
)

func TestConceptualIdentity(t *testing.T) {
	c := NewConceptual()
	for _, tag := range []string{"delicious food", "nice staff", "romantic ambiance"} {
		if got := c.Phrase(tag, tag); got != 1 {
			t.Fatalf("Phrase(%q, %q) = %v, want 1", tag, tag, got)
		}
	}
}

func TestConceptualSymmetry(t *testing.T) {
	c := NewConceptual()
	pairs := [][2]string{
		{"delicious food", "good food"},
		{"amazing pizza", "good food"},
		{"quick service", "nice staff"},
	}
	for _, p := range pairs {
		ab, ba := c.Phrase(p[0], p[1]), c.Phrase(p[1], p[0])
		if ab != ba {
			t.Fatalf("asymmetric: %v vs %v for %v", ab, ba, p)
		}
		if ab < 0 || ab > 1 {
			t.Fatalf("out of range: %v", ab)
		}
	}
}

func TestConceptualPizzaIsFood(t *testing.T) {
	// The §3.1 example: "amazing pizza" must match "good food" well enough
	// to be indexed under it, and far better than an unrelated tag.
	c := NewConceptual()
	pizzaFood := c.Phrase("amazing pizza", "good food")
	pizzaStaff := c.Phrase("amazing pizza", "nice staff")
	if pizzaFood <= pizzaStaff {
		t.Fatalf("conceptual similarity failed: pizza/food=%v pizza/staff=%v", pizzaFood, pizzaStaff)
	}
	if pizzaFood < 0.4 {
		t.Fatalf("pizza/food too low: %v", pizzaFood)
	}
}

func TestConceptualSynonymOpinions(t *testing.T) {
	c := NewConceptual()
	deliciousGood := c.Phrase("delicious food", "tasty food")
	deliciousSlow := c.Phrase("delicious food", "slow service")
	if deliciousGood <= deliciousSlow {
		t.Fatalf("synonym opinions must score higher: %v vs %v", deliciousGood, deliciousSlow)
	}
}

func TestConceptualStopwordsIgnored(t *testing.T) {
	c := NewConceptual()
	if c.Phrase("the delicious food", "delicious food") != 1 {
		t.Fatal("stopwords must not lower similarity")
	}
}

func TestConceptualEmptyPhrases(t *testing.T) {
	c := NewConceptual()
	if got := c.Phrase("", ""); got != 0 {
		t.Fatalf("empty phrases: %v", got)
	}
	if got := c.Phrase("the", "the"); got != 1 {
		t.Fatalf("identical stopword-only phrases: %v", got)
	}
	if got := c.Phrase("the", "a"); got != 0 {
		t.Fatalf("distinct stopword-only phrases: %v", got)
	}
	if got := c.Phrase("delicious food", ""); got != 0 {
		t.Fatalf("one empty: %v", got)
	}
}

// fakeProvider embeds phrases by word identity hash for testing Cosine.
type fakeProvider struct{}

func (fakeProvider) SentenceVec(tokens []string) mat.Vec {
	v := mat.NewVec(8)
	for _, tok := range tokens {
		h := 0
		for _, r := range tok {
			h = h*31 + int(r)
		}
		if h < 0 {
			h = -h
		}
		v[h%8] += 1
	}
	return v
}

func TestCosineMeasure(t *testing.T) {
	c := &Cosine{Provider: fakeProvider{}}
	if got := c.Phrase("delicious food", "delicious food"); got < 0.999 {
		t.Fatalf("identical phrases: %v", got)
	}
	got := c.Phrase("delicious food", "slow service")
	if got < 0 || got > 1 {
		t.Fatalf("out of range: %v", got)
	}
}

func TestBlend(t *testing.T) {
	c := NewConceptual()
	e := &Cosine{Provider: fakeProvider{}}
	b := &Blend{A: c, B: e, W: 0.7}
	got := b.Phrase("delicious food", "delicious food")
	if got < 0.999 {
		t.Fatalf("blend of identical: %v", got)
	}
	want := 0.7*c.Phrase("delicious food", "tasty food") + 0.3*e.Phrase("delicious food", "tasty food")
	if diff := b.Phrase("delicious food", "tasty food") - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("blend math wrong: %v", diff)
	}
}

func TestPolarity(t *testing.T) {
	c := NewConceptual()
	if got := c.Polarity("delicious food"); got != 1 {
		t.Fatalf("positive phrase: %d", got)
	}
	if got := c.Polarity("bland food"); got != -1 {
		t.Fatalf("negative phrase: %d", got)
	}
	if got := c.Polarity("not delicious food"); got != -1 {
		t.Fatalf("negated positive: %d", got)
	}
	if got := c.Polarity("not bland food"); got != 1 {
		t.Fatalf("negated negative: %d", got)
	}
	if got := c.Polarity("the food"); got != 0 {
		t.Fatalf("neutral phrase: %d", got)
	}
}

func TestNegationPenalized(t *testing.T) {
	c := NewConceptual()
	same := c.Phrase("delicious food", "tasty food")
	negated := c.Phrase("delicious food", "not delicious food")
	opposite := c.Phrase("delicious food", "bland food")
	if negated >= same || opposite >= same {
		t.Fatalf("polarity conflict must be penalized: same=%v negated=%v opposite=%v", same, negated, opposite)
	}
	if negated > 0.2 {
		t.Fatalf("negated tag still too similar: %v", negated)
	}
}
