package tagger

import (
	"math/rand"
	"testing"

	"saccs/internal/bert"
	"saccs/internal/tokenize"
)

// TestPredictAllocsRegression pins the allocation count of a warm Predict.
// The whole decode — MiniBERT forward, BiLSTM, projection, Viterbi — runs on
// one pooled arena, so the only steady-state allocations are the returned
// label slice and pool bookkeeping. The previous implementation routed
// through the training Forward paths and paid hundreds of allocations (and
// hundreds of kilobytes) per sentence.
func TestPredictAllocsRegression(t *testing.T) {
	v := tokenize.NewVocab()
	v.AddAll([]string{"the", "food", "is", "delicious", "staff", "friendly", "and", "service", "slow", "."})
	enc := bert.New(rand.New(rand.NewSource(31)), bert.Config{Layers: 2, Heads: 4, Dim: 32, FFDim: 48, MaxLen: 40}, v)
	m := New(enc, DefaultConfig())
	tokens := []string{"the", "staff", "is", "friendly", "and", "the", "service", "is", "slow", "."}
	for i := 0; i < 3; i++ {
		m.Predict(tokens) // warm the pooled arenas
	}
	allocs := testing.AllocsPerRun(100, func() { m.Predict(tokens) })
	if allocs > 16 {
		t.Fatalf("warm Predict allocates %v times per call, want <= 16", allocs)
	}
}

// TestPredictMatchesTrainingForward verifies the inference-kernel Predict
// decodes the exact label path the training-path pipeline (bilstm.Forward →
// proj.ForwardSeq → crf.Decode) produces — the bit-identity contract behind
// the extraction cache and golden snapshots.
func TestPredictMatchesTrainingForward(t *testing.T) {
	v := tokenize.NewVocab()
	v.AddAll([]string{"the", "food", "is", "delicious", "staff", "friendly", "and", "service", "slow", "."})
	enc := bert.New(rand.New(rand.NewSource(32)), bert.Config{Layers: 1, Heads: 2, Dim: 16, FFDim: 24, MaxLen: 40}, v)
	m := New(enc, DefaultConfig())
	for _, tokens := range [][]string{
		{"the", "food", "is", "delicious"},
		{"staff"},
		{"the", "staff", "is", "friendly", "and", "the", "food", "is", "delicious", "."},
	} {
		embeds := enc.InferTokens(tokens)
		hs, _ := m.bilstm.Forward(embeds)
		emissions := m.proj.ForwardSeq(hs)
		wantPath := m.crf.Decode(emissions)
		want := make([]tokenize.Label, len(tokens))
		for i, l := range wantPath {
			want[i] = tokenize.Label(l)
		}
		got := m.Predict(tokens)
		if len(got) != len(want) {
			t.Fatalf("%v: length %d vs %d", tokens, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v: label[%d] %v != %v", tokens, i, got[i], want[i])
			}
		}
	}
}

// TestGenerationChangesOnTrain verifies the cache-keying contract: a model's
// generation is stable across Predicts, changes on every Train, and is
// never shared between two models.
func TestGenerationChangesOnTrain(t *testing.T) {
	d := smallDataset(t)
	enc := testEncoder(t, d)
	m := New(enc, fastCfg())
	g0 := m.Generation()
	if m.Generation() != g0 {
		t.Fatal("generation changed without training")
	}
	m.Predict(d.Test[0].Tokens)
	if m.Generation() != g0 {
		t.Fatal("Predict changed the generation")
	}
	m.Train(d.Train[:capN(len(d.Train), 10)])
	g1 := m.Generation()
	if g1 == g0 {
		t.Fatal("Train did not change the generation")
	}
	other := New(enc, fastCfg())
	if other.Generation() == g1 || other.Generation() == g0 {
		t.Fatal("two models share a generation")
	}
	o := NewOpineDB(enc, fastCfg())
	og := o.Generation()
	o.Train(d.Train[:capN(len(d.Train), 5)])
	if o.Generation() == og {
		t.Fatal("OpineDB Train did not change the generation")
	}
}
