package tagger

import (
	"hash/fnv"
	"sync"
	"testing"

	"saccs/internal/mat"
	"saccs/internal/tokenize"
)

// hashEnc is a deterministic stand-in encoder for fuzzing: each token embeds
// to a small vector derived from its FNV hash. It keeps the fuzz loop fast
// while still driving real BiLSTM → projection → CRF Viterbi decoding.
type hashEnc struct{ dim int }

func (h hashEnc) EmbeddingDim() int { return h.dim }

func (h hashEnc) EncodeTokens(tokens []string) []mat.Vec {
	out := make([]mat.Vec, len(tokens))
	for i, tok := range tokens {
		f := fnv.New64a()
		_, _ = f.Write([]byte(tok))
		seed := f.Sum64()
		v := mat.NewVec(h.dim)
		for d := range v {
			seed = seed*6364136223846793005 + 1442695040888963407
			v[d] = float64(int64(seed>>11))/float64(1<<52) - 1
		}
		out[i] = v
	}
	return out
}

var (
	fuzzModelOnce sync.Once
	fuzzModel     *Model
)

// fuzzTagger builds one small untrained tagger (seeded random weights, hard
// IOB constraints installed by New) shared by all fuzz iterations.
func fuzzTagger() *Model {
	fuzzModelOnce.Do(func() {
		cfg := DefaultConfig()
		cfg.Hidden = 8
		fuzzModel = New(hashEnc{dim: 8}, cfg)
	})
	return fuzzModel
}

// FuzzPredictDecode fuzzes the §4 decode path (BiLSTM forward → emission
// projection → CRF Viterbi) through the real tokenizer. Invariants: one
// label per token, labels in range, the decoded sequence respects the IOB
// structural constraints (ValidStart/ValidTransition — the CRF's hard
// penalties must dominate any emission score), and span decoding never
// panics on the result.
func FuzzPredictDecode(f *testing.F) {
	f.Add("The food is delicious and the staff is friendly.")
	f.Add("terrible terrible terrible")
	f.Add("")
	f.Add("a")
	f.Add("pizza pasta pizza pasta pizza pasta pizza pasta pizza pasta pizza pasta")
	f.Add("日本語 l'étoile 100% !?")
	f.Fuzz(func(t *testing.T, s string) {
		m := fuzzTagger()
		tokens := tokenize.Words(s)
		labels := m.Predict(tokens)
		if len(labels) != len(tokens) {
			t.Fatalf("%d labels for %d tokens (input %q)", len(labels), len(tokens), s)
		}
		for i, l := range labels {
			if l < 0 || l >= tokenize.NumLabels {
				t.Fatalf("label %d out of range at %d for %q", l, i, s)
			}
		}
		if len(labels) > 0 && !tokenize.ValidStart(labels[0]) {
			t.Fatalf("decode starts with invalid label %v for %q", labels[0], s)
		}
		for i := 1; i < len(labels); i++ {
			if !tokenize.ValidTransition(labels[i-1], labels[i]) {
				t.Fatalf("invalid IOB transition %v→%v at %d for %q", labels[i-1], labels[i], i, s)
			}
		}
		_ = tokenize.Spans(labels)
	})
}
