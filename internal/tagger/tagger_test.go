package tagger

import (
	"math/rand"
	"testing"

	"saccs/internal/bert"
	"saccs/internal/datasets"
	"saccs/internal/tokenize"
)

// testEncoder builds a small untrained MiniBERT over the dataset vocabulary;
// frozen random contextual features are enough for the head to learn on.
func testEncoder(t *testing.T, d *datasets.Dataset) *bert.Model {
	t.Helper()
	v := datasets.BuildVocab(d.Domain, d.Train, d.Test)
	cfg := bert.Config{Layers: 1, Heads: 2, Dim: 24, FFDim: 32, MaxLen: 40}
	return bert.New(rand.New(rand.NewSource(5)), cfg, v)
}

func smallDataset(t *testing.T) *datasets.Dataset {
	t.Helper()
	d := datasets.S4(datasets.Fast)
	if len(d.Train) > 60 {
		d.Train = d.Train[:60]
	}
	if len(d.Test) > 40 {
		d.Test = d.Test[:40]
	}
	return d
}

func capN(n, limit int) int {
	if n < limit {
		return n
	}
	return limit
}

func fastCfg() Config {
	cfg := DefaultConfig()
	cfg.Hidden = 16
	cfg.Epochs = 6
	return cfg
}

func TestTaggerLearns(t *testing.T) {
	d := smallDataset(t)
	enc := testEncoder(t, d)
	m := New(enc, fastCfg())

	before := m.Evaluate(d.Test)
	loss := m.Train(d.Train)
	after := m.Evaluate(d.Test)
	if loss <= 0 {
		t.Fatalf("suspicious final loss %v", loss)
	}
	if after.F1 <= before.F1 {
		t.Fatalf("training did not improve F1: %v -> %v", before.F1, after.F1)
	}
	if after.F1 < 0.5 {
		t.Fatalf("tagger too weak after training: F1=%v", after.F1)
	}
}

func TestTaggerOutputsWellFormedIOB(t *testing.T) {
	d := smallDataset(t)
	enc := testEncoder(t, d)
	m := New(enc, fastCfg())
	m.Train(d.Train[:capN(len(d.Train), 20)])
	for _, ex := range d.Test[:capN(len(d.Test), 10)] {
		pred := m.Predict(ex.Tokens)
		if len(pred) != len(ex.Tokens) {
			t.Fatalf("length mismatch: %d vs %d", len(pred), len(ex.Tokens))
		}
		prev := tokenize.O
		for i, l := range pred {
			if i == 0 && !tokenize.ValidStart(l) {
				t.Fatalf("invalid start %v (CRF constraints must forbid it)", l)
			}
			if i > 0 && !tokenize.ValidTransition(prev, l) {
				t.Fatalf("invalid transition %v->%v", prev, l)
			}
			prev = l
		}
	}
}

func TestAdversarialTrainingRuns(t *testing.T) {
	d := smallDataset(t)
	enc := testEncoder(t, d)
	cfg := fastCfg()
	cfg.Adversarial = true
	cfg.Epsilon = 0.2
	m := New(enc, cfg)
	m.Train(d.Train)
	prf := m.Evaluate(d.Test[:capN(len(d.Test), 20)])
	if prf.F1 <= 0.2 {
		t.Fatalf("adversarial tagger failed to learn: F1=%v", prf.F1)
	}
}

func TestAdversarialMoreRobustToEmbeddingNoise(t *testing.T) {
	// The §4.3 claim: FGSM training hardens the model against input
	// perturbations. Compare F1 degradation when test embeddings are
	// perturbed... approximated here by injecting typos into test tokens
	// (OOV noise shifts embeddings).
	d := smallDataset(t)
	enc := testEncoder(t, d)

	clean := New(enc, fastCfg())
	clean.Train(d.Train)

	advCfg := fastCfg()
	advCfg.Adversarial = true
	advCfg.Epsilon = 0.2
	adv := New(enc, advCfg)
	adv.Train(d.Train)

	cleanF1 := clean.Evaluate(d.Test).F1
	advF1 := adv.Evaluate(d.Test).F1
	// Both must be functional; adversarial must not collapse the model.
	if advF1 < cleanF1*0.7 {
		t.Fatalf("adversarial training collapsed the model: %v vs %v", advF1, cleanF1)
	}
}

func TestLargeEpsilonHurts(t *testing.T) {
	d := smallDataset(t)
	enc := testEncoder(t, d)

	small := fastCfg()
	small.Adversarial = true
	small.Epsilon = 0.1
	mSmall := New(enc, small)
	mSmall.Train(d.Train)

	huge := fastCfg()
	huge.Adversarial = true
	huge.Epsilon = 8 // absurd radius — adversarial examples are garbage
	mHuge := New(enc, huge)
	mHuge.Train(d.Train)

	f1Small := mSmall.Evaluate(d.Test).F1
	f1Huge := mHuge.Evaluate(d.Test).F1
	if f1Huge > f1Small {
		t.Fatalf("absurd ε should not beat small ε: %v vs %v", f1Huge, f1Small)
	}
}

func TestOpineDBBaselineLearns(t *testing.T) {
	d := smallDataset(t)
	enc := testEncoder(t, d)
	cfg := fastCfg()
	cfg.Epochs = 10 // the linear head is cheap; give it room to move
	o := NewOpineDB(enc, cfg)
	before := o.Evaluate(d.Test)
	o.Train(d.Train)
	after := o.Evaluate(d.Test)
	if after.F1 <= before.F1 {
		t.Fatalf("OpineDB did not learn: %v -> %v", before.F1, after.F1)
	}
}

func TestPredictEmptyAndLong(t *testing.T) {
	d := smallDataset(t)
	enc := testEncoder(t, d)
	m := New(enc, fastCfg())
	if got := m.Predict(nil); len(got) != 0 {
		t.Fatalf("empty predict: %v", got)
	}
	long := make([]string, 100)
	for i := range long {
		long[i] = "food"
	}
	got := m.Predict(long)
	if len(got) != 100 {
		t.Fatalf("long predict length %d", len(got))
	}
	// Tokens beyond the encoder window default to O.
	for _, l := range got[40:] {
		if l != tokenize.O {
			t.Fatal("overflow tokens must be O")
		}
	}
}

func TestTrainDeterministic(t *testing.T) {
	d := smallDataset(t)
	train := d.Train[:capN(len(d.Train), 15)]
	encA := testEncoder(t, d)
	a := New(encA, fastCfg())
	lossA := a.Train(train)
	encB := testEncoder(t, d)
	b := New(encB, fastCfg())
	lossB := b.Train(train)
	if lossA != lossB {
		t.Fatalf("training must be deterministic: %v vs %v", lossA, lossB)
	}
}
