package tagger

import (
	"math"
	"time"

	"saccs/internal/mat"
	"saccs/internal/nn"
	"saccs/internal/tokenize"
)

// QuantEncoder is an encoder with a reduced-precision batched forward pass;
// *bert.Model satisfies it. When the tagger's encoder implements it and the
// precision mode is quantized, Predict/PredictBatch route the whole pipeline
// — encoder, BiLSTM, projection — through the float32/int8 kernels, with
// only the CRF Viterbi staying float64. Encoders without it silently decode
// at float64, so a quantized Precision is always safe to request.
type QuantEncoder interface {
	InferQuantBatchTokensArena(seqs [][]string, a *nn.Arena, p nn.Precision) (*mat.Mat32, []int, []int)
}

// Precision returns the model's configured decode precision.
func (m *Model) Precision() nn.Precision { return m.cfg.Precision }

// SetPrecision changes the decode precision for subsequent Predict calls.
// Not safe to call concurrently with in-flight decodes; use PredictAt to mix
// precisions under concurrency instead.
func (m *Model) SetPrecision(p nn.Precision) { m.cfg.Precision = p }

// predictQuant decodes packed sequences on the reduced-precision kernels:
// the quantized encoder batch pass, the quantized BiLSTM, the projection
// (float32 in Mixed, int8 in Int8), then a float64 Viterbi per sequence over
// the float32 emissions. A solo decode is the one-sequence batch — the
// kernels are sequence-local, so solo and batched results are structurally
// bit-identical.
func (m *Model) predictQuant(qe QuantEncoder, seqs [][]string, p nn.Precision) [][]tokenize.Label {
	if m.Obs != nil {
		defer m.Obs.Histogram("tagger.predict").ObserveSince(time.Now())
	}
	a := arenaPool.Get().(*nn.Arena)
	a.Reset()
	embeds, starts, lens := qe.InferQuantBatchTokensArena(seqs, a, p)
	hs := m.bilstm.InferQuantBatch(embeds, starts, lens, a, p)
	var emissions *mat.Mat32
	if p == nn.Int8 {
		emissions = m.proj.InferQuantBatch(hs, a)
	} else {
		emissions = m.proj.InferF32Batch(hs, a)
	}
	outs := make([][]tokenize.Label, len(seqs))
	for s, seq := range seqs {
		out := make([]tokenize.Label, len(seq))
		if n := lens[s]; n > 0 {
			em := a.Seq(n)
			for t := 0; t < n; t++ {
				row := emissions.Row(starts[s] + t)
				v := a.Vec(len(row))
				for j, e := range row {
					v[j] = float64(e)
				}
				em[t] = v
			}
			path := m.crf.DecodeArena(em, a)
			for i, l := range path {
				out[i] = tokenize.Label(l)
			}
		}
		outs[s] = out
	}
	arenaPool.Put(a)
	return outs
}

// ReferenceView adapts a Model to always decode on the exact float64
// reference path, whatever precision the model is configured to serve at.
// It satisfies the extraction pipeline's Tagger, BatchTagger, and
// Generationer interfaces, so an index build can hand its extractor this
// view and keep the index a precision-independent artifact: the same world
// produces byte-identical postings whether the client serves queries at
// float64, mixed, or int8.
type ReferenceView struct{ M *Model }

// Predict decodes one sentence at float64.
func (v ReferenceView) Predict(tokens []string) []tokenize.Label {
	return v.M.PredictAt(tokens, nn.Float64)
}

// PredictBatch decodes a shared forward at float64.
func (v ReferenceView) PredictBatch(seqs [][]string) [][]tokenize.Label {
	return v.M.PredictBatchAt(seqs, nn.Float64)
}

// Generation exposes the underlying model's weight generation, so the
// reference view participates in generation-checked caching.
func (v ReferenceView) Generation() uint64 { return v.M.Generation() }

// PathScore returns the float64 model's unnormalized CRF score for a label
// sequence over tokens (truncated to the encoder's max length, like
// Predict). Decode maximizes this, so score(Predict(t)) - score(other) is
// how decisively the model prefers its answer over an alternative — the
// margin the quant-drift oracle compares against quantization noise. Oracle
// and test support, not a serving path.
func (m *Model) PathScore(tokens []string, labels []tokenize.Label) float64 {
	em := m.EmissionsAt(tokens, nn.Float64)
	if len(labels) < len(em) {
		return math.Inf(-1)
	}
	path := make([]int, len(em))
	for i := range path {
		path[i] = int(labels[i])
	}
	return m.crf.PathScore(em, path)
}

// EmissionsAt runs encoder → BiLSTM → projection at the given precision and
// returns one emission vector per (truncated) token as float64 — the
// observable the quant-drift oracle bounds. Allocating; oracle and test
// support, not a serving path.
func (m *Model) EmissionsAt(tokens []string, p nn.Precision) []mat.Vec {
	a := arenaPool.Get().(*nn.Arena)
	defer arenaPool.Put(a)
	a.Reset()
	if p.Quantized() {
		if qe, ok := m.enc.(QuantEncoder); ok {
			embeds, starts, lens := qe.InferQuantBatchTokensArena([][]string{tokens}, a, p)
			hs := m.bilstm.InferQuantBatch(embeds, starts, lens, a, p)
			var em *mat.Mat32
			if p == nn.Int8 {
				em = m.proj.InferQuantBatch(hs, a)
			} else {
				em = m.proj.InferF32Batch(hs, a)
			}
			out := make([]mat.Vec, lens[0])
			for t := range out {
				row := em.Row(starts[0] + t)
				v := mat.NewVec(len(row))
				for j, e := range row {
					v[j] = float64(e)
				}
				out[t] = v
			}
			return out
		}
	}
	var embeds []mat.Vec
	if ae, ok := m.enc.(ArenaEncoder); ok {
		embeds = ae.InferTokensArena(tokens, a)
	} else {
		embeds = infer(m.enc, tokens)
	}
	if len(embeds) == 0 {
		return nil
	}
	hs := m.bilstm.InferSeq(embeds, a)
	em := m.proj.InferSeq(hs, a)
	out := make([]mat.Vec, len(em))
	for t, e := range em {
		out[t] = e.Clone()
	}
	return out
}
