// Package tagger implements the SACCS extractor of §4: the token tagging
// model that labels each word of a sentence as B-AS/I-AS/B-OP/I-OP/O.
//
//   - Model is the paper's architecture (Fig. 3): frozen BERT contextual
//     embeddings → dropout → BiLSTM → linear projection → linear-chain CRF,
//     decoded with Viterbi (§4.1).
//   - Adversarial training (Fig. 4, §4.3) mixes the clean loss with a loss
//     on FGSM-perturbed embeddings: Min_θ [α·l(h(x),y) + (1−α)·l(h(x+δ*),y)]
//     with δ* = ε·sign(∇δ l) on the l∞ ball (Eq. 6–9).
//   - OpineDB is the baseline of §6.3 / Table 4 [31]: the same frozen BERT
//     embeddings with a per-token softmax classifier and no CRF.
//
// Domain adaptation (§4.2) happens upstream: pass an encoder post-trained on
// domain reviews (bert.Model.TrainMLM) to either constructor.
package tagger

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"saccs/internal/datasets"
	"saccs/internal/mat"
	"saccs/internal/metrics"
	"saccs/internal/nn"
	"saccs/internal/obs"
	"saccs/internal/tokenize"
)

// Encoder supplies frozen contextual embeddings; *bert.Model satisfies it.
type Encoder interface {
	EncodeTokens(tokens []string) []mat.Vec
	EmbeddingDim() int
}

// InferEncoder is an encoder with a reentrant forward pass; *bert.Model
// satisfies it. When the tagger's encoder implements it, Predict routes
// through InferTokens so any number of goroutines can tag concurrently.
// Train always uses EncodeTokens — fine-tuning needs the encoder's caches.
type InferEncoder interface {
	InferTokens(tokens []string) []mat.Vec
}

// ArenaEncoder is an encoder with an arena-backed reentrant forward pass;
// *bert.Model satisfies it. When the tagger's encoder implements it, Predict
// threads one pooled arena through the entire pipeline (embeddings →
// transformer → BiLSTM → projection → Viterbi) and the whole decode is
// allocation-free once the arena is warm.
type ArenaEncoder interface {
	InferTokensArena(tokens []string, a *nn.Arena) []mat.Vec
}

// TrainableEncoder is an encoder the tagger can fine-tune end-to-end;
// *bert.Model satisfies it. Fine-tuning on the tagging task is what makes
// BERT's attention heads align aspects with opinions (§5.1: "we have it
// already trained on aspect/opinion extraction").
type TrainableEncoder interface {
	Encoder
	Backward(dhs []mat.Vec) []mat.Vec
	EncoderParams() []*nn.Param
}

// Config tunes tagger training.
type Config struct {
	// Hidden is the BiLSTM hidden size per direction.
	Hidden int
	// LR is the Adam learning rate.
	LR float64
	// Epochs over the training set (paper: 15).
	Epochs int
	// Dropout probability on the encoder outputs.
	Dropout float64
	// ClipNorm bounds the global gradient norm.
	ClipNorm float64
	// Adversarial enables FGSM training (§4.3).
	Adversarial bool
	// Epsilon is the l∞ perturbation radius ε (Table 4 sweeps
	// {0.1, 0.2, 0.5, 1.0, 2.0}).
	Epsilon float64
	// Alpha weighs the clean loss against the adversarial loss (paper: 0.5).
	Alpha float64
	// FineTuneEncoder backpropagates the tagging loss into the encoder when
	// it is trainable (§5.1's prerequisite for the attention pairing
	// heuristic). With Adversarial set, only the clean branch updates the
	// encoder — the FGSM input is a synthetic embedding the encoder never
	// produced.
	FineTuneEncoder bool
	// EncoderLR is the encoder's learning rate during fine-tuning
	// (default LR/10, the usual BERT-fine-tuning convention).
	EncoderLR float64
	// Seed drives parameter init and dropout.
	Seed int64
	// Precision selects the decode arithmetic (nn.Float64, nn.Mixed,
	// nn.Int8). The zero value is nn.Float64 — the exact reference path;
	// quantized modes dispatch Predict/PredictBatch to the int8/float32
	// inference kernels when the encoder supports them (see QuantEncoder).
	// Training is always float64 regardless.
	Precision nn.Precision
}

// DefaultConfig returns the training recipe used across the reproduction.
func DefaultConfig() Config {
	return Config{
		Hidden:   32,
		LR:       2e-3,
		Epochs:   5,
		Dropout:  0.1,
		ClipNorm: 5,
		Alpha:    0.5,
		Seed:     1,
	}
}

// genCounter hands out process-unique weight generations. Every freshly
// built tagger and every (re)training epoch boundary draws a new value, so
// two distinct weight states never share a generation — the invariant the
// extraction cache's generation keying rests on.
var genCounter atomic.Uint64

func nextGen() uint64 { return genCounter.Add(1) }

// arenaPool recycles decode arenas across Predict calls and goroutines.
// After each arena's first few decodes it has seen peak demand and Predict
// stops allocating.
var arenaPool = sync.Pool{New: func() any { return new(nn.Arena) }}

// Model is the SACCS tagging architecture of Fig. 3.
type Model struct {
	enc    Encoder
	drop   *nn.Dropout
	bilstm *nn.BiLSTM
	proj   *nn.Linear
	crf    *nn.CRF
	cfg    Config
	gen    atomic.Uint64

	// Obs, when set before Train/Predict, records per-epoch training
	// duration and loss plus per-call Viterbi decode latency. Nil (the
	// default) costs a single branch per call.
	Obs *obs.Observer
}

// New builds an untrained tagger over a (frozen) encoder.
func New(enc Encoder, cfg Config) *Model {
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{
		enc:    enc,
		drop:   nn.NewDropout(rng, cfg.Dropout),
		bilstm: nn.NewBiLSTM(rng, "tagger.bilstm", enc.EmbeddingDim(), cfg.Hidden),
		cfg:    cfg,
	}
	m.proj = nn.NewLinear(rng, "tagger.proj", m.bilstm.OutDim(), int(tokenize.NumLabels))
	m.crf = nn.NewCRF(rng, "tagger.crf", int(tokenize.NumLabels))
	m.crf.SetConstraints(
		func(a, b int) bool { return tokenize.ValidTransition(tokenize.Label(a), tokenize.Label(b)) },
		func(l int) bool { return tokenize.ValidStart(tokenize.Label(l)) },
	)
	m.gen.Store(nextGen())
	return m
}

// Generation identifies the current weight state. It changes whenever the
// weights may have changed — on construction and at both the start and end
// of Train, so results computed while a retrain is in flight are never
// attributed to a servable generation. Callers (the extraction cache) treat
// equal generations as "bit-identical weights".
func (m *Model) Generation() uint64 { return m.gen.Load() }

// Params returns the trainable tensors (the encoder stays frozen).
func (m *Model) Params() []*nn.Param {
	ps := m.bilstm.Params()
	ps = append(ps, m.proj.Params()...)
	return append(ps, m.crf.Params()...)
}

// forwardLoss runs embeddings → BiLSTM → proj → CRF, accumulates parameter
// gradients, and returns (loss, gradient w.r.t. the embeddings). The clean
// and adversarial branches are mixed by the caller via gradient snapshots.
func (m *Model) forwardLoss(embeds []mat.Vec, gold []int) (float64, []mat.Vec) {
	dropped := make([]mat.Vec, len(embeds))
	masks := make([][]bool, len(embeds))
	for i, e := range embeds {
		dropped[i], masks[i] = m.drop.Forward(e)
	}
	hs, cache := m.bilstm.Forward(dropped)
	emissions := m.proj.ForwardSeq(hs)
	loss, dE := m.crf.NLL(emissions, gold)
	dHs := m.proj.BackwardSeq(hs, dE)
	dDropped := m.bilstm.Backward(cache, dHs)
	dEmbeds := make([]mat.Vec, len(embeds))
	for i := range dDropped {
		dEmbeds[i] = m.drop.Backward(dDropped[i], masks[i])
	}
	return loss, dEmbeds
}

// trainStep processes one example, with or without the adversarial branch,
// and applies the optimizer. When encBack is non-nil it receives the
// combined gradient with respect to the input embeddings so the caller can
// fine-tune the encoder.
func (m *Model) trainStep(opt nn.Optimizer, embeds []mat.Vec, gold []int, encBack func([]mat.Vec)) float64 {
	params := m.Params()
	if !m.cfg.Adversarial {
		nn.ZeroGrads(params)
		loss, dEmbeds := m.forwardLoss(embeds, gold)
		nn.ClipGrads(params, m.cfg.ClipNorm)
		opt.Step(params)
		if encBack != nil {
			encBack(dEmbeds)
		}
		return loss
	}
	alpha := m.cfg.Alpha
	// Clean pass: also yields ∇x l for the FGSM direction (Eq. 9's g).
	nn.ZeroGrads(params)
	cleanLoss, dEmbeds := m.forwardLoss(embeds, gold)
	cleanGrads := snapshotGrads(params)

	// Adversarial example: x + ε·sign(g) (Eq. 7–9).
	delta := nn.FGSMSeq(dEmbeds, m.cfg.Epsilon)
	adv := make([]mat.Vec, len(embeds))
	for i, e := range embeds {
		v := e.Clone()
		v.Add(delta[i])
		adv[i] = v
	}
	nn.ZeroGrads(params)
	advLoss, dEmbedsAdv := m.forwardLoss(adv, gold)

	// Combine: grad = α·clean + (1−α)·adv (Eq. 8).
	for pi, p := range params {
		for i := range p.G.Data {
			p.G.Data[i] = alpha*cleanGrads[pi][i] + (1-alpha)*p.G.Data[i]
		}
	}
	nn.ClipGrads(params, m.cfg.ClipNorm)
	opt.Step(params)
	if encBack != nil {
		// δ* is a constant w.r.t. x, so the adversarial branch's embedding
		// gradient flows straight through x + δ*.
		combined := make([]mat.Vec, len(dEmbeds))
		for i := range dEmbeds {
			v := dEmbeds[i].Clone()
			v.Scale(alpha)
			v.AddScaled(1-alpha, dEmbedsAdv[i])
			combined[i] = v
		}
		encBack(combined)
	}
	return alpha*cleanLoss + (1-alpha)*advLoss
}

func snapshotGrads(params []*nn.Param) [][]float64 {
	out := make([][]float64, len(params))
	for i, p := range params {
		out[i] = append([]float64(nil), p.G.Data...)
	}
	return out
}

// Train fits the tagger on the examples and returns the mean loss of the
// final epoch. With a frozen encoder its embeddings are computed once and
// cached; with FineTuneEncoder they are recomputed per step and the tagging
// loss flows back into the encoder at EncoderLR.
func (m *Model) Train(examples []datasets.Example) float64 {
	// Bump the generation before touching any weight and again after the
	// last update: a Predict that overlaps Train sees different generations
	// before and after its forward pass, so its result is never cached.
	m.gen.Store(nextGen())
	defer m.gen.Store(nextGen())
	opt := nn.NewAdam(m.cfg.LR)
	m.drop.Train = true

	te, ok := m.enc.(TrainableEncoder)
	fineTune := ok && m.cfg.FineTuneEncoder
	var encOpt nn.Optimizer
	var encParams []*nn.Param
	if fineTune {
		lr := m.cfg.EncoderLR
		if lr == 0 {
			lr = m.cfg.LR / 10
		}
		encOpt = nn.NewAdam(lr)
		encParams = te.EncoderParams()
	}

	var cached [][]mat.Vec
	golds := make([][]int, len(examples))
	if !fineTune {
		cached = make([][]mat.Vec, len(examples))
		for i, ex := range examples {
			cached[i] = m.enc.EncodeTokens(ex.Tokens)
			golds[i] = goldIDs(ex.Labels, len(cached[i]))
		}
	}

	var last float64
	order := make([]int, len(examples))
	for i := range order {
		order[i] = i
	}
	shuffle := rand.New(rand.NewSource(m.cfg.Seed + 7))
	for epoch := 0; epoch < m.cfg.Epochs; epoch++ {
		var epochStart time.Time
		if m.Obs != nil {
			epochStart = time.Now()
		}
		shuffle.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var total float64
		var n int
		for _, idx := range order {
			var embeds []mat.Vec
			var gold []int
			if fineTune {
				embeds = m.enc.EncodeTokens(examples[idx].Tokens)
				gold = goldIDs(examples[idx].Labels, len(embeds))
			} else {
				embeds, gold = cached[idx], golds[idx]
			}
			if len(embeds) == 0 {
				continue
			}
			var encBack func([]mat.Vec)
			if fineTune {
				encBack = func(dEmbeds []mat.Vec) {
					nn.ZeroGrads(encParams)
					te.Backward(dEmbeds)
					nn.ClipGrads(encParams, m.cfg.ClipNorm)
					encOpt.Step(encParams)
				}
			}
			total += m.trainStep(opt, embeds, gold, encBack)
			n++
		}
		if n > 0 {
			last = total / float64(n)
		}
		if m.Obs != nil {
			m.Obs.Histogram("tagger.train.epoch").ObserveSince(epochStart)
			m.Obs.Gauge("tagger.train.loss").Set(last)
			m.Obs.Counter("tagger.train.epochs.total").Inc()
		}
	}
	m.drop.Train = false
	return last
}

func goldIDs(labels []tokenize.Label, n int) []int {
	if n > len(labels) {
		n = len(labels)
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = int(labels[i])
	}
	return out
}

// infer returns contextual embeddings via the encoder's reentrant path when
// it has one, so Predict writes no shared state.
func infer(enc Encoder, tokens []string) []mat.Vec {
	if ie, ok := enc.(InferEncoder); ok {
		return ie.InferTokens(tokens)
	}
	return enc.EncodeTokens(tokens)
}

// Predict tags a sentence with Viterbi decoding. Tokens beyond the encoder's
// window fall back to O. Predict is reentrant — it writes no model state and
// (when the encoder implements InferEncoder, as *bert.Model does) neither
// does the encoder forward pass — so concurrent goroutines may call it on
// one trained model.
//
// Predict runs entirely on inference kernels: a pooled arena is threaded
// through the encoder (when it implements ArenaEncoder), the BiLSTM, the
// projection, and the Viterbi decode, replacing the training-path Forward
// calls (and their backward caches) the pipeline previously paid for on
// every decode. The arithmetic is identical to the training forward passes,
// so decoded labels are bit-for-bit unchanged.
func (m *Model) Predict(tokens []string) []tokenize.Label {
	return m.PredictAt(tokens, m.cfg.Precision)
}

// PredictAt is Predict at an explicit precision, independent of the
// configured mode — the hook the quant-drift oracle and benchmarks use to
// compare the float64 and quantized paths on one model without mutating it.
// Quantized modes require the encoder to implement QuantEncoder; otherwise
// the decode silently runs at float64.
func (m *Model) PredictAt(tokens []string, p nn.Precision) []tokenize.Label {
	if p.Quantized() {
		if qe, ok := m.enc.(QuantEncoder); ok {
			return m.predictQuant(qe, [][]string{tokens}, p)[0]
		}
	}
	if m.Obs != nil {
		defer m.Obs.Histogram("tagger.predict").ObserveSince(time.Now())
	}
	a := arenaPool.Get().(*nn.Arena)
	a.Reset()
	var embeds []mat.Vec
	if ae, ok := m.enc.(ArenaEncoder); ok {
		embeds = ae.InferTokensArena(tokens, a)
	} else {
		embeds = infer(m.enc, tokens)
	}
	out := make([]tokenize.Label, len(tokens))
	if len(embeds) == 0 {
		arenaPool.Put(a)
		return out
	}
	hs := m.bilstm.InferSeq(embeds, a)
	emissions := m.proj.InferSeq(hs, a)
	path := m.crf.DecodeArena(emissions, a)
	for i, l := range path {
		out[i] = tokenize.Label(l)
	}
	arenaPool.Put(a)
	return out
}

// Evaluate computes exact-match chunk P/R/F1 on a test set (§6.3).
func (m *Model) Evaluate(test []datasets.Example) metrics.PRF {
	gold := make([][]tokenize.Label, len(test))
	pred := make([][]tokenize.Label, len(test))
	for i, ex := range test {
		gold[i] = ex.Labels
		pred[i] = m.Predict(ex.Tokens)
	}
	return metrics.ChunkPRF(gold, pred)
}

// OpineDB is the §6.3 baseline tagger [31]: frozen BERT embeddings with a
// per-token softmax classifier (no BiLSTM, no CRF, no adversarial branch).
type OpineDB struct {
	enc  Encoder
	proj *nn.Linear
	cfg  Config
	gen  atomic.Uint64
}

// NewOpineDB builds the baseline over a (frozen) encoder.
func NewOpineDB(enc Encoder, cfg Config) *OpineDB {
	rng := rand.New(rand.NewSource(cfg.Seed))
	o := &OpineDB{
		enc:  enc,
		proj: nn.NewLinear(rng, "opinedb.proj", enc.EmbeddingDim(), int(tokenize.NumLabels)),
		cfg:  cfg,
	}
	o.gen.Store(nextGen())
	return o
}

// Generation identifies the current weight state (see Model.Generation).
func (o *OpineDB) Generation() uint64 { return o.gen.Load() }

// Train fits the classifier and returns the final epoch's mean loss.
func (o *OpineDB) Train(examples []datasets.Example) float64 {
	o.gen.Store(nextGen())
	defer o.gen.Store(nextGen())
	opt := nn.NewAdam(o.cfg.LR)
	params := o.proj.Params()
	var last float64
	for epoch := 0; epoch < o.cfg.Epochs; epoch++ {
		var total float64
		var n int
		for _, ex := range examples {
			embeds := o.enc.EncodeTokens(ex.Tokens)
			if len(embeds) == 0 {
				continue
			}
			gold := goldIDs(ex.Labels, len(embeds))
			nn.ZeroGrads(params)
			var loss float64
			for i, e := range embeds {
				logits := o.proj.Forward(e)
				l, dLogits := nn.SoftmaxCE(logits, gold[i])
				loss += l
				o.proj.Backward(e, dLogits)
			}
			nn.ClipGrads(params, o.cfg.ClipNorm)
			opt.Step(params)
			total += loss / float64(len(embeds))
			n++
		}
		if n > 0 {
			last = total / float64(n)
		}
	}
	return last
}

// Predict tags each token independently by argmax. Reentrant under the same
// conditions as Model.Predict.
func (o *OpineDB) Predict(tokens []string) []tokenize.Label {
	embeds := infer(o.enc, tokens)
	out := make([]tokenize.Label, len(tokens))
	for i, e := range embeds {
		out[i] = tokenize.Label(o.proj.Forward(e).MaxIdx())
	}
	return out
}

// Evaluate computes exact-match chunk P/R/F1 on a test set.
func (o *OpineDB) Evaluate(test []datasets.Example) metrics.PRF {
	gold := make([][]tokenize.Label, len(test))
	pred := make([][]tokenize.Label, len(test))
	for i, ex := range test {
		gold[i] = ex.Labels
		pred[i] = o.Predict(ex.Tokens)
	}
	return metrics.ChunkPRF(gold, pred)
}
