//go:build race

package tagger

// raceEnabled reports whether the race detector instruments this build;
// allocation-count pins skip under it, since the instrumented runtime
// allocates on its own behalf.
const raceEnabled = true
