package tagger

import (
	"math"
	"testing"

	"saccs/internal/nn"
	"saccs/internal/tokenize"
)

// trainedQuantModel trains one small tagger for the quantized-decode tests.
func trainedQuantModel(t *testing.T) (*Model, [][]string) {
	t.Helper()
	d := smallDataset(t)
	enc := testEncoder(t, d)
	m := New(enc, fastCfg())
	m.Train(d.Train[:capN(len(d.Train), 30)])
	seqs := make([][]string, 0, 6)
	for _, ex := range d.Test[:capN(len(d.Test), 6)] {
		seqs = append(seqs, ex.Tokens)
	}
	return m, seqs
}

// TestPredictQuantAllocsRegression pins the allocation count of a warm
// quantized decode at both precisions: quantize-at-load means the frozen
// int8/f32 weight copies are built once per generation, so the steady state
// allocates only the returned label slice and pool bookkeeping — the same
// <= 16 budget the float64 path holds.
func TestPredictQuantAllocsRegression(t *testing.T) {
	m, seqs := trainedQuantModel(t)
	tokens := seqs[0]
	for _, p := range []nn.Precision{nn.Mixed, nn.Int8} {
		for i := 0; i < 3; i++ {
			m.PredictAt(tokens, p) // warm pooled arenas + frozen weights
		}
		allocs := testing.AllocsPerRun(100, func() { m.PredictAt(tokens, p) })
		if allocs > 16 {
			t.Fatalf("warm PredictAt(%v) allocates %v times per call, want <= 16", p, allocs)
		}
	}
}

// TestQuantSoloMatchesBatch pins the structural identity the quant-drift
// oracle also checks end to end: the quantized kernels are sequence-local,
// so a batched decode must be bit-identical to decoding each sequence alone,
// at every precision.
func TestQuantSoloMatchesBatch(t *testing.T) {
	m, seqs := trainedQuantModel(t)
	for _, p := range []nn.Precision{nn.Float64, nn.Mixed, nn.Int8} {
		batched := m.PredictBatchAt(seqs, p)
		for i, toks := range seqs {
			solo := m.PredictAt(toks, p)
			if len(solo) != len(batched[i]) {
				t.Fatalf("%v seq %d: batch %d labels vs solo %d", p, i, len(batched[i]), len(solo))
			}
			for j := range solo {
				if solo[j] != batched[i][j] {
					t.Fatalf("%v seq %d label %d: batch %v != solo %v", p, i, j, batched[i][j], solo[j])
				}
			}
		}
	}
}

// TestQuantWeightsFollowRetrain verifies quantize-at-load regenerates the
// frozen inference weights when the generation bumps: after further
// training moves the float64 weights, the quantized emissions must track
// the NEW float64 emissions closely — a stale frozen copy from the previous
// generation would diverge by the training step's full weight delta, orders
// of magnitude beyond quantization noise.
func TestQuantWeightsFollowRetrain(t *testing.T) {
	d := smallDataset(t)
	enc := testEncoder(t, d)
	m := New(enc, fastCfg())
	m.Train(d.Train[:capN(len(d.Train), 20)])
	tokens := d.Test[0].Tokens

	bound := func() (float64, float64) {
		ef := m.EmissionsAt(tokens, nn.Float64)
		eq := m.EmissionsAt(tokens, nn.Mixed)
		var maxErr, maxAbs float64
		for t := range ef {
			for j := range ef[t] {
				if a := math.Abs(ef[t][j]); a > maxAbs {
					maxAbs = a
				}
				if dd := math.Abs(eq[t][j] - ef[t][j]); dd > maxErr {
					maxErr = dd
				}
			}
		}
		return maxErr, maxAbs
	}
	m.PredictAt(tokens, nn.Mixed) // freeze quantized weights for this generation
	if err, scale := bound(); err > 0.05*scale {
		t.Fatalf("pre-retrain quantized emissions off by %v (scale %v)", err, scale)
	}
	g0 := m.Generation()
	m.Train(d.Train[:capN(len(d.Train), 20)])
	if m.Generation() == g0 {
		t.Fatal("Train did not bump the generation")
	}
	// The frozen copies must now be rebuilt from the post-train weights.
	if err, scale := bound(); err > 0.05*scale {
		t.Fatalf("post-retrain quantized emissions off by %v (scale %v) — stale frozen weights?", err, scale)
	}
}

// TestReferenceViewPinsFloat64 verifies the view index builds extract
// through: whatever precision the model is configured to serve, the view
// decodes on the float64 reference path, solo and batched, and reports the
// model's generation.
func TestReferenceViewPinsFloat64(t *testing.T) {
	m, seqs := trainedQuantModel(t)
	m.SetPrecision(nn.Int8)
	v := ReferenceView{M: m}
	if v.Generation() != m.Generation() {
		t.Fatal("ReferenceView reports a different generation")
	}
	eq := func(a, b []tokenize.Label) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	for i, toks := range seqs {
		if !eq(v.Predict(toks), m.PredictAt(toks, nn.Float64)) {
			t.Fatalf("seq %d: ReferenceView.Predict != PredictAt(Float64)", i)
		}
	}
	vb := v.PredictBatch(seqs)
	fb := m.PredictBatchAt(seqs, nn.Float64)
	for i := range seqs {
		if !eq(vb[i], fb[i]) {
			t.Fatalf("seq %d: ReferenceView.PredictBatch != PredictBatchAt(Float64)", i)
		}
	}
}
