//go:build !race

package tagger

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = false
