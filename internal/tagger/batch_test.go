package tagger

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestPredictBatchMatchesPredict pins batched decoding against the serial
// path label-for-label across adversarial batch shapes. Because the batch
// kernels are bit-exact (internal/nn and internal/bert differential tests),
// label equality here is the end-to-end corollary the extraction batcher
// depends on.
func TestPredictBatchMatchesPredict(t *testing.T) {
	m, _ := benchModel()
	words := []string{"i", "want", "an", "italian", "restaurant", "in", "montreal",
		"with", "delicious", "food", "and", "nice", "staff", "the", "is", "friendly"}
	rng := rand.New(rand.NewSource(9))
	mkSeq := func(n int) []string {
		s := make([]string, n)
		for i := range s {
			s[i] = words[rng.Intn(len(words))]
		}
		return s
	}
	batches := [][][]string{
		{},
		{mkSeq(5)},
		{mkSeq(3), mkSeq(7)},
		{mkSeq(0), mkSeq(4), mkSeq(1)},
		{mkSeq(13), mkSeq(2), mkSeq(60), mkSeq(8)}, // one beyond MaxLen=48
		{mkSeq(6), mkSeq(6), mkSeq(6), mkSeq(6), mkSeq(6), mkSeq(6), mkSeq(6), mkSeq(6)},
	}
	for bi, seqs := range batches {
		got := m.PredictBatch(seqs)
		if len(got) != len(seqs) {
			t.Fatalf("batch %d: %d results for %d sequences", bi, len(got), len(seqs))
		}
		for s, seq := range seqs {
			want := m.Predict(seq)
			if fmt.Sprint(want) != fmt.Sprint(got[s]) {
				t.Fatalf("batch %d seq %d:\n got %v\nwant %v", bi, s, got[s], want)
			}
		}
	}
}

// TestPredictBatchAllocs pins the allocation budget of a warm batched
// decode: the outs slice plus one label slice per sequence. Everything else
// — packed activations, GEMM scratch, packed weights, Viterbi state — must
// come from the pooled arena.
func TestPredictBatchAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by the race detector's own bookkeeping")
	}
	m, tokens := benchModel()
	seqs := [][]string{tokens, tokens[:7], tokens[2:11], tokens[1:6]}
	for i := 0; i < 3; i++ {
		m.PredictBatch(seqs) // warm the pooled arena
	}
	avg := testing.AllocsPerRun(20, func() { m.PredictBatch(seqs) })
	// 1 outs slice + 4 label slices, plus a little slack for the runtime.
	if avg > 8 {
		t.Fatalf("warm PredictBatch allocates %.1f times per call, want <= 8", avg)
	}
}

// BenchmarkPredictBatch4 measures the per-sequence cost of a batch-of-4
// decode at production dimensions — the number behind the ISSUE's "cold
// tagger.decode ≥3x faster at batch ≥4" acceptance line, to be compared
// against BenchmarkPredict.
func BenchmarkPredictBatch4(b *testing.B) {
	m, tokens := benchModel()
	seqs := [][]string{tokens, tokens, tokens, tokens}
	for i := 0; i < 3; i++ {
		m.PredictBatch(seqs)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictBatch(seqs)
	}
}

// BenchmarkPredictBatch8 is the batch-8 point of the same curve: deeper
// batches amortize the per-batch fixed costs (arena, packs, recurrent GEMM
// call overhead) further than batch 4.
func BenchmarkPredictBatch8(b *testing.B) {
	m, tokens := benchModel()
	seqs := [][]string{tokens, tokens, tokens, tokens, tokens, tokens, tokens, tokens}
	for i := 0; i < 3; i++ {
		m.PredictBatch(seqs)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictBatch(seqs)
	}
}
