package tagger

import (
	"time"

	"saccs/internal/mat"
	"saccs/internal/nn"
	"saccs/internal/tokenize"
)

// BatchArenaEncoder is an encoder that can run several sequences through one
// shared forward pass, returning packed per-token hidden states addressed by
// starts/lens; *bert.Model satisfies it. When the tagger's encoder implements
// it, PredictBatch fuses the whole batch's linear algebra into batch GEMMs.
type BatchArenaEncoder interface {
	InferBatchTokensArena(seqs [][]string, a *nn.Arena) (*mat.Mat, []int, []int)
}

// PredictBatch decodes several token sequences in one shared forward pass:
// embeddings, transformer blocks, BiLSTM, and projection run over all
// sequences at once (internal/nn's and internal/bert's InferBatch kernels),
// then Viterbi decodes each sequence individually. Per sequence the result is
// bit-identical to Predict — the batch kernels execute the serial kernels'
// float operations in the same per-element order, which the TestPredictBatch
// differential tests and oracle/extract-batch-live pin. Like Predict it
// writes no receiver state and is safe for any number of concurrent callers.
//
// Encoders that cannot batch fall back to a serial Predict loop, as does the
// degenerate single-sequence batch (where the shared pass has nothing to
// amortize).
func (m *Model) PredictBatch(seqs [][]string) [][]tokenize.Label {
	return m.PredictBatchAt(seqs, m.cfg.Precision)
}

// PredictBatchAt is PredictBatch at an explicit precision (see PredictAt).
func (m *Model) PredictBatchAt(seqs [][]string, p nn.Precision) [][]tokenize.Label {
	if p.Quantized() && len(seqs) > 0 {
		if qe, ok := m.enc.(QuantEncoder); ok {
			return m.predictQuant(qe, seqs, p)
		}
	}
	outs := make([][]tokenize.Label, len(seqs))
	be, ok := m.enc.(BatchArenaEncoder)
	if !ok || len(seqs) < 2 {
		for i, s := range seqs {
			outs[i] = m.PredictAt(s, nn.Float64)
		}
		return outs
	}
	if m.Obs != nil {
		defer m.Obs.Histogram("tagger.predict").ObserveSince(time.Now())
	}
	a := arenaPool.Get().(*nn.Arena)
	a.Reset()
	embeds, starts, lens := be.InferBatchTokensArena(seqs, a)
	hs := m.bilstm.InferBatch(embeds, starts, lens, a)
	emissions := m.proj.InferBatch(hs, a)
	for s, seq := range seqs {
		out := make([]tokenize.Label, len(seq))
		if n := lens[s]; n > 0 {
			em := a.Seq(n)
			for t := 0; t < n; t++ {
				em[t] = emissions.Row(starts[s] + t)
			}
			path := m.crf.DecodeArena(em, a)
			for i, l := range path {
				out[i] = tokenize.Label(l)
			}
		}
		outs[s] = out
	}
	arenaPool.Put(a)
	return outs
}
