package tagger

import (
	"math/rand"
	"testing"

	"saccs/internal/bert"
	"saccs/internal/tokenize"
)

// BenchmarkPredict measures one cold decode at production model dimensions
// (bert.DefaultConfig + tagger.DefaultConfig): the `tagger.decode` stage of
// BENCH.json. Run with -cpuprofile to see the kernel breakdown.
func BenchmarkPredict(b *testing.B) {
	m, tokens := benchModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(tokens)
	}
}

func benchModel() (*Model, []string) {
	words := []string{"i", "want", "an", "italian", "restaurant", "in", "montreal",
		"with", "delicious", "food", "and", "nice", "staff", "the", "is", "friendly"}
	v := tokenize.NewVocab()
	v.AddAll(words)
	enc := bert.New(rand.New(rand.NewSource(7)), bert.DefaultConfig(), v)
	m := New(enc, DefaultConfig())
	tokens := []string{"i", "want", "an", "italian", "restaurant", "in", "montreal",
		"with", "delicious", "food", "and", "nice", "staff"}
	for i := 0; i < 3; i++ {
		m.Predict(tokens)
	}
	return m, tokens
}
