// Package crowd simulates the Yandex Toloka crowdsourcing of §6.2 that
// produced the paper's Table 2 ground truth: for every (subjective tag,
// review) pair, three simulated workers judge the review's relevance to the
// tag on the four-level scale {0, 1/3, 2/3, 1}; the majority vote is kept,
// and sat(tag, entity) is the mean over the entity's reviews. Workers
// observe the generator's gold mention structure through per-worker noise,
// reproducing the label-quality caveats the paper discusses.
package crowd

import (
	"math/rand"
	"sort"

	"saccs/internal/lexicon"
	"saccs/internal/yelp"
)

// Levels is the §6.2 relevance scale.
var Levels = []float64{0, 1.0 / 3, 2.0 / 3, 1}

// Config tunes the simulation.
type Config struct {
	// Workers per (tag, review) pair (paper: 3).
	Workers int
	// NoiseProb is the chance a worker reports an adjacent level instead of
	// the true one.
	NoiseProb float64
	// Seed drives worker randomness.
	Seed int64
}

// DefaultConfig mirrors the paper's setup.
func DefaultConfig() Config {
	return Config{Workers: 3, NoiseProb: 0.15, Seed: 99}
}

// Truth holds crowd-aggregated sat scores: Sat[tagName][entityID] ∈ [0,1].
type Truth struct {
	Sat map[string]map[string]float64
}

// Gains returns the per-entity mean sat over the query's tags — the gain
// function of Eq. 10.
func (t *Truth) Gains(tags []string, entityIDs []string) map[string]float64 {
	out := make(map[string]float64, len(entityIDs))
	for _, e := range entityIDs {
		var sum float64
		for _, tag := range tags {
			if m, ok := t.Sat[tag]; ok {
				sum += m[e]
			}
		}
		if len(tags) > 0 {
			sum /= float64(len(tags))
		}
		out[e] = sum
	}
	return out
}

// GroundTruth runs the simulated crowdsourcing over every (feature tag,
// entity) pair in the world. Tags are the canonical feature names
// ("delicious food", "nice staff", ...), mirroring the 18 tags of §6.2.
func GroundTruth(w *yelp.World, cfg Config) *Truth {
	rng := rand.New(rand.NewSource(cfg.Seed))
	tax := lexicon.DefaultTaxonomy()
	truth := &Truth{Sat: map[string]map[string]float64{}}
	for _, f := range w.Domain.Features {
		m := make(map[string]float64, len(w.Entities))
		for _, e := range w.Entities {
			var sum float64
			for _, r := range e.Reviews {
				trueLevel := reviewRelevance(w.Domain, tax, r, f)
				sum += majorityVote(rng, cfg, trueLevel)
			}
			if len(e.Reviews) > 0 {
				m[e.ID] = sum / float64(len(e.Reviews))
			}
		}
		truth.Sat[f.Name] = m
	}
	return truth
}

// reviewRelevance computes the level an ideal worker would assign: a
// positive mention of the tag's feature is perfect relevance (1); a negative
// mention of the same feature is strong *inverse* evidence (0); a positive
// mention of a conceptually related feature (shared coarse category, e.g.
// slow service vs terrible service) is weak relevance (1/3). The maximum
// over mentions wins, as a worker reports the strongest signal they saw.
func reviewRelevance(domain *lexicon.Domain, tax *lexicon.Taxonomy, r *yelp.Review, f lexicon.Feature) float64 {
	best := 0.0
	for _, s := range r.Sentences {
		for _, m := range s.Mentions {
			var level float64
			switch {
			case m.FeatureID == f.ID && m.Positive:
				level = 1
			case m.FeatureID == f.ID:
				level = 0
			case m.Positive && related(domain, tax, m.FeatureID, f):
				level = 1.0 / 3
			}
			if level > best {
				best = level
			}
		}
	}
	return best
}

// coarseCategories are the top-level aspect groups; sharing only one of
// these is not enough to make two features related.
var coarseCategories = map[string]bool{
	"offering": true, "people": true, "place": true, "value": true,
	"facility": true, "hardware": true, "entity-quality": true,
}

// related reports whether two features concern the same concrete aspect
// concept — the paper's example relates "slow service" to "terrible service"
// (same aspect, different opinions), not service to food.
func related(domain *lexicon.Domain, tax *lexicon.Taxonomy, otherID int, f lexicon.Feature) bool {
	if otherID < 0 || otherID >= len(domain.Features) {
		return false
	}
	other := domain.Features[otherID]
	lca := tax.LCA(other.Aspect, f.Aspect)
	return lca != "" && !coarseCategories[lca]
}

// majorityVote simulates cfg.Workers noisy workers judging trueLevel and
// aggregates by majority, breaking ties toward the lower level (the
// conservative reading).
func majorityVote(rng *rand.Rand, cfg Config, trueLevel float64) float64 {
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	votes := map[float64]int{}
	for w := 0; w < workers; w++ {
		votes[workerJudgment(rng, cfg.NoiseProb, trueLevel)]++
	}
	type kv struct {
		level float64
		n     int
	}
	var counts []kv
	for l, n := range votes {
		counts = append(counts, kv{l, n})
	}
	sort.Slice(counts, func(i, j int) bool {
		if counts[i].n != counts[j].n {
			return counts[i].n > counts[j].n
		}
		return counts[i].level < counts[j].level
	})
	return counts[0].level
}

// workerJudgment reports the true level, or with NoiseProb an adjacent one.
func workerJudgment(rng *rand.Rand, noise float64, trueLevel float64) float64 {
	idx := levelIndex(trueLevel)
	if rng.Float64() >= noise {
		return Levels[idx]
	}
	if idx == 0 {
		return Levels[1]
	}
	if idx == len(Levels)-1 {
		return Levels[len(Levels)-2]
	}
	if rng.Intn(2) == 0 {
		return Levels[idx-1]
	}
	return Levels[idx+1]
}

func levelIndex(level float64) int {
	best, bi := 2.0, 0
	for i, l := range Levels {
		d := level - l
		if d < 0 {
			d = -d
		}
		if d < best {
			best, bi = d, i
		}
	}
	return bi
}
