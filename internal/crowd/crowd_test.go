package crowd

import (
	"math"
	"math/rand"
	"testing"

	"saccs/internal/yelp"
)

func TestLevelsScale(t *testing.T) {
	if len(Levels) != 4 {
		t.Fatal("§6.2 uses a four-level scale")
	}
	want := []float64{0, 1.0 / 3, 2.0 / 3, 1}
	for i, l := range Levels {
		if math.Abs(l-want[i]) > 1e-12 {
			t.Fatalf("level %d = %v", i, l)
		}
	}
}

func TestWorkerJudgmentNoNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, l := range Levels {
		for trial := 0; trial < 10; trial++ {
			if got := workerJudgment(rng, 0, l); got != l {
				t.Fatalf("noise-free worker must report truth: %v -> %v", l, got)
			}
		}
	}
}

func TestWorkerJudgmentNoiseAdjacent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		got := workerJudgment(rng, 1, 1.0/3)
		if got != 0 && math.Abs(got-2.0/3) > 1e-12 {
			t.Fatalf("noisy judgment must be adjacent: %v", got)
		}
	}
	// Boundary levels can only move inward.
	for trial := 0; trial < 50; trial++ {
		if got := workerJudgment(rng, 1, 0); math.Abs(got-1.0/3) > 1e-12 {
			t.Fatalf("level 0 must move to 1/3: %v", got)
		}
		if got := workerJudgment(rng, 1, 1); math.Abs(got-2.0/3) > 1e-12 {
			t.Fatalf("level 1 must move to 2/3: %v", got)
		}
	}
}

func TestMajorityVoteRecoversTruthAtLowNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := Config{Workers: 3, NoiseProb: 0.1}
	agree := 0
	const trials = 500
	for trial := 0; trial < trials; trial++ {
		if majorityVote(rng, cfg, 2.0/3) == 2.0/3 {
			agree++
		}
	}
	if float64(agree)/trials < 0.85 {
		t.Fatalf("majority vote too noisy: %d/%d", agree, trials)
	}
}

func TestGroundTruthTracksLatentQuality(t *testing.T) {
	w := yelp.Generate(yelp.FastConfig())
	truth := GroundTruth(w, DefaultConfig())
	// For the "delicious food" tag, entities with high latent food quality
	// must on average receive higher sat than entities with low quality.
	tag := w.Domain.Features[0].Name
	sat := truth.Sat[tag]
	if len(sat) == 0 {
		t.Fatal("no sat scores")
	}
	var hi, lo []float64
	for _, e := range w.Entities {
		s, ok := sat[e.ID]
		if !ok {
			continue
		}
		if e.Quality[0] > 0.65 {
			hi = append(hi, s)
		} else if e.Quality[0] < 0.35 {
			lo = append(lo, s)
		}
	}
	if len(hi) == 0 || len(lo) == 0 {
		t.Skip("degenerate world sample")
	}
	if mean(hi) <= mean(lo) {
		t.Fatalf("sat does not track latent quality: hi=%v lo=%v", mean(hi), mean(lo))
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestGroundTruthAllTagsAllEntities(t *testing.T) {
	w := yelp.Generate(yelp.FastConfig())
	truth := GroundTruth(w, DefaultConfig())
	if len(truth.Sat) != len(w.Domain.Features) {
		t.Fatalf("tags covered: %d", len(truth.Sat))
	}
	for tag, m := range truth.Sat {
		for id, s := range m {
			if s < 0 || s > 1 {
				t.Fatalf("sat out of range for %s/%s: %v", tag, id, s)
			}
		}
	}
}

func TestGainsMeanOverTags(t *testing.T) {
	truth := &Truth{Sat: map[string]map[string]float64{
		"t1": {"e1": 1, "e2": 0},
		"t2": {"e1": 0.5, "e2": 0.5},
	}}
	g := truth.Gains([]string{"t1", "t2"}, []string{"e1", "e2"})
	if math.Abs(g["e1"]-0.75) > 1e-12 || math.Abs(g["e2"]-0.25) > 1e-12 {
		t.Fatalf("gains: %v", g)
	}
	if g2 := truth.Gains(nil, []string{"e1"}); len(g2) != 1 || g2["e1"] != 0 {
		t.Fatalf("empty tag list: %v", g2)
	}
}

func TestGroundTruthDeterministic(t *testing.T) {
	w := yelp.Generate(yelp.FastConfig())
	a := GroundTruth(w, DefaultConfig())
	b := GroundTruth(w, DefaultConfig())
	for tag, m := range a.Sat {
		for id, s := range m {
			if b.Sat[tag][id] != s {
				t.Fatal("non-deterministic ground truth")
			}
		}
	}
}
