package lexicon

// Restaurants returns the restaurant domain: the 18 subjective features the
// paper takes from Moura & Souki [39] for its Table 2 evaluation ("delicious
// food", "creative cooking", "varied menu", "romantic ambiance", ...), with
// the surface variants — including the domain idioms of §4.2 ("a killer",
// "la carte") — that the tagger must learn.
func Restaurants() *Domain {
	return &Domain{
		Name: "restaurants",
		Features: []Feature{
			{
				ID: 0, Name: "delicious food", Aspect: "food", Opinion: "delicious",
				AspectSyns: []string{"food", "dishes", "plates of food", "meal", "cooking", "pizza", "pasta", "la carte"},
				PosOps:     []string{"delicious", "tasty", "really good", "phenomenal", "amazing", "flavorful", "a killer"},
				NegOps:     []string{"bland", "tasteless", "mediocre", "disappointing"},
			},
			{
				ID: 1, Name: "creative cooking", Aspect: "cooking", Opinion: "creative",
				AspectSyns: []string{"cooking", "cuisine", "recipes", "culinary style", "kitchen"},
				PosOps:     []string{"creative", "inventive", "original", "imaginative", "innovative"},
				NegOps:     []string{"unoriginal", "boring", "predictable"},
			},
			{
				ID: 2, Name: "varied menu", Aspect: "menu", Opinion: "varied",
				AspectSyns: []string{"menu", "selection", "choices", "offerings", "la carte"},
				PosOps:     []string{"varied", "extensive", "diverse", "wide", "rich"},
				NegOps:     []string{"limited", "narrow", "short", "meager"},
			},
			{
				ID: 3, Name: "romantic ambiance", Aspect: "ambiance", Opinion: "romantic",
				AspectSyns: []string{"ambiance", "atmosphere", "mood", "setting", "vibe"},
				PosOps:     []string{"romantic", "intimate", "charming", "dreamy", "candlelit"},
				NegOps:     []string{"sterile", "cold", "unromantic"},
			},
			{
				ID: 4, Name: "nice staff", Aspect: "staff", Opinion: "nice",
				AspectSyns: []string{"staff", "waiters", "waitstaff", "servers", "personnel", "crew"},
				PosOps:     []string{"nice", "friendly", "helpful", "professional", "welcoming", "attentive"},
				NegOps:     []string{"rude", "unhelpful", "dismissive", "cold"},
			},
			{
				ID: 5, Name: "quick service", Aspect: "service", Opinion: "quick",
				AspectSyns: []string{"service", "wait times", "turnaround"},
				PosOps:     []string{"quick", "fast", "prompt", "speedy", "efficient", "swift"},
				NegOps:     []string{"slow", "sluggish", "a bit slow", "terrible"},
			},
			{
				ID: 6, Name: "clean plates", Aspect: "plates", Opinion: "clean",
				AspectSyns: []string{"plates", "cutlery", "glasses", "tableware", "silverware"},
				PosOps:     []string{"clean", "spotless", "immaculate", "pristine", "shiny"},
				NegOps:     []string{"dirty", "greasy", "smudged", "stained"},
			},
			{
				ID: 7, Name: "fair prices", Aspect: "prices", Opinion: "fair",
				AspectSyns: []string{"prices", "bill", "cost", "pricing", "check"},
				PosOps:     []string{"fair", "reasonable", "affordable", "honest", "decent"},
				NegOps:     []string{"steep", "inflated", "outrageous", "overpriced"},
			},
			{
				ID: 8, Name: "good view", Aspect: "view", Opinion: "good",
				AspectSyns: []string{"view", "scenery", "panorama", "outlook", "terrace view"},
				PosOps:     []string{"good", "stunning", "breathtaking", "lovely", "gorgeous"},
				NegOps:     []string{"bleak", "dull", "obstructed"},
			},
			{
				ID: 9, Name: "quiet atmosphere", Aspect: "atmosphere", Opinion: "quiet",
				AspectSyns: []string{"atmosphere", "noise level", "acoustics", "ambiance"},
				PosOps:     []string{"quiet", "calm", "peaceful", "relaxed", "serene", "superb"},
				NegOps:     []string{"noisy", "loud", "deafening", "chaotic"},
			},
			{
				ID: 10, Name: "fresh ingredients", Aspect: "ingredients", Opinion: "fresh",
				AspectSyns: []string{"ingredients", "produce", "vegetables", "seafood", "fish"},
				PosOps:     []string{"fresh", "crisp", "seasonal", "garden fresh", "organic"},
				NegOps:     []string{"stale", "frozen", "wilted", "canned"},
			},
			{
				ID: 11, Name: "generous portions", Aspect: "portions", Opinion: "generous",
				AspectSyns: []string{"portions", "servings", "helpings", "plate sizes"},
				PosOps:     []string{"generous", "huge", "hearty", "ample", "big"},
				NegOps:     []string{"tiny", "small", "stingy", "minuscule"},
			},
			{
				ID: 12, Name: "cozy decor", Aspect: "decor", Opinion: "cozy",
				AspectSyns: []string{"decor", "interior", "furnishings", "design", "decoration"},
				PosOps:     []string{"cozy", "beautiful", "warm", "tasteful", "elegant", "stylish"},
				NegOps:     []string{"shabby", "dated", "tacky", "drab"},
			},
			{
				ID: 13, Name: "fast delivery", Aspect: "delivery", Opinion: "fast",
				AspectSyns: []string{"delivery", "takeout", "courier", "delivery times"},
				PosOps:     []string{"fast", "rapid", "punctual", "on time", "quick"},
				NegOps:     []string{"late", "slow", "unreliable", "delayed"},
			},
			{
				ID: 14, Name: "friendly owner", Aspect: "owner", Opinion: "friendly",
				AspectSyns: []string{"owner", "manager", "host", "chef", "maitre d"},
				PosOps:     []string{"friendly", "charming", "gracious", "warm", "passionate"},
				NegOps:     []string{"grumpy", "absent", "arrogant"},
			},
			{
				ID: 15, Name: "extensive wine list", Aspect: "wine list", Opinion: "extensive",
				AspectSyns: []string{"wine list", "wine selection", "drinks", "cocktails", "wines"},
				PosOps:     []string{"extensive", "curated", "impressive", "remarkable", "well chosen"},
				NegOps:     []string{"thin", "poor", "limited"},
			},
			{
				ID: 16, Name: "authentic cuisine", Aspect: "cuisine", Opinion: "authentic",
				AspectSyns: []string{"cuisine", "flavors", "recipes", "dishes", "specialties"},
				PosOps:     []string{"authentic", "traditional", "genuine", "true to its roots", "homestyle"},
				NegOps:     []string{"fake", "watered down", "generic"},
			},
			{
				ID: 17, Name: "comfortable seating", Aspect: "seating", Opinion: "comfortable",
				AspectSyns: []string{"seating", "chairs", "tables", "booths", "bar stools"},
				PosOps:     []string{"comfortable", "spacious", "plush", "roomy", "comfy"},
				NegOps:     []string{"cramped", "rickety", "hard", "uncomfortable"},
			},
		},
		Fillers: []string{
			"here", "last night", "for dinner", "with friends", "on a date",
			"for lunch", "again", "every time", "without a doubt", "honestly",
		},
		Entities: []string{
			"Vue du Monde", "Anchovy", "Pizza Hut", "Kazuki's", "McDonald's",
			"Trattoria Roma", "La Piazza", "Osteria Nonna", "Il Forno", "Casa Mia",
			"Bella Napoli", "Da Vinci", "Little Venice", "Porto Fino", "San Marco",
			"Gusto", "Amalfi", "Dolce Vita", "Pasta Bar", "Luna Rossa",
		},
	}
}
