// Package lexicon holds the domain knowledge the SACCS reproduction is built
// on: the 18 subjective restaurant features of Moura & Souki [39] used in the
// paper's Table 2 evaluation, per-domain aspect/opinion lexicons for the
// S1–S4 datasets of Table 3 (restaurants, electronics, hotels), a synonym
// thesaurus for IR query expansion [11], and the concept taxonomy behind the
// conceptual similarity of §3.1 (pizza IS-A food).
package lexicon

import "strings"

// Feature is one inherently subjective attribute of an entity: a canonical
// subjective tag (aspect + opinion) together with the aspect and opinion
// surface variants review writers use for it.
type Feature struct {
	// ID indexes the feature in an entity's latent quality vector.
	ID int
	// Name is the canonical subjective tag, e.g. "delicious food".
	Name string
	// Aspect is the canonical aspect term, e.g. "food".
	Aspect string
	// Opinion is the canonical positive opinion term, e.g. "delicious".
	Opinion string
	// AspectSyns are surface variants of the aspect (may be multi-word).
	AspectSyns []string
	// PosOps are positive opinion variants (may be multi-word).
	PosOps []string
	// NegOps are negative opinion variants.
	NegOps []string
}

// Domain bundles the lexical knowledge of one review domain.
type Domain struct {
	// Name identifies the domain ("restaurants", "electronics", "hotels").
	Name string
	// Features are the domain's subjective features.
	Features []Feature
	// Fillers are sentence glue words specific to the domain.
	Fillers []string
	// Entities are name fragments used to mint entity names.
	Entities []string
}

// FeatureByName returns the feature whose canonical tag equals name.
func (d *Domain) FeatureByName(name string) (Feature, bool) {
	for _, f := range d.Features {
		if f.Name == name {
			return f, true
		}
	}
	return Feature{}, false
}

// AspectVariants returns every aspect surface form of every feature, deduped.
func (d *Domain) AspectVariants() []string {
	return dedup(d.collect(func(f Feature) []string { return f.AspectSyns }))
}

// OpinionVariants returns every opinion surface form (positive and negative).
func (d *Domain) OpinionVariants() []string {
	return dedup(d.collect(func(f Feature) []string {
		out := append([]string(nil), f.PosOps...)
		return append(out, f.NegOps...)
	}))
}

func (d *Domain) collect(get func(Feature) []string) []string {
	var out []string
	for _, f := range d.Features {
		out = append(out, get(f)...)
	}
	return out
}

func dedup(in []string) []string {
	seen := make(map[string]bool, len(in))
	out := in[:0]
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// Synonyms returns thesaurus expansions for a word across all built-in
// domains: every other surface form of any feature that lists the word as an
// aspect or opinion variant. This powers the IR baseline's query expansion.
func Synonyms(word string) []string {
	word = strings.ToLower(word)
	var out []string
	add := func(vs []string) {
		has := false
		for _, v := range vs {
			if v == word {
				has = true
				break
			}
		}
		if !has {
			return
		}
		for _, v := range vs {
			if v != word {
				out = append(out, v)
			}
		}
	}
	for _, d := range []*Domain{Restaurants(), Electronics(), Hotels()} {
		for _, f := range d.Features {
			add(f.AspectSyns)
			add(f.PosOps)
			add(f.NegOps)
		}
	}
	return dedup(out)
}

// PolarityLexicon maps every opinion word that appears across the built-in
// domains to its sentiment orientation: +1 for positive variants, −1 for
// negative ones. Words used with both orientations (rare) resolve by
// majority and drop to 0 on a tie. Stop-like tokens inside multi-word
// variants ("a killer") are skipped.
func PolarityLexicon() map[string]int {
	votes := map[string]int{}
	skip := map[string]bool{"a": true, "an": true, "the": true, "of": true,
		"to": true, "its": true, "bit": true, "on": true, "in": true}
	addWords := func(variant string, v int) {
		for _, w := range strings.Fields(variant) {
			if !skip[w] {
				votes[w] += v
			}
		}
	}
	for _, d := range []*Domain{Restaurants(), Electronics(), Hotels()} {
		for _, f := range d.Features {
			for _, o := range f.PosOps {
				addWords(o, 1)
			}
			for _, o := range f.NegOps {
				addWords(o, -1)
			}
		}
	}
	out := make(map[string]int, len(votes))
	for w, v := range votes {
		switch {
		case v > 0:
			out[w] = 1
		case v < 0:
			out[w] = -1
		}
	}
	return out
}
