package lexicon

// Taxonomy is the IS-A concept graph behind the conceptual similarity of
// §3.1: in addition to the individual meaning of words it records their
// nature, e.g. pizza IS-A food, so "amazing pizza" can be matched to the
// index tag "good food".
//
// Precompute memoizes every known concept's hypernym chain and depth; with
// the memo in place Ancestors, Depth, LCA, and WuPalmer are allocation-free,
// which is what keeps the Eq. 1 index build's similarity scans off the heap.
// Any AddIsA invalidates the memo (queries fall back to the walking paths)
// until Precompute runs again.
type Taxonomy struct {
	parent map[string]string
	// chains and depth are the Precompute memo: the full hypernym chain
	// (starting with the concept itself) and root distance of every concept
	// appearing anywhere in the graph. Both nil until Precompute.
	chains map[string][]string
	depth  map[string]int
}

// NewTaxonomy returns an empty taxonomy.
func NewTaxonomy() *Taxonomy {
	return &Taxonomy{parent: make(map[string]string)}
}

// AddIsA records child IS-A parent. Re-adding overwrites the previous parent.
func (t *Taxonomy) AddIsA(child, parent string) {
	t.parent[child] = parent
	t.chains, t.depth = nil, nil // invalidate memoized chains and depths
}

// Parent returns the direct hypernym of c, or "" when c is a root or unknown.
func (t *Taxonomy) Parent(c string) string { return t.parent[c] }

// Precompute memoizes the hypernym chain and depth of every concept in the
// graph — children and parents alike, so every element of every chain is
// covered. Call it after the last AddIsA; subsequent similarity queries
// then allocate nothing.
func (t *Taxonomy) Precompute() {
	t.chains, t.depth = nil, nil // force the walking paths below
	chains := make(map[string][]string, 2*len(t.parent))
	depth := make(map[string]int, 2*len(t.parent))
	add := func(c string) {
		if _, ok := chains[c]; ok {
			return
		}
		ch := t.Ancestors(c)
		chains[c] = ch
		depth[c] = len(ch) - 1
	}
	for child, parent := range t.parent {
		add(child)
		add(parent)
	}
	t.chains, t.depth = chains, depth
}

// Ancestors returns the hypernym chain of c starting with c itself.
// Cycles are broken defensively. After Precompute the chain of a known
// concept is the shared memoized slice — callers must not mutate it.
func (t *Taxonomy) Ancestors(c string) []string {
	if t.chains != nil {
		if ch, ok := t.chains[c]; ok {
			return ch
		}
	}
	var out []string
	seen := make(map[string]bool)
	for c != "" && !seen[c] {
		seen[c] = true
		out = append(out, c)
		c = t.parent[c]
	}
	return out
}

// Depth returns the number of IS-A hops from c to its root (root depth 0).
// Unknown concepts have depth 0.
func (t *Taxonomy) Depth(c string) int {
	if t.depth != nil && c != "" {
		return t.depth[c] // unknown concepts are absent and read back 0
	}
	return len(t.Ancestors(c)) - 1
}

// LCA returns the lowest common ancestor of a and b, or "" when their chains
// are disjoint (including when either is unknown to the taxonomy).
func (t *Taxonomy) LCA(a, b string) string {
	if t.chains != nil {
		ca, okA := t.chains[a]
		cb, okB := t.chains[b]
		if !okA || !okB {
			// An unknown concept's chain is just itself, and it cannot
			// appear inside any memoized chain (every chain element is a
			// memo key), so the only possible common ancestor is a == b.
			if a == b && a != "" {
				return a
			}
			return ""
		}
		// First element of b's chain present in a's chain — the same scan
		// order as the map-based fallback below, without the map.
		for _, c := range cb {
			for _, x := range ca {
				if x == c {
					return c
				}
			}
		}
		return ""
	}
	onA := make(map[string]bool)
	for _, c := range t.Ancestors(a) {
		onA[c] = true
	}
	for _, c := range t.Ancestors(b) {
		if onA[c] {
			return c
		}
	}
	return ""
}

// WuPalmer returns the Wu–Palmer similarity between concepts a and b:
// 2·depth(lca) / (depth(a)+depth(b)), in [0,1]. Identical concepts score 1;
// concepts with no common ancestor score 0.
func (t *Taxonomy) WuPalmer(a, b string) float64 {
	if a == b && a != "" {
		return 1
	}
	lca := t.LCA(a, b)
	if lca == "" {
		return 0
	}
	da, db, dl := t.Depth(a), t.Depth(b), t.Depth(lca)
	denom := float64(da + db)
	if denom == 0 {
		return 1 // both are the shared root
	}
	return 2 * float64(dl) / denom
}

// Has reports whether the taxonomy knows concept c (as a child or a parent).
func (t *Taxonomy) Has(c string) bool {
	if _, ok := t.parent[c]; ok {
		return true
	}
	for _, p := range t.parent {
		if p == c {
			return true
		}
	}
	return false
}

// DefaultTaxonomy builds the built-in concept graph from all three domains:
// every aspect variant IS-A its feature's canonical aspect, every opinion
// variant IS-A its feature's canonical opinion, canonical opinions of the
// same polarity share a polarity concept, and canonical aspects are grouped
// under coarse categories (offering, people, place, value, facility).
func DefaultTaxonomy() *Taxonomy {
	t := NewTaxonomy()

	coarse := map[string]string{
		// restaurants
		"food": "offering", "cooking": "offering", "menu": "offering",
		"ingredients": "offering", "portions": "offering", "cuisine": "offering",
		"wine list": "offering", "delivery": "offering",
		"staff": "people", "owner": "people",
		"ambiance": "place", "atmosphere": "place", "decor": "place",
		"view": "place", "seating": "place", "plates": "place",
		"prices": "value", "service": "people",
		// electronics
		"screen": "hardware", "battery": "hardware", "keyboard": "hardware",
		"processor": "hardware", "build": "hardware", "fans": "hardware",
		"speakers": "hardware", "ports": "hardware", "webcam": "hardware",
		"software": "offering", "support": "people", "price": "value",
		// hotels
		"rooms": "facility", "beds": "facility", "floors": "facility",
		"pool": "facility", "wifi": "facility", "breakfast": "offering",
		"location": "place", "reception": "people", "rates": "value",
	}
	for child, parent := range coarse {
		t.AddIsA(child, parent)
	}
	for _, top := range []string{"offering", "people", "place", "value", "facility", "hardware"} {
		t.AddIsA(top, "entity-quality")
	}

	// addSafe links child IS-A parent with first-writer-wins semantics and a
	// cycle guard: words shared across domains ("delicious" is canonical in
	// restaurants and a variant in hotels) keep their first mapping, and a
	// link that would close a cycle is dropped so every chain terminates.
	addSafe := func(child, parent string) {
		if child == parent {
			return
		}
		if _, exists := t.parent[child]; exists {
			return
		}
		for _, a := range t.Ancestors(parent) {
			if a == child {
				return
			}
		}
		t.AddIsA(child, parent)
	}
	for _, d := range []*Domain{Restaurants(), Electronics(), Hotels()} {
		for _, f := range d.Features {
			// Canonical terms first so variants hang off a rooted chain.
			if _, ok := t.parent[f.Opinion]; !ok {
				t.AddIsA(f.Opinion, "positive")
			}
			for _, a := range f.AspectSyns {
				addSafe(a, f.Aspect)
			}
			for _, o := range f.PosOps {
				addSafe(o, f.Opinion)
			}
			for _, o := range f.NegOps {
				addSafe(o, "negative")
			}
		}
	}
	t.AddIsA("positive", "polarity")
	t.AddIsA("negative", "polarity")
	t.Precompute()
	return t
}
