package lexicon

// Hotels returns the hotel domain backing the synthetic S4 dataset
// (the Booking.com corpus of Table 3, created by OpineDB [31]) and the
// training domain of the paper's pairing experiment (§6.4 trains the
// discriminative pairing model on the hotels dataset).
func Hotels() *Domain {
	return &Domain{
		Name: "hotels",
		Features: []Feature{
			{
				ID: 0, Name: "clean rooms", Aspect: "rooms", Opinion: "clean",
				AspectSyns: []string{"rooms", "room", "suite", "bathroom", "linens"},
				PosOps:     []string{"clean", "spotless", "immaculate", "fresh", "tidy"},
				NegOps:     []string{"dirty", "musty", "dusty", "grimy"},
			},
			{
				ID: 1, Name: "comfortable beds", Aspect: "beds", Opinion: "comfortable",
				AspectSyns: []string{"beds", "bed", "mattress", "pillows", "bedding"},
				PosOps:     []string{"comfortable", "plush", "heavenly", "soft", "cozy"},
				NegOps:     []string{"lumpy", "hard", "creaky", "saggy"},
			},
			{
				ID: 2, Name: "great location", Aspect: "location", Opinion: "great",
				AspectSyns: []string{"location", "neighborhood", "area", "spot", "surroundings"},
				PosOps:     []string{"great", "central", "convenient", "perfect", "unbeatable"},
				NegOps:     []string{"remote", "sketchy", "inconvenient", "noisy"},
			},
			{
				ID: 3, Name: "friendly reception", Aspect: "reception", Opinion: "friendly",
				AspectSyns: []string{"reception", "front desk", "concierge", "staff", "receptionist"},
				PosOps:     []string{"friendly", "welcoming", "helpful", "courteous", "kind"},
				NegOps:     []string{"rude", "indifferent", "brusque", "unhelpful"},
			},
			{
				ID: 4, Name: "tasty breakfast", Aspect: "breakfast", Opinion: "tasty",
				AspectSyns: []string{"breakfast", "buffet", "morning spread", "brunch"},
				PosOps:     []string{"tasty", "delicious", "varied", "generous", "fresh"},
				NegOps:     []string{"stale", "bland", "meager", "cold"},
			},
			{
				ID: 5, Name: "quiet floors", Aspect: "floors", Opinion: "quiet",
				AspectSyns: []string{"floors", "hallways", "walls", "soundproofing"},
				PosOps:     []string{"quiet", "peaceful", "silent", "calm"},
				NegOps:     []string{"thin", "noisy", "loud", "echoing"},
			},
			{
				ID: 6, Name: "fast wifi", Aspect: "wifi", Opinion: "fast",
				AspectSyns: []string{"wifi", "internet", "connection", "wi fi"},
				PosOps:     []string{"fast", "reliable", "stable", "speedy", "free"},
				NegOps:     []string{"spotty", "slow", "unusable", "patchy"},
			},
			{
				ID: 7, Name: "nice pool", Aspect: "pool", Opinion: "nice",
				AspectSyns: []string{"pool", "spa", "sauna", "gym", "rooftop pool"},
				PosOps:     []string{"nice", "refreshing", "heated", "lovely", "stunning"},
				NegOps:     []string{"crowded", "cold", "closed", "tiny"},
			},
			{
				ID: 8, Name: "fair rates", Aspect: "rates", Opinion: "fair",
				AspectSyns: []string{"rates", "price", "nightly rate", "cost", "bill"},
				PosOps:     []string{"fair", "reasonable", "affordable", "honest"},
				NegOps:     []string{"inflated", "outrageous", "steep", "hidden"},
			},
			{
				ID: 9, Name: "good view", Aspect: "view", Opinion: "good",
				AspectSyns: []string{"view", "vista", "balcony view", "window view"},
				PosOps:     []string{"good", "breathtaking", "panoramic", "amazing"},
				NegOps:     []string{"bleak", "blocked", "disappointing"},
			},
		},
		Fillers: []string{
			"during our stay", "for the weekend", "on arrival", "at checkout",
			"on the top floor", "for a business trip", "with kids", "in july",
		},
		Entities: []string{
			"Grand Palace", "Hotel Lumière", "The Wanderer", "Bayview Inn",
			"Alpine Lodge", "Casa Azul", "Ritz Garden", "Harbor House",
		},
	}
}
