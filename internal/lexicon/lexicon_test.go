package lexicon

import (
	"strings"
	"testing"
)

func TestRestaurantsHas18Features(t *testing.T) {
	d := Restaurants()
	if len(d.Features) != 18 {
		t.Fatalf("paper uses 18 subjective features of [39], got %d", len(d.Features))
	}
	for i, f := range d.Features {
		if f.ID != i {
			t.Errorf("feature %q has ID %d, want %d", f.Name, f.ID, i)
		}
		if f.Name != f.Opinion+" "+f.Aspect {
			t.Errorf("feature name %q must be opinion+aspect (%q %q)", f.Name, f.Opinion, f.Aspect)
		}
		if len(f.AspectSyns) == 0 || len(f.PosOps) == 0 || len(f.NegOps) == 0 {
			t.Errorf("feature %q missing variants", f.Name)
		}
	}
}

func TestDomainsWellFormed(t *testing.T) {
	for _, d := range []*Domain{Restaurants(), Electronics(), Hotels()} {
		t.Run(d.Name, func(t *testing.T) {
			if len(d.Features) == 0 || len(d.Entities) == 0 || len(d.Fillers) == 0 {
				t.Fatal("domain missing data")
			}
			seen := map[string]bool{}
			for i, f := range d.Features {
				if f.ID != i {
					t.Errorf("feature %d has ID %d", i, f.ID)
				}
				if seen[f.Name] {
					t.Errorf("duplicate feature name %q", f.Name)
				}
				seen[f.Name] = true
				for _, v := range append(append(append([]string{}, f.AspectSyns...), f.PosOps...), f.NegOps...) {
					if v != strings.ToLower(v) {
						t.Errorf("variant %q must be lowercase (tokenizer lowercases)", v)
					}
					if strings.TrimSpace(v) == "" {
						t.Errorf("empty variant in %q", f.Name)
					}
				}
				hasCanonAspect := false
				for _, v := range f.AspectSyns {
					if v == f.Aspect {
						hasCanonAspect = true
					}
				}
				if !hasCanonAspect {
					t.Errorf("feature %q: canonical aspect %q not in AspectSyns", f.Name, f.Aspect)
				}
				hasCanonOp := false
				for _, v := range f.PosOps {
					if v == f.Opinion {
						hasCanonOp = true
					}
				}
				if !hasCanonOp {
					t.Errorf("feature %q: canonical opinion %q not in PosOps", f.Name, f.Opinion)
				}
			}
		})
	}
}

func TestFeatureByName(t *testing.T) {
	d := Restaurants()
	f, ok := d.FeatureByName("romantic ambiance")
	if !ok || f.Aspect != "ambiance" || f.Opinion != "romantic" {
		t.Fatalf("FeatureByName: got %+v ok=%v", f, ok)
	}
	if _, ok := d.FeatureByName("nonexistent"); ok {
		t.Fatal("unexpected feature")
	}
}

func TestVariantsDeduped(t *testing.T) {
	d := Restaurants()
	asp := d.AspectVariants()
	seen := map[string]bool{}
	for _, a := range asp {
		if seen[a] {
			t.Fatalf("duplicate aspect variant %q", a)
		}
		seen[a] = true
	}
	// "la carte" appears in two features; must appear once here.
	if !seen["la carte"] {
		t.Fatal("idiom 'la carte' missing from aspect variants (§4.2)")
	}
	ops := d.OpinionVariants()
	if len(ops) == 0 {
		t.Fatal("no opinion variants")
	}
	opSeen := map[string]bool{}
	for _, o := range ops {
		if opSeen[o] {
			t.Fatalf("duplicate opinion variant %q", o)
		}
		opSeen[o] = true
	}
	if !opSeen["a killer"] {
		t.Fatal("idiom 'a killer' missing from opinion variants (§4.2)")
	}
}

func TestSynonyms(t *testing.T) {
	syns := Synonyms("delicious")
	if len(syns) == 0 {
		t.Fatal("expected synonyms for 'delicious'")
	}
	found := false
	for _, s := range syns {
		if s == "tasty" {
			found = true
		}
		if s == "delicious" {
			t.Fatal("a word must not be its own synonym")
		}
	}
	if !found {
		t.Fatalf("'tasty' should be a synonym of 'delicious': %v", syns)
	}
	if got := Synonyms("xylophone"); len(got) != 0 {
		t.Fatalf("unknown word should have no synonyms, got %v", got)
	}
}

func TestTaxonomyBasics(t *testing.T) {
	tax := NewTaxonomy()
	tax.AddIsA("pizza", "food")
	tax.AddIsA("food", "offering")
	if tax.Parent("pizza") != "food" {
		t.Fatal("Parent wrong")
	}
	anc := tax.Ancestors("pizza")
	if len(anc) != 3 || anc[0] != "pizza" || anc[2] != "offering" {
		t.Fatalf("Ancestors: %v", anc)
	}
	if tax.Depth("pizza") != 2 || tax.Depth("offering") != 0 {
		t.Fatalf("Depth: %d %d", tax.Depth("pizza"), tax.Depth("offering"))
	}
	if tax.LCA("pizza", "food") != "food" {
		t.Fatal("LCA(pizza, food) should be food")
	}
}

func TestWuPalmer(t *testing.T) {
	tax := NewTaxonomy()
	tax.AddIsA("pizza", "food")
	tax.AddIsA("pasta", "food")
	tax.AddIsA("food", "offering")
	tax.AddIsA("staff", "people")

	if got := tax.WuPalmer("pizza", "pizza"); got != 1 {
		t.Fatalf("identical concepts: %v", got)
	}
	sib := tax.WuPalmer("pizza", "pasta") // lca food depth 1, both depth 2 -> 2/4
	if sib != 0.5 {
		t.Fatalf("siblings: got %v, want 0.5", sib)
	}
	if got := tax.WuPalmer("pizza", "staff"); got != 0 {
		t.Fatalf("disjoint roots: got %v", got)
	}
	child := tax.WuPalmer("pizza", "food") // lca food depth 1 -> 2*1/(2+1)
	if diff := child - 2.0/3.0; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("parent-child: got %v", child)
	}
}

func TestDefaultTaxonomyConceptualSimilarity(t *testing.T) {
	tax := DefaultTaxonomy()
	// pizza IS-A food must hold (§3.1 example).
	found := false
	for _, a := range tax.Ancestors("pizza") {
		if a == "food" {
			found = true
		}
	}
	if !found {
		t.Fatal("pizza must be a kind of food")
	}
	// Sibling aspects of the same feature should be more similar than
	// aspects of unrelated features.
	same := tax.WuPalmer("pizza", "pasta")
	diff := tax.WuPalmer("pizza", "staff")
	if same <= diff {
		t.Fatalf("WuPalmer(pizza,pasta)=%v should exceed WuPalmer(pizza,staff)=%v", same, diff)
	}
}

func TestDefaultTaxonomyTerminates(t *testing.T) {
	// The generated graph contains a known benign 2-cycle
	// (atmosphere <-> ambiance); Ancestors must still terminate everywhere.
	tax := DefaultTaxonomy()
	for _, d := range []*Domain{Restaurants(), Electronics(), Hotels()} {
		for _, w := range append(d.AspectVariants(), d.OpinionVariants()...) {
			if anc := tax.Ancestors(w); len(anc) > 10 {
				t.Fatalf("suspiciously deep chain for %q: %v", w, anc)
			}
		}
	}
}

func TestTaxonomyHas(t *testing.T) {
	tax := NewTaxonomy()
	tax.AddIsA("pizza", "food")
	if !tax.Has("pizza") || !tax.Has("food") {
		t.Fatal("Has should see both children and parents")
	}
	if tax.Has("granite") {
		t.Fatal("unknown concept reported present")
	}
}
