package lexicon

// Electronics returns the laptop/electronics domain backing the synthetic S2
// dataset (SemEval-14 Electronics in Table 3). Following §6.3, it is heavy on
// brand names and numeric references — the terms whose meaning flips under
// large adversarial perturbations and makes ε=1.0 underperform on S2.
func Electronics() *Domain {
	return &Domain{
		Name: "electronics",
		Features: []Feature{
			{
				ID: 0, Name: "sharp screen", Aspect: "screen", Opinion: "sharp",
				AspectSyns: []string{"screen", "display", "panel", "retina display", "lcd"},
				PosOps:     []string{"sharp", "crisp", "vivid", "bright", "gorgeous"},
				NegOps:     []string{"dim", "washed out", "grainy", "blurry"},
			},
			{
				ID: 1, Name: "long battery life", Aspect: "battery", Opinion: "long lasting",
				AspectSyns: []string{"battery", "battery life", "charge", "power cell"},
				PosOps:     []string{"long lasting", "enduring", "reliable", "excellent", "impressive"},
				NegOps:     []string{"short", "weak", "terrible", "draining"},
			},
			{
				ID: 2, Name: "comfortable keyboard", Aspect: "keyboard", Opinion: "comfortable",
				AspectSyns: []string{"keyboard", "keys", "trackpad", "touchpad"},
				PosOps:     []string{"comfortable", "responsive", "tactile", "snappy", "pleasant"},
				NegOps:     []string{"mushy", "stiff", "cramped", "unresponsive"},
			},
			{
				ID: 3, Name: "fast processor", Aspect: "processor", Opinion: "fast",
				AspectSyns: []string{"processor", "cpu", "chip", "i7", "ryzen 7", "m2 chip"},
				PosOps:     []string{"fast", "blazing", "powerful", "speedy", "snappy"},
				NegOps:     []string{"slow", "laggy", "underpowered", "sluggish"},
			},
			{
				ID: 4, Name: "light build", Aspect: "build", Opinion: "light",
				AspectSyns: []string{"build", "chassis", "body", "case", "design"},
				PosOps:     []string{"light", "sturdy", "premium", "solid", "sleek"},
				NegOps:     []string{"heavy", "flimsy", "plasticky", "bulky"},
			},
			{
				ID: 5, Name: "quiet fans", Aspect: "fans", Opinion: "quiet",
				AspectSyns: []string{"fans", "cooling", "thermals", "fan noise"},
				PosOps:     []string{"quiet", "silent", "inaudible", "well tuned"},
				NegOps:     []string{"loud", "whiny", "noisy", "annoying"},
			},
			{
				ID: 6, Name: "good speakers", Aspect: "speakers", Opinion: "good",
				AspectSyns: []string{"speakers", "audio", "sound", "sound quality"},
				PosOps:     []string{"good", "rich", "clear", "loud", "punchy"},
				NegOps:     []string{"tinny", "muffled", "weak", "distorted"},
			},
			{
				ID: 7, Name: "helpful support", Aspect: "support", Opinion: "helpful",
				AspectSyns: []string{"support", "customer service", "warranty", "helpline"},
				PosOps:     []string{"helpful", "responsive", "courteous", "competent"},
				NegOps:     []string{"useless", "slow", "dismissive", "hopeless"},
			},
			{
				ID: 8, Name: "fair price", Aspect: "price", Opinion: "fair",
				AspectSyns: []string{"price", "price tag", "cost", "value", "msrp"},
				PosOps:     []string{"fair", "reasonable", "unbeatable", "competitive", "great"},
				NegOps:     []string{"steep", "absurd", "overpriced", "inflated"},
			},
			{
				ID: 9, Name: "many ports", Aspect: "ports", Opinion: "plentiful",
				AspectSyns: []string{"ports", "usb ports", "hdmi port", "connectivity", "slots"},
				PosOps:     []string{"plentiful", "versatile", "generous", "abundant"},
				NegOps:     []string{"scarce", "missing", "few", "lacking"},
			},
			{
				ID: 10, Name: "stable software", Aspect: "software", Opinion: "stable",
				AspectSyns: []string{"software", "drivers", "firmware", "os", "windows 11"},
				PosOps:     []string{"stable", "polished", "smooth", "bug free", "reliable"},
				NegOps:     []string{"buggy", "crashy", "bloated", "unstable"},
			},
			{
				ID: 11, Name: "crisp webcam", Aspect: "webcam", Opinion: "crisp",
				AspectSyns: []string{"webcam", "camera", "1080p camera", "video quality"},
				PosOps:     []string{"crisp", "clear", "sharp", "decent"},
				NegOps:     []string{"grainy", "potato quality", "dark", "fuzzy"},
			},
		},
		Fillers: []string{
			"out of the box", "after a week", "for the price", "under load",
			"during video calls", "on battery", "for gaming", "at 4k", "so far",
		},
		Entities: []string{
			"ThinkPad X9", "MacBook Air", "Zephyrus G14", "XPS 13", "Pavilion 15",
			"IdeaPad Slim", "Surface Laptop", "Swift 3", "Vivobook Pro", "Gram 17",
		},
	}
}
