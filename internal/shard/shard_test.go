package shard

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"saccs/internal/index"
	"saccs/internal/search"
)

// flatSim scores phrase pairs by token overlap — cheap and deterministic,
// the same stand-in the ingest tests use.
type flatSim struct{}

func (flatSim) Phrase(a, b string) float64 {
	if a == b {
		return 1
	}
	fa, fb := map[string]bool{}, map[string]bool{}
	for _, w := range splitWords(a) {
		fa[w] = true
	}
	for _, w := range splitWords(b) {
		fb[w] = true
	}
	n := 0
	for w := range fa {
		if fb[w] {
			n++
		}
	}
	d := len(fa) + len(fb) - n
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

func splitWords(s string) []string {
	var out []string
	w := ""
	for _, r := range s {
		if r == ' ' {
			if w != "" {
				out = append(out, w)
			}
			w = ""
			continue
		}
		w += string(r)
	}
	if w != "" {
		out = append(out, w)
	}
	return out
}

var testTags = []string{"good food", "nice staff", "cozy place", "fair prices", "fast service", "great view"}

func worldOf(n int, seed int64) []index.EntityReviews {
	rng := rand.New(rand.NewSource(seed))
	out := make([]index.EntityReviews, n)
	for i := range out {
		er := index.EntityReviews{EntityID: fmt.Sprintf("e%03d", i), ReviewCount: 1 + rng.Intn(5)}
		for r := 0; r < er.ReviewCount; r++ {
			er.Tags = append(er.Tags, testTags[rng.Intn(len(testTags))])
		}
		out[i] = er
	}
	return out
}

func newIndex() *index.Index { return index.New(flatSim{}, 0.3) }

// TestOwnerStability checks the consistent-hashing contract: growing the
// shard count from n to n+1 moves entities only onto the new shard.
func TestOwnerStability(t *testing.T) {
	ids := make([]string, 500)
	for i := range ids {
		ids[i] = fmt.Sprintf("entity-%04d", i)
	}
	for n := 1; n < 8; n++ {
		moved := 0
		for _, id := range ids {
			a, b := Owner(id, n), Owner(id, n+1)
			if a != b {
				if b != n {
					t.Fatalf("Owner(%q): %d shards -> %d, %d shards -> %d; moved to an old shard", id, n, a, n+1, b)
				}
				moved++
			}
		}
		// Expect roughly 1/(n+1) of keys to move; allow generous slack.
		if frac := float64(moved) / float64(len(ids)); frac > 2.5/float64(n+1) {
			t.Fatalf("%d -> %d shards moved %.2f of keys, want ~%.2f", n, n+1, frac, 1/float64(n+1))
		}
	}
}

func TestOwnerSpread(t *testing.T) {
	counts := make([]int, 4)
	for i := 0; i < 2000; i++ {
		counts[Owner(fmt.Sprintf("e%05d", i), 4)]++
	}
	for s, c := range counts {
		if c < 2000/4/2 || c > 2000/4*2 {
			t.Fatalf("shard %d holds %d of 2000 keys; partition badly skewed: %v", s, c, counts)
		}
	}
}

// TestShardedMatchesUnsharded is the core byte-identity property: for any
// shard count, TopK over the router equals ranking the unsharded index, for
// exact tags, unknown (similar-union) tags, truncation, and the zero-tag
// pass-through over ID-sorted API results.
func TestShardedMatchesUnsharded(t *testing.T) {
	ents := worldOf(120, 7)
	single := newIndex()
	single.Build(testTags[:4], ents)

	var api []string
	for _, e := range ents {
		api = append(api, e.EntityID)
	}
	sort.Strings(api)

	queries := [][]string{
		{"good food"},
		{"good food", "nice staff"},
		{"tasty food"}, // unknown: similar-union path
		{"good food", "friendly staff", "cozy place"},
		{},
	}
	for _, n := range []int{1, 2, 3, 5, 8} {
		r := New(n, search.MeanAgg, newIndex)
		r.Build(testTags[:4], ents)
		view := r.Pin()
		for _, q := range queries {
			for _, k := range []int{0, 3, 10, 1000} {
				ranker := &search.Ranker{Index: single.Current(), ThetaFilter: 0.25, Agg: search.MeanAgg}
				want, err := ranker.RankCtx(context.Background(), nil, api, q)
				if err != nil {
					t.Fatal(err)
				}
				want = search.Truncate(want, k)
				got, err := view.TopK(context.Background(), nil, api, q, 0.25, k)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("shards=%d q=%v k=%d: %d results, want %d", n, q, k, len(got), len(want))
				}
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("shards=%d q=%v k=%d: result %d = %+v, want %+v", n, q, k, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestShardedResolveMatches checks View.Resolve against the unsharded
// Snapshot.Resolve for exact and similar-union probes.
func TestShardedResolveMatches(t *testing.T) {
	ents := worldOf(80, 11)
	single := newIndex()
	single.Build(testTags[:4], ents)
	r := New(3, search.MeanAgg, newIndex)
	r.Build(testTags[:4], ents)
	view := r.Pin()
	for _, tag := range []string{"good food", "tasty food", "absent"} {
		want := single.Current().Resolve(tag, 0.25)
		got, err := view.Resolve(context.Background(), tag, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("Resolve(%q): %d entries, want %d", tag, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("Resolve(%q)[%d] = %+v, want %+v", tag, i, got[i], want[i])
			}
		}
	}
}

// TestPinIsStable verifies the generation-vector contract: a pinned view's
// results do not change while shards republish underneath it, and a fresh
// pin observes the higher generation.
func TestPinIsStable(t *testing.T) {
	ents := worldOf(60, 3)
	r := New(4, search.MeanAgg, newIndex)
	r.Build(testTags[:3], ents)
	view := r.Pin()
	var api []string
	for _, e := range ents {
		api = append(api, e.EntityID)
	}
	sort.Strings(api)
	before, err := view.TopK(context.Background(), nil, api, []string{"good food"}, 0.25, 10)
	if err != nil {
		t.Fatal(err)
	}
	gen := view.Generation()

	// Republish one shard with different contents and a new generation.
	r.Shard(1).Build(testTags[:3], nil)
	after, err := view.TopK(context.Background(), nil, api, []string{"good food"}, 0.25, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("pinned view changed under republish: %+v -> %+v", before[i], after[i])
		}
	}
	if view.Generation() != gen {
		t.Fatalf("pinned generation moved: %d -> %d", view.Generation(), gen)
	}
	if fresh := r.Pin().Generation(); fresh <= gen {
		t.Fatalf("fresh pin generation %d not above %d after republish", fresh, gen)
	}
}

// TestTopKCancellation: a cancelled context aborts the scatter with the
// context's error and no partial results.
func TestTopKCancellation(t *testing.T) {
	ents := worldOf(100, 5)
	r := New(4, search.MeanAgg, newIndex)
	r.Build(testTags[:4], ents)
	view := r.Pin()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var api []string
	for _, e := range ents {
		api = append(api, e.EntityID)
	}
	out, err := view.TopK(ctx, nil, api, []string{"good food"}, 0.25, 10)
	if err == nil || out != nil {
		t.Fatalf("TopK on cancelled ctx: out=%v err=%v, want nil results and ctx error", out, err)
	}
}

// TestConcurrentPinsUnderRebuild races queries through pinned views against
// continuous per-shard rebuilds; with -race this doubles as a data-race probe.
func TestConcurrentPinsUnderRebuild(t *testing.T) {
	ents := worldOf(90, 9)
	r := New(3, search.MeanAgg, newIndex)
	r.Build(testTags[:4], ents)
	single := newIndex()
	single.Build(testTags[:4], ents)
	var api []string
	for _, e := range ents {
		api = append(api, e.EntityID)
	}
	sort.Strings(api)
	ranker := &search.Ranker{Index: single.Current(), ThetaFilter: 0.25, Agg: search.MeanAgg}
	want, err := ranker.RankCtx(context.Background(), nil, api, []string{"good food", "nice staff"})
	if err != nil {
		t.Fatal(err)
	}
	want = search.Truncate(want, 10)

	stop := make(chan struct{})
	var rebuilder sync.WaitGroup
	rebuilder.Add(1)
	go func() {
		defer rebuilder.Done()
		parts := r.Partition(ents)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			s := i % 3
			r.Shard(s).Build(testTags[:4], parts[s])
		}
	}()
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 50; i++ {
				got, err := r.Pin().TopK(context.Background(), nil, api, []string{"good food", "nice staff"}, 0.25, 10)
				if err != nil {
					t.Error(err)
					return
				}
				for j := range want {
					if want[j] != got[j] {
						t.Errorf("racing rebuild diverged at %d: %+v want %+v", j, got[j], want[j])
						return
					}
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	rebuilder.Wait()
}
