// Package shard partitions the subjective tag index across N entity shards
// and serves queries scatter-gather over them.
//
// # Partitioning
//
// Every entity is owned by exactly one shard, chosen by consistent hashing
// (Lamping–Veach jump hash over an FNV-64a of the entity ID). Jump hash is
// stable under shard-count changes: growing from N to N+1 shards moves only
// the ~1/(N+1) of entities that land on the new shard and nothing else,
// which is what makes re-sharding (and the replication story after it)
// an incremental data move instead of a full reshuffle.
//
// Writes route by owner: a build partitions its entity set and builds every
// shard with the same tag vocabulary; an append goes to the owning shard
// alone. Each shard is a full *index.Index publishing its own
// atomic.Pointer[Snapshot] generation.
//
// # Scatter-gather reads
//
// Pin captures one immutable snapshot per shard — the query's generation
// vector. Because entities are disjoint across shards and every per-entity
// quantity of Eq. 1 (degree of truth, coverage, aggregate score) depends
// only on the entity's own reviews, any vector of per-shard snapshots is a
// consistent world state: no single entity's data can be torn across
// generations. TopK fans the query out (one goroutine per shard holding
// results, first failure cancelling the siblings; inline at GOMAXPROCS=1,
// where fan-out is pure scheduling overhead), ranks each shard with
// the same Algorithm 1 ranker the single index uses, and merges under the
// deterministic coverage/score/ID order — byte-identical to ranking the
// unsharded union, because each shard's list is already totally ordered
// under that comparator and owns its entities exclusively.
//
// The shards also share one similarity memo (the facade passes every shard
// the same sim.Memo): the vocabulary is replicated on all shards, so an
// unknown query tag's vocabulary scan computes each (query tag, index tag)
// similarity once for the router rather than once per shard.
package shard

import (
	"context"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"

	"saccs/internal/index"
	"saccs/internal/obs"
	"saccs/internal/search"
)

// Router partitions entities across shards and implements search.Searcher
// over them. With one shard it degenerates to the plain single-index client:
// no partitioning, no fan-out goroutines, bit-identical behavior.
type Router struct {
	shards []*index.Index
	agg    search.Aggregation
}

// New creates a router over n shards (n < 1 is treated as 1), each built by
// newIndex so the caller controls measure, thresholds, and tuning. agg is
// the §3.3 cross-tag aggregation its views rank with.
func New(n int, agg search.Aggregation, newIndex func() *index.Index) *Router {
	if n < 1 {
		n = 1
	}
	shards := make([]*index.Index, n)
	for i := range shards {
		shards[i] = newIndex()
	}
	return &Router{shards: shards, agg: agg}
}

// N returns the shard count.
func (r *Router) N() int { return len(r.shards) }

// Shard returns shard i's index (for per-shard writers: ingest, tests).
func (r *Router) Shard(i int) *index.Index { return r.shards[i] }

// Owner returns the shard owning entityID.
func (r *Router) Owner(entityID string) int { return Owner(entityID, len(r.shards)) }

// Owner maps an entity ID onto one of n buckets by jump consistent hashing:
// growing n moves a key only ever onto the newest bucket.
func Owner(entityID string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(entityID))
	return jump(h.Sum64(), n)
}

// jump is the Lamping–Veach jump consistent hash: O(ln n), zero memory, and
// minimal key movement when the bucket count changes.
func jump(key uint64, buckets int) int {
	var b, j int64 = -1, 0
	for j < int64(buckets) {
		b = j
		key = key*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(int64(1)<<31) / float64((key>>33)+1)))
	}
	return int(b)
}

// Partition splits entities by owning shard, preserving input order within
// each shard.
func (r *Router) Partition(entities []index.EntityReviews) [][]index.EntityReviews {
	parts := make([][]index.EntityReviews, len(r.shards))
	if len(r.shards) == 1 {
		parts[0] = entities
		return parts
	}
	for _, e := range entities {
		s := r.Owner(e.EntityID)
		parts[s] = append(parts[s], e)
	}
	return parts
}

// SetObserver attaches o's instruments to every shard. Call before
// concurrent use, like Index.SetObserver.
func (r *Router) SetObserver(o *obs.Observer) {
	for _, ix := range r.shards {
		ix.SetObserver(o)
	}
}

// Tags returns the index vocabulary (identical on every shard — builds and
// tag additions always apply the same tag set to all shards).
func (r *Router) Tags() []string { return r.shards[0].Tags() }

// EachTag iterates the vocabulary in insertion order (shard 0's copy).
func (r *Router) EachTag(f func(tag string) bool) { r.shards[0].EachTag(f) }

// BuildCtx routes entities to their owning shards and builds every shard
// with the same tag set, in parallel across shards. Like Index.BuildCtx it
// adds to (or recomputes) the given tags and leaves others untouched; a
// cancelled context aborts the round with no guarantee about which shards
// already published, but each shard is individually consistent and a
// repeated call converges. With one shard it is exactly Index.BuildCtx.
func (r *Router) BuildCtx(ctx context.Context, tags []string, entities []index.EntityReviews) error {
	if len(r.shards) == 1 {
		return r.shards[0].BuildCtx(ctx, tags, entities)
	}
	parts := r.Partition(entities)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, len(r.shards))
	var wg sync.WaitGroup
	for i := range r.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if errs[i] = r.shards[i].BuildCtx(ctx, tags, parts[i]); errs[i] != nil {
				cancel()
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Build is BuildCtx without cancellation.
func (r *Router) Build(tags []string, entities []index.EntityReviews) {
	_ = r.BuildCtx(context.Background(), tags, entities)
}

// Generation returns the sum of the shards' current generations — monotone
// under the per-shard publish counters, and what wide events record for a
// sharded client.
func (r *Router) Generation() uint64 {
	var g uint64
	for _, ix := range r.shards {
		g += ix.Current().Generation()
	}
	return g
}

// Pin captures the query's generation vector: one immutable snapshot per
// shard. With one shard this is exactly the single-index pin.
func (r *Router) Pin() search.View {
	if len(r.shards) == 1 {
		return search.Single{Index: r.shards[0], Agg: r.agg}.Pin()
	}
	snaps := make([]*index.Snapshot, len(r.shards))
	for i, ix := range r.shards {
		snaps[i] = ix.Current()
	}
	return &View{snaps: snaps, agg: r.agg}
}

// View is a pinned generation vector over the shards. It implements
// search.View; every read sees exactly these snapshots no matter what the
// shards publish afterwards.
type View struct {
	snaps []*index.Snapshot
	agg   search.Aggregation
}

// Generations returns the pinned per-shard generation vector (a copy).
func (v *View) Generations() []uint64 {
	out := make([]uint64, len(v.snaps))
	for i, s := range v.snaps {
		out[i] = s.Generation()
	}
	return out
}

// Generation returns the sum of the pinned per-shard generations.
func (v *View) Generation() uint64 {
	var g uint64
	for _, s := range v.snaps {
		g += s.Generation()
	}
	return g
}

// Has reports whether tag is indexed (shard 0's pinned vocabulary; the
// vocabulary is replicated on every shard).
func (v *View) Has(tag string) bool { return v.snaps[0].Has(tag) }

// Resolve probes every shard for the tag and merges the entries under the
// posting order (degree desc, entity ID asc) — byte-identical to resolving
// the unsharded index, since each entity's degree is computed from its own
// reviews alone and entities are disjoint across shards.
func (v *View) Resolve(ctx context.Context, tag string, thetaFilter float64) ([]index.Entry, error) {
	var out []index.Entry
	for _, s := range v.snaps {
		err := s.ResolveEachCtx(ctx, tag, thetaFilter, func(e index.Entry) bool {
			out = append(out, e)
			return true
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Degree != out[j].Degree {
			return out[i].Degree > out[j].Degree
		}
		return out[i].EntityID < out[j].EntityID
	})
	return out, nil
}

// TopK fans the query out over the pinned shards — one goroutine per shard
// that holds any of apiResults, each running Algorithm 1 against its own
// snapshot, the first failure cancelling the rest — then k-way merges the
// per-shard rankings under the coverage/score/ID order and truncates to k.
// Each shard ranks only the API results it owns and truncates to k locally
// (an entity beyond a shard's top k cannot enter the merged top k), so the
// gather moves at most shards×k results.
//
// At GOMAXPROCS=1 the shards rank inline instead: per-shard goroutines
// cannot overlap on one processor, and the blocking join they force is worse
// than useless — it reschedules concurrent queries in lockstep rotation at
// query boundaries, so their extraction windows never overlap and the
// cross-request decode batcher (which detects load by in-flight overlap and
// arrival gaps) degrades every query to a solo decode. Ranking serially
// keeps a query CPU-bound end to end, exactly like the unsharded path, and
// computes the same per-shard lists the fan-out would.
//
// With at least one tag the ranking is independent of apiResults order; with
// zero tags Algorithm 1 passes the API results through unranked, and the
// merge emits them ID-sorted — identical to the unsharded pass-through
// exactly when apiResults is ID-sorted, which is how the facade's objective
// filter always hands them over.
func (v *View) TopK(ctx context.Context, parent *obs.Span, apiResults, tags []string, thetaFilter float64, k int) ([]search.Scored, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	parts := make([][]string, len(v.snaps))
	for _, id := range apiResults {
		s := Owner(id, len(v.snaps))
		parts[s] = append(parts[s], id)
	}
	if runtime.GOMAXPROCS(0) == 1 {
		ranked := make([][]search.Scored, len(v.snaps))
		for i := range v.snaps {
			if len(parts[i]) == 0 {
				continue
			}
			r := &search.Ranker{Index: v.snaps[i], ThetaFilter: thetaFilter, Agg: v.agg}
			out, err := r.RankCtx(ctx, parent, parts[i], tags)
			if err != nil {
				return nil, err
			}
			ranked[i] = search.Truncate(out, k)
		}
		return mergeRanked(ranked, k), nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ranked := make([][]search.Scored, len(v.snaps))
	errs := make([]error, len(v.snaps))
	var wg sync.WaitGroup
	for i := range v.snaps {
		if len(parts[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := &search.Ranker{Index: v.snaps[i], ThetaFilter: thetaFilter, Agg: v.agg}
			out, err := r.RankCtx(ctx, parent, parts[i], tags)
			if err != nil {
				errs[i] = err
				cancel()
				return
			}
			ranked[i] = search.Truncate(out, k)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return mergeRanked(ranked, k), nil
}

// mergeRanked k-way merges per-shard rankings, each already totally ordered
// under search.Less, into one list truncated to k (k <= 0 keeps all).
func mergeRanked(ranked [][]search.Scored, k int) []search.Scored {
	total := 0
	for _, rs := range ranked {
		total += len(rs)
	}
	if k > 0 && k < total {
		total = k
	}
	out := make([]search.Scored, 0, total)
	heads := make([]int, len(ranked))
	for len(out) < total {
		best := -1
		for i, rs := range ranked {
			if heads[i] >= len(rs) {
				continue
			}
			if best < 0 || search.Less(rs[heads[i]], ranked[best][heads[best]]) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		out = append(out, ranked[best][heads[best]])
		heads[best]++
	}
	return out
}
