// Package automaton implements the §7 future-work idea of "search automata
// as a substitute for inverted indexes": a byte-level trie over subjective
// tag strings supporting exact, prefix, and bounded-edit-distance lookup.
// SACCS uses it to route misspelled or partially typed query tags
// ("delicous food", "romantic amb…") onto index keys before similarity
// matching, which is far cheaper than scoring every index tag.
package automaton

import "sort"

// node is one trie node.
type node struct {
	children map[byte]*node
	// terminal marks the end of a stored tag.
	terminal bool
}

// Trie is a byte-level tag automaton.
type Trie struct {
	root *node
	size int
}

// New returns an empty automaton.
func New() *Trie { return &Trie{root: &node{}} }

// Len returns the number of stored tags.
func (t *Trie) Len() int { return t.size }

// Add inserts a tag (idempotent).
func (t *Trie) Add(tag string) {
	cur := t.root
	for i := 0; i < len(tag); i++ {
		b := tag[i]
		if cur.children == nil {
			cur.children = map[byte]*node{}
		}
		next, ok := cur.children[b]
		if !ok {
			next = &node{}
			cur.children[b] = next
		}
		cur = next
	}
	if !cur.terminal {
		cur.terminal = true
		t.size++
	}
}

// AddAll inserts every tag.
func (t *Trie) AddAll(tags []string) {
	for _, tag := range tags {
		t.Add(tag)
	}
}

// Contains reports whether the exact tag is stored.
func (t *Trie) Contains(tag string) bool {
	cur := t.root
	for i := 0; i < len(tag); i++ {
		next, ok := cur.children[tag[i]]
		if !ok {
			return false
		}
		cur = next
	}
	return cur.terminal
}

// WithPrefix returns all stored tags beginning with prefix, sorted.
func (t *Trie) WithPrefix(prefix string) []string {
	cur := t.root
	for i := 0; i < len(prefix); i++ {
		next, ok := cur.children[prefix[i]]
		if !ok {
			return nil
		}
		cur = next
	}
	var out []string
	collect(cur, prefix, &out)
	sort.Strings(out)
	return out
}

func collect(n *node, path string, out *[]string) {
	if n.terminal {
		*out = append(*out, path)
	}
	for b, child := range n.children {
		collect(child, path+string(b), out)
	}
}

// Match is one fuzzy hit.
type Match struct {
	Tag      string
	Distance int
}

// Within returns all stored tags within the given Levenshtein edit distance
// of query, sorted by distance then tag. It walks the trie with the classic
// row-per-node dynamic program, pruning branches whose minimum row value
// exceeds the budget.
func (t *Trie) Within(query string, maxDist int) []Match {
	if maxDist < 0 {
		return nil
	}
	row := make([]int, len(query)+1)
	for i := range row {
		row[i] = i
	}
	var out []Match
	var walk func(n *node, path string, prev []int)
	walk = func(n *node, path string, prev []int) {
		if n.terminal && prev[len(query)] <= maxDist {
			out = append(out, Match{Tag: path, Distance: prev[len(query)]})
		}
		for b, child := range n.children {
			cur := make([]int, len(query)+1)
			cur[0] = prev[0] + 1
			minVal := cur[0]
			for i := 1; i <= len(query); i++ {
				cost := 1
				if query[i-1] == b {
					cost = 0
				}
				cur[i] = minOf(cur[i-1]+1, prev[i]+1, prev[i-1]+cost)
				if cur[i] < minVal {
					minVal = cur[i]
				}
			}
			if minVal <= maxDist {
				walk(child, path+string(b), cur)
			}
		}
	}
	walk(t.root, "", row)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Distance != out[j].Distance {
			return out[i].Distance < out[j].Distance
		}
		return out[i].Tag < out[j].Tag
	})
	return out
}

// Closest returns the nearest stored tag within maxDist, or "" when none.
func (t *Trie) Closest(query string, maxDist int) (string, bool) {
	if t.Contains(query) {
		return query, true
	}
	ms := t.Within(query, maxDist)
	if len(ms) == 0 {
		return "", false
	}
	return ms[0].Tag, true
}

func minOf(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
