package automaton

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func sample() *Trie {
	t := New()
	t.AddAll([]string{
		"delicious food", "good food", "nice staff", "quick service",
		"romantic ambiance", "creative cooking",
	})
	return t
}

func TestAddContainsLen(t *testing.T) {
	tr := sample()
	if tr.Len() != 6 {
		t.Fatalf("Len: %d", tr.Len())
	}
	tr.Add("good food") // idempotent
	if tr.Len() != 6 {
		t.Fatal("Add must be idempotent")
	}
	if !tr.Contains("good food") || tr.Contains("good foo") || tr.Contains("good foods") {
		t.Fatal("Contains wrong")
	}
	if tr.Contains("") {
		t.Fatal("empty string not stored")
	}
	tr.Add("")
	if !tr.Contains("") || tr.Len() != 7 {
		t.Fatal("empty string storable")
	}
}

func TestWithPrefix(t *testing.T) {
	tr := sample()
	got := tr.WithPrefix("g")
	if len(got) != 1 || got[0] != "good food" {
		t.Fatalf("prefix g: %v", got)
	}
	all := tr.WithPrefix("")
	if len(all) != 6 {
		t.Fatalf("empty prefix must return everything: %v", all)
	}
	for i := 1; i < len(all); i++ {
		if all[i] < all[i-1] {
			t.Fatal("results must be sorted")
		}
	}
	if tr.WithPrefix("zzz") != nil {
		t.Fatal("missing prefix must be nil")
	}
}

// editDistance is a reference Levenshtein for cross-checking.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur := make([]int, len(b)+1)
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = minOf(cur[j-1]+1, prev[j]+1, prev[j-1]+cost)
		}
		prev = cur
	}
	return prev[len(b)]
}

func TestWithinTypo(t *testing.T) {
	tr := sample()
	// The §7 motivating case: a misspelled query tag.
	got := tr.Within("delicous food", 2)
	if len(got) == 0 || got[0].Tag != "delicious food" {
		t.Fatalf("typo lookup: %v", got)
	}
	if got[0].Distance != 1 {
		t.Fatalf("distance: %d", got[0].Distance)
	}
	if hits := tr.Within("delicous food", 0); len(hits) != 0 {
		t.Fatalf("zero budget must not fuzzy match: %v", hits)
	}
	if tr.Within("x", -1) != nil {
		t.Fatal("negative budget")
	}
}

func TestWithinMatchesReferenceLevenshtein(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	words := []string{"food", "fool", "flood", "good", "mood", "wood", "goods", "foob"}
	tr := New()
	tr.AddAll(words)
	for trial := 0; trial < 200; trial++ {
		// Random query: mutate a random word.
		q := []byte(words[rng.Intn(len(words))])
		for k := 0; k < rng.Intn(3); k++ {
			if len(q) == 0 {
				break
			}
			q[rng.Intn(len(q))] = byte('a' + rng.Intn(26))
		}
		query := string(q)
		budget := rng.Intn(3)
		got := tr.Within(query, budget)
		want := map[string]int{}
		for _, w := range words {
			if d := editDistance(query, w); d <= budget {
				want[w] = d
			}
		}
		if len(got) != len(want) {
			t.Fatalf("Within(%q,%d) = %v, want %v", query, budget, got, want)
		}
		for _, m := range got {
			if want[m.Tag] != m.Distance {
				t.Fatalf("distance mismatch for %q: got %d want %d", m.Tag, m.Distance, want[m.Tag])
			}
		}
	}
}

func TestClosest(t *testing.T) {
	tr := sample()
	if got, ok := tr.Closest("nice staff", 2); !ok || got != "nice staff" {
		t.Fatalf("exact closest: %v %v", got, ok)
	}
	if got, ok := tr.Closest("nise staff", 2); !ok || got != "nice staff" {
		t.Fatalf("fuzzy closest: %v %v", got, ok)
	}
	if _, ok := tr.Closest("completely unrelated", 1); ok {
		t.Fatal("no match expected")
	}
}

func TestQuickAddedAlwaysFound(t *testing.T) {
	f := func(tags []string) bool {
		tr := New()
		for _, tag := range tags {
			if len(tag) > 64 {
				tag = tag[:64]
			}
			tr.Add(tag)
			if !tr.Contains(tag) {
				return false
			}
			if !strings.HasPrefix(tag, "") { // trivially true; keeps strings import honest
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
