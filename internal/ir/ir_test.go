package ir

import (
	"testing"

	"saccs/internal/tokenize"
)

func docs() []Doc {
	return []Doc{
		{ID: "a", Tokens: tokenize.Words("the food is delicious and the staff is friendly")},
		{ID: "b", Tokens: tokenize.Words("the food is bland but the view is stunning")},
		{ID: "c", Tokens: tokenize.Words("parking took a while and the place opened in 2019")},
		{ID: "d", Tokens: tokenize.Words("delicious delicious delicious food food wonderful")},
	}
}

func TestBM25RanksRelevantFirst(t *testing.T) {
	b := NewBM25(docs())
	got := b.Search(PlainQuery([]string{"delicious food"}), 0)
	if len(got) < 2 {
		t.Fatalf("results: %v", got)
	}
	if got[0].ID != "d" && got[0].ID != "a" {
		t.Fatalf("irrelevant doc ranked first: %v", got)
	}
	for _, s := range got {
		if s.ID == "c" && s.Score >= got[0].Score {
			t.Fatal("doc without query terms must not top the list")
		}
	}
}

func TestBM25TopK(t *testing.T) {
	b := NewBM25(docs())
	got := b.Search(PlainQuery([]string{"food"}), 1)
	if len(got) != 1 {
		t.Fatalf("k=1 returned %d", len(got))
	}
}

func TestBM25LengthNormalization(t *testing.T) {
	long := Doc{ID: "long", Tokens: append(tokenize.Words("food"), make([]string, 0)...)}
	for i := 0; i < 200; i++ {
		long.Tokens = append(long.Tokens, "filler")
	}
	short := Doc{ID: "short", Tokens: tokenize.Words("great food here")}
	b := NewBM25([]Doc{long, short})
	got := b.Search(PlainQuery([]string{"food"}), 0)
	if got[0].ID != "short" {
		t.Fatalf("length normalization failed: %v", got)
	}
}

func TestBM25EmptyQueryAndIndex(t *testing.T) {
	b := NewBM25(nil)
	if got := b.Search(PlainQuery([]string{"food"}), 5); len(got) != 0 {
		t.Fatalf("empty index: %v", got)
	}
	b2 := NewBM25(docs())
	if got := b2.Search(nil, 5); len(got) != 0 {
		t.Fatalf("empty query: %v", got)
	}
}

func TestExpandQueryAddsSynonyms(t *testing.T) {
	terms := ExpandQuery([]string{"delicious food"})
	var hasOrig, hasSyn bool
	for _, wt := range terms {
		if wt.Term == "delicious" && wt.Weight == 1 {
			hasOrig = true
		}
		if wt.Term == "tasty" && wt.Weight < 1 && wt.Weight > 0 {
			hasSyn = true
		}
	}
	if !hasOrig || !hasSyn {
		t.Fatalf("expansion missing terms: %v", terms)
	}
}

func TestExpandQueryKeepsMaxWeight(t *testing.T) {
	// A word that is both an original term and a synonym of another keeps
	// weight 1.
	terms := ExpandQuery([]string{"delicious food", "tasty dishes"})
	for _, wt := range terms {
		if wt.Term == "tasty" && wt.Weight != 1 {
			t.Fatalf("original term downweighted: %v", wt)
		}
	}
}

func TestExpansionHelpsRecall(t *testing.T) {
	// Document says "tasty", query says "delicious": plain misses, expanded hits.
	b := NewBM25([]Doc{
		{ID: "x", Tokens: tokenize.Words("very tasty plates here")},
	})
	plain := b.Search(PlainQuery([]string{"delicious"}), 0)
	expanded := b.Search(ExpandQuery([]string{"delicious"}), 0)
	if len(plain) != 0 {
		t.Fatalf("plain query should miss: %v", plain)
	}
	if len(expanded) == 0 {
		t.Fatal("expanded query should hit the synonym")
	}
}

func TestIRNegationBlind(t *testing.T) {
	// The documented weakness: "not delicious" still matches "delicious".
	b := NewBM25([]Doc{
		{ID: "neg", Tokens: tokenize.Words("the food is not delicious at all")},
	})
	got := b.Search(PlainQuery([]string{"delicious food"}), 0)
	if len(got) == 0 {
		t.Fatal("keyword IR must (wrongly) match negated mentions — that's the point of the baseline")
	}
}
