// Package ir is the information-retrieval baseline of §6.2: an Okapi BM25
// retrieval model over per-entity review documents, strengthened — following
// Ganesan & Zhai [11] — with synonym query expansion so it is competitive
// with tag-based search. It remains keyword-based: negation-blind and
// polarity-blind, which is exactly why SACCS outranks it.
package ir

import (
	"math"
	"sort"

	"saccs/internal/lexicon"
	"saccs/internal/tokenize"
)

// Doc is one searchable document (per entity: its concatenated reviews).
type Doc struct {
	ID     string
	Tokens []string
}

// Scored is one ranked document.
type Scored struct {
	ID    string
	Score float64
}

// BM25 is an inverted-index Okapi BM25 engine.
type BM25 struct {
	K1, B float64

	docLen   map[string]int
	avgLen   float64
	nDocs    int
	postings map[string]map[string]int // term -> docID -> tf
}

// NewBM25 indexes the documents with the standard k1=1.2, b=0.75.
func NewBM25(docs []Doc) *BM25 {
	b := &BM25{
		K1:       1.2,
		B:        0.75,
		docLen:   make(map[string]int, len(docs)),
		postings: map[string]map[string]int{},
		nDocs:    len(docs),
	}
	var total int
	for _, d := range docs {
		b.docLen[d.ID] = len(d.Tokens)
		total += len(d.Tokens)
		for _, tok := range d.Tokens {
			m, ok := b.postings[tok]
			if !ok {
				m = map[string]int{}
				b.postings[tok] = m
			}
			m[d.ID]++
		}
	}
	if len(docs) > 0 {
		b.avgLen = float64(total) / float64(len(docs))
	}
	return b
}

// WeightedTerm is a query term with its contribution weight (expansion terms
// carry less weight than original terms).
type WeightedTerm struct {
	Term   string
	Weight float64
}

// idf returns the BM25 idf with the +1 floor variant (never negative).
func (b *BM25) idf(term string) float64 {
	df := len(b.postings[term])
	return math.Log(1 + (float64(b.nDocs)-float64(df)+0.5)/(float64(df)+0.5))
}

// Search scores every document against the weighted query and returns the
// top k (k<=0 returns all), sorted descending with deterministic ties.
func (b *BM25) Search(query []WeightedTerm, k int) []Scored {
	scores := map[string]float64{}
	for _, qt := range query {
		posting, ok := b.postings[qt.Term]
		if !ok {
			continue
		}
		idf := b.idf(qt.Term)
		for id, tf := range posting {
			dl := float64(b.docLen[id])
			denom := float64(tf) + b.K1*(1-b.B+b.B*dl/b.avgLen)
			scores[id] += qt.Weight * idf * float64(tf) * (b.K1 + 1) / denom
		}
	}
	out := make([]Scored, 0, len(scores))
	for id, s := range scores {
		out = append(out, Scored{ID: id, Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// expansionWeight discounts synonym terms relative to the original keywords.
const expansionWeight = 0.4

// ExpandQuery turns subjective tags into a weighted keyword query: original
// words at weight 1 plus thesaurus synonyms at a discount ([11]'s opinion
// expansion, the "best query combination method" of §6.2).
func ExpandQuery(tags []string) []WeightedTerm {
	weights := map[string]float64{}
	bump := func(term string, w float64) {
		if w > weights[term] {
			weights[term] = w
		}
	}
	for _, tag := range tags {
		for _, w := range tokenize.Words(tag) {
			bump(w, 1)
			for _, syn := range lexicon.Synonyms(w) {
				for _, sw := range tokenize.Words(syn) {
					bump(sw, expansionWeight)
				}
			}
		}
	}
	terms := make([]WeightedTerm, 0, len(weights))
	for term, w := range weights {
		terms = append(terms, WeightedTerm{Term: term, Weight: w})
	}
	sort.Slice(terms, func(i, j int) bool { return terms[i].Term < terms[j].Term })
	return terms
}

// PlainQuery is the expansion-free variant for ablations.
func PlainQuery(tags []string) []WeightedTerm {
	seen := map[string]bool{}
	var terms []WeightedTerm
	for _, tag := range tags {
		for _, w := range tokenize.Words(tag) {
			if !seen[w] {
				seen[w] = true
				terms = append(terms, WeightedTerm{Term: w, Weight: 1})
			}
		}
	}
	return terms
}
