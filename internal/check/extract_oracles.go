package check

import (
	"fmt"
	"sync"
	"sync/atomic"

	"saccs/internal/core"
	"saccs/internal/datasets"
	"saccs/internal/extcache"
	"saccs/internal/lexicon"
	"saccs/internal/mat"
	"saccs/internal/pairing"
	"saccs/internal/parse"
	"saccs/internal/tagger"
	"saccs/internal/tokenize"
	"saccs/internal/yelp"
)

// Extraction oracles: the generation-keyed tag cache and the batched build
// path promise bit-identical tags to the uncached, serial pipeline — across
// repeats, worker counts, retrains, and concurrent model swaps. These checks
// make that promise falsifiable on random corpora.

// checkEnc is a deterministic, stateless, reentrant Encoder: each token's
// embedding is a pure hash of its surface form. It stands in for MiniBERT so
// the oracles exercise the full tagger→pairing→cache pipeline at property-
// test cost; since it is not an InferEncoder the oracle also covers Predict's
// plain-Encoder fallback path.
type checkEnc struct{ dim int }

func (e checkEnc) EmbeddingDim() int { return e.dim }

func (e checkEnc) EncodeTokens(tokens []string) []mat.Vec {
	out := make([]mat.Vec, len(tokens))
	for i, t := range tokens {
		v := mat.NewVec(e.dim)
		h := uint64(14695981039346656037)
		for j := 0; j < len(t); j++ {
			h = (h ^ uint64(t[j])) * 1099511628211
		}
		for j := range v {
			h = (h ^ uint64(j+1)) * 1099511628211
			v[j] = float64(int64(h%2001)-1000) / 1000
		}
		out[i] = v
	}
	return out
}

// checkModel builds a small deterministic tagger over checkEnc.
func checkModel(seed int64) *tagger.Model {
	cfg := tagger.DefaultConfig()
	cfg.Hidden = 12
	cfg.Epochs = 2
	cfg.Seed = seed
	return tagger.New(checkEnc{dim: 16}, cfg)
}

// checkPairer returns the tree-distance pairing heuristic over the
// restaurants lexicon — the production default, and reentrant.
func checkPairer() core.Pairer {
	return pairing.Tree{Lex: parse.DomainLexicon(lexicon.Restaurants()), FromOpinions: true}
}

// checkExamples builds a tiny fixed training set; Train only needs gold
// labels of the right shape to run a deterministic retrain.
func checkExamples() []datasets.Example {
	return []datasets.Example{
		{
			Tokens: []string{"the", "food", "is", "delicious"},
			Labels: []tokenize.Label{tokenize.O, tokenize.BAS, tokenize.O, tokenize.BOP},
		},
		{
			Tokens: []string{"friendly", "staff", "but", "slow", "service"},
			Labels: []tokenize.Label{tokenize.BOP, tokenize.BAS, tokenize.O, tokenize.BOP, tokenize.BAS},
		},
		{
			Tokens: []string{"amazing", "thin", "crust", "pizza"},
			Labels: []tokenize.Label{tokenize.BOP, tokenize.BAS, tokenize.IAS, tokenize.IAS},
		},
	}
}

// ExtractionCacheOracle checks that the generation-keyed extraction cache is
// transparent: over a sentence stream with repeats, a cached extractor must
// produce tag lists bit-identical to an uncached extractor sharing the same
// tagger — before a retrain, and again after the retrain bumps the weight
// generation (stale entries must become unservable, not served).
func ExtractionCacheOracle(seed int64, nSentences int) error {
	g := NewGen(seed)
	m := checkModel(seed)
	p := checkPairer()
	cached := &core.Extractor{Tagger: m, Pairer: p, Cache: extcache.New(256)}
	plain := &core.Extractor{Tagger: m, Pairer: p}

	// Each distinct sentence appears exactly twice so the second pass hits
	// the cache; dedup keeps the hit accounting below exact.
	distinct := make([][]string, 0, nSentences)
	seen := map[string]bool{}
	for len(distinct) < nSentences {
		sent := tokenize.Words(g.Utterance())
		key := fmt.Sprint(sent)
		if seen[key] {
			continue
		}
		seen[key] = true
		distinct = append(distinct, sent)
	}
	stream := append(append([][]string(nil), distinct...), distinct...)

	replay := func(phase string) error {
		for i, sent := range stream {
			want := plain.ExtractFromTokens(sent)
			got := cached.ExtractFromTokens(sent)
			if err := DiffStrings(fmt.Sprintf("%s sentence %d (seed %d)", phase, i, seed), want, got); err != nil {
				return err
			}
		}
		return nil
	}

	if err := replay("cache-on vs cache-off"); err != nil {
		return err
	}
	hits, _, _ := cached.Cache.Stats()
	if hits < int64(nSentences) {
		return fmt.Errorf("cache oracle (seed %d): %d hits over %d repeated sentences, want >= %d",
			seed, hits, nSentences, nSentences)
	}

	// Retrain: the generation bump must invalidate every stored entry, so the
	// cached extractor keeps agreeing with the plain one on the new weights.
	gen0 := m.Generation()
	m.Train(checkExamples())
	if m.Generation() == gen0 {
		return fmt.Errorf("cache oracle (seed %d): Train did not bump the weight generation", seed)
	}
	hits0, _, _ := cached.Cache.Stats()
	if err := replay("post-retrain cache-on vs cache-off"); err != nil {
		return err
	}
	hits1, _, _ := cached.Cache.Stats()
	// The first post-retrain pass over each distinct sentence must miss (its
	// entry is keyed to the old generation); only the repeats may hit.
	if gained := hits1 - hits0; gained > int64(nSentences) {
		return fmt.Errorf("cache oracle (seed %d): %d hits after retrain, want <= %d (stale entries served?)",
			seed, gained, nSentences)
	}
	return nil
}

// ExtractBatchOracle checks that batched extraction is schedule-independent:
// ExtractBatch at every worker count must equal the serial sentence loop, and
// a Service's batched BuildEntityTags (sentence-granularity fan-out) must
// produce entity tag multisets identical to the serial per-entity walk.
func ExtractBatchOracle(seed int64, nSentences int, workers []int) error {
	g := NewGen(seed)
	m := checkModel(seed + 1)
	p := checkPairer()
	ex := &core.Extractor{Tagger: m, Pairer: p, Cache: extcache.New(128)}

	sentences := make([][]string, nSentences)
	for i := range sentences {
		sentences[i] = tokenize.Words(g.Utterance())
	}
	want := make([][]string, len(sentences))
	for i, s := range sentences {
		want[i] = ex.ExtractFromTokens(s)
	}
	for _, w := range workers {
		got := ex.ExtractBatch(sentences, w)
		for i := range want {
			if err := DiffStrings(fmt.Sprintf("%d-worker batch sentence %d (seed %d)", w, i, seed), want[i], got[i]); err != nil {
				return err
			}
		}
	}

	// Full-service comparison: serial (Workers=1) vs batched (Workers>1)
	// BuildEntityTags over a generated world, sharing one extractor.
	world := yelp.Generate(yelp.Config{
		Entities: 8, MeanReviews: 4, Seed: seed, City: "montreal", Cuisine: "italian",
	})
	svc := core.NewService(world, ex, nil, core.DefaultConfig())
	svc.Workers = 1
	svc.BuildEntityTags(core.NeuralSource{E: ex})
	serial := svc.EntityTags()
	for _, w := range workers {
		if w <= 1 {
			continue
		}
		svc.Workers = w
		svc.BuildEntityTags(core.NeuralSource{E: ex})
		batched := svc.EntityTags()
		if len(batched) != len(serial) {
			return fmt.Errorf("batch oracle (seed %d): %d entities batched vs %d serial", seed, len(batched), len(serial))
		}
		for i := range serial {
			if batched[i].EntityID != serial[i].EntityID || batched[i].ReviewCount != serial[i].ReviewCount {
				return fmt.Errorf("batch oracle (seed %d): entity %d header (%s, %d) vs (%s, %d)", seed, i,
					batched[i].EntityID, batched[i].ReviewCount, serial[i].EntityID, serial[i].ReviewCount)
			}
			if err := DiffStrings(fmt.Sprintf("%d-worker entity %s tags (seed %d)", w, serial[i].EntityID, seed),
				serial[i].Tags, batched[i].Tags); err != nil {
				return err
			}
		}
	}
	return nil
}

// swapTagger atomically swaps between two tagger models — the shape of a
// live model hot-swap (or an in-place retrain) racing the query path.
type swapTagger struct {
	m atomic.Pointer[tagger.Model]
}

func (s *swapTagger) Predict(tokens []string) []tokenize.Label { return s.m.Load().Predict(tokens) }
func (s *swapTagger) Generation() uint64                       { return s.m.Load().Generation() }

// ExtractGenSwapOracle checks the cache's consistency under a concurrent
// model swap: while goroutines extract through a cached extractor, the tagger
// is swapped from model A to model B mid-stream. Every concurrent result must
// equal A's baseline or B's baseline (never a mix, never a stale cache entry
// under the wrong generation), and once the swap is visible every result must
// equal B's baseline.
func ExtractGenSwapOracle(seed int64, goroutines, nSentences int) error {
	g := NewGen(seed)
	a, b := checkModel(seed+2), checkModel(seed+3)
	p := checkPairer()

	sentences := make([][]string, nSentences)
	for i := range sentences {
		sentences[i] = tokenize.Words(g.Utterance())
	}
	baseline := func(m *tagger.Model) [][]string {
		ex := &core.Extractor{Tagger: m, Pairer: p}
		out := make([][]string, len(sentences))
		for i, s := range sentences {
			out[i] = ex.ExtractFromTokens(s)
		}
		return out
	}
	wantA, wantB := baseline(a), baseline(b)

	st := &swapTagger{}
	st.m.Store(a)
	cached := &core.Extractor{Tagger: st, Pairer: p, Cache: extcache.New(256)}

	// Phase one: goroutines replay the stream while the main goroutine swaps
	// A -> B. Each extraction is atomic w.r.t. the swap (one pointer load),
	// so its result must match one of the two baselines exactly.
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for pass := 0; pass < 3; pass++ {
				for k := range sentences {
					i := (k + w) % len(sentences)
					got := cached.ExtractFromTokens(sentences[i])
					if DiffStrings("", wantA[i], got) != nil && DiffStrings("", wantB[i], got) != nil {
						errs <- fmt.Errorf("gen-swap oracle (seed %d): goroutine %d sentence %d: %v matches neither baseline",
							seed, w, i, got)
						return
					}
				}
			}
		}(w)
	}
	st.m.Store(b) // the racing swap
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return err
	}

	// Phase two: the swap is fully visible; A's cache entries are keyed to
	// A's generation and must never be served for B.
	for i, s := range sentences {
		if err := DiffStrings(fmt.Sprintf("post-swap sentence %d (seed %d)", i, seed),
			wantB[i], cached.ExtractFromTokens(s)); err != nil {
			return err
		}
	}
	return nil
}
