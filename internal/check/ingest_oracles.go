package check

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"

	"saccs/internal/index"
	"saccs/internal/ingest"
	"saccs/internal/sim"
)

// ingestItem is one streamed review: the review text encodes its extracted
// tags directly ("tag | tag | …"), so extraction is deterministic and the
// oracle needs no trained model.
type ingestItem struct {
	entity string
	review string
}

// ingestStream derives a deterministic append stream from the generator:
// entities cycle through a small pool, each review carrying 0–3 tags drawn
// from the vocabulary.
func ingestStream(g *Gen, n, nEntities int, tags []string) []ingestItem {
	items := make([]ingestItem, n)
	for i := range items {
		var chosen []string
		for k := g.rng.Intn(4); k > 0; k-- {
			chosen = append(chosen, g.pick(tags))
		}
		items[i] = ingestItem{
			entity: fmt.Sprintf("ent-%d", g.rng.Intn(nEntities)),
			review: strings.Join(chosen, " | "),
		}
	}
	return items
}

// splitTagsExtract is the ExtractFunc matching ingestStream's encoding.
func splitTagsExtract(texts []string) [][]string {
	out := make([][]string, len(texts))
	for i, t := range texts {
		for _, p := range strings.Split(t, " | ") {
			if p != "" {
				out[i] = append(out[i], p)
			}
		}
	}
	return out
}

// ingestWorld replays the first n items the way the batch path would see
// them: entities in first-appearance order, each accumulating its reviews'
// tags in arrival order.
func ingestWorld(items []ingestItem, n int) []index.EntityReviews {
	state := map[string]*index.EntityReviews{}
	var order []string
	for _, it := range items[:n] {
		e, ok := state[it.entity]
		if !ok {
			e = &index.EntityReviews{EntityID: it.entity}
			state[it.entity] = e
			order = append(order, it.entity)
		}
		e.ReviewCount++
		for _, tag := range splitTagsExtract([]string{it.review})[0] {
			e.Tags = append(e.Tags, tag)
		}
	}
	out := make([]index.EntityReviews, len(order))
	for i, id := range order {
		out[i] = *state[id]
	}
	return out
}

// saveBytes snapshots an index's canonical wire form.
func saveBytes(ix *index.Index) ([]byte, error) {
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// IngestQuiesceOracle checks the streaming tier's core equivalence: a world
// streamed through the WAL-backed ingester — publishes every few reviews,
// compaction folding mini-snapshots down — must, at quiescence, be
// bit-identical (DiffIndexes clean AND Save byte-equal) to one batch Build
// over the same reviews. Then the filesystem is crashed with a torn trailing
// write and reopened: recovery must reproduce the batch build over exactly
// the acknowledged prefix that survived.
func IngestQuiesceOracle(seed int64, nAppends, nEntities int) error {
	g := NewGen(seed)
	tags := g.Tags(10)
	items := ingestStream(g, nAppends, nEntities, tags)

	fs := ingest.NewMemFS()
	ix := index.New(sim.NewConceptual(), 0.55)
	cfg := ingest.Config{FS: fs, Dir: "ingest", PublishEvery: 7, PublishInterval: -1, CompactAfter: 3, SegmentBytes: 1 << 11}
	ing, err := ingest.Open(cfg, ix, tags, nil, splitTagsExtract)
	if err != nil {
		return fmt.Errorf("ingest quiesce (seed %d): open: %w", seed, err)
	}
	ctx := context.Background()
	for i, it := range items {
		if _, err := ing.Append(ctx, it.entity, it.review); err != nil {
			return fmt.Errorf("ingest quiesce (seed %d): append %d: %w", seed, i, err)
		}
	}
	if err := ing.Flush(ctx); err != nil {
		return fmt.Errorf("ingest quiesce (seed %d): flush: %w", seed, err)
	}
	batch := buildIndex(tags, ingestWorld(items, nAppends), 0.55, 0)
	if err := DiffIndexes(batch, ix); err != nil {
		return fmt.Errorf("streamed vs batch world (seed %d): %w", seed, err)
	}
	want, err := saveBytes(batch)
	if err != nil {
		return err
	}
	got, err := saveBytes(ix)
	if err != nil {
		return err
	}
	if !bytes.Equal(want, got) {
		return fmt.Errorf("ingest quiesce (seed %d): streamed snapshot not byte-identical to batch", seed)
	}
	if err := ing.Close(); err != nil {
		return fmt.Errorf("ingest quiesce (seed %d): close: %w", seed, err)
	}

	// Crash with a torn trailing write and recover on the wreckage.
	crashed := fs.Crash(3)
	cfg.FS = crashed
	ix2 := index.New(sim.NewConceptual(), 0.55)
	ing2, err := ingest.Open(cfg, ix2, tags, nil, splitTagsExtract)
	if err != nil {
		return fmt.Errorf("ingest quiesce (seed %d): reopen after crash: %w", seed, err)
	}
	defer func() { _ = ing2.Close() }()
	recovered := 0
	for _, e := range ing2.State() {
		recovered += e.ReviewCount
	}
	if recovered != nAppends {
		return fmt.Errorf("ingest quiesce (seed %d): recovered %d of %d acknowledged reviews", seed, recovered, nAppends)
	}
	rebatch := buildIndex(tags, ingestWorld(items, recovered), 0.55, 0)
	if err := DiffIndexes(rebatch, ix2); err != nil {
		return fmt.Errorf("recovered vs batch world (seed %d): %w", seed, err)
	}
	return nil
}

// IngestPrefixOracle checks bounded-staleness publication under concurrency:
// while one writer streams reviews through the ingester, reader goroutines
// repeatedly pin the published snapshot. Every pinned snapshot must be
// byte-identical to the batch build of SOME prefix of the append order at a
// publish boundary — readers may see a stale world, never a torn or
// reordered one.
func IngestPrefixOracle(seed int64, goroutines, nAppends int) error {
	const publishEvery = 6
	g := NewGen(seed)
	tags := g.Tags(8)
	items := ingestStream(g, nAppends, 6, tags)

	// Precompute the legal worlds: one per publish boundary, plus the empty
	// initial generation and the final flush.
	legal := map[string]int{}
	for k := 0; k <= nAppends; k++ {
		if k%publishEvery == 0 || k == nAppends {
			b, err := saveBytes(buildIndex(tags, ingestWorld(items, k), 0.55, 0))
			if err != nil {
				return err
			}
			legal[string(b)] = k
		}
	}

	ix := index.New(sim.NewConceptual(), 0.55)
	ing, err := ingest.Open(ingest.Config{PublishEvery: publishEvery, PublishInterval: -1}, ix, tags, nil, splitTagsExtract)
	if err != nil {
		return fmt.Errorf("ingest prefix (seed %d): open: %w", seed, err)
	}
	ctx := context.Background()

	stop := make(chan struct{})
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := ix.Current()
				var buf bytes.Buffer
				if err := snap.Save(&buf); err != nil {
					errs <- fmt.Errorf("ingest prefix (seed %d, reader %d): save: %w", seed, w, err)
					return
				}
				if _, ok := legal[buf.String()]; !ok {
					errs <- fmt.Errorf("ingest prefix (seed %d, reader %d): pinned snapshot is not a prefix of the append order", seed, w)
					return
				}
			}
		}(w)
	}

	var appendErr error
	for i, it := range items {
		if _, err := ing.Append(ctx, it.entity, it.review); err != nil {
			appendErr = fmt.Errorf("ingest prefix (seed %d): append %d: %w", seed, i, err)
			break
		}
	}
	if appendErr == nil {
		appendErr = ing.Flush(ctx)
	}
	close(stop)
	wg.Wait()
	close(errs)
	if appendErr != nil {
		return appendErr
	}
	if err := <-errs; err != nil {
		return err
	}
	if got := legal[mustString(saveBytes(ix))]; got != nAppends {
		return fmt.Errorf("ingest prefix (seed %d): quiescent world is prefix %d, want %d", seed, got, nAppends)
	}
	return ing.Close()
}

func mustString(b []byte, err error) string {
	if err != nil {
		return ""
	}
	return string(b)
}
