package check

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"saccs/internal/bert"
	"saccs/internal/corpus"
	"saccs/internal/datasets"
	"saccs/internal/lexicon"
	"saccs/internal/nn"
	"saccs/internal/tagger"
	"saccs/internal/tokenize"
)

// Quantized-inference drift oracle: the mixed/int8 decode paths trade
// precision for speed, and this check makes the trade's contract falsifiable
// — on a trained model the quantized label sequences must agree with the
// float64 decode exactly on the five pinned golden utterances, near-exactly
// token-wise on a generated corpus, and the raw emission scores must stay
// within a small absolute envelope of the float64 emissions. An untrained
// model would not do: its Viterbi margins are noise-level, so any rounding
// flips labels; training on the fixed example set below gives the margins
// the production pipeline has.

// quantGoldenUtterances are the five golden utterances pinned by the root
// snapshot tests (saccs_golden_test.go) — the drift contract is strongest
// exactly where the public fixtures are.
var quantGoldenUtterances = []string{
	"I want an Italian restaurant in Montreal with delicious food",
	"somewhere with nice staff and a romantic ambiance",
	"a quiet atmosphere and quick service please",
	"fair prices, fresh ingredients and generous portions",
	"a place that serves tasty meals",
}

// quantExamples draws a deterministic labeled training set from the real
// corpus generator over the same restaurants domain the check generator's
// utterances use — review prose plus every seventh sentence a conversational
// utterance, mirroring datasets.build. Training on the production
// distribution (including negation and intensifier patterns) is what gives
// the tiny model real Viterbi margins on generated corpora.
func quantExamples(seed int64, n int) []datasets.Example {
	g := corpus.NewGenerator(lexicon.Restaurants(), seed, corpus.Options{})
	out := make([]datasets.Example, 0, n)
	for i := 0; i < n; i++ {
		var s corpus.Sentence
		if i%7 == 6 {
			s = g.RandomUtterance(3)
		} else {
			s = g.Sentence()
		}
		out = append(out, datasets.Example{Tokens: s.Tokens, Labels: s.Labels, Pairs: s.Pairs})
	}
	return out
}

// quantModelSeed fixes the drift oracle's model: the trained tagger is a
// deterministic fixture (weights, vocabulary, and therefore margins are
// identical on every run and every oracle seed), and only the measurement
// corpus varies with the seed. A per-seed model would make the oracle's
// verdict hostage to whichever random init happens to leave one golden token
// on a knife-edge margin — drift the quantized kernels did not cause.
const quantModelSeed = int64(1)

// quantModel caches the fixture: one deterministic build per process, shared
// by every oracle invocation (and both suite seeds).
var quantModel struct {
	mu   sync.Mutex
	seed int64
	m    *tagger.Model
}

// quantDriftModel builds and trains the small MiniBERT tagger the drift
// oracle measures. The vocabulary covers the training draw and the golden
// utterances; corpus tokens outside it map to [UNK], exactly as in serving.
func quantDriftModel() *tagger.Model {
	quantModel.mu.Lock()
	defer quantModel.mu.Unlock()
	if quantModel.m != nil && quantModel.seed == quantModelSeed {
		return quantModel.m
	}
	examples := quantExamples(quantModelSeed, 240)
	v := tokenize.NewVocab()
	for _, u := range quantGoldenUtterances {
		v.AddAll(tokenize.Words(u))
	}
	for _, ex := range examples {
		v.AddAll(ex.Tokens)
	}
	rng := rand.New(rand.NewSource(quantModelSeed))
	enc := bert.New(rng, bert.Config{Layers: 1, Heads: 2, Dim: 32, FFDim: 48, MaxLen: 12}, v)
	cfg := tagger.DefaultConfig()
	cfg.Hidden = 16
	cfg.Seed = quantModelSeed
	cfg.Epochs = 8
	m := tagger.New(enc, cfg)
	m.Train(examples)
	quantModel.seed, quantModel.m = quantModelSeed, m
	return m
}

// QuantDriftOracle checks the quantized decode's drift contract at both
// quantized precisions over a trained model:
//
//   - the five golden utterances decode to exactly the float64 labels;
//   - on nSentences generated utterances, raw token-level label agreement is
//     at least 99%, and every disagreement must be a tie-break: the float64
//     model's own CRF path score for the quantized labeling must be within
//     the drift envelope of its optimal path. A flip of any decisively-held
//     label fails — so agreement on decisive tokens is exactly 100%, a
//     stronger guarantee than any aggregate percentage over tokens the
//     reference itself holds by less than the quantization noise;
//   - the max-abs emission-score error against float64 stays under
//     emissionBound, expressed as a fraction of the largest float64
//     emission magnitude (the natural scale of the scores);
//   - the batched quantized decode is identical to the solo quantized decode
//     (they share kernels by construction; this pins it end to end).
func QuantDriftOracle(seed int64, nSentences int, emissionBound float64) error {
	// The agreement corpus is in-distribution conversational utterances from
	// the real corpus generator (disjoint seed from the training draw): the
	// oracle measures quantization drift on inputs the model has margins on,
	// not out-of-vocabulary coin flips a float64 toy model loses too.
	cg := corpus.NewGenerator(lexicon.Restaurants(), seed, corpus.Options{})
	corp := make([][]string, nSentences)
	for i := range corp {
		corp[i] = cg.RandomUtterance(3).Tokens
	}
	golden := make([][]string, len(quantGoldenUtterances))
	for i, u := range quantGoldenUtterances {
		golden[i] = tokenize.Words(u)
	}
	m := quantDriftModel()

	for _, p := range []nn.Precision{nn.Mixed, nn.Int8} {
		// Golden utterances: exact agreement, no budget.
		for i, toks := range golden {
			want := m.PredictAt(toks, nn.Float64)
			got := m.PredictAt(toks, p)
			if err := diffLabels(fmt.Sprintf("golden utterance %d at %v (seed %d)", i, p, seed), want, got); err != nil {
				return err
			}
		}

		// Generated corpus: emissions bounded, flips only on near-ties.
		var tokens, agree int
		maxErr, maxAbs := 0.0, 0.0
		type flip struct {
			sent int
			gap  float64
		}
		var flips []flip
		for si, toks := range corp {
			want := m.PredictAt(toks, nn.Float64)
			got := m.PredictAt(toks, p)
			mismatch := false
			for t := range want {
				tokens++
				if got[t] == want[t] {
					agree++
				} else {
					mismatch = true
				}
			}
			if mismatch {
				gap := m.PathScore(toks, want) - m.PathScore(toks, got)
				flips = append(flips, flip{si, gap})
			}
			ef := m.EmissionsAt(toks, nn.Float64)
			eq := m.EmissionsAt(toks, p)
			for t := range ef {
				for j := range ef[t] {
					if a := math.Abs(ef[t][j]); a > maxAbs {
						maxAbs = a
					}
					if d := math.Abs(eq[t][j] - ef[t][j]); d > maxErr {
						maxErr = d
					}
				}
			}
		}
		if maxErr > emissionBound*maxAbs {
			return fmt.Errorf("quant-drift oracle (seed %d): %v max emission error %.5f over scale %.3f, want <= %.2f%% of scale",
				seed, p, maxErr, maxAbs, 100*emissionBound)
		}
		if ratio := float64(agree) / float64(tokens); ratio < 0.99 {
			return fmt.Errorf("quant-drift oracle (seed %d): %v raw token agreement %.4f (%d/%d), want >= 0.99",
				seed, p, ratio, agree, tokens)
		}
		// Any flip of a path the float64 model decisively prefers is real
		// drift; the envelope scales with the emission error bound times the
		// sentence positions a perturbed emission can shift.
		gapBound := 4 * emissionBound * maxAbs
		for _, f := range flips {
			if f.gap > gapBound {
				return fmt.Errorf("quant-drift oracle (seed %d): %v flipped sentence %d the float64 model prefers by %.4f (envelope %.4f): %v",
					seed, p, f.sent, f.gap, gapBound, corp[f.sent])
			}
		}

		// Solo vs batched quantized decode.
		batched := m.PredictBatchAt(corp, p)
		for i, toks := range corp {
			solo := m.PredictAt(toks, p)
			if err := diffLabels(fmt.Sprintf("solo vs batched sentence %d at %v (seed %d)", i, p, seed), solo, batched[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// diffLabels reports the first index where two label sequences diverge.
func diffLabels(name string, want, got []tokenize.Label) error {
	if len(want) != len(got) {
		return fmt.Errorf("%s: %d labels vs %d", name, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			return fmt.Errorf("%s: label %d = %v, want %v", name, i, got[i], want[i])
		}
	}
	return nil
}
