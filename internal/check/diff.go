package check

import (
	"fmt"

	"saccs/internal/index"
	"saccs/internal/search"
)

// The diff reporter compares two runs of a computation that must agree
// bit-for-bit (differential oracles never tolerate float drift: the compared
// strategies execute the same float operations in the same per-item order)
// and names the first divergent element, so a failure message points at the
// exact posting or rank that broke instead of dumping both structures.

// DiffStrings reports the first divergence between two string slices.
func DiffStrings(path string, want, got []string) error {
	for i := range want {
		if i >= len(got) {
			return fmt.Errorf("%s: got ends at [%d], want %d elements (first missing: %q)", path, i, len(want), want[i])
		}
		if want[i] != got[i] {
			return fmt.Errorf("%s: first divergence at [%d]: want %q, got %q", path, i, want[i], got[i])
		}
	}
	if len(got) > len(want) {
		return fmt.Errorf("%s: got has %d extra elements (first: %q)", path, len(got)-len(want), got[len(want)])
	}
	return nil
}

// DiffPostings reports the first divergent posting between two posting lists.
func DiffPostings(path string, want, got []index.Entry) error {
	for i := range want {
		if i >= len(got) {
			return fmt.Errorf("%s: got ends at posting [%d], want %d postings (first missing: %s deg=%.17g)",
				path, i, len(want), want[i].EntityID, want[i].Degree)
		}
		if want[i] != got[i] {
			return fmt.Errorf("%s: first divergent posting at [%d]: want {%s deg=%.17g}, got {%s deg=%.17g}",
				path, i, want[i].EntityID, want[i].Degree, got[i].EntityID, got[i].Degree)
		}
	}
	if len(got) > len(want) {
		return fmt.Errorf("%s: got has %d extra postings (first: %s deg=%.17g)",
			path, len(got)-len(want), got[len(want)].EntityID, got[len(want)].Degree)
	}
	return nil
}

// DiffIndexes reports the first divergence between two indexes: key order
// first, then each tag's posting list.
func DiffIndexes(want, got *index.Index) error {
	wt := want.Tags()
	if err := DiffStrings("index keys", wt, got.Tags()); err != nil {
		return err
	}
	for _, tag := range wt {
		if err := DiffPostings(fmt.Sprintf("tag %q", tag), want.Lookup(tag), got.Lookup(tag)); err != nil {
			return err
		}
	}
	return nil
}

// DiffScored reports the first divergent rank between two ranked lists.
func DiffScored(path string, want, got []search.Scored) error {
	for i := range want {
		if i >= len(got) {
			return fmt.Errorf("%s: got ends at rank [%d], want %d results (first missing: %s score=%.17g)",
				path, i, len(want), want[i].EntityID, want[i].Score)
		}
		if want[i] != got[i] {
			return fmt.Errorf("%s: first divergent rank at [%d]: want {%s score=%.17g}, got {%s score=%.17g}",
				path, i, want[i].EntityID, want[i].Score, got[i].EntityID, got[i].Score)
		}
	}
	if len(got) > len(want) {
		return fmt.Errorf("%s: got has %d extra results (first: %s score=%.17g)",
			path, len(got)-len(want), got[len(want)].EntityID, got[len(want)].Score)
	}
	return nil
}
