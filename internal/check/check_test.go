package check

import (
	"fmt"
	"strings"
	"testing"

	"saccs/internal/index"
	"saccs/internal/search"
)

// TestDefaultSuite drives every oracle and property check on two independent
// seeds. `make check` runs this package under -race, so the concurrent-query
// oracle doubles as a race detector workload.
func TestDefaultSuite(t *testing.T) {
	for _, seed := range []int64{1, 42} {
		for _, c := range DefaultSuite(seed) {
			c := c
			t.Run(fmt.Sprintf("%s/seed=%d", c.Name, seed), func(t *testing.T) {
				if err := c.Run(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestGenDeterministic pins the generator's core contract: identical seeds
// give identical corpora, different seeds diverge.
func TestGenDeterministic(t *testing.T) {
	a, b := NewGen(7), NewGen(7)
	for i := 0; i < 50; i++ {
		ta, tb := a.Tag(), b.Tag()
		if ta != tb {
			t.Fatalf("same seed diverged at tag %d: %q vs %q", i, ta, tb)
		}
	}
	ea, eb := NewGen(7).Entities(10), NewGen(7).Entities(10)
	for i := range ea {
		if ea[i].EntityID != eb[i].EntityID || ea[i].ReviewCount != eb[i].ReviewCount ||
			strings.Join(ea[i].Tags, "|") != strings.Join(eb[i].Tags, "|") {
			t.Fatalf("same seed diverged at entity %d", i)
		}
	}
	ua, ub := NewGen(3).Utterance(), NewGen(4).Utterance()
	if ua == ub {
		t.Fatalf("different seeds produced the same utterance %q", ua)
	}
}

// TestDiffReportersFindFirstDivergence exercises the diff reporter on
// hand-built divergences: identical inputs diff clean, and the error names
// the first divergent element.
func TestDiffReportersFindFirstDivergence(t *testing.T) {
	a := []index.Entry{{EntityID: "e1", Degree: 0.5}, {EntityID: "e2", Degree: 0.25}}
	if err := DiffPostings("same", a, a); err != nil {
		t.Fatalf("identical postings diffed: %v", err)
	}
	b := []index.Entry{{EntityID: "e1", Degree: 0.5}, {EntityID: "e3", Degree: 0.25}}
	err := DiffPostings("p", a, b)
	if err == nil || !strings.Contains(err.Error(), "[1]") || !strings.Contains(err.Error(), "e3") {
		t.Fatalf("posting diff did not name first divergence: %v", err)
	}
	if err := DiffPostings("short", a, a[:1]); err == nil || !strings.Contains(err.Error(), "ends at posting [1]") {
		t.Fatalf("truncated postings not reported: %v", err)
	}
	if err := DiffPostings("long", a[:1], a); err == nil || !strings.Contains(err.Error(), "extra") {
		t.Fatalf("extra postings not reported: %v", err)
	}

	s := []search.Scored{{EntityID: "x", Score: 1}, {EntityID: "y", Score: 0.5}}
	sDiff := []search.Scored{{EntityID: "x", Score: 1}, {EntityID: "y", Score: 0.75}}
	if err := DiffScored("r", s, sDiff); err == nil || !strings.Contains(err.Error(), "rank at [1]") {
		t.Fatalf("scored diff did not name first divergent rank: %v", err)
	}
	if err := DiffStrings("t", []string{"a", "b"}, []string{"a", "c"}); err == nil || !strings.Contains(err.Error(), `"c"`) {
		t.Fatalf("string diff did not name divergence: %v", err)
	}
}

// TestBuildOracleCatchesDivergence makes sure the oracle machinery itself
// detects a planted difference (an index with one perturbed posting).
func TestBuildOracleCatchesDivergence(t *testing.T) {
	g := NewGen(5)
	tags := g.Tags(6)
	ents := g.Entities(20)
	want := buildIndex(tags, ents, 0.55, 1)
	got := buildIndex(tags, ents, 0.60, 1) // different θ_index → different postings
	if err := DiffIndexes(want, got); err == nil {
		t.Fatal("DiffIndexes missed a θ_index perturbation")
	}
}

// TestSlotTrapWordsNeverFill pins the deterministic half of the slot
// property: an utterance made only of substring traps fills no slots.
func TestSlotTrapWordsNeverFill(t *testing.T) {
	utt := "a comparison of indiana-style and italianate lyonnaise dining"
	in := search.ParseUtterance(utt)
	if len(in.Slots) != 0 {
		t.Fatalf("trap utterance filled slots: %v", in.Slots)
	}
}
